// Tests for the scenario matrix engine (docs/SWEEP.md):
//   * the sectioned config parser (file:line diagnostics, duplicate-key
//     rejection, repeated sections),
//   * workload family lowering — GQA ratios, MoE activated width, prefill
//     sequence lengths, speculative-decoding verify steps, ViT patches —
//     all pure, validated, and diagnosed with the offending file:line,
//   * the extended hardware axis (b200, mi300x, npu-edge) resolving
//     through the registry with valid ladders,
//   * the determinism contract: the codesign.sweep report is byte-identical
//     at 1 and 8 threads, and byte-identical between an uninterrupted run
//     and one interrupted at the "sweep.cell" failpoint and resumed from
//     its checkpoint.
#include "sweep/driver.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "advisor/checkpoint.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "gemmsim/estimate_cache.hpp"
#include "gpuarch/gpu_spec.hpp"
#include "sweep/plan.hpp"
#include "sweep/report.hpp"
#include "sweep/workload.hpp"
#include "transformer/config_parse.hpp"

namespace codesign {
namespace {

using sweep::SweepOptions;
using sweep::SweepPlan;
using sweep::SweepResult;
using tfm::ConfigSection;

// ---------------------------------------------------------------------------
// Sectioned config parsing (tfm::parse_config_sections).

TEST(ConfigSections, ParsesSectionsEntriesAndLineNumbers) {
  const std::string text =
      "# comment\n"
      "[alpha]\n"
      "key = value\n"
      "Other = Mixed Case \n"
      "\n"
      "[alpha]\n"
      "key = again\n";
  const auto sections = tfm::parse_config_sections(text, "t.conf");
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].name, "alpha");
  EXPECT_EQ(sections[0].line, 2);
  ASSERT_EQ(sections[0].entries.size(), 2u);
  EXPECT_EQ(sections[0].entries[0].key, "key");
  EXPECT_EQ(sections[0].entries[0].value, "value");
  EXPECT_EQ(sections[0].entries[0].line, 3);
  // Keys are lowercased; values keep their case but lose edge whitespace.
  EXPECT_EQ(sections[0].entries[1].key, "other");
  EXPECT_EQ(sections[0].entries[1].value, "Mixed Case");
  // Repeated section headers open fresh sections (how [workload] repeats).
  EXPECT_EQ(sections[1].line, 6);
  ASSERT_NE(sections[1].find("key"), nullptr);
  EXPECT_EQ(sections[1].find("key")->value, "again");
  EXPECT_EQ(sections[1].find("missing"), nullptr);
}

void expect_section_error(const std::string& text, const std::string& needle) {
  try {
    tfm::parse_config_sections(text, "t.conf");
    FAIL() << "expected ConfigError containing '" << needle << "'";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(ConfigSections, DiagnosticsNameTheFileAndLine) {
  expect_section_error("key = 1\n", "t.conf:1");
  expect_section_error("key = 1\n", "before any [section]");
  expect_section_error("[s]\nnot an entry\n", "t.conf:2");
  expect_section_error("[]\nk = 1\n", "t.conf:1");
  expect_section_error("[s]\nk =\n", "t.conf:2");
  expect_section_error("[s]\nk = 1\nK = 2\n", "duplicate key 'k'");
  expect_section_error("[s]\nk = 1\nk = 2\n", "first at line 2");
}

// ---------------------------------------------------------------------------
// Workload family lowering.

ConfigSection section_of(const std::string& text) {
  const auto sections = tfm::parse_config_sections(text, "wl.conf");
  EXPECT_EQ(sections.size(), 1u);
  return sections.front();
}

sweep::WorkloadSpec lower(const std::string& body) {
  return sweep::workload_from_section(section_of("[workload]\n" + body),
                                      "wl.conf");
}

TEST(WorkloadLowering, GqaRatiosDivideTheQueryHeads) {
  const auto wl = lower(
      "family = gqa\n"
      "model = llama2-7b\n"
      "kv_ratios = 1, 4, 32\n");
  EXPECT_EQ(wl.family, "gqa");
  ASSERT_EQ(wl.variants.size(), 3u);
  EXPECT_EQ(wl.variants[0].label, "kv32");  // ratio 1 = MHA, 32 KV heads
  EXPECT_EQ(wl.variants[0].config.num_kv_heads, 32);
  EXPECT_EQ(wl.variants[1].config.num_kv_heads, 8);
  EXPECT_EQ(wl.variants[2].label, "kv1");   // ratio a = MQA
  EXPECT_EQ(wl.variants[2].config.num_kv_heads, 1);

  // A ratio that does not divide the head count is a config error naming
  // the file:line of the offending section.
  try {
    lower("family = gqa\nmodel = llama2-7b\nkv_ratios = 3\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("wl.conf"), std::string::npos);
  }
}

TEST(WorkloadLowering, MoeLowersToActivatedWidth) {
  const auto wl = lower(
      "family = moe\n"
      "model = gpt3-2.7b\n"
      "experts = 8, 64\n"
      "top_k = 2\n");
  ASSERT_EQ(wl.variants.size(), 2u);
  // Activated width = top_k x expert_dff (expert_dff defaults to the base
  // model's d_ff); expert count rides in the note, not the latency model.
  EXPECT_EQ(wl.variants[0].label, "e8-k2");
  EXPECT_EQ(wl.variants[0].config.mlp_intermediate, 2 * wl.base.d_ff());
  EXPECT_EQ(wl.variants[1].label, "e64-k2");
  EXPECT_EQ(wl.variants[1].config.mlp_intermediate,
            wl.variants[0].config.mlp_intermediate);
  EXPECT_THROW(
      lower("family = moe\nmodel = gpt3-2.7b\nexperts = 4\ntop_k = 8\n"),
      ConfigError);
}

TEST(WorkloadLowering, PrefillSpecdecAndVitLowerTheSequenceAxis) {
  const auto prefill = lower(
      "family = prefill\nmodel = gpt3-2.7b\nseq_lens = 512, 8192\n");
  ASSERT_EQ(prefill.variants.size(), 2u);
  EXPECT_EQ(prefill.variants[0].config.seq_len, 512);
  EXPECT_EQ(prefill.variants[1].label, "s8192");

  // Speculative decoding: gamma draft tokens + 1 verified per step.
  const auto specdec = lower(
      "family = specdec\nmodel = llama2-13b\nbatch = 1\ngammas = 1, 7\n");
  ASSERT_EQ(specdec.variants.size(), 2u);
  EXPECT_EQ(specdec.variants[0].config.seq_len, 2);
  EXPECT_EQ(specdec.variants[1].config.seq_len, 8);
  EXPECT_EQ(specdec.variants[1].config.microbatch, 1);

  // ViT: (image/patch)^2 tokens through an encoder.
  const auto vit = lower(
      "family = vit\n"
      "custom = h=1280,a=16,L=32,v=1000,kind=encoder\n"
      "patches = 16, 28\nimage = 224\n");
  ASSERT_EQ(vit.variants.size(), 2u);
  EXPECT_EQ(vit.variants[0].config.kind, tfm::ModelKind::kEncoder);
  EXPECT_EQ(vit.variants[0].config.seq_len, 196);  // (224/16)^2
  EXPECT_EQ(vit.variants[1].config.seq_len, 64);   // (224/28)^2
  EXPECT_THROW(
      lower("family = vit\ncustom = h=1280,a=16,L=32,v=1000,kind=encoder\n"
            "patches = 13\nimage = 224\n"),
      ConfigError);
}

TEST(WorkloadLowering, RejectsUnknownFamiliesAndForeignKeys) {
  EXPECT_THROW(lower("family = quantum\nmodel = gpt3-125m\n"), ConfigError);
  // A key belonging to another family is an error, not silently ignored.
  EXPECT_THROW(lower("family = prefill\nmodel = gpt3-125m\nkv_ratios = 4\n"),
               ConfigError);
  // Exactly one of model=/custom=.
  EXPECT_THROW(lower("family = decoder\n"), ConfigError);
  EXPECT_THROW(lower("family = decoder\nmodel = gpt3-125m\n"
                     "custom = h=256,a=4,L=2,v=1000\n"),
               ConfigError);
}

// ---------------------------------------------------------------------------
// The extended hardware axis.

TEST(HardwareAxis, NewSpecsResolveAndValidate) {
  for (const char* name : {"b200", "b200-sxm", "mi300x", "npu", "npu-edge"}) {
    const gpu::GpuSpec& g = gpu::gpu_by_name(name);
    EXPECT_NO_THROW(g.validate()) << name;
    EXPECT_GT(g.tensor_flops_fp16, 0.0) << name;
  }
  EXPECT_EQ(gpu::gpu_by_name("b200").id, "b200-sxm");
  EXPECT_EQ(gpu::gpu_by_name("npu").id, "npu-edge");
  // The NPU-class part is the bandwidth-starved point of the axis.
  EXPECT_LT(gpu::gpu_by_name("npu-edge").hbm_bandwidth,
            gpu::gpu_by_name("a100").hbm_bandwidth);
}

// ---------------------------------------------------------------------------
// Determinism and resume: the sweep's acceptance contract.

constexpr const char* kSmallMatrix =
    "[sweep]\n"
    "name = t-matrix\n"
    "gpus = a100, npu-edge\n"
    "[workload]\n"
    "family = gqa\n"
    "name = gqa-125m\n"
    "model = gpt3-125m\n"
    "kv_ratios = 1, 4\n"
    "[workload]\n"
    "family = prefill\n"
    "name = prefill-125m\n"
    "model = gpt3-125m\n"
    "seq_lens = 256, 1024\n";

SweepResult run_matrix(const SweepPlan& plan, std::size_t threads,
                       SweepOptions extra = {}) {
  extra.threads = threads;
  if (extra.cache == nullptr) {
    extra.cache = std::make_shared<gemm::EstimateCache>();
  }
  return sweep::run_sweep(plan, extra);
}

TEST(SweepDeterminism, ReportIsByteIdenticalAcrossThreadCounts) {
  const SweepPlan plan = sweep::parse_sweep_config(kSmallMatrix, "t.conf");
  EXPECT_EQ(plan.cells(), 4u);
  const SweepResult r1 = run_matrix(plan, 1);
  const SweepResult r8 = run_matrix(plan, 8);
  EXPECT_EQ(r1.cells.size(), 4u);
  EXPECT_EQ(sweep::sweep_report_json(r1, /*compact=*/false),
            sweep::sweep_report_json(r8, /*compact=*/false));
  EXPECT_EQ(sweep::sweep_report_json(r1, /*compact=*/true),
            sweep::sweep_report_json(r8, /*compact=*/true));

  // The winner order is a total order: every cell's variants are sorted by
  // (time_per_token, label), so index 0 is the deterministic winner.
  for (const sweep::SweepCell& c : r1.cells) {
    for (std::size_t i = 1; i < c.variants.size(); ++i) {
      EXPECT_LE(c.variants[i - 1].time_per_token, c.variants[i].time_per_token);
    }
  }
}

class SweepResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::clear();
    path_ = testing::TempDir() + "sweep_resume_cp.txt";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    fail::clear();
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(SweepResumeTest, ResumedRunReportIsByteIdenticalToFreshRun) {
  const SweepPlan plan = sweep::parse_sweep_config(kSmallMatrix, "t.conf");
  const std::string fingerprint =
      sweep::sweep_fingerprint(plan, gemm::TilePolicy::kAuto);
  const std::string fresh =
      sweep::sweep_report_json(run_matrix(plan, 2), /*compact=*/true);

  // Interrupt the third cell: the failpoint fires before any of its
  // variants run, leaving cells 1-2 in the checkpoint.
  fail::configure("sweep.cell=once:3:fatal");
  {
    advisor::CheckpointWriter writer(path_, fingerprint, /*flush_every=*/1);
    SweepOptions opts;
    opts.checkpoint = &writer;
    EXPECT_THROW(run_matrix(plan, 2, opts), fail::InjectedFault);
  }
  fail::clear();

  const advisor::SearchCheckpoint cp = advisor::SearchCheckpoint::load(path_);
  EXPECT_GT(cp.size(), 0u);

  advisor::CheckpointWriter writer(path_, fingerprint, /*flush_every=*/1);
  SweepOptions opts;
  opts.checkpoint = &writer;
  opts.resume = &cp;
  const SweepResult resumed = run_matrix(plan, 2, opts);
  EXPECT_GT(resumed.resumed, 0u);
  EXPECT_EQ(resumed.cells.size(), plan.cells());
  EXPECT_EQ(sweep::sweep_report_json(resumed, /*compact=*/true), fresh);
}

TEST_F(SweepResumeTest, ForeignCheckpointIsRejectedByFingerprint) {
  const SweepPlan plan = sweep::parse_sweep_config(kSmallMatrix, "t.conf");
  {
    advisor::CheckpointWriter writer(path_, "sweep name=other sig=0",
                                     /*flush_every=*/1);
  }
  const advisor::SearchCheckpoint cp = advisor::SearchCheckpoint::load(path_);
  SweepOptions opts;
  opts.resume = &cp;
  EXPECT_THROW(run_matrix(plan, 1, opts), ConfigError);
}

TEST(SweepReport, JsonCarriesTheContractFields) {
  const SweepPlan plan = sweep::parse_sweep_config(kSmallMatrix, "t.conf");
  const std::string json =
      sweep::sweep_report_json(run_matrix(plan, 2), /*compact=*/true);
  for (const char* needle :
       {"\"report\":\"codesign.sweep\"", "\"version\":1", "\"rankings\"",
        "\"winner_attribution\"", "\"slowdown_vs_best\"", "\"npu-edge\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  // Compact (serve payload) form is a single line.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace codesign
