// Tests for request-scoped tracing and SLO telemetry (serve/trace.hpp):
// span totals vs wall latency, tail ring round trips, failpoint error
// attribution, byte-identity of payloads with tracing on vs off under
// eight concurrent clients, snapshot-local stats idempotence, Prometheus
// exposition, work attribution (estimates / search candidates), and the
// drain-summary SLO accounting.
#include "serve/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "advisor/report.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "gemmsim/estimate_cache.hpp"
#include "gemmsim/simulator.hpp"
#include "gpuarch/dtype.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/ops.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

using serve::ServeClient;

class ServeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::clear();
    SigintGuard::reset();
    obs::MetricsRegistry::set_enabled(false);
  }
  void TearDown() override {
    fail::clear();
    obs::MetricsRegistry::set_enabled(false);
  }

  static serve::ServerOptions options(std::size_t threads,
                                      std::size_t queue_capacity = 0) {
    serve::ServerOptions o;
    o.port = 0;  // ephemeral; read back via Server::port()
    o.threads = threads;
    o.queue_capacity = queue_capacity;
    return o;
  }

  static void shut_down(serve::Server& server) {
    server.request_drain();
    server.join();
  }

  /// Parse a `tail` payload (one JSON array line) into record values.
  static std::vector<json::Value> parse_tail(const std::string& payload) {
    std::string doc = payload;
    while (!doc.empty() && (doc.back() == '\n' || doc.back() == '\r')) {
      doc.pop_back();
    }
    const json::Value v = json::Value::parse(doc);
    EXPECT_TRUE(v.is_array());
    return v.as_array();
  }

  /// A request's record lands in the ring *after* its response is written
  /// (finish() runs post-write on the worker), so an immediate tail can
  /// miss it. Poll until `pred` is satisfied or ~1 s elapses.
  template <typename Pred>
  static std::vector<json::Value> tail_until(ServeClient& client,
                                             const std::string& extra,
                                             Pred pred) {
    std::vector<json::Value> records;
    for (int attempt = 0; attempt < 200; ++attempt) {
      const serve::Response r = client.call_op("tail", extra);
      EXPECT_TRUE(r.ok()) << r.error;
      records = parse_tail(r.payload);
      if (pred(records)) return records;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return records;
  }

  /// Poll until the trace log has finished at least `n` requests.
  static void wait_for_requests(const serve::Server& server, std::uint64_t n) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (server.trace_log()->slo_summary().requests >= n) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
};

/// The bytes `codesign gemm --m=M --n=N --k=K` prints for the default GPU.
std::string expected_estimate(std::int64_t m, std::int64_t n, std::int64_t k) {
  gemm::GemmProblem p;
  p.m = m;
  p.n = n;
  p.k = k;
  p.batch = 1;
  p.dtype = gpu::dtype_from_name("fp16");
  p.validate();
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  std::ostringstream os;
  serve::render_estimate(os, p, sim);
  return os.str();
}

/// The bytes `codesign explain --m=M --n=N --k=K` prints (sans --trace).
std::string expected_explain(std::int64_t m, std::int64_t n, std::int64_t k) {
  gemm::GemmProblem p;
  p.m = m;
  p.n = n;
  p.k = k;
  p.batch = 1;
  p.dtype = gpu::dtype_from_name("fp16");
  p.validate();
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  std::ostringstream os;
  serve::render_explain(os, p, sim);
  return os.str();
}

/// The bytes `codesign advise <model>` prints with default flags.
std::string expected_advise(const std::string& model) {
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  std::ostringstream os;
  serve::render_advise(os, tfm::model_by_name(model), sim,
                       advisor::ReportOptions{});
  return os.str();
}

// ---------------------------------------------------------------------------
// Span accounting: the phase breakdown explains the request's wall latency.

TEST_F(ServeTraceTest, SpanTotalsApproximateWallLatency) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  const serve::Response sleep =
      client.call_op("sleep", R"("id":"nap","ms":40)");
  ASSERT_TRUE(sleep.ok()) << sleep.error;
  const serve::Response est =
      client.call_op("estimate", R"("id":"e1","m":256,"n":256,"k":256)");
  ASSERT_TRUE(est.ok()) << est.error;

  const std::vector<json::Value> records =
      tail_until(client, R"("filter":"all")", [](const auto& recs) {
        return recs.size() >= 2;
      });
  ASSERT_GE(records.size(), 2u);

  bool saw_sleep = false;
  for (const json::Value& rec : records) {
    const double total_us = rec.at("total_us").as_number();
    const double phase_sum_us = rec.at("phase_sum_us").as_number();
    EXPECT_GT(total_us, 0.0);
    // Phases are sub-intervals of the request: their sum never exceeds the
    // wall total (beyond clock-read noise)...
    EXPECT_LE(phase_sum_us, total_us + 100.0) << rec.at("op").as_string();
    // ...and covers it: untraced slack is inter-phase bookkeeping only.
    const double slack = total_us - phase_sum_us;
    EXPECT_LE(slack, std::max(total_us * 0.01, 1500.0))
        << rec.at("op").as_string() << " total=" << total_us
        << " phase_sum=" << phase_sum_us;
    if (rec.at("op").as_string() == "sleep") {
      saw_sleep = true;
      EXPECT_EQ(rec.at("id").as_string(), "nap");
      EXPECT_EQ(rec.at("status").as_string(), "ok");
      EXPECT_GE(total_us, 38'000.0);  // slept ~40 ms
      EXPECT_GE(rec.at("phases").at("execute").as_number(), 35'000.0);
      EXPECT_GE(rec.at("phases").at("queue_wait").as_number(), 0.0);
      EXPECT_DOUBLE_EQ(rec.at("estimates").as_number(), 0.0);
      EXPECT_FALSE(rec.at("deadline_missed").as_bool());
      EXPECT_EQ(rec.at("error").as_string(), "");
      EXPECT_EQ(rec.at("error_phase").as_string(), "");
    }
  }
  EXPECT_TRUE(saw_sleep);

  client.close();
  shut_down(server);
}

// ---------------------------------------------------------------------------
// Error attribution: an injected dispatch fault surfaces in `tail` with the
// failing request's id and the phase the error was raised in.

TEST_F(ServeTraceTest, TailReturnsInjectedFailureWithErrorPhase) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  // The second dispatched request trips the failpoint; its neighbours
  // succeed (requests on one connection dispatch in arrival order). Fatal
  // class: a transient fault would answer as a retryable code-75
  // rejection (test_serve covers that); this test wants a hard error to
  // attribute.
  fail::configure("serve.dispatch=once:2:fatal");
  const serve::Response r1 =
      client.call_op("estimate", R"("id":"ok-1","m":128,"n":128,"k":128)");
  const serve::Response r2 =
      client.call_op("estimate", R"("id":"boom","m":128,"n":128,"k":128)");
  const serve::Response r3 =
      client.call_op("estimate", R"("id":"ok-2","m":128,"n":128,"k":128)");
  EXPECT_TRUE(r1.ok()) << r1.error;
  EXPECT_EQ(r2.status, "error");
  EXPECT_EQ(r2.code, kExitError);
  EXPECT_TRUE(r3.ok()) << r3.error;

  const std::vector<json::Value> records =
      tail_until(client, R"("filter":"errors")", [](const auto& recs) {
        return !recs.empty();
      });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("id").as_string(), "boom");
  EXPECT_EQ(records[0].at("op").as_string(), "estimate");
  EXPECT_EQ(records[0].at("status").as_string(), "error");
  EXPECT_EQ(static_cast<int>(records[0].at("code").as_number()), kExitError);
  EXPECT_EQ(records[0].at("error_phase").as_string(), "execute");
  EXPECT_NE(records[0].at("error").as_string().find("injected fault"),
            std::string::npos)
      << records[0].at("error").as_string();

  client.close();
  shut_down(server);
}

TEST_F(ServeTraceTest, TailValidatesItsArguments) {
  serve::Server server(options(1));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  const serve::Response bad_filter =
      client.call_op("tail", R"("filter":"weird")");
  EXPECT_EQ(bad_filter.status, "error");
  EXPECT_EQ(bad_filter.code, kExitUsage);

  const serve::Response bad_n = client.call_op("tail", R"("n":0)");
  EXPECT_EQ(bad_n.status, "error");
  EXPECT_EQ(bad_n.code, kExitUsage);

  client.close();
  shut_down(server);

  // Tracing disabled: tail is a typed usage error, not a crash.
  serve::ServerOptions off = options(1);
  off.trace.enabled = false;
  serve::Server dark(off);
  dark.start();
  EXPECT_EQ(dark.trace_log(), nullptr);
  ServeClient probe("127.0.0.1", dark.port());
  const serve::Response r = probe.call_op("tail", "");
  EXPECT_EQ(r.status, "error");
  EXPECT_EQ(r.code, kExitUsage);
  EXPECT_NE(r.error.find("tracing is disabled"), std::string::npos) << r.error;
  probe.close();
  shut_down(dark);
}

// ---------------------------------------------------------------------------
// Determinism: tracing observes, never steers. Payload bytes with the full
// observability stack on (ring + metrics + chrome-trace recorder) are
// byte-identical to a dark server, under eight concurrent clients.

TEST_F(ServeTraceTest, PayloadBytesIdenticalTracingOnVsOffAcrossEightClients) {
  const std::string want_estimate = expected_estimate(512, 512, 512);
  const std::string want_explain = expected_explain(256, 1024, 512);
  const std::string want_advise = expected_advise("gpt3-2.7b");

  const auto hammer = [&](serve::Server& server) {
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    clients.reserve(8);
    for (int c = 0; c < 8; ++c) {
      clients.emplace_back([&, c] {
        ServeClient client("127.0.0.1", server.port());
        for (int round = 0; round < 4; ++round) {
          const serve::Response est =
              client.call_op("estimate", R"("m":512,"n":512,"k":512)");
          const serve::Response exp =
              client.call_op("explain", R"("m":256,"n":1024,"k":512)");
          const serve::Response adv =
              client.call_op("advise", R"("model":"gpt3-2.7b")");
          if (!est.ok() || est.payload != want_estimate) ++mismatches;
          if (!exp.ok() || exp.payload != want_explain) ++mismatches;
          if (!adv.ok() || adv.payload != want_advise) ++mismatches;
        }
        (void)c;
        client.close();
      });
    }
    for (std::thread& t : clients) t.join();
    return mismatches.load();
  };

  // Dark server: tracing off, metrics off, no recorder.
  {
    serve::ServerOptions off = options(4);
    off.trace.enabled = false;
    serve::Server server(off);
    server.start();
    EXPECT_EQ(hammer(server), 0);
    shut_down(server);
  }

  // Fully lit server: ring + registry + chrome-trace recorder.
  {
    obs::MetricsRegistry::set_enabled(true);
    obs::ScopedRecorder scoped;
    serve::Server server(options(4));
    server.start();
    EXPECT_EQ(hammer(server), 0);
    // Drain with metrics off so join()'s final flush does not publish
    // cache series into the process-global registry (the snapshot-local
    // stats test below asserts the registry stays cache-free).
    obs::MetricsRegistry::set_enabled(false);
    shut_down(server);
    // The recorder saw per-request serve spans while payloads stayed pure.
    EXPECT_GT(scoped.recorder().count("serve"), 0u);
  }
}

// ---------------------------------------------------------------------------
// stats is snapshot-local: reading it twice returns identical documents and
// leaves the global registry untouched (cache counters are folded into the
// response, not published). The process.* gauges are point-in-time process
// readings (uptime, RSS, fd count) — the one sanctioned exception to the
// byte-idempotence of back-to-back reads — so they are stripped before
// comparing.

/// Remove every `{"name":"process....}` series object (flat, no nesting)
/// from a stats payload.
std::string without_process_series(std::string payload) {
  const std::string needle = "{\"name\":\"process.";
  for (std::size_t pos = payload.find(needle); pos != std::string::npos;
       pos = payload.find(needle, pos)) {
    std::size_t end = payload.find('}', pos);
    if (end == std::string::npos) break;
    if (end + 1 < payload.size() && payload[end + 1] == ',') ++end;
    payload.erase(pos, end + 1 - pos);
  }
  return payload;
}

TEST_F(ServeTraceTest, StatsIsSnapshotLocalAndIdempotent) {
  serve::ServerOptions off = options(2);
  off.trace.enabled = false;  // no per-request series: pure bypass reads
  serve::Server server(off);
  server.start();
  ServeClient client("127.0.0.1", server.port());

  // Warm the shared cache before metrics exist, then let the worker's
  // post-response bookkeeping settle so nothing races the snapshots.
  for (int i = 0; i < 3; ++i) {
    const serve::Response r =
        client.call_op("estimate", R"("m":640,"n":640,"k":640)");
    ASSERT_TRUE(r.ok()) << r.error;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  obs::MetricsRegistry::set_enabled(true);

  // One warm-up read registers the server's queue-depth gauges (legitimate
  // server instrumentation, value 0 at idle); everything after must be a
  // pure read.
  ASSERT_TRUE(client.call_op("stats", "").ok());
  const std::string before = obs::MetricsRegistry::global()
                                 .snapshot({.include_best_effort = true})
                                 .to_json();
  const serve::Response s1 = client.call_op("stats", "");
  const serve::Response s2 = client.call_op("stats", "");
  ASSERT_TRUE(s1.ok()) << s1.error;
  ASSERT_TRUE(s2.ok()) << s2.error;
  EXPECT_EQ(without_process_series(s1.payload),
            without_process_series(s2.payload));
  EXPECT_NE(s1.payload.find("gemmsim.cache.hits"), std::string::npos);
  EXPECT_NE(s1.payload.find("process.uptime_s"), std::string::npos);
  EXPECT_NE(s1.payload.find("gemmsim.cache.entries"), std::string::npos);
  const std::string after = obs::MetricsRegistry::global()
                                .snapshot({.include_best_effort = true})
                                .to_json();
  // Reading stats did not publish cache series (or anything else) into the
  // registry.
  EXPECT_EQ(before, after);
  EXPECT_EQ(after.find("gemmsim.cache.hits"), std::string::npos);

  client.close();
  shut_down(server);
}

/// TSan drill: stats snapshots race real traffic and concurrent readers.
/// The interesting property is the absence of data races in append_metrics
/// against the cache's sharded counters; assertions are sanity only.
TEST_F(ServeTraceTest, ConcurrentStatsSnapshotsAreRaceFree) {
  obs::MetricsRegistry::set_enabled(true);
  serve::Server server(options(4));
  server.start();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      ServeClient client("127.0.0.1", server.port());
      for (int i = 0; i < 6; ++i) {
        const serve::Response r =
            client.call_op("estimate", R"("m":384,"n":384,"k":384)");
        if (!r.ok()) ++failures;
      }
      client.close();
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      ServeClient client("127.0.0.1", server.port());
      for (int i = 0; i < 6; ++i) {
        const serve::Response r = client.call_op("stats", "");
        if (!r.ok() ||
            r.payload.find("gemmsim.cache.misses") == std::string::npos) {
          ++failures;
        }
      }
      client.close();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  obs::MetricsRegistry::set_enabled(false);
  shut_down(server);
}

// ---------------------------------------------------------------------------
// Prometheus exposition.

TEST_F(ServeTraceTest, StatsPromFormatRoundTrips) {
  obs::MetricsRegistry::set_enabled(true);
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  const serve::Response est =
      client.call_op("estimate", R"("m":320,"n":320,"k":320)");
  ASSERT_TRUE(est.ok()) << est.error;

  // The estimate's trace finishes (and records serve.request_us) after its
  // response is written; poll until the series lands.
  std::string prom;
  for (int attempt = 0; attempt < 100; ++attempt) {
    const serve::Response r = client.call_op("stats", R"("format":"prom")");
    ASSERT_TRUE(r.ok()) << r.error;
    prom = r.payload;
    if (prom.find("codesign_serve_request_us") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  EXPECT_EQ(prom.rfind("# TYPE ", 0), 0u) << prom.substr(0, 80);
  EXPECT_NE(prom.find("# TYPE codesign_serve_request_us summary"),
            std::string::npos);
  EXPECT_NE(prom.find("codesign_serve_request_us{op=\"estimate\","
                      "stability=\"best_effort\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("codesign_serve_request_us_count{op=\"estimate\","
                      "stability=\"best_effort\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("codesign_serve_queue_depth{stability=\"best_effort\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("codesign_gemmsim_cache_hits"), std::string::npos);

  // json stays the default; unknown formats are typed usage errors.
  const serve::Response json_stats = client.call_op("stats", "");
  ASSERT_TRUE(json_stats.ok());
  EXPECT_EQ(json_stats.payload.front(), '{');
  const serve::Response bad = client.call_op("stats", R"("format":"xml")");
  EXPECT_EQ(bad.status, "error");
  EXPECT_EQ(bad.code, kExitUsage);

  client.close();
  obs::MetricsRegistry::set_enabled(false);
  shut_down(server);
}

// ---------------------------------------------------------------------------
// Work attribution: the estimator and search internals bill their work to
// the active request via obs::RequestScope.

TEST_F(ServeTraceTest, TailAttributesEstimatesAndSearchCandidates) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  const serve::Response est =
      client.call_op("estimate", R"("id":"bill-e","m":448,"n":448,"k":448)");
  ASSERT_TRUE(est.ok()) << est.error;
  const serve::Response search = client.call_op(
      "search", R"("id":"bill-s","model":"gpt3-2.7b","mode":"heads","max":4)");
  ASSERT_TRUE(search.ok()) << search.error;

  const auto has_id = [](const std::vector<json::Value>& recs,
                         const std::string& id) {
    return std::any_of(recs.begin(), recs.end(), [&](const json::Value& r) {
      return r.at("id").as_string() == id;
    });
  };
  const std::vector<json::Value> records =
      tail_until(client, R"("n":64,"filter":"all")", [&](const auto& recs) {
        return has_id(recs, "bill-e") && has_id(recs, "bill-s");
      });
  bool saw_estimate = false, saw_search = false;
  for (const json::Value& rec : records) {
    if (rec.at("id").as_string() == "bill-e") {
      saw_estimate = true;
      EXPECT_GE(rec.at("estimates").as_number(), 1.0);
    }
    if (rec.at("id").as_string() == "bill-s") {
      saw_search = true;
      EXPECT_GT(rec.at("search_candidates").as_number(), 0.0);
      EXPECT_GE(rec.at("estimates").as_number(), 1.0);
    }
  }
  EXPECT_TRUE(saw_estimate);
  EXPECT_TRUE(saw_search);

  client.close();
  shut_down(server);
}

// ---------------------------------------------------------------------------
// SLO accounting: deadline misses are counted and the p99 verdict works.

TEST_F(ServeTraceTest, SloSummaryCountsDeadlineMissesAndViolations) {
  serve::ServerOptions o = options(2);
  o.trace.slo_p99_ms = 0.001;  // absurdly tight: any real request violates
  serve::Server server(o);
  server.start();
  ServeClient client("127.0.0.1", server.port());

  const serve::Response ok = client.call_op("ping", "");
  ASSERT_TRUE(ok.ok());
  const serve::Response missed =
      client.call_op("sleep", R"("id":"late","ms":500,"deadline_ms":30)");
  EXPECT_EQ(missed.status, "error");
  EXPECT_EQ(missed.code, kExitCancelled);

  const std::vector<json::Value> records =
      tail_until(client, R"("filter":"errors")", [](const auto& recs) {
        return !recs.empty();
      });
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("id").as_string(), "late");
  EXPECT_TRUE(records[0].at("deadline_missed").as_bool());
  EXPECT_EQ(static_cast<int>(records[0].at("code").as_number()),
            kExitCancelled);

  ASSERT_NE(server.trace_log(), nullptr);
  wait_for_requests(server, 3);  // ping + sleep + at least one tail
  const serve::SloSummary slo = server.trace_log()->slo_summary();
  EXPECT_GE(slo.requests, 3u);
  EXPECT_GE(slo.deadline_misses, 1u);
  EXPECT_GE(slo.errors, 1u);
  EXPECT_GT(slo.p99_ms, 0.0);
  EXPECT_DOUBLE_EQ(slo.slo_p99_ms, 0.001);
  EXPECT_TRUE(slo.violated());

  client.close();
  shut_down(server);

  // An untight SLO on a fresh log is not violated; no SLO never is.
  serve::TraceOptions relaxed;
  relaxed.slo_p99_ms = 1e9;
  serve::RequestTraceLog quiet(relaxed);
  EXPECT_FALSE(quiet.slo_summary().violated());
  serve::TraceOptions none;
  serve::RequestTraceLog bare(none);
  EXPECT_FALSE(bare.slo_summary().violated());
}

// ---------------------------------------------------------------------------
// Ring mechanics: the lock-striped ring keeps the newest records and the
// filters behave (direct RequestTraceLog unit coverage, no sockets).

TEST_F(ServeTraceTest, RingKeepsNewestRecordsAcrossStripes) {
  serve::TraceOptions opt;
  opt.ring_capacity = 8;
  opt.ring_stripes = 4;
  serve::RequestTraceLog log(opt);

  for (int i = 0; i < 40; ++i) {
    auto trace = log.begin_request();
    serve::RequestRecord& rec = trace->record();
    rec.op = "estimate";
    rec.status = i % 10 == 3 ? "error" : "ok";
    rec.code = i % 10 == 3 ? kExitError : 0;
    trace->add_phase(serve::Phase::kExecute, 10.0 + i);
    log.finish(*trace);
  }

  const std::vector<serve::RequestRecord> all = log.tail(64, "all");
  EXPECT_EQ(all.size(), 8u);  // capacity bounds retention
  for (const serve::RequestRecord& rec : all) {
    EXPECT_GE(rec.seq, 32u);  // only the newest survive in every stripe
  }
  // Newest-first ordering.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i - 1].seq, all[i].seq);
  }
  const std::vector<serve::RequestRecord> top = log.tail(3, "slow");
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].total_us, top[1].total_us);
  EXPECT_GE(top[1].total_us, top[2].total_us);
  for (const serve::RequestRecord& rec : log.tail(64, "errors")) {
    EXPECT_EQ(rec.status, "error");
  }
  EXPECT_THROW(log.tail(4, "weird"), UsageError);

  const serve::SloSummary slo = log.slo_summary();
  EXPECT_EQ(slo.requests, 40u);  // SLO counters outlive ring eviction
  EXPECT_EQ(slo.errors, 4u);
}

// ---------------------------------------------------------------------------
// Chrome-trace export: each request lays its phase spans on a per-request
// track keyed by the echoed id.

TEST_F(ServeTraceTest, ChromeTraceCarriesPerRequestSpans) {
  obs::ScopedRecorder scoped;
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());
  const serve::Response r =
      client.call_op("estimate", R"("id":"traced","m":192,"n":192,"k":192)");
  ASSERT_TRUE(r.ok()) << r.error;
  client.close();
  shut_down(server);  // all traces finished before join() returns

  bool saw_request = false, saw_execute = false;
  for (const obs::TraceEvent& ev : scoped.recorder().events()) {
    if (ev.category != "serve") continue;
    EXPECT_GE(ev.tid, serve::kTidServeBase);
    bool traced_id = false;
    for (const auto& [k, v] : ev.args) {
      if (k == "id" && v == "traced") traced_id = true;
    }
    if (!traced_id) continue;
    if (ev.name == "estimate") {
      saw_request = true;
      EXPECT_GT(ev.dur_us, 0.0);
    }
    if (ev.name == "execute") saw_execute = true;
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_execute);
}

}  // namespace
}  // namespace codesign
