// Tests for advisor/compare.hpp — the side-by-side what-if tool.
#include "advisor/compare.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::advisor {
namespace {

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

TEST(Compare, C2BeatsDefaultAcrossTheBoard) {
  const auto c = compare_configs(tfm::model_by_name("gpt3-2.7b"),
                                 tfm::model_by_name("gpt3-2.7b-c2"), sim());
  // Same parameters; faster layer, faster training step, better MFU.
  // (Decode is a tie — per-token time is weight/KV streaming, which the
  // head count does not change; the paper's inference win is in prefill.)
  EXPECT_GE(c.b_wins(), 4);
  for (const auto& r : c.rows) {
    if (r.metric == "parameters" || r.metric == "decode tokens/s") {
      EXPECT_NEAR(r.ratio, 1.0, 1e-9) << r.metric;
    }
    if (r.metric == "layer TFLOP/s" || r.metric == "train step" ||
        r.metric == "MFU" || r.metric == "layer time") {
      EXPECT_TRUE(r.b_better) << r.metric;
      EXPECT_GT(r.ratio, 1.0) << r.metric;
    }
  }
}

TEST(Compare, SymmetricRatios) {
  const auto ab = compare_configs(tfm::model_by_name("gpt3-2.7b"),
                                  tfm::model_by_name("gpt3-2.7b-c1"), sim());
  const auto ba = compare_configs(tfm::model_by_name("gpt3-2.7b-c1"),
                                  tfm::model_by_name("gpt3-2.7b"), sim());
  for (std::size_t i = 0; i < ab.rows.size(); ++i) {
    EXPECT_NEAR(ab.rows[i].ratio * ba.rows[i].ratio, 1.0, 1e-9)
        << ab.rows[i].metric;
  }
}

TEST(Compare, EncodersSkipInferenceRow) {
  const auto c = compare_configs(tfm::model_by_name("bert-base"),
                                 tfm::model_by_name("bert-large"), sim());
  for (const auto& r : c.rows) {
    EXPECT_NE(r.metric, "decode tokens/s");
  }
  EXPECT_GE(c.rows.size(), 6u);
}

TEST(Compare, RenderedReport) {
  const auto c = compare_configs(tfm::model_by_name("pythia-410m"),
                                 tfm::model_by_name("pythia-1b"), sim());
  const std::string s = c.to_string();
  EXPECT_NE(s.find("pythia-410m"), std::string::npos);
  EXPECT_NE(s.find("pythia-1b"), std::string::npos);
  EXPECT_NE(s.find("decode tokens/s"), std::string::npos);
  EXPECT_NE(s.find("B vs A"), std::string::npos);
}

TEST(Compare, ValidatesInputs) {
  tfm::TransformerConfig broken = tfm::model_by_name("gpt3-2.7b");
  broken.num_heads = 48;  // h % a != 0
  EXPECT_THROW(compare_configs(broken, tfm::model_by_name("gpt3-2.7b"),
                               sim()),
               Error);
}

}  // namespace
}  // namespace codesign::advisor
