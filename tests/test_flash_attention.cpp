// Tests for gemmsim/flash_attention.hpp — the fused-kernel roofline model.
#include "gemmsim/flash_attention.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "gemmsim/kernel_model.hpp"

namespace codesign::gemm {
namespace {

const gpu::GpuSpec& a100() { return gpu::gpu_by_name("a100"); }

FlashAttentionProblem prob(std::int64_t heads, std::int64_t head_dim,
                           std::int64_t seq = 2048, std::int64_t batch = 4) {
  FlashAttentionProblem p;
  p.batch = batch;
  p.heads = heads;
  p.seq = seq;
  p.head_dim = head_dim;
  return p;
}

TEST(FlashAttention, FlopsFormula) {
  const auto p = prob(32, 64);
  EXPECT_DOUBLE_EQ(p.flops(), 4.0 * 4 * 32 * 2048.0 * 2048.0 * 64);
  auto causal = p;
  causal.causal = true;
  EXPECT_DOUBLE_EQ(causal.flops(), p.flops() / 2.0);
}

TEST(FlashAttention, BytesLinearInSeq) {
  // The whole point of the algorithm: no s² term in DRAM traffic.
  const auto p1 = prob(32, 64, 1024);
  const auto p2 = prob(32, 64, 2048);
  EXPECT_NEAR(p2.bytes() / p1.bytes(), 2.0, 0.01);
  // ... while the unfused score BMM traffic is quadratic.
  const auto b1 = GemmProblem::bmm(4 * 32, 1024, 1024, 64);
  const auto b2 = GemmProblem::bmm(4 * 32, 2048, 2048, 64);
  EXPECT_GT(b2.min_bytes() / b1.min_bytes(), 3.5);
}

TEST(FlashAttention, ThroughputRisesWithHiddenThenSaturates) {
  // Fig 12: sweep h at a = 128; throughput follows a roofline in h.
  double prev = 0.0;
  double last = 0.0;
  for (std::int64_t d : {16, 32, 64, 128}) {  // head_dim = h / 128
    const auto est = estimate_flash_attention(prob(128, d), a100());
    EXPECT_GE(est.tflops(), prev) << d;
    prev = est.tflops();
    last = est.tflops();
  }
  // Saturation: the top of the curve is within the fused-kernel efficiency
  // of the achievable tensor rate.
  const double roof = a100().achievable_tensor_flops(gpu::DType::kFP16) *
                      kFlashAttention2Efficiency / 1e12;
  EXPECT_GT(last, 0.8 * roof);
  EXPECT_LE(last, roof + 1e-9);
}

TEST(FlashAttention, AlignedHeadDimFaster) {
  const double t64 = estimate_flash_attention(prob(32, 64), a100()).tflops();
  const double t80 = estimate_flash_attention(prob(32, 80), a100()).tflops();
  EXPECT_GT(t64, t80);
}

TEST(FlashAttention, FasterThanUnfusedBmmPath) {
  // For a medium shape, the fused kernel beats score-BMM + softmax + AOV-BMM
  // (it eliminates the s×s DRAM round-trips).
  const auto flash = estimate_flash_attention(prob(32, 80), a100());
  const double bmm_time =
      select_kernel(GemmProblem::bmm(128, 2048, 2048, 80), a100()).time +
      select_kernel(GemmProblem::bmm(128, 2048, 80, 2048), a100()).time;
  auto noncausal = prob(32, 80);
  noncausal.causal = false;
  EXPECT_LT(estimate_flash_attention(noncausal, a100()).time, bmm_time);
  (void)flash;
}

TEST(FlashAttention, EstimateFieldsConsistent) {
  const auto est = estimate_flash_attention(prob(32, 64), a100());
  EXPECT_DOUBLE_EQ(
      est.time, std::max(est.compute_time, est.memory_time) +
                    a100().kernel_launch_overhead);
  EXPECT_GT(est.flops_per_second(), 0.0);
}

TEST(FlashAttention, SmallSeqMemoryBound) {
  const auto est = estimate_flash_attention(prob(8, 64, 128, 1), a100());
  EXPECT_NE(est.bound, Bound::kCompute);
}

TEST(FlashAttention, LargeSeqComputeBound) {
  const auto est = estimate_flash_attention(prob(32, 64, 8192), a100());
  EXPECT_EQ(est.bound, Bound::kCompute);
}

TEST(FlashAttention, ValidationErrors) {
  auto p = prob(32, 64);
  p.head_dim = 0;
  EXPECT_THROW(estimate_flash_attention(p, a100()), ShapeError);
  p = prob(0, 64);
  EXPECT_THROW(p.validate(), ShapeError);
}

}  // namespace
}  // namespace codesign::gemm
