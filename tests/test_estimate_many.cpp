// Tests for the batched estimation engine: GemmSimulator::estimate_many /
// estimate_times, PreparedCatalogue, and EstimateCache::lookup_many /
// insert_many. The contract under test is lockstep bit-identity — a batch
// of N problems returns exactly what N scalar estimate() calls return, in
// every cache state, at any thread count, and under failpoint drills the
// same candidates fault either way.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "gemmsim/estimate_cache.hpp"
#include "gemmsim/prepared_catalogue.hpp"
#include "gemmsim/simulator.hpp"
#include "obs/metrics.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::gemm {
namespace {

GemmProblem problem(std::int64_t m, std::int64_t n, std::int64_t k) {
  return GemmProblem::gemm(m, n, k);
}

/// The working set every lockstep test sweeps: quantization-friendly and
/// hostile shapes, batched BMMs, odd dtypes, and accumulate variants.
std::vector<GemmProblem> shape_set() {
  std::vector<GemmProblem> shapes = {
      problem(2048, 2560, 2560),  problem(80, 80, 2560),
      problem(4096, 50304, 2560), GemmProblem::bmm(64, 2048, 2048, 80),
      problem(1, 1, 1),           problem(108 * 256, 128, 64),
      problem(4096, 4096, 1024),  problem(96, 96, 4096),
      problem(1000, 1000, 1000),  problem(2048, 2730, 2560),
  };
  GemmProblem bf = problem(512, 512, 512);
  bf.dtype = gpu::DType::kBF16;
  shapes.push_back(bf);
  GemmProblem acc = problem(768, 768, 768);
  acc.accumulate_into_c = true;
  shapes.push_back(acc);
  return shapes;
}

/// Field-exact equality — the batch contract is bitwise, not approximate.
void expect_identical(const KernelEstimate& a, const KernelEstimate& b) {
  EXPECT_EQ(a.problem, b.problem);
  EXPECT_EQ(a.tile.tm, b.tile.tm);
  EXPECT_EQ(a.tile.tn, b.tile.tn);
  EXPECT_EQ(a.tile.tk, b.tile.tk);
  EXPECT_EQ(a.tile_q.tiles_total, b.tile_q.tiles_total);
  EXPECT_EQ(a.tile_q.padded_m, b.tile_q.padded_m);
  EXPECT_EQ(a.tile_q.padded_n, b.tile_q.padded_n);
  EXPECT_EQ(a.tile_q.padded_k, b.tile_q.padded_k);
  EXPECT_EQ(a.wave_q.waves, b.wave_q.waves);
  EXPECT_EQ(a.wave_q.efficiency, b.wave_q.efficiency);
  EXPECT_EQ(a.alignment.combined, b.alignment.combined);
  EXPECT_EQ(a.compute_time, b.compute_time);
  EXPECT_EQ(a.memory_time, b.memory_time);
  EXPECT_EQ(a.launch_overhead, b.launch_overhead);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.bound, b.bound);
}

TEST(PreparedCatalogue, EstimateOneMatchesSelectKernel) {
  const gpu::GpuSpec& gpu = gpu::gpu_by_name("a100");
  const PreparedCatalogue prepared(gpu, TilePolicy::kAuto);
  EXPECT_EQ(prepared.tile_count(), gpu::default_tile_catalogue().size());
  for (const GemmProblem& p : shape_set()) {
    expect_identical(select_kernel(p, gpu), prepared.estimate_one(p));
    EXPECT_EQ(prepared.time_one(p), prepared.estimate_one(p).time);
  }
}

TEST(PreparedCatalogue, FixedLargestDegeneratesToOneTile) {
  const gpu::GpuSpec& gpu = gpu::gpu_by_name("v100");
  const PreparedCatalogue prepared(gpu, TilePolicy::kFixedLargest);
  EXPECT_EQ(prepared.tile_count(), 1u);
  for (const GemmProblem& p : shape_set()) {
    expect_identical(estimate_with_tile(p, gpu::largest_tile(), gpu),
                     prepared.estimate_one(p));
    EXPECT_EQ(prepared.time_one(p), prepared.estimate_one(p).time);
  }
}

TEST(EstimateMany, ColdNoCacheLockstep) {
  for (const TilePolicy policy :
       {TilePolicy::kAuto, TilePolicy::kFixedLargest}) {
    const GemmSimulator sim(gpu::gpu_by_name("a100"), policy);
    const std::vector<GemmProblem> shapes = shape_set();
    std::vector<KernelEstimate> batch(shapes.size());
    sim.estimate_many(shapes, batch);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      expect_identical(sim.estimate(shapes[i]), batch[i]);
    }
  }
}

TEST(EstimateMany, ColdAndWarmCacheLockstep) {
  const gpu::GpuSpec& gpu = gpu::gpu_by_name("a100");
  GemmSimulator scalar(gpu);
  GemmSimulator batched(gpu);
  scalar.enable_cache();
  batched.enable_cache();

  const std::vector<GemmProblem> shapes = shape_set();
  std::vector<KernelEstimate> scalar_out;
  for (const GemmProblem& p : shapes) scalar_out.push_back(scalar.estimate(p));

  GemmSimulator::BatchWorkspace ws;
  std::vector<KernelEstimate> cold(shapes.size());
  batched.estimate_many(shapes, cold, ws);  // all misses
  std::vector<KernelEstimate> warm(shapes.size());
  batched.estimate_many(shapes, warm, ws);  // all hits
  const CacheStats stats = batched.cache()->stats();
  EXPECT_EQ(stats.misses, shapes.size());
  EXPECT_EQ(stats.hits, shapes.size());

  for (std::size_t i = 0; i < shapes.size(); ++i) {
    expect_identical(scalar_out[i], cold[i]);
    expect_identical(scalar_out[i], warm[i]);
    // Crossover: the batch-populated cache serves scalar reads bit-exactly.
    expect_identical(scalar_out[i], batched.estimate(shapes[i]));
  }
}

TEST(EstimateMany, DuplicateProblemsWithinOneBatch) {
  GemmSimulator sim = GemmSimulator::for_gpu("a100");
  sim.enable_cache();
  const GemmProblem p = problem(640, 640, 640);
  const std::vector<GemmProblem> shapes = {p, p, p};
  std::vector<KernelEstimate> out(shapes.size());
  sim.estimate_many(shapes, out);
  const KernelEstimate reference = select_kernel(p, gpu::gpu_by_name("a100"));
  for (const KernelEstimate& e : out) expect_identical(reference, e);
  EXPECT_EQ(sim.cache()->stats().entries, 1u);  // stored once
}

TEST(EstimateMany, EstimateTimesMatchesEstimateBitForBit) {
  GemmSimulator sim = GemmSimulator::for_gpu("a100");
  sim.enable_cache();
  const std::vector<GemmProblem> shapes = shape_set();
  GemmSimulator::BatchWorkspace ws;
  std::vector<double> cold(shapes.size());
  sim.estimate_times(shapes, cold, ws);
  std::vector<double> warm(shapes.size());
  sim.estimate_times(shapes, warm, ws);
  GemmSimulator reference = GemmSimulator::for_gpu("a100");
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const double expected = reference.estimate(shapes[i]).time;
    EXPECT_EQ(expected, cold[i]);
    EXPECT_EQ(expected, warm[i]);
  }
  // The times-only path still populated the cache with full estimates.
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    expect_identical(reference.estimate(shapes[i]), sim.estimate(shapes[i]));
  }
}

TEST(EstimateMany, SequenceLatencyBatchedMatchesScalar) {
  const std::vector<GemmProblem> seq = {
      problem(2048, 2560, 2560), problem(2048, 2560, 2560),
      problem(80, 80, 2560), GemmProblem::bmm(64, 2048, 2048, 80)};
  GemmSimulator sim = GemmSimulator::for_gpu("a100");
  double expected = 0.0;
  for (const GemmProblem& p : seq) expected += sim.estimate(p).time;
  GemmSimulator::BatchWorkspace ws;
  EXPECT_EQ(expected, sim.sequence_latency(std::span<const GemmProblem>(seq),
                                           ws));
  EXPECT_EQ(expected, sim.sequence_latency(seq));
}

TEST(EstimateMany, MetricsOnPathStaysLockstep) {
  obs::MetricsRegistry::set_enabled(true);
  const std::vector<GemmProblem> shapes = shape_set();
  GemmSimulator sim = GemmSimulator::for_gpu("a100");
  sim.enable_cache();
  GemmSimulator::BatchWorkspace ws;
  std::vector<KernelEstimate> out(shapes.size());
  sim.estimate_many(shapes, out, ws);
  std::vector<double> times(shapes.size());
  sim.estimate_times(shapes, times, ws);
  obs::MetricsRegistry::set_enabled(false);
  const GemmSimulator reference = GemmSimulator::for_gpu("a100");
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    expect_identical(reference.estimate(shapes[i]), out[i]);
    EXPECT_EQ(reference.estimate(shapes[i]).time, times[i]);
  }
}

TEST(EstimateMany, SharedCacheAcrossThreadsStaysExact) {
  GemmSimulator sim = GemmSimulator::for_gpu("a100");
  sim.enable_cache();
  const GemmSimulator reference = GemmSimulator::for_gpu("a100");

  // 8 threads push overlapping batches through one shared cache; every
  // element of every batch must match the uncached scalar answer exactly.
  std::vector<std::thread> workers;
  std::vector<int> failures(8, 0);
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([w, &sim, &reference, &failures] {
      GemmSimulator::BatchWorkspace ws;
      std::vector<GemmProblem> batch;
      std::vector<KernelEstimate> out;
      for (int round = 0; round < 20; ++round) {
        batch.clear();
        for (int j = 0; j < 6; ++j) {
          const std::int64_t m = 64 * (1 + (w + round + j) % 10);
          batch.push_back(GemmProblem::gemm(m, 2560, 2560));
        }
        out.resize(batch.size());
        sim.estimate_many(batch, out, ws);
        for (std::size_t j = 0; j < batch.size(); ++j) {
          if (out[j].time != reference.estimate(batch[j]).time) {
            ++failures[static_cast<std::size_t>(w)];
          }
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (int f : failures) EXPECT_EQ(f, 0);
  EXPECT_LE(sim.cache()->stats().entries, 10u);  // 10 distinct shapes
}

TEST(EstimateCacheBatch, LookupManyInsertManyRoundTrip) {
  EstimateCache cache;
  const gpu::GpuSpec& gpu = gpu::gpu_by_name("a100");
  const std::vector<GemmProblem> shapes = shape_set();

  std::vector<EstimateCache::Key> keys;
  std::vector<KernelEstimate> estimates;
  for (const GemmProblem& p : shapes) {
    keys.push_back(EstimateCache::Key{p, TilePolicy::kAuto, &gpu});
    estimates.push_back(select_kernel(p, gpu));
  }

  EstimateCache::BatchScratch scratch;
  std::vector<KernelEstimate> out(keys.size());
  std::vector<std::uint8_t> hit(keys.size(), 2);
  EXPECT_EQ(cache.lookup_many(keys, out.data(), hit.data(), scratch), 0u);
  for (const std::uint8_t h : hit) EXPECT_EQ(h, 0);

  // Insert only the odd-indexed keys; the rest stay absent.
  std::vector<std::uint8_t> miss(keys.size(), 0);
  for (std::size_t i = 1; i < keys.size(); i += 2) miss[i] = 1;
  cache.insert_many(keys, estimates, miss.data(), scratch);

  std::fill(hit.begin(), hit.end(), 2);
  const std::size_t hits =
      cache.lookup_many(keys, out.data(), hit.data(), scratch);
  EXPECT_EQ(hits, keys.size() / 2);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(hit[i], i % 2 == 0 ? 0 : 1);
    if (hit[i]) expect_identical(estimates[i], out[i]);
  }

  // Times-only twin: same hit set, just the .time field.
  std::vector<double> times(keys.size(), -1.0);
  std::fill(hit.begin(), hit.end(), 2);
  EXPECT_EQ(cache.lookup_times_many(keys, times.data(), hit.data(), scratch),
            keys.size() / 2);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (hit[i]) {
      EXPECT_EQ(times[i], estimates[i].time);
    }
  }

  // insert_many never clobbers present entries (racing-miss semantics), and
  // a null miss mask means "insert everything absent".
  cache.insert_many(keys, estimates, nullptr, scratch);
  EXPECT_EQ(cache.stats().entries, keys.size());
}

TEST(EstimateCacheBatch, KeyHashMemoIsTransparent) {
  const gpu::GpuSpec& gpu = gpu::gpu_by_name("a100");
  const EstimateCache::Key a{problem(512, 512, 512), TilePolicy::kAuto, &gpu};
  EstimateCache::Key b = a;
  const std::size_t h = a.hash_value();  // memoizes inside a
  EXPECT_EQ(h, a.hash_value());
  EXPECT_EQ(h, b.hash_value());
  EXPECT_EQ(a, b);  // memo state never affects equality
}

/// Which problems of the set fault, evaluated one way or the other. The
/// failpoint contract: prob:P:seed triggers hash a stable per-operation
/// token, so the fire set is identical for scalar and batched evaluation
/// at candidate granularity.
std::vector<bool> scalar_fault_set(const std::vector<GemmProblem>& shapes,
                                   bool with_cache) {
  std::vector<bool> faulted;
  for (const GemmProblem& p : shapes) {
    GemmSimulator sim = GemmSimulator::for_gpu("a100");
    if (with_cache) sim.enable_cache();
    bool f = false;
    try {
      sim.estimate(p);
    } catch (const fail::InjectedFault&) {
      f = true;
    }
    faulted.push_back(f);
  }
  return faulted;
}

std::vector<bool> batched_fault_set(const std::vector<GemmProblem>& shapes,
                                    bool with_cache) {
  std::vector<bool> faulted;
  GemmSimulator::BatchWorkspace ws;
  for (const GemmProblem& p : shapes) {
    GemmSimulator sim = GemmSimulator::for_gpu("a100");
    if (with_cache) sim.enable_cache();
    // One candidate's GEMMs per batch, the search pipeline's granularity.
    const std::vector<GemmProblem> batch = {p};
    std::vector<KernelEstimate> out(batch.size());
    bool f = false;
    try {
      sim.estimate_many(batch, out, ws);
    } catch (const fail::InjectedFault&) {
      f = true;
    }
    faulted.push_back(f);
  }
  return faulted;
}

TEST(EstimateMany, SelectKernelDrillFaultsSameCandidates) {
  const std::vector<GemmProblem> shapes = shape_set();
  fail::clear();
  fail::configure("gemmsim.select_kernel=prob:0.5:1234");
  const std::vector<bool> scalar = scalar_fault_set(shapes, false);
  const std::vector<bool> batched = batched_fault_set(shapes, false);
  fail::clear();
  EXPECT_EQ(scalar, batched);
  // The drill must actually bite for the comparison to mean anything.
  EXPECT_NE(std::count(scalar.begin(), scalar.end(), true), 0);
}

TEST(EstimateMany, CacheLookupDrillFaultsSameCandidates) {
  const std::vector<GemmProblem> shapes = shape_set();
  fail::clear();
  fail::configure("gemmsim.cache.lookup=prob:0.5:77");
  const std::vector<bool> scalar = scalar_fault_set(shapes, true);
  const std::vector<bool> batched = batched_fault_set(shapes, true);
  fail::clear();
  EXPECT_EQ(scalar, batched);
  EXPECT_NE(std::count(scalar.begin(), scalar.end(), true), 0);
}

TEST(EstimateMany, MultiProblemBatchThrowsIffAnyMemberFaults) {
  const std::vector<GemmProblem> shapes = shape_set();
  fail::clear();
  fail::configure("gemmsim.select_kernel=prob:0.5:1234");
  const std::vector<bool> scalar = scalar_fault_set(shapes, false);
  const bool any_scalar =
      std::count(scalar.begin(), scalar.end(), true) != 0;
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  std::vector<KernelEstimate> out(shapes.size());
  bool batch_threw = false;
  try {
    sim.estimate_many(shapes, out);
  } catch (const fail::InjectedFault&) {
    batch_threw = true;
  }
  fail::clear();
  EXPECT_EQ(any_scalar, batch_threw);
}

}  // namespace
}  // namespace codesign::gemm

namespace codesign::tfm {
namespace {

TEST(LayerWorkspace, BatchedLayerTotalTimeMatchesAnalyzeLayer) {
  LayerWorkspace ws;
  for (const char* name : {"pythia-70m", "gpt3-2.7b", "llama2-7b"}) {
    const TransformerConfig cfg = model_by_name(name);
    gemm::GemmSimulator sim = gemm::GemmSimulator::for_gpu("a100");
    sim.enable_cache();
    const double batched = layer_total_time(cfg, sim, ws);
    EXPECT_EQ(batched, layer_total_time(cfg, sim));
    EXPECT_EQ(batched, analyze_layer(cfg, sim).total_time);
    // Warm pass through the same workspace: still bit-identical.
    EXPECT_EQ(batched, layer_total_time(cfg, sim, ws));
  }
}

}  // namespace
}  // namespace codesign::tfm
