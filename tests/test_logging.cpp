// Tests for the leveled logger: CODESIGN_LOG parsing (including the
// one-time warning on an unrecognized value), level filtering, and
// thread-safety of concurrent logging / lazy initialization.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"

namespace codesign {
namespace {

/// Restores the log level (and its lazy-init state) around each test, and
/// scrubs CODESIGN_LOG so tests don't inherit the harness environment.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("CODESIGN_LOG");
    reset_log_level_for_testing();
  }
  void TearDown() override {
    ::unsetenv("CODESIGN_LOG");
    reset_log_level_for_testing();
  }
};

TEST_F(LoggingTest, ParseLogLevelAcceptsKnownNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  // Case and surrounding whitespace are forgiven.
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("  Warn \t"), LogLevel::kWarn);
}

TEST_F(LoggingTest, ParseLogLevelRejectsUnknownNames) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("infoo"), std::nullopt);
  EXPECT_EQ(parse_log_level("2"), std::nullopt);
}

TEST_F(LoggingTest, DefaultsToInfoWithoutEnv) {
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST_F(LoggingTest, ReadsLevelFromEnvironment) {
  ::setenv("CODESIGN_LOG", "error", 1);
  reset_log_level_for_testing();
  EXPECT_EQ(log_level(), LogLevel::kError);

  ::setenv("CODESIGN_LOG", "debug", 1);
  reset_log_level_for_testing();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LoggingTest, UnknownEnvValueWarnsOnceAndFallsBackToInfo) {
  ::setenv("CODESIGN_LOG", "bogus", 1);
  reset_log_level_for_testing();

  ::testing::internal::CaptureStderr();
  const LogLevel first = log_level();
  const LogLevel second = log_level();  // cached: must not warn again
  const std::string err = ::testing::internal::GetCapturedStderr();

  EXPECT_EQ(first, LogLevel::kInfo);
  EXPECT_EQ(second, LogLevel::kInfo);
  EXPECT_NE(err.find("unknown CODESIGN_LOG value 'bogus'"), std::string::npos);
  EXPECT_NE(err.find("using info"), std::string::npos);
  // Exactly one warning line.
  EXPECT_EQ(err.find("unknown CODESIGN_LOG"),
            err.rfind("unknown CODESIGN_LOG"));
}

TEST_F(LoggingTest, SetLogLevelSuppressesEnvAndWarning) {
  ::setenv("CODESIGN_LOG", "bogus", 1);
  reset_log_level_for_testing();
  set_log_level(LogLevel::kError);

  ::testing::internal::CaptureStderr();
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_message(LogLevel::kWarn, "dropped");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, MessagesBelowLevelAreDropped) {
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  log_message(LogLevel::kDebug, "quiet");
  log_message(LogLevel::kInfo, "quiet");
  log_message(LogLevel::kWarn, "loud warn");
  log_message(LogLevel::kError, "loud error");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("quiet"), std::string::npos);
  EXPECT_NE(err.find("[WARN] loud warn\n"), std::string::npos);
  EXPECT_NE(err.find("[ERROR] loud error\n"), std::string::npos);
}

TEST_F(LoggingTest, LogLineStreamsToStderr) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  LOG_INFO << "x = " << 42;
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[INFO] x = 42\n"), std::string::npos);
}

// Exercised under CODESIGN_SANITIZE=thread by tools/check.sh: concurrent
// lazy initialization of the level plus concurrent emission must be clean.
TEST_F(LoggingTest, ConcurrentLoggingAndInitIsSafe) {
  ::setenv("CODESIGN_LOG", "bogus", 1);
  reset_log_level_for_testing();

  ::testing::internal::CaptureStderr();
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        log_message(LogLevel::kInfo,
                    "t" + std::to_string(t) + " i" + std::to_string(i));
        (void)log_level();
      }
    });
  }
  for (auto& w : workers) w.join();
  const std::string err = ::testing::internal::GetCapturedStderr();

  // The init race resolved to exactly one warning, and every line arrived
  // whole (the io mutex kept fprintf calls from interleaving).
  EXPECT_EQ(err.find("unknown CODESIGN_LOG"),
            err.rfind("unknown CODESIGN_LOG"));
  std::size_t lines = 0;
  for (char c : err) lines += (c == '\n');
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads * 50 + 1));
}

}  // namespace
}  // namespace codesign
