// Tests for transformer/config_parse.hpp.
#include "transformer/config_parse.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace codesign::tfm {
namespace {

TEST(ConfigParse, MinimalSpec) {
  const auto c = parse_config_string("h=2560,a=32,L=32");
  EXPECT_EQ(c.hidden_size, 2560);
  EXPECT_EQ(c.num_heads, 32);
  EXPECT_EQ(c.num_layers, 32);
  // Defaults preserved.
  EXPECT_EQ(c.seq_len, 2048);
  EXPECT_EQ(c.vocab_size, 50304);
  EXPECT_EQ(c.activation, Activation::kGelu);
  EXPECT_EQ(c.kind, ModelKind::kDecoder);
  EXPECT_EQ(c.name, "custom");
}

TEST(ConfigParse, FullSpec) {
  const auto c = parse_config_string(
      "name=my-7b,h=4096,a=32,kv=8,L=32,s=4096,b=2,v=32000,t=2,dff=11008,"
      "act=swiglu,pos=rotary,attn=flash,kind=decoder,parallel=1,tied=0");
  EXPECT_EQ(c.name, "my-7b");
  EXPECT_EQ(c.num_kv_heads, 8);
  EXPECT_EQ(c.tensor_parallel, 2);
  EXPECT_EQ(c.d_ff(), 11008);
  EXPECT_EQ(c.activation, Activation::kSwiGlu);
  EXPECT_EQ(c.pos_embedding, PosEmbedding::kRotary);
  EXPECT_EQ(c.attention, AttentionImpl::kFlash);
  EXPECT_TRUE(c.parallel_layers);
  EXPECT_FALSE(c.tied_embeddings);
}

TEST(ConfigParse, WhitespaceAndCaseTolerant) {
  const auto c =
      parse_config_string(" h=768 , A=12 , layers=12 , ACT=SwiGLU ");
  EXPECT_EQ(c.hidden_size, 768);
  EXPECT_EQ(c.num_heads, 12);
  EXPECT_EQ(c.activation, Activation::kSwiGlu);
}

TEST(ConfigParse, EncoderKind) {
  const auto c = parse_config_string("h=1024,a=16,L=24,kind=encoder,v=30528");
  EXPECT_EQ(c.kind, ModelKind::kEncoder);
}

TEST(ConfigParse, RequiresCoreFields) {
  EXPECT_THROW(parse_config_string(""), ConfigError);
  EXPECT_THROW(parse_config_string("h=2560,a=32"), ConfigError);  // no L
  EXPECT_THROW(parse_config_string("a=32,L=32"), ConfigError);    // no h
}

TEST(ConfigParse, RejectsMalformedEntries) {
  EXPECT_THROW(parse_config_string("h=2560,a=32,L=32,bogus=1"), ConfigError);
  EXPECT_THROW(parse_config_string("h2560"), ConfigError);
  EXPECT_THROW(parse_config_string("h="), ConfigError);
  EXPECT_THROW(parse_config_string("=32"), ConfigError);
  EXPECT_THROW(parse_config_string("h=abc,a=32,L=32"), Error);
  EXPECT_THROW(parse_config_string("h=2560,a=32,L=32,act=relu"), ConfigError);
  EXPECT_THROW(parse_config_string("h=2560,a=32,L=32,parallel=maybe"),
               ConfigError);
}

TEST(ConfigParse, ResultIsValidated) {
  // h % a != 0 must be rejected by the embedded validate().
  EXPECT_THROW(parse_config_string("h=2560,a=48,L=32"), ConfigError);
  // t must divide a.
  EXPECT_THROW(parse_config_string("h=2560,a=32,L=32,t=6"), ConfigError);
}

TEST(ConfigParse, EmptySegmentsIgnored) {
  const auto c = parse_config_string("h=768,a=12,L=12,,");
  EXPECT_EQ(c.hidden_size, 768);
}

TEST(ConfigParse, RejectsOverflowingAndNonFiniteNumerics) {
  // Overflow out of int64 must be a typed ConfigError naming the key, not
  // a silently clamped value.
  try {
    parse_config_string("h=99999999999999999999999,a=32,L=32");
    FAIL() << "overflowing h accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("'h'"), std::string::npos);
  }
  EXPECT_THROW(parse_config_string("h=2560,a=32,L=nan"), ConfigError);
  EXPECT_THROW(parse_config_string("h=inf,a=32,L=32"), ConfigError);
  EXPECT_THROW(parse_config_string("h=2560,a=32,L=32,s=1e99"), ConfigError);
}

TEST(ConfigParse, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_config_string("h=2560,a=32,L=32,h=5120"), ConfigError);
  try {
    parse_config_string("h=2560,a=32,a=40,L=32");
    FAIL() << "duplicate a accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("'a'"), std::string::npos);
  }
  // Aliases collide with their canonical key: "layers" IS "L".
  EXPECT_THROW(parse_config_string("h=2560,a=32,L=32,layers=48"), ConfigError);
}

}  // namespace
}  // namespace codesign::tfm
