// Tests for transformer/layer_model.hpp — per-op latency and shares.
#include "transformer/layer_model.hpp"

#include <gtest/gtest.h>

#include "transformer/model_zoo.hpp"

namespace codesign::tfm {
namespace {

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

TEST(LayerModel, TimesArePositiveAndDecompose) {
  const auto r = analyze_layer(model_by_name("gpt3-2.7b"), sim());
  EXPECT_GT(r.total_time, 0.0);
  EXPECT_GT(r.gemm_time, 0.0);
  EXPECT_GT(r.non_gemm_time, 0.0);
  EXPECT_NEAR(r.gemm_time + r.non_gemm_time, r.total_time, 1e-12);
  EXPECT_GT(r.throughput_tflops, 0.0);
  EXPECT_GT(r.gemm_fraction, 0.0);
  EXPECT_LT(r.gemm_fraction, 1.0);
}

TEST(LayerModel, LeanTotalTimeIsBitIdenticalToTheReport) {
  // layer_total_time skips the per-op report but must sum the exact same
  // estimates in the exact same order — bitwise equality, across every
  // zoo architecture (bmm and flash attention, parallel layers, GQA) and
  // with a cached simulator.
  for (const std::string& name : known_models()) {
    const TransformerConfig c = model_by_name(name);
    const auto s = sim();
    EXPECT_EQ(layer_total_time(c, s), analyze_layer(c, s).total_time) << name;
  }
  auto cached = sim();
  cached.enable_cache();
  const TransformerConfig c = model_by_name("gpt3-2.7b");
  const double uncached = analyze_layer(c, sim()).total_time;
  EXPECT_EQ(layer_total_time(c, cached), uncached);  // miss path
  EXPECT_EQ(layer_total_time(c, cached), uncached);  // hit path
}

TEST(LayerModel, SharesSumToOne) {
  const auto r = analyze_layer(model_by_name("gpt3-2.7b"), sim());
  double total = 0.0;
  for (const OpLatency& o : r.ops) total += o.time / r.total_time;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LayerModel, GemmFractionGrowsWithModelSize) {
  // Fig 2's headline: 68.3% for medium models, 94.9% for large ones. The
  // ordering (and rough magnitudes) must reproduce.
  const double small =
      analyze_layer(model_by_name("gpt3-125m"), sim()).gemm_fraction;
  const double medium =
      analyze_layer(model_by_name("gpt3-2.7b"), sim()).gemm_fraction;
  const double large =
      analyze_layer(model_by_name("gpt3-175b"), sim()).gemm_fraction;
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  EXPECT_GT(large, 0.85);
}

TEST(LayerModel, QkvAndMlpDominateLargeModelGemms) {
  // Fig 11: for large models the QKV and MLP GEMMs dominate; AOV is the
  // smallest GEMM.
  const auto r = analyze_layer(model_by_name("gpt3-175b"), sim());
  const double qkv = r.gemm_share_of(LayerOp::kQkvTransform);
  const double mlp = r.gemm_share_of(LayerOp::kMlpUp) +
                     r.gemm_share_of(LayerOp::kMlpDown);
  const double aov = r.gemm_share_of(LayerOp::kAttentionOverValue);
  const double score = r.gemm_share_of(LayerOp::kAttentionScore);
  EXPECT_GT(qkv + mlp, 0.6);
  EXPECT_LT(aov, score + 1e-12);
  EXPECT_LT(aov, 0.15);
}

TEST(LayerModel, ShareAccessors) {
  const auto r = analyze_layer(model_by_name("gpt3-2.7b"), sim());
  double total_share = 0.0;
  for (const OpLatency& o : r.ops) {
    (void)o;
  }
  for (LayerOp op : {LayerOp::kLayerNorm1, LayerOp::kQkvTransform,
                     LayerOp::kAttentionScore, LayerOp::kSoftmax,
                     LayerOp::kAttentionOverValue, LayerOp::kPostAttnProjection,
                     LayerOp::kResidualAdd1, LayerOp::kLayerNorm2,
                     LayerOp::kMlpUp, LayerOp::kActivation, LayerOp::kMlpDown,
                     LayerOp::kResidualAdd2}) {
    total_share += r.share_of(op);
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);

  double gemm_share = 0.0;
  for (LayerOp op : {LayerOp::kQkvTransform, LayerOp::kAttentionScore,
                     LayerOp::kAttentionOverValue,
                     LayerOp::kPostAttnProjection, LayerOp::kMlpUp,
                     LayerOp::kMlpDown}) {
    gemm_share += r.gemm_share_of(op);
  }
  EXPECT_NEAR(gemm_share, 1.0, 1e-9);
}

TEST(LayerModel, ParallelLayersFasterSameGemms) {
  TransformerConfig seq_cfg = model_by_name("gpt3-2.7b");
  TransformerConfig par_cfg = seq_cfg;
  par_cfg.parallel_layers = true;
  const auto rs = analyze_layer(seq_cfg, sim());
  const auto rp = analyze_layer(par_cfg, sim());
  // §VI-C1: the fusion reduces non-GEMM time but "does not impact our
  // analysis at all" — same GEMM time.
  EXPECT_NEAR(rp.gemm_time, rs.gemm_time, rs.gemm_time * 1e-9);
  EXPECT_LT(rp.non_gemm_time, rs.non_gemm_time);
  EXPECT_LT(rp.total_time, rs.total_time);
}

TEST(LayerModel, FlashAttentionFasterForUnalignedHeads) {
  // §VI-B's recommendation: FlashAttention mitigates h/a misalignment for
  // small models.
  TransformerConfig bmm_cfg = model_by_name("gpt3-2.7b");  // h/a = 80
  TransformerConfig flash_cfg = bmm_cfg;
  flash_cfg.attention = AttentionImpl::kFlash;
  const auto rb = analyze_layer(bmm_cfg, sim());
  const auto rf = analyze_layer(flash_cfg, sim());
  EXPECT_LT(rf.total_time, rb.total_time);
}

TEST(LayerModel, DetailStringsPopulated) {
  const auto r = analyze_layer(model_by_name("gpt3-2.7b"), sim());
  for (const OpLatency& o : r.ops) {
    EXPECT_FALSE(o.name.empty());
    EXPECT_FALSE(o.detail.empty());
    EXPECT_GT(o.time, 0.0);
  }
}

TEST(ModelModel, TotalsCompose) {
  const TransformerConfig c = model_by_name("gpt3-2.7b");
  const auto r = analyze_model(c, sim());
  EXPECT_NEAR(r.total_time,
              32.0 * r.layer.total_time + r.embedding_time +
                  r.final_ln_time + r.logit_time,
              r.total_time * 1e-12);
  EXPECT_GT(r.tokens_per_second, 0.0);
  EXPECT_GT(r.throughput_tflops, 0.0);
  EXPECT_GT(r.logit_time, r.embedding_time);  // the logit GEMM is heavy
}

TEST(ModelModel, BiggerModelSlower) {
  const auto small = analyze_model(model_by_name("gpt3-125m"), sim());
  const auto big = analyze_model(model_by_name("gpt3-6.7b"), sim());
  EXPECT_GT(big.total_time, small.total_time);
  EXPECT_LT(big.tokens_per_second, small.tokens_per_second);
}

TEST(ModelModel, BetterGpuFaster) {
  const TransformerConfig c = model_by_name("gpt3-2.7b");
  const auto on_a100 = analyze_model(c, gemm::GemmSimulator::for_gpu("a100"));
  const auto on_v100 = analyze_model(c, gemm::GemmSimulator::for_gpu("v100"));
  const auto on_h100 = analyze_model(c, gemm::GemmSimulator::for_gpu("h100"));
  EXPECT_LT(on_a100.total_time, on_v100.total_time);
  EXPECT_LT(on_h100.total_time, on_a100.total_time);
}

}  // namespace
}  // namespace codesign::tfm
