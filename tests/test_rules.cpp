// Tests for advisor/rules.hpp — the §VI-B rule engine.
#include "advisor/rules.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::advisor {
namespace {

using tfm::model_by_name;

RuleContext a100_ctx() {
  RuleContext ctx;
  ctx.gpu = &gpu::gpu_by_name("a100");
  return ctx;
}

const RuleResult& find(const std::vector<RuleResult>& rs, RuleId id) {
  for (const RuleResult& r : rs) {
    if (r.id == id) return r;
  }
  throw Error("rule not found in results");
}

TEST(Rules, Gpt3DefaultFailsHeadDimAndVocab) {
  // GPT-3 2.7B: h/a = 80 (granule 16 < 64) and v = 50257 (odd).
  const auto rs = check_rules(model_by_name("gpt3-2.7b"), a100_ctx());
  EXPECT_FALSE(find(rs, RuleId::kHeadDimPow2).passed);
  EXPECT_EQ(find(rs, RuleId::kHeadDimPow2).metric, 16.0);
  EXPECT_FALSE(find(rs, RuleId::kVocabDivisibleBy64).passed);
}

TEST(Rules, C2VariantFixesHeadDim) {
  const auto rs = check_rules(model_by_name("gpt3-2.7b-c2"), a100_ctx());
  EXPECT_TRUE(find(rs, RuleId::kHeadDimPow2).passed);
  EXPECT_EQ(find(rs, RuleId::kHeadDimPow2).metric, 64.0);
}

TEST(Rules, C1VariantWorseHeadDim) {
  const auto rs = check_rules(model_by_name("gpt3-2.7b-c1"), a100_ctx());
  EXPECT_FALSE(find(rs, RuleId::kHeadDimPow2).passed);
  EXPECT_EQ(find(rs, RuleId::kHeadDimPow2).metric, 8.0);  // h/a = 40
}

TEST(Rules, PythiaPassesVocabRule) {
  const auto rs = check_rules(model_by_name("pythia-410m"), a100_ctx());
  EXPECT_TRUE(find(rs, RuleId::kVocabDivisibleBy64).passed);
}

TEST(Rules, V100ContextLoosensGranule) {
  // On V100 full alignment is 8 elements, so h/a = 80 passes there.
  RuleContext ctx;
  ctx.gpu = &gpu::gpu_by_name("v100");
  const auto rs = check_rules(model_by_name("gpt3-2.7b"), ctx);
  EXPECT_TRUE(find(rs, RuleId::kHeadDimPow2).passed);
}

TEST(Rules, DefaultContextAssumesA100Granule) {
  RuleContext ctx;  // no GPU
  const auto rs = check_rules(model_by_name("gpt3-2.7b"), ctx);
  EXPECT_FALSE(find(rs, RuleId::kHeadDimPow2).passed);
}

TEST(Rules, TokensRuleUsesBs) {
  // b = 3 (odd) with s = 2048 still gives b·s divisible by 2048 — the
  // paper's note that b itself need not be a power of two.
  tfm::TransformerConfig c = model_by_name("gpt3-2.7b-c2").with_microbatch(3);
  const auto rs = check_rules(c, a100_ctx());
  EXPECT_TRUE(find(rs, RuleId::kTokensPow2).passed);
}

TEST(Rules, HiddenPerTpRule) {
  // h = 2560, t = 4 → h/t = 640, granule 128 ≥ 64: pass.
  tfm::TransformerConfig c =
      model_by_name("gpt3-2.7b").with_tensor_parallel(4).with_vocab(50304);
  const auto rs = check_rules(c, a100_ctx());
  EXPECT_TRUE(find(rs, RuleId::kHiddenPerTpPow2).passed);
}

TEST(Rules, PipelineDivisibility) {
  RuleContext ctx = a100_ctx();
  ctx.pipeline_stages = 8;
  const auto rs = check_rules(model_by_name("gpt3-2.7b"), ctx);  // L = 32
  EXPECT_TRUE(find(rs, RuleId::kLayersDivisibleByPipeline).passed);
  ctx.pipeline_stages = 6;
  const auto rs6 = check_rules(model_by_name("gpt3-2.7b"), ctx);
  EXPECT_FALSE(find(rs6, RuleId::kLayersDivisibleByPipeline).passed);
  EXPECT_EQ(find(rs6, RuleId::kLayersDivisibleByPipeline).severity,
            RuleSeverity::kPerf);
}

TEST(Rules, PipelineRuleAdvisoryWhenOff) {
  const auto rs = check_rules(model_by_name("gpt3-2.7b"), a100_ctx());
  EXPECT_EQ(find(rs, RuleId::kLayersDivisibleByPipeline).severity,
            RuleSeverity::kAdvisory);
}

TEST(Rules, MlpIntermediateRule) {
  // The literal round(8h/3) SwiGLU width is odd → fails; Llama-2-7B's
  // 11008 (granule 256) passes.
  tfm::TransformerConfig naive = model_by_name("llama2-7b");
  naive.mlp_intermediate = 0;  // resolve to round(8h/3) = 10923
  const auto rs = check_rules(naive, a100_ctx());
  EXPECT_FALSE(find(rs, RuleId::kMlpIntermediatePow2).passed);
  EXPECT_EQ(find(rs, RuleId::kMlpIntermediatePow2).metric, 1.0);

  const auto good = check_rules(model_by_name("llama2-7b"), a100_ctx());
  EXPECT_TRUE(find(good, RuleId::kMlpIntermediatePow2).passed);
}

TEST(Rules, SatisfiesPerformanceRules) {
  // C2 with padded vocab passes everything above advisory.
  tfm::TransformerConfig good = model_by_name("gpt3-2.7b-c2").with_vocab(50304);
  EXPECT_TRUE(satisfies_performance_rules(good, a100_ctx()));
  EXPECT_FALSE(
      satisfies_performance_rules(model_by_name("gpt3-2.7b"), a100_ctx()));
}

TEST(Rules, CountFailures) {
  const auto rs = check_rules(model_by_name("gpt3-2.7b"), a100_ctx());
  EXPECT_EQ(count_failures(rs, RuleSeverity::kCritical), 0);
  EXPECT_GE(count_failures(rs, RuleSeverity::kPerf), 2);  // head dim + vocab
  EXPECT_GE(count_failures(rs, RuleSeverity::kAdvisory),
            count_failures(rs, RuleSeverity::kPerf));
}

TEST(Rules, MessagesCarryNumbers) {
  const auto rs = check_rules(model_by_name("gpt3-2.7b"), a100_ctx());
  EXPECT_NE(find(rs, RuleId::kVocabDivisibleBy64).message.find("50304"),
            std::string::npos);  // suggests the padded size
  EXPECT_NE(find(rs, RuleId::kHeadDimPow2).message.find("80"),
            std::string::npos);
}

TEST(Rules, InvalidContextRejected) {
  RuleContext ctx = a100_ctx();
  ctx.pipeline_stages = 0;
  EXPECT_THROW(check_rules(model_by_name("gpt3-2.7b"), ctx), Error);
}

TEST(Rules, FastVerdictAgreesWithCheckRulesFold) {
  // satisfies_performance_rules is a messageless fast path; its verdict
  // must equal folding "every non-advisory rule passed" over check_rules
  // for every zoo model, GPU, and pipeline-stage setting.
  for (const std::string& name : tfm::known_models()) {
    const auto c = model_by_name(name);
    for (const char* gpu : {"a100", "v100", "h100"}) {
      for (int stages : {1, 2, 3}) {
        RuleContext ctx;
        ctx.gpu = &gpu::gpu_by_name(gpu);
        ctx.pipeline_stages = stages;
        bool folded = true;
        for (const RuleResult& r : check_rules(c, ctx)) {
          if (!r.passed && r.severity != RuleSeverity::kAdvisory) {
            folded = false;
          }
        }
        EXPECT_EQ(satisfies_performance_rules(c, ctx), folded)
            << name << " on " << gpu << " stages=" << stages;
      }
    }
  }
}

TEST(Rules, NamesForAllRules) {
  for (const RuleResult& r : check_rules(model_by_name("gpt3-2.7b"),
                                         a100_ctx())) {
    EXPECT_STRNE(rule_name(r.id), "?");
    EXPECT_STRNE(severity_name(r.severity), "?");
    EXPECT_FALSE(r.message.empty());
  }
}

}  // namespace
}  // namespace codesign::advisor
