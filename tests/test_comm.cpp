// Tests for the comm substrate — Table III clusters and the collective
// cost model behind the "t as small as possible" rule.
#include <gtest/gtest.h>

#include "comm/cluster_spec.hpp"
#include "comm/collectives.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::comm {
namespace {

TEST(ClusterSpec, TableIIISystemsPresent) {
  const auto names = known_clusters();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_NO_THROW(cluster_by_name("aws-p4d"));
  EXPECT_NO_THROW(cluster_by_name("ORNL-Summit"));  // case-insensitive
  EXPECT_NO_THROW(cluster_by_name("sdsc-expanse"));
  EXPECT_THROW(cluster_by_name("frontier"), LookupError);
}

TEST(ClusterSpec, TableIIIValues) {
  const ClusterSpec& p4d = cluster_by_name("aws-p4d");
  EXPECT_EQ(p4d.gpus_per_node, 8);
  EXPECT_EQ(p4d.gpu().id, "a100-40gb");
  EXPECT_DOUBLE_EQ(p4d.intra_node_bandwidth, 600 * GBps);

  const ClusterSpec& summit = cluster_by_name("ornl-summit");
  EXPECT_EQ(summit.gpus_per_node, 6);  // the §VII-A case study's premise
  EXPECT_EQ(summit.gpu().id, "v100-16gb");
  EXPECT_DOUBLE_EQ(summit.intra_node_bandwidth, 100 * GBps);

  const ClusterSpec& expanse = cluster_by_name("sdsc-expanse");
  EXPECT_EQ(expanse.gpus_per_node, 4);
  EXPECT_EQ(expanse.gpu().id, "v100-32gb");
}

TEST(ClusterSpec, ValidateRejectsBrokenSpecs) {
  ClusterSpec c = cluster_by_name("aws-p4d");
  c.gpus_per_node = 0;
  EXPECT_THROW(c.validate(), ConfigError);
  c = cluster_by_name("aws-p4d");
  c.gpu_id = "tpu";
  EXPECT_THROW(c.validate(), LookupError);
}

TEST(Collectives, RingFormulas) {
  // 4 ranks, 1 GB, 100 GB/s, zero latency.
  const double gb = 1e9;
  const double bw = 100e9;
  EXPECT_DOUBLE_EQ(
      collective_time(Collective::kAllReduce, gb, 4, bw, 0.0),
      2.0 * 0.75 * gb / bw);
  EXPECT_DOUBLE_EQ(
      collective_time(Collective::kAllGather, gb, 4, bw, 0.0),
      0.75 * gb / bw);
  EXPECT_DOUBLE_EQ(
      collective_time(Collective::kReduceScatter, gb, 4, bw, 0.0),
      collective_time(Collective::kAllGather, gb, 4, bw, 0.0));
}

TEST(Collectives, LatencyTerm) {
  const double t = collective_time(Collective::kAllReduce, 0.0, 4, 1e9, 5e-6);
  EXPECT_DOUBLE_EQ(t, 2.0 * 3 * 5e-6);
}

TEST(Collectives, SingleRankFree) {
  EXPECT_DOUBLE_EQ(
      collective_time(Collective::kAllReduce, 1e9, 1, 1e9, 1e-6), 0.0);
}

TEST(Collectives, MoreRanksMoreTime) {
  double prev = 0.0;
  for (int ranks : {2, 4, 8}) {
    const double t =
        collective_time(Collective::kAllReduce, 1e9, ranks, 100e9, 5e-6);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Collectives, Validation) {
  EXPECT_THROW(collective_time(Collective::kAllReduce, 1.0, 0, 1e9, 0.0),
               Error);
  EXPECT_THROW(collective_time(Collective::kAllReduce, -1.0, 2, 1e9, 0.0),
               Error);
  EXPECT_THROW(collective_time(Collective::kAllReduce, 1.0, 2, 0.0, 0.0),
               Error);
  const ClusterSpec& p4d = cluster_by_name("aws-p4d");
  EXPECT_THROW(
      intra_node_collective_time(Collective::kAllReduce, 1.0, 9, p4d),
      Error);
}

TEST(TpComm, LayerCommGrowsWithT) {
  const auto base = tfm::model_by_name("gpt3-2.7b").with_vocab(50304);
  const ClusterSpec& p4d = cluster_by_name("aws-p4d");
  double prev = -1.0;
  for (std::int64_t t : {1, 2, 4, 8}) {
    const double c = tp_layer_comm_time(base.with_tensor_parallel(t), p4d);
    EXPECT_GT(c, prev) << t;
    prev = c;
  }
  // t = 1 is communication-free.
  EXPECT_DOUBLE_EQ(tp_layer_comm_time(base, p4d), 0.0);
}

TEST(TpComm, TotalTimeTradeoff) {
  // Per-GPU compute shrinks with t; comm grows. On p4d's 600 GB/s NVLink
  // the compute win dominates through t = 8 for a 2.7B layer, but the
  // marginal speedup decays — the quantitative "t as small as possible".
  const auto base = tfm::model_by_name("gpt3-2.7b").with_vocab(50304);
  const ClusterSpec& p4d = cluster_by_name("aws-p4d");
  const auto t1 = tp_total_layer_time(base, p4d);
  const auto t2 = tp_total_layer_time(base.with_tensor_parallel(2), p4d);
  const auto t8 = tp_total_layer_time(base.with_tensor_parallel(8), p4d);
  EXPECT_LT(t2.total_time, t1.total_time);
  // Efficiency loss: t=8 achieves less than 8/2 = 4x over t=2.
  EXPECT_LT(t2.total_time / t8.total_time, 4.0);
  EXPECT_GT(t8.comm_fraction, t2.comm_fraction);
  EXPECT_DOUBLE_EQ(t1.comm_fraction, 0.0);
}

TEST(TpComm, SlowFabricHurtsMore) {
  // The same model pays a larger comm fraction on Summit's 100 GB/s
  // NVLink than on p4d's 600 GB/s.
  const auto cfg = tfm::model_by_name("gpt3-1.3b")
                       .with_tensor_parallel(2)
                       .with_vocab(50304);
  const auto p4d = tp_total_layer_time(cfg, cluster_by_name("aws-p4d"));
  const auto summit =
      tp_total_layer_time(cfg, cluster_by_name("ornl-summit"));
  EXPECT_GT(summit.comm_fraction, p4d.comm_fraction);
}

TEST(TpComm, RejectsOversizedT) {
  const auto cfg = tfm::model_by_name("gpt3-2.7b")
                       .with_tensor_parallel(8)
                       .with_vocab(50304);
  EXPECT_THROW(tp_total_layer_time(cfg, cluster_by_name("sdsc-expanse")),
               Error);  // 4-GPU nodes
}

TEST(Collectives, Names) {
  EXPECT_STREQ(collective_name(Collective::kAllReduce), "all_reduce");
  EXPECT_STREQ(collective_name(Collective::kAllGather), "all_gather");
  EXPECT_STREQ(collective_name(Collective::kReduceScatter), "reduce_scatter");
}

}  // namespace
}  // namespace codesign::comm
