// Tests for transformer/params.hpp — the paper's P = 12h²L + 13hL + (v+s)h
// formula against a brute-force weight enumeration.
#include "transformer/params.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <tuple>

#include "transformer/model_zoo.hpp"

namespace codesign::tfm {
namespace {

TransformerConfig make(std::int64_t h, std::int64_t a, std::int64_t L,
                       std::int64_t v = 50304, std::int64_t s = 2048) {
  TransformerConfig c;
  c.name = "t";
  c.hidden_size = h;
  c.num_heads = a;
  c.num_layers = L;
  c.vocab_size = v;
  c.seq_len = s;
  return c;
}

// Property suite: for the §III-C architecture the formula must match the
// enumeration exactly except for the final LayerNorm's 2h (a lower-order
// term the paper's formula omits).
class ParamFormula
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(ParamFormula, MatchesEnumerationUpToFinalLn) {
  const auto [h, a, L] = GetParam();
  const TransformerConfig c = make(h, a, L);
  const double formula = formula_param_count(c);
  const auto exact = static_cast<double>(exact_param_count(c));
  EXPECT_DOUBLE_EQ(exact - formula, 2.0 * static_cast<double>(h));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParamFormula,
    ::testing::Values(std::make_tuple(768, 12, 12),
                      std::make_tuple(1024, 16, 24),
                      std::make_tuple(2048, 16, 24),
                      std::make_tuple(2560, 32, 32),
                      std::make_tuple(4096, 32, 32),
                      std::make_tuple(5120, 40, 40),
                      std::make_tuple(12288, 96, 96)));

TEST(Params, ApproxIsLeadingOrder) {
  const TransformerConfig c = make(12288, 96, 96);
  const double approx = approx_param_count(c);
  const auto exact = static_cast<double>(exact_param_count(c));
  // For GPT-3 175B scale the 12h²L term carries ~95% of the count.
  EXPECT_GT(approx / exact, 0.90);
  EXPECT_LT(approx / exact, 1.0);
}

TEST(Params, KnownModelSizes) {
  // Marketing-name parameter counts should land close to the exact count.
  const auto close = [](const char* name, double expected, double tol) {
    const auto p = static_cast<double>(
        exact_param_count(model_by_name(name)));
    EXPECT_NEAR(p / expected, 1.0, tol) << name << " -> " << p;
  };
  close("gpt3-2.7b", 2.65e9, 0.05);
  close("gpt3-6.7b", 6.7e9, 0.05);
  close("gpt3-175b", 175e9, 0.02);
  close("pythia-410m", 405e6, 0.05);
  close("pythia-1b", 1.01e9, 0.08);
  close("pythia-6.9b", 6.9e9, 0.05);
  close("llama2-7b", 6.74e9, 0.05);
}

TEST(Params, ShapeVariantsKeepParameterCount) {
  // The Fig-1 point: changing a at fixed h does not change the parameter
  // count at all (head count only re-partitions the same matrices).
  const auto base = exact_param_count(model_by_name("gpt3-2.7b"));
  EXPECT_EQ(exact_param_count(model_by_name("gpt3-2.7b-c1")), base);
  EXPECT_EQ(exact_param_count(model_by_name("gpt3-2.7b-c2")), base);
}

TEST(Params, SwigluAddsGateMatrix) {
  TransformerConfig gelu = make(4096, 32, 32);
  TransformerConfig swiglu = gelu;
  swiglu.activation = Activation::kSwiGlu;
  swiglu.mlp_intermediate = 4 * 4096;  // same width for a clean delta
  const auto delta =
      exact_param_count(swiglu) - exact_param_count(gelu);
  // One extra (h, d_ff) matrix per layer.
  EXPECT_EQ(delta, 32LL * 4096 * (4 * 4096));
}

TEST(Params, SwigluWith8hOver3RoughlyPreservesMlpSize) {
  // §VII-B: 3 matrices of (8/3)h ≈ 2 matrices of 4h.
  TransformerConfig gelu = make(4096, 32, 32);
  TransformerConfig swiglu = gelu;
  swiglu.activation = Activation::kSwiGlu;
  const auto pg = static_cast<double>(exact_param_count(gelu));
  const auto ps = static_cast<double>(exact_param_count(swiglu));
  EXPECT_NEAR(ps / pg, 1.0, 0.01);
}

TEST(Params, RotaryDropsPositionTable) {
  TransformerConfig learned = make(2048, 16, 24);
  TransformerConfig rotary = learned;
  rotary.pos_embedding = PosEmbedding::kRotary;
  EXPECT_EQ(exact_param_count(learned) - exact_param_count(rotary),
            2048LL * 2048LL);  // s * h
}

TEST(Params, EnumerationStructure) {
  const TransformerConfig c = make(256, 4, 2);
  const auto weights = enumerate_weights(c);
  // token emb + pos emb + 2 layers x 12 tensors + final LN (2)
  EXPECT_EQ(weights.size(), 2u + 2u * 12u + 2u);
  EXPECT_EQ(weights.front().name, "embed.token");
  EXPECT_EQ(weights.front().count, c.vocab_size * c.hidden_size);
  EXPECT_EQ(weights.back().name, "final_ln.beta");
  for (const WeightInfo& w : weights) {
    EXPECT_GT(w.count, 0) << w.name;
  }
}

TEST(Params, EnumerationValidatesConfig) {
  TransformerConfig c = make(100, 3, 2);  // 100 % 3 != 0
  EXPECT_THROW(enumerate_weights(c), Error);
  EXPECT_THROW(exact_param_count(c), Error);  // closed form validates too
}

TEST(Params, ClosedFormMatchesEnumerationAcrossZoo) {
  // exact_param_count is a closed form of the enumerate_weights sum (the
  // search hot path skips the per-tensor enumeration); the two must agree
  // for every architecture variant in the zoo — GELU and SwiGLU, learned
  // and rotary positions, tied and untied embeddings, GQA, tensor parallel.
  for (const std::string& name : known_models()) {
    const TransformerConfig c = model_by_name(name);
    std::int64_t enumerated = 0;
    for (const WeightInfo& w : enumerate_weights(c)) enumerated += w.count;
    EXPECT_EQ(exact_param_count(c), enumerated) << name;
  }
  const TransformerConfig tp =
      model_by_name("gpt3-2.7b").with_tensor_parallel(4).with_vocab(50304);
  std::int64_t enumerated = 0;
  for (const WeightInfo& w : enumerate_weights(tp)) enumerated += w.count;
  EXPECT_EQ(exact_param_count(tp), enumerated);
}

}  // namespace
}  // namespace codesign::tfm
