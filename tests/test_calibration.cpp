// Calibration tests: the model must reproduce the *shape* of the paper's
// headline results (who wins and by roughly what factor), within tolerant
// bands. These are the contract between the simulator and the paper —
// see DESIGN.md §5 for the target list.
#include <gtest/gtest.h>

#include "gemmsim/simulator.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/training.hpp"

namespace codesign {
namespace {

using gemm::GemmProblem;
using gemm::GemmSimulator;
using tfm::analyze_layer;
using tfm::model_by_name;

GemmSimulator a100() { return GemmSimulator::for_gpu("a100"); }

TEST(Calibration, Gpt3ReshapeSpeedupBand) {
  // Paper: C2 (a = 40) trains ~1.18x faster than the default GPT-3 2.7B
  // (a = 32). Band: [1.10, 1.40].
  const auto base = analyze_layer(model_by_name("gpt3-2.7b"), a100());
  const auto c2 = analyze_layer(model_by_name("gpt3-2.7b-c2"), a100());
  const double speedup = base.total_time / c2.total_time;
  EXPECT_GE(speedup, 1.08) << "paper reports 1.18x";
  EXPECT_LE(speedup, 1.40);
}

TEST(Calibration, Fig1FamilySpreadBand) {
  // Paper: throughput across same-parameter-count shapes varies by up to
  // ~39% between the shapes it recommends comparing (C2 vs C1); our family
  // also sweeps lower head counts that the appendix shows are faster
  // still, so the full-family spread is wider. Band: [1.3, 2.4].
  double best = 0.0, worst = 1e30;
  for (const auto& cfg : tfm::gpt3_27b_family()) {
    const double tf = analyze_layer(cfg, a100()).throughput_tflops;
    best = std::max(best, tf);
    worst = std::min(worst, tf);
  }
  const double spread = best / worst;
  EXPECT_GE(spread, 1.30);
  EXPECT_LE(spread, 2.40);
}

TEST(Calibration, C1IsTheWorstOfThePaperTrio) {
  // Fig 1: C1 (h/a = 40) below the default (h/a = 80) below C2 (h/a = 64).
  const double def =
      analyze_layer(model_by_name("gpt3-2.7b"), a100()).throughput_tflops;
  const double c1 =
      analyze_layer(model_by_name("gpt3-2.7b-c1"), a100()).throughput_tflops;
  const double c2 =
      analyze_layer(model_by_name("gpt3-2.7b-c2"), a100()).throughput_tflops;
  EXPECT_LT(c1, def);
  EXPECT_LT(def, c2);
}

TEST(Calibration, GemmLatencyShareBands) {
  // Fig 2: GEMMs are ~68% of a medium model's layer latency and ~95% of a
  // large model's. Bands: medium in [0.55, 0.85], large in [0.85, 1.0).
  const double medium =
      analyze_layer(model_by_name("gpt3-2.7b"), a100()).gemm_fraction;
  const double large =
      analyze_layer(model_by_name("gpt3-175b"), a100()).gemm_fraction;
  EXPECT_GE(medium, 0.55);
  EXPECT_LE(medium, 0.88);
  EXPECT_GE(large, 0.85);
  EXPECT_LT(large, 1.0);
}

TEST(Calibration, VocabPaddingCliff) {
  // Fig 20b / Karpathy: padding 50257 → 50304 speeds the logit GEMM by
  // well over 1.5x.
  const GemmSimulator sim = a100();
  const double odd = sim.throughput_tflops(GemmProblem::gemm(8192, 50257, 2560));
  const double pad = sim.throughput_tflops(GemmProblem::gemm(8192, 50304, 2560));
  EXPECT_GT(pad / odd, 1.5);
  EXPECT_LT(pad / odd, 10.0);  // but not absurdly so
}

TEST(Calibration, H100ToA100KernelRatio) {
  // §VIII: BERT MLPerf results show a consistent ~3:1 H100:A100 ratio that
  // matches kernel-level throughput. Representative compute-bound kernels
  // must show 3:1 within ±40%.
  const GemmSimulator h100 = GemmSimulator::for_gpu("h100");
  const GemmSimulator a = a100();
  std::vector<GemmProblem> kernels = {
      GemmProblem::gemm(8192, 4096, 1024),   // BERT-large FFN-ish
      GemmProblem::gemm(8192, 1024, 4096),
      GemmProblem::gemm(8192, 3072, 1024),   // QKV
      GemmProblem::gemm(16384, 8192, 8192),  // large square
  };
  double ratio_sum = 0.0;
  for (const auto& k : kernels) {
    ratio_sum += h100.throughput_tflops(k) / a.throughput_tflops(k);
  }
  const double mean_ratio = ratio_sum / static_cast<double>(kernels.size());
  EXPECT_GE(mean_ratio, 1.8);
  EXPECT_LE(mean_ratio, 4.2);
}

TEST(Calibration, Fig7PowerOfTwoOrdering) {
  // Figs 7–9: at fixed macro shape, attention-BMM throughput orders by the
  // largest power of two dividing h/a, saturating at 64.
  const GemmSimulator sim = a100();
  auto score_tput = [&sim](std::int64_t head_dim) {
    return sim.throughput_tflops(GemmProblem::bmm(128, 2048, 2048, head_dim));
  };
  const double odd = score_tput(65);
  const double p2 = score_tput(66);    // granule 2
  const double p8 = score_tput(72);    // granule 8
  const double p16 = score_tput(80);   // granule 16
  const double p64 = score_tput(64);   // granule 64
  EXPECT_LT(odd, p2 * 1.001);
  EXPECT_LT(p2, p8);
  EXPECT_LT(p8, p16);
  EXPECT_LT(p16, p64);
  // The odd→64 spread is a multiple, not a percentage.
  EXPECT_GT(p64 / odd, 2.5);
}

TEST(Calibration, LargeGemmEfficiencyRealistic) {
  // cuBLAS reaches ~85-90% of peak on large aligned fp16 GEMMs; our model's
  // achievable ceiling should land in [0.6, 0.95] of datasheet peak.
  const double tf =
      a100().throughput_tflops(GemmProblem::gemm(8192, 8192, 8192));
  EXPECT_GE(tf, 0.60 * 312.0);
  EXPECT_LE(tf, 0.95 * 312.0);
}

TEST(Calibration, MemoryBoundSmallGemmRealistic) {
  // A (2048, 64) x (64, 2048)-scale GEMM is memory-bound: tens of TFLOP/s
  // on A100, nowhere near peak.
  const double tf = a100().throughput_tflops(GemmProblem::gemm(2048, 2048, 64));
  EXPECT_LT(tf, 150.0);
  EXPECT_GT(tf, 10.0);
}

TEST(Calibration, TrainingMfuInMegatronRange) {
  // Published Megatron-LM training runs land at ~30-52% MFU on A100s for
  // multi-billion-parameter models; our full training-step model must
  // produce a figure in that neighbourhood for well-shaped models.
  const auto r = tfm::analyze_training_step(
      tfm::model_by_name("gpt3-2.7b-c2"), a100());
  EXPECT_GE(r.mfu, 0.25);
  EXPECT_LE(r.mfu, 0.55);
}

TEST(Calibration, ReshapeBarelyMattersOnVolta) {
  // A falsifiable cross-architecture prediction of the paper's §III-B
  // rule: V100's full alignment granule is 16 bytes (8 fp16 elements), so
  // h/a = 80 is ALREADY fully aligned there — the C2 re-shape that buys
  // ~14% on A100 buys nothing on V100, and in fact costs a little (more
  // heads mean more softmax traffic and score matrices). Shapes must be
  // co-designed with the *target* hardware — the paper's thesis.
  const GemmSimulator v100 = GemmSimulator::for_gpu("v100");
  const double v100_speedup =
      analyze_layer(model_by_name("gpt3-2.7b"), v100).total_time /
      analyze_layer(model_by_name("gpt3-2.7b-c2"), v100).total_time;
  EXPECT_LT(v100_speedup, 1.03);
  EXPECT_GT(v100_speedup, 0.90);
  const double a100_speedup =
      analyze_layer(model_by_name("gpt3-2.7b"), a100()).total_time /
      analyze_layer(model_by_name("gpt3-2.7b-c2"), a100()).total_time;
  EXPECT_GT(a100_speedup, v100_speedup + 0.05);
}

TEST(Calibration, V100BehindA100EverywhereThatMatters) {
  const GemmSimulator v100 = GemmSimulator::for_gpu("v100");
  for (const auto& p :
       {GemmProblem::gemm(8192, 8192, 8192), GemmProblem::gemm(8192, 7680, 2560),
        GemmProblem::bmm(128, 2048, 2048, 64)}) {
    EXPECT_LT(v100.throughput_tflops(p), a100().throughput_tflops(p))
        << p.to_string();
  }
}

}  // namespace
}  // namespace codesign
