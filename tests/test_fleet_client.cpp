// Tests for the resilience layer: FleetClient retry/backoff/failover
// semantics, the per-endpoint circuit breaker (driven by a fake clock),
// deterministic attempt logs under a fixed seed, and the timeout-aware
// socket helpers in serve/net.hpp. The cross-process chaos drill (three
// servers, probabilistic serve.net.* faults, byte-identity against the
// one-shot CLI) lives in tools/check.sh's chaos-fleet tier.
#include "serve/fleet_client.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"

namespace codesign {
namespace {

using serve::AttemptOutcome;
using serve::BreakerState;
using serve::FleetClient;
using serve::FleetEndpoint;
using serve::FleetOptions;
using serve::ServeClient;

class FleetClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::clear();
    SigintGuard::reset();
  }
  void TearDown() override { fail::clear(); }

  static serve::ServerOptions server_options(std::size_t threads,
                                             std::size_t queue_capacity = 0) {
    serve::ServerOptions o;
    o.port = 0;
    o.threads = threads;
    o.queue_capacity = queue_capacity;
    return o;
  }

  static void shut_down(serve::Server& server) {
    server.request_drain();
    server.join();
  }

  /// A port that was just bound and released: connecting to it refuses
  /// (nothing re-binds an ephemeral port in the few ms the test needs it).
  static int dead_port() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    const int port = static_cast<int>(ntohs(addr.sin_port));
    ::close(fd);
    return port;
  }

  /// Options with a fake clock + fake sleep: sleeps advance the clock
  /// instantly and are recorded, so backoff schedules are assertable and
  /// the suite never actually waits.
  struct FakeTime {
    std::int64_t now_ms = 0;
    std::vector<std::int64_t> sleeps;
  };
  static FleetOptions fake_time_options(std::vector<FleetEndpoint> endpoints,
                                        std::shared_ptr<FakeTime> time) {
    FleetOptions o;
    o.endpoints = std::move(endpoints);
    o.connect_timeout_ms = 1000;
    o.read_timeout_ms = 5000;
    o.now_ms = [time] { return time->now_ms; };
    o.sleep_ms = [time](std::int64_t ms) {
      time->sleeps.push_back(ms);
      time->now_ms += ms;
    };
    return o;
  }
};

// ---------------------------------------------------------------------------
// Endpoint-spec parsing.

TEST(FleetEndpoints, ParseAcceptsHostPortListsAndBarePorts) {
  const auto eps = serve::parse_endpoints("127.0.0.1:8377, 10.0.0.2:9000,8378");
  ASSERT_EQ(eps.size(), 3u);
  EXPECT_EQ(eps[0].host, "127.0.0.1");
  EXPECT_EQ(eps[0].port, 8377);
  EXPECT_EQ(eps[1].host, "10.0.0.2");
  EXPECT_EQ(eps[1].port, 9000);
  EXPECT_EQ(eps[2].host, "127.0.0.1");  // bare port: loopback default
  EXPECT_EQ(eps[2].port, 8378);
}

TEST(FleetEndpoints, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(serve::parse_endpoints(""), UsageError);
  EXPECT_THROW(serve::parse_endpoints(",,"), UsageError);
  EXPECT_THROW(serve::parse_endpoints("host:"), UsageError);
  EXPECT_THROW(serve::parse_endpoints(":8377"), UsageError);
  EXPECT_THROW(serve::parse_endpoints("127.0.0.1:notaport"), UsageError);
  EXPECT_THROW(serve::parse_endpoints("127.0.0.1:99999"), UsageError);
}

// ---------------------------------------------------------------------------
// Retry semantics: the retry_after_ms hint floors the backoff, and a
// recovering server eventually answers within one call().

TEST_F(FleetClientTest, RetryHonorsRetryAfterHintAgainstRecoveringServer) {
  serve::Server server(server_options(/*threads=*/1, /*queue_capacity=*/1));
  server.start();

  // Pin the only worker: the first fleet attempt is a typed rejection
  // with a retry hint, and the call must absorb it and retry to success.
  std::thread pin([&] {
    ServeClient a("127.0.0.1", server.port());
    (void)a.call_op("sleep", R"("ms":250)");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  FleetOptions o;
  o.endpoints = {{"127.0.0.1", server.port()}};
  o.backoff_base_ms = 10;
  o.backoff_max_ms = 100;
  o.call_deadline_ms = 10000;
  FleetClient fleet(std::move(o));
  const serve::Response r =
      fleet.call_op("estimate", R"("m":256,"n":256,"k":256)");
  ASSERT_TRUE(r.ok()) << r.error << "\n" << fleet.attempt_log();

  // At least one overloaded attempt carrying the server's hint, and the
  // backoff taken after it was floored at that hint.
  const auto& attempts = fleet.last_attempts();
  ASSERT_GE(attempts.size(), 2u) << fleet.attempt_log();
  bool saw_hinted_backoff = false;
  for (const auto& a : attempts) {
    if (a.outcome == AttemptOutcome::kOverloaded) {
      EXPECT_GE(a.retry_after_ms, 1);
      if (a.backoff_ms >= a.retry_after_ms) saw_hinted_backoff = true;
    }
  }
  EXPECT_TRUE(saw_hinted_backoff) << fleet.attempt_log();
  EXPECT_GE(fleet.stats().retries, 1u);
  EXPECT_GE(fleet.stats().overloaded_seen, 1u);

  pin.join();
  shut_down(server);
}

TEST_F(FleetClientTest, OverloadFailsOverToASiblingWithoutSleeping) {
  serve::Server busy(server_options(/*threads=*/1, /*queue_capacity=*/1));
  busy.start();
  serve::Server idle(server_options(/*threads=*/2));
  idle.start();

  std::thread pin([&] {
    ServeClient a("127.0.0.1", busy.port());
    (void)a.call_op("sleep", R"("ms":250)");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  auto time = std::make_shared<FakeTime>();
  FleetOptions o = fake_time_options(
      {{"127.0.0.1", busy.port()}, {"127.0.0.1", idle.port()}}, time);
  FleetClient fleet(std::move(o));
  const serve::Response r =
      fleet.call_op("estimate", R"("m":128,"n":128,"k":128)");
  ASSERT_TRUE(r.ok()) << r.error << "\n" << fleet.attempt_log();

  // Round-robin started at the busy replica; the rejection moved the next
  // attempt to the sibling immediately — no backoff sleep was taken.
  const auto& attempts = fleet.last_attempts();
  ASSERT_EQ(attempts.size(), 2u) << fleet.attempt_log();
  EXPECT_EQ(attempts[0].endpoint, 0u);
  EXPECT_EQ(attempts[0].outcome, AttemptOutcome::kOverloaded);
  EXPECT_EQ(attempts[1].endpoint, 1u);
  EXPECT_EQ(attempts[1].outcome, AttemptOutcome::kOk);
  EXPECT_TRUE(time->sleeps.empty());
  EXPECT_EQ(fleet.stats().failovers, 1u);

  pin.join();
  shut_down(busy);
  shut_down(idle);
}

TEST_F(FleetClientTest, ConnectionDeathFailsOverAndLaterReconnects) {
  auto doomed = std::make_unique<serve::Server>(server_options(2));
  doomed->start();
  serve::Server survivor(server_options(2));
  survivor.start();

  FleetOptions o;
  o.endpoints = {{"127.0.0.1", doomed->port()},
                 {"127.0.0.1", survivor.port()}};
  o.backoff_base_ms = 1;
  o.backoff_max_ms = 2;
  FleetClient fleet(std::move(o));

  // Call 1 lands on the doomed replica (round-robin starts at 0) and
  // caches its connection.
  ASSERT_TRUE(fleet.call_op("ping").ok());

  // Kill the replica. Its cached connection answers the next attempt with
  // EOF; the call must fail over to the survivor, not surface an error.
  doomed->request_drain();
  doomed->join();
  doomed.reset();

  // Call 2's round-robin cursor starts at the survivor; force traffic at
  // the dead replica by calling until the cursor wraps onto it.
  bool exercised_dead_endpoint = false;
  for (int i = 0; i < 4; ++i) {
    const serve::Response r = fleet.call_op("ping");
    ASSERT_TRUE(r.ok()) << r.error << "\n" << fleet.attempt_log();
    for (const auto& a : fleet.last_attempts()) {
      if (a.endpoint == 0 && a.outcome == AttemptOutcome::kIoError) {
        exercised_dead_endpoint = true;
      }
    }
  }
  EXPECT_TRUE(exercised_dead_endpoint) << fleet.attempt_log();
  EXPECT_GE(fleet.stats().io_errors, 1u);
  EXPECT_GE(fleet.stats().failovers, 1u);

  shut_down(survivor);
}

// ---------------------------------------------------------------------------
// Circuit breaker: closed -> open -> half-open -> closed, on a fake clock.

TEST_F(FleetClientTest, BreakerOpensHalfOpensAndRecloses) {
  serve::Server server(server_options(2));
  server.start();

  auto time = std::make_shared<FakeTime>();
  FleetOptions o =
      fake_time_options({{"127.0.0.1", server.port()}}, time);
  o.max_attempts = 2;
  o.breaker.failure_threshold = 2;
  o.breaker.open_ms = 1000;
  FleetClient fleet(std::move(o));

  // Every read is answered by a drill that half-closes the connection:
  // two consecutive IoError attempts trip the breaker.
  fail::configure("serve.net.conn_close=always");
  EXPECT_THROW((void)fleet.call_op("ping"), IoError);
  EXPECT_EQ(fleet.breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(fleet.stats().breaker_trips, 1u);

  // Cooldown elapsed: the next call probes half-open. Keep the drill
  // armed so the probe fails — a half-open failure re-opens immediately.
  time->now_ms += 1000;
  EXPECT_THROW((void)fleet.call_op("ping"), IoError);
  EXPECT_EQ(fleet.breaker_state(0), BreakerState::kOpen);
  EXPECT_GE(fleet.stats().breaker_trips, 2u);

  // Cooldown again, drill disarmed: the half-open probe succeeds and the
  // breaker recloses.
  fail::configure("serve.net.conn_close=off");
  time->now_ms += 1000;
  const serve::Response r = fleet.call_op("ping");
  ASSERT_TRUE(r.ok()) << r.error << "\n" << fleet.attempt_log();
  EXPECT_EQ(r.payload, "pong\n");
  EXPECT_EQ(fleet.breaker_state(0), BreakerState::kClosed);

  shut_down(server);
}

// ---------------------------------------------------------------------------
// Determinism: same seed + same fault pattern => identical attempt logs.

TEST_F(FleetClientTest, SameSeedProducesIdenticalAttemptLogs) {
  const int port_a = dead_port();
  const int port_b = dead_port();

  auto run_one = [&](std::uint64_t seed) {
    auto time = std::make_shared<FakeTime>();
    FleetOptions o = fake_time_options(
        {{"127.0.0.1", port_a}, {"127.0.0.1", port_b}}, time);
    o.seed = seed;
    o.max_attempts = 8;
    o.backoff_base_ms = 5;
    o.backoff_max_ms = 500;
    o.breaker.failure_threshold = 100;  // keep both endpoints selectable
    FleetClient fleet(std::move(o));
    EXPECT_THROW((void)fleet.call_op("ping"), IoError);
    EXPECT_EQ(fleet.last_attempts().size(), 8u);
    return fleet.attempt_log() + "sleeps:" + [&] {
      std::string s;
      for (const std::int64_t ms : time->sleeps) {
        s += " " + std::to_string(ms);
      }
      return s;
    }();
  };

  const std::string log_a = run_one(42);
  const std::string log_b = run_one(42);
  EXPECT_FALSE(log_a.empty());
  EXPECT_EQ(log_a, log_b);
  // The schedule is jittered: with 8 attempts over 2 endpoints there are
  // backoff rounds, and they show up in the recorded sleeps.
  EXPECT_NE(log_a.find("backoff"), std::string::npos) << log_a;
}

// ---------------------------------------------------------------------------
// Read-timeout failover: an accepting-but-silent endpoint must not wedge
// the call — the per-attempt read budget expires and a sibling answers.

TEST_F(FleetClientTest, ReadTimeoutFailsOverToLiveSibling) {
  // A listening socket nobody accepts on: connects complete (backlog),
  // requests vanish, responses never come.
  const int silent_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(silent_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(silent_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(silent_fd, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(silent_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int silent_port = static_cast<int>(ntohs(addr.sin_port));

  serve::Server live(server_options(2));
  live.start();

  FleetOptions o;
  o.endpoints = {{"127.0.0.1", silent_port}, {"127.0.0.1", live.port()}};
  o.read_timeout_ms = 100;
  o.backoff_base_ms = 1;
  o.backoff_max_ms = 2;
  FleetClient fleet(std::move(o));

  const serve::Response r = fleet.call_op("ping");
  ASSERT_TRUE(r.ok()) << r.error << "\n" << fleet.attempt_log();
  const auto& attempts = fleet.last_attempts();
  ASSERT_EQ(attempts.size(), 2u) << fleet.attempt_log();
  EXPECT_EQ(attempts[0].endpoint, 0u);
  EXPECT_EQ(attempts[0].outcome, AttemptOutcome::kIoError);
  EXPECT_EQ(attempts[1].endpoint, 1u);
  EXPECT_EQ(fleet.stats().io_errors, 1u);

  shut_down(live);
  ::close(silent_fd);
}

// ---------------------------------------------------------------------------
// net.hpp unit coverage: the send deadline and peer-gone classification.

TEST(ServeNet, TimedSendAllTimesOutAgainstAStalledPeer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  serve::net::set_nonblocking(fds[0], true);
  const int small = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

  // Nobody reads fds[1]: the kernel buffers fill and the deadline trips.
  const std::string big(4 << 20, 'x');
  const auto t0 = std::chrono::steady_clock::now();
  const auto outcome = serve::net::timed_send_all(fds[0], big, 100);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(outcome, serve::net::SendOutcome::kTimeout);
  EXPECT_GE(elapsed_ms, 90);
  EXPECT_LT(elapsed_ms, 5000);

  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeNet, TimedSendAllReportsPeerGoneOnClosedSocket) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  serve::net::set_nonblocking(fds[0], true);
  ::close(fds[1]);
  std::string data(1 << 20, 'y');
  // The first send may land in the buffer; keep writing until the EPIPE
  // surfaces.
  serve::net::SendOutcome outcome = serve::net::SendOutcome::kOk;
  for (int i = 0; i < 8 && outcome == serve::net::SendOutcome::kOk; ++i) {
    outcome = serve::net::timed_send_all(fds[0], data, 100);
  }
  EXPECT_EQ(outcome, serve::net::SendOutcome::kPeerGone);
  ::close(fds[0]);
}

TEST(ServeNet, ConnectWithTimeoutRefusesDeadPortQuickly) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = static_cast<int>(ntohs(addr.sin_port));
  ::close(fd);
  EXPECT_THROW((void)serve::net::connect_with_timeout("127.0.0.1", port, 1000),
               IoError);
}

}  // namespace
}  // namespace codesign
