// Tests for kernels/tensor.hpp.
#include "kernels/tensor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace codesign::kern {
namespace {

TEST(Tensor, ZerosAndShape) {
  const Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(t.at(i, j), 0.0f);
    }
  }
}

TEST(Tensor, InvalidShapes) {
  EXPECT_THROW(Tensor(Shape{}), Error);
  EXPECT_THROW(Tensor({0}), Error);
  EXPECT_THROW(Tensor({2, -1}), Error);
}

TEST(Tensor, FullAndFromValues) {
  const Tensor f = Tensor::full({2, 2}, 3.5f);
  EXPECT_EQ(f.at(1, 1), 3.5f);
  const Tensor v = Tensor::from_values({1, 2, 3});
  EXPECT_EQ(v.rank(), 1u);
  EXPECT_EQ(v.at(2), 3.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at(2, 0), Error);
  EXPECT_THROW(t.at(0, 3), Error);
  EXPECT_THROW(t.at(-1, 0), Error);
  EXPECT_THROW(t.at(0), Error);     // wrong rank
  EXPECT_THROW(t.at(0, 0, 0), Error);
}

TEST(Tensor, Rank3Access) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(t.at(1, 2, 3), 7.0f);
  EXPECT_EQ(t.data()[1 * 12 + 2 * 4 + 3], 7.0f);
  EXPECT_THROW(t.at(1, 3, 0), Error);
}

TEST(Tensor, RandnDeterministic) {
  Rng r1(42), r2(42);
  const Tensor a = Tensor::randn({4, 4}, r1);
  const Tensor b = Tensor::randn({4, 4}, r2);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
  EXPECT_TRUE(a.all_finite());
}

TEST(Tensor, UniformRange) {
  Rng rng(3);
  const Tensor u = Tensor::uniform({100}, rng, -1.0f, 1.0f);
  for (std::int64_t i = 0; i < u.numel(); ++i) {
    EXPECT_GE(u.at(i), -1.0f);
    EXPECT_LT(u.at(i), 1.0f);
  }
}

TEST(Tensor, Reshape) {
  Tensor t({2, 6});
  t.at(1, 5) = 9.0f;
  const Tensor r = t.reshape({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.at(2, 3), 9.0f);  // same flat position
  EXPECT_THROW(t.reshape({5, 5}), Error);
}

TEST(Tensor, Transpose2d) {
  Tensor t({2, 3});
  t.at(0, 1) = 5.0f;
  t.at(1, 2) = 7.0f;
  const Tensor tt = t.transposed_2d();
  EXPECT_EQ(tt.dim(0), 3);
  EXPECT_EQ(tt.dim(1), 2);
  EXPECT_EQ(tt.at(1, 0), 5.0f);
  EXPECT_EQ(tt.at(2, 1), 7.0f);
  Tensor r3({1, 2, 3});
  EXPECT_THROW(r3.transposed_2d(), Error);
}

TEST(Tensor, QuantizeFp16) {
  Tensor t = Tensor::from_values({0.1f, 1.0f, 3.14159f});
  t.quantize_fp16();
  EXPECT_EQ(t.at(1), 1.0f);          // exact in half
  EXPECT_NE(t.at(0), 0.1f);          // 0.1 is not representable
  EXPECT_NEAR(t.at(0), 0.1f, 1e-4f);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from_values({-3, 1, 2});
  EXPECT_EQ(t.max_abs(), 3.0f);
  EXPECT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, DiffHelpers) {
  const Tensor a = Tensor::from_values({1, 2, 3});
  const Tensor b = Tensor::from_values({1, 2, 4});
  EXPECT_EQ(max_abs_diff(a, b), 1.0f);
  EXPECT_GT(relative_error(a, b), 0.0f);
  EXPECT_EQ(relative_error(a, a), 0.0f);
  const Tensor c({2, 2});
  EXPECT_THROW(max_abs_diff(a, c), Error);
}

TEST(Tensor, ShapeUtils) {
  EXPECT_EQ(shape_to_string({2, 3}), "(2, 3)");
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_THROW(shape_numel({2, 0}), Error);
}

}  // namespace
}  // namespace codesign::kern
