// Tests for gemmsim/explain.hpp — the factor decomposition must multiply
// out to the observed throughput exactly.
#include "gemmsim/explain.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace codesign::gemm {
namespace {

const gpu::GpuSpec& a100() { return gpu::gpu_by_name("a100"); }

TEST(Explain, FactorsMultiplyToObservedExactly) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    GemmProblem p;
    p.m = rng.uniform_int(1, 16384);
    p.n = rng.uniform_int(1, 16384);
    p.k = rng.uniform_int(1, 8192);
    const EfficiencyBreakdown b = explain_gemm(p, a100());
    EXPECT_NEAR(b.peak_tflops * b.total_factor(), b.observed_tflops,
                b.observed_tflops * 1e-9)
        << p.to_string();
  }
}

TEST(Explain, AllFactorsInUnitInterval) {
  const auto b = explain_gemm(GemmProblem::gemm(8192, 50257, 2560), a100());
  for (const auto& f : b.factors) {
    EXPECT_GT(f.factor, 0.0) << f.name;
    EXPECT_LE(f.factor, 1.0 + 1e-12) << f.name;
    EXPECT_FALSE(f.detail.empty()) << f.name;
  }
  ASSERT_EQ(b.factors.size(), 6u);
}

TEST(Explain, OddVocabBlamesAlignment) {
  const auto odd = explain_gemm(GemmProblem::gemm(8192, 50257, 2560), a100());
  const auto pad = explain_gemm(GemmProblem::gemm(8192, 50304, 2560), a100());
  auto factor = [](const EfficiencyBreakdown& b, const std::string& name) {
    for (const auto& f : b.factors) {
      if (f.name == name) return f.factor;
    }
    throw Error("factor not found");
  };
  EXPECT_LT(factor(odd, "alignment"), 0.5);
  EXPECT_DOUBLE_EQ(factor(pad, "alignment"), 1.0);
  EXPECT_NE(odd.to_string().find("tensor cores OFF"), std::string::npos);
}

TEST(Explain, MemoryBoundBlamesRoofline) {
  // A small-k BMM shape: the roofline factor should carry the loss.
  const auto b = explain_gemm(GemmProblem::bmm(128, 2048, 2048, 64), a100());
  double roofline = 1.0;
  for (const auto& f : b.factors) {
    if (f.name == "roofline") roofline = f.factor;
  }
  EXPECT_LT(roofline, 0.6);
  EXPECT_NE(b.to_string().find("memory-bound"), std::string::npos);
}

TEST(Explain, LargeAlignedGemmNearUnityFactors) {
  const auto b = explain_gemm(GemmProblem::gemm(8192, 8192, 8192), a100());
  // Everything except "achievable" and "tile" should be ~1.
  for (const auto& f : b.factors) {
    if (f.name == "achievable" || f.name == "tile") continue;
    EXPECT_GT(f.factor, 0.95) << f.name;
  }
  EXPECT_GT(b.observed_tflops, 200.0);
}

TEST(Explain, ReportContainsEveryFactor) {
  const auto b = explain_gemm(GemmProblem::gemm(1920, 1920, 1920), a100());
  const std::string s = b.to_string();
  for (const char* name : {"achievable", "alignment", "tile",
                           "tile_quantization", "wave_quantization",
                           "roofline"}) {
    EXPECT_NE(s.find(name), std::string::npos) << name;
  }
  EXPECT_NE(s.find("datasheet peak"), std::string::npos);
}

TEST(Explain, RejectsInvalidProblems) {
  GemmProblem p;
  p.m = 0;
  p.n = 1;
  p.k = 1;
  EXPECT_THROW(explain_gemm(p, a100()), Error);
}

}  // namespace
}  // namespace codesign::gemm
