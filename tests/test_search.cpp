// Tests for advisor/search.hpp — shape search, including the §VII-B SwiGLU
// brute force.
#include "advisor/search.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::advisor {
namespace {

using tfm::model_by_name;

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

TEST(SearchHeads, FindsTheC2Reshape) {
  // The paper's headline: for GPT-3 2.7B the advisor must rank a head count
  // giving h/a = 64 (a = 40) above the default a = 32, with a material
  // speedup and zero parameter change.
  const auto cands = search_heads(model_by_name("gpt3-2.7b"), sim());
  ASSERT_FALSE(cands.empty());

  const ShapeCandidate* best_a40 = nullptr;
  const ShapeCandidate* base = nullptr;
  std::size_t idx_a40 = 0, idx_base = 0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].config.num_heads == 40) {
      best_a40 = &cands[i];
      idx_a40 = i;
    }
    if (cands[i].config.num_heads == 32) {
      base = &cands[i];
      idx_base = i;
    }
  }
  ASSERT_NE(best_a40, nullptr);
  ASSERT_NE(base, nullptr);
  EXPECT_LT(idx_a40, idx_base);                 // ranked strictly better
  EXPECT_GT(best_a40->speedup_vs_base, 1.05);
  EXPECT_DOUBLE_EQ(best_a40->param_delta_frac, 0.0);
  EXPECT_DOUBLE_EQ(base->speedup_vs_base, 1.0);
}

TEST(SearchHeads, AllCandidatesValidAndSorted) {
  const auto cands = search_heads(model_by_name("gpt3-2.7b"), sim());
  double prev = 0.0;
  for (const ShapeCandidate& c : cands) {
    EXPECT_NO_THROW(c.config.validate());
    EXPECT_EQ(c.config.hidden_size, 2560);
    EXPECT_GE(c.layer_time, prev);
    prev = c.layer_time;
    EXPECT_GE(c.config.head_dim(), 32);
    EXPECT_LE(c.config.head_dim(), 256);
  }
}

TEST(SearchHeads, RespectsTensorParallel) {
  const auto base =
      model_by_name("gpt3-2.7b").with_tensor_parallel(4).with_vocab(50304);
  for (const ShapeCandidate& c : search_heads(base, sim())) {
    EXPECT_EQ(c.config.num_heads % 4, 0) << c.config.name;
  }
}

TEST(SearchHeads, MaxCandidatesHonored) {
  SearchOptions opt;
  opt.max_candidates = 3;
  EXPECT_LE(search_heads(model_by_name("gpt3-2.7b"), sim(), opt).size(), 3u);
}

TEST(SearchHidden, BoundsParameterDelta) {
  const auto cands = search_hidden(model_by_name("gpt3-2.7b"), sim());
  ASSERT_FALSE(cands.empty());
  for (const ShapeCandidate& c : cands) {
    if (c.config.hidden_size == 2560) continue;  // baseline
    EXPECT_LE(std::abs(c.param_delta_frac), 0.06 + 1e-9) << c.config.name;
    EXPECT_EQ(c.config.hidden_size % 64, 0);
    EXPECT_EQ(c.config.hidden_size % 32, 0);  // a = 32 must divide h
  }
}

TEST(SearchHidden, InvalidRadiusRejected) {
  EXPECT_THROW(search_hidden(model_by_name("gpt3-2.7b"), sim(), 0.0), Error);
  EXPECT_THROW(search_hidden(model_by_name("gpt3-2.7b"), sim(), 1.5), Error);
}

TEST(SearchMlp, AlignedWidthsDominate) {
  // Scan a small window; every top-quartile candidate should have a larger
  // power-of-two granule than the bottom quartile's average.
  const auto base = model_by_name("llama2-7b");
  const auto scan = search_mlp_intermediate(base, sim(), 10944, 11072);
  ASSERT_GT(scan.size(), 64u);
  // The best candidate must be divisible by 64.
  EXPECT_EQ(scan.front().d_ff % 64, 0);
  // An odd d_ff must rank in the bottom half.
  EXPECT_GT(mlp_candidate_percentile(scan, 11001), 0.5);
}

TEST(SearchMlp, Llama2_11008IsNearOptimal) {
  // §VII-B: "a brute-force search reveals that Llama-2-7B's intermediate
  // size is indeed one of the best performing sizes in its range".
  const auto base = model_by_name("llama2-7b");
  const auto scan = search_mlp_intermediate(base, sim(), 10752, 11264);
  const double pct = mlp_candidate_percentile(scan, 11008);
  EXPECT_LT(pct, 0.05);  // top 5% of its range
}

TEST(SearchMlp, ResultsSortedAndRanked) {
  const auto scan =
      search_mlp_intermediate(model_by_name("gpt3-2.7b"), sim(), 10200, 10300);
  for (std::size_t i = 1; i < scan.size(); ++i) {
    EXPECT_LE(scan[i - 1].mlp_time, scan[i].mlp_time);
    EXPECT_LE(scan[i - 1].rank_in_range, scan[i].rank_in_range);
  }
  EXPECT_DOUBLE_EQ(scan.front().rank_in_range, 0.0);
  EXPECT_DOUBLE_EQ(scan.back().rank_in_range, 1.0);
}

TEST(SearchMlp, CoefficientReported) {
  const auto base = model_by_name("llama2-7b");
  const auto scan = search_mlp_intermediate(base, sim(), 11008, 11008);
  ASSERT_EQ(scan.size(), 1u);
  EXPECT_NEAR(scan.front().coefficient, 2.6875, 1e-12);
}

TEST(SearchMlp, Validation) {
  EXPECT_THROW(
      search_mlp_intermediate(model_by_name("gpt3-2.7b"), sim(), 100, 50),
      Error);
  const auto scan =
      search_mlp_intermediate(model_by_name("gpt3-2.7b"), sim(), 5000, 5100);
  EXPECT_THROW(mlp_candidate_percentile(scan, 999), LookupError);
}

TEST(PadVocab, PaperExamples) {
  EXPECT_EQ(pad_vocab(50257), 50304);  // GPT-2 BPE → nanoGPT's padded size
  EXPECT_EQ(pad_vocab(50304), 50304);
  EXPECT_EQ(pad_vocab(1), 64);
  EXPECT_THROW(pad_vocab(0), Error);
}

TEST(EvaluateCandidate, SpeedupIsRelative) {
  const auto base = model_by_name("gpt3-2.7b");
  const ShapeCandidate self = evaluate_candidate(base, base, sim());
  EXPECT_DOUBLE_EQ(self.speedup_vs_base, 1.0);
  EXPECT_DOUBLE_EQ(self.param_delta_frac, 0.0);
  const ShapeCandidate c2 =
      evaluate_candidate(model_by_name("gpt3-2.7b-c2"), base, sim());
  EXPECT_GT(c2.speedup_vs_base, 1.0);
}

}  // namespace
}  // namespace codesign::advisor
