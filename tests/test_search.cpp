// Tests for advisor/search.hpp — shape search, including the §VII-B SwiGLU
// brute force.
#include "advisor/search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::advisor {
namespace {

using tfm::model_by_name;

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

TEST(SearchHeads, FindsTheC2Reshape) {
  // The paper's headline: for GPT-3 2.7B the advisor must rank a head count
  // giving h/a = 64 (a = 40) above the default a = 32, with a material
  // speedup and zero parameter change.
  const auto cands = search_heads(model_by_name("gpt3-2.7b"), sim());
  ASSERT_FALSE(cands.empty());

  const ShapeCandidate* best_a40 = nullptr;
  const ShapeCandidate* base = nullptr;
  std::size_t idx_a40 = 0, idx_base = 0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (cands[i].config.num_heads == 40) {
      best_a40 = &cands[i];
      idx_a40 = i;
    }
    if (cands[i].config.num_heads == 32) {
      base = &cands[i];
      idx_base = i;
    }
  }
  ASSERT_NE(best_a40, nullptr);
  ASSERT_NE(base, nullptr);
  EXPECT_LT(idx_a40, idx_base);                 // ranked strictly better
  EXPECT_GT(best_a40->speedup_vs_base, 1.05);
  EXPECT_DOUBLE_EQ(best_a40->param_delta_frac, 0.0);
  EXPECT_DOUBLE_EQ(base->speedup_vs_base, 1.0);
}

TEST(SearchHeads, AllCandidatesValidAndSorted) {
  const auto cands = search_heads(model_by_name("gpt3-2.7b"), sim());
  double prev = 0.0;
  for (const ShapeCandidate& c : cands) {
    EXPECT_NO_THROW(c.config.validate());
    EXPECT_EQ(c.config.hidden_size, 2560);
    EXPECT_GE(c.layer_time, prev);
    prev = c.layer_time;
    EXPECT_GE(c.config.head_dim(), 32);
    EXPECT_LE(c.config.head_dim(), 256);
  }
}

TEST(SearchHeads, RespectsTensorParallel) {
  const auto base =
      model_by_name("gpt3-2.7b").with_tensor_parallel(4).with_vocab(50304);
  for (const ShapeCandidate& c : search_heads(base, sim())) {
    EXPECT_EQ(c.config.num_heads % 4, 0) << c.config.name;
  }
}

TEST(SearchHeads, MaxCandidatesHonored) {
  SearchOptions opt;
  opt.max_candidates = 3;
  EXPECT_LE(search_heads(model_by_name("gpt3-2.7b"), sim(), opt).size(), 3u);
}

TEST(SearchHeads, BaselineSurvivesTrimming) {
  // Regression: sort_and_trim used to drop the baseline config when it
  // ranked past max_candidates, contradicting "Always keep the baseline
  // for reference even if trimming".
  const auto base = model_by_name("gpt3-2.7b");
  const auto s = sim();

  // Establish that the baseline (a = 32) is NOT in the top 3 of the
  // untrimmed ranking, so trimming to 3 genuinely threatens it.
  SearchOptions all;
  all.max_candidates = 1000;
  const auto untrimmed = search_heads(base, s, all);
  std::size_t base_rank = untrimmed.size();
  for (std::size_t i = 0; i < untrimmed.size(); ++i) {
    if (untrimmed[i].config == base) base_rank = i;
  }
  ASSERT_LT(base_rank, untrimmed.size());
  ASSERT_GE(base_rank, 3u);

  SearchOptions opt;
  opt.max_candidates = 3;
  const auto trimmed = search_heads(base, s, opt);
  ASSERT_EQ(trimmed.size(), 3u);
  // The top max_candidates - 1 are the true best; the baseline takes the
  // final slot it would otherwise have been trimmed out of.
  EXPECT_EQ(trimmed[0].config, untrimmed[0].config);
  EXPECT_EQ(trimmed[1].config, untrimmed[1].config);
  EXPECT_EQ(trimmed.back().config, base);
  EXPECT_DOUBLE_EQ(trimmed.back().speedup_vs_base, 1.0);
}

TEST(SearchHidden, BoundsParameterDelta) {
  const auto cands = search_hidden(model_by_name("gpt3-2.7b"), sim());
  ASSERT_FALSE(cands.empty());
  for (const ShapeCandidate& c : cands) {
    if (c.config.hidden_size == 2560) continue;  // baseline
    EXPECT_LE(std::abs(c.param_delta_frac), 0.06 + 1e-9) << c.config.name;
    EXPECT_EQ(c.config.hidden_size % 64, 0);
    EXPECT_EQ(c.config.hidden_size % 32, 0);  // a = 32 must divide h
  }
}

TEST(SearchHidden, InvalidRadiusRejected) {
  EXPECT_THROW(search_hidden(model_by_name("gpt3-2.7b"), sim(), 0.0), Error);
  EXPECT_THROW(search_hidden(model_by_name("gpt3-2.7b"), sim(), 1.5), Error);
}

TEST(SearchMlp, AlignedWidthsDominate) {
  // Scan a small window; every top-quartile candidate should have a larger
  // power-of-two granule than the bottom quartile's average.
  const auto base = model_by_name("llama2-7b");
  const auto scan = search_mlp_intermediate(base, sim(), 10944, 11072);
  ASSERT_GT(scan.size(), 64u);
  // The best candidate must be divisible by 64.
  EXPECT_EQ(scan.front().d_ff % 64, 0);
  // An odd d_ff must rank in the bottom half.
  EXPECT_GT(mlp_candidate_percentile(scan, 11001), 0.5);
}

TEST(SearchMlp, Llama2_11008IsNearOptimal) {
  // §VII-B: "a brute-force search reveals that Llama-2-7B's intermediate
  // size is indeed one of the best performing sizes in its range".
  const auto base = model_by_name("llama2-7b");
  const auto scan = search_mlp_intermediate(base, sim(), 10752, 11264);
  const double pct = mlp_candidate_percentile(scan, 11008);
  EXPECT_LT(pct, 0.05);  // top 5% of its range
}

TEST(SearchMlp, ResultsSortedAndRanked) {
  const auto scan =
      search_mlp_intermediate(model_by_name("gpt3-2.7b"), sim(), 10200, 10300);
  for (std::size_t i = 1; i < scan.size(); ++i) {
    EXPECT_LE(scan[i - 1].mlp_time, scan[i].mlp_time);
    EXPECT_LE(scan[i - 1].rank_in_range, scan[i].rank_in_range);
  }
  EXPECT_DOUBLE_EQ(scan.front().rank_in_range, 0.0);
  EXPECT_DOUBLE_EQ(scan.back().rank_in_range, 1.0);
}

TEST(SearchMlp, CoefficientReported) {
  const auto base = model_by_name("llama2-7b");
  const auto scan = search_mlp_intermediate(base, sim(), 11008, 11008);
  ASSERT_EQ(scan.size(), 1u);
  EXPECT_NEAR(scan.front().coefficient, 2.6875, 1e-12);
}

TEST(SearchMlp, StrideByTensorParallelMatchesFilteredScan) {
  // Regression: the scan used to walk every integer in [lo, hi] and reject
  // the ~ (t-1)/t of them not divisible by t; it now steps by t directly.
  // The candidate set must be unchanged.
  const auto base = model_by_name("gpt3-2.7b")
                        .with_tensor_parallel(4)
                        .with_vocab(50304);
  const auto scan = search_mlp_intermediate(base, sim(), 10201, 10299);
  ASSERT_FALSE(scan.empty());
  std::vector<std::int64_t> seen;
  for (const MlpCandidate& c : scan) {
    EXPECT_EQ(c.d_ff % 4, 0);
    seen.push_back(c.d_ff);
  }
  std::sort(seen.begin(), seen.end());
  std::vector<std::int64_t> expected;
  for (std::int64_t ff = 10201; ff <= 10299; ++ff) {
    if (ff % 4 == 0) expected.push_back(ff);
  }
  EXPECT_EQ(seen, expected);
  // First legal value is round_up(lo, t), not lo.
  EXPECT_EQ(expected.front(), 10204);
}

TEST(SearchMlp, PercentileOnEmptyScanThrows) {
  EXPECT_THROW(mlp_candidate_percentile({}, 11008), Error);
}

TEST(SearchJoint, SupersetOfHeadAndHiddenSweeps) {
  // gpt3-2.7b: one 64-step of h is a ~5% parameter delta, inside the
  // default 6% bound, so the grid keeps both head and hidden re-shapes.
  const auto base = model_by_name("gpt3-2.7b");
  SearchOptions opt;
  opt.max_candidates = 1000;
  const auto joint = search_joint(base, sim(), 0.1, 0, opt);
  ASSERT_FALSE(joint.empty());

  // Contains the baseline, pure head re-shapes, and pure hidden re-shapes.
  bool has_base = false, has_head_reshape = false, has_hidden_reshape = false;
  std::set<std::string> names;
  double prev = 0.0;
  for (const ShapeCandidate& c : joint) {
    EXPECT_NO_THROW(c.config.validate());
    EXPECT_TRUE(names.insert(c.config.name).second) << "duplicate name";
    EXPECT_GE(c.layer_time, prev);
    prev = c.layer_time;
    if (c.config == base) has_base = true;
    if (c.config.hidden_size == base.hidden_size &&
        c.config.num_heads != base.num_heads) {
      has_head_reshape = true;
    }
    if (c.config.hidden_size != base.hidden_size) has_hidden_reshape = true;
    if (!(c.config == base)) {
      EXPECT_LE(std::abs(c.param_delta_frac), 0.06 + 1e-9);
    }
  }
  EXPECT_TRUE(has_base);
  EXPECT_TRUE(has_head_reshape);
  EXPECT_TRUE(has_hidden_reshape);
}

TEST(SearchJoint, CachedSimulatorGetsHighHitRate) {
  // The cache is what makes the joint grid tractable: a head sweep never
  // changes the MLP GEMMs and a hidden sweep re-visits whole layers, so
  // most estimates repeat.
  auto cached = sim();
  cached.enable_cache();
  SearchOptions opt;
  opt.max_candidates = 1000;
  search_joint(model_by_name("pythia-410m"), cached, 0.1, 0, opt);
  const gemm::CacheStats s = cached.cache()->stats();
  EXPECT_GT(s.hits, s.misses);  // majority of estimates served from cache
}

TEST(SearchMlp, Validation) {
  EXPECT_THROW(
      search_mlp_intermediate(model_by_name("gpt3-2.7b"), sim(), 100, 50),
      Error);
  const auto scan =
      search_mlp_intermediate(model_by_name("gpt3-2.7b"), sim(), 5000, 5100);
  EXPECT_THROW(mlp_candidate_percentile(scan, 999), LookupError);
}

TEST(PadVocab, PaperExamples) {
  EXPECT_EQ(pad_vocab(50257), 50304);  // GPT-2 BPE → nanoGPT's padded size
  EXPECT_EQ(pad_vocab(50304), 50304);
  EXPECT_EQ(pad_vocab(1), 64);
  EXPECT_THROW(pad_vocab(0), Error);
}

TEST(EvaluateCandidate, SpeedupIsRelative) {
  const auto base = model_by_name("gpt3-2.7b");
  const ShapeCandidate self = evaluate_candidate(base, base, sim());
  EXPECT_DOUBLE_EQ(self.speedup_vs_base, 1.0);
  EXPECT_DOUBLE_EQ(self.param_delta_frac, 0.0);
  const ShapeCandidate c2 =
      evaluate_candidate(model_by_name("gpt3-2.7b-c2"), base, sim());
  EXPECT_GT(c2.speedup_vs_base, 1.0);
}

}  // namespace
}  // namespace codesign::advisor
