// Tests for gemmsim/simulator.hpp — the façade.
#include "gemmsim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace codesign::gemm {
namespace {

TEST(GemmSimulator, ForGpuLooksUpRegistry) {
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  EXPECT_EQ(sim.gpu().id, "a100-40gb");
  EXPECT_THROW(GemmSimulator::for_gpu("nope"), LookupError);
}

TEST(GemmSimulator, PolicyChangesSelection) {
  const GemmSimulator fixed =
      GemmSimulator::for_gpu("a100", TilePolicy::kFixedLargest);
  const GemmSimulator autosel = GemmSimulator::for_gpu("a100");
  // A small-n problem where 256x128 is clearly wrong.
  const GemmProblem p = GemmProblem::bmm(128, 2048, 64, 2048);
  EXPECT_EQ(fixed.estimate(p).tile.name(), "256x128");
  EXPECT_NE(autosel.estimate(p).tile.name(), "256x128");
  EXPECT_LT(autosel.latency(p), fixed.latency(p));
}

TEST(GemmSimulator, LatencyAndThroughputAgree) {
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  const GemmProblem p = GemmProblem::gemm(4096, 4096, 4096);
  const KernelEstimate est = sim.estimate(p);
  EXPECT_DOUBLE_EQ(sim.latency(p), est.time);
  EXPECT_DOUBLE_EQ(sim.throughput_tflops(p), est.tflops());
}

TEST(GemmSimulator, SequenceLatencySumsKernels) {
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  const GemmProblem p = GemmProblem::gemm(2048, 2048, 2048);
  EXPECT_NEAR(sim.sequence_latency({p, p, p}), 3.0 * sim.latency(p), 1e-12);
  EXPECT_THROW(sim.sequence_latency({}), Error);
}

TEST(GemmSimulator, SimulateAgreesWithEstimate) {
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  const GemmProblem p = GemmProblem::gemm(4096, 4096, 1024);
  const KernelEstimate est = sim.estimate(p);
  const DesResult des = sim.simulate(p);
  const double body = est.time - est.launch_overhead;
  EXPECT_NEAR(des.makespan, body, body * 1e-9);
}

TEST(GemmSimulator, FlashEstimateExposed) {
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  FlashAttentionProblem p;
  p.batch = 4;
  p.heads = 32;
  p.seq = 2048;
  p.head_dim = 64;
  EXPECT_GT(sim.estimate_flash(p).tflops(), 0.0);
}

TEST(GemmSimulator, DifferentGpusDifferentAnswers) {
  const GemmProblem p = GemmProblem::gemm(8192, 8192, 8192);
  const double a100 = GemmSimulator::for_gpu("a100").throughput_tflops(p);
  const double v100 = GemmSimulator::for_gpu("v100").throughput_tflops(p);
  const double h100 = GemmSimulator::for_gpu("h100").throughput_tflops(p);
  EXPECT_GT(a100, v100);
  EXPECT_GT(h100, a100);
}

}  // namespace
}  // namespace codesign::gemm
