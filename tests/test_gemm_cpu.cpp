// Tests for kernels/gemm_cpu.hpp — the CPU execution substrate. The blocked
// and parallel kernels are verified against the naive triple loop over a
// grid of awkward shapes, and the fp16 emulation's error is bounded.
#include "kernels/gemm_cpu.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace codesign::kern {
namespace {

Tensor random2d(std::int64_t m, std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn({m, n}, rng, 1.0f);
}

// Property suite: blocked == naive == parallel for awkward shapes.
class GemmAlgoAgreement
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(GemmAlgoAgreement, BlockedAndParallelMatchNaive) {
  const auto [m, n, k] = GetParam();
  const Tensor a = random2d(m, k, 1);
  const Tensor b = random2d(k, n, 2);

  GemmOptions naive;
  naive.algo = GemmAlgo::kNaive;
  const Tensor c_ref = matmul(a, b, naive);

  GemmOptions blocked;
  blocked.algo = GemmAlgo::kBlocked;
  const Tensor c_blk = matmul(a, b, blocked);
  EXPECT_LT(relative_error(c_blk, c_ref), 1e-5f);

  GemmOptions parallel;
  parallel.algo = GemmAlgo::kParallel;
  parallel.num_threads = 3;
  const Tensor c_par = matmul(a, b, parallel);
  EXPECT_LT(relative_error(c_par, c_ref), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, GemmAlgoAgreement,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(7, 5, 3),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 129, 257),
                      std::make_tuple(128, 33, 300),
                      std::make_tuple(17, 256, 64),
                      std::make_tuple(100, 100, 1)));

TEST(GemmCpu, AlphaBeta) {
  const Tensor a = random2d(8, 8, 3);
  const Tensor b = random2d(8, 8, 4);
  Tensor c = Tensor::full({8, 8}, 1.0f);
  GemmOptions opt;
  opt.alpha = 2.0f;
  opt.beta = 0.5f;
  gemm(a, b, c, opt);

  // Reference: 2*A*B + 0.5*ones.
  const Tensor ab = matmul(a, b);
  for (std::int64_t i = 0; i < 8; ++i) {
    for (std::int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(c.at(i, j), 2.0f * ab.at(i, j) + 0.5f, 1e-4f);
    }
  }
}

TEST(GemmCpu, BetaOnePreservesAccumulator) {
  const Tensor a = random2d(4, 4, 5);
  const Tensor b = random2d(4, 4, 6);
  Tensor c = Tensor::full({4, 4}, 10.0f);
  GemmOptions opt;
  opt.beta = 1.0f;
  gemm(a, b, c, opt);
  const Tensor ab = matmul(a, b);
  EXPECT_NEAR(c.at(2, 2), ab.at(2, 2) + 10.0f, 1e-4f);
}

TEST(GemmCpu, ShapeValidation) {
  const Tensor a({2, 3});
  const Tensor b({4, 5});  // inner mismatch
  Tensor c({2, 5});
  EXPECT_THROW(gemm(a, b, c), Error);
  const Tensor b_ok({3, 5});
  Tensor c_bad({2, 4});
  EXPECT_THROW(gemm(a, b_ok, c_bad), Error);
}

TEST(GemmCpu, IdentityMultiplication) {
  Tensor eye({3, 3});
  for (int i = 0; i < 3; ++i) eye.at(i, i) = 1.0f;
  const Tensor a = random2d(3, 3, 7);
  EXPECT_LT(max_abs_diff(matmul(eye, a), a), 1e-6f);
  EXPECT_LT(max_abs_diff(matmul(a, eye), a), 1e-6f);
}

TEST(GemmCpu, Fp16EmulationErrorBounded) {
  const Tensor a = random2d(64, 64, 8);
  const Tensor b = random2d(64, 64, 9);
  const Tensor ref = matmul(a, b);
  GemmOptions fp16;
  fp16.fp16_inputs = true;
  fp16.fp16_output = true;
  const Tensor q = matmul(a, b, fp16);
  const float err = relative_error(q, ref);
  EXPECT_GT(err, 0.0f);      // quantization must actually happen
  EXPECT_LT(err, 5e-3f);     // but stays within fp16 accuracy
}

TEST(Bmm, MatchesPerBatchGemm) {
  Rng rng(11);
  const Tensor a = Tensor::randn({3, 5, 7}, rng);
  const Tensor b = Tensor::randn({3, 7, 4}, rng);
  const Tensor c = batched_matmul(a, b);
  ASSERT_EQ(c.dim(0), 3);
  ASSERT_EQ(c.dim(1), 5);
  ASSERT_EQ(c.dim(2), 4);
  for (std::int64_t batch = 0; batch < 3; ++batch) {
    Tensor a2({5, 7}), b2({7, 4});
    for (std::int64_t i = 0; i < 5; ++i)
      for (std::int64_t j = 0; j < 7; ++j) a2.at(i, j) = a.at(batch, i, j);
    for (std::int64_t i = 0; i < 7; ++i)
      for (std::int64_t j = 0; j < 4; ++j) b2.at(i, j) = b.at(batch, i, j);
    const Tensor c2 = matmul(a2, b2);
    for (std::int64_t i = 0; i < 5; ++i) {
      for (std::int64_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(c.at(batch, i, j), c2.at(i, j), 1e-4f);
      }
    }
  }
}

TEST(Bmm, BatchMismatchThrows) {
  const Tensor a({2, 4, 4});
  const Tensor b({3, 4, 4});
  Tensor c({2, 4, 4});
  EXPECT_THROW(bmm(a, b, c), Error);
}

TEST(Linear, MatchesManualTranspose) {
  // Y = X W^T: X (4, 6), W (5, 6) -> Y (4, 5).
  const Tensor x = random2d(4, 6, 12);
  const Tensor w = random2d(5, 6, 13);
  const Tensor y = linear(x, w);
  const Tensor y_ref = matmul(x, w.transposed_2d());
  EXPECT_LT(max_abs_diff(y, y_ref), 1e-5f);
}

TEST(Linear, BiasApplied) {
  const Tensor x = random2d(3, 4, 14);
  const Tensor w = random2d(2, 4, 15);
  const Tensor bias = Tensor::from_values({10.0f, 20.0f});
  const Tensor y = linear(x, w, &bias);
  const Tensor y0 = linear(x, w);
  EXPECT_NEAR(y.at(1, 0) - y0.at(1, 0), 10.0f, 1e-5f);
  EXPECT_NEAR(y.at(2, 1) - y0.at(2, 1), 20.0f, 1e-5f);
}

TEST(Linear, Rank3FoldingMatchesRank2) {
  // The Fig-14 property, numerically: a (2, 3, 4) input equals the (6, 4)
  // folding, and the batched dimension ordering is irrelevant.
  Rng rng(16);
  const Tensor x3 = Tensor::randn({2, 3, 4}, rng);
  const Tensor w = random2d(5, 4, 17);
  const Tensor y3 = linear(x3, w);
  ASSERT_EQ(y3.rank(), 3u);
  EXPECT_EQ(y3.dim(0), 2);
  EXPECT_EQ(y3.dim(1), 3);
  EXPECT_EQ(y3.dim(2), 5);
  const Tensor y2 = linear(x3.reshape({6, 4}), w);
  EXPECT_LT(max_abs_diff(y3.reshape({6, 5}), y2), 1e-6f);
}

TEST(Linear, ValidationErrors) {
  const Tensor x({2, 3});
  const Tensor w({4, 9});  // in_features mismatch
  EXPECT_THROW(linear(x, w), Error);
  const Tensor w_ok({4, 3});
  const Tensor bad_bias = Tensor::from_values({1.0f});
  EXPECT_THROW(linear(x, w_ok, &bad_bias), Error);
}

}  // namespace
}  // namespace codesign::kern
