// Tests for transformer/config.hpp.
#include "transformer/config.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace codesign::tfm {
namespace {

TransformerConfig gpt3_27b() {
  TransformerConfig c;
  c.name = "gpt3-2.7b";
  c.hidden_size = 2560;
  c.num_heads = 32;
  c.num_layers = 32;
  c.seq_len = 2048;
  c.microbatch = 4;
  c.vocab_size = 50257;
  return c;
}

TEST(Config, DerivedQuantities) {
  const TransformerConfig c = gpt3_27b();
  EXPECT_EQ(c.head_dim(), 80);   // the paper's headline inefficiency
  EXPECT_EQ(c.d_ff(), 4 * 2560);
  EXPECT_EQ(c.tokens(), 4 * 2048);
  EXPECT_EQ(c.hidden_per_tp(), 2560);
  EXPECT_EQ(c.heads_per_tp(), 32);
  EXPECT_EQ(c.mlp_matrices(), 2);
}

TEST(Config, SwigluDefaultsTo8hOver3) {
  TransformerConfig c = gpt3_27b();
  c.activation = Activation::kSwiGlu;
  // round(8 * 2560 / 3) = round(6826.67) = 6827
  EXPECT_EQ(c.d_ff(), 6827);
  EXPECT_EQ(c.mlp_matrices(), 3);
  // Explicit override wins.
  c.mlp_intermediate = 6912;
  EXPECT_EQ(c.d_ff(), 6912);
}

TEST(Config, ValidatePasses) {
  EXPECT_NO_THROW(gpt3_27b().validate());
}

TEST(Config, ValidateRejectsNonIntegralHeadDim) {
  TransformerConfig c = gpt3_27b();
  c.num_heads = 48;  // 2560 / 48 is not integral
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(Config, ValidateRejectsZeroFields) {
  for (auto mutate : {+[](TransformerConfig& c) { c.hidden_size = 0; },
                      +[](TransformerConfig& c) { c.num_heads = 0; },
                      +[](TransformerConfig& c) { c.num_layers = 0; },
                      +[](TransformerConfig& c) { c.seq_len = 0; },
                      +[](TransformerConfig& c) { c.microbatch = 0; },
                      +[](TransformerConfig& c) { c.vocab_size = 0; },
                      +[](TransformerConfig& c) { c.tensor_parallel = 0; }}) {
    TransformerConfig c = gpt3_27b();
    mutate(c);
    EXPECT_THROW(c.validate(), ConfigError);
  }
}

TEST(Config, ValidateTensorParallelDivisibility) {
  TransformerConfig c = gpt3_27b();
  c.tensor_parallel = 6;  // 32 heads not divisible by 6
  EXPECT_THROW(c.validate(), ConfigError);

  c = gpt3_27b();
  c.tensor_parallel = 8;
  c.vocab_size = 50264;  // divisible by 8
  EXPECT_NO_THROW(c.validate());

  c = gpt3_27b();
  c.tensor_parallel = 8;  // 50257 not divisible by 8 → vocab split fails
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(Config, FluentCopies) {
  const TransformerConfig c = gpt3_27b();
  EXPECT_EQ(c.with_heads(40).num_heads, 40);
  EXPECT_EQ(c.with_hidden(4096).hidden_size, 4096);
  EXPECT_EQ(c.with_layers(16).num_layers, 16);
  EXPECT_EQ(c.with_microbatch(8).microbatch, 8);
  EXPECT_EQ(c.with_seq_len(4096).seq_len, 4096);
  EXPECT_EQ(c.with_vocab(50304).vocab_size, 50304);
  EXPECT_EQ(c.with_tensor_parallel(4).tensor_parallel, 4);
  EXPECT_EQ(c.with_name("x").name, "x");
  // Original untouched.
  EXPECT_EQ(c.num_heads, 32);
}

TEST(Config, ToStringContainsKeyFields) {
  const std::string s = gpt3_27b().to_string();
  EXPECT_NE(s.find("h=2560"), std::string::npos);
  EXPECT_NE(s.find("a=32"), std::string::npos);
  EXPECT_NE(s.find("gelu"), std::string::npos);
}

TEST(Config, EnumNames) {
  EXPECT_STREQ(activation_name(Activation::kSwiGlu), "swiglu");
  EXPECT_STREQ(pos_embedding_name(PosEmbedding::kRotary), "rotary");
  EXPECT_STREQ(attention_impl_name(AttentionImpl::kFlash), "flash");
}

TEST(Config, HeadDimRequiresPositiveHeads) {
  TransformerConfig c = gpt3_27b();
  c.num_heads = 0;
  EXPECT_THROW(c.head_dim(), Error);
}

}  // namespace
}  // namespace codesign::tfm
