// Tests for common/table.hpp — the bench harness output formats.
#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace codesign {
namespace {

TEST(TableWriter, CsvOutput) {
  TableWriter t({"name", "value"});
  t.new_row().cell("a").cell(std::int64_t{1});
  t.new_row().cell("b").cell(2.5, 1);
  const std::string csv = t.render(TableFormat::kCsv);
  EXPECT_EQ(csv, "name,value\na,1\nb,2.5\n");
}

TEST(TableWriter, CsvEscaping) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(TableWriter, AsciiAlignsColumns) {
  TableWriter t({"x", "longer"});
  t.new_row().cell("aaaa").cell("b");
  const std::string out = t.render(TableFormat::kAscii);
  // Header, rule lines, and the row must all be present.
  EXPECT_NE(out.find("| x    | longer |"), std::string::npos);
  EXPECT_NE(out.find("| aaaa | b      |"), std::string::npos);
  EXPECT_NE(out.find("+------+--------+"), std::string::npos);
}

TEST(TableWriter, MarkdownFormat) {
  TableWriter t({"a", "b"});
  t.new_row().cell("1").cell("2");
  const std::string out = t.render(TableFormat::kMarkdown);
  EXPECT_NE(out.find("| a | b |"), std::string::npos);
  EXPECT_NE(out.find("|---|---|"), std::string::npos);
  EXPECT_NE(out.find("| 1 | 2 |"), std::string::npos);
}

TEST(TableWriter, AddRowValidatesWidth) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  t.add_row({"x", "y"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableWriter, PendingRowWidthChecked) {
  TableWriter t({"a", "b"});
  t.new_row().cell("only-one");
  EXPECT_THROW(t.render(), Error);  // flushing the short row fails
}

TEST(TableWriter, CellBeforeRowThrows) {
  TableWriter t({"a"});
  EXPECT_THROW(t.cell("x"), Error);
}

TEST(TableWriter, EmptyHeaderRejected) {
  EXPECT_THROW(TableWriter({}), Error);
}

TEST(TableWriter, DoublePrecision) {
  TableWriter t({"v"});
  t.new_row().cell(3.14159, 2);
  EXPECT_NE(t.render(TableFormat::kCsv).find("3.14"), std::string::npos);
}

TEST(TableWriter, MultipleRowsInOrder) {
  TableWriter t({"i"});
  for (int i = 0; i < 5; ++i) t.new_row().cell(static_cast<std::int64_t>(i));
  const std::string csv = t.render(TableFormat::kCsv);
  EXPECT_EQ(csv, "i\n0\n1\n2\n3\n4\n");
  EXPECT_EQ(t.num_rows(), 5u);
}

}  // namespace
}  // namespace codesign
