// Tests for kernels/backward.hpp — every analytic gradient is verified
// against central finite differences of the corresponding forward op.
#include "kernels/backward.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/attention_cpu.hpp"
#include "kernels/gemm_cpu.hpp"
#include "kernels/ops.hpp"

namespace codesign::kern {
namespace {

/// Scalar loss used by every gradcheck: a fixed random projection of the
/// op's output, so dLoss/dOutput is a known constant tensor.
struct Projector {
  Tensor weights;
  explicit Projector(const Shape& shape, std::uint64_t seed) {
    Rng rng(seed);
    weights = Tensor::randn(shape, rng, 1.0f);
  }
  double loss(const Tensor& out) const {
    double s = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      s += static_cast<double>(out.data()[i]) * weights.data()[i];
    }
    return s;
  }
};

/// Central finite difference of `loss(f(x))` with respect to x[i].
double fd_grad(Tensor& x, std::int64_t i,
               const std::function<double()>& loss_fn, double eps = 1e-3) {
  const float orig = x.data()[i];
  x.data()[i] = static_cast<float>(orig + eps);
  const double up = loss_fn();
  x.data()[i] = static_cast<float>(orig - eps);
  const double down = loss_fn();
  x.data()[i] = orig;
  return (up - down) / (2.0 * eps);
}

void expect_grad_matches(const Tensor& analytic, Tensor& input,
                         const std::function<double()>& loss_fn,
                         double tol = 2e-2) {
  // Check a spread of positions (all of them for small tensors).
  const std::int64_t n = analytic.numel();
  const std::int64_t stride = std::max<std::int64_t>(1, n / 24);
  for (std::int64_t i = 0; i < n; i += stride) {
    const double fd = fd_grad(input, i, loss_fn);
    const double an = analytic.data()[i];
    EXPECT_NEAR(an, fd, std::max(tol, tol * std::fabs(fd))) << "index " << i;
  }
}

TEST(Backward, LinearGradcheck) {
  Rng rng(1);
  Tensor x = Tensor::randn({5, 7}, rng, 0.5f);
  Tensor w = Tensor::randn({4, 7}, rng, 0.5f);
  const Tensor b = Tensor::randn({4}, rng, 0.5f);
  const Projector proj({5, 4}, 99);
  auto loss = [&] { return proj.loss(linear(x, w, &b)); };

  const LinearGrads g = linear_backward(proj.weights, x, w);
  expect_grad_matches(g.dx, x, loss);
  expect_grad_matches(g.dw, w, loss);
  // Bias gradient: column sums of dY.
  for (std::int64_t o = 0; o < 4; ++o) {
    double expect = 0.0;
    for (std::int64_t r = 0; r < 5; ++r) expect += proj.weights.at(r, o);
    EXPECT_NEAR(g.db.at(o), expect, 1e-4);
  }
}

TEST(Backward, LinearGradShapesMatchTrainingModel) {
  // The executable wgrad has (out, in) shape from a (rows, out)ᵀ x
  // (rows, in) product — i.e. rows (b·s) is the inner dimension, exactly
  // the rotation transformer/training.hpp prices.
  Rng rng(2);
  const Tensor x = Tensor::randn({8, 6}, rng);
  const Tensor w = Tensor::randn({3, 6}, rng);
  const Tensor dy = Tensor::randn({8, 3}, rng);
  const LinearGrads g = linear_backward(dy, x, w);
  EXPECT_EQ(g.dx.dim(0), 8);
  EXPECT_EQ(g.dx.dim(1), 6);
  EXPECT_EQ(g.dw.dim(0), 3);
  EXPECT_EQ(g.dw.dim(1), 6);
  EXPECT_EQ(g.db.dim(0), 3);
}

TEST(Backward, SoftmaxGradcheck) {
  Rng rng(3);
  Tensor x = Tensor::randn({4, 6}, rng, 1.0f);
  const Projector proj({4, 6}, 17);
  auto loss = [&] { return proj.loss(softmax_lastdim(x)); };
  const Tensor ds = softmax_backward(softmax_lastdim(x), proj.weights);
  expect_grad_matches(ds, x, loss, 1e-2);
}

TEST(Backward, SoftmaxRowsSumToZero) {
  // Softmax gradients live on the simplex tangent: each row sums to 0.
  Rng rng(4);
  const Tensor x = Tensor::randn({3, 8}, rng);
  const Tensor dp = Tensor::randn({3, 8}, rng);
  const Tensor ds = softmax_backward(softmax_lastdim(x), dp);
  for (std::int64_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < 8; ++i) sum += ds.at(r, i);
    EXPECT_NEAR(sum, 0.0, 1e-5);
  }
}

TEST(Backward, LayerNormGradcheck) {
  Rng rng(5);
  Tensor x = Tensor::randn({3, 12}, rng, 1.5f);
  Tensor gamma = Tensor::randn({12}, rng, 0.5f);
  Tensor beta = Tensor::randn({12}, rng, 0.5f);
  const Projector proj({3, 12}, 23);
  auto loss = [&] {
    return proj.loss(layernorm_lastdim(x, gamma, beta));
  };
  const LayerNormGrads g = layernorm_backward(proj.weights, x, gamma);
  expect_grad_matches(g.dx, x, loss, 2e-2);
  expect_grad_matches(g.dgamma, gamma, loss, 2e-2);
  // dbeta is just the upstream sum over rows.
  for (std::int64_t i = 0; i < 12; ++i) {
    double expect = 0.0;
    for (std::int64_t r = 0; r < 3; ++r) expect += proj.weights.at(r, i);
    EXPECT_NEAR(g.dbeta.at(i), expect, 1e-4);
  }
}

TEST(Backward, GeluGradcheck) {
  Rng rng(6);
  Tensor x = Tensor::randn({64}, rng, 1.0f);
  const Projector proj({64}, 31);
  auto loss = [&] { return proj.loss(gelu(x)); };
  expect_grad_matches(gelu_backward(proj.weights, x), x, loss, 1e-2);
}

TEST(Backward, SiluGradcheck) {
  Rng rng(7);
  Tensor x = Tensor::randn({64}, rng, 1.0f);
  const Projector proj({64}, 37);
  auto loss = [&] { return proj.loss(silu(x)); };
  expect_grad_matches(silu_backward(proj.weights, x), x, loss, 1e-2);
}

class AttentionGradcheck : public ::testing::TestWithParam<bool> {};

TEST_P(AttentionGradcheck, MatchesFiniteDifferences) {
  const bool causal = GetParam();
  Rng rng(8);
  Tensor q = Tensor::randn({2, 5, 4}, rng, 0.7f);
  Tensor k = Tensor::randn({2, 5, 4}, rng, 0.7f);
  Tensor v = Tensor::randn({2, 5, 4}, rng, 0.7f);
  const Projector proj({2, 5, 4}, 41);
  auto loss = [&] {
    return proj.loss(attention_reference(q, k, v, causal));
  };
  const AttentionGrads g =
      attention_backward(q, k, v, proj.weights, causal);
  expect_grad_matches(g.dq, q, loss, 2e-2);
  expect_grad_matches(g.dk, k, loss, 2e-2);
  expect_grad_matches(g.dv, v, loss, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(Masks, AttentionGradcheck,
                         ::testing::Values(false, true));

TEST(Backward, ShapeValidation) {
  Tensor a({2, 3});
  Tensor b({3, 3});
  EXPECT_THROW(linear_backward(a, a, Tensor({4, 4})), Error);
  EXPECT_THROW(softmax_backward(a, b), Error);
  EXPECT_THROW(gelu_backward(a, b), Error);
  Tensor q({2, 4, 4});
  Tensor bad({2, 5, 4});
  EXPECT_THROW(attention_backward(q, q, q, bad, false), Error);
}

}  // namespace
}  // namespace codesign::kern
