// Tests for the serve subsystem: protocol round trips, byte-identity of
// server payloads against the shared CLI renderers (including under eight
// concurrent clients), typed overload rejection, deadline semantics,
// failpoint drills, and graceful drain. The end-to-end binary-vs-binary
// byte diff (codesign-client output against one-shot `codesign` stdout)
// lives in tools/check.sh's serve smoke tier.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "advisor/report.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "gemmsim/estimate_cache.hpp"
#include "gemmsim/simulator.hpp"
#include "gpuarch/dtype.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/fleet_client.hpp"
#include "serve/ops.hpp"
#include "serve/protocol.hpp"
#include "sweep/driver.hpp"
#include "sweep/report.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

using serve::FleetOptions;
using serve::ServeClient;

// ---------------------------------------------------------------------------
// Protocol: request parsing and response envelopes.

TEST(ServeProtocol, ParseRequestExtractsEnvelopeFields) {
  const serve::Request r = serve::parse_request(
      R"({"op":"estimate","id":"q-1","deadline_ms":250,"m":64,"n":64,"k":64})");
  EXPECT_EQ(r.op, "estimate");
  EXPECT_EQ(r.id, "q-1");
  EXPECT_EQ(r.deadline_ms, 250);
  EXPECT_DOUBLE_EQ(r.body.at("m").as_number(), 64.0);
}

TEST(ServeProtocol, ParseRequestRejectsMalformedLines) {
  EXPECT_THROW(serve::parse_request("this is not json"), UsageError);
  EXPECT_THROW(serve::parse_request("[1,2,3]"), UsageError);
  EXPECT_THROW(serve::parse_request(R"({"id":"no-op-field"})"), UsageError);
  EXPECT_THROW(serve::parse_request(R"({"op":42})"), UsageError);
  EXPECT_THROW(serve::parse_request(R"({"op":"ping","deadline_ms":-5})"),
               UsageError);
}

TEST(ServeProtocol, ResponseBuildersRoundTripThroughTheParser) {
  const std::string ok = serve::ok_response("id-1", 0, "hello\nworld\n");
  ASSERT_FALSE(ok.empty());
  EXPECT_EQ(ok.back(), '\n');
  const serve::Response r1 = serve::parse_response(ok);
  EXPECT_TRUE(r1.ok());
  EXPECT_EQ(r1.code, 0);
  EXPECT_EQ(r1.id, "id-1");
  EXPECT_EQ(r1.payload, "hello\nworld\n");

  const serve::Response r2 =
      serve::parse_response(serve::error_response("", kExitShape, "m must be"));
  EXPECT_EQ(r2.status, "error");
  EXPECT_EQ(r2.code, kExitShape);
  EXPECT_TRUE(r2.id.empty());
  EXPECT_EQ(r2.error, "m must be");

  const serve::Response r3 =
      serve::parse_response(serve::overloaded_response("q", 25, "busy"));
  EXPECT_TRUE(r3.overloaded());
  EXPECT_EQ(r3.code, kExitUnavailable);
  EXPECT_EQ(r3.retry_after_ms, 25);
}

TEST(ServeProtocol, AttributionBlockRidesTheOkEnvelope) {
  // Without an attribution block the envelope is unchanged (old clients
  // keep parsing exactly what they always did).
  const std::string plain = serve::ok_response("id-2", 0, "payload");
  EXPECT_EQ(plain.find("attribution"), std::string::npos);
  EXPECT_TRUE(serve::parse_response(plain).attribution.empty());

  // With one, the compact JSON is spliced as a member and the parser hands
  // it back re-serialized compact.
  const std::string block = R"({"report":"codesign.attribution","version":1})";
  const std::string with =
      serve::ok_response("id-3", 0, "payload", block);
  EXPECT_EQ(with.find('\n'), with.size() - 1)
      << "the envelope must stay one protocol frame";
  const serve::Response r = serve::parse_response(with);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.payload, "payload");
  EXPECT_EQ(r.attribution, block);
}

TEST(ServeProtocol, NastyIdsSurviveTheEnvelope) {
  const std::string nasty = "a\"b\\c\n\x01 \xE2\x82\xAC";
  const serve::Response r =
      serve::parse_response(serve::ok_response(nasty, 0, nasty));
  EXPECT_EQ(r.id, nasty);
  EXPECT_EQ(r.payload, nasty);
}

TEST(ServeProtocol, ParseResponseRejectsUnknownStatus) {
  EXPECT_THROW(serve::parse_response("not json"), Error);
  EXPECT_THROW(serve::parse_response(R"({"status":"weird","code":0})"), Error);
}

// ---------------------------------------------------------------------------
// Server fixture: ephemeral-port in-process server + blocking clients.

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::clear();
    SigintGuard::reset();
  }
  void TearDown() override { fail::clear(); }

  static serve::ServerOptions options(std::size_t threads,
                                      std::size_t queue_capacity = 0) {
    serve::ServerOptions o;
    o.port = 0;  // ephemeral; read back via Server::port()
    o.threads = threads;
    o.queue_capacity = queue_capacity;
    return o;
  }

  /// Drain + join, asserting the server shuts down cleanly.
  static void shut_down(serve::Server& server) {
    server.request_drain();
    server.join();
  }
};

/// The bytes `codesign gemm --m=M --n=N --k=K` prints for the default GPU.
std::string expected_estimate(std::int64_t m, std::int64_t n, std::int64_t k) {
  gemm::GemmProblem p;
  p.m = m;
  p.n = n;
  p.k = k;
  p.batch = 1;
  p.dtype = gpu::dtype_from_name("fp16");
  p.validate();
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  std::ostringstream os;
  serve::render_estimate(os, p, sim);
  return os.str();
}

/// The bytes `codesign explain --m=M --n=N --k=K` prints (sans --trace).
std::string expected_explain(std::int64_t m, std::int64_t n, std::int64_t k) {
  gemm::GemmProblem p;
  p.m = m;
  p.n = n;
  p.k = k;
  p.batch = 1;
  p.dtype = gpu::dtype_from_name("fp16");
  p.validate();
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  std::ostringstream os;
  serve::render_explain(os, p, sim);
  return os.str();
}

/// The bytes `codesign advise <model>` prints with default flags.
std::string expected_advise(const std::string& model) {
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  std::ostringstream os;
  serve::render_advise(os, tfm::model_by_name(model), sim,
                       advisor::ReportOptions{});
  return os.str();
}

/// The bytes `codesign search <model> --mode=<mode> --cache` prints with
/// the server's per-request settings (one thread, shared cache attached).
std::string expected_search(const std::string& model, const std::string& mode) {
  serve::SearchRequest sr;
  sr.config = tfm::model_by_name(model);
  sr.mode = mode;
  sr.radius = 0.1;
  sr.options.max_candidates = 16;
  sr.options.faults.max_retries = 2;
  sr.options.threads = 1;
  serve::default_dff_range(sr.config, &sr.dff_lo, &sr.dff_hi);
  gemm::GemmSimulator sim = gemm::GemmSimulator::for_gpu("a100");
  sim.set_cache(std::make_shared<gemm::EstimateCache>());
  std::ostringstream os;
  serve::render_search(os, sr, sim);
  return os.str();
}

TEST_F(ServeTest, EstimatePayloadMatchesTheCliBytes) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());
  const std::string expected = expected_estimate(4096, 4096, 4096);

  const serve::Response r1 =
      client.call_op("estimate", R"("m":4096,"n":4096,"k":4096)");
  ASSERT_TRUE(r1.ok()) << r1.error;
  EXPECT_EQ(r1.code, kExitOk);
  EXPECT_EQ(r1.payload, expected);

  // A repeat of the same shape is a warm hit in the process-wide cache —
  // and still byte-identical.
  const serve::Response r2 =
      client.call_op("estimate", R"("m":4096,"n":4096,"k":4096)");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.payload, expected);
  EXPECT_GT(server.cache()->stats().hits, 0u);

  client.close();
  shut_down(server);
}

TEST_F(ServeTest, AdviseAndExplainPayloadsMatchTheCliBytes) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  const serve::Response advise =
      client.call_op("advise", R"("model":"gpt3-2.7b")");
  ASSERT_TRUE(advise.ok()) << advise.error;
  EXPECT_EQ(advise.payload, expected_advise("gpt3-2.7b"));

  const serve::Response explain =
      client.call_op("explain", R"("m":8192,"n":50257,"k":2560)");
  ASSERT_TRUE(explain.ok()) << explain.error;
  EXPECT_EQ(explain.payload, expected_explain(8192, 50257, 2560));

  client.close();
  shut_down(server);
}

TEST_F(ServeTest, AdviseManyElementsMatchScalarAdviseBytes) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  // One request, three tuples (with a duplicate): the payload is a JSON
  // array of strings whose element i is byte-identical to the scalar
  // advise payload for tuple i.
  const serve::Response many = client.call_op(
      "advise_many",
      R"("items":[{"model":"pythia-70m"},{"model":"gpt3-125m"},)"
      R"({"model":"pythia-70m"}])");
  ASSERT_TRUE(many.ok()) << many.error;
  EXPECT_EQ(many.code, kExitOk);
  const json::Value doc = json::Value::parse(many.payload);
  ASSERT_TRUE(doc.is_array());
  const auto& elems = doc.as_array();
  ASSERT_EQ(elems.size(), 3u);
  EXPECT_EQ(elems[0].as_string(), expected_advise("pythia-70m"));
  EXPECT_EQ(elems[1].as_string(), expected_advise("gpt3-125m"));
  EXPECT_EQ(elems[2].as_string(), elems[0].as_string());

  // An empty batch is a usage error, not a crash.
  const serve::Response empty = client.call_op("advise_many", R"("items":[])");
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.code, kExitUsage);

  client.close();
  shut_down(server);
}

TEST_F(ServeTest, AdviseAttributionBlockIsOptInAndLeavesThePayloadAlone) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  // Opted in: the envelope carries a parseable attribution report and the
  // payload stays byte-identical to the un-opted request.
  const serve::Response with = client.call_op(
      "advise", R"("model":"pythia-70m","attribution":true)");
  ASSERT_TRUE(with.ok()) << with.error;
  EXPECT_EQ(with.payload, expected_advise("pythia-70m"));
  ASSERT_FALSE(with.attribution.empty());
  const json::Value report = json::Value::parse(with.attribution);
  EXPECT_EQ(report.at("report").as_string(), "codesign.attribution");
  EXPECT_EQ(report.at("model").as_string(), "pythia-70m");
  EXPECT_TRUE(report.at("sensitivity").as_array().empty());

  // Default: no attribution member at all.
  const serve::Response without =
      client.call_op("advise", R"("model":"pythia-70m")");
  ASSERT_TRUE(without.ok()) << without.error;
  EXPECT_TRUE(without.attribution.empty());
  EXPECT_EQ(without.payload, with.payload);

  // advise_many: the block is an array aligned with "items".
  const serve::Response many = client.call_op(
      "advise_many",
      R"("items":[{"model":"pythia-70m"},{"model":"gpt3-125m"}],)"
      R"("attribution":true)");
  ASSERT_TRUE(many.ok()) << many.error;
  const json::Value blocks = json::Value::parse(many.attribution);
  ASSERT_TRUE(blocks.is_array());
  ASSERT_EQ(blocks.as_array().size(), 2u);
  EXPECT_EQ(blocks.as_array()[0].at("model").as_string(), "pythia-70m");
  EXPECT_EQ(blocks.as_array()[1].at("model").as_string(), "gpt3-125m");

  client.close();
  shut_down(server);
}

TEST_F(ServeTest, SearchPayloadMatchesTheCliBytesWithTheCachedBanner) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  const serve::Response r =
      client.call_op("search", R"("model":"gpt3-125m","mode":"heads")");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.code, kExitOk);
  // Per-request searches run single-threaded against the shared cache, and
  // the banner says so — exactly like `codesign search --threads=1 --cache`.
  EXPECT_NE(r.payload.find("(1 thread, cached)"), std::string::npos);
  EXPECT_EQ(r.payload, expected_search("gpt3-125m", "heads"));

  client.close();
  shut_down(server);
}

TEST_F(ServeTest, SweepPayloadMatchesTheCliJsonBytes) {
  // A one-cell matrix small enough for a unit test; the big-matrix
  // byte-identity drills live in tests/test_sweep.cpp and check.sh.
  const std::string config_text =
      "[sweep]\nname = t\ngpus = a100\n"
      "[workload]\nfamily = prefill\nname = p\nmodel = gpt3-125m\n"
      "seq_lens = 256, 512\n";
  const sweep::SweepPlan plan = sweep::parse_sweep_config(config_text, "t");
  sweep::SweepOptions sweep_options;
  sweep_options.threads = 1;
  sweep_options.cache = std::make_shared<gemm::EstimateCache>();
  const std::string expected =
      sweep::sweep_report_json(sweep::run_sweep(plan, sweep_options),
                               /*compact=*/true) +
      "\n";

  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());
  std::ostringstream request;
  json::Writer w(request);
  w.begin_object().member("op", "sweep").member("config", config_text);
  w.end_object();
  const serve::Response r = client.call(request.str());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.code, kExitOk);
  // The payload is the compact codesign.sweep report — byte-identical to
  // `codesign sweep --config=<f> --json` stdout for the same config text.
  EXPECT_EQ(r.payload, expected);

  // Body errors keep the taxonomy: a missing "config" is a usage error, a
  // malformed config is a config error naming the client-supplied origin.
  EXPECT_EQ(client.call_op("sweep").code, kExitUsage);
  std::ostringstream bad;
  json::Writer bw(bad);
  bw.begin_object()
      .member("op", "sweep")
      .member("config", "key = 1\n")
      .member("origin", "remote.conf");
  bw.end_object();
  const serve::Response r2 = client.call(bad.str());
  EXPECT_EQ(r2.code, kExitConfig);
  EXPECT_NE(r2.error.find("remote.conf:1"), std::string::npos) << r2.error;

  client.close();
  shut_down(server);
}

TEST_F(ServeTest, GarbledResponseLineSurfacesAsIoError) {
  // A mismatched peer that answers with a non-envelope line must surface
  // as IoError (exit 7, like a dead connection) — not a raw Error that
  // would exit 1 and break the documented taxonomy.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = static_cast<int>(ntohs(addr.sin_port));
  ASSERT_EQ(::listen(fd, 1), 0);
  std::thread peer([fd] {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) return;
    char buf[512];
    (void)::recv(conn, buf, sizeof(buf), 0);  // swallow the request line
    const char garbage[] = "HTTP/1.1 400 Bad Request\n";
    (void)::send(conn, garbage, sizeof(garbage) - 1, 0);
    ::close(conn);
  });
  ServeClient client("127.0.0.1", port);
  EXPECT_THROW(client.call_op("ping"), IoError);
  peer.join();
  ::close(fd);
}

TEST_F(ServeTest, ByteIdentityHoldsAcrossEightConcurrentClients) {
  serve::Server server(options(8));
  server.start();
  const int port = server.port();

  const std::string want_estimate = expected_estimate(2048, 2048, 2048);
  const std::string want_advise = expected_advise("pythia-70m");
  const std::string want_explain = expected_explain(1024, 4096, 1024);

  constexpr int kClients = 8;
  constexpr int kRounds = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        ServeClient client("127.0.0.1", port);
        for (int i = 0; i < kRounds; ++i) {
          // Each client rotates through the mix from a different offset so
          // every op is in flight concurrently with every other.
          switch ((c + i) % 3) {
            case 0: {
              const auto r =
                  client.call_op("estimate", R"("m":2048,"n":2048,"k":2048)");
              if (!r.ok() || r.payload != want_estimate) ++mismatches;
              break;
            }
            case 1: {
              const auto r = client.call_op("advise", R"("model":"pythia-70m")");
              if (!r.ok() || r.payload != want_advise) ++mismatches;
              break;
            }
            default: {
              const auto r =
                  client.call_op("explain", R"("m":1024,"n":4096,"k":1024)");
              if (!r.ok() || r.payload != want_explain) ++mismatches;
              break;
            }
          }
        }
      } catch (const std::exception& e) {
        failures[static_cast<std::size_t>(c)] = e.what();
        ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();

  std::string errors;
  for (const auto& f : failures) {
    if (!f.empty()) errors += f + "; ";
  }
  EXPECT_EQ(mismatches.load(), 0) << errors;
  shut_down(server);
  const serve::ServerStats s = server.stats();
  EXPECT_EQ(s.ok, static_cast<std::uint64_t>(kClients * kRounds));
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.overloaded, 0u);
}

TEST_F(ServeTest, OverloadRejectionIsTypedAndCarriesARetryHint) {
  // One worker, admission cap one: a pinned worker makes the very next
  // request an immediate typed rejection, never an unbounded queue.
  serve::Server server(options(/*threads=*/1, /*queue_capacity=*/1));
  server.start();

  serve::Response pinned;
  std::thread pin([&] {
    ServeClient a("127.0.0.1", server.port());
    pinned = a.call_op("sleep", R"("ms":300)");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  ServeClient b("127.0.0.1", server.port());
  const serve::Response rejected =
      b.call_op("estimate", R"("id":"r-1","m":512,"n":512,"k":512)");
  EXPECT_TRUE(rejected.overloaded());
  EXPECT_EQ(rejected.code, kExitUnavailable);
  EXPECT_GE(rejected.retry_after_ms, 1);
  EXPECT_NE(rejected.error.find("overloaded"), std::string::npos);

  pin.join();
  ASSERT_TRUE(pinned.ok()) << pinned.error;
  EXPECT_EQ(pinned.payload, "slept 300 ms\n");

  // Backoff-and-retry per the hint eventually succeeds.
  serve::Response retried;
  for (int i = 0; i < 100; ++i) {
    retried = b.call_op("estimate", R"("m":512,"n":512,"k":512)");
    if (retried.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(retried.ok()) << retried.error;
  EXPECT_EQ(retried.payload, expected_estimate(512, 512, 512));

  b.close();
  shut_down(server);
  EXPECT_GE(server.stats().overloaded, 1u);
}

TEST_F(ServeTest, StatsAndPingBypassAdmissionControl) {
  obs::MetricsRegistry::set_enabled(true);
  serve::Server server(options(/*threads=*/1, /*queue_capacity=*/1));
  server.start();

  std::thread pin([&] {
    ServeClient a("127.0.0.1", server.port());
    (void)a.call_op("sleep", R"("ms":300)");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // Both diagnostic ops answer inline on the reader thread even when the
  // worker pool is saturated and admission would reject.
  ServeClient b("127.0.0.1", server.port());
  const serve::Response ping = b.call_op("ping");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.payload, "pong\n");

  const serve::Response stats = b.call_op("stats");
  ASSERT_TRUE(stats.ok()) << stats.error;
  const json::Value doc = json::Value::parse(stats.payload);
  EXPECT_TRUE(doc.is_object());
  // The sleep is still in flight: its latency sample lands only on
  // completion, but the queue-depth gauge already reflects the admission.
  EXPECT_NE(stats.payload.find("serve.queue_depth"), std::string::npos);

  pin.join();
  const serve::Response after = b.call_op("stats");
  ASSERT_TRUE(after.ok()) << after.error;
  EXPECT_NE(after.payload.find("serve.requests"), std::string::npos);
  EXPECT_NE(after.payload.find("serve.request_us"), std::string::npos);
  // Best-effort process gauges ride along (uptime everywhere; RSS and fd
  // count wherever /proc/self exists). They are snapshot-local: best
  // effort by construction and never in the registry itself.
  EXPECT_NE(after.payload.find("process.uptime_s"), std::string::npos);
#if defined(__linux__)
  EXPECT_NE(after.payload.find("process.rss_bytes"), std::string::npos);
  EXPECT_NE(after.payload.find("process.open_fds"), std::string::npos);
#endif
  const serve::Response prom =
      b.call_op("stats", R"("format":"prom")");
  ASSERT_TRUE(prom.ok()) << prom.error;
  // The completed sleep's latency histogram exports cumulative buckets,
  // closing with le="+Inf".
  EXPECT_NE(prom.payload.find("codesign_serve_request_us_bucket{"),
            std::string::npos);
  EXPECT_NE(prom.payload.find("le=\"+Inf\""), std::string::npos);
#if defined(__linux__)
  EXPECT_NE(prom.payload.find("codesign_process_rss_bytes{stability=\"best_"
                              "effort\"}"),
            std::string::npos);
#endif

  b.close();
  shut_down(server);
}

TEST_F(ServeTest, DeadlineExpiryAnswersCancelledCodeSix) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  const serve::Response r =
      client.call_op("sleep", R"("ms":5000,"deadline_ms":40)");
  EXPECT_EQ(r.status, "error");
  EXPECT_EQ(r.code, kExitCancelled);
  EXPECT_NE(r.error.find("deadline"), std::string::npos);

  client.close();
  shut_down(server);
}

TEST_F(ServeTest, SearchDeadlineKeepsTruncationSemantics) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  // A ~1M-candidate d_ff scan cannot finish in 1 ms (the full sweep takes
  // seconds even on a fast host): either the deadline trips mid-sweep
  // (ok + partial banner, like the CLI) or it trips before the sweep
  // starts (CancelledError). Both are code 6. A small joint sweep is no
  // good here — the analytic estimator finishes one in microseconds, so a
  // 1 ms deadline would race the sweep instead of reliably truncating it.
  const serve::Response r = client.call_op(
      "search",
      R"("custom":"h=12288,a=96,L=96,v=50257","mode":"mlp",)"
      R"("lo":256,"hi":1000000,"max":100000000,"deadline_ms":1)");
  EXPECT_EQ(r.code, kExitCancelled);
  if (r.ok()) {
    EXPECT_NE(r.payload.find("*** PARTIAL RESULTS: sweep cancelled (deadline)"),
              std::string::npos);
    EXPECT_NE(r.payload.find("--resume to finish"), std::string::npos);
  } else {
    EXPECT_NE(r.error.find("cancelled"), std::string::npos);
  }

  client.close();
  shut_down(server);
}

TEST_F(ServeTest, UsageAndDomainErrorsKeepTheExitTaxonomy) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  const serve::Response bad_json = client.call("this is not json");
  EXPECT_EQ(bad_json.status, "error");
  EXPECT_EQ(bad_json.code, kExitUsage);

  const serve::Response bad_op = client.call_op("frobnicate");
  EXPECT_EQ(bad_op.code, kExitUsage);
  EXPECT_NE(bad_op.error.find("unknown op"), std::string::npos);

  const serve::Response bad_shape =
      client.call_op("estimate", R"("m":0,"n":64,"k":64)");
  EXPECT_EQ(bad_shape.code, kExitShape);

  const serve::Response bad_model =
      client.call_op("advise", R"("model":"no-such-model")");
  EXPECT_EQ(bad_model.code, kExitLookup);

  // The connection survives every rejected request.
  EXPECT_TRUE(client.call_op("ping").ok());

  client.close();
  shut_down(server);
  EXPECT_GE(server.stats().parse_errors, 1u);
}

TEST_F(ServeTest, ParseAndDispatchFailpointsAnswerTypedErrors) {
  serve::Server server(options(2));
  server.start();
  ServeClient client("127.0.0.1", server.port());

  fail::configure("serve.parse=always");
  const serve::Response parse_fault = client.call_op("ping");
  EXPECT_EQ(parse_fault.status, "error");
  EXPECT_EQ(parse_fault.code, kExitError);

  // A transient dispatch fault is a recoverable blip: it answers as a
  // typed retryable rejection (code 75 with a retry hint), the thing a
  // FleetClient absorbs without surfacing an error to the caller.
  fail::configure("serve.parse=off");
  fail::configure("serve.dispatch=always");
  const serve::Response dispatch_fault =
      client.call_op("estimate", R"("m":64,"n":64,"k":64)");
  EXPECT_EQ(dispatch_fault.status, "overloaded");
  EXPECT_EQ(dispatch_fault.code, kExitUnavailable);
  EXPECT_GE(dispatch_fault.retry_after_ms, 1);

  // A fatal dispatch fault stays a hard, non-retryable error.
  fail::configure("serve.dispatch=always:fatal");
  const serve::Response fatal_fault =
      client.call_op("estimate", R"("m":64,"n":64,"k":64)");
  EXPECT_EQ(fatal_fault.status, "error");
  EXPECT_EQ(fatal_fault.code, kExitError);

  // Disarmed, the same connection serves normally again.
  fail::clear();
  EXPECT_TRUE(client.call_op("ping").ok());

  client.close();
  shut_down(server);
}

TEST_F(ServeTest, AcceptFailpointDropsTheConnection) {
  serve::Server server(options(2));
  server.start();

  fail::configure("serve.accept=always");
  EXPECT_THROW(
      {
        ServeClient doomed("127.0.0.1", server.port());
        (void)doomed.call_op("ping");
      },
      IoError);
  fail::clear();

  // The accept loop survives the drill and serves the next connection.
  ServeClient client("127.0.0.1", server.port());
  EXPECT_TRUE(client.call_op("ping").ok());

  client.close();
  shut_down(server);
  EXPECT_GE(server.stats().dropped, 1u);
}

std::size_t count_open_fds() {
  std::size_t n = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

TEST_F(ServeTest, ConnectionChurnReapsFdsAndReaderThreads) {
  serve::Server server(options(2));
  server.start();

  const std::size_t before = count_open_fds();
  for (int i = 0; i < 50; ++i) {
    ServeClient c("127.0.0.1", server.port());
    ASSERT_TRUE(c.call_op("ping").ok());
  }

  // Readers exit asynchronously after each disconnect; the server must
  // release every connection's fd long before drain — under churn a
  // leak here eventually hits EMFILE and kills the listener.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  std::size_t now = count_open_fds();
  while (now > before + 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    now = count_open_fds();
  }
  EXPECT_LE(now, before + 2);

  // The listener survived the churn and still serves.
  ServeClient probe("127.0.0.1", server.port());
  EXPECT_TRUE(probe.call_op("ping").ok());
  probe.close();

  shut_down(server);
  EXPECT_EQ(server.stats().connections, 51u);
  EXPECT_EQ(server.stats().ok, 51u);
}

TEST_F(ServeTest, OversizedRequestLineAnswersUsageErrorAndClosesTheSocket) {
  serve::ServerOptions opts = options(2);
  opts.max_line_bytes = 1024;
  serve::Server server(opts);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  timeval tv{5, 0};  // a regression hangs in recv(); fail instead
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);

  const std::string blob(2048, 'x');  // exceeds max_line_bytes, no newline
  ASSERT_EQ(::send(fd, blob.data(), blob.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(blob.size()));

  // Contract: a usage error comes back and the connection is closed —
  // reading to EOF terminates now, not at server drain.
  std::string rx;
  char chunk[512];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    rx.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  ASSERT_FALSE(rx.empty());
  const serve::Response r = serve::parse_response(rx);
  EXPECT_EQ(r.status, "error");
  EXPECT_EQ(r.code, kExitUsage);

  // The server survives and answers fresh connections.
  ServeClient probe("127.0.0.1", server.port());
  EXPECT_TRUE(probe.call_op("ping").ok());
  probe.close();
  shut_down(server);
}

TEST_F(ServeTest, BindConflictThrowsIoError) {
  serve::Server first(options(1));
  first.start();

  serve::ServerOptions clash = options(1);
  clash.port = first.port();
  serve::Server second(clash);
  EXPECT_THROW(second.start(), IoError);

  shut_down(first);
}

TEST_F(ServeTest, DrainFinishesInFlightWorkThenRefusesNewConnections) {
  serve::Server server(options(/*threads=*/2, /*queue_capacity=*/4));
  server.start();
  const int port = server.port();

  serve::Response r1, r2;
  std::thread c1([&] {
    ServeClient c("127.0.0.1", port);
    r1 = c.call_op("sleep", R"("ms":200)");
  });
  std::thread c2([&] {
    ServeClient c("127.0.0.1", port);
    r2 = c.call_op("sleep", R"("ms":200)");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // Drain must finish the admitted sleeps (never cancel them) and deliver
  // their responses before join() returns.
  server.request_drain();
  server.join();
  c1.join();
  c2.join();
  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r1.payload, "slept 200 ms\n");
  EXPECT_EQ(r2.payload, "slept 200 ms\n");

  // The listening socket is gone: new connections are refused.
  EXPECT_THROW(ServeClient("127.0.0.1", port), IoError);
}

TEST_F(ServeTest, SigintDuringABurstDrainsOnceAndCleanly) {
  SigintGuard guard;
  serve::ServerOptions opts = options(/*threads=*/2, /*queue_capacity=*/4);
  opts.watch_sigint = true;
  serve::Server server(opts);
  server.start();
  const int port = server.port();

  serve::Response r1, r2;
  std::thread c1([&] {
    ServeClient c("127.0.0.1", port);
    r1 = c.call_op("sleep", R"("ms":150)");
  });
  std::thread c2([&] {
    ServeClient c("127.0.0.1", port);
    r2 = c.call_op("sleep", R"("ms":150)");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // ^C mid-burst: the accept loop notices within its 50 ms tick, drains,
  // and join() returns with every admitted request answered.
  ASSERT_EQ(std::raise(SIGINT), 0);
  server.join();
  EXPECT_TRUE(SigintGuard::interrupted());

  c1.join();
  c2.join();
  ASSERT_TRUE(r1.ok()) << r1.error;
  ASSERT_TRUE(r2.ok()) << r2.error;

  const serve::ServerStats s = server.stats();
  EXPECT_EQ(s.connections, 2u);
  EXPECT_EQ(s.ok, 2u);
}

// ---------------------------------------------------------------------------
// Resilience layer: the health op, brownout shedding, the write deadline
// for stalled peers, and FleetClient recovery under armed drills.

TEST_F(ServeTest, HealthReportsOkOnAnIdleServer) {
  serve::ServerOptions o = options(/*threads=*/2, /*queue_capacity=*/8);
  serve::Server server(o);
  server.start();
  ServeClient client("127.0.0.1", server.port());

  const serve::Response r = client.call_op("health", R"("id":"h-1")");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.id, "h-1");
  const json::Value doc = json::Value::parse(r.payload);
  EXPECT_EQ(doc.at("status").as_string(), "ok");
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_FALSE(doc.at("draining").as_bool());
  EXPECT_FALSE(doc.at("overloaded").as_bool());
  EXPECT_FALSE(doc.at("brownout").as_bool());
  EXPECT_EQ(static_cast<int>(doc.at("queue_depth").as_number()), 0);
  EXPECT_EQ(static_cast<int>(doc.at("queue_capacity").as_number()), 8);
  EXPECT_GE(doc.at("uptime_s").as_number(), 0.0);

  client.close();
  shut_down(server);
}

TEST_F(ServeTest, HealthBypassesAdmissionAndReportsPressure) {
  // One worker, admission cap one: a pinned worker saturates the queue,
  // and health must still answer inline — reporting the saturation.
  serve::Server server(options(/*threads=*/1, /*queue_capacity=*/1));
  server.start();

  std::thread pin([&] {
    ServeClient a("127.0.0.1", server.port());
    (void)a.call_op("sleep", R"("ms":300)");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  ServeClient b("127.0.0.1", server.port());
  const serve::Response r = b.call_op("health");
  ASSERT_TRUE(r.ok()) << r.error;
  const json::Value doc = json::Value::parse(r.payload);
  EXPECT_EQ(doc.at("status").as_string(), "overloaded");
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("overloaded").as_bool());
  EXPECT_TRUE(doc.at("brownout").as_bool());  // watermark <= capacity
  EXPECT_EQ(static_cast<int>(doc.at("queue_depth").as_number()), 1);

  pin.join();
  b.close();
  shut_down(server);
}

TEST_F(ServeTest, HealthOutsideAServerIsAUsageError) {
  serve::Request request;
  request.op = "health";
  EXPECT_THROW((void)serve::execute_op(request, serve::OpContext{}),
               UsageError);
}

TEST_F(ServeTest, BrownoutShedsExpensiveOpsWhileCheapOnesServe) {
  serve::ServerOptions o = options(/*threads=*/1, /*queue_capacity=*/4);
  o.brownout_watermark = 1;
  serve::Server server(o);
  server.start();

  std::thread pin([&] {
    ServeClient a("127.0.0.1", server.port());
    (void)a.call_op("sleep", R"("ms":300)");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // Queue depth 1 >= watermark 1: expensive ops shed with the typed
  // retryable rejection...
  ServeClient b("127.0.0.1", server.port());
  const serve::Response search =
      b.call_op("search", R"("model":"gpt3-2.7b","max":4)");
  EXPECT_TRUE(search.overloaded());
  EXPECT_EQ(search.code, kExitUnavailable);
  EXPECT_GE(search.retry_after_ms, 1);
  EXPECT_NE(search.error.find("brownout"), std::string::npos) << search.error;

  const serve::Response many = b.call_op(
      "advise_many", R"("items":[{"model":"gpt3-2.7b"}])");
  EXPECT_TRUE(many.overloaded());

  // ...while cheap ops are admitted (queued behind the pin) and complete.
  const serve::Response cheap =
      b.call_op("estimate", R"("m":256,"n":256,"k":256)");
  ASSERT_TRUE(cheap.ok()) << cheap.error;
  EXPECT_EQ(cheap.payload, expected_estimate(256, 256, 256));

  pin.join();

  // Pressure gone: the same expensive op now serves. The queue counter
  // decrements just after the pinned response hits the wire, so poll
  // briefly rather than race it.
  serve::Response after;
  for (int i = 0; i < 100; ++i) {
    after = b.call_op("search", R"("model":"gpt3-2.7b")");
    if (after.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(after.ok()) << after.error;

  b.close();
  const serve::ServerStats s = server.stats();
  EXPECT_GE(s.brownout, 2u);
  shut_down(server);
}

TEST_F(ServeTest, SlowClientIsClosedAtTheWriteDeadline) {
  // Tiny server-side socket buffer + a peer that never reads + a bounded
  // write deadline: the response cannot be flushed, the server closes the
  // connection and counts it, and the server stays healthy throughout.
  serve::ServerOptions o = options(/*threads=*/2);
  o.write_timeout_ms = 100;
  o.sndbuf_bytes = 4096;
  serve::Server server(o);
  server.start();

  // Raw client with a tiny receive window that sends a request producing
  // a payload far larger than both buffers, then stalls.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::string request = R"({"op":"advise_many","items":[)";
  for (int i = 0; i < 64; ++i) {
    if (i > 0) request += ',';
    request += R"({"model":"gpt3-2.7b"})";
  }
  request += "]}\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  // The worker renders, fills both kernel buffers, hits the deadline, and
  // closes the connection.
  bool closed = false;
  for (int i = 0; i < 200 && !closed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    closed = server.stats().slow_client_closed >= 1;
  }
  EXPECT_TRUE(closed) << "server never closed the stalled client";
  ::close(fd);

  // The server survived and serves the next (well-behaved) client.
  ServeClient ok_client("127.0.0.1", server.port());
  const serve::Response r = ok_client.call_op("ping");
  ASSERT_TRUE(r.ok()) << r.error;
  ok_client.close();
  shut_down(server);
  EXPECT_EQ(server.stats().slow_client_closed, 1u);
}

TEST_F(ServeTest, IdleConnectionsAreReapedAndActiveOnesAreNot) {
  serve::ServerOptions o = options(/*threads=*/2);
  o.idle_timeout_ms = 150;
  serve::Server server(o);
  server.start();

  // An idle connection is closed by the reaper: the client observes EOF.
  ServeClient idle("127.0.0.1", server.port());
  ASSERT_TRUE(idle.call_op("ping").ok());
  EXPECT_THROW(
      {
        for (int i = 0; i < 40; ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          (void)idle.call_op("ping");  // eventually hits the closed socket
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
      },
      IoError);
  EXPECT_GE(server.stats().idle_closed, 1u);

  // A connection with a request in flight is never idle-reaped, even when
  // the request takes far longer than the idle budget.
  ServeClient active("127.0.0.1", server.port());
  const serve::Response slept = active.call_op("sleep", R"("ms":600)");
  ASSERT_TRUE(slept.ok()) << slept.error;
  EXPECT_EQ(slept.payload, "slept 600 ms\n");

  active.close();
  shut_down(server);
}

TEST_F(ServeTest, FleetClientCompletesAMixedWorkloadUnderArmedDrills) {
  // Two replicas, every network drill armed probabilistically, plus
  // transient dispatch faults: a FleetClient must complete the whole mix
  // with zero user-visible errors and byte-identical payloads. The drills
  // fire on both sides of the socket (client and servers share the
  // in-process failpoint registry).
  serve::Server a(options(/*threads=*/2));
  a.start();
  serve::Server b(options(/*threads=*/2));
  b.start();

  const std::string want_estimate = expected_estimate(512, 512, 512);
  const std::string want_advise = expected_advise("gpt3-2.7b");

  fail::configure(
      "serve.net.read_stall=prob:0.3:11,"
      "serve.net.write_drop=prob:0.15:12,"
      "serve.net.conn_close=prob:0.2:13,"
      "serve.dispatch=prob:0.25:7");

  FleetOptions fo;
  fo.endpoints = {{"127.0.0.1", a.port()}, {"127.0.0.1", b.port()}};
  fo.backoff_base_ms = 1;
  fo.backoff_max_ms = 20;
  fo.breaker.open_ms = 50;  // short cooldowns keep the suite fast
  fo.seed = 7;
  serve::FleetClient fleet(std::move(fo));

  for (int i = 0; i < 30; ++i) {
    if (i % 3 == 0) {
      const serve::Response r =
          fleet.call_op("advise", R"("model":"gpt3-2.7b")");
      ASSERT_TRUE(r.ok()) << i << ": " << r.error << "\n"
                          << fleet.attempt_log();
      EXPECT_EQ(r.payload, want_advise) << "advise payload diverged at " << i;
    } else {
      const serve::Response r =
          fleet.call_op("estimate", R"("m":512,"n":512,"k":512)");
      ASSERT_TRUE(r.ok()) << i << ": " << r.error << "\n"
                          << fleet.attempt_log();
      EXPECT_EQ(r.payload, want_estimate)
          << "estimate payload diverged at " << i;
    }
  }
  // The drills actually fired — this exercised the retry machinery, not a
  // quiet fast path.
  EXPECT_GT(fleet.stats().attempts, 30u) << fleet.attempt_log();

  fail::clear();
  shut_down(a);
  shut_down(b);
}

}  // namespace
}  // namespace codesign
