// Tests for kernels/ops.hpp — the non-GEMM transformer operators.
#include "kernels/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace codesign::kern {
namespace {

TEST(Softmax, RowsSumToOne) {
  Rng rng(1);
  const Tensor x = Tensor::randn({4, 9}, rng, 2.0f);
  const Tensor y = softmax_lastdim(x);
  for (std::int64_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 9; ++c) {
      EXPECT_GT(y.at(r, c), 0.0f);
      sum += y.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeInputs) {
  const Tensor x = Tensor::from_values({1000.0f, 1001.0f, 1002.0f});
  const Tensor y = softmax_lastdim(x.reshape({1, 3}));
  EXPECT_TRUE(y.all_finite());
  EXPECT_GT(y.at(0, 2), y.at(0, 1));
}

TEST(Softmax, Rank3Supported) {
  Rng rng(2);
  const Tensor x = Tensor::randn({2, 3, 5}, rng);
  const Tensor y = softmax_lastdim(x);
  double sum = 0.0;
  for (std::int64_t c = 0; c < 5; ++c) sum += y.at(1, 2, c);
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(CausalSoftmax, MasksFuture) {
  Rng rng(3);
  const Tensor scores = Tensor::randn({2, 4, 4}, rng);
  const Tensor p = causal_softmax(scores);
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t q = 0; q < 4; ++q) {
      double sum = 0.0;
      for (std::int64_t k = 0; k < 4; ++k) {
        if (k > q) {
          EXPECT_EQ(p.at(b, q, k), 0.0f) << "future position unmasked";
        }
        sum += p.at(b, q, k);
      }
      EXPECT_NEAR(sum, 1.0, 1e-5);
    }
  }
  // First row attends only to itself.
  EXPECT_NEAR(p.at(0, 0, 0), 1.0f, 1e-6f);
}

TEST(CausalSoftmax, RequiresSquare) {
  EXPECT_THROW(causal_softmax(Tensor({2, 3, 4})), Error);
  EXPECT_THROW(causal_softmax(Tensor({3, 3})), Error);
}

TEST(LayerNorm, NormalizesMeanAndVariance) {
  Rng rng(4);
  const std::int64_t h = 64;
  const Tensor x = Tensor::randn({3, h}, rng, 5.0f);
  const Tensor gamma = Tensor::full({h}, 1.0f);
  const Tensor beta = Tensor::zeros({h});
  const Tensor y = layernorm_lastdim(x, gamma, beta);
  for (std::int64_t r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::int64_t c = 0; c < h; ++c) mean += y.at(r, c);
    mean /= h;
    for (std::int64_t c = 0; c < h; ++c) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= h;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNorm, GammaBetaApplied) {
  const Tensor x = Tensor::from_values({1.0f, 3.0f}).reshape({1, 2});
  const Tensor gamma = Tensor::from_values({2.0f, 2.0f});
  const Tensor beta = Tensor::from_values({5.0f, 5.0f});
  const Tensor y = layernorm_lastdim(x, gamma, beta);
  // Normalized values are -1 and 1 (up to eps); scaled: 3 and 7.
  EXPECT_NEAR(y.at(0, 0), 3.0f, 1e-2f);
  EXPECT_NEAR(y.at(0, 1), 7.0f, 1e-2f);
}

TEST(LayerNorm, ShapeErrors) {
  const Tensor x({2, 4});
  const Tensor bad = Tensor::zeros({3});
  const Tensor ok = Tensor::zeros({4});
  EXPECT_THROW(layernorm_lastdim(x, bad, ok), Error);
  EXPECT_THROW(layernorm_lastdim(x, ok, bad), Error);
}

TEST(Gelu, KnownValues) {
  const Tensor x = Tensor::from_values({0.0f, 100.0f, -100.0f, 1.0f});
  const Tensor y = gelu(x);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_NEAR(y.at(1), 100.0f, 1e-3f);   // large positive ≈ identity
  EXPECT_NEAR(y.at(2), 0.0f, 1e-3f);     // large negative ≈ 0
  EXPECT_NEAR(y.at(3), 0.84134f, 1e-4f); // 1 * Φ(1)
}

TEST(Silu, KnownValues) {
  const Tensor x = Tensor::from_values({0.0f, 100.0f, 1.0f});
  const Tensor y = silu(x);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_NEAR(y.at(1), 100.0f, 1e-3f);
  EXPECT_NEAR(y.at(2), 1.0f / (1.0f + std::exp(-1.0f)), 1e-5f);
}

TEST(Swiglu, CombinesGateAndUp) {
  const Tensor gate = Tensor::from_values({1.0f, -1.0f});
  const Tensor up = Tensor::from_values({2.0f, 3.0f});
  const Tensor y = swiglu_combine(gate, up);
  EXPECT_NEAR(y.at(0), silu(gate).at(0) * 2.0f, 1e-6f);
  EXPECT_NEAR(y.at(1), silu(gate).at(1) * 3.0f, 1e-6f);
  EXPECT_THROW(swiglu_combine(gate, Tensor({3})), Error);
}

TEST(AddScale, Elementwise) {
  const Tensor a = Tensor::from_values({1, 2});
  const Tensor b = Tensor::from_values({10, 20});
  const Tensor s = add(a, b);
  EXPECT_EQ(s.at(0), 11.0f);
  EXPECT_EQ(s.at(1), 22.0f);
  const Tensor sc = scale(a, 0.5f);
  EXPECT_EQ(sc.at(0), 0.5f);
  EXPECT_THROW(add(a, Tensor({3})), Error);
}

TEST(Embedding, LooksUpRows) {
  Tensor table({5, 3});
  for (std::int64_t i = 0; i < 5; ++i)
    for (std::int64_t j = 0; j < 3; ++j)
      table.at(i, j) = static_cast<float>(10 * i + j);
  const Tensor out = embedding_lookup(table, {4, 0, 4});
  ASSERT_EQ(out.dim(0), 3);
  EXPECT_EQ(out.at(0, 2), 42.0f);
  EXPECT_EQ(out.at(1, 0), 0.0f);
  EXPECT_EQ(out.at(2, 1), 41.0f);
}

TEST(Embedding, Errors) {
  Tensor table({5, 3});
  EXPECT_THROW(embedding_lookup(table, {5}), Error);   // out of range
  EXPECT_THROW(embedding_lookup(table, {-1}), Error);
  EXPECT_THROW(embedding_lookup(table, {}), Error);
}

TEST(Dropout, IdentityAtZero) {
  Rng rng(1);
  const Tensor x = Tensor::from_values({1, 2, 3});
  EXPECT_EQ(max_abs_diff(dropout(x, 0.0f, rng), x), 0.0f);
}

TEST(Dropout, PreservesExpectation) {
  Rng rng(2);
  const Tensor x = Tensor::full({100000}, 1.0f);
  const Tensor y = dropout(x, 0.3f, rng);
  // Mean stays ~1 (inverted dropout) and ~30% of entries are zero.
  EXPECT_NEAR(y.sum() / 100000.0f, 1.0f, 0.02f);
  int zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    if (y.at(i) == 0.0f) ++zeros;
    else EXPECT_NEAR(y.at(i), 1.0f / 0.7f, 1e-5f);
  }
  EXPECT_NEAR(zeros / 100000.0, 0.3, 0.01);
}

TEST(Dropout, DeterministicPerSeed) {
  const Tensor x = Tensor::full({64}, 2.0f);
  Rng r1(9), r2(9);
  EXPECT_EQ(max_abs_diff(dropout(x, 0.5f, r1), dropout(x, 0.5f, r2)), 0.0f);
}

TEST(Dropout, RejectsBadP) {
  Rng rng(3);
  const Tensor x = Tensor::from_values({1});
  EXPECT_THROW(dropout(x, 1.0f, rng), Error);
  EXPECT_THROW(dropout(x, -0.1f, rng), Error);
}

TEST(AddBias, BroadcastsOverRows) {
  Tensor x({2, 3});
  const Tensor bias = Tensor::from_values({10, 20, 30});
  const Tensor y = add_bias(x, bias);
  EXPECT_EQ(y.at(0, 0), 10.0f);
  EXPECT_EQ(y.at(1, 2), 30.0f);
  EXPECT_THROW(add_bias(x, Tensor::from_values({1, 2})), Error);
}

TEST(CrossEntropy, UniformLogitsGiveLnV) {
  const std::int64_t v = 50;
  const Tensor logits = Tensor::zeros({4, v});
  const double loss = cross_entropy_mean(logits, {0, 1, 2, 3});
  EXPECT_NEAR(loss, std::log(static_cast<double>(v)), 1e-6);
}

TEST(CrossEntropy, ConfidentCorrectNearZero) {
  Tensor logits({1, 3});
  logits.at(0, 1) = 50.0f;
  EXPECT_NEAR(cross_entropy_mean(logits, {1}), 0.0, 1e-6);
  EXPECT_GT(cross_entropy_mean(logits, {0}), 10.0);
}

TEST(CrossEntropy, Errors) {
  const Tensor logits({2, 3});
  EXPECT_THROW(cross_entropy_mean(logits, {0}), Error);       // count mismatch
  EXPECT_THROW(cross_entropy_mean(logits, {0, 3}), Error);    // target range
}

}  // namespace
}  // namespace codesign::kern
