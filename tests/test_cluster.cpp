// Tests for advisor/cluster.hpp — the §VII-A 6-GPU-node case study.
#include "advisor/cluster.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::advisor {
namespace {

using tfm::model_by_name;

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

TEST(TpFeasibility, Gpt3ShapeCannotUseT6) {
  // The paper's point #1: architectures common on 8-GPU nodes may not even
  // be possible on 6-GPU nodes. 2560 % 6 != 0 and 32 % 6 != 0.
  const auto f = tp_feasibility(model_by_name("gpt3-2.7b"), 6);
  EXPECT_FALSE(f.feasible);
  EXPECT_NE(f.reason.find("t=6"), std::string::npos);
}

TEST(TpFeasibility, Gpt3ShapeWorksAtPowersOfTwo) {
  const auto& c = model_by_name("gpt3-2.7b");
  for (std::int64_t t : {1, 2, 4, 8}) {
    const auto f = tp_feasibility(c, t);
    if (t == 1 || 50257 % t == 0) {
      EXPECT_TRUE(f.feasible) << t;
    } else {
      // The odd vocab blocks the vocab-parallel logit split.
      EXPECT_FALSE(f.feasible) << t;
      EXPECT_NE(f.reason.find("v="), std::string::npos);
    }
  }
  // With the padded vocab the power-of-two degrees all work.
  const auto padded = c.with_vocab(50304);
  for (std::int64_t t : {2, 4, 8}) {
    EXPECT_TRUE(tp_feasibility(padded, t).feasible) << t;
  }
}

TEST(TpFeasibility, SummitFriendlyShape) {
  // A Summit-era shape: h divisible by 6 and 64 (e.g. RedPajama-INCITE-3B
  // style h = 2560 does NOT work; h = 6144 does).
  const auto& neox = model_by_name("gpt-neox-20b");  // h = 6144, a = 64
  EXPECT_FALSE(tp_feasibility(neox, 6).feasible);  // 64 heads % 6 != 0
  // A 48-head variant of the same width is 6-friendly.
  const auto variant = neox.with_heads(48).with_vocab(50432 + 16);  // v % 6 == 0
  EXPECT_TRUE(tp_feasibility(variant, 6).feasible);
}

TEST(TpFeasibility, RejectsBadDegree) {
  EXPECT_THROW(tp_feasibility(model_by_name("gpt3-2.7b"), 0), Error);
}

TEST(AnalyzeTpOptions, FeasibleOptionsScored) {
  const auto cfg = model_by_name("gpt3-2.7b").with_vocab(50304);
  const auto opts = analyze_tp_options(cfg, sim(), {1, 2, 4, 6, 8});
  ASSERT_EQ(opts.size(), 5u);
  for (const TpOption& o : opts) {
    if (o.feasibility.feasible) {
      EXPECT_GT(o.layer_time, 0.0) << o.t;
      EXPECT_GT(o.layer_tflops, 0.0) << o.t;
      EXPECT_GT(o.hidden_per_tp_pow2, 0) << o.t;
    } else {
      EXPECT_EQ(o.t, 6);
      EXPECT_EQ(o.layer_time, 0.0);
    }
  }
}

TEST(AnalyzeTpOptions, PerGpuLayerTimeShrinksWithT) {
  // Per-GPU work drops with t (the paper still advises small t because of
  // the communication this model deliberately excludes).
  const auto cfg = model_by_name("gpt3-2.7b").with_vocab(50304);
  const auto opts = analyze_tp_options(cfg, sim(), {1, 2, 4, 8});
  for (std::size_t i = 1; i < opts.size(); ++i) {
    EXPECT_LT(opts[i].layer_time, opts[i - 1].layer_time);
  }
}

TEST(DeploymentMatrix, TrainOn6DeployOn8Trap) {
  // A shape chosen for a 6-GPU node: h = 6144 (divisible by 6·64 = 384),
  // a = 48, v divisible by 6. It deploys at t ∈ {2, 4, 6, 8}? The paper's
  // point #3: it may NOT deploy at 8 — 48 heads work (48 % 8 == 0) but
  // check h/t alignment degradation instead: 6144/6 = 1024 (pow2 1024) vs
  // 6144/8 = 768 (pow2 256): both fine. The structural trap hits when a
  // or v fails to divide.
  tfm::TransformerConfig c = model_by_name("gpt-neox-20b")
                                 .with_heads(42)  // 6 | 42 but 8 ∤ 42, 4 ∤ 42
                                 .with_vocab(50448);  // 6 | 50448
  // h = 6144 divisible by 42? 6144 / 42 is not integral → pick h that is.
  c = c.with_hidden(5376);  // 5376 = 42 * 128; 5376 % 6 == 0
  const auto cells = deployment_matrix(c, sim(), {2, 4, 6, 8});
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_TRUE(cells[0].option.feasibility.feasible);   // t=2
  EXPECT_FALSE(cells[1].option.feasibility.feasible);  // t=4: 42 % 4 != 0
  EXPECT_TRUE(cells[2].option.feasibility.feasible);   // t=6
  EXPECT_FALSE(cells[3].option.feasibility.feasible);  // t=8: 42 % 8 != 0
}

TEST(PortableHiddenSizes, DivisibleByAllTargets) {
  const auto cfg = model_by_name("gpt3-2.7b");
  const auto sizes = portable_hidden_sizes(cfg, {2, 4, 6, 8}, 4);
  ASSERT_EQ(sizes.size(), 4u);
  // lcm(64, 2, 4, 6, 8) = 192; h/t must stay 64-aligned for t up to 8:
  // the helper guarantees divisibility by lcm(64, t...) = 192... and every
  // returned size is near 2560.
  for (const std::int64_t h : sizes) {
    EXPECT_EQ(h % 192, 0) << h;
    EXPECT_NEAR(static_cast<double>(h), 2560.0, 600.0);
  }
  EXPECT_TRUE(std::is_sorted(sizes.begin(), sizes.end()));
}

TEST(PortableHiddenSizes, Validation) {
  const auto cfg = model_by_name("gpt3-2.7b");
  EXPECT_THROW(portable_hidden_sizes(cfg, {}, 4), Error);
  EXPECT_THROW(portable_hidden_sizes(cfg, {2, 4}, 0), Error);
  EXPECT_THROW(portable_hidden_sizes(cfg, {0}, 2), Error);
}

}  // namespace
}  // namespace codesign::advisor
