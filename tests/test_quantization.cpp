// Tests for gemmsim/quantization.hpp — tile and wave quantization math.
#include "gemmsim/quantization.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace codesign::gemm {
namespace {

const gpu::GpuSpec& a100() { return gpu::gpu_by_name("a100"); }

gpu::TileConfig tile_256x128() { return gpu::largest_tile(); }

TEST(TileQuantization, ExactFit) {
  const auto p = GemmProblem::gemm(256, 128, 64);
  const auto q = tile_quantization(p, tile_256x128());
  EXPECT_EQ(q.tiles_m, 1);
  EXPECT_EQ(q.tiles_n, 1);
  EXPECT_EQ(q.tiles_total, 1);
  EXPECT_EQ(q.padded_m, 256);
  EXPECT_EQ(q.padded_n, 128);
  EXPECT_EQ(q.padded_k, 64);
  EXPECT_DOUBLE_EQ(q.wasted_compute_fraction, 0.0);
}

TEST(TileQuantization, PartialTilePads) {
  const auto p = GemmProblem::gemm(257, 129, 65);
  const auto q = tile_quantization(p, tile_256x128());
  EXPECT_EQ(q.tiles_m, 2);
  EXPECT_EQ(q.tiles_n, 2);
  EXPECT_EQ(q.tiles_total, 4);
  EXPECT_EQ(q.padded_m, 512);
  EXPECT_EQ(q.padded_n, 256);
  EXPECT_EQ(q.padded_k, 96);  // round_up(65, 32)
  EXPECT_GT(q.wasted_compute_fraction, 0.5);
}

TEST(TileQuantization, BatchMultipliesTiles) {
  const auto p = GemmProblem::bmm(128, 2048, 2048, 64);
  const auto q = tile_quantization(p, tile_256x128());
  EXPECT_EQ(q.tiles_total, 128 * ceil_div<std::int64_t>(2048, 256) *
                               ceil_div<std::int64_t>(2048, 128));
}

TEST(TileQuantization, SmallMatrixOneTile) {
  const auto p = GemmProblem::gemm(8, 8, 8);
  const auto q = tile_quantization(p, tile_256x128());
  EXPECT_EQ(q.tiles_total, 1);
  EXPECT_GT(q.wasted_compute_fraction, 0.99);
}

TEST(WaveQuantization, PaperExample109Blocks) {
  // §III-B: 109 thread blocks on a 108-SM GPU → two waves, the second with
  // one block.
  gpu::TileConfig t = tile_256x128();
  ASSERT_EQ(t.blocks_per_sm, 1);
  const auto w = wave_quantization(109, t, a100());
  EXPECT_EQ(w.blocks_per_wave, 108);
  EXPECT_EQ(w.waves, 2);
  EXPECT_EQ(w.tail_blocks, 1);
  EXPECT_NEAR(w.efficiency, 109.0 / 216.0, 1e-12);
}

TEST(WaveQuantization, ExactWaveFullEfficiency) {
  const auto w = wave_quantization(216, tile_256x128(), a100());
  EXPECT_EQ(w.waves, 2);
  EXPECT_EQ(w.tail_blocks, 108);
  EXPECT_DOUBLE_EQ(w.efficiency, 1.0);
}

TEST(WaveQuantization, SingleBlock) {
  const auto w = wave_quantization(1, tile_256x128(), a100());
  EXPECT_EQ(w.waves, 1);
  EXPECT_EQ(w.tail_blocks, 1);
  EXPECT_NEAR(w.efficiency, 1.0 / 108.0, 1e-12);
}

TEST(WaveQuantization, OccupancyScalesWave) {
  gpu::TileConfig t = gpu::tile_by_name("128x128");
  ASSERT_EQ(t.blocks_per_sm, 2);
  const auto w = wave_quantization(216, t, a100());
  EXPECT_EQ(w.blocks_per_wave, 216);
  EXPECT_EQ(w.waves, 1);
}

TEST(WaveQuantization, Errors) {
  EXPECT_THROW(wave_quantization(0, tile_256x128(), a100()), Error);
}

// Property suite: wave count equals the ceil identity and efficiency is the
// tile fraction of the scheduled wave capacity, for a grid of tile counts.
class WaveProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(WaveProperty, CeilIdentityAndBounds) {
  const std::int64_t tiles = GetParam();
  const auto w = wave_quantization(tiles, tile_256x128(), a100());
  EXPECT_EQ(w.waves, ceil_div<std::int64_t>(tiles, w.blocks_per_wave));
  EXPECT_GT(w.efficiency, 0.0);
  EXPECT_LE(w.efficiency, 1.0);
  EXPECT_GE(w.tail_blocks, 1);
  EXPECT_LE(w.tail_blocks, w.blocks_per_wave);
  // Efficiency is 1 exactly when the tile count is a wave multiple.
  EXPECT_EQ(w.efficiency == 1.0, tiles % w.blocks_per_wave == 0);
}

INSTANTIATE_TEST_SUITE_P(Grid, WaveProperty,
                         ::testing::Values(1, 2, 107, 108, 109, 215, 216, 217,
                                           1000, 1080, 1081, 16384));

TEST(WaveQuantizationFree, PaperFormula) {
  // The §VI-B condition with t = 256x128 on 108 SMs: X=1728, Y=2048 gives
  // ceil(1728/256)*ceil(2048/128) = 7*16 = 112 ≢ 0, and the transposed
  // orientation ceil(1728/128)*ceil(2048/256) = 14*8 = 112 ≢ 0 → not free.
  EXPECT_FALSE(wave_quantization_free(1728, 2048, tile_256x128(), a100()));
  // X=3456, Y=2048: 14*16 = 224 ≢ 0 but 27*8 = 216 ≡ 0 (mod 108) → free.
  EXPECT_TRUE(wave_quantization_free(3456, 2048, tile_256x128(), a100()));
}

TEST(WaveQuantizationFree, MatchesDirectComputation) {
  const gpu::TileConfig t = tile_256x128();
  for (std::int64_t x : {128, 1024, 2048, 2560, 3456, 4096}) {
    for (std::int64_t y : {128, 1024, 2048, 2560, 3456, 4096}) {
      const bool expect =
          (ceil_div(x, t.tm) * ceil_div(y, t.tn)) % a100().sm_count == 0 ||
          (ceil_div(x, t.tn) * ceil_div(y, t.tm)) % a100().sm_count == 0;
      EXPECT_EQ(wave_quantization_free(x, y, t, a100()), expect)
          << x << "x" << y;
    }
  }
}

TEST(GemmProblem, FlopsAndBytes) {
  const auto p = GemmProblem::gemm(100, 200, 300);
  EXPECT_DOUBLE_EQ(p.flops(), 2.0 * 100 * 200 * 300);
  // fp16: (A + B + C) * 2 bytes.
  EXPECT_DOUBLE_EQ(p.min_bytes(),
                   (100.0 * 300 + 300.0 * 200 + 100.0 * 200) * 2.0);
  EXPECT_DOUBLE_EQ(p.arithmetic_intensity(), p.flops() / p.min_bytes());
}

TEST(GemmProblem, AccumulateDoublesOutputTraffic) {
  auto p = GemmProblem::gemm(64, 64, 64);
  const double base = p.min_bytes();
  p.accumulate_into_c = true;
  EXPECT_DOUBLE_EQ(p.min_bytes(), base + 64.0 * 64.0 * 2.0);
}

TEST(GemmProblem, BatchScalesEverything) {
  const auto p1 = GemmProblem::gemm(64, 64, 64);
  const auto p8 = GemmProblem::bmm(8, 64, 64, 64);
  EXPECT_DOUBLE_EQ(p8.flops(), 8.0 * p1.flops());
  EXPECT_DOUBLE_EQ(p8.min_bytes(), 8.0 * p1.min_bytes());
  // Intensity is batch-invariant.
  EXPECT_DOUBLE_EQ(p8.arithmetic_intensity(), p1.arithmetic_intensity());
}

TEST(GemmProblem, Folded3dEquals2d) {
  // The Fig-14 folding rule: (2048, 4, k) x (k, n) == (8192, k) x (k, n).
  const auto folded = GemmProblem::folded_3d(2048, 4, 512, 1536);
  const auto flat = GemmProblem::gemm(8192, 1536, 512);
  EXPECT_EQ(folded, flat);
  // And ordering of the folded dims does not matter.
  EXPECT_EQ(GemmProblem::folded_3d(4, 2048, 512, 1536), flat);
}

TEST(GemmProblem, ValidationErrors) {
  GemmProblem p;
  p.m = 0;
  p.n = 4;
  p.k = 4;
  EXPECT_THROW(p.validate(), ShapeError);
  EXPECT_THROW(GemmProblem::gemm(-1, 2, 3), ShapeError);
  EXPECT_THROW(GemmProblem::bmm(0, 2, 2, 2), ShapeError);
}

TEST(GemmProblem, ToString) {
  EXPECT_EQ(GemmProblem::gemm(8192, 7680, 2560).to_string(),
            "GEMM(8192 x 7680 x 2560, fp16)");
  EXPECT_NE(GemmProblem::bmm(128, 2048, 2048, 64).to_string().find("BMM(b=128"),
            std::string::npos);
}

}  // namespace
}  // namespace codesign::gemm
