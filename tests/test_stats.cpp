// Tests for common/stats.hpp — including the power-law fit the Fig-13
// reproduction uses to define the Pythia latency trend.
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace codesign {
namespace {

TEST(Mean, Basic) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({7}), 7.0);
  EXPECT_THROW(mean({}), Error);
}

TEST(Variance, Basic) {
  EXPECT_DOUBLE_EQ(variance({2, 2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(variance({1, 3}), 1.0);  // population variance
  EXPECT_DOUBLE_EQ(stddev({1, 3}), 1.0);
}

TEST(Geomean, Basic) {
  EXPECT_NEAR(geomean({1, 100}), 10.0, 1e-12);
  EXPECT_NEAR(geomean({2, 2, 2}), 2.0, 1e-12);
  EXPECT_THROW(geomean({1.0, -1.0}), Error);
  EXPECT_THROW(geomean({0.0}), Error);
}

TEST(Median, Basic) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(median({5}), 5.0);
}

TEST(Percentile, Basic) {
  std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
  EXPECT_THROW(percentile(xs, 101), Error);
  EXPECT_THROW(percentile({}, 50), Error);
}

TEST(MedianAbsDeviation, Basic) {
  // median = 3, |x - 3| = {2,1,0,1,2} -> MAD = 1.
  EXPECT_DOUBLE_EQ(median_abs_deviation({1, 2, 3, 4, 5}), 1.0);
  EXPECT_DOUBLE_EQ(median_abs_deviation({7, 7, 7}), 0.0);
  EXPECT_DOUBLE_EQ(median_abs_deviation({5}), 0.0);
  // Robust to a wild outlier where stddev is not.
  EXPECT_DOUBLE_EQ(median_abs_deviation({1, 2, 3, 4, 1000}), 1.0);
  EXPECT_THROW(median_abs_deviation({}), Error);
}

TEST(MinMax, Basic) {
  EXPECT_DOUBLE_EQ(min_of({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(max_of({3, 1, 2}), 3.0);
}

TEST(LinearFit, ExactLine) {
  const LinearFit f = linear_fit({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
  EXPECT_NEAR(f.predict(10), 21.0, 1e-12);
}

TEST(LinearFit, NoisyLineHasR2BelowOne) {
  const LinearFit f = linear_fit({1, 2, 3, 4}, {3.1, 4.9, 7.2, 8.8});
  EXPECT_GT(f.r2, 0.98);
  EXPECT_LT(f.r2, 1.0);
}

TEST(LinearFit, Errors) {
  EXPECT_THROW(linear_fit({1}, {2}), Error);
  EXPECT_THROW(linear_fit({1, 2}, {1}), Error);
  EXPECT_THROW(linear_fit({2, 2}, {1, 5}), Error);  // zero x-variance
}

TEST(PowerLawFit, ExactPowerLaw) {
  // y = 3 x^0.7
  std::vector<double> x = {1, 2, 4, 8, 16};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 * std::pow(xi, 0.7));
  const PowerLawFit f = power_law_fit(x, y);
  EXPECT_NEAR(f.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(f.exponent, 0.7, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
  EXPECT_NEAR(f.predict(32), 3.0 * std::pow(32.0, 0.7), 1e-6);
}

TEST(PowerLawFit, RequiresPositive) {
  EXPECT_THROW(power_law_fit({1, -2}, {1, 2}), Error);
  EXPECT_THROW(power_law_fit({1, 2}, {0, 2}), Error);
}

TEST(Pearson, Correlations) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_THROW(pearson({1, 1}, {2, 3}), Error);  // zero variance
}

}  // namespace
}  // namespace codesign
