// Property suite for the GEMM kernel model: invariants that must hold over
// broad, randomized shape grids, not just the hand-picked cases of
// test_kernel_model.cpp. Failures here flag modelling bugs that individual
// examples can miss (e.g. a ceil in the wrong place breaking monotonicity
// or superadditivity in the batch dimension).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gemmsim/kernel_model.hpp"
#include "gemmsim/sm_scheduler.hpp"
#include "gpuarch/tensor_core.hpp"

namespace codesign::gemm {
namespace {

const gpu::GpuSpec& gpu_for(const std::string& id) {
  return gpu::gpu_by_name(id);
}

/// Deterministic random problem generator over a realistic shape range.
GemmProblem random_problem(Rng& rng) {
  GemmProblem p;
  p.m = rng.uniform_int(1, 1 << 14);
  p.n = rng.uniform_int(1, 1 << 14);
  p.k = rng.uniform_int(1, 1 << 13);
  p.batch = rng.uniform_int(1, 4) == 4 ? rng.uniform_int(2, 256) : 1;
  return p;
}

class RandomProblems : public ::testing::TestWithParam<const char*> {};

TEST_P(RandomProblems, ThroughputBoundedByPeakEverywhere) {
  const gpu::GpuSpec& g = gpu_for(GetParam());
  Rng rng(2024);
  for (int i = 0; i < 200; ++i) {
    const GemmProblem p = random_problem(rng);
    const KernelEstimate est = select_kernel(p, g);
    EXPECT_LE(est.flops_per_second(), g.tensor_flops_fp16 * (1.0 + 1e-12))
        << p.to_string();
    EXPECT_GT(est.time, 0.0) << p.to_string();
    EXPECT_GE(est.time, g.kernel_launch_overhead) << p.to_string();
  }
}

TEST_P(RandomProblems, SelectionNeverWorseThanAnyTile) {
  const gpu::GpuSpec& g = gpu_for(GetParam());
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    const GemmProblem p = random_problem(rng);
    const double best = select_kernel(p, g).time;
    for (const auto& est : estimate_all_tiles(p, g)) {
      EXPECT_LE(best, est.time * (1.0 + 1e-12))
          << p.to_string() << " tile " << est.tile.name();
    }
  }
}

TEST_P(RandomProblems, TimeMonotoneWithinAlignmentClass) {
  // Growing a dimension can make a kernel FASTER when the new size is
  // better aligned (the vocab-padding effect — deliberately modelled).
  // Within one alignment class, though, more work must cost more time:
  // multiplying m by an odd factor preserves its power-of-two granule.
  const gpu::GpuSpec& g = gpu_for(GetParam());
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    GemmProblem p = random_problem(rng);
    const double t1 = select_kernel(p, g).time;
    GemmProblem bigger = p;
    bigger.m *= 3;  // same largest power of two dividing m
    const double t2 = select_kernel(bigger, g).time;
    EXPECT_GE(t2, t1 * (1.0 - 1e-12)) << p.to_string();
  }
}

TEST_P(RandomProblems, DoublingADimensionNeverHurtsThroughput) {
  // Doubling m doubles the math and can only improve m's alignment (its
  // power-of-two granule doubles), so every efficiency factor is >= the
  // original's and time at most doubles: throughput per useful FLOP never
  // decreases. (Time itself CAN drop across the tensor-core eligibility
  // boundary — a real >2x cliff — so it is not the invariant.)
  const gpu::GpuSpec& g = gpu_for(GetParam());
  Rng rng(23);
  for (int i = 0; i < 60; ++i) {
    GemmProblem p = random_problem(rng);
    const KernelEstimate e1 = select_kernel(p, g);
    GemmProblem doubled = p;
    doubled.m *= 2;
    const KernelEstimate e2 = select_kernel(doubled, g);
    EXPECT_GE(e2.tflops(), e1.tflops() * (1.0 - 1e-9)) << p.to_string();
    // ... and the body at most doubles.
    EXPECT_LE(e2.time - e2.launch_overhead,
              2.0 * (e1.time - e1.launch_overhead) * (1.0 + 1e-9))
        << p.to_string();
  }
}

TEST_P(RandomProblems, BatchSubadditive) {
  // Doubling the batch at most doubles the kernel body: waves are
  // subadditive (ceil(2x) <= 2 ceil(x)) and traffic is linear.
  const gpu::GpuSpec& g = gpu_for(GetParam());
  Rng rng(13);
  for (int i = 0; i < 60; ++i) {
    GemmProblem p = random_problem(rng);
    p.batch = rng.uniform_int(1, 64);
    GemmProblem doubled = p;
    doubled.batch *= 2;
    const KernelEstimate e1 = select_kernel(p, g);
    const KernelEstimate e2 = select_kernel(doubled, g);
    const double body1 = e1.time - e1.launch_overhead;
    const double body2 = e2.time - e2.launch_overhead;
    EXPECT_LE(body2, 2.0 * body1 * (1.0 + 1e-9)) << p.to_string();
    // ... and is at least as long as one batch's body.
    EXPECT_GE(body2, body1 * (1.0 - 1e-12)) << p.to_string();
  }
}

TEST_P(RandomProblems, DesAlwaysMatchesClosedForm) {
  const gpu::GpuSpec& g = gpu_for(GetParam());
  Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    const GemmProblem p = random_problem(rng);
    const KernelEstimate est = select_kernel(p, g);
    const DesResult des = simulate_kernel(p, est.tile, g);
    const double body = est.time - est.launch_overhead;
    EXPECT_NEAR(des.makespan, body, body * 1e-9) << p.to_string();
  }
}

TEST_P(RandomProblems, AlignmentPaddingNeverHelps) {
  // Rounding a dimension UP to the full tensor-core granule never slows
  // the kernel down per unit of useful work... more precisely: the padded
  // problem's *time per padded flop* is <= the original's time per padded
  // flop (the original already pays for the padding via quantization and
  // misalignment). Check via: time(padded) <= time(original) * 1.35 and
  // throughput(padded) >= throughput(original).
  const gpu::GpuSpec& g = gpu_for(GetParam());
  const std::int64_t granule =
      g.tc_full_alignment_bytes / 2;  // fp16 elements
  Rng rng(19);
  for (int i = 0; i < 60; ++i) {
    GemmProblem p = random_problem(rng);
    if (p.n % granule == 0) p.n += 3;  // ensure misalignment
    GemmProblem padded = p;
    padded.n = ((p.n + granule - 1) / granule) * granule;
    const double tf_orig = select_kernel(p, g).tflops();
    const double tf_pad = select_kernel(padded, g).tflops();
    EXPECT_GE(tf_pad, tf_orig * (1.0 - 1e-9)) << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(AllGpus, RandomProblems,
                         ::testing::Values("a100", "v100", "h100", "mi250x"));

TEST(KernelProperties, EfficiencyIneqExactOnWaveMultiples) {
  // On exact wave multiples the scheduled flops equal the padded flops.
  const gpu::GpuSpec& g = gpu_for("a100");
  const auto& tile = gpu::largest_tile();
  // 108 tiles: m = 108*256, n = 128 (one column of tiles).
  const GemmProblem p = GemmProblem::gemm(108 * 256, 128, 4096);
  const KernelEstimate est = estimate_with_tile(p, tile, g);
  EXPECT_DOUBLE_EQ(est.wave_q.efficiency, 1.0);
  EXPECT_DOUBLE_EQ(est.tile_q.wasted_compute_fraction, 0.0);
}

TEST(KernelProperties, DtypeConsistency) {
  // bf16 behaves identically to fp16 on Ampere (same rate, same size).
  const gpu::GpuSpec& g = gpu_for("a100");
  const auto f16 =
      select_kernel(GemmProblem::gemm(4096, 4096, 4096, gpu::DType::kFP16), g);
  const auto b16 =
      select_kernel(GemmProblem::gemm(4096, 4096, 4096, gpu::DType::kBF16), g);
  EXPECT_DOUBLE_EQ(f16.time, b16.time);
}

}  // namespace
}  // namespace codesign::gemm
