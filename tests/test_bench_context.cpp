// Tests for bench/bench_common.hpp — the shared harness every figure
// binary is built on (flag parsing, unknown-flag rejection, banner/
// section/table emission, exit-code taxonomy).
#include "bench_common.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace codesign::bench {
namespace {

BenchContext make(std::initializer_list<const char*> flags,
                  const BenchSpec& spec = {}) {
  std::vector<const char*> argv = {"bench"};
  argv.insert(argv.end(), flags.begin(), flags.end());
  return BenchContext::from_args(static_cast<int>(argv.size()), argv.data(),
                                 spec);
}

TEST(BenchContext, Defaults) {
  const BenchContext ctx = make({});
  EXPECT_EQ(ctx.gpu().id, "a100-40gb");
  EXPECT_EQ(ctx.sim().policy(), gemm::TilePolicy::kAuto);
  EXPECT_EQ(ctx.format(), TableFormat::kAscii);
}

TEST(BenchContext, GpuFlag) {
  EXPECT_EQ(make({"--gpu=v100"}).gpu().id, "v100-16gb");
  EXPECT_EQ(make({"--gpu=h100"}).gpu().id, "h100-sxm");
  EXPECT_THROW(make({"--gpu=tpu"}), LookupError);
}

TEST(BenchContext, SpecDefaultGpu) {
  BenchSpec spec;
  spec.default_gpu = "v100";
  EXPECT_EQ(make({}, spec).gpu().id, "v100-16gb");
  EXPECT_EQ(make({"--gpu=h100"}, spec).gpu().id, "h100-sxm");
}

TEST(BenchContext, PolicyFlag) {
  EXPECT_EQ(make({"--policy=fixed"}).sim().policy(),
            gemm::TilePolicy::kFixedLargest);
  EXPECT_EQ(make({"--policy=auto"}).sim().policy(), gemm::TilePolicy::kAuto);
  EXPECT_THROW(make({"--policy=greedy"}), Error);
}

TEST(BenchContext, FormatFlag) {
  EXPECT_EQ(make({"--format=csv"}).format(), TableFormat::kCsv);
  EXPECT_EQ(make({"--format=markdown"}).format(), TableFormat::kMarkdown);
  EXPECT_EQ(make({"--format=md"}).format(), TableFormat::kMarkdown);
  EXPECT_THROW(make({"--format=xml"}), Error);
}

TEST(BenchContext, DeclaredFlagsReachableViaArgs) {
  BenchSpec spec;
  spec.flags = {"heads", "b"};
  const BenchContext ctx = make({"--heads=8,16", "--b=2"}, spec);
  const auto heads = ctx.args().get_int_list("heads", {});
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(ctx.args().get_int("b", 0), 2);
}

TEST(BenchContext, UndeclaredFlagIsUsageError) {
  // Flags the spec does not declare are rejected, naming every offender
  // and carrying the usage text.
  EXPECT_THROW(make({"--heads=8"}), UsageError);
  try {
    make({"--zzz=1", "--aaa=2"});
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--aaa"), std::string::npos);
    EXPECT_NE(what.find("--zzz"), std::string::npos);
    EXPECT_NE(what.find("usage:"), std::string::npos);
  }
}

TEST(BenchContext, HelpIsUsageError) {
  EXPECT_THROW(make({"--help"}), UsageError);
}

TEST(BenchContext, BannerAndEmit) {
  // Capture stdout to verify banner/section/table routing.
  const BenchContext ctx = make({"--format=csv"});
  ::testing::internal::CaptureStdout();
  ctx.banner("Figure X", "smoke");
  ctx.section("series one");
  TableWriter t({"a"});
  t.new_row().cell(std::int64_t{1});
  ctx.emit(t);
  const std::string out = ::testing::internal::GetCapturedStdout();
  // CSV mode prefixes narrative lines with '#'.
  EXPECT_NE(out.find("# === Figure X"), std::string::npos);
  EXPECT_NE(out.find("# --- series one"), std::string::npos);
  EXPECT_NE(out.find("a\n1\n"), std::string::npos);
}

TEST(RunBench, CleanErrorPath) {
  // Errors are caught, reported, and mapped through the exit taxonomy:
  // unknown GPU is a lookup failure, not a generic error.
  const char* argv[] = {"bench", "--gpu=bogus"};
  const int rc = run_bench(2, argv, [](BenchContext&) { return 0; });
  EXPECT_EQ(rc, kExitLookup);
}

TEST(RunBench, UnknownFlagExitsUsage) {
  const char* argv[] = {"bench", "--not-a-flag=1"};
  EXPECT_EQ(run_bench(2, argv, [](BenchContext&) { return 0; }), kExitUsage);
}

TEST(RunBench, BodyReturnCodePropagates) {
  const char* argv[] = {"bench"};
  EXPECT_EQ(run_bench(1, argv, [](BenchContext&) { return 0; }), 0);
  EXPECT_EQ(run_bench(1, argv, [](BenchContext&) { return 7; }), 7);
}

}  // namespace
}  // namespace codesign::bench
