// Tests for transformer/inference.hpp — the §VII-C / Fig-13 model.
#include "transformer/inference.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"

namespace codesign::tfm {
namespace {

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

TEST(Inference, EstimateFieldsConsistent) {
  const auto e = estimate_inference(model_by_name("pythia-410m"), sim());
  EXPECT_GT(e.prefill_time, 0.0);
  EXPECT_GT(e.per_token_time, 0.0);
  EXPECT_NEAR(e.decode_time, e.per_token_time * 128, 1e-12);
  EXPECT_NEAR(e.total_time, e.prefill_time + e.decode_time, 1e-12);
  EXPECT_NEAR(e.tokens_per_second * e.per_token_time, 1.0, 1e-9);
}

TEST(Inference, WeightStreamingMatchesParamCount) {
  const TransformerConfig c = model_by_name("pythia-1b");
  const auto e = estimate_inference(c, sim());
  EXPECT_DOUBLE_EQ(e.weight_bytes,
                   2.0 * static_cast<double>(exact_param_count(c)));
}

TEST(Inference, DeeperModelsPayMoreLaunchOverhead) {
  // Pythia-410M has 24 layers to Pythia-1B's 16: more kernel launches per
  // decode step despite fewer parameters.
  EXPECT_GT(decode_launches_per_step(model_by_name("pythia-410m")),
            decode_launches_per_step(model_by_name("pythia-1b")));
}

TEST(Inference, LaunchCountVariants) {
  TransformerConfig c = model_by_name("gpt3-2.7b");
  const double base = decode_launches_per_step(c);
  TransformerConfig flash = c;
  flash.attention = AttentionImpl::kFlash;
  EXPECT_LT(decode_launches_per_step(flash), base);
  TransformerConfig par = c;
  par.parallel_layers = true;
  EXPECT_LT(decode_launches_per_step(par), base);
  TransformerConfig swiglu = c;
  swiglu.activation = Activation::kSwiGlu;
  swiglu.mlp_intermediate = 6912;
  EXPECT_GT(decode_launches_per_step(swiglu), base);
}

TEST(Inference, Fig13TrendStructure) {
  // Fit latency = c * params^e over the Pythia suite, then check the
  // paper's off-trend claims: 410M sits ABOVE the trend (inefficiently
  // shaped for its size), 1B sits BELOW it.
  std::vector<double> params, latencies;
  double dev410 = 0.0, dev1b = 0.0;
  const auto suite = pythia_suite();
  std::vector<double> devs;
  for (const TransformerConfig& c : suite) {
    const auto e = estimate_inference(c, sim());
    params.push_back(static_cast<double>(exact_param_count(c)));
    latencies.push_back(e.per_token_time);
  }
  const PowerLawFit fit = power_law_fit(params, latencies);
  EXPECT_GT(fit.r2, 0.9);  // the suite does follow a power law overall
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const double dev = latencies[i] / fit.predict(params[i]);
    devs.push_back(dev);
    if (suite[i].name == "pythia-410m") dev410 = dev;
    if (suite[i].name == "pythia-1b") dev1b = dev;
  }
  EXPECT_GT(dev410, 1.0);  // above trend
  EXPECT_LT(dev1b, 1.0);   // below trend
  EXPECT_GT(dev410, dev1b);
}

TEST(Inference, BatchScalesKvTraffic) {
  const TransformerConfig c = model_by_name("pythia-1b");
  InferenceWorkload w1;
  InferenceWorkload w4 = w1;
  w4.batch = 4;
  const auto e1 = estimate_inference(c, sim(), w1);
  const auto e4 = estimate_inference(c, sim(), w4);
  EXPECT_NEAR(e4.kv_bytes_avg, 4.0 * e1.kv_bytes_avg, 1e-6);
  // Weights are shared across the batch — unchanged.
  EXPECT_DOUBLE_EQ(e4.weight_bytes, e1.weight_bytes);
}

TEST(Inference, LongerContextSlowerDecode) {
  const TransformerConfig c = model_by_name("pythia-1b");
  InferenceWorkload short_ctx{64, 64, 1};
  InferenceWorkload long_ctx{1024, 512, 1};
  const auto es = estimate_inference(c, sim(), short_ctx);
  const auto el = estimate_inference(c, sim(), long_ctx);
  EXPECT_GT(el.per_token_time, es.per_token_time);
}

TEST(Inference, WorkloadValidation) {
  const TransformerConfig c = model_by_name("pythia-1b");
  InferenceWorkload bad;
  bad.prompt_len = 0;
  EXPECT_THROW(estimate_inference(c, sim(), bad), Error);
  bad = InferenceWorkload{};
  bad.prompt_len = 2000;
  bad.generate_tokens = 2000;  // exceeds s = 2048
  EXPECT_THROW(estimate_inference(c, sim(), bad), Error);
}

TEST(Inference, FasterGpuFasterDecode) {
  const TransformerConfig c = model_by_name("pythia-2.8b");
  const auto a100 = estimate_inference(c, sim());
  const auto h100 =
      estimate_inference(c, gemm::GemmSimulator::for_gpu("h100"));
  EXPECT_LT(h100.per_token_time, a100.per_token_time);
}

}  // namespace
}  // namespace codesign::tfm
