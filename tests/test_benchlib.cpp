// Tests for src/benchlib — the continuous benchmark harness: registry
// filtering, warmup/repeat accounting, robust stats on fixed inputs,
// report JSON round-trip, and compare verdicts.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "benchlib/bench_report.hpp"
#include "benchlib/compare.hpp"
#include "benchlib/registry.hpp"
#include "benchlib/runner.hpp"
#include "benchlib/timing.hpp"
#include "common/error.hpp"
#include "gpuarch/gpu_spec.hpp"

namespace codesign::benchlib {
namespace {

BenchCase make_case(std::string name, std::vector<std::string> suites,
                    std::function<void(CaseContext&)> fn) {
  BenchCase c;
  c.name = std::move(name);
  c.bench = "bench_test";
  c.description = "test case";
  c.suites = std::move(suites);
  c.fn = std::move(fn);
  return c;
}

void noop(CaseContext& c) { c.consume(1.0); }

TEST(BenchRegistry, AddValidates) {
  BenchRegistry reg;
  reg.add(make_case("g.a", {kSuiteSmoke}, noop));
  EXPECT_THROW(reg.add(make_case("g.a", {kSuiteSmoke}, noop)), Error);  // dup
  EXPECT_THROW(reg.add(make_case("noperiod", {kSuiteSmoke}, noop)), Error);
  EXPECT_THROW(reg.add(make_case("g.b", {"bogus"}, noop)), Error);
  EXPECT_THROW(reg.add(make_case("g.c", {}, noop)), Error);
  EXPECT_THROW(reg.add(make_case("g.d", {kSuiteSmoke}, nullptr)), Error);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(BenchRegistry, SelectFiltersAndSorts) {
  BenchRegistry reg;
  reg.add(make_case("zeta.one", {kSuiteSmoke, kSuiteFig}, noop));
  reg.add(make_case("alpha.one", {kSuiteFig}, noop));
  reg.add(make_case("mid.perf", {kSuitePerf}, noop));

  const auto all = reg.select("");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name, "alpha.one");  // sorted by name
  EXPECT_EQ(all[2]->name, "zeta.one");

  EXPECT_EQ(reg.select(kSuiteSmoke).size(), 1u);
  EXPECT_EQ(reg.select(kSuiteFig).size(), 2u);
  EXPECT_EQ(reg.select("", "alpha").size(), 1u);
  EXPECT_EQ(reg.select("", "bench_test").size(), 3u);  // matches bench too
  EXPECT_EQ(reg.select(kSuitePerf, "alpha").size(), 0u);

  EXPECT_NE(reg.find("mid.perf"), nullptr);
  EXPECT_EQ(reg.find("mid.nope"), nullptr);
}

TEST(Timing, WarmupAndRepeatAccounting) {
  const gpu::GpuSpec& g = gpu::gpu_by_name("a100");
  std::atomic<int> executions{0};
  BenchCase c = make_case("t.count", {kSuiteSmoke}, [&](CaseContext& ctx) {
    executions.fetch_add(1);
    ctx.consume(3.14);
  });
  TimingOptions opt;
  opt.warmup = 2;
  opt.repeats = 4;
  const CaseStats s = run_case(c, g, gemm::TilePolicy::kAuto, opt);
  EXPECT_EQ(executions.load(), 6);  // warmups run the body too
  ASSERT_EQ(s.samples_ms.size(), 4u);  // but only repeats are timed
  EXPECT_TRUE(s.checksum_stable);
  EXPECT_EQ(s.checksum, checksum_fold(kChecksumSeed, 3.14));
}

TEST(Timing, UnstableChecksumFlagged) {
  const gpu::GpuSpec& g = gpu::gpu_by_name("a100");
  int calls = 0;
  BenchCase c = make_case("t.unstable", {kSuiteSmoke}, [&](CaseContext& ctx) {
    ctx.consume(static_cast<double>(++calls));  // different every execution
  });
  const CaseStats s = run_case(c, g, gemm::TilePolicy::kAuto, {});
  EXPECT_FALSE(s.checksum_stable);
}

TEST(Timing, SummarizeFixedInputs) {
  CaseStats s;
  s.samples_ms = {4.0, 1.0, 2.0, 3.0, 100.0};
  summarize(s, /*outlier_mad_factor=*/8.0);
  EXPECT_DOUBLE_EQ(s.median_ms, 3.0);
  EXPECT_DOUBLE_EQ(s.mad_ms, 1.0);  // |x-3| = {1,2,1,0,97} -> median 1
  EXPECT_DOUBLE_EQ(s.mean_ms, 22.0);
  EXPECT_DOUBLE_EQ(s.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  EXPECT_DOUBLE_EQ(s.p50_ms, 3.0);
  EXPECT_EQ(s.outliers, 1);  // 100 is > 3 + 8*1
}

BenchReport tiny_report() {
  BenchReport r;
  r.run.suite = "smoke";
  r.run.gpu = "a100-40gb";
  r.run.policy = "auto";
  r.host = HostFingerprint::current();
  r.context["k"] = "v";
  CaseStats s;
  s.name = "g.a";
  s.bench = "bench_test";
  s.suites = {kSuiteSmoke};
  s.threshold_frac = 0.25;
  s.samples_ms = {1.0, 1.1, 0.9};
  s.checksum = 0xdeadbeefull;
  summarize(s);
  r.cases.push_back(std::move(s));
  return r;
}

TEST(BenchReport, JsonRoundTrip) {
  const BenchReport a = tiny_report();
  const std::string text = a.to_json();
  const BenchReport b = BenchReport::from_json(text);
  EXPECT_EQ(b.run.suite, "smoke");
  EXPECT_EQ(b.run.gpu, "a100-40gb");
  EXPECT_EQ(b.host, a.host);
  EXPECT_EQ(b.context.at("k"), "v");
  ASSERT_EQ(b.cases.size(), 1u);
  EXPECT_EQ(b.cases[0].name, "g.a");
  EXPECT_EQ(b.cases[0].checksum, 0xdeadbeefull);
  EXPECT_DOUBLE_EQ(b.cases[0].threshold_frac, 0.25);
  ASSERT_EQ(b.cases[0].samples_ms.size(), 3u);
  EXPECT_DOUBLE_EQ(b.cases[0].median_ms, a.cases[0].median_ms);
  // Serialization is deterministic: round-tripping is byte-stable.
  EXPECT_EQ(b.to_json(), text);
}

TEST(BenchReport, RejectsWrongSchema) {
  EXPECT_THROW(BenchReport::from_json("{}"), Error);
  EXPECT_THROW(
      BenchReport::from_json(R"({"schema":"other.thing","version":1})"),
      Error);
  EXPECT_THROW(BenchReport::from_json(
                   R"({"schema":"codesign.bench_report","version":99})"),
               Error);
}

BenchReport report_with(double median_ms, std::uint64_t checksum,
                        double threshold_frac = 0.0) {
  BenchReport r = tiny_report();
  r.cases[0].threshold_frac = threshold_frac;
  r.cases[0].samples_ms = {median_ms, median_ms, median_ms};
  r.cases[0].checksum = checksum;
  summarize(r.cases[0]);
  return r;
}

TEST(Compare, SelfIsPass) {
  const BenchReport r = tiny_report();
  const CompareResult res = compare_reports(r, r);
  EXPECT_TRUE(res.ok());
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.deltas[0].verdict, CaseVerdict::kPass);
  EXPECT_TRUE(res.warnings.empty());
}

TEST(Compare, RegressionBeyondThreshold) {
  const CompareResult res =
      compare_reports(report_with(1.0, 1), report_with(2.0, 1));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.regressions, 1);
  EXPECT_EQ(res.deltas[0].verdict, CaseVerdict::kRegression);
  EXPECT_NEAR(res.deltas[0].delta_frac, 1.0, 1e-12);
}

TEST(Compare, PerCaseThresholdAbsorbsSlowdown) {
  // A 40% slowdown passes when the case declares a 50% threshold.
  const CompareResult res = compare_reports(report_with(1.0, 1, 0.5),
                                            report_with(1.4, 1, 0.5));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.deltas[0].verdict, CaseVerdict::kPass);
}

TEST(Compare, NoiseWidensThreshold) {
  // Identical medians but jittery samples: MAD-scaled band, still a pass.
  BenchReport base = tiny_report();
  base.cases[0].samples_ms = {1.0, 1.5, 0.5, 1.2, 0.8};
  summarize(base.cases[0]);
  BenchReport cand = base;
  cand.cases[0].samples_ms = {1.1, 1.6, 0.6, 1.3, 0.9};
  summarize(cand.cases[0]);
  const CompareResult res = compare_reports(base, cand);
  EXPECT_TRUE(res.ok());
  EXPECT_GT(res.deltas[0].threshold_frac, 0.05);
}

TEST(Compare, FasterIsNotAFailure) {
  const CompareResult res =
      compare_reports(report_with(2.0, 1), report_with(1.0, 1));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.faster, 1);
  EXPECT_EQ(res.deltas[0].verdict, CaseVerdict::kFaster);
}

TEST(Compare, ChecksumMismatchFailsRegardlessOfTiming) {
  const CompareResult res =
      compare_reports(report_with(1.0, 1), report_with(1.0, 2));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.data_mismatches, 1);
  EXPECT_EQ(res.deltas[0].verdict, CaseVerdict::kDataMismatch);

  CompareOptions timing_only;
  timing_only.check_data = false;
  EXPECT_TRUE(compare_reports(report_with(1.0, 1), report_with(1.0, 2),
                              timing_only)
                  .ok());
}

TEST(Compare, MissingAndNewCases) {
  BenchReport base = tiny_report();
  CaseStats extra = base.cases[0];
  extra.name = "g.b";
  base.cases.push_back(extra);
  const BenchReport cand = tiny_report();  // g.b absent
  const CompareResult res = compare_reports(base, cand);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.missing, 1);

  // The reverse direction: a new case is informational, not a failure.
  const CompareResult res2 = compare_reports(cand, base);
  EXPECT_TRUE(res2.ok());
  ASSERT_EQ(res2.deltas.size(), 2u);
}

TEST(Compare, WarnsOnContextMismatch) {
  BenchReport cand = tiny_report();
  cand.run.gpu = "v100-16gb";
  const CompareResult res = compare_reports(tiny_report(), cand);
  EXPECT_FALSE(res.warnings.empty());
  EXPECT_TRUE(res.ok());  // warning, not failure
}

TEST(RunSuite, ProducesThreadCountInvariantReport) {
  BenchRegistry reg;
  reg.add(make_case("s.a", {kSuiteSmoke}, [](CaseContext& c) {
    c.consume(c.sim().estimate({.m = 512, .n = 512, .k = 512}).time);
  }));
  reg.add(make_case("s.b", {kSuiteSmoke}, noop));
  reg.add(make_case("s.skip", {kSuiteExt}, noop));

  RunOptions opt;
  opt.suite = kSuiteSmoke;
  opt.timing.repeats = 3;
  const BenchReport one = run_suite(reg, opt);
  opt.threads = 4;
  const BenchReport four = run_suite(reg, opt);

  ASSERT_EQ(one.cases.size(), 2u);  // ext case filtered out
  ASSERT_EQ(four.cases.size(), 2u);
  EXPECT_EQ(one.cases[0].name, "s.a");
  for (std::size_t i = 0; i < one.cases.size(); ++i) {
    EXPECT_EQ(one.cases[i].name, four.cases[i].name);
    EXPECT_EQ(one.cases[i].checksum, four.cases[i].checksum);
    EXPECT_TRUE(one.cases[i].checksum_stable);
  }
  EXPECT_EQ(one.run.repeats, 3);

  RunOptions none;
  none.suite = kSuiteSmoke;
  none.filter = "nothing-matches-this";
  EXPECT_THROW(run_suite(reg, none), Error);
}

TEST(RunnerHelpers, TilePolicyNames) {
  EXPECT_EQ(parse_tile_policy("auto"), gemm::TilePolicy::kAuto);
  EXPECT_EQ(parse_tile_policy("fixed"), gemm::TilePolicy::kFixedLargest);
  EXPECT_THROW(parse_tile_policy("greedy"), Error);
  EXPECT_STREQ(tile_policy_name(gemm::TilePolicy::kAuto), "auto");
  EXPECT_STREQ(tile_policy_name(gemm::TilePolicy::kFixedLargest), "fixed");
}

}  // namespace
}  // namespace codesign::benchlib
