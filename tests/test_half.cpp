// Tests for kernels/half.hpp — IEEE binary16 emulation.
#include "kernels/half.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace codesign::kern {
namespace {

TEST(Half, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; i += 37) {
    EXPECT_EQ(round_to_half(static_cast<float>(i)), static_cast<float>(i))
        << i;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000);
  EXPECT_EQ(float_to_half_bits(-0.0f), 0x8000);
  EXPECT_EQ(float_to_half_bits(1.0f), 0x3C00);
  EXPECT_EQ(float_to_half_bits(-1.0f), 0xBC00);
  EXPECT_EQ(float_to_half_bits(2.0f), 0x4000);
  EXPECT_EQ(float_to_half_bits(0.5f), 0x3800);
  EXPECT_EQ(float_to_half_bits(65504.0f), 0x7BFF);  // max finite half
}

TEST(Half, RoundTripBitPatterns) {
  // Every finite half value round-trips exactly through float.
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const std::uint32_t exp = (h >> 10) & 0x1F;
    if (exp == 0x1F) continue;  // skip inf/NaN here
    const float f = half_bits_to_float(h);
    EXPECT_EQ(float_to_half_bits(f), h) << std::hex << bits;
  }
}

TEST(Half, OverflowToInfinity) {
  EXPECT_EQ(float_to_half_bits(1e6f), 0x7C00);
  EXPECT_EQ(float_to_half_bits(-1e6f), 0xFC00);
  EXPECT_EQ(float_to_half_bits(65520.0f), 0x7C00);  // rounds past max
  EXPECT_TRUE(std::isinf(round_to_half(70000.0f)));
}

TEST(Half, InfinityAndNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(float_to_half_bits(inf), 0x7C00);
  EXPECT_EQ(float_to_half_bits(-inf), 0xFC00);
  EXPECT_TRUE(std::isinf(half_bits_to_float(0x7C00)));
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(round_to_half(nan)));
}

TEST(Half, SubnormalsPreserved) {
  // Smallest positive subnormal half = 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(float_to_half_bits(tiny), 0x0001);
  EXPECT_EQ(half_bits_to_float(0x0001), tiny);
  // Largest subnormal.
  EXPECT_EQ(half_bits_to_float(0x03FF), std::ldexp(1023.0f, -24));
}

TEST(Half, UnderflowToZero) {
  EXPECT_EQ(float_to_half_bits(1e-9f), 0x0000);
  EXPECT_EQ(float_to_half_bits(-1e-9f), 0x8000);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between 1.0 and the next half (1 + 2^-10):
  // ties to even => 1.0 (mantissa 0 is even).
  EXPECT_EQ(round_to_half(1.0f + std::ldexp(1.0f, -11)), 1.0f);
  // (1 + 3*2^-11) ties between 1+2^-10 and 1+2^-9: even is 1+2^-9... the
  // midpoint rounds to the even mantissa (2).
  const float up = round_to_half(1.0f + 3.0f * std::ldexp(1.0f, -11));
  EXPECT_EQ(up, 1.0f + std::ldexp(1.0f, -9));
}

TEST(Half, RelativeErrorBounded) {
  // Round-to-nearest of normal values has relative error <= 2^-11.
  for (float f : {0.1f, 0.3f, 3.14159f, 123.456f, 0.999f, 1e-3f, 6e4f}) {
    const float r = round_to_half(f);
    EXPECT_LE(std::fabs(r - f) / f, std::ldexp(1.0f, -11) + 1e-7f) << f;
  }
}

TEST(HalfType, WrapperBehaviour) {
  const half_t h(1.5f);
  EXPECT_EQ(h.to_float(), 1.5f);
  EXPECT_EQ(static_cast<float>(h), 1.5f);
  EXPECT_EQ(half_t::from_bits(h.bits()), h);
  EXPECT_EQ(half_t(1.5f), half_t(1.5f));
}

}  // namespace
}  // namespace codesign::kern
