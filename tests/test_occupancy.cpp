// Tests for gpuarch/occupancy.hpp — the shared-memory occupancy model and
// its consistency with the tile catalogue.
#include "gpuarch/occupancy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace codesign::gpu {
namespace {

TEST(Occupancy, FootprintFormula) {
  const TileConfig& t = tile_by_name("256x128");
  const OccupancyInfo o = tile_occupancy(t, gpu_by_name("a100"));
  // 4 stages * (256 + 128) * 32 * 2 bytes.
  EXPECT_EQ(o.smem_bytes_per_block, 4 * 384 * 32 * 2);
  EXPECT_TRUE(o.feasible);
}

TEST(Occupancy, CatalogueConsistentOnAmpere) {
  // The catalogue's hard-coded blocks_per_sm must equal the computed
  // occupancy on A100 (164 KiB smem, 4 stages, fp16) for every entry.
  const GpuSpec& a100 = gpu_by_name("a100");
  for (const TileConfig& t : default_tile_catalogue()) {
    const OccupancyInfo o = tile_occupancy(t, a100);
    EXPECT_EQ(o.blocks_per_sm, t.blocks_per_sm) << t.name();
    EXPECT_TRUE(o.feasible) << t.name();
  }
}

TEST(Occupancy, VoltaHoldsFewerBlocks) {
  // V100 has 96 KiB of shared memory to A100's 164 KiB: the 128x128 tile
  // drops from 2 resident blocks to 1.
  const TileConfig& t = tile_by_name("128x128");
  EXPECT_EQ(tile_occupancy(t, gpu_by_name("a100")).blocks_per_sm, 2);
  EXPECT_EQ(tile_occupancy(t, gpu_by_name("v100")).blocks_per_sm, 1);
}

TEST(Occupancy, CapLimitsSmallTiles) {
  const TileConfig& t = tile_by_name("32x32");
  const OccupancyInfo o = tile_occupancy(t, gpu_by_name("a100"));
  EXPECT_GT(o.blocks_by_smem, o.blocks_cap);  // smem would allow more
  EXPECT_EQ(o.blocks_per_sm, o.blocks_cap);   // residency cap binds
}

TEST(Occupancy, MoreStagesMoreSmem) {
  const TileConfig& t = tile_by_name("128x128");
  const GpuSpec& g = gpu_by_name("a100");
  const auto s2 = tile_occupancy(t, g, DType::kFP16, 2);
  const auto s6 = tile_occupancy(t, g, DType::kFP16, 6);
  EXPECT_LT(s2.smem_bytes_per_block, s6.smem_bytes_per_block);
  EXPECT_GE(s2.blocks_per_sm, s6.blocks_per_sm);
}

TEST(Occupancy, Fp32DoublesFootprint) {
  const TileConfig& t = tile_by_name("256x128");
  const GpuSpec& g = gpu_by_name("a100");
  EXPECT_EQ(tile_occupancy(t, g, DType::kFP32).smem_bytes_per_block,
            2 * tile_occupancy(t, g, DType::kFP16).smem_bytes_per_block);
  // fp32 256x128 at 4 stages = 192 KiB > 164 KiB: infeasible.
  const auto o = tile_occupancy(t, g, DType::kFP32);
  EXPECT_FALSE(o.feasible);
  EXPECT_EQ(o.blocks_per_sm, 0);
}

TEST(Occupancy, UtilizationBounded) {
  for (const TileConfig& t : default_tile_catalogue()) {
    const OccupancyInfo o = tile_occupancy(t, gpu_by_name("a100"));
    EXPECT_GT(o.smem_utilization, 0.0) << t.name();
    EXPECT_LE(o.smem_utilization, 1.0) << t.name();
  }
}

TEST(Occupancy, LargestFeasibleTile) {
  // fp16: the 256x128 flagship fits everywhere.
  EXPECT_EQ(largest_feasible_tile(gpu_by_name("a100")).name(), "256x128");
  EXPECT_EQ(largest_feasible_tile(gpu_by_name("v100")).name(), "256x128");
  // fp32 at 4 stages: A100 must step down to a smaller tile.
  const TileConfig& t32 = largest_feasible_tile(gpu_by_name("a100"),
                                                DType::kFP32);
  EXPECT_LT(t32.tm * t32.tn, 256 * 128);
  // Demanding 2 resident fp16 blocks steps down from the flagship too.
  EXPECT_NE(largest_feasible_tile(gpu_by_name("a100"), DType::kFP16, 2).name(),
            "256x128");
}

TEST(Occupancy, Validation) {
  const TileConfig& t = tile_by_name("64x64");
  EXPECT_THROW(tile_occupancy(t, gpu_by_name("a100"), DType::kFP16, 0),
               Error);
  EXPECT_THROW(largest_feasible_tile(gpu_by_name("a100"), DType::kFP16, 0),
               Error);
}

}  // namespace
}  // namespace codesign::gpu
