// Tests for common/strings.hpp.
#include "common/strings.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace codesign {
namespace {

TEST(StrFormat, Basic) {
  EXPECT_EQ(str_format("%d + %d = %d", 2, 2, 4), "2 + 2 = 4");
  EXPECT_EQ(str_format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(str_format("%s", "hello"), "hello");
}

TEST(StrFormat, LongOutput) {
  const std::string long_str(500, 'x');
  EXPECT_EQ(str_format("%s!", long_str.c_str()).size(), 501u);
}

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, Basic) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\nx"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(IEquals, Basic) {
  EXPECT_TRUE(iequals("A100", "a100"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("a100", "a10"));
  EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(ToLowerStartsWith, Basic) {
  EXPECT_EQ(to_lower("V100-16GB"), "v100-16gb");
  EXPECT_TRUE(starts_with("--gpu=a100", "--"));
  EXPECT_FALSE(starts_with("-g", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(HumanBytes, Units) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KiB");
  EXPECT_EQ(human_bytes(40.0 * 1024 * 1024 * 1024), "40.00 GiB");
}

TEST(HumanFlops, Units) {
  EXPECT_EQ(human_flops(2e12), "2.00 TFLOP");
  EXPECT_EQ(human_flops(5e9), "5.00 GFLOP");
  EXPECT_EQ(human_flops(100), "100 FLOP");
}

TEST(HumanTime, Units) {
  EXPECT_EQ(human_time(1.5), "1.500 s");
  EXPECT_EQ(human_time(0.0021), "2.100 ms");
  EXPECT_EQ(human_time(42e-6), "42.0 us");
  EXPECT_EQ(human_time(5e-9), "5 ns");
}

TEST(HumanCount, Units) {
  EXPECT_EQ(human_count(2.65e9), "2.65B");
  EXPECT_EQ(human_count(410e6), "410M");
  EXPECT_EQ(human_count(50304), "50K");
  EXPECT_EQ(human_count(12), "12");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(ParseInt, Valid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_EQ(parse_int("2560"), 2560);
}

TEST(ParseInt, Invalid) {
  EXPECT_THROW(parse_int(""), Error);
  EXPECT_THROW(parse_int("abc"), Error);
  EXPECT_THROW(parse_int("12x"), Error);
  EXPECT_THROW(parse_int("1.5"), Error);
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double(" 2 "), 2.0);
}

TEST(ParseDouble, Invalid) {
  EXPECT_THROW(parse_double(""), Error);
  EXPECT_THROW(parse_double("x"), Error);
  EXPECT_THROW(parse_double("1.2.3"), Error);
}

}  // namespace
}  // namespace codesign
