// Tests for transformer/training.hpp — backward GEMM mapping, training-
// step latency, and the memory model behind "b as large as possible".
#include "transformer/training.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "transformer/flops.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"

namespace codesign::tfm {
namespace {

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

TEST(BackwardOf, ShapeRotations) {
  // Forward (m, n, k) = (8192, 7680, 2560):
  const auto fwd = gemm::GemmProblem::gemm(8192, 7680, 2560);
  const BackwardPair p = backward_of(fwd);
  // dgrad: (m, k, n).
  EXPECT_EQ(p.dgrad.m, 8192);
  EXPECT_EQ(p.dgrad.n, 2560);
  EXPECT_EQ(p.dgrad.k, 7680);
  // wgrad: (k, n, m) — b·s becomes the inner dimension.
  EXPECT_EQ(p.wgrad.m, 2560);
  EXPECT_EQ(p.wgrad.n, 7680);
  EXPECT_EQ(p.wgrad.k, 8192);
  EXPECT_TRUE(p.wgrad.accumulate_into_c);  // grads accumulate
  EXPECT_FALSE(p.dgrad.accumulate_into_c);
}

TEST(BackwardOf, FlopsMatchForward) {
  // Each backward GEMM does exactly the forward GEMM's math.
  const auto fwd = gemm::GemmProblem::bmm(128, 2048, 2048, 80);
  const BackwardPair p = backward_of(fwd);
  EXPECT_DOUBLE_EQ(p.dgrad.flops(), fwd.flops());
  EXPECT_DOUBLE_EQ(p.wgrad.flops(), fwd.flops());
  EXPECT_EQ(p.dgrad.batch, 128);
}

TEST(BackwardGemms, CountAndTotalFlops) {
  const auto cfg = model_by_name("gpt3-2.7b");
  const auto bwd = layer_backward_gemms(cfg);
  // 4 weight GEMMs x 2 + 2 activation BMMs x 2 = 12.
  EXPECT_EQ(bwd.size(), 12u);
  double bwd_flops = 0.0;
  for (const auto& p : bwd) bwd_flops += p.flops();
  // Backward does exactly 2x the forward GEMM math.
  EXPECT_NEAR(bwd_flops, 2.0 * layer_forward_flops(cfg), 1.0);
}

TEST(BackwardGemms, SwigluAddsGatePair) {
  TransformerConfig cfg = model_by_name("gpt3-2.7b");
  cfg.activation = Activation::kSwiGlu;
  cfg.mlp_intermediate = 6912;
  EXPECT_EQ(layer_backward_gemms(cfg).size(), 14u);
}

TEST(BackwardGemms, FlashDropsAttentionBmmGrads) {
  TransformerConfig cfg = model_by_name("gpt3-2.7b");
  cfg.attention = AttentionImpl::kFlash;
  EXPECT_EQ(layer_backward_gemms(cfg).size(), 8u);  // 4 weight GEMMs x 2
}

TEST(TrainingStep, ComponentsPositiveAndSum) {
  const auto r = analyze_training_step(model_by_name("gpt3-2.7b"), sim());
  EXPECT_GT(r.forward_time, 0.0);
  EXPECT_GT(r.backward_time, 0.0);
  EXPECT_GT(r.optimizer_time, 0.0);
  EXPECT_NEAR(r.total_time,
              r.forward_time + r.backward_time + r.optimizer_time, 1e-12);
  EXPECT_GT(r.model_tflops, 0.0);
  EXPECT_GT(r.mfu, 0.05);
  EXPECT_LT(r.mfu, 1.0);
}

TEST(TrainingStep, BackwardRoughlyTwiceForward) {
  // The GEMM math ratio is exactly 2; elementwise/optimizer shift it a
  // little. Accept [1.5, 2.8].
  const auto r = analyze_training_step(model_by_name("gpt3-6.7b"), sim());
  const double ratio = r.backward_time / r.forward_time;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 2.8);
}

TEST(TrainingStep, ReshapeSpeedupCarriesToTraining) {
  // The Fig-1 headline is a *training* result; the full step must show it.
  const auto base = analyze_training_step(model_by_name("gpt3-2.7b"), sim());
  const auto c2 = analyze_training_step(model_by_name("gpt3-2.7b-c2"), sim());
  const double speedup = base.total_time / c2.total_time;
  EXPECT_GT(speedup, 1.05);
  EXPECT_LT(speedup, 1.40);
}

TEST(TrainingStep, StepFlopsIsThreeForwards) {
  const auto cfg = model_by_name("gpt3-2.7b");
  const auto r = analyze_training_step(cfg, sim());
  EXPECT_DOUBLE_EQ(r.step_flops, 3.0 * model_forward_flops(cfg));
}

TEST(Memory, MixedPrecisionStateIs16P) {
  const auto cfg = model_by_name("gpt3-2.7b");
  const auto m = training_memory(cfg);
  const double p = static_cast<double>(exact_param_count(cfg));
  EXPECT_DOUBLE_EQ(m.weight_bytes, 2.0 * p);
  EXPECT_DOUBLE_EQ(m.gradient_bytes, 2.0 * p);
  EXPECT_DOUBLE_EQ(m.optimizer_bytes, 12.0 * p);
  EXPECT_GT(m.activation_bytes, 0.0);
  EXPECT_DOUBLE_EQ(m.total_bytes, 16.0 * p + m.activation_bytes);
}

TEST(Memory, TensorParallelDividesState) {
  const auto cfg =
      model_by_name("gpt3-2.7b").with_tensor_parallel(4).with_vocab(50304);
  const auto m1 = training_memory(cfg.with_tensor_parallel(1));
  const auto m4 = training_memory(cfg);
  EXPECT_NEAR(m4.weight_bytes, m1.weight_bytes / 4.0,
              m1.weight_bytes * 1e-9);
  // Activations shrink with t but LESS than 4x: the 10·s·b·h LayerNorm/
  // dropout streams are replicated under plain tensor parallelism.
  EXPECT_LT(m4.activation_bytes, m1.activation_bytes / 2.0);
  EXPECT_GT(m4.activation_bytes, m1.activation_bytes / 4.0);
}

TEST(Memory, SequenceParallelSplitsTheRest) {
  const auto cfg =
      model_by_name("gpt3-2.7b").with_tensor_parallel(4).with_vocab(50304);
  MemoryOptions sp;
  sp.sequence_parallel = true;
  const auto m1 = training_memory(cfg.with_tensor_parallel(1));
  const auto m4sp = training_memory(cfg, sp);
  // With sequence parallelism everything divides by t exactly.
  EXPECT_NEAR(m4sp.activation_bytes, m1.activation_bytes / 4.0,
              m1.activation_bytes * 1e-9);
  EXPECT_LT(m4sp.activation_bytes, training_memory(cfg).activation_bytes);
}

TEST(Memory, SequenceParallelNoopAtT1) {
  const auto cfg = model_by_name("gpt3-2.7b");
  MemoryOptions sp;
  sp.sequence_parallel = true;
  EXPECT_DOUBLE_EQ(training_memory(cfg, sp).activation_bytes,
                   training_memory(cfg).activation_bytes);
}

TEST(Memory, ActivationFormula) {
  // s·b·h·(34 + 5as/h) for the standard BMM+GELU layer.
  TransformerConfig c = model_by_name("gpt3-2.7b");  // h=2560, a=32, s=2048, b=4
  const double expected =
      2048.0 * 4.0 * 2560.0 * (34.0 + 5.0 * 32.0 * 2048.0 / 2560.0);
  EXPECT_DOUBLE_EQ(activation_bytes_per_layer(c), expected);
}

TEST(Memory, FlashAttentionShrinksActivations) {
  TransformerConfig bmm_cfg = model_by_name("gpt3-2.7b");
  TransformerConfig flash_cfg = bmm_cfg;
  flash_cfg.attention = AttentionImpl::kFlash;
  EXPECT_LT(activation_bytes_per_layer(flash_cfg),
            activation_bytes_per_layer(bmm_cfg) * 0.5);
}

TEST(Memory, FitsChecksCapacityWithReserve) {
  // 2.65B params: 16P = 42.4 GB static alone exceeds A100-40GB; at b = 1
  // (~27 GB of activations) the total ~69 GB still fits the 80 GB part.
  const auto cfg = model_by_name("gpt3-2.7b").with_microbatch(1);
  const auto m = training_memory(cfg);
  EXPECT_FALSE(m.fits(gpu::gpu_by_name("a100-40gb")));
  EXPECT_TRUE(m.fits(gpu::gpu_by_name("a100-80gb")));
  EXPECT_THROW(m.fits(gpu::gpu_by_name("a100"), 1.5), Error);
}

TEST(Memory, MaxMicrobatchBehaviour) {
  // A 125M model has ~2GB of state; activations dominate, so b scales
  // with capacity.
  const auto small = model_by_name("gpt3-125m");
  const std::int64_t b40 = max_microbatch(small, gpu::gpu_by_name("a100-40gb"));
  const std::int64_t b80 = max_microbatch(small, gpu::gpu_by_name("a100-80gb"));
  EXPECT_GT(b40, 4);
  EXPECT_GT(b80, b40);
  // 2.7B with 42GB of static state: b = 0 on a 40GB part (needs TP/ZeRO).
  EXPECT_EQ(max_microbatch(model_by_name("gpt3-2.7b"),
                           gpu::gpu_by_name("a100-40gb")),
            0);
  EXPECT_GE(max_microbatch(model_by_name("gpt3-2.7b"),
                           gpu::gpu_by_name("a100-80gb")),
            1);
}

TEST(Memory, FlashRaisesMaxMicrobatch) {
  TransformerConfig bmm_cfg = model_by_name("gpt3-125m");
  TransformerConfig flash_cfg = bmm_cfg;
  flash_cfg.attention = AttentionImpl::kFlash;
  const auto& g = gpu::gpu_by_name("a100-40gb");
  EXPECT_GT(max_microbatch(flash_cfg, g), max_microbatch(bmm_cfg, g));
}

TEST(Memory, MaxMicrobatchValidation) {
  EXPECT_THROW(
      max_microbatch(model_by_name("gpt3-125m"), gpu::gpu_by_name("a100"), 0),
      Error);
}

TEST(MemoryOptions, CheckpointingShrinksActivations) {
  const auto cfg = model_by_name("gpt3-2.7b");
  MemoryOptions ckpt;
  ckpt.activation_checkpointing = true;
  const auto plain = training_memory(cfg);
  const auto saved = training_memory(cfg, ckpt);
  // Boundary activations are ~2sbh per layer vs ~160+sbh: huge reduction.
  EXPECT_LT(saved.activation_bytes, 0.1 * plain.activation_bytes);
  // Static state unchanged.
  EXPECT_DOUBLE_EQ(saved.weight_bytes, plain.weight_bytes);
  EXPECT_DOUBLE_EQ(saved.optimizer_bytes, plain.optimizer_bytes);
}

TEST(MemoryOptions, CheckpointingEnablesTrainingOn40GB) {
  // The 2.7B model that did not fit at all now trains on A100-40GB... not
  // quite: 42.4 GB of static state still exceeds 40 GB — ZeRO-1 over 8
  // data-parallel ranks shards the optimizer state down to ~9.8 GB.
  const auto cfg = model_by_name("gpt3-2.7b");
  MemoryOptions opt;
  opt.activation_checkpointing = true;
  EXPECT_EQ(max_microbatch(cfg, gpu::gpu_by_name("a100-40gb"), 64, opt), 0);
  opt.zero_stage = 1;
  opt.data_parallel = 8;
  EXPECT_GE(max_microbatch(cfg, gpu::gpu_by_name("a100-40gb"), 64, opt), 4);
}

TEST(MemoryOptions, ZeroStagesShardProgressively) {
  const auto cfg = model_by_name("gpt3-2.7b");
  MemoryOptions opt;
  opt.data_parallel = 8;
  opt.zero_stage = 1;
  const auto z1 = training_memory(cfg, opt);
  opt.zero_stage = 2;
  const auto z2 = training_memory(cfg, opt);
  opt.zero_stage = 3;
  const auto z3 = training_memory(cfg, opt);
  const auto z0 = training_memory(cfg);
  EXPECT_DOUBLE_EQ(z1.optimizer_bytes, z0.optimizer_bytes / 8.0);
  EXPECT_DOUBLE_EQ(z1.gradient_bytes, z0.gradient_bytes);
  EXPECT_DOUBLE_EQ(z2.gradient_bytes, z0.gradient_bytes / 8.0);
  EXPECT_DOUBLE_EQ(z2.weight_bytes, z0.weight_bytes);
  EXPECT_DOUBLE_EQ(z3.weight_bytes, z0.weight_bytes / 8.0);
  EXPECT_LT(z3.total_bytes, z2.total_bytes);
  EXPECT_LT(z2.total_bytes, z1.total_bytes);
}

TEST(MemoryOptions, Validation) {
  const auto cfg = model_by_name("gpt3-125m");
  MemoryOptions opt;
  opt.zero_stage = 4;
  EXPECT_THROW(training_memory(cfg, opt), Error);
  opt.zero_stage = 1;
  opt.data_parallel = 0;
  EXPECT_THROW(training_memory(cfg, opt), Error);
}

}  // namespace
}  // namespace codesign::tfm
