// Tests for transformer/model_zoo.hpp.
#include "transformer/model_zoo.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "transformer/params.hpp"

namespace codesign::tfm {
namespace {

TEST(ModelZoo, LookupAndCaseInsensitivity) {
  EXPECT_EQ(model_by_name("gpt3-2.7b").hidden_size, 2560);
  EXPECT_EQ(model_by_name("GPT3-2.7B").num_heads, 32);
  EXPECT_THROW(model_by_name("gpt5"), LookupError);
}

TEST(ModelZoo, AllEntriesValidate) {
  for (const std::string& name : known_models()) {
    EXPECT_NO_THROW(model_by_name(name).validate()) << name;
  }
}

TEST(ModelZoo, ExpectedEntriesPresent) {
  const auto names = known_models();
  for (const char* expected :
       {"gpt3-125m", "gpt3-2.7b", "gpt3-2.7b-c1", "gpt3-2.7b-c2",
        "gpt3-175b", "pythia-70m", "pythia-410m", "pythia-1b", "pythia-12b",
        "llama2-7b", "llama2-70b", "gpt-neox-20b", "opt-2.7b",
        "redpajama-incite-3b"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(ModelZoo, PaperVariantHeadCounts) {
  // Fig 1 caption: C1: h=2560, a=64; C2: h=2560, a=40.
  const auto& c1 = model_by_name("gpt3-2.7b-c1");
  EXPECT_EQ(c1.hidden_size, 2560);
  EXPECT_EQ(c1.num_heads, 64);
  EXPECT_EQ(c1.head_dim(), 40);
  const auto& c2 = model_by_name("gpt3-2.7b-c2");
  EXPECT_EQ(c2.num_heads, 40);
  EXPECT_EQ(c2.head_dim(), 64);
  // The default keeps GPT-3's h/a = 80.
  EXPECT_EQ(model_by_name("gpt3-2.7b").head_dim(), 80);
}

TEST(ModelZoo, PythiaSuiteOrderedByParams) {
  const auto suite = pythia_suite();
  ASSERT_EQ(suite.size(), 8u);
  std::int64_t prev = 0;
  for (const TransformerConfig& c : suite) {
    const std::int64_t p = exact_param_count(c);
    EXPECT_GT(p, prev) << c.name;
    prev = p;
  }
  EXPECT_EQ(suite.front().name, "pythia-70m");
  EXPECT_EQ(suite.back().name, "pythia-12b");
}

TEST(ModelZoo, PythiaArchitectureFlags) {
  const auto& p = model_by_name("pythia-410m");
  EXPECT_EQ(p.pos_embedding, PosEmbedding::kRotary);
  EXPECT_TRUE(p.parallel_layers);
  EXPECT_FALSE(p.tied_embeddings);
  EXPECT_EQ(p.vocab_size, 50304);
  EXPECT_EQ(p.vocab_size % 64, 0);  // NeoX pads its vocab — rule satisfied
}

TEST(ModelZoo, PythiaSizingContrast) {
  // The Fig-13 protagonists: 410M is deep and thin with h/a = 64; 1B is
  // shallower and wide with h/a = 256.
  const auto& m410 = model_by_name("pythia-410m");
  const auto& m1b = model_by_name("pythia-1b");
  EXPECT_EQ(m410.num_layers, 24);
  EXPECT_EQ(m410.hidden_size, 1024);
  EXPECT_EQ(m1b.num_layers, 16);
  EXPECT_EQ(m1b.hidden_size, 2048);
  EXPECT_LT(m1b.num_heads, m410.num_heads);
}

TEST(ModelZoo, Llama2SwigluCoefficients) {
  // §VII-B: 7B uses 11008/4096 = 2.6875; 70B uses 28672/8192 = 3.5.
  const auto& l7 = model_by_name("llama2-7b");
  EXPECT_EQ(l7.activation, Activation::kSwiGlu);
  EXPECT_EQ(l7.d_ff(), 11008);
  EXPECT_NEAR(static_cast<double>(l7.d_ff()) / l7.hidden_size, 2.6875, 1e-12);
  const auto& l70 = model_by_name("llama2-70b");
  EXPECT_NEAR(static_cast<double>(l70.d_ff()) / l70.hidden_size, 3.5, 1e-12);
}

TEST(ModelZoo, ClonesShareTheDefaultShape) {
  // §VI-B: GPT-Neo/OPT/RedPajama copied GPT-3 2.7B's h/a = 80.
  for (const char* name : {"gpt-neo-2.7b", "opt-2.7b", "redpajama-incite-3b"}) {
    const auto& c = model_by_name(name);
    EXPECT_EQ(c.hidden_size, 2560) << name;
    EXPECT_EQ(c.num_heads, 32) << name;
    EXPECT_EQ(c.head_dim(), 80) << name;
  }
}

TEST(ModelZoo, FamilyContainsPaperVariants) {
  const auto family = gpt3_27b_family();
  ASSERT_GE(family.size(), 3u);
  EXPECT_EQ(family[0].name, "gpt3-2.7b");
  EXPECT_EQ(family[1].name, "gpt3-2.7b-c1");
  EXPECT_EQ(family[2].name, "gpt3-2.7b-c2");
  for (const auto& c : family) {
    EXPECT_EQ(c.hidden_size, 2560) << c.name;
    EXPECT_NO_THROW(c.validate()) << c.name;
  }
}

TEST(ModelZoo, FalconOddHeadCountIsRuleClean) {
  // Falcon-7B: a = 71 looks bizarre, but h/a = 4544/71 = 64 — the rule is
  // about the head *dimension*, not the head count.
  const auto& c = model_by_name("falcon-7b");
  EXPECT_EQ(c.num_heads, 71);
  EXPECT_EQ(c.head_dim(), 64);
  EXPECT_EQ(c.num_kv_heads, 1);  // multi-query attention
  EXPECT_EQ(c.kv_heads(), 1);
  EXPECT_EQ(c.qkv_width(), 4544 + 2 * 64);
  EXPECT_EQ(c.vocab_size % 64, 0);
}

TEST(ModelZoo, MistralGqaShape) {
  const auto& c = model_by_name("mistral-7b");
  EXPECT_EQ(c.num_kv_heads, 8);
  EXPECT_EQ(c.d_ff(), 14336);
  EXPECT_NEAR(static_cast<double>(c.d_ff()) / c.hidden_size, 3.5, 1e-12);
  EXPECT_EQ(c.seq_len, 8192);
  // ~7.2B parameters.
  EXPECT_NEAR(static_cast<double>(exact_param_count(c)) / 7.24e9, 1.0, 0.03);
}

TEST(ModelZoo, KnownModelsSortedUnique) {
  const auto names = known_models();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
  EXPECT_GE(names.size(), 20u);
}

}  // namespace
}  // namespace codesign::tfm
