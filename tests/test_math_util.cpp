// Tests for common/math_util.hpp — the integer helpers the quantization and
// alignment models are built on.
#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace codesign {
namespace {

TEST(CeilDiv, ExactDivision) {
  EXPECT_EQ(ceil_div(8, 4), 2);
  EXPECT_EQ(ceil_div(108, 108), 1);
  EXPECT_EQ(ceil_div(0, 7), 0);
}

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(9, 4), 3);
  EXPECT_EQ(ceil_div(109, 108), 2);  // the wave-quantization example
  EXPECT_EQ(ceil_div(1, 256), 1);
}

TEST(CeilDiv, LargeValues) {
  EXPECT_EQ(ceil_div<std::int64_t>(1'000'000'000'001, 1'000'000), 1'000'001);
}

TEST(RoundUp, Basic) {
  EXPECT_EQ(round_up(50257, 64), 50304);  // the paper's vocab-padding example
  EXPECT_EQ(round_up(64, 64), 64);
  EXPECT_EQ(round_up(1, 64), 64);
}

TEST(RoundDown, Basic) {
  EXPECT_EQ(round_down(50257, 64), 50240);
  EXPECT_EQ(round_down(64, 64), 64);
  EXPECT_EQ(round_down(63, 64), 0);
}

TEST(IsPow2, Values) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(80));
  EXPECT_FALSE(is_pow2(96));
}

TEST(LargestPow2Dividing, PaperExamples) {
  // h/a values from the paper: 80 (GPT-3 2.7B default), 64 (C2), 40 (C1).
  EXPECT_EQ(largest_pow2_dividing(80), 16u);
  EXPECT_EQ(largest_pow2_dividing(64), 64u);
  EXPECT_EQ(largest_pow2_dividing(40), 8u);
  EXPECT_EQ(largest_pow2_dividing(50257), 1u);  // odd vocab
  EXPECT_EQ(largest_pow2_dividing(50304), 128u);
}

TEST(LargestPow2Dividing, Zero) { EXPECT_EQ(largest_pow2_dividing(0), 0u); }

class Pow2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Pow2Property, DividesAndIsMaximal) {
  const std::uint64_t x = GetParam();
  const std::uint64_t g = largest_pow2_dividing(x);
  EXPECT_TRUE(is_pow2(g));
  EXPECT_EQ(x % g, 0u);
  EXPECT_NE((x / g) % 2, 0u);  // quotient is odd => g is maximal
}

INSTANTIATE_TEST_SUITE_P(Grid, Pow2Property,
                         ::testing::Values(1, 2, 3, 8, 12, 40, 64, 80, 96,
                                           100, 128, 2560, 4096, 50257, 50304,
                                           11008, 28672, 65535, 65536));

TEST(Log2Exact, Values) {
  EXPECT_EQ(log2_exact(1), 0);
  EXPECT_EQ(log2_exact(2), 1);
  EXPECT_EQ(log2_exact(64), 6);
  EXPECT_EQ(log2_exact(1ULL << 30), 30);
}

TEST(FloorPow2, Values) {
  EXPECT_EQ(floor_pow2(1), 1u);
  EXPECT_EQ(floor_pow2(2), 2u);
  EXPECT_EQ(floor_pow2(3), 2u);
  EXPECT_EQ(floor_pow2(80), 64u);
  EXPECT_EQ(floor_pow2(64), 64u);
}

TEST(Gcd, Values) {
  EXPECT_EQ(gcd_u64(12, 18), 6u);
  EXPECT_EQ(gcd_u64(64, 6), 2u);
  EXPECT_EQ(gcd_u64(7, 13), 1u);
  EXPECT_EQ(gcd_u64(0, 5), 5u);
  EXPECT_EQ(gcd_u64(5, 0), 5u);
}

TEST(ClampLerp, Values) {
  EXPECT_EQ(clamp_val(5, 0, 10), 5);
  EXPECT_EQ(clamp_val(-5, 0, 10), 0);
  EXPECT_EQ(clamp_val(15, 0, 10), 10);
  EXPECT_DOUBLE_EQ(lerp_val(0.0, 10.0, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(lerp_val(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp_val(2.0, 4.0, 1.0), 4.0);
}

TEST(CheckMacro, ThrowsCodesignError) {
  EXPECT_THROW(
      [] { CODESIGN_CHECK(1 == 2, "impossible arithmetic"); }(),
      Error);
  EXPECT_NO_THROW([] { CODESIGN_CHECK(1 == 1, "fine"); }());
}

TEST(CheckMacro, MessageContainsContext) {
  try {
    CODESIGN_CHECK(false, "the message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("test_math_util"), std::string::npos);
  }
}

}  // namespace
}  // namespace codesign
