// Tests for encoder-only (BERT-style) model support — the paper's claim
// that its conclusions extend to encoder-only models, validated.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/flops.hpp"
#include "transformer/forward.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/inference.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::tfm {
namespace {

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

TEST(Encoder, ZooEntries) {
  const auto& base = model_by_name("bert-base");
  EXPECT_EQ(base.kind, ModelKind::kEncoder);
  EXPECT_EQ(base.hidden_size, 768);
  EXPECT_EQ(base.head_dim(), 64);  // BERT is rule-clean on head dim
  EXPECT_NE(base.vocab_size % 64, 0);  // ... but not on vocab (30522)
  const auto& large = model_by_name("bert-large");
  EXPECT_EQ(large.num_layers, 24);
  EXPECT_EQ(large.seq_len, 512);
}

TEST(Encoder, SameGemmShapesAsDecoder) {
  // The paper's point: encoder vs decoder changes the mask, not the GEMMs.
  TransformerConfig enc = model_by_name("bert-large");
  TransformerConfig dec = enc;
  dec.kind = ModelKind::kDecoder;
  EXPECT_EQ(layer_gemms(enc), layer_gemms(dec));
  EXPECT_DOUBLE_EQ(layer_forward_flops(enc), layer_forward_flops(dec));
}

TEST(Encoder, FlashProblemIsBidirectional) {
  TransformerConfig enc = model_by_name("bert-large");
  enc.attention = AttentionImpl::kFlash;
  EXPECT_FALSE(flash_attention_problem(enc).causal);
  TransformerConfig dec = enc;
  dec.kind = ModelKind::kDecoder;
  EXPECT_TRUE(flash_attention_problem(dec).causal);
}

TEST(Encoder, LayerModelWorks) {
  const auto r = analyze_layer(model_by_name("bert-large"), sim());
  EXPECT_GT(r.throughput_tflops, 0.0);
  EXPECT_GT(r.gemm_fraction, 0.3);
}

TEST(Encoder, AutoregressiveInferenceRejected) {
  EXPECT_THROW(estimate_inference(model_by_name("bert-base"), sim()), Error);
}

TEST(Encoder, ServingEstimate) {
  const auto e = estimate_encoder_serving(model_by_name("bert-large"), sim(), 32);
  EXPECT_GT(e.batch_latency, 0.0);
  EXPECT_NEAR(e.sequences_per_second * e.batch_latency, 32.0, 1e-6);
  EXPECT_DOUBLE_EQ(e.tokens_per_second, e.sequences_per_second * 512.0);
  // Decoders are rejected here (the mirror of the check above).
  EXPECT_THROW(estimate_encoder_serving(model_by_name("gpt3-125m"), sim()),
               Error);
  EXPECT_THROW(
      estimate_encoder_serving(model_by_name("bert-base"), sim(), 0), Error);
}

TEST(Encoder, BiggerBatchBetterThroughput) {
  const auto b1 = estimate_encoder_serving(model_by_name("bert-base"), sim(), 1);
  const auto b32 =
      estimate_encoder_serving(model_by_name("bert-base"), sim(), 32);
  EXPECT_GT(b32.sequences_per_second, b1.sequences_per_second);
}

TEST(Encoder, ForwardIsBidirectional) {
  // Changing the LAST token must change the FIRST position's logits in an
  // encoder (it cannot in a causal decoder — see test_forward).
  TransformerConfig c;
  c.name = "tiny-encoder";
  c.kind = ModelKind::kEncoder;
  c.hidden_size = 32;
  c.num_heads = 4;
  c.num_layers = 2;
  c.seq_len = 12;
  c.microbatch = 1;
  c.vocab_size = 64;
  const auto model = TransformerModel::random_init(c);
  std::vector<std::int64_t> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::int64_t> b = a;
  b.back() = 9;
  const kern::Tensor la = model.forward(a);
  const kern::Tensor lb = model.forward(b);
  float diff = 0.0f;
  for (std::int64_t v = 0; v < 64; ++v) {
    diff = std::max(diff, std::abs(la.at(0, v) - lb.at(0, v)));
  }
  EXPECT_GT(diff, 1e-6f) << "encoder position 0 must see the last token";
}

TEST(Encoder, VocabPaddingHelpsBertToo) {
  // The MLPerf 30522 -> 30528 padding, reproduced.
  const auto& c = model_by_name("bert-large");
  const double odd = sim().throughput_tflops(logit_gemm(c));
  const double pad = sim().throughput_tflops(logit_gemm(c.with_vocab(30528)));
  EXPECT_GT(pad / odd, 1.5);
}

}  // namespace
}  // namespace codesign::tfm
