// Tests for common/rng.hpp — determinism is what makes every randomized
// test and bench in this repo reproducible.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace codesign {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(42);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(42);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 3))];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 4.0, n * 0.02);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

}  // namespace
}  // namespace codesign
