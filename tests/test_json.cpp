// Tests for common/json.hpp — the parser behind `codesign-bench compare`
// (BENCH_*.json reading) plus the shared writer helpers.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace codesign {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json::Value::parse("null").is_null());
  EXPECT_TRUE(json::Value::parse("true").as_bool());
  EXPECT_FALSE(json::Value::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::Value::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json::Value::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(json::Value::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  const auto v = json::Value::parse(R"("a\"b\\c\n\tA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\n\tA");
}

TEST(JsonParse, NestedDocument) {
  const auto v = json::Value::parse(
      R"({"run":{"repeats":5},"cases":[{"name":"x","samples":[1,2.5]}]})");
  EXPECT_DOUBLE_EQ(v.at("run").at("repeats").as_number(), 5.0);
  const auto& cases = v.at("cases").as_array();
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases[0].at("name").as_string(), "x");
  EXPECT_DOUBLE_EQ(cases[0].at("samples").as_array()[1].as_number(), 2.5);
}

TEST(JsonParse, ObjectPreservesOrderAndLookups) {
  const auto v = json::Value::parse(R"({"b":1,"a":2})");
  const auto& members = v.as_object();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].first, "b");
  EXPECT_EQ(v.get("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), Error);
  EXPECT_DOUBLE_EQ(v.number_or("a", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(v.number_or("zz", -1.0), -1.0);
  EXPECT_EQ(v.string_or("zz", "d"), "d");
}

TEST(JsonParse, ErrorsCarryPosition) {
  EXPECT_THROW(json::Value::parse("{"), Error);
  EXPECT_THROW(json::Value::parse("[1,]"), Error);
  EXPECT_THROW(json::Value::parse("{\"a\":1} x"), Error);  // trailing junk
  EXPECT_THROW(json::Value::parse("{'a':1}"), Error);      // single quotes
  try {
    json::Value::parse("[1,\n  oops]");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonParse, KindMismatchThrows) {
  const auto v = json::Value::parse("[1]");
  EXPECT_THROW(v.as_object(), Error);
  EXPECT_THROW(v.as_string(), Error);
  EXPECT_THROW(v.at("k"), Error);
}

TEST(JsonWrite, Escape) {
  EXPECT_EQ(json::escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(json::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWrite, FormatDoubleRoundTrips) {
  for (const double v : {0.0, 1.0, -2.5, 0.1, 1.0 / 3.0, 21.433,
                         std::numeric_limits<double>::min()}) {
    const std::string s = json::format_double(v);
    EXPECT_DOUBLE_EQ(json::Value::parse(s).as_number(), v) << s;
  }
  // Identical values format identically (byte-stable reports).
  EXPECT_EQ(json::format_double(0.1 + 0.2), json::format_double(0.1 + 0.2));
}

TEST(JsonBuild, Mutators) {
  auto arr = json::Value::array();
  arr.push_back(json::Value::number(1));
  auto obj = json::Value::object();
  obj.set("xs", std::move(arr));
  EXPECT_DOUBLE_EQ(obj.at("xs").as_array()[0].as_number(), 1.0);
  EXPECT_THROW(obj.push_back(json::Value()), Error);
}

// ---------------------------------------------------------------------------
// json::Writer — the streaming emitter behind bench reports and serve
// responses.

TEST(JsonWriter, CompactObjectAndArray) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object()
      .member("name", "x")
      .member("n", 3)
      .member("ok", true)
      .key("xs")
      .begin_array()
      .value(1)
      .value(2.5)
      .null()
      .end_array()
      .end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), R"({"name":"x","n":3,"ok":true,"xs":[1,2.5,null]})");
}

TEST(JsonWriter, PrettyStyleIndentsPerContainer) {
  std::ostringstream os;
  json::Writer w(os);
  // Pretty outer object, compact inner object — the BenchReport layout.
  w.begin_object(json::Writer::Style::kPretty)
      .key("run")
      .begin_object()
      .member("suite", "smoke")
      .end_object()
      .key("cases")
      .begin_array(json::Writer::Style::kPretty)
      .begin_object()
      .member("name", "a")
      .end_object()
      .end_array()
      .end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(),
            "{\n  \"run\": {\"suite\":\"smoke\"},\n  \"cases\": [\n"
            "    {\"name\":\"a\"}\n  ]\n}");
}

TEST(JsonWriter, EscapingRoundTripsThroughTheParser) {
  // Everything the escaper must handle: quotes, backslashes, control
  // characters, tabs/newlines, and multi-byte UTF-8 passthrough.
  const std::string nasty = "a\"b\\c\n\td\r\x01 \xE2\x82\xAC end";
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object().member("s", nasty).end_object();
  const auto parsed = json::Value::parse(os.str());
  EXPECT_EQ(parsed.at("s").as_string(), nasty);
}

TEST(JsonWriter, NumbersRoundTripThroughTheParser) {
  const double values[] = {0.0,    -0.0,   1.0,        2.5,
                           1e-300, 1e300,  1.0 / 3.0,  -123456.789,
                           3e8,    0.1,    1234567890123456.0};
  for (const double v : values) {
    std::ostringstream os;
    json::Writer w(os);
    w.begin_array().value(v).end_array();
    const auto parsed = json::Value::parse(os.str());
    EXPECT_DOUBLE_EQ(parsed.as_array()[0].as_number(), v) << os.str();
  }
}

TEST(JsonWriter, RawSplicesPreRenderedJson) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object().key("metrics").raw(R"({"metrics":[]})").end_object();
  EXPECT_EQ(os.str(), R"({"metrics":{"metrics":[]}})");
}

TEST(JsonWriter, MisuseIsCaught) {
  {
    std::ostringstream os;
    json::Writer w(os);
    w.begin_object();
    // A value directly inside an object (no key first) is a bug.
    EXPECT_THROW(w.value(1), Error);
  }
  {
    std::ostringstream os;
    json::Writer w(os);
    w.begin_array();
    EXPECT_THROW(w.key("k"), Error);  // keys only exist in objects
  }
  {
    std::ostringstream os;
    json::Writer w(os);
    // Non-finite numbers have no JSON representation.
    w.begin_array();
    EXPECT_THROW(w.value(std::nan("")), Error);
    EXPECT_THROW(w.value(std::numeric_limits<double>::infinity()), Error);
  }
  {
    std::ostringstream os;
    json::Writer w(os);
    w.begin_object().end_object();
    EXPECT_TRUE(w.complete());
    EXPECT_THROW(w.value(1), Error);  // document already finished
  }
}

}  // namespace
}  // namespace codesign
