// Tests for grouped-query attention support (num_kv_heads).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/forward.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/inference.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"

namespace codesign::tfm {
namespace {

TransformerConfig gqa_cfg(std::int64_t kv) {
  TransformerConfig c = model_by_name("llama2-7b");  // a = 32
  c.num_kv_heads = kv;
  return c;
}

TEST(Gqa, DefaultIsFullMultiHead) {
  const auto& c = model_by_name("gpt3-2.7b");
  EXPECT_EQ(c.num_kv_heads, 0);
  EXPECT_EQ(c.kv_heads(), 32);
  EXPECT_EQ(c.qkv_width(), 3 * 2560);
}

TEST(Gqa, QkvWidthShrinks) {
  const auto c = gqa_cfg(8);
  // h + 2 * 8 * 128 = 4096 + 2048.
  EXPECT_EQ(c.qkv_width(), 4096 + 2 * 8 * 128);
  EXPECT_EQ(qkv_gemm(c).n, 4096 + 2048);
}

TEST(Gqa, ScoreAndAovShapesUnchanged) {
  // Every query head still attends over the full context.
  const auto mha = gqa_cfg(0);
  const auto gqa = gqa_cfg(8);
  EXPECT_EQ(attention_score_bmm(mha), attention_score_bmm(gqa));
  EXPECT_EQ(attention_over_value_bmm(mha), attention_over_value_bmm(gqa));
}

TEST(Gqa, ParameterCountShrinks) {
  const auto mha = gqa_cfg(0);
  const auto gqa = gqa_cfg(8);
  const auto delta = exact_param_count(mha) - exact_param_count(gqa);
  // Per layer: (2h - 2·kv·d) columns of the (h, ·) QKV matrix + biases.
  const std::int64_t per_layer = (2 * 4096 - 2 * 8 * 128) * (4096 + 1);
  EXPECT_EQ(delta, 32 * per_layer);
}

TEST(Gqa, Llama70bUsesEightGroups) {
  const auto& c = model_by_name("llama2-70b");
  EXPECT_EQ(c.num_kv_heads, 8);
  EXPECT_EQ(c.kv_heads(), 8);
  EXPECT_EQ(c.head_dim(), 128);
  // ~69B parameters with GQA (would be ~75B with full MHA).
  const auto p = static_cast<double>(exact_param_count(c));
  EXPECT_NEAR(p / 69e9, 1.0, 0.03);
}

TEST(Gqa, KvCacheTrafficShrinks) {
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  const auto mha = estimate_inference(gqa_cfg(0), sim);
  const auto gqa = estimate_inference(gqa_cfg(8), sim);
  EXPECT_NEAR(gqa.kv_bytes_avg, mha.kv_bytes_avg / 4.0, 1.0);
  EXPECT_LT(gqa.per_token_time, mha.per_token_time);
}

TEST(Gqa, ValidationRules) {
  TransformerConfig c = gqa_cfg(8);
  EXPECT_NO_THROW(c.validate());
  c.num_kv_heads = 33;  // exceeds a = 32
  EXPECT_THROW(c.validate(), ConfigError);
  c.num_kv_heads = 7;  // 32 % 7 != 0
  EXPECT_THROW(c.validate(), ConfigError);
  c.num_kv_heads = -1;
  EXPECT_THROW(c.validate(), ConfigError);
  // t must divide kv heads.
  c = gqa_cfg(8).with_tensor_parallel(16).with_vocab(32000);
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(Gqa, ExecutableForwardRejectsGqa) {
  TransformerConfig c;
  c.name = "tiny-gqa";
  c.hidden_size = 32;
  c.num_heads = 4;
  c.num_kv_heads = 2;
  c.num_layers = 1;
  c.seq_len = 8;
  c.microbatch = 1;
  c.vocab_size = 64;
  EXPECT_THROW(TransformerModel::random_init(c), Error);
}

TEST(Gqa, TensorParallelQkvWidth) {
  const auto c = gqa_cfg(8).with_tensor_parallel(4).with_vocab(32000);
  EXPECT_EQ(qkv_gemm(c).n, (4096 + 2048) / 4);
}

}  // namespace
}  // namespace codesign::tfm
