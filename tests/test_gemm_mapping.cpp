// Tests for transformer/gemm_mapping.hpp — Table II, exactly.
#include "transformer/gemm_mapping.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "transformer/model_zoo.hpp"

namespace codesign::tfm {
namespace {

using gemm::GemmProblem;

TransformerConfig cfg(std::int64_t t = 1) {
  TransformerConfig c = model_by_name("gpt3-2.7b");
  c.microbatch = 4;
  if (t > 1) {
    c = c.with_tensor_parallel(t).with_vocab(50304);  // v divisible by t
  }
  return c;
}

TEST(Mapping, QkvTransformShape) {
  // (b·s, h) × (h, 3h/t)
  const GemmProblem p = qkv_gemm(cfg());
  EXPECT_EQ(p.m, 4 * 2048);
  EXPECT_EQ(p.n, 3 * 2560);
  EXPECT_EQ(p.k, 2560);
  EXPECT_EQ(p.batch, 1);
}

TEST(Mapping, AttentionScoreShape) {
  // b·a/t batched (s, h/a) × (h/a, s)
  const GemmProblem p = attention_score_bmm(cfg());
  EXPECT_EQ(p.batch, 4 * 32);
  EXPECT_EQ(p.m, 2048);
  EXPECT_EQ(p.n, 2048);
  EXPECT_EQ(p.k, 80);
}

TEST(Mapping, AttentionOverValueShape) {
  // b·a/t batched (s, s) × (s, h/a)
  const GemmProblem p = attention_over_value_bmm(cfg());
  EXPECT_EQ(p.batch, 4 * 32);
  EXPECT_EQ(p.m, 2048);
  EXPECT_EQ(p.n, 80);
  EXPECT_EQ(p.k, 2048);
}

TEST(Mapping, ProjectionShape) {
  // (b·s, h/t) × (h/t, h)
  const GemmProblem p = post_attn_projection_gemm(cfg());
  EXPECT_EQ(p.m, 8192);
  EXPECT_EQ(p.n, 2560);
  EXPECT_EQ(p.k, 2560);
}

TEST(Mapping, MlpShapes) {
  const GemmProblem up = mlp_up_gemm(cfg());
  EXPECT_EQ(up.m, 8192);
  EXPECT_EQ(up.n, 4 * 2560);
  EXPECT_EQ(up.k, 2560);
  const GemmProblem down = mlp_down_gemm(cfg());
  EXPECT_EQ(down.m, 8192);
  EXPECT_EQ(down.n, 2560);
  EXPECT_EQ(down.k, 4 * 2560);
}

TEST(Mapping, LogitShape) {
  const GemmProblem p = logit_gemm(cfg());
  EXPECT_EQ(p.m, 8192);
  EXPECT_EQ(p.n, 50257);
  EXPECT_EQ(p.k, 2560);
}

TEST(Mapping, TensorParallelDividesShapes) {
  const TransformerConfig c = cfg(4);
  EXPECT_EQ(qkv_gemm(c).n, 3 * 2560 / 4);
  EXPECT_EQ(attention_score_bmm(c).batch, 4 * 32 / 4);
  EXPECT_EQ(attention_score_bmm(c).k, 80);  // head dim unchanged by TP
  EXPECT_EQ(post_attn_projection_gemm(c).k, 2560 / 4);
  EXPECT_EQ(mlp_up_gemm(c).n, 4 * 2560 / 4);
  EXPECT_EQ(mlp_down_gemm(c).k, 4 * 2560 / 4);
  EXPECT_EQ(logit_gemm(c).n, 50304 / 4);
}

TEST(Mapping, ChainabilityOfOperatorShapes) {
  // Output of each operator must be a valid input to the next.
  const TransformerConfig c = cfg();
  const GemmProblem qkv = qkv_gemm(c);
  const GemmProblem score = attention_score_bmm(c);
  const GemmProblem aov = attention_over_value_bmm(c);
  const GemmProblem proj = post_attn_projection_gemm(c);
  const GemmProblem up = mlp_up_gemm(c);
  const GemmProblem down = mlp_down_gemm(c);

  // QKV output (b·s, 3h/t) splits into 3 tensors of (b·a/t) heads × (s, h/a).
  EXPECT_EQ(qkv.m * qkv.n,
            3 * score.batch * score.m * score.k);
  // Score output (b·a/t, s, s) is AOV's left operand.
  EXPECT_EQ(score.batch, aov.batch);
  EXPECT_EQ(score.m, aov.m);
  EXPECT_EQ(score.n, aov.k);
  // AOV output (b·a/t, s, h/a) merges to the projection input (b·s, h/t).
  EXPECT_EQ(aov.batch * aov.m * aov.n, proj.m * proj.k);
  // Projection output feeds the MLP input.
  EXPECT_EQ(proj.m, up.m);
  EXPECT_EQ(proj.n, up.k);
  // MLP up output feeds MLP down.
  EXPECT_EQ(up.n, down.k);
  EXPECT_EQ(down.n, up.k);
}

TEST(Mapping, LayerGemmsStandardCount) {
  // GELU + BMM attention: QKV, score, AOV, proj, up, down = 6 (Table II).
  EXPECT_EQ(layer_gemms(cfg()).size(), 6u);
}

TEST(Mapping, LayerGemmsSwigluCount) {
  TransformerConfig c = cfg();
  c.activation = Activation::kSwiGlu;
  c.mlp_intermediate = 6912;
  EXPECT_EQ(layer_gemms(c).size(), 7u);  // + gate
}

TEST(Mapping, LayerGemmsFlashCount) {
  TransformerConfig c = cfg();
  c.attention = AttentionImpl::kFlash;
  EXPECT_EQ(layer_gemms(c).size(), 4u);  // score/AOV absorbed
}

TEST(Mapping, FlashProblemFields) {
  TransformerConfig c = cfg();
  const auto p = flash_attention_problem(c);
  EXPECT_EQ(p.batch, 4);
  EXPECT_EQ(p.heads, 32);
  EXPECT_EQ(p.seq, 2048);
  EXPECT_EQ(p.head_dim, 80);
  EXPECT_TRUE(p.causal);
}

TEST(Mapping, LayerOpsScheduleOrder) {
  const auto ops = layer_ops(cfg());
  ASSERT_GE(ops.size(), 10u);
  EXPECT_EQ(ops.front().op, LayerOp::kLayerNorm1);
  EXPECT_EQ(ops[1].op, LayerOp::kQkvTransform);
  EXPECT_EQ(ops.back().op, LayerOp::kResidualAdd2);
  // GEMM ops carry problems; non-GEMM ops carry traffic.
  for (const MappedOp& op : ops) {
    if (op.is_gemm()) {
      EXPECT_TRUE(op_is_gemm(op.op)) << op_name(op.op);
      EXPECT_GT(op.flops, 0.0);
    } else if (!op.flash.has_value()) {
      EXPECT_GT(op.elementwise_bytes, 0.0) << op_name(op.op);
    }
  }
}

TEST(Mapping, RotaryAddsOp) {
  TransformerConfig c = cfg();
  c.pos_embedding = PosEmbedding::kRotary;
  const auto ops = layer_ops(c);
  bool has_rotary = false;
  for (const auto& op : ops) has_rotary |= op.op == LayerOp::kRotaryEmbedding;
  EXPECT_TRUE(has_rotary);
}

TEST(Mapping, FlashScheduleHasNoSoftmax) {
  TransformerConfig c = cfg();
  c.attention = AttentionImpl::kFlash;
  for (const auto& op : layer_ops(c)) {
    EXPECT_NE(op.op, LayerOp::kSoftmax);
    EXPECT_NE(op.op, LayerOp::kAttentionScore);
    EXPECT_NE(op.op, LayerOp::kAttentionOverValue);
  }
}

TEST(Mapping, ModelLevelOps) {
  const auto ops = model_level_ops(cfg());
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].op, LayerOp::kEmbeddingLookup);
  EXPECT_EQ(ops[1].op, LayerOp::kFinalLayerNorm);
  EXPECT_EQ(ops[2].op, LayerOp::kLogitProjection);
  EXPECT_TRUE(ops[2].is_gemm());
}

TEST(Mapping, OpNamesAndPredicate) {
  EXPECT_STREQ(op_name(LayerOp::kQkvTransform), "qkv_transform");
  EXPECT_TRUE(op_is_gemm(LayerOp::kMlpUp));
  EXPECT_FALSE(op_is_gemm(LayerOp::kSoftmax));
  EXPECT_FALSE(op_is_gemm(LayerOp::kFlashAttention));
}

TEST(Mapping, InvalidConfigRejected) {
  TransformerConfig c = cfg();
  c.num_heads = 48;  // h % a != 0
  EXPECT_THROW(qkv_gemm(c), Error);
  EXPECT_THROW(layer_gemms(c), Error);
}

}  // namespace
}  // namespace codesign::tfm
