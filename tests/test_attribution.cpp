// Tests for the attribution & sensitivity layer (PR 9's tentpole):
//   * gemm::bound_breakdown is a complete decomposition (fractions sum to
//     1) and is bit-identical between the scalar estimate() path and the
//     batched estimate_many() path — including a shared cache hammered by
//     8 threads and the kFixedLargest degenerate-tile corner,
//   * tfm::attribute_layer / attribute_model reproduce analyze_layer /
//     analyze_model totals bit-for-bit and their rollups are internally
//     consistent (shares, branch split, bound histogram),
//   * advisor::sensitivity_probe is deterministic, and a sensitivity-
//     enabled search attaches the identical round at any thread count,
//   * the versioned attribution report is byte-stable, parseable JSON in
//     both pretty and compact (serve) forms.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "advisor/attribution_report.hpp"
#include "advisor/search.hpp"
#include "common/json.hpp"
#include "gemmsim/kernel_model.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/attribution.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

using gemm::BoundBreakdown;
using gemm::GemmProblem;
using gemm::GemmSimulator;
using gemm::KernelEstimate;
using gemm::TilePolicy;

/// A shape mix that hits every roof: square compute-bound GEMMs, skinny
/// memory-bound BMMs, tiny launch-dominated problems, padding-heavy odd
/// sizes, and an accumulate_into_c case (doubles the C traffic).
std::vector<GemmProblem> problem_mix() {
  std::vector<GemmProblem> problems = {
      GemmProblem::gemm(4096, 4096, 4096),
      GemmProblem::gemm(8192, 7680, 2560),
      GemmProblem::bmm(128, 2048, 2048, 80),
      GemmProblem::bmm(128, 2048, 80, 2048),
      GemmProblem::gemm(8, 8, 8),
      GemmProblem::gemm(1, 50257, 2560),
      GemmProblem::gemm(257, 129, 65),
      GemmProblem::gemm(2048, 2048, 64),
  };
  GemmProblem acc = GemmProblem::gemm(4096, 2560, 2560);
  acc.accumulate_into_c = true;
  problems.push_back(acc);
  return problems;
}

void expect_complete(const BoundBreakdown& b, const std::string& what) {
  for (const double f : {b.compute, b.memory, b.launch, b.tile_waste,
                         b.wave_tail}) {
    EXPECT_GE(f, 0.0) << what;
    EXPECT_LE(f, 1.0 + 1e-12) << what;
  }
  const double total =
      b.compute + b.memory + b.launch + b.tile_waste + b.wave_tail;
  EXPECT_NEAR(total, 1.0, 1e-9) << what;
}

TEST(BoundBreakdown, FractionsFormACompleteDecomposition) {
  for (const TilePolicy policy :
       {TilePolicy::kAuto, TilePolicy::kFixedLargest}) {
    const GemmSimulator sim = GemmSimulator::for_gpu("a100", policy);
    for (const GemmProblem& p : problem_mix()) {
      const KernelEstimate e = sim.estimate(p);
      const BoundBreakdown b = gemm::bound_breakdown(e);
      EXPECT_EQ(b.bound, e.bound);
      expect_complete(b, p.to_string());
    }
  }
}

TEST(BoundBreakdown, ZeroTimeEstimateYieldsAllZeros) {
  const BoundBreakdown b = gemm::bound_breakdown(KernelEstimate{});
  EXPECT_EQ(b.compute + b.memory + b.launch + b.tile_waste + b.wave_tail,
            0.0);
}

/// The roof that limits the estimate absorbs the quantization terms; the
/// non-limiting pipeline contributes nothing (roofline overlap).
TEST(BoundBreakdown, LimitingRoofOwnsTheQuantizationTerms) {
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  const BoundBreakdown compute =
      gemm::bound_breakdown(sim.estimate(GemmProblem::gemm(4096, 4096, 4096)));
  EXPECT_EQ(compute.bound, gemm::Bound::kCompute);
  EXPECT_EQ(compute.memory, 0.0);
  const BoundBreakdown memory = gemm::bound_breakdown(
      sim.estimate(GemmProblem::bmm(128, 2048, 2048, 80)));
  EXPECT_EQ(memory.bound, gemm::Bound::kMemory);
  EXPECT_EQ(memory.compute, 0.0);
  EXPECT_EQ(memory.wave_tail, 0.0);  // wave quantization is a compute effect
}

void expect_bit_identical(const BoundBreakdown& a, const BoundBreakdown& b,
                          const std::string& what) {
  // operator== would do, but spelled out so a failure names the field.
  EXPECT_EQ(a.bound, b.bound) << what;
  EXPECT_EQ(a.compute, b.compute) << what;
  EXPECT_EQ(a.memory, b.memory) << what;
  EXPECT_EQ(a.launch, b.launch) << what;
  EXPECT_EQ(a.tile_waste, b.tile_waste) << what;
  EXPECT_EQ(a.wave_tail, b.wave_tail) << what;
}

TEST(BoundBreakdown, ScalarAndBatchedPathsAreBitIdentical) {
  for (const TilePolicy policy :
       {TilePolicy::kAuto, TilePolicy::kFixedLargest}) {
    const GemmSimulator sim = GemmSimulator::for_gpu("a100", policy);
    const std::vector<GemmProblem> problems = problem_mix();
    std::vector<KernelEstimate> batched(problems.size());
    sim.estimate_many(problems, batched);
    for (std::size_t i = 0; i < problems.size(); ++i) {
      expect_bit_identical(gemm::bound_breakdown(sim.estimate(problems[i])),
                           gemm::bound_breakdown(batched[i]),
                           problems[i].to_string());
    }
  }
}

TEST(BoundBreakdown, SharedCacheEightThreadLockstep) {
  GemmSimulator sim = GemmSimulator::for_gpu("a100");
  sim.enable_cache();
  const std::vector<GemmProblem> problems = problem_mix();
  // Scalar reference first — the batched workers below will mostly hit the
  // cache those calls populated, which must not change a single bit.
  std::vector<BoundBreakdown> reference;
  reference.reserve(problems.size());
  for (const GemmProblem& p : problems) {
    reference.push_back(gemm::bound_breakdown(sim.estimate(p)));
  }
  constexpr int kThreads = 8;
  std::vector<std::vector<BoundBreakdown>> results(
      kThreads, std::vector<BoundBreakdown>(problems.size()));
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      GemmSimulator::BatchWorkspace workspace;
      std::vector<KernelEstimate> out(problems.size());
      sim.estimate_many(problems, out, workspace);
      for (std::size_t i = 0; i < problems.size(); ++i) {
        results[static_cast<std::size_t>(t)][i] =
            gemm::bound_breakdown(out[i]);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < problems.size(); ++i) {
      expect_bit_identical(reference[i],
                           results[static_cast<std::size_t>(t)][i],
                           problems[i].to_string());
    }
  }
}

/// kFixedLargest always runs the largest tile, so a tiny problem is almost
/// entirely overhead: one tile on a many-SM GPU is a partial wave
/// (wave_tail), the padded math is tile_waste, and the launch floor is a
/// fixed cost. Useful compute must be negligible, and the breakdown must
/// still match the batched path bit for bit.
TEST(BoundBreakdown, FixedLargestDegenerateTile) {
  const GemmSimulator sim =
      GemmSimulator::for_gpu("a100", TilePolicy::kFixedLargest);
  const GemmProblem tiny = GemmProblem::gemm(8, 8, 8);
  const KernelEstimate e = sim.estimate(tiny);
  const BoundBreakdown b = gemm::bound_breakdown(e);
  expect_complete(b, tiny.to_string());
  EXPECT_GT(b.launch + b.tile_waste + b.wave_tail, 0.99)
      << "an 8x8x8 GEMM on the largest tile is nearly all overhead";
  EXPECT_LT(b.compute, 0.01) << "useful math is 512 FLOPs — negligible";
  std::vector<KernelEstimate> batched(1);
  sim.estimate_many(std::vector<GemmProblem>{tiny}, batched);
  expect_bit_identical(b, gemm::bound_breakdown(batched[0]),
                       tiny.to_string());
}

// ---------------------------------------------------------------------
// Layer / model rollups.

TEST(Attribution, LayerTotalsMatchAnalyzeLayerBitForBit) {
  for (const char* model : {"gpt3-2.7b", "llama2-7b", "gpt3-175b"}) {
    const tfm::TransformerConfig cfg = tfm::model_by_name(model);
    const GemmSimulator sim = GemmSimulator::for_gpu("a100");
    const tfm::LayerAttribution a = tfm::attribute_layer(cfg, sim);
    const tfm::LayerLatencyReport r = tfm::analyze_layer(cfg, sim);
    EXPECT_EQ(a.total_time, r.total_time) << model;
    // The branch/gemm splits accumulate the same op times in a different
    // order, so these identities hold to rounding, not bit-exactly.
    EXPECT_NEAR(a.gemm_time + a.non_gemm_time, a.total_time,
                1e-12 * a.total_time) << model;
    EXPECT_NEAR(a.attention_time + a.mlp_time + a.other_time, a.total_time,
                1e-12 * a.total_time) << model;
    expect_complete(a.breakdown, model);
    // Histogram covers every scheduled op, and its time covers the layer.
    const std::uint64_t ops =
        a.histogram.count[0] + a.histogram.count[1] + a.histogram.count[2];
    EXPECT_EQ(ops, tfm::layer_schedule(cfg).size()) << model;
    EXPECT_NEAR(a.histogram.time[0] + a.histogram.time[1] +
                    a.histogram.time[2],
                a.total_time, 1e-15) << model;
    // Family shares are fractions of GEMM time and sum to 1.
    double share = 0.0;
    for (const tfm::FamilyAttribution& f : a.gemms) share += f.share;
    EXPECT_NEAR(share, 1.0, 1e-12) << model;
  }
}

TEST(Attribution, ModelTotalsMatchAnalyzeModelBitForBit) {
  const tfm::TransformerConfig cfg = tfm::model_by_name("gpt3-2.7b");
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  const tfm::ModelAttribution m = tfm::attribute_model(cfg, sim);
  const tfm::ModelLatencyReport r = tfm::analyze_model(cfg, sim);
  EXPECT_EQ(m.total_time, r.total_time);
  expect_complete(m.breakdown, cfg.name);
  // The model family rollup scales each layer family by L and adds the
  // logit projection as its own family.
  ASSERT_EQ(m.gemms.size(), m.layer.gemms.size() + 1);
  for (std::size_t i = 0; i < m.layer.gemms.size(); ++i) {
    EXPECT_EQ(m.gemms[i].count,
              m.layer.gemms[i].count *
                  static_cast<std::uint64_t>(cfg.num_layers));
    EXPECT_EQ(m.gemms[i].time,
              static_cast<double>(cfg.num_layers) * m.layer.gemms[i].time);
  }
  EXPECT_EQ(m.gemms.back().op, tfm::LayerOp::kLogitProjection);
  EXPECT_EQ(m.gemms.back().time, m.logit_time);
  double share = 0.0;
  for (const tfm::FamilyAttribution& f : m.gemms) share += f.share;
  EXPECT_NEAR(share, 1.0, 1e-12);
}

TEST(Attribution, FlashModelRollsTheFusedOpIntoAttention) {
  // With attn=flash the fused op must appear exactly once in the family
  // list and land in the attention branch.
  tfm::TransformerConfig cfg = tfm::model_by_name("llama2-7b");
  cfg.attention = tfm::AttentionImpl::kFlash;
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  const tfm::LayerAttribution a = tfm::attribute_layer(cfg, sim);
  int flash_families = 0;
  for (const tfm::FamilyAttribution& f : a.gemms) {
    if (f.op == tfm::LayerOp::kFlashAttention) ++flash_families;
  }
  EXPECT_EQ(flash_families, 1);
  EXPECT_EQ(tfm::op_branch(tfm::LayerOp::kFlashAttention),
            tfm::LayerBranch::kAttention);
  EXPECT_GT(a.attention_time, 0.0);
}

// ---------------------------------------------------------------------
// Sensitivity probes.

TEST(Sensitivity, ProbeIsDeterministicAndPure) {
  const tfm::TransformerConfig cfg = tfm::model_by_name("gpt3-2.7b");
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  const auto first = advisor::sensitivity_probe(cfg, sim);
  const auto second = advisor::sensitivity_probe(cfg, sim);
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 5u);
  EXPECT_EQ(first[0].dimension, "heads");
  EXPECT_EQ(first[1].dimension, "hidden");
  EXPECT_EQ(first[2].dimension, "tensor_parallel");
  EXPECT_EQ(first[3].dimension, "vocab");
  EXPECT_EQ(first[4].dimension, "tile_policy");
  for (const advisor::DimensionSensitivity& s : first) {
    EXPECT_GT(s.base_time, 0.0) << s.dimension;
    if (s.probed) {
      EXPECT_GT(s.probe_time, 0.0) << s.dimension;
      EXPECT_EQ(s.delta_frac,
                (s.probe_time - s.base_time) / s.base_time) << s.dimension;
    } else {
      EXPECT_FALSE(s.note.empty()) << s.dimension;
    }
  }
}

TEST(Sensitivity, SearchAttachesTheSameRoundAtAnyThreadCount) {
  const tfm::TransformerConfig cfg = tfm::model_by_name("gpt3-2.7b");
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  advisor::SearchOptions one;
  one.sensitivity = true;
  one.threads = 1;
  advisor::SearchOptions eight = one;
  eight.threads = 8;
  const advisor::SearchOutcome a = advisor::run_shape_search(
      advisor::SearchMode::kJoint, cfg, sim, 0.1, 0, one);
  const advisor::SearchOutcome b = advisor::run_shape_search(
      advisor::SearchMode::kJoint, cfg, sim, 0.1, 0, eight);
  EXPECT_FALSE(a.sensitivity.empty());
  EXPECT_EQ(a.sensitivity, b.sensitivity);
  EXPECT_EQ(a.sensitivity, advisor::sensitivity_probe(cfg, sim));
  // Off by default: a plain search must not pay for the probes.
  const advisor::SearchOutcome plain = advisor::run_shape_search(
      advisor::SearchMode::kJoint, cfg, sim);
  EXPECT_TRUE(plain.sensitivity.empty());
}

// ---------------------------------------------------------------------
// The versioned report.

TEST(AttributionReport, ByteStableAndParseable) {
  const tfm::TransformerConfig cfg = tfm::model_by_name("gpt3-2.7b");
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  const auto sensitivity = advisor::sensitivity_probe(cfg, sim);
  const std::string report =
      advisor::attribution_report(cfg, sim, sensitivity);
  EXPECT_EQ(report, advisor::attribution_report(cfg, sim, sensitivity));
  const json::Value doc = json::Value::parse(report);
  EXPECT_EQ(doc.at("report").as_string(), "codesign.attribution");
  EXPECT_EQ(static_cast<int>(doc.at("version").as_number()),
            advisor::kAttributionReportVersion);
  EXPECT_EQ(doc.at("sensitivity").as_array().size(), sensitivity.size());
  const json::Value& breakdown = doc.at("breakdown");
  const double total = breakdown.at("compute").as_number() +
                       breakdown.at("memory").as_number() +
                       breakdown.at("launch").as_number() +
                       breakdown.at("tile_waste").as_number() +
                       breakdown.at("wave_tail").as_number();
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AttributionReport, CompactFormIsOneProtocolFrame) {
  const tfm::TransformerConfig cfg = tfm::model_by_name("gpt3-350m");
  const GemmSimulator sim = GemmSimulator::for_gpu("a100");
  const std::string compact =
      advisor::attribution_report(cfg, sim, {}, /*compact=*/true);
  EXPECT_EQ(compact.find('\n'), std::string::npos)
      << "a serve attribution block must not break line framing";
  const json::Value doc = json::Value::parse(compact);
  // Same content as the pretty form, modulo whitespace.
  const json::Value pretty =
      json::Value::parse(advisor::attribution_report(cfg, sim, {}));
  EXPECT_EQ(json::dump(doc), json::dump(pretty));
}

}  // namespace
}  // namespace codesign
