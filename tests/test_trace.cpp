// Tests for transformer/trace.hpp — chrome-trace export.
#include "transformer/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::tfm {
namespace {

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

std::size_t count_occurrences(const std::string& hay, const std::string& ndl) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(ndl); pos != std::string::npos;
       pos = hay.find(ndl, pos + ndl.size())) {
    ++n;
  }
  return n;
}

TEST(Trace, StructureAndEventCount) {
  const auto& cfg = model_by_name("gpt3-2.7b");
  const std::string json = trace_json(cfg, sim());
  EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.back(), '}');
  // One ph=X event per operator of one layer.
  const auto layer = analyze_layer(cfg, sim());
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), layer.ops.size());
  // GEMMs on tid 1, non-GEMMs on tid 2.
  EXPECT_GT(count_occurrences(json, "\"tid\":1"), 0u);
  EXPECT_GT(count_occurrences(json, "\"tid\":2"), 0u);
}

TEST(Trace, MultiLayerRepeatsSchedule) {
  const auto& cfg = model_by_name("gpt3-125m");
  TraceOptions opt;
  opt.layers = 3;
  const std::string json = trace_json(cfg, sim(), opt);
  const auto layer = analyze_layer(cfg, sim());
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 3 * layer.ops.size());
  EXPECT_NE(json.find("L0.qkv_transform"), std::string::npos);
  EXPECT_NE(json.find("L2.mlp_ff_to_h"), std::string::npos);
}

TEST(Trace, ModelLevelOpsBracketLayers) {
  const auto& cfg = model_by_name("gpt3-125m");
  TraceOptions opt;
  opt.include_model_level = true;
  const std::string json = trace_json(cfg, sim(), opt);
  const std::size_t embed = json.find("embedding_lookup");
  const std::size_t qkv = json.find("L0.qkv_transform");
  const std::size_t logit = json.find("logit_projection");
  EXPECT_NE(embed, std::string::npos);
  EXPECT_NE(logit, std::string::npos);
  EXPECT_LT(embed, qkv);
  EXPECT_GT(logit, qkv);
}

TEST(Trace, TimestampsAreMonotone) {
  const auto& cfg = model_by_name("gpt3-125m");
  const std::string json = trace_json(cfg, sim());
  // Extract successive "ts": values and check monotone non-decreasing.
  double prev = -1.0;
  std::size_t pos = 0;
  int found = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    const double ts = std::strtod(json.c_str() + pos, nullptr);
    EXPECT_GE(ts, prev);
    prev = ts;
    ++found;
  }
  EXPECT_GT(found, 5);
}

TEST(Trace, MetadataRecorded) {
  const auto& cfg = model_by_name("gpt3-2.7b");
  const std::string json = trace_json(cfg, sim());
  EXPECT_NE(json.find("\"gpu\":\"a100-40gb\""), std::string::npos);
  EXPECT_NE(json.find("gpt3-2.7b"), std::string::npos);
}

TEST(Trace, Validation) {
  TraceOptions opt;
  opt.layers = 0;
  EXPECT_THROW(trace_json(model_by_name("gpt3-125m"), sim(), opt), Error);
}

}  // namespace
}  // namespace codesign::tfm
