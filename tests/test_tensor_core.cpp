// Tests for gpuarch/tensor_core.hpp — the alignment-efficiency model that
// drives the paper's power-of-two takeaways.
#include "gpuarch/tensor_core.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/math_util.hpp"

namespace codesign::gpu {
namespace {

const GpuSpec& a100() { return gpu_by_name("a100"); }
const GpuSpec& v100() { return gpu_by_name("v100"); }

TEST(DimAlignment, FullEfficiencyAt64ElementsOnA100) {
  // 64 fp16 elements = 128 bytes = the A100 requirement.
  EXPECT_DOUBLE_EQ(dim_alignment_efficiency(64, DType::kFP16, a100()), 1.0);
  EXPECT_DOUBLE_EQ(dim_alignment_efficiency(128, DType::kFP16, a100()), 1.0);
  EXPECT_DOUBLE_EQ(dim_alignment_efficiency(2560, DType::kFP16, a100()), 1.0);
}

TEST(DimAlignment, NoFurtherBenefitBeyond64) {
  // Paper §VI-B: "no further benefit to going beyond 64".
  EXPECT_DOUBLE_EQ(dim_alignment_efficiency(64, DType::kFP16, a100()),
                   dim_alignment_efficiency(4096, DType::kFP16, a100()));
}

TEST(DimAlignment, PaperHeadDimExamples) {
  // GPT-3 2.7B's h/a = 80 (granule 16 elems) is worse than C2's 64 and
  // better than C1's 40 (granule 8 elems).
  const double e80 = dim_alignment_efficiency(80, DType::kFP16, a100());
  const double e64 = dim_alignment_efficiency(64, DType::kFP16, a100());
  const double e40 = dim_alignment_efficiency(40, DType::kFP16, a100());
  EXPECT_LT(e80, e64);
  EXPECT_LT(e40, e80);
}

TEST(DimAlignment, OddDimensionsWorst) {
  const double odd = dim_alignment_efficiency(50257, DType::kFP16, a100());
  const double even = dim_alignment_efficiency(50258, DType::kFP16, a100());
  const double padded = dim_alignment_efficiency(50304, DType::kFP16, a100());
  EXPECT_LE(odd, even);
  EXPECT_LT(even, padded);
  EXPECT_DOUBLE_EQ(padded, 1.0);
}

// Property: efficiency is monotone non-decreasing in the power-of-two
// granule of the dimension.
class AlignmentMonotonic : public ::testing::TestWithParam<const char*> {};

TEST_P(AlignmentMonotonic, MonotoneInGranule) {
  const GpuSpec& g = gpu_by_name(GetParam());
  double prev = 0.0;
  for (std::int64_t d : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const double e = dim_alignment_efficiency(d, DType::kFP16, g);
    EXPECT_GE(e, prev) << "dim " << d << " on " << g.id;
    EXPECT_GT(e, 0.0);
    EXPECT_LE(e, 1.0);
    prev = e;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGpus, AlignmentMonotonic,
                         ::testing::Values("a100", "v100", "h100", "mi250x"));

TEST(DimAlignment, V100SaturatesAt8Elements) {
  // 8 fp16 elements = 16 bytes = the V100 requirement (§III-B): h/a = 80
  // is already fully aligned on Volta though not on Ampere.
  EXPECT_DOUBLE_EQ(dim_alignment_efficiency(8, DType::kFP16, v100()), 1.0);
  EXPECT_DOUBLE_EQ(dim_alignment_efficiency(80, DType::kFP16, v100()), 1.0);
  EXPECT_LT(dim_alignment_efficiency(80, DType::kFP16, a100()), 1.0);
}

TEST(DimAlignment, DtypeChangesByteGranule) {
  // 32 fp32 elements = 128 bytes: full efficiency on A100 even though 32
  // fp16 elements would not be.
  EXPECT_DOUBLE_EQ(dim_alignment_efficiency(32, DType::kFP32, a100()), 1.0);
  EXPECT_LT(dim_alignment_efficiency(32, DType::kFP16, a100()), 1.0);
}

TEST(TensorCoreEligible, MinimumGranule) {
  // A100 minimum granule is 16 bytes = 8 fp16 elements.
  EXPECT_TRUE(dim_tensor_core_eligible(8, DType::kFP16, a100()));
  EXPECT_TRUE(dim_tensor_core_eligible(40, DType::kFP16, a100()));
  EXPECT_FALSE(dim_tensor_core_eligible(4, DType::kFP16, a100()));
  EXPECT_FALSE(dim_tensor_core_eligible(50257, DType::kFP16, a100()));
}

TEST(AlignmentEfficiency, CombinedUsesWorstDimension) {
  const auto all64 = alignment_efficiency(64, 64, 64, DType::kFP16, a100());
  EXPECT_DOUBLE_EQ(all64.combined, 1.0);
  EXPECT_TRUE(all64.tensor_cores);

  const auto one_bad = alignment_efficiency(2048, 2048, 80, DType::kFP16, a100());
  EXPECT_DOUBLE_EQ(one_bad.combined, one_bad.k);  // sqrt(1.0) leaves min
  EXPECT_LT(one_bad.combined, 1.0);

  const auto two_bad = alignment_efficiency(2048, 80, 80, DType::kFP16, a100());
  EXPECT_LT(two_bad.combined, one_bad.combined);  // compounding
}

TEST(AlignmentEfficiency, Pow2FieldsReported) {
  const auto e = alignment_efficiency(2048, 80, 40, DType::kFP16, a100());
  EXPECT_EQ(e.pow2_m, 2048);
  EXPECT_EQ(e.pow2_n, 16);
  EXPECT_EQ(e.pow2_k, 8);
}

TEST(AlignmentEfficiency, OddDimensionDisablesTensorCores) {
  const auto e = alignment_efficiency(8192, 50257, 2560, DType::kFP16, a100());
  EXPECT_FALSE(e.tensor_cores);
  const auto padded =
      alignment_efficiency(8192, 50304, 2560, DType::kFP16, a100());
  EXPECT_TRUE(padded.tensor_cores);
}

TEST(AlignmentEfficiency, ThrowsOnNonPositiveDims) {
  EXPECT_THROW(alignment_efficiency(0, 64, 64, DType::kFP16, a100()),
               Error);
  EXPECT_THROW(dim_alignment_efficiency(-4, DType::kFP16, a100()), Error);
}

TEST(EffectiveMathRate, TensorVsFallback) {
  const auto good = alignment_efficiency(4096, 4096, 4096, DType::kFP16, a100());
  const double tc_rate = effective_math_rate(good, DType::kFP16, a100());
  EXPECT_DOUBLE_EQ(tc_rate, a100().achievable_tensor_flops(DType::kFP16));

  const auto bad = alignment_efficiency(4096, 50257, 4096, DType::kFP16, a100());
  const double fallback = effective_math_rate(bad, DType::kFP16, a100());
  EXPECT_LT(fallback, tc_rate * 0.25);
  EXPECT_GT(fallback, 0.0);
}

TEST(EffectiveBandwidth, DegradesWithMisalignment) {
  const auto good = alignment_efficiency(2048, 2048, 64, DType::kFP16, a100());
  const auto bad = alignment_efficiency(2048, 2048, 80, DType::kFP16, a100());
  EXPECT_DOUBLE_EQ(effective_bandwidth(good, a100()),
                   a100().achievable_bandwidth());
  EXPECT_LT(effective_bandwidth(bad, a100()),
            effective_bandwidth(good, a100()));
  EXPECT_GT(effective_bandwidth(bad, a100()),
            0.2 * a100().achievable_bandwidth());
}

TEST(EffectiveMathRate, ScalesWithCombined) {
  const auto e80 = alignment_efficiency(2048, 2048, 80, DType::kFP16, a100());
  const double r = effective_math_rate(e80, DType::kFP16, a100());
  EXPECT_NEAR(r, a100().achievable_tensor_flops(DType::kFP16) * e80.combined,
              1.0);
}

}  // namespace
}  // namespace codesign::gpu
