// Tests for common/cli.hpp — the flag parser every bench binary uses.
#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace codesign {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, EqualsSyntax) {
  const CliArgs a = parse({"--gpu=a100", "--heads=32"});
  EXPECT_EQ(a.get_string("gpu", ""), "a100");
  EXPECT_EQ(a.get_int("heads", 0), 32);
}

TEST(CliArgs, SpaceSyntax) {
  const CliArgs a = parse({"--gpu", "v100", "--b", "4"});
  EXPECT_EQ(a.get_string("gpu", ""), "v100");
  EXPECT_EQ(a.get_int("b", 0), 4);
}

TEST(CliArgs, BooleanSwitch) {
  const CliArgs a = parse({"--verbose", "--csv"});
  EXPECT_TRUE(a.get_bool("verbose", false));
  EXPECT_TRUE(a.get_bool("csv", false));
  EXPECT_FALSE(a.get_bool("absent", false));
  EXPECT_TRUE(a.get_bool("absent", true));
}

TEST(CliArgs, BoolValues) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x", false));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_THROW(parse({"--x=maybe"}).get_bool("x", true), Error);
}

TEST(CliArgs, Defaults) {
  const CliArgs a = parse({});
  EXPECT_EQ(a.get_string("gpu", "a100"), "a100");
  EXPECT_EQ(a.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("f", 2.5), 2.5);
}

TEST(CliArgs, DoubleValues) {
  EXPECT_DOUBLE_EQ(parse({"--frac=0.25"}).get_double("frac", 0), 0.25);
  EXPECT_THROW(parse({"--frac=abc"}).get_double("frac", 0), Error);
}

TEST(CliArgs, IntList) {
  const CliArgs a = parse({"--heads=8,16,32"});
  const auto v = a.get_int_list("heads", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 8);
  EXPECT_EQ(v[2], 32);
  // Default when the flag is absent.
  const auto d = a.get_int_list("absent", {1, 2});
  ASSERT_EQ(d.size(), 2u);
}

TEST(CliArgs, Positional) {
  const CliArgs a = parse({"first", "--k=v", "second"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "first");
  EXPECT_EQ(a.positional()[1], "second");
}

TEST(CliArgs, Has) {
  const CliArgs a = parse({"--x=1"});
  EXPECT_TRUE(a.has("x"));
  EXPECT_FALSE(a.has("y"));
}

TEST(CliArgs, MalformedFlags) {
  EXPECT_THROW(parse({"--"}), Error);
  EXPECT_THROW(parse({"--name="}), Error);
}

TEST(CliArgs, FlagNames) {
  const CliArgs a = parse({"--b=1", "--a=2"});
  const auto names = a.flag_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // map order: sorted
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace codesign
