// Tests for the observability layer (src/obs): metric semantics, snapshot
// export, event recording, and — most importantly — the two contracts the
// rest of the repo relies on: instrumentation never changes simulator
// results (lockstep), and deterministic series / simulated-clock traces are
// byte-identical at any thread count.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "advisor/search.hpp"
#include "common/json.hpp"
#include "gemmsim/kernel_model.hpp"
#include "gemmsim/simulator.hpp"
#include "gemmsim/sm_scheduler.hpp"
#include "gpuarch/gpu_spec.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/profile.hpp"

namespace codesign {
namespace {

using obs::EventRecorder;
using obs::MetricsRegistry;
using obs::Stability;
using obs::TraceEvent;

/// Leaves the global observability state the way it found it: disabled,
/// no recorder, zeroed values, origin at 0.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetGlobals(); }
  void TearDown() override { ResetGlobals(); }

  static void ResetGlobals() {
    MetricsRegistry::set_enabled(false);
    EventRecorder::install(nullptr);
    EventRecorder::set_time_origin_us(0.0);
    MetricsRegistry::global().reset_values();
  }
};

TEST_F(ObsTest, CounterAddValueReset) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, RegistryReturnsSameSeriesForSameKey) {
  MetricsRegistry reg;
  obs::Counter& a = reg.counter("x", "tile=256x128");
  obs::Counter& b = reg.counter("x", "tile=256x128");
  obs::Counter& other = reg.counter("x", "tile=128x128");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(other.value(), 0u);
}

TEST_F(ObsTest, StabilityFixedAtCreation) {
  MetricsRegistry reg;
  reg.counter("first", "", Stability::kBestEffort).add(1);
  // A second lookup with a different stability keeps the original tag.
  reg.counter("first", "", Stability::kDeterministic).add(1);
  const auto deterministic = reg.snapshot({.include_best_effort = false});
  EXPECT_TRUE(deterministic.series.empty());
}

TEST_F(ObsTest, GaugeSetAndUpdateMax) {
  obs::Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.update_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.update_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(ObsTest, HistogramAggregatesAndBuckets) {
  obs::Histogram h;
  // Log-linear buckets: octave [2^e, 2^{e+1}) is cut into 16 linear
  // sub-buckets, octaves offset by +32 → 1.0 lands at (0+32)*16 = 512.
  h.record(1.0);   // bucket 512: [1, 1.0625)
  h.record(1.5);   // bucket 520: [1.5, 1.5625)
  h.record(4.0);   // bucket 544: [4, 4.25)
  h.record(-3.0);  // non-positive values land in bucket 0
  const obs::Histogram::Data d = h.data();
  EXPECT_EQ(d.count, 4u);
  EXPECT_DOUBLE_EQ(d.sum, 3.5);
  EXPECT_DOUBLE_EQ(d.min, -3.0);
  EXPECT_DOUBLE_EQ(d.max, 4.0);
  EXPECT_DOUBLE_EQ(d.mean(), 3.5 / 4.0);
  EXPECT_EQ(d.buckets[512], 1u);
  EXPECT_EQ(d.buckets[520], 1u);
  EXPECT_EQ(d.buckets[544], 1u);
  EXPECT_EQ(d.buckets[0], 1u);

  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(1.0), 512);
  EXPECT_EQ(obs::Histogram::bucket_index(1.5), 520);
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_lower_bound(512), 1.0);
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_lower_bound(513), 1.0625);
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_lower_bound(528), 2.0);
  EXPECT_DOUBLE_EQ(obs::Histogram::bucket_lower_bound(0), 0.0);

  h.reset();
  EXPECT_EQ(h.data().count, 0u);
}

TEST_F(ObsTest, HistogramPercentilesStayHonestPastTheSampleCap) {
  // 10000 samples of a linear ramp 1..10000 — far past kMaxSamples, so
  // percentiles must come from the log-linear buckets. The sub-bucket
  // interpolation keeps them within ~1/16 relative error of the exact
  // rank (the pre-PR-7 scheme collapsed to the octave's lower bound:
  // p99 of this ramp reported 8192 instead of ~9900).
  obs::Histogram h;
  constexpr int kN = 10000;
  for (int i = 1; i <= kN; ++i) h.record(static_cast<double>(i));
  const obs::Histogram::Data d = h.data();
  ASSERT_EQ(d.count, static_cast<std::uint64_t>(kN));
  ASSERT_GT(d.count, obs::Histogram::kMaxSamples);
  for (const double p : {50.0, 90.0, 95.0, 99.0}) {
    const double exact = p / 100.0 * kN;
    const double got = d.percentile(p);
    EXPECT_NEAR(got, exact, exact * 0.07)
        << "p" << p << " drifted: got " << got << ", exact " << exact;
  }
  // Extremes clamp into the observed range.
  EXPECT_GE(d.percentile(0.0), d.min);
  EXPECT_LE(d.percentile(100.0), d.max);
}

TEST_F(ObsTest, SnapshotSortedAndBestEffortFiltered) {
  MetricsRegistry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha", "k=2").add(2);
  reg.counter("alpha", "k=1").add(3);
  reg.gauge("beta", "", Stability::kBestEffort).set(1.5);
  reg.histogram("beta.hist", "", Stability::kBestEffort).record(1.0);

  const auto all = reg.snapshot();
  ASSERT_EQ(all.series.size(), 5u);
  EXPECT_EQ(all.series[0].name, "alpha");
  EXPECT_EQ(all.series[0].labels, "k=1");
  EXPECT_EQ(all.series[1].labels, "k=2");
  EXPECT_EQ(all.series[4].name, "zeta");

  const auto det = reg.snapshot({.include_best_effort = false});
  ASSERT_EQ(det.series.size(), 3u);
  for (const auto& s : det.series) {
    EXPECT_EQ(s.stability, Stability::kDeterministic);
  }
}

TEST_F(ObsTest, SnapshotJsonAndCsv) {
  MetricsRegistry reg;
  reg.counter("runs").add(7);
  reg.gauge("rate", "", Stability::kBestEffort).set(0.5);
  reg.histogram("lat_us", "", Stability::kBestEffort).record(3.0);
  const auto snap = reg.snapshot();

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"name\":\"runs\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"stability\":\"best_effort\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[[3,1]]"), std::string::npos);

  const std::string csv = snap.to_csv();
  EXPECT_EQ(
      csv.rfind(
          "name,labels,kind,stability,value,count,sum,min,max,p50,p95,p99\n",
          0),
      0u);
  EXPECT_NE(csv.find("runs,,counter,deterministic,7"), std::string::npos);

  // A single-sample histogram has every percentile equal to that sample.
  for (const auto& s : snap.series) {
    if (s.name != "lat_us") continue;
    EXPECT_DOUBLE_EQ(s.p50, 3.0);
    EXPECT_DOUBLE_EQ(s.p95, 3.0);
    EXPECT_DOUBLE_EQ(s.p99, 3.0);
  }
}

/// Round-trip the Prometheus exposition's cumulative histogram lines: parse
/// every `_bucket{...le="..."}` sample back out and check that the counts
/// are non-decreasing, close with le="+Inf" == `_count`, that the `le`
/// boundaries are the log-linear buckets' upper bounds, and that undoing
/// the cumulative sum reproduces the snapshot's per-bucket counts.
TEST_F(ObsTest, PromHistogramBucketsRoundTrip) {
  MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat_us", "op=advise",
                                    Stability::kBestEffort);
  const std::vector<double> samples = {0.5,  3.0,   3.0,  17.0, 100.0,
                                       1e-9, 4096.0, 3.25, 64.0, 63.999};
  for (const double v : samples) h.record(v);
  const auto snap = reg.snapshot();
  const std::string prom = snap.to_prom();

  // Collect (le, cumulative) in document order.
  std::vector<std::pair<std::string, std::uint64_t>> buckets;
  std::size_t pos = 0;
  const std::string needle = "codesign_lat_us_bucket{";
  while ((pos = prom.find(needle, pos)) != std::string::npos) {
    const std::size_t le = prom.find("le=\"", pos);
    ASSERT_NE(le, std::string::npos);
    const std::size_t le_end = prom.find('"', le + 4);
    const std::size_t sp = prom.find(' ', le_end);
    const std::size_t nl = prom.find('\n', sp);
    buckets.emplace_back(
        prom.substr(le + 4, le_end - (le + 4)),
        static_cast<std::uint64_t>(
            std::stoull(prom.substr(sp + 1, nl - sp - 1))));
    pos = nl;
  }
  const auto* series = &snap.series[0];
  for (const auto& s : snap.series) {
    if (s.name == "lat_us") series = &s;
  }
  ASSERT_EQ(buckets.size(), series->buckets.size() + 1);
  EXPECT_EQ(buckets.back().first, "+Inf");
  EXPECT_EQ(buckets.back().second, samples.size());
  std::uint64_t previous = 0;
  for (std::size_t i = 0; i < series->buckets.size(); ++i) {
    const auto& [le_text, cumulative] = buckets[i];
    // Cumulative and consistent with the snapshot's per-bucket counts.
    EXPECT_EQ(cumulative - previous, series->buckets[i].second);
    EXPECT_GE(cumulative, previous);
    previous = cumulative;
    // le is the bucket's exclusive upper bound: the lower bound of the
    // next log-linear bucket, strictly above this bucket's lower bound.
    const int index = obs::Histogram::bucket_index(series->buckets[i].first);
    EXPECT_EQ(le_text,
              json::format_double(obs::Histogram::bucket_lower_bound(
                  index + 1)));
    EXPECT_GT(std::stod(le_text), series->buckets[i].first);
    // Every recorded sample at or below le is inside the cumulative count.
    std::uint64_t at_or_below = 0;
    for (const double v : samples) {
      if (obs::Histogram::bucket_index(v) <= index) ++at_or_below;
    }
    EXPECT_EQ(cumulative, at_or_below);
  }
  // Quantile summary lines survive alongside the buckets.
  EXPECT_NE(prom.find("codesign_lat_us{op=\"advise\",stability=\"best_"
                      "effort\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("codesign_lat_us_count{"), std::string::npos);
}

TEST_F(ObsTest, HistogramPercentilesFromSamples) {
  MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("p_us", "", Stability::kBestEffort);
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const auto snap = reg.snapshot();
  for (const auto& s : snap.series) {
    if (s.name != "p_us") continue;
    EXPECT_NEAR(s.p50, 50.5, 1.0);
    EXPECT_NEAR(s.p95, 95.0, 1.5);
    EXPECT_NEAR(s.p99, 99.0, 1.5);
    const std::string json = snap.to_json();
    EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  }
}

TEST_F(ObsTest, ResetValuesKeepsSeriesAndReferences) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("kept");
  c.add(9);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.snapshot().series.size(), 1u);
  c.add(1);
  EXPECT_EQ(reg.counter("kept").value(), 1u);
}

TEST_F(ObsTest, ScopedTimerInertWhenDisabled) {
  ASSERT_FALSE(MetricsRegistry::enabled());
  {
    obs::ScopedTimer t("obs_test.timer_us");
    EXPECT_FALSE(t.active());
  }
  const auto snap = MetricsRegistry::global().snapshot();
  for (const auto& s : snap.series) {
    if (s.name == "obs_test.timer_us") EXPECT_EQ(s.count, 0u);
  }
}

TEST_F(ObsTest, ScopedTimerRecordsWhenEnabled) {
  MetricsRegistry::set_enabled(true);
  {
    obs::ScopedTimer t("obs_test.timer_us");
    EXPECT_TRUE(t.active());
    EXPECT_GE(t.elapsed_us(), 0.0);
  }
  const obs::Histogram::Data d =
      MetricsRegistry::global().histogram("obs_test.timer_us").data();
  EXPECT_EQ(d.count, 1u);
  EXPECT_GE(d.sum, 0.0);
}

TEST_F(ObsTest, EventRecorderRecordCountClear) {
  EventRecorder rec;
  EXPECT_EQ(EventRecorder::active(), nullptr);
  TraceEvent e;
  e.name = "tick";
  e.category = "des";
  rec.record(e);
  e.category = "select";
  rec.record(e);
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.count("des"), 1u);
  EXPECT_EQ(rec.count("select"), 1u);
  EXPECT_EQ(rec.count("op"), 0u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
}

TEST_F(ObsTest, ScopedRecorderInstallsAndUninstalls) {
  {
    obs::ScopedRecorder scoped;
    EXPECT_EQ(EventRecorder::active(), &scoped.recorder());
    obs::ScopedEvent span("search", "stage");
    (void)span;
  }
  EXPECT_EQ(EventRecorder::active(), nullptr);
}

TEST_F(ObsTest, TimeOriginIsThreadLocal) {
  EventRecorder::set_time_origin_us(123.5);
  EXPECT_DOUBLE_EQ(EventRecorder::time_origin_us(), 123.5);
  double seen_on_worker = -1.0;
  std::thread worker(
      [&seen_on_worker] { seen_on_worker = EventRecorder::time_origin_us(); });
  worker.join();
  EXPECT_DOUBLE_EQ(seen_on_worker, 0.0);
  EventRecorder::set_time_origin_us(0.0);
}

TEST_F(ObsTest, ChromeTraceJsonStructure) {
  EventRecorder rec;
  TraceEvent span;
  span.name = "L0.qkv";
  span.category = "op";
  span.phase = 'X';
  span.tid = obs::kTidGemmOps;
  span.ts_us = 10.0;
  span.dur_us = 5.0;
  span.args.emplace_back("detail", "b=1");
  rec.record(span);
  TraceEvent instant;
  instant.name = "tile 256x128";
  instant.category = "select";
  instant.phase = 'i';
  instant.tid = obs::kTidSelection;
  instant.ts_us = 10.0;
  rec.record(instant);
  TraceEvent wall;
  wall.name = "evaluate";
  wall.category = "search";
  wall.clock = obs::EventClock::kWall;
  rec.record(wall);

  obs::ChromeTraceOptions opt;
  opt.other_data.emplace_back("model", "m");
  const std::string json = rec.chrome_trace_json(opt);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("simulated time"), std::string::npos);
  EXPECT_NE(json.find("wall clock"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gemm ops\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kernel selection\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5.000"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\":{\"model\":\"m\"}"), std::string::npos);

  // Excluding wall-clock events drops the "search" span and its process.
  opt.include_wall_clock = false;
  const std::string sim_only = rec.chrome_trace_json(opt);
  EXPECT_EQ(sim_only.find("evaluate"), std::string::npos);
  EXPECT_EQ(sim_only.find("wall clock"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceJsonIndependentOfRecordingOrder) {
  auto make_event = [](int i) {
    TraceEvent e;
    e.name = "block";
    e.category = "des";
    e.tid = obs::kTidDesBase + (i % 4);
    e.ts_us = static_cast<double>(i % 7);
    e.dur_us = 1.0;
    e.args.emplace_back("block", std::to_string(i));
    return e;
  };
  EventRecorder forward;
  EventRecorder backward;
  for (int i = 0; i < 32; ++i) forward.record(make_event(i));
  for (int i = 31; i >= 0; --i) backward.record(make_event(i));
  EXPECT_EQ(forward.chrome_trace_json(), backward.chrome_trace_json());
}

// --- The contracts -------------------------------------------------------

// Instrumentation must never change what the simulator computes: a
// metrics-and-recorder-on run returns bit-identical estimates.
TEST_F(ObsTest, LockstepInstrumentationDoesNotChangeEstimates) {
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  std::vector<gemm::GemmProblem> problems;
  for (const auto [m, n, k] : {std::array<std::int64_t, 3>{8192, 7680, 2560},
                               std::array<std::int64_t, 3>{512, 512, 512},
                               std::array<std::int64_t, 3>{4096, 50304, 1024},
                               std::array<std::int64_t, 3>{1, 12288, 4096}}) {
    gemm::GemmProblem p;
    p.m = m;
    p.n = n;
    p.k = k;
    problems.push_back(p);
  }

  std::vector<gemm::KernelEstimate> plain;
  for (const auto& p : problems) plain.push_back(sim.estimate(p));

  MetricsRegistry::set_enabled(true);
  obs::ScopedRecorder scoped;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const gemm::KernelEstimate instrumented = sim.estimate(problems[i]);
    EXPECT_EQ(instrumented.time, plain[i].time);
    EXPECT_EQ(instrumented.compute_time, plain[i].compute_time);
    EXPECT_EQ(instrumented.memory_time, plain[i].memory_time);
    EXPECT_EQ(instrumented.bound, plain[i].bound);
    EXPECT_EQ(instrumented.tile.name(), plain[i].tile.name());
    EXPECT_EQ(instrumented.wave_q.waves, plain[i].wave_q.waves);
    EXPECT_EQ(instrumented.alignment.combined, plain[i].alignment.combined);
  }
  // And the instrumentation did fire: one selection trail per estimate.
  EXPECT_GT(scoped.recorder().count("select"), 0u);
}

// The deterministic snapshot of a search must be byte-identical at any
// thread count (PR 1's determinism contract extended to metrics).
TEST_F(ObsTest, DeterministicSeriesByteIdenticalAcrossThreadCounts) {
  const auto& base = tfm::model_by_name("gpt3-125m");
  MetricsRegistry::set_enabled(true);

  auto run = [&base](std::size_t threads) {
    MetricsRegistry::global().reset_values();
    auto sim = gemm::GemmSimulator::for_gpu("a100");
    sim.enable_cache();
    advisor::SearchOptions options;
    options.threads = threads;
    advisor::search_joint(base, sim, 0.05, 0, options);
    return MetricsRegistry::global()
        .snapshot({.include_best_effort = false})
        .to_json();
  };

  const std::string one = run(1);
  const std::string four = run(4);
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("gemmsim.estimate.calls"), std::string::npos);
  EXPECT_NE(one.find("advisor.search.runs"), std::string::npos);
}

// Simulated-clock traces are byte-identical at any thread count: the
// export sorts on a total key, and selection events carry simulated time.
TEST_F(ObsTest, SelectionTraceByteIdenticalAcrossThreadCounts) {
  const auto& base = tfm::model_by_name("gpt3-125m");

  auto run = [&base](std::size_t threads) {
    obs::ScopedRecorder scoped;
    // No cache: every estimate computes, so the recorded selection trails
    // are the same multiset regardless of scheduling.
    const auto sim = gemm::GemmSimulator::for_gpu("a100");
    advisor::SearchOptions options;
    options.threads = threads;
    advisor::search_heads(base, sim, options);
    obs::ChromeTraceOptions opt;
    opt.include_wall_clock = false;  // drop the wall-clock pipeline spans
    return scoped.recorder().chrome_trace_json(opt);
  };

  const std::string one = run(1);
  const std::string four = run(4);
  EXPECT_EQ(one, four);
  EXPECT_NE(one.find("\"cat\":\"select\""), std::string::npos);
}

// Satellite: the DES emits exactly one event per executed thread block.
TEST_F(ObsTest, DesEventCountMatchesBlocks) {
  gemm::GemmProblem p;
  p.m = 4096;
  p.n = 4096;
  p.k = 1024;
  const gpu::GpuSpec& gpu = gpu::gpu_by_name("a100");
  const gemm::KernelEstimate est = gemm::select_kernel(p, gpu);

  obs::ScopedRecorder scoped;
  const gemm::DesResult r = gemm::simulate_kernel(p, est.tile, gpu);
  EXPECT_GT(r.blocks, 0);
  EXPECT_EQ(scoped.recorder().count("des"),
            static_cast<std::size_t>(r.blocks));
}

TEST_F(ObsTest, ProfileModelCountsAndDeterminism) {
  const auto& cfg = tfm::model_by_name("gpt3-125m");
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  tfm::ProfileOptions options;
  options.layers = 2;

  const tfm::ProfileResult a = tfm::profile_model(cfg, sim, options);
  EXPECT_EQ(a.op_events,
            tfm::layer_ops(cfg).size() * static_cast<std::size_t>(2));
  EXPECT_GT(a.select_events, 0u);
  EXPECT_GT(a.des_events, 0u);
  EXPECT_GT(a.total_time, 0.0);
  EXPECT_NE(a.trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"cat\":\"des\""), std::string::npos);

  // profile_model restores the master switch it flipped.
  EXPECT_FALSE(MetricsRegistry::enabled());
  EXPECT_EQ(EventRecorder::active(), nullptr);

  const tfm::ProfileResult b = tfm::profile_model(cfg, sim, options);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

// Exercised under CODESIGN_SANITIZE=thread by tools/check.sh.
TEST_F(ObsTest, ConcurrentRecordingIsSafe) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("concurrent");
  obs::Histogram& h = reg.histogram("concurrent.hist");
  EventRecorder rec;
  MetricsRegistry::set_enabled(true);

  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h, &rec, &reg, t] {
      for (int i = 0; i < kIters; ++i) {
        c.add();
        h.record(static_cast<double>(i + 1));
        reg.counter("per_thread", "t=" + std::to_string(t)).add();
        TraceEvent e;
        e.name = "tick";
        e.category = "des";
        e.ts_us = static_cast<double>(i);
        rec.record(e);
        (void)MetricsRegistry::enabled();
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(h.data().count, static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(rec.size(), static_cast<std::size_t>(kThreads * kIters));
}

}  // namespace
}  // namespace codesign
