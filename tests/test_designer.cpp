// Tests for advisor/designer.hpp — designing a model from a parameter
// budget under the paper's rules.
#include "advisor/designer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "advisor/rules.hpp"
#include "common/error.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"
#include "transformer/training.hpp"

namespace codesign::advisor {
namespace {

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

DesignConstraints budget(double params) {
  DesignConstraints c;
  c.param_budget = params;
  return c;
}

TEST(Designer, HitsTheBudget) {
  const auto designs = design_models(budget(2.7e9), sim());
  ASSERT_FALSE(designs.empty());
  for (const Design& d : designs) {
    EXPECT_LE(std::fabs(d.param_error_frac), 0.10) << d.config.name;
    EXPECT_NO_THROW(d.config.validate());
  }
}

TEST(Designer, EveryDesignSatisfiesTheRules) {
  RuleContext ctx;
  ctx.gpu = &sim().gpu();
  for (const Design& d : design_models(budget(2.7e9), sim())) {
    EXPECT_TRUE(satisfies_performance_rules(d.config, ctx)) << d.config.name;
    // Head dim from the requested set, h on the 64 granule.
    EXPECT_TRUE(d.config.head_dim() == 64 || d.config.head_dim() == 128)
        << d.config.name;
    EXPECT_EQ(d.config.hidden_size % 64, 0) << d.config.name;
    EXPECT_EQ(d.config.vocab_size % 64, 0) << d.config.name;
  }
}

TEST(Designer, SortedByThroughput) {
  const auto designs = design_models(budget(1.3e9), sim());
  for (std::size_t i = 1; i < designs.size(); ++i) {
    EXPECT_GE(designs[i - 1].step_tflops, designs[i].step_tflops);
  }
  EXPECT_GT(designs.front().mfu, 0.1);
}

TEST(Designer, BeatsTheHistoricalShapeAtEqualBudget) {
  // The designer's best 2.7B shape must out-train the GPT-3 2.7B default
  // (that is the paper's whole point).
  const auto designs = design_models(budget(2.65e9), sim());
  const auto baseline = tfm::analyze_training_step(
      tfm::model_by_name("gpt3-2.7b"), sim());
  EXPECT_GT(designs.front().step_tflops, baseline.model_tflops * 1.05);
}

TEST(Designer, AspectBandRespected) {
  DesignConstraints c = budget(2.7e9);
  c.min_aspect = 60.0;
  c.max_aspect = 100.0;
  for (const Design& d : design_models(c, sim())) {
    EXPECT_GE(d.aspect, 60.0) << d.config.name;
    EXPECT_LE(d.aspect, 100.0) << d.config.name;
  }
}

TEST(Designer, TensorParallelConstraintsApplied) {
  DesignConstraints c = budget(20e9);
  c.tensor_parallel = 8;
  for (const Design& d : design_models(c, sim())) {
    EXPECT_EQ(d.config.tensor_parallel, 8);
    EXPECT_EQ(d.config.num_heads % 8, 0) << d.config.name;
    EXPECT_EQ(d.config.hidden_size % (64 * 8), 0) << d.config.name;
  }
}

TEST(Designer, PadsOddVocab) {
  DesignConstraints c = budget(1.3e9);
  c.vocab_size = 50257;
  for (const Design& d : design_models(c, sim())) {
    EXPECT_EQ(d.config.vocab_size, 50304);
  }
}

TEST(Designer, MaxDesignsHonored) {
  DesignConstraints c = budget(2.7e9);
  c.max_designs = 3;
  EXPECT_LE(design_models(c, sim()).size(), 3u);
}

TEST(Designer, Validation) {
  EXPECT_THROW(design_models(budget(0.0), sim()), ConfigError);
  DesignConstraints c = budget(2.7e9);
  c.head_dims.clear();
  EXPECT_THROW(design_models(c, sim()), ConfigError);
  c = budget(2.7e9);
  c.min_aspect = 10.0;
  c.max_aspect = 5.0;
  EXPECT_THROW(design_models(c, sim()), ConfigError);
  // An impossible corner: tiny tolerance + tiny aspect window.
  c = budget(2.7e9);
  c.param_tolerance = 1e-6;
  c.min_aspect = 200.0;
  c.max_aspect = 201.0;
  EXPECT_THROW(design_models(c, sim()), ConfigError);
}

}  // namespace
}  // namespace codesign::advisor
