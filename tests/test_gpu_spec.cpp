// Tests for gpuarch/gpu_spec.hpp — the spec registry and its invariants.
#include "gpuarch/gpu_spec.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"
#include "gpuarch/dtype.hpp"

namespace codesign::gpu {
namespace {

TEST(DType, Sizes) {
  EXPECT_EQ(dtype_size(DType::kFP16), 2u);
  EXPECT_EQ(dtype_size(DType::kBF16), 2u);
  EXPECT_EQ(dtype_size(DType::kFP32), 4u);
  EXPECT_EQ(dtype_size(DType::kTF32), 4u);
  EXPECT_EQ(dtype_size(DType::kFP64), 8u);
  EXPECT_EQ(dtype_size(DType::kINT8), 1u);
}

TEST(DType, Names) {
  EXPECT_EQ(dtype_name(DType::kFP16), "fp16");
  EXPECT_EQ(dtype_from_name("fp16"), DType::kFP16);
  EXPECT_EQ(dtype_from_name("HALF"), DType::kFP16);
  EXPECT_EQ(dtype_from_name("bf16"), DType::kBF16);
  EXPECT_EQ(dtype_from_name("float"), DType::kFP32);
  EXPECT_THROW(dtype_from_name("fp8"), LookupError);
}

TEST(GpuRegistry, KnownGpusPresent) {
  const auto names = known_gpus();
  EXPECT_GE(names.size(), 6u);
  for (const char* id : {"a100-40gb", "a100-80gb", "v100-16gb", "v100-32gb",
                         "h100-sxm", "mi250x-gcd"}) {
    EXPECT_NO_THROW(gpu_by_name(id)) << id;
  }
}

TEST(GpuRegistry, Aliases) {
  EXPECT_EQ(gpu_by_name("a100").id, "a100-40gb");
  EXPECT_EQ(gpu_by_name("v100").id, "v100-16gb");
  EXPECT_EQ(gpu_by_name("h100").id, "h100-sxm");
  EXPECT_EQ(gpu_by_name("mi250x").id, "mi250x-gcd");
  EXPECT_EQ(gpu_by_name("A100").id, "a100-40gb");  // case-insensitive
}

TEST(GpuRegistry, UnknownThrows) {
  EXPECT_THROW(gpu_by_name("tpu-v4"), LookupError);
}

TEST(GpuSpec, PaperConstants) {
  // Section VI-B: 80 SMs on V100, 108 on A100, 144 stated for H100 in the
  // paper (we use the shipping SXM5 part's 132; either way > 108).
  EXPECT_EQ(gpu_by_name("v100").sm_count, 80);
  EXPECT_EQ(gpu_by_name("a100").sm_count, 108);
  EXPECT_GT(gpu_by_name("h100").sm_count, 108);

  // Section III-B: full tensor-core alignment is 16 bytes on V100 and
  // 128 bytes on A100.
  EXPECT_EQ(gpu_by_name("v100").tc_full_alignment_bytes, 16);
  EXPECT_EQ(gpu_by_name("a100").tc_full_alignment_bytes, 128);
  EXPECT_EQ(gpu_by_name("h100").tc_full_alignment_bytes, 128);
}

TEST(GpuSpec, DatasheetRates) {
  const GpuSpec& a100 = gpu_by_name("a100");
  EXPECT_DOUBLE_EQ(a100.tensor_flops_fp16, 312 * TFLOPS);
  EXPECT_DOUBLE_EQ(a100.hbm_bandwidth, 1555 * GBps);
  const GpuSpec& a100_80 = gpu_by_name("a100-80gb");
  EXPECT_DOUBLE_EQ(a100_80.hbm_bandwidth, 2039 * GBps);
  EXPECT_GT(gpu_by_name("h100").tensor_flops_fp16,
            3.0 * a100.tensor_flops_fp16 * 0.9);
}

TEST(GpuSpec, TensorFlopsByDtype) {
  const GpuSpec& a100 = gpu_by_name("a100");
  EXPECT_DOUBLE_EQ(a100.tensor_flops(DType::kFP16), 312 * TFLOPS);
  EXPECT_DOUBLE_EQ(a100.tensor_flops(DType::kBF16), 312 * TFLOPS);
  EXPECT_DOUBLE_EQ(a100.tensor_flops(DType::kTF32), 156 * TFLOPS);
  EXPECT_DOUBLE_EQ(a100.tensor_flops(DType::kFP64), 0.0);

  // Volta: no bf16/tf32 tensor path.
  const GpuSpec& v100 = gpu_by_name("v100");
  EXPECT_DOUBLE_EQ(v100.tensor_flops(DType::kBF16), 0.0);
  EXPECT_DOUBLE_EQ(v100.tensor_flops(DType::kFP32), 0.0);
  EXPECT_GT(v100.vector_flops(DType::kFP32), 0.0);
}

TEST(GpuSpec, AchievableBelowPeak) {
  for (const auto& name : known_gpus()) {
    const GpuSpec& g = gpu_by_name(name);
    EXPECT_LT(g.achievable_tensor_flops(DType::kFP16),
              g.tensor_flops(DType::kFP16) + 1.0)
        << name;
    EXPECT_LT(g.achievable_bandwidth(), g.hbm_bandwidth + 1.0) << name;
    EXPECT_GT(g.tensor_flops_per_sm(DType::kFP16), 0.0) << name;
  }
}

TEST(GpuSpec, AllRegistryEntriesValidate) {
  for (const auto& name : known_gpus()) {
    EXPECT_NO_THROW(gpu_by_name(name).validate()) << name;
  }
}

TEST(GpuSpec, LadderWellFormed) {
  for (const auto& name : known_gpus()) {
    const GpuSpec& g = gpu_by_name(name);
    ASSERT_FALSE(g.alignment_ladder.empty()) << name;
    EXPECT_EQ(g.alignment_ladder.front().granule_bytes,
              g.tc_full_alignment_bytes)
        << name;
    EXPECT_DOUBLE_EQ(g.alignment_ladder.front().efficiency, 1.0) << name;
    for (std::size_t i = 1; i < g.alignment_ladder.size(); ++i) {
      EXPECT_LT(g.alignment_ladder[i].granule_bytes,
                g.alignment_ladder[i - 1].granule_bytes)
          << name;
      EXPECT_LT(g.alignment_ladder[i].efficiency,
                g.alignment_ladder[i - 1].efficiency)
          << name;
      EXPECT_GT(g.alignment_ladder[i].efficiency, 0.0) << name;
    }
  }
}

TEST(GpuSpec, ValidateRejectsBrokenSpecs) {
  GpuSpec g = gpu_by_name("a100");
  g.id = "broken";
  g.sm_count = 0;
  EXPECT_THROW(g.validate(), ConfigError);

  g = gpu_by_name("a100");
  g.alignment_ladder.clear();
  EXPECT_THROW(g.validate(), ConfigError);

  g = gpu_by_name("a100");
  g.alignment_ladder.front().efficiency = 0.9;  // must start at 1.0
  EXPECT_THROW(g.validate(), ConfigError);

  g = gpu_by_name("a100");
  g.achievable_math_fraction = 1.5;
  EXPECT_THROW(g.validate(), ConfigError);
}

}  // namespace
}  // namespace codesign::gpu
