// Tests for transformer/flops.hpp — the 24bsh²(1 + s/6h) accounting.
#include "transformer/flops.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "transformer/gemm_mapping.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::tfm {
namespace {

TransformerConfig make(std::int64_t h, std::int64_t a, std::int64_t b,
                       std::int64_t s) {
  TransformerConfig c;
  c.name = "t";
  c.hidden_size = h;
  c.num_heads = a;
  c.num_layers = 4;
  c.microbatch = b;
  c.seq_len = s;
  c.vocab_size = 50304;
  return c;
}

// Property: the paper's closed form equals the summed Table-II GEMM FLOPs
// for the standard architecture, for any (h, a, b, s).
class FlopsFormula
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                                 std::int64_t, std::int64_t>> {
};

TEST_P(FlopsFormula, FormulaEqualsGemmSum) {
  const auto [h, a, b, s] = GetParam();
  const TransformerConfig c = make(h, a, b, s);
  EXPECT_DOUBLE_EQ(layer_forward_flops(c), layer_forward_flops_formula(c));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlopsFormula,
    ::testing::Values(std::make_tuple(768, 12, 1, 512),
                      std::make_tuple(2560, 32, 4, 2048),
                      std::make_tuple(2560, 40, 4, 2048),
                      std::make_tuple(4096, 32, 8, 2048),
                      std::make_tuple(5120, 40, 2, 1024),
                      std::make_tuple(2048, 16, 16, 128)));

TEST(Flops, FormulaFactoredFormAgrees) {
  const TransformerConfig c = make(2560, 32, 4, 2048);
  const double h = 2560, b = 4, s = 2048;
  const double factored = 24.0 * b * s * h * h * (1.0 + s / (6.0 * h));
  EXPECT_NEAR(layer_forward_flops_formula(c) / factored, 1.0, 1e-12);
}

TEST(Flops, HeadCountDoesNotChangeFlops) {
  // Fig-1's premise: the shape family does equal useful work.
  const double f32 = layer_forward_flops(make(2560, 32, 4, 2048));
  const double f40 = layer_forward_flops(make(2560, 40, 4, 2048));
  const double f64 = layer_forward_flops(make(2560, 64, 4, 2048));
  EXPECT_DOUBLE_EQ(f32, f40);
  EXPECT_DOUBLE_EQ(f32, f64);
}

TEST(Flops, TensorParallelDividesLayerFlops) {
  TransformerConfig c = make(4096, 32, 4, 2048);
  const double full = layer_forward_flops(c);
  c.tensor_parallel = 4;
  c.vocab_size = 50304;  // divisible by 4
  EXPECT_NEAR(layer_forward_flops(c), full / 4.0, full * 1e-12);
}

TEST(Flops, FlashAttentionCountsSameMath) {
  TransformerConfig bmm_cfg = make(2560, 32, 4, 2048);
  TransformerConfig flash_cfg = bmm_cfg;
  flash_cfg.attention = AttentionImpl::kFlash;
  EXPECT_DOUBLE_EQ(layer_forward_flops(bmm_cfg),
                   layer_forward_flops(flash_cfg));
}

TEST(Flops, SwigluAddsGateFlops) {
  TransformerConfig gelu = make(4096, 32, 4, 2048);
  TransformerConfig swiglu = gelu;
  swiglu.activation = Activation::kSwiGlu;
  swiglu.mlp_intermediate = 4 * 4096;
  const double delta =
      layer_forward_flops(swiglu) - layer_forward_flops(gelu);
  // One extra (b·s, h) x (h, 4h) GEMM.
  EXPECT_DOUBLE_EQ(delta, 2.0 * (4.0 * 2048) * 4096 * (4.0 * 4096));
}

TEST(Flops, ModelFlopsComposition) {
  const TransformerConfig c = make(2560, 32, 4, 2048);
  const double expected = 4.0 * layer_forward_flops(c) +
                          logit_gemm(c).flops();
  EXPECT_DOUBLE_EQ(model_forward_flops(c), expected);
  EXPECT_DOUBLE_EQ(model_training_flops(c), 3.0 * expected);
  EXPECT_DOUBLE_EQ(flops_per_token(c),
                   expected / static_cast<double>(c.tokens()));
}

TEST(Flops, KnownModelMagnitude) {
  // GPT-3 2.7B forward ≈ 2 * P FLOPs per token (+ attention term).
  const TransformerConfig c = model_by_name("gpt3-2.7b");
  const double per_token = flops_per_token(c);
  EXPECT_GT(per_token, 2.0 * 2.65e9 * 0.9);
  EXPECT_LT(per_token, 2.0 * 2.65e9 * 1.5);
}

}  // namespace
}  // namespace codesign::tfm
