// Tests for comm/parallelism.hpp — the composite (t, p, d) step model and
// plan ranking.
#include "comm/parallelism.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::comm {
namespace {

const ClusterSpec& p4d() { return cluster_by_name("aws-p4d"); }

tfm::TransformerConfig model() {
  return tfm::model_by_name("gpt3-2.7b").with_vocab(50304);
}

ParallelPlan plan(std::int64_t t, std::int64_t p, std::int64_t d,
                  std::int64_t m = 32) {
  ParallelPlan out;
  out.tensor = t;
  out.pipeline = p;
  out.data = d;
  out.microbatches = m;
  return out;
}

TEST(Parallelism, SingleGpuPlanHasNoComm) {
  const auto r = evaluate_plan(model(), p4d(), plan(1, 1, 1));
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.tp_comm_time, 0.0);
  EXPECT_DOUBLE_EQ(r.pp_comm_time, 0.0);
  EXPECT_DOUBLE_EQ(r.dp_comm_time, 0.0);
  EXPECT_NEAR(r.step_time, r.compute_time, 1e-12);
  EXPECT_GT(r.cluster_mfu, 0.1);
  EXPECT_LT(r.cluster_mfu, 1.0);
}

TEST(Parallelism, CommComponentsAppearWithEachDegree) {
  const auto tp = evaluate_plan(model(), p4d(), plan(8, 1, 1));
  EXPECT_GT(tp.tp_comm_time, 0.0);
  EXPECT_DOUBLE_EQ(tp.pp_comm_time, 0.0);
  EXPECT_DOUBLE_EQ(tp.dp_comm_time, 0.0);

  const auto pp = evaluate_plan(model(), p4d(), plan(1, 4, 1));
  EXPECT_GT(pp.pp_comm_time, 0.0);
  EXPECT_DOUBLE_EQ(pp.tp_comm_time, 0.0);

  const auto dp = evaluate_plan(model(), p4d(), plan(1, 1, 4));
  EXPECT_GT(dp.dp_comm_time, 0.0);
  EXPECT_DOUBLE_EQ(dp.pp_comm_time, 0.0);
}

TEST(Parallelism, StructuralRejections) {
  // t = 6 on an 8-GPU-node cluster model: 6 ∤ 2560 and 6 ∤ 32.
  const auto bad_t = evaluate_plan(model(), p4d(), plan(6, 1, 1));
  EXPECT_FALSE(bad_t.feasible);
  // p > L.
  EXPECT_FALSE(evaluate_plan(model(), p4d(), plan(1, 64, 1)).feasible);
  // m < p.
  EXPECT_FALSE(evaluate_plan(model(), p4d(), plan(1, 8, 1, 4)).feasible);
  // t > node size.
  EXPECT_FALSE(evaluate_plan(model(), p4d(), plan(16, 1, 1)).feasible);
  EXPECT_FALSE(
      evaluate_plan(model(), p4d(), plan(16, 1, 1)).infeasible_reason.empty());
}

TEST(Parallelism, DataParallelScalesThroughputSublinearly) {
  const auto d1 = evaluate_plan(model(), p4d(), plan(8, 1, 1));
  const auto d4 = evaluate_plan(model(), p4d(), plan(8, 1, 4));
  EXPECT_GT(d4.tokens_per_second, 3.0 * d1.tokens_per_second);
  EXPECT_LT(d4.tokens_per_second, 4.0 * d1.tokens_per_second);
}

TEST(Parallelism, PipelineShardsMemory) {
  const auto p1 = evaluate_plan(model(), p4d(), plan(1, 1, 1));
  const auto p4 = evaluate_plan(model(), p4d(), plan(1, 4, 1));
  EXPECT_LT(p4.memory_per_gpu, p1.memory_per_gpu);
}

TEST(Parallelism, RankPlansCoversFactorizations) {
  const auto plans = rank_plans(model(), p4d(), 32, 32);
  // t ∈ {1,2,4,8}, p·d factorizations of 32/t — at least a dozen plans.
  EXPECT_GE(plans.size(), 12u);
  for (const auto& r : plans) {
    if (r.feasible) {
      EXPECT_EQ(r.plan.total_gpus(), 32);
    }
  }
  // Sorted: feasible+fitting before the rest, throughput-descending within.
  bool seen_infeasible = false;
  double prev_tps = 1e30;
  for (const auto& r : plans) {
    const bool ok = r.feasible && r.fits_memory;
    if (!ok) seen_infeasible = true;
    if (ok) {
      EXPECT_FALSE(seen_infeasible) << "feasible plan after infeasible one";
      EXPECT_LE(r.tokens_per_second, prev_tps * (1 + 1e-12));
      prev_tps = r.tokens_per_second;
    }
  }
}

TEST(Parallelism, BestPlanFitsMemory) {
  // 2.7B does not fit one A100-40GB without sharding; the top-ranked plan
  // must actually fit.
  const auto plans = rank_plans(model(), p4d(), 32, 32);
  ASSERT_TRUE(plans.front().feasible);
  EXPECT_TRUE(plans.front().fits_memory);
  EXPECT_GT(plans.front().plan.total_gpus(), 1);
}

TEST(Parallelism, SlowInterconnectPunishesPipelineMore) {
  // Same plan on p4d (50 GB/s inter-node) vs Summit (25 GB/s): the
  // pipeline p2p share must be larger on the slower fabric — the paper's
  // "depends on the speed of internode connections".
  const auto cfg = model();
  const auto fast = evaluate_plan(cfg, p4d(), plan(1, 4, 1));
  const auto slow =
      evaluate_plan(cfg, cluster_by_name("ornl-summit"), plan(1, 4, 1));
  EXPECT_GT(slow.pp_comm_time / slow.step_time,
            fast.pp_comm_time / fast.step_time);
}

TEST(Parallelism, Validation) {
  EXPECT_THROW(evaluate_plan(model(), p4d(), plan(0, 1, 1)), Error);
  EXPECT_THROW(rank_plans(model(), p4d(), 0), Error);
}

}  // namespace
}  // namespace codesign::comm
