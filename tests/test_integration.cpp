// Integration tests: the executable CPU forward pass cross-checked against
// the analytic Table-II mapping, and the advisor report end to end.
#include <gtest/gtest.h>

#include "advisor/report.hpp"
#include "advisor/rules.hpp"
#include "kernels/gemm_cpu.hpp"
#include "transformer/flops.hpp"
#include "transformer/forward.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"

namespace codesign {
namespace {

tfm::TransformerConfig tiny() {
  tfm::TransformerConfig c;
  c.name = "tiny";
  c.hidden_size = 48;
  c.num_heads = 6;
  c.num_layers = 3;
  c.seq_len = 20;
  c.microbatch = 1;
  c.vocab_size = 128;
  return c;
}

TEST(Integration, MappingShapesMatchExecutedModel) {
  // The analytic GEMM decomposition must describe the tensors the real
  // forward pass creates: weight shapes from enumerate_weights and GEMM
  // problem sizes from the mapping.
  const tfm::TransformerConfig c = tiny();
  const auto model = tfm::TransformerModel::random_init(c);

  // Weight shape agreement.
  const auto& w0 = model.weights().layers[0];
  EXPECT_EQ(w0.w_qkv.dim(0), 3 * c.hidden_size);
  EXPECT_EQ(w0.w_qkv.dim(1), c.hidden_size);
  EXPECT_EQ(w0.w_up.dim(0), c.d_ff());
  EXPECT_EQ(w0.w_down.dim(1), c.d_ff());

  // GEMM problem agreement: QKV GEMM is (b·s, h) x (h, 3h).
  const gemm::GemmProblem qkv = tfm::qkv_gemm(c);
  EXPECT_EQ(qkv.k, w0.w_qkv.dim(1));
  EXPECT_EQ(qkv.n, w0.w_qkv.dim(0));
  EXPECT_EQ(qkv.m, c.tokens());

  // Attention BMMs: batch must equal heads × microbatch and k the head dim.
  const gemm::GemmProblem score = tfm::attention_score_bmm(c);
  EXPECT_EQ(score.batch, c.microbatch * c.num_heads);
  EXPECT_EQ(score.k, c.head_dim());

  // Logit GEMM n must equal the vocab == logits width the model emits.
  const kern::Tensor logits = model.forward({1, 2, 3, 4, 5});
  EXPECT_EQ(logits.dim(1), tfm::logit_gemm(c).n);
}

TEST(Integration, ParamCountMatchesAllocatedWeights) {
  const tfm::TransformerConfig c = tiny();
  const auto model = tfm::TransformerModel::random_init(c);
  std::int64_t allocated = model.weights().token_embedding.numel() +
                           model.weights().pos_embedding.numel() +
                           model.weights().final_ln_gamma.numel() +
                           model.weights().final_ln_beta.numel();
  for (const auto& w : model.weights().layers) {
    allocated += w.ln1_gamma.numel() + w.ln1_beta.numel() + w.w_qkv.numel() +
                 w.b_qkv.numel() + w.w_proj.numel() + w.b_proj.numel() +
                 w.ln2_gamma.numel() + w.ln2_beta.numel() + w.w_up.numel() +
                 w.b_up.numel() + w.w_gate.numel() + w.w_down.numel() +
                 w.b_down.numel();
  }
  EXPECT_EQ(allocated, tfm::exact_param_count(c));
}

TEST(Integration, CountedFlopsMatchExecutedWork) {
  // Execute the QKV GEMM of the tiny model with the CPU kernel and verify
  // the mapping's FLOP count is 2·m·n·k of the executed shape.
  const tfm::TransformerConfig c = tiny();
  const gemm::GemmProblem p = tfm::qkv_gemm(c);
  codesign::Rng rng(5);
  const kern::Tensor a = kern::Tensor::randn({p.m, p.k}, rng);
  const kern::Tensor b = kern::Tensor::randn({p.k, p.n}, rng);
  const kern::Tensor out = kern::matmul(a, b);
  EXPECT_EQ(out.dim(0), p.m);
  EXPECT_EQ(out.dim(1), p.n);
  EXPECT_DOUBLE_EQ(p.flops(),
                   2.0 * static_cast<double>(p.m) * p.n * p.k);
}

TEST(Integration, LayerFlopsFormulaHoldsForTinyModel) {
  const tfm::TransformerConfig c = tiny();
  EXPECT_DOUBLE_EQ(tfm::layer_forward_flops(c),
                   tfm::layer_forward_flops_formula(c));
}

TEST(Integration, AdvisorReportEndToEnd) {
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  const std::string report =
      advisor::advise(tfm::model_by_name("gpt3-2.7b"), sim);
  // The report must diagnose the two famous problems...
  EXPECT_NE(report.find("head_dim_pow2"), std::string::npos);
  EXPECT_NE(report.find("FAIL"), std::string::npos);
  EXPECT_NE(report.find("50304"), std::string::npos);  // vocab padding hint
  // ... and propose the C2-style re-shape among the alternatives.
  EXPECT_NE(report.find("-a40"), std::string::npos);
  // Structure: rules table and per-op breakdown present.
  EXPECT_NE(report.find("qkv_transform"), std::string::npos);
  EXPECT_NE(report.find("Sizing rules"), std::string::npos);
}

TEST(Integration, AdvisorReportOnCleanModelHasNoPerfFailures) {
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  // Pythia-2.8B: h/a = 80... actually fails; use a C2-style clean config.
  const auto clean = tfm::model_by_name("gpt3-2.7b-c2").with_vocab(50304);
  advisor::RuleContext ctx;
  ctx.gpu = &sim.gpu();
  EXPECT_TRUE(advisor::satisfies_performance_rules(clean, ctx));
  advisor::ReportOptions opt;
  opt.include_suggestions = false;
  const std::string report = advisor::advise(clean, sim, opt);
  EXPECT_EQ(report.find("| FAIL"), std::string::npos);
}

TEST(Integration, ReportWithoutSuggestionsIsShorter) {
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  advisor::ReportOptions no_sugg;
  no_sugg.include_suggestions = false;
  const auto& cfg = tfm::model_by_name("gpt3-2.7b");
  EXPECT_LT(advisor::advise(cfg, sim, no_sugg).size(),
            advisor::advise(cfg, sim).size());
}

}  // namespace
}  // namespace codesign
