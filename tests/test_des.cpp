// Tests for gemmsim/sm_scheduler.hpp — the discrete-event cross-check of
// the analytical waves arithmetic.
#include "gemmsim/sm_scheduler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <tuple>

#include "gemmsim/kernel_model.hpp"

namespace codesign::gemm {
namespace {

const gpu::GpuSpec& a100() { return gpu::gpu_by_name("a100"); }

TEST(DesScheduler, MatchesAnalyticalBodyTimeExactly) {
  // With deterministic block durations the DES makespan must equal the
  // analytical kernel body (time minus launch overhead).
  const GemmProblem p = GemmProblem::gemm(4096, 4096, 4096);
  const auto& tile = gpu::largest_tile();
  const KernelEstimate est = estimate_with_tile(p, tile, a100());
  const DesResult des = simulate_kernel(p, tile, a100());
  const double body = est.time - est.launch_overhead;
  EXPECT_NEAR(des.makespan, body, body * 1e-9);
}

// Property suite over a shape grid: DES == closed form for every shape.
class DesAgreement
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                                 std::int64_t, std::int64_t>> {
};

TEST_P(DesAgreement, MakespanEqualsWavesTimesDuration) {
  const auto [batch, m, n, k] = GetParam();
  const GemmProblem p = GemmProblem::bmm(batch, m, n, k);
  for (const gpu::TileConfig& tile : gpu::default_tile_catalogue()) {
    const KernelEstimate est = estimate_with_tile(p, tile, a100());
    const DesResult des = simulate_kernel(p, tile, a100());
    const double body = est.time - est.launch_overhead;
    EXPECT_NEAR(des.makespan, body, body * 1e-9)
        << p.to_string() << " tile " << tile.name();
    EXPECT_EQ(des.blocks, est.tile_q.tiles_total);
    // Makespan is always waves * block_duration.
    EXPECT_NEAR(des.makespan,
                static_cast<double>(est.wave_q.waves) * des.block_duration,
                body * 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DesAgreement,
    ::testing::Values(std::make_tuple(1, 2048, 2048, 2048),
                      std::make_tuple(1, 1920, 1920, 1920),
                      std::make_tuple(1, 100, 100, 100),
                      std::make_tuple(128, 2048, 2048, 64),
                      std::make_tuple(128, 2048, 64, 2048),
                      std::make_tuple(1, 8192, 7680, 2560),
                      std::make_tuple(4, 333, 777, 129)));

TEST(DesScheduler, BusyFractionMatchesWaveEfficiency) {
  // 109-block kernel on 108 slots: busy fraction ≈ 109/216.
  // Construct a problem with exactly 109 tiles of 256x128: 109 is prime, so
  // use m = 109*256, n = 128.
  const GemmProblem p = GemmProblem::gemm(109 * 256, 128, 512);
  const auto& tile = gpu::largest_tile();
  const KernelEstimate est = estimate_with_tile(p, tile, a100());
  ASSERT_EQ(est.tile_q.tiles_total, 109);
  const DesResult des = simulate_kernel(p, tile, a100());
  EXPECT_NEAR(des.busy_fraction, 109.0 / 216.0, 1e-9);
}

TEST(DesScheduler, PerSmBusyTimeBalanced) {
  const GemmProblem p = GemmProblem::gemm(8192, 8192, 1024);
  const DesResult des = simulate_kernel(p, gpu::largest_tile(), a100());
  ASSERT_EQ(des.sm_busy_time.size(), static_cast<std::size_t>(108));
  double lo = des.sm_busy_time[0], hi = des.sm_busy_time[0];
  for (double t : des.sm_busy_time) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  // Work distribution across SMs differs by at most one block duration.
  EXPECT_LE(hi - lo, des.block_duration * 1.000001);
}

TEST(DesScheduler, NoiseBlursButPreservesScale) {
  const GemmProblem p = GemmProblem::gemm(4096, 4096, 4096);
  const DesResult clean = simulate_kernel(p, gpu::largest_tile(), a100());
  DesOptions opt;
  opt.block_noise_fraction = 0.05;
  opt.seed = 7;
  const DesResult noisy = simulate_kernel(p, gpu::largest_tile(), a100(), opt);
  EXPECT_NEAR(noisy.makespan, clean.makespan, 0.10 * clean.makespan);
  EXPECT_GE(noisy.makespan, clean.makespan * 0.9);
}

TEST(DesScheduler, NoiseIsDeterministicPerSeed) {
  const GemmProblem p = GemmProblem::gemm(2048, 2048, 2048);
  DesOptions opt;
  opt.block_noise_fraction = 0.05;
  opt.seed = 99;
  const DesResult a = simulate_kernel(p, gpu::largest_tile(), a100(), opt);
  const DesResult b = simulate_kernel(p, gpu::largest_tile(), a100(), opt);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(DesScheduler, KernelSequenceAddsLaunchOverheads) {
  const std::vector<GemmProblem> seq = {GemmProblem::gemm(2048, 2048, 2048),
                                        GemmProblem::gemm(2048, 8192, 2048)};
  const double total = simulate_kernel_sequence(seq, a100());
  double expected = 0.0;
  for (const GemmProblem& p : seq) {
    const KernelEstimate est = select_kernel(p, a100());
    expected += est.time;  // body + launch
  }
  EXPECT_NEAR(total, expected, expected * 1e-6);
  EXPECT_THROW(simulate_kernel_sequence({}, a100()), Error);
}

}  // namespace
}  // namespace codesign::gemm
