// Tests for transformer/forward.hpp — the executable CPU model. Uses tiny
// configurations (the point is mapping correctness, not speed).
#include "transformer/forward.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace codesign::tfm {
namespace {

TransformerConfig tiny() {
  TransformerConfig c;
  c.name = "tiny";
  c.hidden_size = 32;
  c.num_heads = 4;
  c.num_layers = 2;
  c.seq_len = 16;
  c.microbatch = 1;
  c.vocab_size = 96;
  return c;
}

std::vector<std::int64_t> ids(std::int64_t n, std::int64_t vocab) {
  std::vector<std::int64_t> out;
  for (std::int64_t i = 0; i < n; ++i) out.push_back((7 * i + 3) % vocab);
  return out;
}

TEST(Forward, LogitShape) {
  const auto model = TransformerModel::random_init(tiny());
  const Tensor logits = model.forward(ids(10, 96));
  ASSERT_EQ(logits.rank(), 2u);
  EXPECT_EQ(logits.dim(0), 10);
  EXPECT_EQ(logits.dim(1), 96);
  EXPECT_TRUE(logits.all_finite());
}

TEST(Forward, Deterministic) {
  const auto m1 = TransformerModel::random_init(tiny(), 7);
  const auto m2 = TransformerModel::random_init(tiny(), 7);
  const auto in = ids(8, 96);
  EXPECT_EQ(kern::max_abs_diff(m1.forward(in), m2.forward(in)), 0.0f);
}

TEST(Forward, DifferentSeedsDifferentLogits) {
  const auto m1 = TransformerModel::random_init(tiny(), 7);
  const auto m2 = TransformerModel::random_init(tiny(), 8);
  const auto in = ids(8, 96);
  EXPECT_GT(kern::max_abs_diff(m1.forward(in), m2.forward(in)), 1e-6f);
}

TEST(Forward, RandomModelLossNearLnV) {
  // A freshly initialized model is ~uniform over the vocabulary, so the
  // next-token cross-entropy must sit near ln(v).
  const auto model = TransformerModel::random_init(tiny());
  const double loss = model.next_token_loss(ids(16, 96));
  EXPECT_NEAR(loss, std::log(96.0), 0.35);
}

TEST(Forward, CausalityPastLogitsUnaffectedByFutureTokens) {
  // The decoder must be causal: changing token i must not change logits
  // for positions < i.
  const auto model = TransformerModel::random_init(tiny());
  auto a = ids(12, 96);
  auto b = a;
  b[11] = (b[11] + 5) % 96;  // perturb only the last token
  const Tensor la = model.forward(a);
  const Tensor lb = model.forward(b);
  for (std::int64_t pos = 0; pos < 11; ++pos) {
    for (std::int64_t v = 0; v < 96; ++v) {
      EXPECT_EQ(la.at(pos, v), lb.at(pos, v)) << "pos " << pos;
    }
  }
  // ... and the final position must change.
  float diff = 0.0f;
  for (std::int64_t v = 0; v < 96; ++v) {
    diff = std::max(diff, std::fabs(la.at(11, v) - lb.at(11, v)));
  }
  EXPECT_GT(diff, 1e-6f);
}

TEST(Forward, ParallelLayersVariantRuns) {
  TransformerConfig c = tiny();
  c.parallel_layers = true;
  const auto model = TransformerModel::random_init(c);
  EXPECT_TRUE(model.forward(ids(8, 96)).all_finite());
}

TEST(Forward, RotaryVariantRuns) {
  TransformerConfig c = tiny();
  c.pos_embedding = PosEmbedding::kRotary;
  const auto model = TransformerModel::random_init(c);
  EXPECT_TRUE(model.forward(ids(8, 96)).all_finite());
  // No learned position table allocated.
  EXPECT_TRUE(model.weights().pos_embedding.empty());
}

TEST(Forward, SwigluVariantRuns) {
  TransformerConfig c = tiny();
  c.activation = Activation::kSwiGlu;
  c.mlp_intermediate = 48;
  const auto model = TransformerModel::random_init(c);
  EXPECT_TRUE(model.forward(ids(8, 96)).all_finite());
  EXPECT_EQ(model.weights().layers[0].w_gate.dim(0), 48);
}

TEST(Forward, UntiedLmHead) {
  TransformerConfig c = tiny();
  c.tied_embeddings = false;
  const auto model = TransformerModel::random_init(c);
  EXPECT_FALSE(model.weights().lm_head.empty());
  EXPECT_TRUE(model.forward(ids(8, 96)).all_finite());
}

TEST(Forward, RotaryPreservesCausality) {
  TransformerConfig c = tiny();
  c.pos_embedding = PosEmbedding::kRotary;
  const auto model = TransformerModel::random_init(c);
  auto a = ids(10, 96);
  auto b = a;
  b[9] = (b[9] + 1) % 96;
  const Tensor la = model.forward(a);
  const Tensor lb = model.forward(b);
  for (std::int64_t v = 0; v < 96; ++v) {
    EXPECT_EQ(la.at(4, v), lb.at(4, v));
  }
}

TEST(Forward, InputValidation) {
  const auto model = TransformerModel::random_init(tiny());
  EXPECT_THROW(model.forward({}), Error);
  EXPECT_THROW(model.forward(ids(17, 96)), Error);  // longer than s
  EXPECT_THROW(model.next_token_loss({1}), Error);  // needs 2+ tokens
}

TEST(Forward, RejectsTensorParallelConfigs) {
  TransformerConfig c = tiny();
  c.tensor_parallel = 2;
  c.vocab_size = 96;  // divisible by 2; heads 4 divisible by 2
  EXPECT_THROW(TransformerModel::random_init(c), Error);
}

TEST(Forward, BlocksPreserveShape) {
  const auto model = TransformerModel::random_init(tiny());
  codesign::Rng rng(3);
  const Tensor x = Tensor::randn({8, 32}, rng, 0.1f);
  const Tensor attn = model.attention_block(x, model.weights().layers[0]);
  EXPECT_EQ(attn.dim(0), 8);
  EXPECT_EQ(attn.dim(1), 32);
  const Tensor mlp = model.mlp_block(x, model.weights().layers[0]);
  EXPECT_EQ(mlp.dim(0), 8);
  EXPECT_EQ(mlp.dim(1), 32);
}

}  // namespace
}  // namespace codesign::tfm
