// Tests for gemmsim/kernel_model.hpp — the analytical GEMM latency model.
#include "gemmsim/kernel_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

#include "common/units.hpp"
#include "gemmsim/roofline.hpp"

namespace codesign::gemm {
namespace {

const gpu::GpuSpec& a100() { return gpu::gpu_by_name("a100"); }

TEST(KernelModel, ThroughputNeverExceedsPeak) {
  for (std::int64_t n : {64, 256, 1024, 4096, 8192, 16384}) {
    const auto est = select_kernel(GemmProblem::gemm(n, n, n), a100());
    EXPECT_LE(est.flops_per_second(), a100().tensor_flops_fp16) << n;
    EXPECT_GT(est.time, 0.0);
  }
}

TEST(KernelModel, LargeAlignedGemmNearsAchievablePeak) {
  const auto est = select_kernel(GemmProblem::gemm(8192, 8192, 8192), a100());
  const double achievable =
      a100().achievable_tensor_flops(gpu::DType::kFP16);
  EXPECT_GT(est.flops_per_second(), 0.75 * achievable);
  EXPECT_EQ(est.bound, Bound::kCompute);
}

TEST(KernelModel, SmallGemmIsMemoryOrLaunchBound) {
  const auto est = select_kernel(GemmProblem::gemm(128, 128, 128), a100());
  EXPECT_NE(est.bound, Bound::kCompute);
  // Far below peak (the left side of Fig 5a).
  EXPECT_LT(est.flops_per_second(), 0.2 * a100().tensor_flops_fp16);
}

TEST(KernelModel, TinyGemmLaunchBound) {
  const auto est = select_kernel(GemmProblem::gemm(16, 16, 16), a100());
  EXPECT_EQ(est.bound, Bound::kLaunch);
  EXPECT_GE(est.time, a100().kernel_launch_overhead);
}

TEST(KernelModel, ThroughputGrowsWithSizeOverall) {
  // Monotone at octave scale (saw-teeth exist within octaves).
  double prev = 0.0;
  for (std::int64_t n : {256, 512, 1024, 2048, 4096, 8192}) {
    const double tf =
        select_kernel(GemmProblem::gemm(n, n, n), a100()).tflops();
    EXPECT_GT(tf, prev) << n;
    prev = tf;
  }
}

TEST(KernelModel, SelectionIsAtLeastAsGoodAsAnyFixedTile) {
  const GemmProblem p = GemmProblem::gemm(2560, 7680, 2560);
  const auto best = select_kernel(p, a100());
  for (const auto& est : estimate_all_tiles(p, a100())) {
    EXPECT_LE(best.time, est.time) << est.tile.name();
  }
}

TEST(KernelModel, MisalignedSlowerThanAligned) {
  // Same macro-scale problem, k = 80 vs k = 64 per the Fig-7 series.
  const double t64 =
      select_kernel(GemmProblem::bmm(128, 2048, 2048, 64), a100()).tflops();
  const double t80 =
      select_kernel(GemmProblem::bmm(128, 2048, 2048, 80), a100()).tflops();
  const double t63 =
      select_kernel(GemmProblem::bmm(128, 2048, 2048, 63), a100()).tflops();
  EXPECT_GT(t64 / t80, 1.15);  // 64-aligned clearly faster
  EXPECT_GT(t80, t63);         // odd is the worst
}

TEST(KernelModel, OddVocabLogitGemmMuchSlower) {
  // Fig 20 / the Karpathy example: v = 50257 vs padded 50304.
  const double padded =
      select_kernel(GemmProblem::gemm(8192, 50304, 2560), a100()).tflops();
  const double odd =
      select_kernel(GemmProblem::gemm(8192, 50257, 2560), a100()).tflops();
  EXPECT_GT(padded / odd, 1.5);
}

TEST(KernelModel, WaveQuantizationSawTooth) {
  // Fixed 256x128 tile: crossing a wave boundary drops throughput (Fig 5b).
  // With n columns of 128-tiles and m rows of 256-tiles on 108 SMs:
  // m=n=3456 gives 14*27 = 378 = 3.5 waves; 3328 gives 13*26=338 → 3.13;
  // pick points just below and above a multiple of 108 tiles.
  const auto& tile = gpu::largest_tile();
  // tiles(n) for square n: ceil(n/256)*ceil(n/128).
  // n = 2304: 9*18 = 162 tiles = 1.5 waves. n = 2048: 8*16 = 128 → 1.19.
  // n = 1664: 7*13 = 91 < 108 → exactly 1 wave (efficiency ~0.84).
  // n = 1536: 6*12 = 72 → 1 wave. n = 1792: 7*14 = 98 → 1 wave.
  // n = 1920: 8*15 = 120 → 2 waves. Throughput/size must DIP at 1920
  // relative to the trend from 1792.
  const double t1792 =
      estimate_with_tile(GemmProblem::gemm(1792, 1792, 1792), tile, a100())
          .tflops();
  const double t1920 =
      estimate_with_tile(GemmProblem::gemm(1920, 1920, 1920), tile, a100())
          .tflops();
  EXPECT_GT(t1792, t1920);  // the saw-tooth drop right past one full wave
}

TEST(KernelModel, AutoSelectionSoftensSawTooth) {
  // Fig 5c: the heuristic can pick a different tile at the bad point and
  // recover at least some of the dip.
  const GemmProblem bad = GemmProblem::gemm(1920, 1920, 1920);
  const double fixed =
      estimate_with_tile(bad, gpu::largest_tile(), a100()).tflops();
  const double chosen = select_kernel(bad, a100()).tflops();
  EXPECT_GE(chosen, fixed);
}

TEST(KernelModel, BmmMatchesEquivalentTileCount) {
  // A BMM is tiles-per-matrix × batch; same total work as a taller GEMM
  // with identical k (the batch just adds tiles).
  const auto bmm = select_kernel(GemmProblem::bmm(8, 2048, 2048, 64), a100());
  EXPECT_EQ(bmm.tile_q.tiles_total,
            8 * bmm.tile_q.tiles_m * bmm.tile_q.tiles_n);
}

TEST(KernelModel, EstimateFieldsConsistent) {
  const auto est = select_kernel(GemmProblem::gemm(4096, 4096, 4096), a100());
  EXPECT_DOUBLE_EQ(est.time,
                   std::max(est.compute_time, est.memory_time) +
                       est.launch_overhead);
  EXPECT_NEAR(est.flops_per_second() * est.time, est.problem.flops(), 1e3);
  EXPECT_GT(est.wave_q.waves, 0);
  EXPECT_GT(est.tile_q.tiles_total, 0);
}

TEST(KernelModel, Fp32SlowerThanFp16OnA100) {
  // TF32 tensor path is half rate.
  const double f16 =
      select_kernel(GemmProblem::gemm(8192, 8192, 8192, gpu::DType::kFP16),
                    a100())
          .tflops();
  const double f32 =
      select_kernel(GemmProblem::gemm(8192, 8192, 8192, gpu::DType::kFP32),
                    a100())
          .tflops();
  EXPECT_GT(f16, 1.5 * f32);
}

TEST(KernelModel, V100HasNoFp32TensorPath) {
  const auto& v100 = gpu::gpu_by_name("v100");
  const auto est = select_kernel(
      GemmProblem::gemm(4096, 4096, 4096, gpu::DType::kFP32), v100);
  // Falls back to CUDA cores: well under 16 TFLOP/s.
  EXPECT_LT(est.flops_per_second(), 16 * TFLOPS);
}

TEST(KernelModel, EmptyCatalogueRejected) {
  EXPECT_THROW(
      select_kernel(GemmProblem::gemm(64, 64, 64), a100(), {}),
      Error);
}

TEST(Roofline, RidgeAndAttainable) {
  const Roofline r = device_roofline(a100(), gpu::DType::kFP16);
  EXPECT_GT(r.ridge_point(), 50.0);   // A100 fp16 ridge ~200 FLOP/B
  EXPECT_LT(r.ridge_point(), 500.0);
  EXPECT_DOUBLE_EQ(r.attainable_flops(1e9), r.math_rate);
  EXPECT_LT(r.attainable_flops(1.0), r.math_rate);
  EXPECT_EQ(r.bound_for(1e12, 1.0), Bound::kCompute);
  EXPECT_EQ(r.bound_for(1.0, 1e12), Bound::kMemory);
}

TEST(Roofline, TimeIsMaxOfBothPaths) {
  const Roofline r{2e12, 1e12};
  EXPECT_DOUBLE_EQ(r.time(2e12, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.time(0.0, 2e12), 2.0);
  EXPECT_DOUBLE_EQ(r.time(2e12, 2e12), 2.0);
}

}  // namespace
}  // namespace codesign::gemm
