// Tests for the search pipeline's robustness layer: graceful degradation
// under injected faults, strict mode, bounded retry, cooperative
// cancellation (deadline and SIGINT), checkpoint/resume byte-identity, and
// the exit-code taxonomy at the API boundary.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "advisor/checkpoint.hpp"
#include "advisor/search.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::advisor {
namespace {

using tfm::model_by_name;

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

/// Failpoints are process-global: every test starts and ends disarmed.
class SearchFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::clear();
    SigintGuard::reset();
  }
  void TearDown() override { fail::clear(); }
};

/// Names of a sweep's skipped candidates, in report (= generation) order.
template <typename Outcome>
std::vector<std::string> skipped_names(const Outcome& o) {
  std::vector<std::string> out;
  out.reserve(o.skipped.size());
  for (const SkippedCandidate& s : o.skipped) out.push_back(s.config.name);
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// A temp path that cleans up after the test.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Graceful degradation

TEST_F(SearchFaultsTest, FaultFreeSweepReportsFullCoverage) {
  const SearchOutcome o = run_shape_search(SearchMode::kJoint,
                                           model_by_name("gpt3-2.7b"), sim());
  EXPECT_GT(o.total_candidates, 0u);
  EXPECT_EQ(o.evaluated, o.total_candidates);
  EXPECT_TRUE(o.skipped.empty());
  EXPECT_EQ(o.unreached(), 0u);
  EXPECT_FALSE(o.truncated);
  EXPECT_EQ(o.cancel_reason, CancelReason::kNone);
  // And the ranked list matches the legacy entry point exactly.
  EXPECT_EQ(o.ranked, search_joint(model_by_name("gpt3-2.7b"), sim()));
}

TEST_F(SearchFaultsTest, InjectedFaultsBecomeTypedSkipsNotAborts) {
  fail::configure("advisor.search.evaluate=prob:0.1:42:fatal");
  const SearchOutcome o = run_shape_search(SearchMode::kJoint,
                                           model_by_name("gpt3-2.7b"), sim());
  ASSERT_FALSE(o.skipped.empty());
  EXPECT_EQ(o.evaluated + o.skipped.size(), o.total_candidates);
  EXPECT_FALSE(o.truncated);
  for (const SkippedCandidate& s : o.skipped) {
    EXPECT_NE(s.reason.find("advisor.search.evaluate"), std::string::npos);
    EXPECT_EQ(s.attempts, 1);  // fatal faults are never retried
    // The skipped config must not appear in the ranking.
    for (const ShapeCandidate& c : o.ranked) {
      EXPECT_NE(c.config.name, s.config.name);
    }
  }
}

TEST_F(SearchFaultsTest, SkippedSetIsByteIdenticalAcrossThreadCounts) {
  // The acceptance criterion: a 5% failpoint sweep at --threads 1 and
  // --threads 8 produces identical rankings AND identical skip reports.
  const auto run = [](std::size_t threads) {
    fail::clear();
    fail::configure("advisor.search.evaluate=prob:0.05:42");
    SearchOptions options;
    options.threads = threads;
    return run_shape_search(SearchMode::kJoint, model_by_name("gpt3-2.7b"),
                            sim(), 0.1, 0, options);
  };
  const SearchOutcome a = run(1);
  const SearchOutcome b = run(8);
  ASSERT_FALSE(a.skipped.empty());
  EXPECT_EQ(a.ranked, b.ranked);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.backoff_units, b.backoff_units);
}

TEST_F(SearchFaultsTest, StrictModeRestoresTheRethrow) {
  fail::configure("advisor.search.evaluate=prob:0.05:42:fatal");
  SearchOptions options;
  options.faults.strict = true;
  EXPECT_THROW(run_shape_search(SearchMode::kJoint, model_by_name("gpt3-2.7b"),
                                sim(), 0.1, 0, options),
               fail::InjectedFault);
  // Parallel strict sweeps propagate too (via the pool's first_error).
  options.threads = 4;
  EXPECT_THROW(run_shape_search(SearchMode::kJoint, model_by_name("gpt3-2.7b"),
                                sim(), 0.1, 0, options),
               fail::InjectedFault);
}

TEST_F(SearchFaultsTest, FaultsInTheSimulatorLayerAreIsolatedToo) {
  // Inject below the search layer — kernel selection — to prove the whole
  // evaluation stack is covered by per-candidate isolation.
  fail::configure("gemmsim.select_kernel=prob:0.05:7:fatal");
  const SearchOutcome o = run_shape_search(SearchMode::kJoint,
                                           model_by_name("gpt3-2.7b"), sim());
  EXPECT_EQ(o.evaluated + o.skipped.size(), o.total_candidates);
  ASSERT_FALSE(o.skipped.empty());
  EXPECT_NE(o.skipped.front().reason.find("gemmsim.select_kernel"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Bounded retry

TEST_F(SearchFaultsTest, TransientFaultRecoversWithinTheRetryBudget) {
  // once:1 fires on the first hit only: the retry must succeed, leaving a
  // complete ranking and a nonzero retry count.
  fail::configure("advisor.search.evaluate=once:1:transient");
  SearchOptions options;  // default budget: 2 retries
  const SearchOutcome o = run_shape_search(
      SearchMode::kHeads, model_by_name("gpt3-2.7b"), sim(), 0.1, 0, options);
  EXPECT_TRUE(o.skipped.empty());
  EXPECT_EQ(o.evaluated, o.total_candidates);
  EXPECT_EQ(o.retries, 1u);
  EXPECT_EQ(o.backoff_units, 1u);  // 2^0 for the single first-attempt retry
}

TEST_F(SearchFaultsTest, RetryExhaustionSkipsWithAttemptAccounting) {
  // A probability fault keyed on the candidate token re-fires on every
  // retry, so the budget must run dry and the skip record the attempts.
  fail::configure("advisor.search.evaluate=prob:0.05:42:transient");
  SearchOptions options;
  options.faults.max_retries = 3;
  const SearchOutcome o = run_shape_search(
      SearchMode::kJoint, model_by_name("gpt3-2.7b"), sim(), 0.1, 0, options);
  ASSERT_FALSE(o.skipped.empty());
  for (const SkippedCandidate& s : o.skipped) {
    EXPECT_EQ(s.attempts, 4);  // 1 initial + 3 retries
  }
  EXPECT_EQ(o.retries, 3 * o.skipped.size());
  // Deterministic backoff accounting: each skip burned 2^0 + 2^1 + 2^2.
  EXPECT_EQ(o.backoff_units, 7 * o.skipped.size());
}

TEST_F(SearchFaultsTest, FatalFaultsAreNeverRetried) {
  fail::configure("advisor.search.evaluate=prob:0.05:42:fatal");
  SearchOptions options;
  options.faults.max_retries = 5;
  const SearchOutcome o = run_shape_search(
      SearchMode::kJoint, model_by_name("gpt3-2.7b"), sim(), 0.1, 0, options);
  ASSERT_FALSE(o.skipped.empty());
  EXPECT_EQ(o.retries, 0u);
  for (const SkippedCandidate& s : o.skipped) EXPECT_EQ(s.attempts, 1);
}

// ---------------------------------------------------------------------------
// Cancellation

TEST_F(SearchFaultsTest, PreCancelledTokenTruncatesImmediately) {
  CancelToken cancel;
  cancel.cancel(CancelReason::kUser);  // the SIGINT-equivalent trip
  SearchOptions options;
  options.cancel = &cancel;
  const SearchOutcome o = run_shape_search(
      SearchMode::kJoint, model_by_name("gpt3-2.7b"), sim(), 0.1, 0, options);
  EXPECT_TRUE(o.truncated);
  EXPECT_EQ(o.cancel_reason, CancelReason::kUser);
  EXPECT_EQ(o.evaluated, 0u);
  EXPECT_EQ(o.unreached(), o.total_candidates);
  EXPECT_TRUE(o.ranked.empty());  // partial = empty here, but never silent
}

TEST_F(SearchFaultsTest, ExpiredDeadlineTruncatesMidSweep) {
  CancelToken cancel;
  cancel.deadline_after(std::chrono::milliseconds(0));  // already expired
  SearchOptions options;
  options.cancel = &cancel;
  const SearchOutcome o = run_shape_search(
      SearchMode::kJoint, model_by_name("gpt3-2.7b"), sim(), 0.1, 0, options);
  EXPECT_TRUE(o.truncated);
  EXPECT_EQ(o.cancel_reason, CancelReason::kDeadline);
  EXPECT_GT(o.unreached(), 0u);
}

TEST_F(SearchFaultsTest, SigintLinkedTokenObservesTheRaisedSignal) {
  SigintGuard guard;
  CancelToken cancel;
  cancel.link_to_sigint();
  EXPECT_FALSE(cancel.cancelled());
  ASSERT_EQ(std::raise(SIGINT), 0);  // the real delivery path, to ourselves
  EXPECT_TRUE(SigintGuard::interrupted());
  EXPECT_TRUE(cancel.cancelled());
  EXPECT_EQ(cancel.reason(), CancelReason::kUser);

  SearchOptions options;
  options.cancel = &cancel;
  const SearchOutcome o = run_shape_search(
      SearchMode::kJoint, model_by_name("gpt3-2.7b"), sim(), 0.1, 0, options);
  EXPECT_TRUE(o.truncated);
  EXPECT_EQ(o.cancel_reason, CancelReason::kUser);
}

TEST_F(SearchFaultsTest, DeadlineExpiryRacingSigintDrainsOnce) {
  // Both trip sources fire before the sweep starts: an already-expired
  // deadline and a delivered SIGINT. The token must latch exactly one
  // reason (first poll wins, later trips are no-ops) and the sweep must
  // drain through a single truncation path — one banner's worth of
  // accounting, evaluated + unreached == total, no double-counting.
  SigintGuard guard;
  CancelToken cancel;
  cancel.link_to_sigint();
  cancel.deadline_after(std::chrono::milliseconds(0));  // expired at poll
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(SigintGuard::interrupted());

  EXPECT_TRUE(cancel.cancelled());
  const CancelReason first = cancel.reason();
  EXPECT_NE(first, CancelReason::kNone);
  // Whichever source won the race, the latched reason never flips.
  EXPECT_TRUE(cancel.cancelled());
  EXPECT_EQ(cancel.reason(), first);

  SearchOptions options;
  options.cancel = &cancel;
  const SearchOutcome o = run_shape_search(
      SearchMode::kJoint, model_by_name("gpt3-2.7b"), sim(), 0.1, 0, options);
  EXPECT_TRUE(o.truncated);
  EXPECT_EQ(o.cancel_reason, first);
  EXPECT_EQ(o.evaluated + o.unreached(), o.total_candidates);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume

TEST_F(SearchFaultsTest, CheckpointRoundTripsBitExactly) {
  TempFile cp("codesign_cp_roundtrip.txt");
  {
    CheckpointWriter w(cp.path(), "fp-test", 1);
    w.record_shape("cand-a", {1.25e-3, 312.0, 1.0675, 2.65e9, -0.031, true});
    w.record_mlp(11008, {3.5e-4, 298.5, 2.6875});
    w.record_skip("cand-b", {3, "injected fault at failpoint 'x' (fatal)"});
  }
  const SearchCheckpoint cp1 = SearchCheckpoint::load(cp.path());
  EXPECT_EQ(cp1.fingerprint(), "fp-test");
  ASSERT_NE(cp1.shape("cand-a"), nullptr);
  EXPECT_EQ(cp1.shape("cand-a")->layer_time, 1.25e-3);  // bit-exact
  EXPECT_EQ(cp1.shape("cand-a")->param_delta_frac, -0.031);
  EXPECT_TRUE(cp1.shape("cand-a")->rules_pass);
  ASSERT_NE(cp1.mlp(11008), nullptr);
  EXPECT_EQ(cp1.mlp(11008)->coefficient, 2.6875);
  ASSERT_NE(cp1.skip("cand-b"), nullptr);
  EXPECT_EQ(cp1.skip("cand-b")->attempts, 3);
  EXPECT_EQ(cp1.shape("missing"), nullptr);

  // Rewriting the same set produces the same bytes (sorted, hexfloat).
  const std::string first = slurp(cp.path());
  {
    CheckpointWriter w(cp.path(), "fp-test", 1);
    w.seed_from(cp1);
    w.flush();
  }
  EXPECT_EQ(slurp(cp.path()), first);
}

TEST_F(SearchFaultsTest, LoadRejectsGarbageAndWrongFingerprints) {
  TempFile cp("codesign_cp_garbage.txt");
  EXPECT_THROW(SearchCheckpoint::load(cp.path()), ConfigError);  // missing
  {
    std::ofstream f(cp.path());
    f << "not a checkpoint\n";
  }
  EXPECT_THROW(SearchCheckpoint::load(cp.path()), ConfigError);
  {
    std::ofstream f(cp.path());
    f << "codesign-checkpoint\tv1\nF\tother-fingerprint\n";
  }
  const SearchCheckpoint other = SearchCheckpoint::load(cp.path());
  CheckpointWriter w(cp.path(), "this-fingerprint", 1);
  EXPECT_THROW(w.seed_from(other), ConfigError);

  SearchOptions options;
  options.resume = &other;
  EXPECT_THROW(run_shape_search(SearchMode::kJoint, model_by_name("gpt3-2.7b"),
                                sim(), 0.1, 0, options),
               ConfigError);
}

TEST_F(SearchFaultsTest, InterruptedThenResumedSweepIsByteIdentical) {
  const tfm::TransformerConfig base = model_by_name("gpt3-2.7b");
  const auto s = sim();
  const std::string fp =
      shape_search_fingerprint(SearchMode::kJoint, base, s, 0.1, 0);

  // The uninterrupted reference run.
  const SearchOutcome reference =
      run_shape_search(SearchMode::kJoint, base, s);

  // Run 1: killed mid-sweep by an already-expired deadline. The truncated
  // sweep must still flush a loadable checkpoint.
  TempFile cp("codesign_cp_resume.txt");
  {
    CancelToken cancel;
    cancel.deadline_after(std::chrono::milliseconds(0));
    CheckpointWriter writer(cp.path(), fp, 1);
    SearchOptions options;
    options.cancel = &cancel;
    options.checkpoint = &writer;
    const SearchOutcome partial =
        run_shape_search(SearchMode::kJoint, base, s, 0.1, 0, options);
    EXPECT_TRUE(partial.truncated);
    EXPECT_LT(partial.evaluated, reference.evaluated);
    EXPECT_NO_THROW(SearchCheckpoint::load(cp.path()));
  }

  // Simulate a kill that landed mid-sweep: checkpoint the complete run,
  // then drop every other completed-candidate record from the file. The
  // survivors exercise the resume prefill; the dropped half re-evaluates.
  {
    CheckpointWriter writer(cp.path(), fp, 1);
    SearchOptions options;
    options.checkpoint = &writer;
    (void)run_shape_search(SearchMode::kJoint, base, s, 0.1, 0, options);
  }
  {
    std::istringstream in(slurp(cp.path()));
    std::ofstream out(cp.path(), std::ios::trunc);
    std::string line;
    int nth_record = 0;
    while (std::getline(in, line)) {
      if (line.rfind("C\t", 0) == 0 && ++nth_record % 2 == 0) continue;
      out << line << '\n';
    }
  }
  const std::size_t kept = SearchCheckpoint::load(cp.path()).size();
  EXPECT_GT(kept, 0u);
  EXPECT_LT(kept, reference.evaluated);

  // Run 2: resume from the pruned file. Must complete and match the
  // reference field-for-field (ShapeCandidate equality is bit-exact
  // doubles, so a resumed slot is indistinguishable from a fresh one).
  const SearchCheckpoint resumed = SearchCheckpoint::load(cp.path());
  CheckpointWriter writer(cp.path(), fp, 1);
  SearchOptions options;
  options.checkpoint = &writer;
  options.resume = &resumed;
  const SearchOutcome final_run =
      run_shape_search(SearchMode::kJoint, base, s, 0.1, 0, options);
  EXPECT_FALSE(final_run.truncated);
  EXPECT_EQ(final_run.resumed, kept);
  EXPECT_EQ(final_run.evaluated, reference.evaluated);
  EXPECT_EQ(final_run.ranked, reference.ranked);
  EXPECT_TRUE(final_run.skipped.empty());
}

TEST_F(SearchFaultsTest, ResumeIsByteIdenticalUnderThreadsAndFaults) {
  // Resume + parallelism + injected faults together: the resumed multi-
  // thread sweep must reproduce the uninterrupted single-thread outcome,
  // skips included.
  const tfm::TransformerConfig base = model_by_name("gpt3-2.7b");
  const auto s = sim();
  const std::string fp =
      shape_search_fingerprint(SearchMode::kJoint, base, s, 0.1, 0);
  const char* kSpec = "advisor.search.evaluate=prob:0.05:42:fatal";

  fail::configure(kSpec);
  const SearchOutcome reference =
      run_shape_search(SearchMode::kJoint, base, s);
  ASSERT_FALSE(reference.skipped.empty());

  TempFile cp("codesign_cp_resume_mt.txt");
  {
    fail::clear();
    fail::configure(kSpec);
    CancelToken cancel;
    cancel.deadline_after(std::chrono::milliseconds(0));
    CheckpointWriter writer(cp.path(), fp, 1);
    SearchOptions options;
    options.cancel = &cancel;
    options.checkpoint = &writer;
    (void)run_shape_search(SearchMode::kJoint, base, s, 0.1, 0, options);
  }

  fail::clear();
  fail::configure(kSpec);
  const SearchCheckpoint resumed = SearchCheckpoint::load(cp.path());
  SearchOptions options;
  options.threads = 8;
  options.resume = &resumed;
  const SearchOutcome final_run =
      run_shape_search(SearchMode::kJoint, base, s, 0.1, 0, options);
  EXPECT_EQ(final_run.ranked, reference.ranked);
  EXPECT_EQ(skipped_names(final_run), skipped_names(reference));
}

TEST_F(SearchFaultsTest, MlpScanSupportsTheSameRobustnessSurface) {
  const tfm::TransformerConfig base = model_by_name("llama2-7b");
  const auto s = sim();
  const std::int64_t lo = 10752, hi = 11264;

  const MlpSearchOutcome reference = run_mlp_search(base, s, lo, hi);
  EXPECT_EQ(reference.evaluated, reference.total_candidates);
  EXPECT_EQ(reference.ranked, search_mlp_intermediate(base, s, lo, hi));

  // Faulted + threaded: deterministic skips keyed by "dff:<n>".
  fail::configure("advisor.search.evaluate=prob:0.05:42:fatal");
  const auto faulted = [&](std::size_t threads) {
    SearchOptions options;
    options.threads = threads;
    return run_mlp_search(base, s, lo, hi, options);
  };
  const MlpSearchOutcome f1 = faulted(1);
  const MlpSearchOutcome f8 = faulted(8);
  EXPECT_EQ(f1.ranked, f8.ranked);
  EXPECT_EQ(f1.skipped, f8.skipped);
  fail::clear();

  // Checkpoint/resume round-trip.
  TempFile cp("codesign_cp_mlp.txt");
  const std::string fp = mlp_search_fingerprint(base, s, lo, hi);
  {
    CancelToken cancel;
    cancel.deadline_after(std::chrono::milliseconds(0));
    CheckpointWriter writer(cp.path(), fp, 1);
    SearchOptions options;
    options.cancel = &cancel;
    options.checkpoint = &writer;
    const MlpSearchOutcome partial =
        run_mlp_search(base, s, lo, hi, options);
    EXPECT_TRUE(partial.truncated);
  }
  const SearchCheckpoint resumed = SearchCheckpoint::load(cp.path());
  SearchOptions options;
  options.resume = &resumed;
  const MlpSearchOutcome final_run = run_mlp_search(base, s, lo, hi, options);
  EXPECT_EQ(final_run.ranked, reference.ranked);
}

// ---------------------------------------------------------------------------
// Exit-code taxonomy (the CLI boundary contract)

int code_for(void (*thrower)()) {
  try {
    thrower();
  } catch (...) {
    return exit_code_for_current_exception();
  }
  return -1;
}

TEST_F(SearchFaultsTest, EveryErrorSubclassMapsToItsExitCode) {
  EXPECT_EQ(code_for([] { throw ConfigError("c"); }), kExitConfig);
  EXPECT_EQ(code_for([] { throw ShapeError("s"); }), kExitShape);
  EXPECT_EQ(code_for([] { throw LookupError("l"); }), kExitLookup);
  EXPECT_EQ(code_for([] { throw CancelledError("x"); }), kExitCancelled);
  EXPECT_EQ(code_for([] { throw IoError("bind: address in use"); }), kExitIo);
  EXPECT_EQ(code_for([] { throw fail::InjectedFault("f", true); }),
            kExitError);  // plain Error subclass without its own code
  EXPECT_EQ(code_for([] { throw Error("e"); }), kExitError);
  EXPECT_EQ(code_for([] { throw std::runtime_error("r"); }), kExitInternal);
  EXPECT_EQ(code_for([] { throw 42; }), kExitInternal);
  // Outside any catch block the helper reports internal, not UB.
  EXPECT_EQ(exit_code_for_current_exception(), kExitInternal);
}

}  // namespace
}  // namespace codesign::advisor
