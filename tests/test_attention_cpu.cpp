// Tests for kernels/attention_cpu.hpp — the streaming (online-softmax)
// attention kernel must be numerically exact against the materialized
// reference, which is the FlashAttention "exact attention" claim validated
// in code.
#include "kernels/attention_cpu.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/ops.hpp"

namespace codesign::kern {
namespace {

std::tuple<Tensor, Tensor, Tensor> random_qkv(std::int64_t heads,
                                              std::int64_t len,
                                              std::int64_t d,
                                              std::uint64_t seed) {
  Rng rng(seed);
  return {Tensor::randn({heads, len, d}, rng), Tensor::randn({heads, len, d}, rng),
          Tensor::randn({heads, len, d}, rng)};
}

TEST(AttentionCpu, ReferenceRowsAreConvexCombinations) {
  const auto [q, k, v] = random_qkv(2, 8, 4, 1);
  const Tensor out = attention_reference(q, k, v, /*causal=*/false);
  EXPECT_TRUE(out.all_finite());
  // First causal row equals v's first row when causal.
  const Tensor causal = attention_reference(q, k, v, /*causal=*/true);
  for (std::int64_t h = 0; h < 2; ++h) {
    for (std::int64_t x = 0; x < 4; ++x) {
      EXPECT_NEAR(causal.at(h, 0, x), v.at(h, 0, x), 1e-5f);
    }
  }
}

// Property suite: streaming == reference across shapes, masks, and block
// sizes (including blocks that do not divide the length).
class StreamingExactness
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t, bool,
                     std::int64_t>> {};

TEST_P(StreamingExactness, MatchesReference) {
  const auto [heads, len, d, causal, block] = GetParam();
  const auto [q, k, v] = random_qkv(heads, len, d, 42 + len);
  const Tensor ref = attention_reference(q, k, v, causal);
  const Tensor str = attention_streaming(q, k, v, causal, block);
  EXPECT_LT(max_abs_diff(ref, str), 2e-5f)
      << "heads=" << heads << " len=" << len << " d=" << d
      << " causal=" << causal << " block=" << block;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StreamingExactness,
    ::testing::Values(std::make_tuple(1, 1, 4, false, 64),
                      std::make_tuple(2, 16, 8, false, 4),
                      std::make_tuple(2, 16, 8, true, 4),
                      std::make_tuple(4, 33, 16, false, 7),
                      std::make_tuple(4, 33, 16, true, 7),
                      std::make_tuple(1, 64, 32, true, 64),
                      std::make_tuple(1, 64, 32, true, 128),  // block > len
                      std::make_tuple(3, 50, 20, true, 1)));  // block = 1

TEST(AttentionCpu, BlockSizeDoesNotChangeResult) {
  const auto [q, k, v] = random_qkv(2, 40, 16, 7);
  const Tensor b8 = attention_streaming(q, k, v, true, 8);
  const Tensor b13 = attention_streaming(q, k, v, true, 13);
  EXPECT_LT(max_abs_diff(b8, b13), 2e-5f);
}

TEST(AttentionCpu, LargeScoresStayStable) {
  // Online softmax must survive score magnitudes that overflow a naive
  // exp() — the reason the running-max recurrence exists.
  Rng rng(9);
  Tensor q = Tensor::randn({1, 8, 4}, rng, 30.0f);
  Tensor k = Tensor::randn({1, 8, 4}, rng, 30.0f);
  Tensor v = Tensor::randn({1, 8, 4}, rng);
  const Tensor ref = attention_reference(q, k, v, false);
  const Tensor str = attention_streaming(q, k, v, false, 2);
  EXPECT_TRUE(str.all_finite());
  EXPECT_LT(max_abs_diff(ref, str), 1e-4f);
}

TEST(AttentionCpu, CausalOutputIgnoresFutureValues) {
  auto [q, k, v] = random_qkv(1, 10, 4, 11);
  const Tensor before = attention_streaming(q, k, v, true, 4);
  // Perturb the last key/value; rows 0..8 must not change.
  for (std::int64_t x = 0; x < 4; ++x) {
    k.at(0, 9, x) += 5.0f;
    v.at(0, 9, x) += 5.0f;
  }
  const Tensor after = attention_streaming(q, k, v, true, 4);
  for (std::int64_t i = 0; i < 9; ++i) {
    for (std::int64_t x = 0; x < 4; ++x) {
      EXPECT_EQ(before.at(0, i, x), after.at(0, i, x)) << i;
    }
  }
}

TEST(AttentionCpu, Validation) {
  Tensor q({2, 4, 8});
  Tensor k({2, 4, 8});
  Tensor bad({2, 5, 8});
  EXPECT_THROW(attention_reference(q, k, bad, false), Error);
  EXPECT_THROW(attention_streaming(q, k, k, false, 0), Error);
  Tensor rank2({4, 8});
  EXPECT_THROW(attention_reference(rank2, rank2, rank2, false), Error);
}

TEST(AttentionCpu, UniformValuesGiveUniformOutput) {
  // If all V rows are identical, attention must return exactly that row
  // regardless of the score distribution.
  Rng rng(13);
  const Tensor q = Tensor::randn({1, 6, 4}, rng);
  const Tensor k = Tensor::randn({1, 6, 4}, rng);
  Tensor v({1, 6, 4});
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t x = 0; x < 4; ++x) v.at(0, i, x) = static_cast<float>(x);
  }
  const Tensor out = attention_streaming(q, k, v, true, 3);
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t x = 0; x < 4; ++x) {
      EXPECT_NEAR(out.at(0, i, x), static_cast<float>(x), 1e-5f);
    }
  }
}

}  // namespace
}  // namespace codesign::kern
