// Figure-shape regression tests: re-run each bench's sweep logic and
// assert the qualitative *shape* the paper's figure shows — saw-teeth,
// series orderings, saturation, crossovers. These are the executable form
// of EXPERIMENTS.md's "verdict" column.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/math_util.hpp"
#include "gemmsim/flash_attention.hpp"
#include "gemmsim/kernel_model.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

using gemm::GemmProblem;

const gpu::GpuSpec& a100() { return gpu::gpu_by_name("a100"); }

tfm::TransformerConfig sweep_cfg(std::int64_t h, std::int64_t a) {
  tfm::TransformerConfig c;
  c.name = "sweep";
  c.hidden_size = h;
  c.num_heads = a;
  c.num_layers = 1;
  c.seq_len = 2048;
  c.microbatch = 4;
  c.vocab_size = 50304;
  return c;
}

TEST(FigureShapes, Fig5aThroughputRisesAndSaturates) {
  // Broad square sweep: monotone rise, and the top decade nearly flat
  // (compute-bound saturation).
  std::vector<double> tf;
  for (std::int64_t n = 256; n <= 16384; n *= 2) {
    tf.push_back(gemm::select_kernel(GemmProblem::gemm(n, n, n), a100())
                     .tflops());
  }
  for (std::size_t i = 1; i < tf.size(); ++i) EXPECT_GE(tf[i], tf[i - 1]);
  EXPECT_LT(tf.back() / tf[tf.size() - 2], 1.05);  // saturated
  EXPECT_GT(tf.back() / tf.front(), 10.0);         // big dynamic range
}

TEST(FigureShapes, Fig5bSawToothHasMultipleTeeth) {
  // Fixed 256x128 tile over a fine sweep: count the drops (a drop =
  // throughput falls >5% between consecutive points). The wave boundaries
  // must produce at least 3 of them in [1280, 4096].
  int drops = 0;
  double prev = 0.0;
  for (std::int64_t n = 1280; n <= 4096; n += 128) {
    const double tf = gemm::estimate_with_tile(GemmProblem::gemm(n, n, n),
                                               gpu::largest_tile(), a100())
                          .tflops();
    if (prev > 0.0 && tf < 0.95 * prev) ++drops;
    prev = tf;
  }
  EXPECT_GE(drops, 3);
}

TEST(FigureShapes, Fig5cAutoSelectionNeverBelowFixed) {
  for (std::int64_t n = 1280; n <= 4096; n += 128) {
    const GemmProblem p = GemmProblem::gemm(n, n, n);
    EXPECT_GE(gemm::select_kernel(p, a100()).tflops(),
              gemm::estimate_with_tile(p, gpu::largest_tile(), a100())
                      .tflops() -
                  1e-9)
        << n;
  }
}

TEST(FigureShapes, Fig7SeriesOrderingAcrossFullSweep) {
  // For every h in the sweep, a larger pow2 granule of h/a never loses.
  // Group the a=32 sweep by granule and compare group means.
  std::map<std::int64_t, std::vector<double>> series;
  for (std::int64_t head_dim = 8; head_dim <= 160; head_dim += 8) {
    const auto cfg = sweep_cfg(head_dim * 32, 32);
    const double tf =
        gemm::select_kernel(tfm::attention_score_bmm(cfg), a100()).tflops();
    const auto key = static_cast<std::int64_t>(std::min<std::uint64_t>(
        largest_pow2_dividing(static_cast<std::uint64_t>(head_dim)), 64));
    series[key].push_back(tf);
  }
  double prev_mean = 0.0;
  for (const auto& [granule, values] : series) {
    double mean = 0.0;
    for (double v : values) mean += v;
    mean /= static_cast<double>(values.size());
    EXPECT_GT(mean, prev_mean) << "granule " << granule;
    prev_mean = mean;
  }
  EXPECT_GE(series.size(), 4u);  // 8, 16, 32, 64 present
}

TEST(FigureShapes, Fig10MlpSaturatesInH) {
  // MLP up-projection throughput: monotone-ish rise to a plateau over
  // 64-aligned h.
  double prev = 0.0;
  double last = 0.0;
  for (std::int64_t h = 1024; h <= 12288; h += 1024) {
    const double tf =
        gemm::select_kernel(tfm::mlp_up_gemm(sweep_cfg(h, 1)), a100())
            .tflops();
    EXPECT_GE(tf, prev * 0.97) << h;  // allow small wave wiggles
    prev = std::max(prev, tf);
    last = tf;
  }
  EXPECT_GT(last, 220.0);  // the plateau
}

TEST(FigureShapes, Fig12FlashRooflineMonotoneOverAlignedHeadDims) {
  double prev = 0.0;
  for (std::int64_t d : {16, 32, 64, 128}) {
    gemm::FlashAttentionProblem p;
    p.batch = 4;
    p.heads = 128;
    p.seq = 2048;
    p.head_dim = d;
    const double tf = gemm::estimate_flash_attention(p, a100()).tflops();
    EXPECT_GT(tf, prev) << d;
    prev = tf;
  }
}

TEST(FigureShapes, Fig20ZoomedVocabSweepTopsAt64Multiples) {
  // In the zoomed window every multiple of 64 beats every non-multiple.
  double worst_aligned = 1e30;
  double best_unaligned = 0.0;
  for (std::int64_t v = 14275; v <= 14336; ++v) {
    const double tf =
        gemm::select_kernel(GemmProblem::gemm(8192, v, 2560), a100())
            .tflops();
    if (v % 64 == 0) {
      worst_aligned = std::min(worst_aligned, tf);
    } else {
      best_unaligned = std::max(best_unaligned, tf);
    }
  }
  EXPECT_GT(worst_aligned, best_unaligned);
}

TEST(FigureShapes, Fig21to47LowGranuleSeriesAlwaysBelow64Series) {
  // Across the whole appendix grid of head counts: at matched h/a
  // granule, the 64-aligned point beats the odd point for the same a.
  for (const std::int64_t a : {8, 12, 16, 20, 24, 32, 40, 64, 128}) {
    const auto aligned = sweep_cfg(64 * a, a);
    // 72 elements: granule 8.
    const auto rough = sweep_cfg(72 * a, a);
    const double tf_aligned =
        gemm::select_kernel(tfm::attention_over_value_bmm(aligned), a100())
            .tflops();
    const double tf_rough =
        gemm::select_kernel(tfm::attention_over_value_bmm(rough), a100())
            .tflops();
    EXPECT_GT(tf_aligned, tf_rough) << "a = " << a;
  }
}

TEST(FigureShapes, Fig2GemmShareMonotoneInModelSize) {
  const gemm::GemmSimulator sim = gemm::GemmSimulator::for_gpu("a100");
  double prev = 0.0;
  for (const char* name :
       {"gpt3-125m", "gpt3-760m", "gpt3-2.7b", "gpt3-6.7b", "gpt3-175b"}) {
    const double frac =
        tfm::analyze_layer(tfm::model_by_name(name), sim).gemm_fraction;
    EXPECT_GT(frac, prev) << name;
    prev = frac;
  }
}

}  // namespace
}  // namespace codesign
