// Tests for the deterministic fault-injection subsystem (common/failpoint).
#include "common/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace codesign::fail {
namespace {

/// Every test starts and ends disarmed; clear() also zeroes the counters.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override {
    clear();
    EXPECT_FALSE(any_armed());
  }
};

TEST_F(FailpointTest, DisarmedSitesAreFreeAndSilent) {
  EXPECT_FALSE(any_armed());
  // Unarmed (and even unknown) sites are no-ops on the hit path.
  EXPECT_NO_THROW(hit("gemmsim.cache.lookup"));
  EXPECT_NO_THROW(hit("no.such.site", 42));
  EXPECT_EQ(stats("gemmsim.cache.lookup").hits, 0u);
}

TEST_F(FailpointTest, AlwaysFiresOnEveryHit) {
  configure("advisor.search.evaluate=always");
  EXPECT_TRUE(any_armed());
  EXPECT_THROW(hit("advisor.search.evaluate"), InjectedFault);
  EXPECT_THROW(hit("advisor.search.evaluate"), InjectedFault);
  const SiteStats s = stats("advisor.search.evaluate");
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.fires, 2u);
}

TEST_F(FailpointTest, FaultCarriesSiteNameAndTransience) {
  configure("gemmsim.select_kernel=always");
  try {
    hit("gemmsim.select_kernel");
    FAIL() << "armed always-failpoint did not throw";
  } catch (const InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("gemmsim.select_kernel"),
              std::string::npos);
    EXPECT_TRUE(e.transient());  // the default classification
  }
  configure("gemmsim.select_kernel=always:fatal");
  try {
    hit("gemmsim.select_kernel");
    FAIL() << "re-armed failpoint did not throw";
  } catch (const InjectedFault& e) {
    EXPECT_FALSE(e.transient());
  }
}

TEST_F(FailpointTest, InjectedFaultIsACodesignError) {
  configure("gemmsim.des.simulate=always");
  // The search layer catches Error subclasses; InjectedFault must be one.
  EXPECT_THROW(hit("gemmsim.des.simulate"), Error);
}

TEST_F(FailpointTest, OnceFiresExactlyOnTheNthHit) {
  configure("advisor.search.evaluate=once:3");
  EXPECT_NO_THROW(hit("advisor.search.evaluate"));
  EXPECT_NO_THROW(hit("advisor.search.evaluate"));
  EXPECT_THROW(hit("advisor.search.evaluate"), InjectedFault);
  EXPECT_NO_THROW(hit("advisor.search.evaluate"));
  EXPECT_EQ(stats("advisor.search.evaluate").fires, 1u);
}

TEST_F(FailpointTest, EveryFiresPeriodically) {
  configure("advisor.search.evaluate=every:2");
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      hit("advisor.search.evaluate");
    } catch (const InjectedFault&) {
      ++fires;
    }
  }
  EXPECT_EQ(fires, 5);
}

TEST_F(FailpointTest, ProbZeroNeverFiresProbOneAlwaysFires) {
  configure("advisor.search.evaluate=prob:0");
  for (std::uint64_t t = 0; t < 100; ++t) {
    EXPECT_NO_THROW(hit("advisor.search.evaluate", t));
  }
  configure("advisor.search.evaluate=prob:1");
  for (std::uint64_t t = 0; t < 100; ++t) {
    EXPECT_THROW(hit("advisor.search.evaluate", t), InjectedFault);
  }
}

TEST_F(FailpointTest, ProbDecisionIsAPureFunctionOfSeedAndToken) {
  const auto fired_set = [](const std::string& spec) {
    clear();
    configure(spec);
    std::set<std::uint64_t> fired;
    for (std::uint64_t t = 0; t < 1000; ++t) {
      try {
        hit("advisor.search.evaluate", t);
      } catch (const InjectedFault&) {
        fired.insert(t);
      }
    }
    return fired;
  };
  const auto a = fired_set("advisor.search.evaluate=prob:0.05:42");
  const auto b = fired_set("advisor.search.evaluate=prob:0.05:42");
  EXPECT_EQ(a, b);  // same seed: identical decisions, any order
  EXPECT_FALSE(a.empty());
  EXPECT_LT(a.size(), 200u);  // ~5%, loose bound
  const auto c = fired_set("advisor.search.evaluate=prob:0.05:43");
  EXPECT_NE(a, c);  // different seed: a different fire set
}

TEST_F(FailpointTest, TokenedProbIsHitOrderIndependent) {
  configure("advisor.search.evaluate=prob:0.5:7");
  std::vector<std::uint64_t> order(64);
  for (std::uint64_t t = 0; t < order.size(); ++t) order[t] = t;
  const auto run = [&] {
    std::set<std::uint64_t> fired;
    for (std::uint64_t t : order) {
      try {
        hit("advisor.search.evaluate", t);
      } catch (const InjectedFault&) {
        fired.insert(t);
      }
    }
    return fired;
  };
  const auto forward = run();
  std::reverse(order.begin(), order.end());
  EXPECT_EQ(run(), forward);
}

TEST_F(FailpointTest, ConcurrentHitsAreTSanCleanAndCounted) {
  configure("advisor.search.evaluate=prob:0.5:11");
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 250;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&fires, w] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        try {
          hit("advisor.search.evaluate",
              static_cast<std::uint64_t>(w * kHitsPerThread + i));
        } catch (const InjectedFault&) {
          fires.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const SiteStats s = stats("advisor.search.evaluate");
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads * kHitsPerThread));
  EXPECT_EQ(s.fires, static_cast<std::uint64_t>(fires.load()));
}

TEST_F(FailpointTest, OffDisarmsAndStatsSurviveRetirement) {
  configure("advisor.search.evaluate=always");
  EXPECT_THROW(hit("advisor.search.evaluate"), InjectedFault);
  configure("advisor.search.evaluate=off");
  EXPECT_FALSE(any_armed());
  EXPECT_NO_THROW(hit("advisor.search.evaluate"));
  // The counters from the armed period are retired, not lost.
  const SiteStats s = stats("advisor.search.evaluate");
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.fires, 1u);
}

TEST_F(FailpointTest, SpecsAccumulateAcrossConfigureCalls) {
  configure("advisor.search.evaluate=always");
  configure("gemmsim.cache.lookup=always");
  EXPECT_THROW(hit("advisor.search.evaluate"), InjectedFault);
  EXPECT_THROW(hit("gemmsim.cache.lookup"), InjectedFault);
  configure("advisor.search.evaluate=off");
  EXPECT_NO_THROW(hit("advisor.search.evaluate"));
  EXPECT_THROW(hit("gemmsim.cache.lookup"), InjectedFault);
}

TEST_F(FailpointTest, CommaSeparatedSpecArmsMultipleSites) {
  configure(
      "advisor.search.evaluate=once:1 , gemmsim.des.simulate=always:fatal");
  EXPECT_THROW(hit("advisor.search.evaluate"), InjectedFault);
  EXPECT_THROW(hit("gemmsim.des.simulate"), InjectedFault);
}

TEST_F(FailpointTest, RegisteredSitesBecomeConfigurable) {
  EXPECT_THROW(configure("tests.custom.site=always"), ConfigError);
  register_site("tests.custom.site");
  const auto sites = known_sites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "tests.custom.site"),
            sites.end());
  configure("tests.custom.site=always");
  EXPECT_THROW(hit("tests.custom.site"), InjectedFault);
}

TEST_F(FailpointTest, BadSpecsAreTypedConfigErrors) {
  EXPECT_THROW(configure("no.such.site=always"), ConfigError);
  EXPECT_THROW(configure("advisor.search.evaluate"), ConfigError);
  EXPECT_THROW(configure("advisor.search.evaluate="), ConfigError);
  EXPECT_THROW(configure("advisor.search.evaluate=banana"), ConfigError);
  EXPECT_THROW(configure("advisor.search.evaluate=once"), ConfigError);
  EXPECT_THROW(configure("advisor.search.evaluate=once:0"), ConfigError);
  EXPECT_THROW(configure("advisor.search.evaluate=prob:1.5"), ConfigError);
  EXPECT_THROW(configure("advisor.search.evaluate=prob"), ConfigError);
  EXPECT_FALSE(any_armed());  // nothing half-armed by a failed spec
}

TEST_F(FailpointTest, ConfigureFromEnvReadsTheVariable) {
  ::setenv("CODESIGN_FAILPOINTS", "advisor.search.evaluate=always", 1);
  configure_from_env();
  ::unsetenv("CODESIGN_FAILPOINTS");
  EXPECT_THROW(hit("advisor.search.evaluate"), InjectedFault);
}

TEST_F(FailpointTest, StableTokenIsFnv1a) {
  // Pinned values: the token function must stay stable across builds, or
  // recorded failure sets stop reproducing.
  EXPECT_EQ(token(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(token("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(token("gpt3-2.7b-a32-h2560"), token("gpt3-2.7b-a32-h2560"));
  EXPECT_NE(token("gpt3-2.7b-a32-h2560"), token("gpt3-2.7b-a32-h2561"));
}

}  // namespace
}  // namespace codesign::fail
