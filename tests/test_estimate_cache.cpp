// Tests for gemmsim/estimate_cache.hpp — the sharded LRU memo of
// KernelEstimates and its wiring into GemmSimulator::estimate.
#include "gemmsim/estimate_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hpp"
#include "gemmsim/simulator.hpp"

namespace codesign::gemm {
namespace {

GemmProblem problem(std::int64_t m, std::int64_t n, std::int64_t k) {
  return GemmProblem::gemm(m, n, k);
}

/// Field-exact equality of two estimates (the cache contract is that a hit
/// returns exactly what the miss computed).
void expect_identical(const KernelEstimate& a, const KernelEstimate& b) {
  EXPECT_EQ(a.problem, b.problem);
  EXPECT_EQ(a.tile.tm, b.tile.tm);
  EXPECT_EQ(a.tile.tn, b.tile.tn);
  EXPECT_EQ(a.tile.tk, b.tile.tk);
  EXPECT_EQ(a.tile_q.tiles_total, b.tile_q.tiles_total);
  EXPECT_EQ(a.wave_q.waves, b.wave_q.waves);
  EXPECT_EQ(a.compute_time, b.compute_time);    // bitwise: same computation
  EXPECT_EQ(a.memory_time, b.memory_time);
  EXPECT_EQ(a.launch_overhead, b.launch_overhead);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.bound, b.bound);
  EXPECT_EQ(a.alignment.combined, b.alignment.combined);
}

TEST(GemmProblemHash, EqualProblemsHashEqual) {
  const GemmProblem a = problem(512, 1024, 2048);
  GemmProblem b = a;
  EXPECT_EQ(a.hash_value(), b.hash_value());
  b.m = 513;
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash_value(), b.hash_value());  // not guaranteed, but FNV
                                              // must split adjacent shapes
}

TEST(GemmProblemHash, DistinguishesAllFields) {
  const GemmProblem base = problem(256, 256, 256);
  GemmProblem other = base;
  other.batch = 2;
  EXPECT_NE(base.hash_value(), other.hash_value());
  other = base;
  other.dtype = gpu::DType::kBF16;
  EXPECT_NE(base.hash_value(), other.hash_value());
  other = base;
  other.accumulate_into_c = true;
  EXPECT_NE(base.hash_value(), other.hash_value());
}

TEST(EstimateCache, HitAndMissCounters) {
  GemmSimulator sim = GemmSimulator::for_gpu("a100");
  sim.enable_cache();

  const GemmProblem p = problem(4096, 4096, 1024);
  sim.estimate(p);
  CacheStats s = sim.cache()->stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.entries, 1u);

  sim.estimate(p);
  sim.estimate(p);
  s = sim.cache()->stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 2.0 / 3.0);

  sim.estimate(problem(4096, 4096, 2048));  // different k → new entry
  s = sim.cache()->stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(EstimateCache, CachedEqualsUncachedBitForBit) {
  const gpu::GpuSpec& gpu = gpu::gpu_by_name("a100");
  GemmSimulator uncached(gpu);
  GemmSimulator cached(gpu);
  cached.enable_cache();

  const std::vector<GemmProblem> shapes = {
      problem(2048, 2560, 2560),   problem(80, 80, 2560),
      problem(4096, 50304, 2560),  GemmProblem::bmm(64, 2048, 2048, 80),
      problem(1, 1, 1),            problem(108 * 256, 128, 64),
  };
  for (const GemmProblem& p : shapes) {
    const KernelEstimate reference = uncached.estimate(p);
    expect_identical(reference, cached.estimate(p));  // miss path
    expect_identical(reference, cached.estimate(p));  // hit path
    // And against the raw kernel-model call the simulator memoizes.
    expect_identical(reference, select_kernel(p, gpu));
  }
}

TEST(EstimateCache, FixedPolicyCachedEqualsEstimateWithTile) {
  const gpu::GpuSpec& gpu = gpu::gpu_by_name("v100");
  GemmSimulator fixed(gpu, TilePolicy::kFixedLargest);
  fixed.enable_cache();
  const GemmProblem p = problem(1000, 1000, 1000);
  const KernelEstimate direct = estimate_with_tile(p, gpu::largest_tile(), gpu);
  expect_identical(direct, fixed.estimate(p));
  expect_identical(direct, fixed.estimate(p));
}

TEST(EstimateCache, KeySeparatesPolicyAndGpu) {
  auto cache = std::make_shared<EstimateCache>();
  GemmSimulator auto_a100(gpu::gpu_by_name("a100"));
  GemmSimulator fixed_a100(gpu::gpu_by_name("a100"), TilePolicy::kFixedLargest);
  GemmSimulator auto_v100(gpu::gpu_by_name("v100"));
  auto_a100.set_cache(cache);
  fixed_a100.set_cache(cache);
  auto_v100.set_cache(cache);

  // A shape whose auto-selected tile differs from the fixed 256x128.
  const GemmProblem p = problem(96, 96, 4096);
  auto_a100.estimate(p);
  fixed_a100.estimate(p);
  auto_v100.estimate(p);
  const CacheStats s = cache->stats();
  EXPECT_EQ(s.misses, 3u);  // three distinct keys, no false sharing
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.entries, 3u);
  EXPECT_NE(auto_a100.estimate(p).tile.tm, fixed_a100.estimate(p).tile.tm);
}

TEST(EstimateCache, LruEvictionWithinCapacity) {
  CacheOptions opt;
  opt.capacity = 4;
  opt.shards = 1;  // single shard → strict global LRU order
  GemmSimulator sim(gpu::gpu_by_name("a100"));
  sim.set_cache(std::make_shared<EstimateCache>(opt));

  for (std::int64_t i = 1; i <= 5; ++i) {
    sim.estimate(problem(64 * i, 64, 64));
  }
  CacheStats s = sim.cache()->stats();
  EXPECT_EQ(s.misses, 5u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 4u);

  // The least recently used entry (i = 1) was evicted: touching it again
  // is a miss; the most recent (i = 5) is still a hit.
  sim.estimate(problem(64 * 5, 64, 64));
  sim.estimate(problem(64 * 1, 64, 64));
  s = sim.cache()->stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 6u);
}

TEST(EstimateCache, TouchRefreshesLruOrder) {
  CacheOptions opt;
  opt.capacity = 2;
  opt.shards = 1;
  GemmSimulator sim(gpu::gpu_by_name("a100"));
  sim.set_cache(std::make_shared<EstimateCache>(opt));

  const GemmProblem a = problem(64, 64, 64);
  const GemmProblem b = problem(128, 64, 64);
  const GemmProblem c = problem(192, 64, 64);
  sim.estimate(a);
  sim.estimate(b);
  sim.estimate(a);  // a is now most recent
  sim.estimate(c);  // evicts b, not a
  CacheStats before = sim.cache()->stats();
  sim.estimate(a);
  EXPECT_EQ(sim.cache()->stats().hits, before.hits + 1);  // a survived
  sim.estimate(b);
  EXPECT_EQ(sim.cache()->stats().misses, before.misses + 1);  // b evicted
}

TEST(EstimateCache, ClearDropsEntriesKeepsCounters) {
  GemmSimulator sim = GemmSimulator::for_gpu("a100");
  sim.enable_cache();
  sim.estimate(problem(512, 512, 512));
  sim.estimate(problem(512, 512, 512));
  sim.cache()->clear();
  CacheStats s = sim.cache()->stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.hits, 1u);  // counters accumulate across clear()
  sim.estimate(problem(512, 512, 512));
  EXPECT_EQ(sim.cache()->stats().misses, 2u);
}

TEST(EstimateCache, LookupInsertTestHooks) {
  EstimateCache cache;
  const gpu::GpuSpec& gpu = gpu::gpu_by_name("a100");
  const GemmProblem p = problem(777, 333, 111);
  const EstimateCache::Key key{p, TilePolicy::kAuto, &gpu};

  KernelEstimate out;
  EXPECT_FALSE(cache.lookup(key, &out));
  cache.insert(key, select_kernel(p, gpu));
  ASSERT_TRUE(cache.lookup(key, &out));
  expect_identical(out, select_kernel(p, gpu));
}

TEST(EstimateCache, RejectsZeroCapacity) {
  CacheOptions opt;
  opt.capacity = 0;
  EXPECT_THROW(EstimateCache cache(opt), Error);
}

TEST(EstimateCache, ConcurrentMixedWorkloadStaysExact) {
  GemmSimulator sim = GemmSimulator::for_gpu("a100");
  sim.enable_cache();
  GemmSimulator reference = GemmSimulator::for_gpu("a100");

  // 8 threads hammer an overlapping working set; every answer must match
  // the uncached single-threaded result exactly.
  std::vector<std::thread> workers;
  std::vector<int> failures(8, 0);
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([w, &sim, &reference, &failures] {
      for (int round = 0; round < 40; ++round) {
        const std::int64_t m = 64 * (1 + (w + round) % 10);
        const GemmProblem p = GemmProblem::gemm(m, 2560, 2560);
        if (sim.estimate(p).time != reference.estimate(p).time) {
          ++failures[static_cast<std::size_t>(w)];
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (int f : failures) EXPECT_EQ(f, 0);
  const CacheStats s = sim.cache()->stats();
  EXPECT_EQ(s.hits + s.misses, 8u * 40u);
  EXPECT_LE(s.entries, 10u);  // only 10 distinct shapes exist
}

}  // namespace
}  // namespace codesign::gemm
