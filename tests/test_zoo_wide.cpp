// Zoo-wide robustness suite: every public analysis must work for every
// model in the registry on every GPU in the registry (a cross-product
// integration net that catches special-case assumptions — GQA, encoders,
// SwiGLU, parallel layers, untied heads — breaking any pipeline stage).
#include <gtest/gtest.h>

#include "advisor/report.hpp"
#include "advisor/rules.hpp"
#include "gemmsim/explain.hpp"
#include "transformer/flops.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/inference.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"
#include "transformer/trace.hpp"
#include "transformer/training.hpp"

namespace codesign {
namespace {

class EveryModel : public ::testing::TestWithParam<std::string> {
 protected:
  const tfm::TransformerConfig& cfg() const {
    return tfm::model_by_name(GetParam());
  }
};

TEST_P(EveryModel, AnalyticsPipelineEndToEnd) {
  const gemm::GemmSimulator sim = gemm::GemmSimulator::for_gpu("a100");
  const auto& c = cfg();

  // Parameter and FLOP accounting.
  EXPECT_GT(tfm::exact_param_count(c), 0);
  EXPECT_GT(tfm::layer_forward_flops(c), 0.0);

  // GEMM mapping: every problem validates and has positive work.
  for (const auto& p : tfm::layer_gemms(c)) {
    EXPECT_NO_THROW(p.validate()) << c.name;
    EXPECT_GT(p.flops(), 0.0) << c.name;
  }

  // Layer + model latency.
  const auto layer = tfm::analyze_layer(c, sim);
  EXPECT_GT(layer.throughput_tflops, 0.0) << c.name;
  EXPECT_GT(layer.gemm_fraction, 0.0) << c.name;
  const auto model = tfm::analyze_model(c, sim);
  EXPECT_GT(model.tokens_per_second, 0.0) << c.name;

  // Training step + memory.
  const auto step = tfm::analyze_training_step(c, sim);
  EXPECT_GT(step.mfu, 0.0) << c.name;
  EXPECT_LT(step.mfu, 1.0) << c.name;
  const auto mem = tfm::training_memory(c);
  EXPECT_GT(mem.total_bytes, 0.0) << c.name;

  // Rules evaluate without throwing.
  advisor::RuleContext ctx;
  ctx.gpu = &sim.gpu();
  EXPECT_FALSE(advisor::check_rules(c, ctx).empty()) << c.name;

  // Trace export.
  EXPECT_GT(tfm::trace_json(c, sim).size(), 100u) << c.name;

  // Decoder-only analyses.
  if (c.kind == tfm::ModelKind::kDecoder) {
    tfm::InferenceWorkload w;
    w.prompt_len = 64;
    w.generate_tokens = 64;
    const auto inf = tfm::estimate_inference(c, sim, w);
    EXPECT_GT(inf.tokens_per_second, 0.0) << c.name;
  }
}

TEST_P(EveryModel, WorksOnEveryGpu) {
  const auto& c = cfg();
  for (const std::string& gid : gpu::known_gpus()) {
    const gemm::GemmSimulator sim = gemm::GemmSimulator::for_gpu(gid);
    const auto layer = tfm::analyze_layer(c, sim);
    EXPECT_GT(layer.throughput_tflops, 0.0) << c.name << " on " << gid;
    // Throughput can never exceed the device's fp16 tensor peak.
    EXPECT_LT(layer.throughput_tflops,
              sim.gpu().tensor_flops_fp16 / 1e12 + 1e-9)
        << c.name << " on " << gid;
  }
}

TEST_P(EveryModel, ExplainTheHeaviestGemm) {
  const auto& c = cfg();
  const auto& g = gpu::gpu_by_name("a100");
  // The MLP up-projection is always present; its factor decomposition
  // must multiply out exactly.
  const auto b = gemm::explain_gemm(tfm::mlp_up_gemm(c), g);
  EXPECT_NEAR(b.peak_tflops * b.total_factor(), b.observed_tflops,
              b.observed_tflops * 1e-9)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, EveryModel, ::testing::ValuesIn(tfm::known_models()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace codesign
