// Tests for common/thread_pool.hpp — the fixed-size worker pool behind the
// parallel design-space searches, including the determinism contract:
// an N-thread search reproduces the 1-thread output exactly.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "advisor/search.hpp"
#include "common/error.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, ZeroItemsIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ZeroThreadsResolvesToHardware) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitGrainCoversTail) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(10);
  pool.parallel_for(10, [&](std::size_t i) { ++counts[i]; }, /*grain=*/4);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ThreadPool, PropagatesTheFirstExceptionAndFastFails) {
  // One worker drains the chunk queue in submission order, which makes the
  // fast-fail cutoff exact: every index before the throwing one ran, and
  // none after it (their chunks observe the failed flag and skip).
  ThreadPool pool(1);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 37) throw Error("boom at 37");
            ++completed;
          },
          /*grain=*/1),
      Error);
  EXPECT_EQ(completed.load(), 37);
}

TEST(ThreadPool, FastFailNeverRunsMoreThanTheNonThrowingIndices) {
  // Concurrent version: how many chunks start before the flag is observed
  // is scheduling-dependent, but the failing index's own chunk must not
  // count and the call still reports the first error.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 0) throw Error("boom at 0");
            ++completed;
          },
          /*grain=*/1),
      Error);
  EXPECT_LE(completed.load(), 99);
}

TEST(ThreadPool, UsableAfterAnException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8, [](std::size_t) { throw Error("always"); }), Error);
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ParallelMapPreservesOrder) {
  ThreadPool pool(4);
  std::vector<int> in(257);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<int>(i);
  const std::vector<int> out =
      parallel_map(pool, in, [](int v) { return v * v; });
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

// --- the determinism contract on a real search ---------------------------

advisor::SearchOptions with_threads(std::size_t threads) {
  advisor::SearchOptions opt;
  opt.threads = threads;
  return opt;
}

TEST(ThreadPool, SearchHeadsIdenticalAt1And8Threads) {
  const auto base = tfm::model_by_name("pythia-160m");
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  const auto seq = advisor::search_heads(base, sim, with_threads(1));
  const auto par = advisor::search_heads(base, sim, with_threads(8));
  ASSERT_FALSE(seq.empty());
  EXPECT_EQ(seq, par);  // field-exact, every double included
}

TEST(ThreadPool, SearchJointIdenticalAt1And8ThreadsAndWithCache) {
  const auto base = tfm::model_by_name("pythia-160m");
  const auto plain = gemm::GemmSimulator::for_gpu("a100");
  gemm::GemmSimulator cached = plain;
  cached.enable_cache();

  const auto reference = advisor::search_joint(base, plain, 0.1, 0,
                                               with_threads(1));
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference,
            advisor::search_joint(base, plain, 0.1, 0, with_threads(8)));
  EXPECT_EQ(reference,
            advisor::search_joint(base, cached, 0.1, 0, with_threads(8)));
  // Warm cache, again: hits must reproduce the same bits.
  EXPECT_EQ(reference,
            advisor::search_joint(base, cached, 0.1, 0, with_threads(8)));
  EXPECT_GT(cached.cache()->stats().hits, 0u);
}

TEST(ThreadPool, MlpScanIdenticalAt1And8Threads) {
  const auto base = tfm::model_by_name("pythia-160m");
  const auto sim = gemm::GemmSimulator::for_gpu("a100");
  const auto seq =
      advisor::search_mlp_intermediate(base, sim, 3000, 3200, with_threads(1));
  const auto par =
      advisor::search_mlp_intermediate(base, sim, 3000, 3200, with_threads(8));
  ASSERT_FALSE(seq.empty());
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace codesign
