// Tests for transformer/pipeline.hpp — the L % p rule quantified.
#include "transformer/pipeline.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign::tfm {
namespace {

gemm::GemmSimulator sim() { return gemm::GemmSimulator::for_gpu("a100"); }

PipelineReport run(std::int64_t stages, std::int64_t microbatches,
                   const char* model = "gpt3-2.7b") {
  PipelineSchedule s;
  s.stages = stages;
  s.microbatches = microbatches;
  return analyze_pipeline(model_by_name(model), sim(), s);
}

TEST(Pipeline, BalancedCase) {
  // L = 32, p = 8: perfectly balanced.
  const auto r = run(8, 8);
  EXPECT_TRUE(r.balanced);
  EXPECT_EQ(r.layers_per_stage_max, 4);
  EXPECT_EQ(r.layers_per_stage_min, 4);
  EXPECT_DOUBLE_EQ(r.imbalance_factor, 1.0);
  // Bubble: (p-1)/(m+p-1) = 7/15.
  EXPECT_DOUBLE_EQ(r.bubble_fraction, 7.0 / 15.0);
  // Balanced efficiency is exactly 1 - bubble.
  EXPECT_NEAR(r.efficiency, 1.0 - r.bubble_fraction, 1e-12);
}

TEST(Pipeline, ImbalancedCase) {
  // L = 32, p = 6: stages hold 6,6,6,6,6,2 — slowest has ceil(32/6) = 6.
  const auto r = run(6, 8);
  EXPECT_FALSE(r.balanced);
  EXPECT_EQ(r.layers_per_stage_max, 6);
  EXPECT_EQ(r.layers_per_stage_min, 5);
  EXPECT_NEAR(r.imbalance_factor, 6.0 * 6.0 / 32.0, 1e-12);  // 1.125
  EXPECT_NEAR(r.efficiency,
              (1.0 - r.bubble_fraction) / r.imbalance_factor, 1e-12);
}

TEST(Pipeline, StepTimeFormula) {
  const auto r = run(4, 16);
  EXPECT_NEAR(r.step_time, 19.0 * r.microbatch_stage_time, 1e-15);
  EXPECT_GT(r.tokens_per_second, 0.0);
}

TEST(Pipeline, MoreMicrobatchesShrinkBubble) {
  const auto r8 = run(8, 8);
  const auto r64 = run(8, 64);
  EXPECT_LT(r64.bubble_fraction, r8.bubble_fraction);
  EXPECT_GT(r64.efficiency, r8.efficiency);
}

TEST(Pipeline, DivisibleStageCountBeatsNearbyIndivisible) {
  // The paper's rule, per-GPU: at equal microbatches, p = 8 (divides 32)
  // must have higher efficiency than p = 6 or p = 7.
  const double e8 = run(8, 32).efficiency;
  const double e7 = run(7, 32).efficiency;
  const double e6 = run(6, 32).efficiency;
  EXPECT_GT(e8, e7);
  EXPECT_GT(e8, e6);
}

TEST(Pipeline, SingleStageIsBubbleFree) {
  const auto r = run(1, 4);
  EXPECT_DOUBLE_EQ(r.bubble_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.imbalance_factor, 1.0);
  EXPECT_NEAR(r.efficiency, 1.0, 1e-12);
}

TEST(Pipeline, Validation) {
  PipelineSchedule s;
  s.stages = 0;
  EXPECT_THROW(analyze_pipeline(model_by_name("gpt3-2.7b"), sim(), s), Error);
  s.stages = 64;  // more stages than layers (L = 32)
  s.microbatches = 8;
  EXPECT_THROW(analyze_pipeline(model_by_name("gpt3-2.7b"), sim(), s), Error);
  s.stages = 4;
  s.microbatches = 0;
  EXPECT_THROW(analyze_pipeline(model_by_name("gpt3-2.7b"), sim(), s), Error);
}

TEST(Pipeline, BalancedStageCounts) {
  // L = 32: divisors up to 16.
  const auto counts = balanced_stage_counts(model_by_name("gpt3-2.7b"), 16);
  const std::vector<std::int64_t> expected = {1, 2, 4, 8, 16};
  EXPECT_EQ(counts, expected);
  // Pythia-12B: L = 36.
  const auto c36 = balanced_stage_counts(model_by_name("pythia-12b"), 12);
  const std::vector<std::int64_t> expected36 = {1, 2, 3, 4, 6, 9, 12};
  EXPECT_EQ(c36, expected36);
}

}  // namespace
}  // namespace codesign::tfm
