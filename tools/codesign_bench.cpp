// codesign-bench — the single entry point of the continuous benchmark
// harness (docs/BENCHMARKS.md).
//
//   codesign-bench list    [--suite=S] [--filter=SUB]
//   codesign-bench run     [--suite=S] [--filter=SUB] [--gpu=ID]
//                          [--policy=auto|fixed] [--warmup=N] [--repeats=N]
//                          [--threads=N] [--out=PATH] [--format=F]
//   codesign-bench compare <baseline.json> <candidate.json>
//                          [--min-frac=F] [--mad-factor=F] [--no-data-check]
//
// `run` times every selected case (warmup + repeats, median/MAD/p95) and
// writes a schema-versioned BENCH_<suite>.json; `compare` gates a
// candidate report against a baseline with noise-aware thresholds and
// exits nonzero on a regression, checksum mismatch, or missing case.
#include <algorithm>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_cases.hpp"
#include "benchlib/compare.hpp"
#include "benchlib/runner.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace codesign {
namespace {

constexpr const char* kUsage =
    "usage: codesign-bench <command> [flags]\n"
    "\n"
    "commands:\n"
    "  list                     list registered cases\n"
    "  run                      time the selected cases, write a report\n"
    "  compare <base> <cand>    gate candidate report against baseline\n"
    "\n"
    "list/run flags:\n"
    "  --suite=S       smoke | fig | ext | perf (default: all cases)\n"
    "  --filter=SUB    substring match on case name or owning bench\n"
    "run flags:\n"
    "  --gpu=ID        simulated GPU (default a100)\n"
    "  --policy=P      tile policy: auto | fixed (default auto)\n"
    "  --warmup=N      untimed executions per case (default 1)\n"
    "  --repeats=N     timed executions per case (default 5)\n"
    "  --threads=N     cases timed concurrently (default 1; checksums and\n"
    "                  report bytes are identical at any thread count)\n"
    "  --out=PATH      report path (default BENCH_<suite>.json)\n"
    "  --format=F      table format: ascii | csv | markdown\n"
    "compare flags:\n"
    "  --min-frac=F    regression threshold floor (default 0.05)\n"
    "  --mad-factor=F  noise band width in MADs (default 3.0)\n"
    "  --no-data-check skip checksum gating (timing-only compare)\n";

/// Flags a subcommand accepts; anything else on the command line is a
/// usage error (same contract as the bench binaries' BenchSpec).
void reject_unknown_flags(const CliArgs& args,
                          const std::vector<std::string>& allowed) {
  std::vector<std::string> unknown;
  const std::set<std::string> ok(allowed.begin(), allowed.end());
  for (const std::string& name : args.flag_names()) {
    if (!ok.count(name)) unknown.push_back(name);
  }
  if (unknown.empty()) return;
  std::sort(unknown.begin(), unknown.end());
  throw UsageError("unknown flag(s): --" + join(unknown, ", --") + "\n\n" +
                   kUsage);
}

int cmd_list(const CliArgs& args) {
  reject_unknown_flags(args, {"suite", "filter", "format"});
  benchlib::BenchRegistry reg;
  bench::register_all_cases(reg);
  const auto selected = reg.select(args.get_string("suite", ""),
                                   args.get_string("filter", ""));
  TableWriter t({"case", "bench", "suites", "description"});
  for (const benchlib::BenchCase* c : selected) {
    t.new_row()
        .cell(c->name)
        .cell(c->bench)
        .cell(join(c->suites, ","))
        .cell(c->description);
  }
  t.write(std::cout, parse_table_format(args.get_string("format", "ascii")));
  std::cout << selected.size() << " of " << reg.size() << " cases\n";
  return kExitOk;
}

int cmd_run(const CliArgs& args) {
  reject_unknown_flags(args, {"suite", "filter", "gpu", "policy", "warmup",
                              "repeats", "threads", "out", "format"});
  benchlib::RunOptions opt;
  opt.suite = args.get_string("suite", "");
  opt.filter = args.get_string("filter", "");
  opt.gpu = args.get_string("gpu", "a100");
  opt.policy = args.get_string("policy", "auto");
  opt.timing.warmup = static_cast<int>(args.get_int("warmup", 1));
  opt.timing.repeats = static_cast<int>(args.get_int("repeats", 5));
  opt.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  if (opt.timing.warmup < 0 || opt.timing.repeats < 1 || opt.threads < 1) {
    throw UsageError(
        "--warmup must be >= 0, --repeats and --threads must be >= 1");
  }
  const std::string out = args.get_string(
      "out",
      "BENCH_" + (opt.suite.empty() ? std::string("all") : opt.suite) +
          ".json");

  benchlib::BenchRegistry reg;
  bench::register_all_cases(reg);
  const benchlib::BenchReport report = benchlib::run_suite(reg, opt);

  TableWriter t({"case", "median ms", "mad ms", "p95 ms", "outliers",
                 "checksum", "stable"});
  for (const benchlib::CaseStats& s : report.cases) {
    t.new_row()
        .cell(s.name)
        .cell(s.median_ms, 3)
        .cell(s.mad_ms, 3)
        .cell(s.p95_ms, 3)
        .cell(static_cast<std::int64_t>(s.outliers))
        .cell(str_format("%016llx",
                         static_cast<unsigned long long>(s.checksum)))
        .cell(s.checksum_stable ? "yes" : "NO");
  }
  t.write(std::cout, parse_table_format(args.get_string("format", "ascii")));

  report.write_file(out);
  std::cout << report.cases.size() << " cases -> " << out << "\n";

  int unstable = 0;
  for (const benchlib::CaseStats& s : report.cases) {
    if (!s.checksum_stable) ++unstable;
  }
  if (unstable > 0) {
    std::cerr << "error: " << unstable
              << " case(s) produced a nondeterministic checksum\n";
    return kExitError;
  }
  return kExitOk;
}

int cmd_compare(const CliArgs& args) {
  reject_unknown_flags(args,
                       {"min-frac", "mad-factor", "no-data-check", "format"});
  // positional()[0] is the subcommand itself.
  const auto& pos = args.positional();
  if (pos.size() != 3) {
    throw UsageError(
        "compare needs exactly two report paths: codesign-bench compare "
        "<baseline.json> <candidate.json>");
  }
  const benchlib::BenchReport baseline = benchlib::BenchReport::load_file(pos[1]);
  const benchlib::BenchReport candidate =
      benchlib::BenchReport::load_file(pos[2]);

  benchlib::CompareOptions opt;
  opt.min_frac = args.get_double("min-frac", opt.min_frac);
  opt.mad_factor = args.get_double("mad-factor", opt.mad_factor);
  opt.check_data = !args.get_bool("no-data-check", false);
  if (opt.min_frac < 0.0 || opt.mad_factor < 0.0) {
    throw UsageError("--min-frac and --mad-factor must be >= 0");
  }

  const benchlib::CompareResult result =
      benchlib::compare_reports(baseline, candidate, opt);
  for (const std::string& w : result.warnings) {
    std::cout << "warning: " << w << "\n";
  }
  benchlib::delta_table(result).write(
      std::cout, parse_table_format(args.get_string("format", "ascii")));
  std::cout << str_format(
      "%d regression(s), %d data mismatch(es), %d missing, %d faster\n",
      result.regressions, result.data_mismatches, result.missing,
      result.faster);
  if (!result.ok()) {
    std::cerr << "error: candidate fails the regression gate\n";
    return kExitError;
  }
  std::cout << "gate: PASS\n";
  return kExitOk;
}

int run(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  if (args.positional().empty() || args.get_bool("help", false)) {
    std::cout << kUsage;
    return args.positional().empty() && !args.get_bool("help", false)
               ? kExitUsage
               : kExitOk;
  }
  const std::string& cmd = args.positional().front();
  if (cmd == "list") return cmd_list(args);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "compare") return cmd_compare(args);
  throw UsageError("unknown command '" + cmd + "'\n\n" + kUsage);
}

}  // namespace
}  // namespace codesign

int main(int argc, char** argv) {
  try {
    return codesign::run(argc, argv);
  } catch (const codesign::Error& e) {
    std::cerr << "codesign-bench: " << e.what() << "\n";
    return codesign::exit_code_for_current_exception();
  } catch (const std::exception& e) {
    std::cerr << "codesign-bench: internal error: " << e.what() << "\n";
    return codesign::kExitInternal;
  }
}
