#!/usr/bin/env sh
# export_figures.sh — regenerate every paper figure's data as CSV.
#
# Usage: tools/export_figures.sh [build-dir] [output-dir] [gpu]
# Writes one .csv per bench binary (CSV mode interleaves "#" comment lines
# between series; strip them or split on them when plotting).
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-figures}"
GPU="${3:-a100}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR/bench' not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"

for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  case "$name" in
    bench_kernels_cpu)
      # google-benchmark has its own CSV reporter.
      "$bench" --benchmark_format=csv >"$OUT_DIR/$name.csv" 2>/dev/null
      ;;
    *)
      "$bench" --gpu="$GPU" --format=csv >"$OUT_DIR/$name.csv"
      ;;
  esac
  echo "wrote $OUT_DIR/$name.csv"
done

echo "done: $(ls "$OUT_DIR" | wc -l) figure data files in $OUT_DIR/"
