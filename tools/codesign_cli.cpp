// codesign — the command-line front door to the library.
//
//   codesign gpus                       list the GPU spec registry
//   codesign models                     list the model zoo
//   codesign advise  <model> [--gpu=]   shape-advisor report
//   codesign gemm    --m= --n= --k= [--batch=] [--dtype=] [--gpu=]
//                                       estimate one (batched) GEMM
//   codesign train   <model> [--gpu=]   training-step latency + memory
//   codesign infer   <model> [--gpu=] [--prompt=] [--gen=] [--batch=]
//   codesign pipeline <model> --stages= [--microbatches=] [--gpu=]
//
// Every subcommand accepts --gpu (default a100). Models are zoo names
// (see `codesign models`).
#include <iostream>

#include "advisor/attribution_report.hpp"
#include "advisor/compare.hpp"
#include "advisor/designer.hpp"
#include "advisor/report.hpp"
#include "advisor/search.hpp"
#include "comm/cluster_spec.hpp"
#include "comm/parallelism.hpp"
#include "common/cancel.hpp"
#include "common/cli.hpp"
#include "gemmsim/explain.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "gemmsim/simulator.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "serve/ops.hpp"
#include "serve/server.hpp"
#include "sweep/report.hpp"
#include "transformer/config_parse.hpp"
#include "transformer/inference.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"
#include "transformer/pipeline.hpp"
#include "transformer/profile.hpp"
#include "transformer/trace.hpp"
#include "transformer/training.hpp"

#include <fstream>
#include <memory>
#include <optional>
#include <sstream>

namespace codesign {
namespace {

int usage() {
  std::cerr
      << "usage: codesign <command> [args]\n"
         "  gpus                         list known GPUs\n"
         "  clusters                     list the Table-III systems\n"
         "  models                       list the model zoo\n"
         "  advise <model> [--gpu=] [--threads=N] [--cache] [--metrics=<f>]\n"
         "         [--attribution=<f>]   sizing-rule report + re-shapes\n"
         "  analyze <model> [--gpu=] [--cache] [--out=<f>] [--no-sensitivity]\n"
         "                               attribution & sensitivity report\n"
         "                               (versioned JSON; byte-identical\n"
         "                               across thread counts — see\n"
         "                               docs/OBSERVABILITY.md)\n"
         "  search <model> [--mode=joint|heads|hidden|mlp] [--radius=0.1]\n"
         "         [--max=16] [--threads=N] [--cache] [--metrics=<f>]\n"
         "         [--attribution=<f>]   (also records advisor.sensitivity.*\n"
         "                               series when --metrics is set)\n"
         "         [--lo=|--hi=]         (mlp d_ff range; default (8/3)h±25%)\n"
         "         [--strict] [--retries=2] [--failpoints=<spec>]\n"
         "         [--deadline-ms=N] [--checkpoint=<f>] [--resume]\n"
         "         [--checkpoint-every=64]\n"
         "                               ranked shape search (resumable;\n"
         "                               see docs/ROBUSTNESS.md)\n"
         "  sweep --config=<f> [--threads=N] [--cache] [--json] [--out=<f>]\n"
         "        [--strict] [--retries=2] [--failpoints=<spec>]\n"
         "        [--deadline-ms=N] [--checkpoint=<f>] [--resume]\n"
         "        [--checkpoint-every=64]\n"
         "                               workload x hardware scenario matrix\n"
         "                               (docs/SWEEP.md): prints the cross-\n"
         "                               hardware comparison table (--json:\n"
         "                               the compact report instead); --out\n"
         "                               writes the versioned codesign.sweep\n"
         "                               JSON report, byte-identical at any\n"
         "                               thread count and across resume\n"
         "  gemm --m= --n= --k= [--batch=] [--dtype=fp16] [--gpu=]\n"
         "  explain --m= --n= --k= [--batch=] [--gpu=] [--trace=<f>]\n"
         "                               factor breakdown (+DES timeline)\n"
         "  profile <model> [--gpu=] [--layers=1] [--out=profile.json]\n"
         "          [--metrics=<f>]      chrome-trace of ops + kernel\n"
         "                               selection + per-SM DES blocks\n"
         "  train <model> [--gpu=]       training step + memory footprint\n"
         "  infer <model> [--gpu=] [--prompt=128] [--gen=128] [--batch=1]\n"
         "  pipeline <model> --stages=N [--microbatches=32] [--gpu=]\n"
         "  trace <model> [--layers=1] [--out=trace.json] [--gpu=]\n"
         "  design --params=2.7e9 [--t=1] [--s=2048] [--v=50304] [--gpu=]\n"
         "  compare <modelA> <modelB> [--gpu=]    side-by-side what-if\n"
         "  plan <model> --gpus=N [--cluster=aws-p4d] [--microbatches=32]\n"
         "                               rank (t, p, d) parallel layouts\n"
         "  serve [--port=8377] [--host=127.0.0.1] [--threads=4] [--queue=N]\n"
         "        [--deadline-ms=N] [--metrics=<f>] [--tail=256]\n"
         "        [--slo-p99-ms=N] [--trace=<f>] [--idle-timeout-ms=30000]\n"
         "        [--write-timeout-ms=5000] [--brownout=N]\n"
         "                               advisory server over newline-\n"
         "                               delimited JSON (docs/SERVING.md);\n"
         "                               ^C drains in-flight work, exits 0;\n"
         "                               --tail sizes the request ring (0 =\n"
         "                               tracing off), --slo-p99-ms adds an\n"
         "                               SLO verdict to the drain summary,\n"
         "                               --trace captures per-request spans;\n"
         "                               --idle-timeout-ms reaps silent\n"
         "                               connections, --write-timeout-ms\n"
         "                               bounds each response write, and\n"
         "                               --brownout sets the queue depth at\n"
         "                               which search/advise_many are shed\n"
         "                               (0 = 3/4 of the queue capacity)\n"
         "\n"
         "Model-taking commands also accept --custom=h=...,a=...,L=...\n"
         "Exit codes: 0 ok, 1 error, 2 usage, 3 config, 4 shape, 5 lookup,\n"
         "6 cancelled/partial, 7 io, 70 internal, 75 overloaded/draining.\n"
         "CODESIGN_FAILPOINTS=<spec> arms deterministic fault injection\n"
         "(docs/ROBUSTNESS.md).\n";
  return kExitUsage;
}

gemm::GemmSimulator sim_for(const CliArgs& args) {
  gemm::GemmSimulator sim =
      gemm::GemmSimulator::for_gpu(args.get_string("gpu", "a100"));
  if (args.get_bool("cache", false)) sim.enable_cache();
  return sim;
}

std::size_t threads_arg(const CliArgs& args) {
  const std::int64_t n = args.get_int("threads", 1);
  CODESIGN_CHECK(n >= 0, "--threads must be >= 0 (0 = all hardware threads)");
  return static_cast<std::size_t>(n);
}

/// Write a file or die with a clean error.
void write_file(const std::string& path, const std::string& contents) {
  std::ofstream f(path);
  CODESIGN_CHECK(f.good(), "cannot open '" + path + "' for writing");
  f << contents;
  CODESIGN_CHECK(f.good(), "failed writing '" + path + "'");
}

/// --metrics=<file>: enable the registry up front; returns true if set.
bool metrics_arg(const CliArgs& args) {
  if (!args.has("metrics")) return false;
  obs::MetricsRegistry::set_enabled(true);
  return true;
}

/// Serialize a snapshot as JSON (or CSV when the filename ends in .csv).
void write_metrics_file(const std::string& path,
                        const obs::MetricsSnapshot& snapshot) {
  write_file(path, std::string(path).ends_with(".csv") ? snapshot.to_csv()
                                                       : snapshot.to_json());
  std::cout << "wrote metrics to " << path << "\n";
}

void print_cache_summary(const gemm::GemmSimulator& sim) {
  if (!sim.cache()) return;
  const gemm::CacheStats s = sim.cache()->stats();
  std::cout << str_format(
      "cache: %llu hits / %llu misses (%.1f%% hit rate), %llu evictions, "
      "%zu entries\n",
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.misses), 100.0 * s.hit_rate(),
      static_cast<unsigned long long>(s.evictions), s.entries);
}

/// Resolve the model from either a zoo name (positional) or a --custom=
/// spec string like "h=2560,a=32,L=32,act=swiglu".
tfm::TransformerConfig model_arg(const CliArgs& args, std::size_t index = 1) {
  if (args.has("custom")) {
    return tfm::parse_config_string(args.get_string("custom", ""));
  }
  CODESIGN_CHECK(args.positional().size() > index,
                 "expected a model name (or --custom=h=...,a=...,L=...); "
                 "run `codesign models` for the list");
  return tfm::model_by_name(args.positional()[index]);
}

int cmd_gpus() {
  TableWriter t({"id", "name", "SMs", "fp16 tensor TFLOP/s", "HBM GB/s",
                 "HBM GiB", "TC alignment"});
  for (const std::string& id : gpu::known_gpus()) {
    const gpu::GpuSpec& g = gpu::gpu_by_name(id);
    t.new_row()
        .cell(id)
        .cell(g.marketing_name)
        .cell(static_cast<std::int64_t>(g.sm_count))
        .cell(g.tensor_flops_fp16 / 1e12, 0)
        .cell(g.hbm_bandwidth / 1e9, 0)
        .cell(g.hbm_capacity / (1024.0 * 1024 * 1024), 0)
        .cell(str_format("%lld B", static_cast<long long>(
                                       g.tc_full_alignment_bytes)));
  }
  t.write(std::cout);
  return 0;
}

int cmd_clusters() {
  TableWriter t({"id", "description", "GPUs/node", "intra GB/s",
                 "inter GB/s"});
  for (const std::string& id : comm::known_clusters()) {
    const comm::ClusterSpec& c = comm::cluster_by_name(id);
    t.new_row()
        .cell(id)
        .cell(c.description)
        .cell(static_cast<std::int64_t>(c.gpus_per_node))
        .cell(c.intra_node_bandwidth / 1e9, 0)
        .cell(c.inter_node_bandwidth / 1e9, 0);
  }
  t.write(std::cout);
  return 0;
}

int cmd_models() {
  TableWriter t({"name", "h", "a", "kv", "L", "d_ff", "v", "params",
                 "flavour"});
  for (const std::string& name : tfm::known_models()) {
    const auto& c = tfm::model_by_name(name);
    t.new_row()
        .cell(name)
        .cell(c.hidden_size)
        .cell(c.num_heads)
        .cell(c.kv_heads())
        .cell(c.num_layers)
        .cell(c.d_ff())
        .cell(c.vocab_size)
        .cell(human_count(static_cast<double>(tfm::exact_param_count(c))))
        .cell(str_format("%s/%s%s", tfm::activation_name(c.activation),
                         tfm::pos_embedding_name(c.pos_embedding),
                         c.parallel_layers ? "/parallel" : ""));
  }
  t.write(std::cout);
  return 0;
}

/// --attribution=<file>: write the attribution & sensitivity companion
/// report next to a subcommand's normal output (`codesign analyze` emits
/// the same document to stdout). The report depends only on simulated
/// quantities, so the file is byte-identical across --threads values.
void write_attribution_file(
    const CliArgs& args, const tfm::TransformerConfig& config,
    const gemm::GemmSimulator& sim,
    const std::vector<advisor::DimensionSensitivity>& sensitivity) {
  const std::string path = args.get_string("attribution", "");
  write_file(path, advisor::attribution_report(config, sim, sensitivity));
  std::cout << "wrote attribution report to " << path << "\n";
}

int cmd_analyze(const CliArgs& args) {
  const auto sim = sim_for(args);
  const tfm::TransformerConfig cfg = model_arg(args);
  std::vector<advisor::DimensionSensitivity> sensitivity;
  if (!args.get_bool("no-sensitivity", false)) {
    sensitivity = advisor::sensitivity_probe(cfg, sim);
  }
  if (args.has("out")) {
    const std::string out = args.get_string("out", "");
    write_file(out, advisor::attribution_report(cfg, sim, sensitivity));
    std::cout << "wrote attribution report to " << out << "\n";
  } else {
    advisor::write_attribution_report(std::cout, cfg, sim, sensitivity);
  }
  print_cache_summary(sim);
  return 0;
}

int cmd_advise(const CliArgs& args) {
  const bool metrics = metrics_arg(args);
  advisor::ReportOptions options;
  options.search_threads = threads_arg(args);
  const auto sim = sim_for(args);
  const tfm::TransformerConfig cfg = model_arg(args);
  serve::render_advise(std::cout, cfg, sim, options);
  if (args.has("attribution")) {
    write_attribution_file(args, cfg, sim, advisor::sensitivity_probe(cfg, sim));
  }
  if (metrics) {
    if (sim.cache()) {
      sim.cache()->publish_metrics(obs::MetricsRegistry::global());
    }
    // Deterministic series only: the file is byte-identical across
    // --threads values (see docs/OBSERVABILITY.md).
    write_metrics_file(
        args.get_string("metrics", ""),
        obs::MetricsRegistry::global().snapshot({.include_best_effort = false}));
  }
  return 0;
}

int cmd_search(const CliArgs& args) {
  const bool metrics = metrics_arg(args);
  if (args.has("failpoints")) {
    fail::configure(args.get_string("failpoints", ""));
  }
  // The banner/table/epilogue rendering lives in serve/ops.cpp so that a
  // server-side search response is byte-identical to this command's output
  // (minus the CLI-only cache summary and metrics epilogues below).
  serve::SearchRequest request;
  request.config = model_arg(args);
  const auto sim = sim_for(args);
  advisor::SearchOptions& options = request.options;
  // Resolve 0 = all hardware threads here so the banner reports the real
  // worker count, not the sentinel.
  options.threads = threads_arg(args);
  if (options.threads == 0) options.threads = ThreadPool::hardware_threads();
  options.max_candidates =
      static_cast<std::size_t>(args.get_int("max", 16));
  options.faults.strict = args.get_bool("strict", false);
  options.faults.max_retries = static_cast<int>(args.get_int("retries", 2));
  request.radius = args.get_double("radius", 0.1);
  request.mode = args.get_string("mode", "joint");
  const serve::SearchModeSpec mode = serve::parse_search_mode(request.mode);
  // --attribution turns on the sensitivity probes inside the search (they
  // run sequentially after the sweep, so thread count never matters) and
  // writes the companion report after the ranked table.
  options.sensitivity = args.has("attribution");

  // Cooperative cancellation: ^C and/or --deadline-ms truncate the sweep
  // between candidates; partial results come back with an explicit banner.
  SigintGuard sigint;
  CancelToken cancel;
  cancel.link_to_sigint();
  if (args.has("deadline-ms")) {
    const std::int64_t ms = args.get_int("deadline-ms", 0);
    CODESIGN_CHECK(ms > 0, "--deadline-ms must be positive");
    cancel.deadline_after(std::chrono::milliseconds(ms));
  }
  options.cancel = &cancel;

  // MLP scan range: (8/3)h ± 25% unless --lo/--hi override (§VII-B).
  serve::default_dff_range(request.config, &request.dff_lo, &request.dff_hi);
  request.dff_lo = args.get_int("lo", request.dff_lo);
  request.dff_hi = args.get_int("hi", request.dff_hi);

  const std::string fingerprint =
      mode.is_mlp
          ? advisor::mlp_search_fingerprint(request.config, sim,
                                            request.dff_lo, request.dff_hi)
          : advisor::shape_search_fingerprint(mode.shape_mode, request.config,
                                              sim, request.radius, 0);
  std::optional<advisor::SearchCheckpoint> resumed;
  std::optional<advisor::CheckpointWriter> writer;
  if (args.has("checkpoint")) {
    // Load before constructing the writer: the writer's first flush
    // overwrites the file (carrying the loaded entries forward via
    // seed_from in the run_* entry points).
    if (args.get_bool("resume", false)) {
      resumed = advisor::SearchCheckpoint::load(
          args.get_string("checkpoint", ""));
      options.resume = &*resumed;
    }
    writer.emplace(args.get_string("checkpoint", ""), fingerprint,
                   static_cast<std::size_t>(
                       args.get_int("checkpoint-every", 64)));
    options.checkpoint = &*writer;
  } else {
    CODESIGN_CHECK(!args.get_bool("resume", false),
                   "--resume requires --checkpoint=<file>");
  }

  const int rc = serve::render_search(std::cout, request, sim);
  print_cache_summary(sim);
  if (args.has("attribution")) {
    // sensitivity_probe is a pure function of (config, sim); this re-run
    // reproduces the exact values the search recorded into the metrics
    // registry, keeping render_search byte-identical to the serve path.
    write_attribution_file(args, request.config, sim,
                           advisor::sensitivity_probe(request.config, sim));
  }
  if (metrics) {
    if (sim.cache()) {
      sim.cache()->publish_metrics(obs::MetricsRegistry::global());
    }
    // Deterministic series only: the file is byte-identical across
    // --threads values (see docs/OBSERVABILITY.md).
    write_metrics_file(
        args.get_string("metrics", ""),
        obs::MetricsRegistry::global().snapshot({.include_best_effort = false}));
  }
  return rc;
}

/// Read a whole file or die with a typed IoError (exit 7).
std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) throw IoError("cannot open '" + path + "' for reading");
  std::ostringstream ss;
  ss << f.rdbuf();
  if (f.bad()) throw IoError("failed reading '" + path + "'");
  return ss.str();
}

int cmd_sweep(const CliArgs& args) {
  if (args.has("failpoints")) {
    fail::configure(args.get_string("failpoints", ""));
  }
  const std::string path = args.get_string("config", "");
  if (path.empty()) {
    throw UsageError("sweep requires --config=<file> (see examples/sweeps/)");
  }
  const sweep::SweepPlan plan =
      sweep::parse_sweep_config(read_file(path), path);

  sweep::SweepOptions options;
  options.threads = threads_arg(args);
  if (options.threads == 0) options.threads = ThreadPool::hardware_threads();
  if (args.get_bool("cache", false)) {
    // One cache for the whole matrix: estimates are keyed on (problem,
    // policy, gpu), so cells on different GPUs share it safely.
    options.cache = std::make_shared<gemm::EstimateCache>();
  }
  options.faults.strict = args.get_bool("strict", false);
  options.faults.max_retries = static_cast<int>(args.get_int("retries", 2));

  SigintGuard sigint;
  CancelToken cancel;
  cancel.link_to_sigint();
  if (args.has("deadline-ms")) {
    const std::int64_t ms = args.get_int("deadline-ms", 0);
    CODESIGN_CHECK(ms > 0, "--deadline-ms must be positive");
    cancel.deadline_after(std::chrono::milliseconds(ms));
  }
  options.cancel = &cancel;

  const std::string fingerprint =
      sweep::sweep_fingerprint(plan, options.policy);
  std::optional<advisor::SearchCheckpoint> resumed;
  std::optional<advisor::CheckpointWriter> writer;
  if (args.has("checkpoint")) {
    // Load before constructing the writer (same dance as cmd_search): the
    // writer's first flush overwrites the file, carrying loaded entries
    // forward via seed_from inside run_sweep.
    if (args.get_bool("resume", false)) {
      resumed = advisor::SearchCheckpoint::load(
          args.get_string("checkpoint", ""));
      options.resume = &*resumed;
    }
    writer.emplace(args.get_string("checkpoint", ""), fingerprint,
                   static_cast<std::size_t>(
                       args.get_int("checkpoint-every", 64)));
    options.checkpoint = &*writer;
  } else {
    CODESIGN_CHECK(!args.get_bool("resume", false),
                   "--resume requires --checkpoint=<file>");
  }

  const sweep::SweepResult result = sweep::run_sweep(plan, options);
  if (args.get_bool("json", false)) {
    // The compact report + newline: byte-identical to the `sweep` serve
    // op's payload, so remote slices diff clean against local runs.
    std::cout << sweep::sweep_report_json(result, /*compact=*/true) << "\n";
  } else {
    sweep::render_sweep_table(std::cout, result);
  }
  if (args.has("out")) {
    write_file(args.get_string("out", ""),
               sweep::sweep_report_json(result, /*compact=*/false));
  }
  return result.truncated ? kExitCancelled : kExitOk;
}

gemm::GemmProblem problem_args(const CliArgs& args) {
  gemm::GemmProblem p;
  p.m = args.get_int("m", 0);
  p.n = args.get_int("n", 0);
  p.k = args.get_int("k", 0);
  p.batch = args.get_int("batch", 1);
  p.dtype = gpu::dtype_from_name(args.get_string("dtype", "fp16"));
  p.validate();
  return p;
}

int cmd_gemm(const CliArgs& args) {
  serve::render_estimate(std::cout, problem_args(args), sim_for(args));
  return 0;
}

int cmd_explain(const CliArgs& args) {
  const gemm::GemmProblem p = problem_args(args);
  const auto sim = sim_for(args);
  if (args.has("trace")) {
    // Capture one simulate() pass: the kernel-selection trail plus the
    // per-SM DES block timeline, all on the simulated clock.
    obs::ScopedRecorder scoped;
    const auto des = sim.simulate(p);
    obs::ChromeTraceOptions trace_options;
    trace_options.other_data.emplace_back("gemm", p.to_string());
    trace_options.other_data.emplace_back("gpu", sim.gpu().id);
    const std::string out = args.get_string("trace", "explain_trace.json");
    write_file(out, scoped.recorder().chrome_trace_json(trace_options));
    std::cout << str_format(
        "wrote DES timeline (%lld blocks over %zu SMs) to %s\n",
        static_cast<long long>(des.blocks), des.sm_busy_time.size(),
        out.c_str());
  }
  serve::render_explain(std::cout, p, sim);
  return 0;
}

int cmd_profile(const CliArgs& args) {
  const bool metrics = metrics_arg(args);
  const auto& cfg = model_arg(args);
  const auto sim = sim_for(args);
  tfm::ProfileOptions options;
  options.layers = args.get_int("layers", 1);
  options.include_des = args.get_bool("des", true);
  const tfm::ProfileResult r = tfm::profile_model(cfg, sim, options);
  const std::string out = args.get_string("out", "profile.json");
  write_file(out, r.trace_json);
  std::cout << cfg.to_string() << " on " << sim.gpu().id << ":\n"
            << str_format(
                   "  %lld layer%s, %s simulated: %zu op spans, %zu "
                   "kernel-selection events, %zu DES block events\n",
                   static_cast<long long>(options.layers),
                   options.layers == 1 ? "" : "s",
                   human_time(r.total_time).c_str(), r.op_events,
                   r.select_events, r.des_events)
            << "  wrote " << r.trace_json.size() << " bytes to " << out
            << " — open with chrome://tracing or https://ui.perfetto.dev\n";
  print_cache_summary(sim);
  if (metrics) {
    write_metrics_file(args.get_string("metrics", ""), r.metrics);
  }
  return 0;
}

int cmd_train(const CliArgs& args) {
  const auto& cfg = model_arg(args);
  const auto sim = sim_for(args);
  const auto r = tfm::analyze_training_step(cfg, sim);
  const auto m = tfm::training_memory(cfg);
  std::cout << cfg.to_string() << " on " << sim.gpu().id << ":\n"
            << str_format(
                   "  step %s (fwd %s, bwd %s, optimizer %s)\n",
                   human_time(r.total_time).c_str(),
                   human_time(r.forward_time).c_str(),
                   human_time(r.backward_time).c_str(),
                   human_time(r.optimizer_time).c_str())
            << str_format("  model %.1f TFLOP/s, MFU %.1f%%\n",
                          r.model_tflops, 100.0 * r.mfu)
            << str_format(
                   "  memory: static %s + activations %s = %s (%s; max b = "
                   "%lld)\n",
                   human_bytes(m.weight_bytes + m.gradient_bytes +
                               m.optimizer_bytes)
                       .c_str(),
                   human_bytes(m.activation_bytes).c_str(),
                   human_bytes(m.total_bytes).c_str(),
                   m.fits(sim.gpu()) ? "fits" : "DOES NOT FIT",
                   static_cast<long long>(
                       tfm::max_microbatch(cfg, sim.gpu())));
  return 0;
}

int cmd_infer(const CliArgs& args) {
  const auto& cfg = model_arg(args);
  const auto sim = sim_for(args);
  tfm::InferenceWorkload w;
  w.prompt_len = args.get_int("prompt", 128);
  w.generate_tokens = args.get_int("gen", 128);
  w.batch = args.get_int("batch", 1);
  const auto e = tfm::estimate_inference(cfg, sim, w);
  std::cout << cfg.to_string() << " on " << sim.gpu().id << ":\n"
            << str_format(
                   "  prefill %s, per-token %s (%.0f tokens/s), request %s\n",
                   human_time(e.prefill_time).c_str(),
                   human_time(e.per_token_time).c_str(), e.tokens_per_second,
                   human_time(e.total_time).c_str())
            << str_format("  per step: %s weights + %s KV, %.0f launches\n",
                          human_bytes(e.weight_bytes).c_str(),
                          human_bytes(e.kv_bytes_avg).c_str(),
                          e.launches_per_step);
  return 0;
}

int cmd_pipeline(const CliArgs& args) {
  const auto& cfg = model_arg(args);
  const auto sim = sim_for(args);
  tfm::PipelineSchedule s;
  s.stages = args.get_int("stages", 1);
  s.microbatches = args.get_int("microbatches", 32);
  const auto r = tfm::analyze_pipeline(cfg, sim, s);
  std::cout << cfg.to_string() << ", p = " << s.stages
            << ", m = " << s.microbatches << ":\n"
            << str_format(
                   "  step %s | bubble %.1f%% | imbalance %.3fx | "
                   "efficiency %.1f%% | %.0f tokens/s\n",
                   human_time(r.step_time).c_str(),
                   100.0 * r.bubble_fraction, r.imbalance_factor,
                   100.0 * r.efficiency, r.tokens_per_second);
  if (!r.balanced) {
    std::cout << "  note: " << cfg.num_layers << " layers do not divide into "
              << s.stages << " stages — the paper's rule says pick p from "
                             "the divisors of L\n";
  }
  return 0;
}

int cmd_trace(const CliArgs& args) {
  const auto& cfg = model_arg(args);
  const auto sim = sim_for(args);
  tfm::TraceOptions opt;
  opt.layers = args.get_int("layers", 1);
  opt.include_model_level = args.get_bool("model-level", true);
  const std::string json = tfm::trace_json(cfg, sim, opt);
  const std::string out = args.get_string("out", "trace.json");
  std::ofstream f(out);
  CODESIGN_CHECK(f.good(), "cannot open '" + out + "' for writing");
  f << json;
  f.close();
  std::cout << "wrote " << json.size() << " bytes to " << out
            << " — open with chrome://tracing or https://ui.perfetto.dev\n";
  return 0;
}

int cmd_plan(const CliArgs& args) {
  tfm::TransformerConfig m = model_arg(args);
  if (m.vocab_size % 64 != 0) m = m.with_vocab(((m.vocab_size + 63) / 64) * 64);
  const auto& cluster =
      comm::cluster_by_name(args.get_string("cluster", "aws-p4d"));
  const std::int64_t gpus = args.get_int("gpus", 32);
  const std::int64_t mb = args.get_int("microbatches", 32);
  std::cout << "Parallel layouts for " << m.to_string() << "\non " << gpus
            << " GPUs of " << cluster.description << ":\n";
  TableWriter t({"t", "p", "d", "ok", "step", "tokens/s", "MFU", "note"});
  int listed = 0;
  for (const auto& r : comm::rank_plans(m, cluster, gpus, mb)) {
    if (listed++ >= 12) break;
    t.new_row()
        .cell(r.plan.tensor)
        .cell(r.plan.pipeline)
        .cell(r.plan.data)
        .cell(r.feasible ? (r.fits_memory ? "yes" : "OOM") : "NO")
        .cell(r.feasible ? human_time(r.step_time) : "-")
        .cell(r.feasible ? str_format("%.0f", r.tokens_per_second) : "-")
        .cell(r.feasible ? str_format("%.1f%%", 100.0 * r.cluster_mfu) : "-")
        .cell(r.infeasible_reason);
  }
  t.write(std::cout);
  return 0;
}

int cmd_compare(const CliArgs& args) {
  CODESIGN_CHECK(args.positional().size() >= 3,
                 "compare needs two model names");
  const auto& a = tfm::model_by_name(args.positional()[1]);
  const auto& b = tfm::model_by_name(args.positional()[2]);
  std::cout << advisor::compare_configs(a, b, sim_for(args)).to_string();
  return 0;
}

int cmd_design(const CliArgs& args) {
  advisor::DesignConstraints c;
  c.param_budget = args.get_double("params", 0.0);
  c.seq_len = args.get_int("s", 2048);
  c.microbatch = args.get_int("b", 4);
  c.vocab_size = args.get_int("v", 50304);
  c.tensor_parallel = args.get_int("t", 1);
  const auto sim = sim_for(args);
  const auto designs = advisor::design_models(c, sim);
  std::cout << "Rule-clean designs for a " << human_count(c.param_budget)
            << "-parameter budget on " << sim.gpu().id << ":\n";
  TableWriter t({"design", "h", "a", "h/a", "L", "params", "h/L",
                 "step TFLOP/s", "MFU"});
  for (const auto& d : designs) {
    t.new_row()
        .cell(d.config.name)
        .cell(d.config.hidden_size)
        .cell(d.config.num_heads)
        .cell(d.config.head_dim())
        .cell(d.config.num_layers)
        .cell(human_count(d.param_count))
        .cell(d.aspect, 0)
        .cell(d.step_tflops, 1)
        .cell(str_format("%.1f%%", 100.0 * d.mfu));
  }
  t.write(std::cout);
  return 0;
}

int cmd_serve(const CliArgs& args) {
  if (args.has("failpoints")) {
    fail::configure(args.get_string("failpoints", ""));
  }
  const bool metrics_file = metrics_arg(args);
  // The registry is always on while serving: {"op":"stats"} reads it, and
  // the per-op histograms / queue gauges are the server's own telemetry.
  obs::MetricsRegistry::set_enabled(true);

  serve::ServerOptions options;
  options.host = args.get_string("host", "127.0.0.1");
  options.port = static_cast<int>(args.get_int("port", 8377));
  const std::int64_t threads = args.get_int("threads", 4);
  CODESIGN_CHECK(threads >= 0,
                 "--threads must be >= 0 (0 = all hardware threads)");
  options.threads = static_cast<std::size_t>(threads);
  if (options.threads == 0) options.threads = ThreadPool::hardware_threads();
  const std::int64_t queue = args.get_int("queue", 0);
  CODESIGN_CHECK(queue >= 0, "--queue must be >= 0 (0 = 4 x threads)");
  options.queue_capacity = static_cast<std::size_t>(queue);
  if (options.queue_capacity == 0) options.queue_capacity = 4 * options.threads;
  if (args.has("deadline-ms")) {
    const std::int64_t ms = args.get_int("deadline-ms", 0);
    CODESIGN_CHECK(ms > 0, "--deadline-ms must be positive");
    options.default_deadline_ms = ms;
  }
  options.watch_sigint = true;

  // Resilience knobs (docs/SERVING.md "Resilience").
  const std::int64_t idle_ms = args.get_int("idle-timeout-ms", 30000);
  CODESIGN_CHECK(idle_ms >= 0, "--idle-timeout-ms must be >= 0 (0 = never)");
  options.idle_timeout_ms = idle_ms;
  const std::int64_t write_ms = args.get_int("write-timeout-ms", 5000);
  CODESIGN_CHECK(write_ms >= 0,
                 "--write-timeout-ms must be >= 0 (0 = wait forever)");
  options.write_timeout_ms = write_ms;
  const std::int64_t brownout = args.get_int("brownout", 0);
  CODESIGN_CHECK(brownout >= 0,
                 "--brownout must be >= 0 (0 = 3/4 of the queue capacity)");
  options.brownout_watermark = static_cast<std::size_t>(brownout);

  // Request tracing: --tail sizes the recent-request ring (0 disables the
  // tracing layer entirely), --slo-p99-ms sets the declarative latency SLO
  // reported at drain, --trace captures per-request chrome-trace spans.
  const std::int64_t tail = args.get_int("tail", 256);
  CODESIGN_CHECK(tail >= 0, "--tail must be >= 0 (0 disables tracing)");
  options.trace.enabled = tail > 0;
  options.trace.ring_capacity = static_cast<std::size_t>(tail);
  const double slo_p99 = args.get_double("slo-p99-ms", 0.0);
  CODESIGN_CHECK(slo_p99 >= 0.0, "--slo-p99-ms must be >= 0");
  options.trace.slo_p99_ms = slo_p99;

  std::unique_ptr<obs::ScopedRecorder> scoped_recorder;
  if (args.has("trace")) {
    CODESIGN_CHECK(options.trace.enabled,
                   "--trace needs request tracing (a nonzero --tail)");
    scoped_recorder = std::make_unique<obs::ScopedRecorder>();
  }

  SigintGuard sigint;
  serve::Server server(options);
  server.start();
  std::cout << str_format(
                   "codesign serve listening on %s:%d (%zu workers, queue "
                   "capacity %zu%s)\n",
                   options.host.c_str(), server.port(), options.threads,
                   options.queue_capacity,
                   options.trace.enabled ? "" : ", tracing off")
            << "^C drains in-flight requests and exits 0\n"
            << std::flush;
  server.join();  // returns after SIGINT-triggered drain completes
  const serve::ServerStats s = server.stats();
  std::cout << str_format(
      "drained: %llu connection(s), %llu request(s) — %llu ok, %llu "
      "error(s), %llu overloaded, %llu dropped\n",
      static_cast<unsigned long long>(s.connections),
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.ok),
      static_cast<unsigned long long>(s.errors),
      static_cast<unsigned long long>(s.overloaded),
      static_cast<unsigned long long>(s.dropped));
  if (s.brownout + s.slow_client_closed + s.idle_closed > 0) {
    std::cout << str_format(
        "resilience: %llu brownout shed(s), %llu slow client(s) closed, "
        "%llu idle connection(s) reaped\n",
        static_cast<unsigned long long>(s.brownout),
        static_cast<unsigned long long>(s.slow_client_closed),
        static_cast<unsigned long long>(s.idle_closed));
  }
  if (const serve::RequestTraceLog* log = server.trace_log()) {
    const serve::SloSummary slo = log->slo_summary();
    std::cout << str_format(
        "latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms over %llu traced "
        "request(s) — %llu deadline miss(es), %llu truncated\n",
        slo.p50_ms, slo.p95_ms, slo.p99_ms,
        static_cast<unsigned long long>(slo.requests),
        static_cast<unsigned long long>(slo.deadline_misses),
        static_cast<unsigned long long>(slo.truncated));
    if (slo.slo_p99_ms > 0.0) {
      std::cout << str_format("SLO p99 <= %.2f ms: %s\n", slo.slo_p99_ms,
                              slo.violated() ? "VIOLATED" : "met");
    }
  }
  if (scoped_recorder != nullptr) {
    obs::ChromeTraceOptions trace_options;
    trace_options.other_data.emplace_back("source", "codesign serve");
    const std::string out = args.get_string("trace", "serve_trace.json");
    write_file(out,
               scoped_recorder->recorder().chrome_trace_json(trace_options));
    std::cout << str_format("wrote request trace (%zu events) to %s\n",
                            scoped_recorder->recorder().size(), out.c_str());
  }
  if (metrics_file) {
    write_metrics_file(
        args.get_string("metrics", ""),
        obs::MetricsRegistry::global().snapshot({.include_best_effort = true}));
  }
  return 0;
}

int dispatch(int argc, const char* const* argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string& cmd = args.positional()[0];
  if (cmd == "gpus") return cmd_gpus();
  if (cmd == "clusters") return cmd_clusters();
  if (cmd == "models") return cmd_models();
  if (cmd == "advise") return cmd_advise(args);
  if (cmd == "analyze") return cmd_analyze(args);
  if (cmd == "search") return cmd_search(args);
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "gemm") return cmd_gemm(args);
  if (cmd == "explain") return cmd_explain(args);
  if (cmd == "profile") return cmd_profile(args);
  if (cmd == "train") return cmd_train(args);
  if (cmd == "infer") return cmd_infer(args);
  if (cmd == "pipeline") return cmd_pipeline(args);
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "design") return cmd_design(args);
  if (cmd == "compare") return cmd_compare(args);
  if (cmd == "plan") return cmd_plan(args);
  if (cmd == "serve") return cmd_serve(args);
  std::cerr << "unknown command '" << cmd << "'\n";
  return usage();
}

}  // namespace
}  // namespace codesign

int main(int argc, char** argv) {
  // Every failure leaves through the documented exit-code taxonomy (see
  // `codesign help` / docs/ROBUSTNESS.md): typed codesign errors map to
  // their own codes, anything else is an internal error (70, EX_SOFTWARE)
  // rather than an unhandled-exception abort.
  try {
    codesign::fail::configure_from_env();
    return codesign::dispatch(argc, argv);
  } catch (const codesign::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return codesign::exit_code_for_current_exception();
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return codesign::kExitInternal;
  } catch (...) {
    std::cerr << "internal error: unknown exception\n";
    return codesign::kExitInternal;
  }
}
