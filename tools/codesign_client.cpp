// codesign-client — the blocking CLI client for `codesign serve`
// (docs/SERVING.md).
//
//   codesign-client <op> [--host=127.0.0.1] [--port=8377] [flags]
//
// Builds one request line from the flags, sends it, and prints the server
// payload to stdout byte-for-byte — piping `codesign-client estimate ...`
// and `codesign gemm ...` through diff is the serving contract. The exit
// code is the response's `code` field (the CLI taxonomy: 0 ok, 6 partial,
// 75 overloaded/draining, ...); connection failures exit 7 (IoError).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "serve/client.hpp"
#include "serve/fleet_client.hpp"

namespace codesign {
namespace {

constexpr const char* kUsage =
    "usage: codesign-client <op> [--host=127.0.0.1] [--port=8377]\n"
    "                       [--id=S] [--deadline-ms=N]\n"
    "                       [--endpoints=host:port,host:port,...]\n"
    "                       [--attempts=16] [--seed=1]\n"
    "                       [--call-deadline-ms=30000]\n"
    "\n"
    "ops (flags mirror the request fields in docs/SERVING.md):\n"
    "  advise    --model=NAME | --custom=h=...,a=...,L=...  [--gpu=a100]\n"
    "  advise_many\n"
    "            --models=NAME,NAME,... [--gpu=a100]   (one gpu for all), or\n"
    "            --items='[{\"model\":...,\"gpu\":...},...]'  (full tuples);\n"
    "            payload is a JSON array, element i byte-identical to the\n"
    "            scalar advise payload for tuple i\n"
    "  search    --model=|--custom=  [--gpu=] [--mode=joint|heads|hidden|mlp]\n"
    "            [--radius=0.1] [--max=16] [--strict] [--retries=2]\n"
    "            [--lo=|--hi=]\n"
    "  sweep     --config=FILE  [--strict] [--retries=2]\n"
    "            workload x hardware scenario matrix (docs/SWEEP.md); the\n"
    "            config file's text is sent inline, and the payload is the\n"
    "            compact codesign.sweep report, byte-identical to\n"
    "            `codesign sweep --config=FILE --json`\n"
    "  estimate  --m= --n= --k= [--batch=1] [--dtype=fp16] [--gpu=a100]\n"
    "  explain   --m= --n= --k= [--batch=1] [--dtype=fp16] [--gpu=a100]\n"
    "  stats     [--format=json|prom]  server metrics snapshot\n"
    "  tail      [--n=16] [--filter=slow|all|errors]\n"
    "            recent requests with per-phase latency breakdowns\n"
    "  health    liveness + load probe: {status, ok, draining, overloaded,\n"
    "            brownout, queue_depth, queue_capacity, uptime_s}\n"
    "  ping      liveness probe\n"
    "  sleep     [--ms=10]  hold a worker (drain/overload drills)\n"
    "\n"
    "--endpoints routes the request through the resilient FleetClient\n"
    "(docs/SERVING.md \"Resilience\"): deadline-budgeted retries with\n"
    "jittered backoff, failover between the listed replicas on overload\n"
    "or connection death, and a per-endpoint circuit breaker. --attempts,\n"
    "--seed, and --call-deadline-ms tune it; --host/--port are ignored.\n"
    "\n"
    "The response payload is printed verbatim; the exit code is the\n"
    "response code (0 ok, 6 cancelled/partial, 75 overloaded/draining),\n"
    "or 7 when the server cannot be reached.\n";

/// Flags every op accepts on top of its own field flags.
const std::vector<std::string> kCommonFlags = {
    "host", "port",     "id",   "deadline-ms",     "endpoints",
    "attempts", "seed", "call-deadline-ms"};

void reject_unknown_flags(const CliArgs& args,
                          std::vector<std::string> allowed) {
  allowed.insert(allowed.end(), kCommonFlags.begin(), kCommonFlags.end());
  std::vector<std::string> unknown;
  const std::set<std::string> ok(allowed.begin(), allowed.end());
  for (const std::string& name : args.flag_names()) {
    if (!ok.count(name)) unknown.push_back(name);
  }
  if (unknown.empty()) return;
  std::sort(unknown.begin(), unknown.end());
  throw UsageError("unknown flag(s): --" + join(unknown, ", --") + "\n\n" +
                   kUsage);
}

/// Slurp a sweep config for inline transport. IoError (exit 7) on a
/// missing/unreadable file — same taxonomy as `codesign sweep --config=`.
std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Copy a flag into the request verbatim when present (the server applies
/// the same defaults the one-shot CLI does, keeping outputs byte-identical).
void forward_string(json::Writer& w, const CliArgs& args,
                    const std::string& flag, const char* field) {
  if (args.has(flag)) w.member(field, args.get_string(flag, ""));
}

void forward_int(json::Writer& w, const CliArgs& args, const std::string& flag,
                 const char* field) {
  if (args.has(flag)) {
    w.member(field, static_cast<long long>(args.get_int(flag, 0)));
  }
}

void forward_double(json::Writer& w, const CliArgs& args,
                    const std::string& flag, const char* field) {
  if (args.has(flag)) w.member(field, args.get_double(flag, 0.0));
}

std::string build_request(const CliArgs& args, const std::string& op) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.member("op", op);
  if (args.has("id")) w.member("id", args.get_string("id", ""));
  if (args.has("deadline-ms")) {
    const std::int64_t ms = args.get_int("deadline-ms", 0);
    CODESIGN_CHECK(ms > 0, "--deadline-ms must be positive");
    w.member("deadline_ms", static_cast<long long>(ms));
  }
  if (op == "advise" || op == "search") {
    forward_string(w, args, "model", "model");
    forward_string(w, args, "custom", "custom");
    forward_string(w, args, "gpu", "gpu");
  }
  if (op == "advise_many") {
    if (args.has("items")) {
      // Validate client-side so a malformed batch fails before the wire.
      const json::Value items =
          json::Value::parse(args.get_string("items", ""));
      CODESIGN_CHECK(items.is_array(), "--items must be a JSON array");
      w.key("items").raw(json::dump(items));
    } else {
      const std::string models = args.get_string("models", "");
      CODESIGN_CHECK(!models.empty(),
                     "advise_many needs --items or --models");
      w.key("items");
      w.begin_array();
      for (const std::string& name : split(models, ',')) {
        w.begin_object();
        w.member("model", name);
        if (args.has("gpu")) w.member("gpu", args.get_string("gpu", ""));
        w.end_object();
      }
      w.end_array();
    }
  }
  if (op == "search") {
    forward_string(w, args, "mode", "mode");
    forward_double(w, args, "radius", "radius");
    forward_int(w, args, "max", "max");
    forward_int(w, args, "retries", "retries");
    forward_int(w, args, "lo", "lo");
    forward_int(w, args, "hi", "hi");
    if (args.get_bool("strict", false)) w.member("strict", true);
  }
  if (op == "sweep") {
    const std::string path = args.get_string("config", "");
    if (path.empty()) {
      throw UsageError(std::string("sweep needs --config=<file>\n\n") +
                       kUsage);
    }
    // The file's text travels inline (the server has no filesystem view of
    // the client); "origin" keeps server-side parse errors pointing at the
    // real path:line instead of an anonymous buffer.
    w.member("config", read_file(path));
    w.member("origin", path);
    forward_int(w, args, "retries", "retries");
    if (args.get_bool("strict", false)) w.member("strict", true);
  }
  if (op == "estimate" || op == "explain") {
    forward_int(w, args, "m", "m");
    forward_int(w, args, "n", "n");
    forward_int(w, args, "k", "k");
    forward_int(w, args, "batch", "batch");
    forward_string(w, args, "dtype", "dtype");
    forward_string(w, args, "gpu", "gpu");
  }
  if (op == "sleep") forward_int(w, args, "ms", "ms");
  if (op == "stats") forward_string(w, args, "format", "format");
  if (op == "tail") {
    forward_int(w, args, "n", "n");
    forward_string(w, args, "filter", "filter");
  }
  w.end_object();
  return os.str();
}

std::vector<std::string> op_flags(const std::string& op) {
  if (op == "advise") return {"model", "custom", "gpu"};
  if (op == "advise_many") return {"items", "models", "gpu"};
  if (op == "search") {
    return {"model", "custom", "gpu",     "mode", "radius",
            "max",   "strict", "retries", "lo",   "hi"};
  }
  if (op == "sweep") return {"config", "strict", "retries"};
  if (op == "estimate" || op == "explain") {
    return {"m", "n", "k", "batch", "dtype", "gpu"};
  }
  if (op == "sleep") return {"ms"};
  if (op == "stats") return {"format"};
  if (op == "tail") return {"n", "filter"};
  if (op == "ping" || op == "health") return {};
  throw UsageError("unknown op '" + op + "'\n\n" + kUsage);
}

int run(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  if (args.positional().empty() || args.get_bool("help", false)) {
    std::cout << kUsage;
    return args.positional().empty() && !args.get_bool("help", false)
               ? kExitUsage
               : kExitOk;
  }
  const std::string& op = args.positional().front();
  reject_unknown_flags(args, op_flags(op));

  // Build (and so validate) the request before touching the network: a
  // missing/bad flag is a usage error even when no server is reachable.
  const std::string request = build_request(args, op);

  serve::Response r;
  if (args.has("endpoints")) {
    serve::FleetOptions fleet;
    fleet.endpoints = serve::parse_endpoints(args.get_string("endpoints", ""));
    fleet.max_attempts = static_cast<int>(args.get_int("attempts", 16));
    fleet.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    fleet.call_deadline_ms = args.get_int("call-deadline-ms", 30000);
    serve::FleetClient client(std::move(fleet));
    r = client.call(request);
  } else {
    serve::ServeClient client(args.get_string("host", "127.0.0.1"),
                              static_cast<int>(args.get_int("port", 8377)));
    r = client.call(request);
  }
  if (r.overloaded()) {
    std::cerr << "codesign-client: " << r.error << " (retry after "
              << r.retry_after_ms << " ms)\n";
    return r.code;
  }
  if (!r.ok()) {
    std::cerr << "codesign-client: server error (code " << r.code
              << "): " << r.error << "\n";
    return r.code;
  }
  std::cout << r.payload;  // verbatim: byte-identical to the one-shot CLI
  return r.code;           // 0, or 6 for a truncated (partial) search
}

}  // namespace
}  // namespace codesign

int main(int argc, char** argv) {
  try {
    // CODESIGN_FAILPOINTS arms this process too: the chaos-fleet drill
    // injects faults into the client's own socket helpers (serve.net.*)
    // as well as the servers', and the FleetClient must absorb both.
    codesign::fail::configure_from_env();
    return codesign::run(argc, argv);
  } catch (const codesign::Error& e) {
    std::cerr << "codesign-client: " << e.what() << "\n";
    return codesign::exit_code_for_current_exception();
  } catch (const std::exception& e) {
    std::cerr << "codesign-client: internal error: " << e.what() << "\n";
    return codesign::kExitInternal;
  }
}
