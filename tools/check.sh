#!/usr/bin/env bash
# check.sh — the full local gate: tier-1 build + tests, then a
# ThreadSanitizer build of the concurrency-sensitive tests (thread pool,
# estimate cache, observability layer, logging).
#
# Usage: tools/check.sh [source-dir]
# Also wired as `cmake --build <build> --target check`.
set -euo pipefail

SRC_DIR="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD_DIR="${CODESIGN_CHECK_BUILD_DIR:-${SRC_DIR}/build}"
TSAN_DIR="${CODESIGN_CHECK_TSAN_DIR:-${SRC_DIR}/build-tsan}"
JOBS="${CODESIGN_CHECK_JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== tier 1: build + ctest (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S "${SRC_DIR}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

TSAN_TESTS=(test_thread_pool test_estimate_cache test_obs test_logging)

echo "== tier 2: ThreadSanitizer (${TSAN_DIR}) =="
cmake -B "${TSAN_DIR}" -S "${SRC_DIR}" -DCODESIGN_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target "${TSAN_TESTS[@]}"
for t in "${TSAN_TESTS[@]}"; do
  echo "-- tsan: ${t}"
  "${TSAN_DIR}/tests/${t}"
done

echo "== check OK =="
