#!/usr/bin/env bash
# check.sh — the full local gate:
#   tier 1  build + full ctest suite
#   tier 2  ThreadSanitizer build of the concurrency-sensitive tests
#           (thread pool, estimate cache, observability, failpoints, the
#           fault-injected search)
#   tier 3  ASan+UBSan build of the same set (every report fatal)
#   smoke   a fault-injected CLI sweep: 5% of candidates fail, the run
#           must still exit 0 and print the skipped-candidate report
#   serve   a TSan-built `codesign serve` under a mixed request burst
#           (5% dispatch-failpoint drill + one over-deadline request):
#           client payloads must byte-match the one-shot CLI, and SIGINT
#           mid-flight must drain cleanly and exit 0
#   serve-obs  tracing determinism drill: two identical TSan server runs
#           with request tracing + a deterministic serve.dispatch fault;
#           `stats --format=prom` is scraped from both and every
#           stability="deterministic" series must be byte-identical across
#           the runs, `tail --filter=errors` must attribute the injected
#           fault to its execute phase, and the drain summary must report
#           the latency/SLO line
#   attribution  determinism drill for the attribution layer: the TSan
#           CLI runs `analyze` plus `search --attribution` at --threads 1
#           and 8; the three reports must be byte-identical and carry the
#           codesign.attribution schema header
#   chaos-fleet  a 3-server TSan mini-fleet with 5% network failpoints
#           (serve.net.read_stall / write_drop / conn_close) plus 5%
#           dispatch faults armed on BOTH sides of the wire; a fixed
#           request mix through `codesign-client --endpoints=...` must
#           complete with zero user-visible errors (every invocation
#           exits 0, no shell-side retries — the FleetClient absorbs the
#           faults) and byte-identical payloads vs the one-shot CLI, then
#           all three servers must drain cleanly on SIGINT
#   perf    codesign-bench smoke suite gated against the committed
#           baseline (bench/baselines/). Thresholds are deliberately
#           loose (CODESIGN_PERF_MIN_FRAC, default 0.75 = fail only on a
#           >75% slowdown) because the baseline was produced on a
#           different machine; checksum mismatches fail at any speed.
#
# Usage: tools/check.sh [source-dir]
# Also wired as `cmake --build <build> --target check`.
set -euo pipefail

SRC_DIR="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD_DIR="${CODESIGN_CHECK_BUILD_DIR:-${SRC_DIR}/build}"
TSAN_DIR="${CODESIGN_CHECK_TSAN_DIR:-${SRC_DIR}/build-tsan}"
ASAN_DIR="${CODESIGN_CHECK_ASAN_DIR:-${SRC_DIR}/build-asan}"
JOBS="${CODESIGN_CHECK_JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== tier 1: build + ctest (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S "${SRC_DIR}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

SAN_TESTS=(test_thread_pool test_estimate_cache test_estimate_many test_obs
           test_attribution test_logging test_failpoint test_search_faults
           test_serve test_serve_trace test_fleet_client test_sweep)

echo "== tier 2: ThreadSanitizer (${TSAN_DIR}) =="
cmake -B "${TSAN_DIR}" -S "${SRC_DIR}" -DCODESIGN_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target "${SAN_TESTS[@]}"
for t in "${SAN_TESTS[@]}"; do
  echo "-- tsan: ${t}"
  "${TSAN_DIR}/tests/${t}"
done

echo "== tier 3: ASan+UBSan (${ASAN_DIR}) =="
cmake -B "${ASAN_DIR}" -S "${SRC_DIR}" -DCODESIGN_SANITIZE=address+undefined
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target "${SAN_TESTS[@]}"
for t in "${SAN_TESTS[@]}"; do
  echo "-- asan+ubsan: ${t}"
  "${ASAN_DIR}/tests/${t}"
done

echo "== smoke: fault-injected search degrades gracefully =="
SMOKE_OUT="$("${BUILD_DIR}/tools/codesign" search gpt3-2.7b --mode=joint \
    --threads=8 --cache \
    --failpoints='gemmsim.cache.lookup=prob:0.05:7,advisor.search.evaluate=prob:0.05:42')"
echo "${SMOKE_OUT}" | grep -q "skipped .* candidate" || {
  echo "FAIL: fault-injected search printed no skipped-candidate report"
  exit 1
}

echo "== serve: mixed burst + graceful drain under tsan =="
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target codesign codesign-client
SERVE_PORT="${CODESIGN_CHECK_SERVE_PORT:-8391}"
SERVE_BIN="${TSAN_DIR}/tools/codesign"
CLIENT_BIN="${TSAN_DIR}/tools/codesign-client"
SERVE_LOG="${TSAN_DIR}/serve_smoke.log"
CODESIGN_FAILPOINTS='serve.dispatch=prob:0.05:7' \
    "${SERVE_BIN}" serve --port="${SERVE_PORT}" --threads=4 \
    >"${SERVE_LOG}" 2>&1 &
SERVE_PID=$!
for i in $(seq 1 100); do
  if "${CLIENT_BIN}" ping --port="${SERVE_PORT}" >/dev/null 2>&1; then break; fi
  if [ "${i}" -eq 100 ]; then
    echo "FAIL: codesign serve never became ready"; cat "${SERVE_LOG}"; exit 1
  fi
  sleep 0.1
done

# Byte identity: a served payload is the one-shot CLI's stdout, byte for
# byte. The 5% dispatch drill may fault any single request, so retry.
fetch() {  # fetch <out-file> <op> [flags...]
  local out="$1"; shift
  for _ in $(seq 1 20); do
    if "${CLIENT_BIN}" "$@" --port="${SERVE_PORT}" >"${out}" 2>/dev/null; then
      return 0
    fi
  done
  echo "FAIL: serve request kept failing: $*"; exit 1
}
fetch "${TSAN_DIR}/serve_est.txt" estimate --m=4096 --n=4096 --k=4096
"${SERVE_BIN}" gemm --m=4096 --n=4096 --k=4096 >"${TSAN_DIR}/cli_est.txt"
diff -u "${TSAN_DIR}/cli_est.txt" "${TSAN_DIR}/serve_est.txt" || {
  echo "FAIL: served estimate payload is not byte-identical to the CLI"
  exit 1
}
fetch "${TSAN_DIR}/serve_adv.txt" advise --model=gpt3-2.7b
"${SERVE_BIN}" advise gpt3-2.7b >"${TSAN_DIR}/cli_adv.txt"
diff -u "${TSAN_DIR}/cli_adv.txt" "${TSAN_DIR}/serve_adv.txt" || {
  echo "FAIL: served advise payload is not byte-identical to the CLI"
  exit 1
}

# Mixed burst: estimates, explains, advises in flight concurrently (the
# drill faults ~5% of them; any response is acceptable, no hang is not).
BURST_PIDS=()
for i in $(seq 1 12); do
  case $((i % 3)) in
    0) "${CLIENT_BIN}" estimate --m=$((512 * i)) --n=2048 --k=2048 \
           --port="${SERVE_PORT}" >/dev/null 2>&1 & ;;
    1) "${CLIENT_BIN}" explain --m=1024 --n=$((1024 + 256 * i)) --k=1024 \
           --port="${SERVE_PORT}" >/dev/null 2>&1 & ;;
    *) "${CLIENT_BIN}" advise --model=pythia-70m \
           --port="${SERVE_PORT}" >/dev/null 2>&1 & ;;
  esac
  BURST_PIDS+=($!)
done
for pid in "${BURST_PIDS[@]}"; do wait "${pid}" || true; done

# One over-deadline request must come back as code 6 (cancelled), not a
# hang (retry past the occasional injected dispatch fault).
DL_RC=-1
for _ in $(seq 1 10); do
  set +e
  "${CLIENT_BIN}" sleep --ms=500 --deadline-ms=20 --port="${SERVE_PORT}" \
      >/dev/null 2>&1
  DL_RC=$?
  set -e
  if [ "${DL_RC}" -eq 6 ]; then break; fi
done
if [ "${DL_RC}" -ne 6 ]; then
  echo "FAIL: over-deadline request exited ${DL_RC}, want 6"; exit 1
fi

# SIGINT with a request still in flight: the admitted sleep finishes, the
# server drains and exits 0.
"${CLIENT_BIN}" sleep --ms=400 --port="${SERVE_PORT}" >/dev/null 2>&1 &
INFLIGHT_PID=$!
sleep 0.1
kill -INT "${SERVE_PID}"
SERVE_RC=0
wait "${SERVE_PID}" || SERVE_RC=$?
wait "${INFLIGHT_PID}" || true
if [ "${SERVE_RC}" -ne 0 ]; then
  echo "FAIL: codesign serve exited ${SERVE_RC} after SIGINT, want 0"
  cat "${SERVE_LOG}"; exit 1
fi
grep -q "drained:" "${SERVE_LOG}" || {
  echo "FAIL: serve printed no drain summary"; cat "${SERVE_LOG}"; exit 1
}

echo "== serve-obs: tracing determinism drill under tsan =="
OBS_PORT=$((SERVE_PORT + 1))
run_obs_pass() {  # run_obs_pass <prom-out> <tail-out> <log>
  local prom_out="$1" tail_out="$2" log="$3"
  # once:3 faults the 3rd *dispatched* request in both passes (ping, tail,
  # and stats bypass admission and never reach the dispatch failpoint).
  CODESIGN_FAILPOINTS='serve.dispatch=once:3' \
      "${SERVE_BIN}" serve --port="${OBS_PORT}" --threads=2 \
      --slo-p99-ms=5000 >"${log}" 2>&1 &
  local pid=$!
  for i in $(seq 1 100); do
    if "${CLIENT_BIN}" ping --port="${OBS_PORT}" >/dev/null 2>&1; then break; fi
    if [ "${i}" -eq 100 ]; then
      echo "FAIL: serve-obs server never became ready"; cat "${log}"; exit 1
    fi
    sleep 0.1
  done
  # The identical serial sequence both passes replay: the third dispatched
  # request (the 2048 estimate) trips the injected fault deterministically.
  "${CLIENT_BIN}" estimate --m=1024 --n=1024 --k=1024 \
      --port="${OBS_PORT}" >/dev/null 2>&1 || true
  "${CLIENT_BIN}" explain --m=512 --n=512 --k=512 \
      --port="${OBS_PORT}" >/dev/null 2>&1 || true
  "${CLIENT_BIN}" estimate --m=2048 --n=2048 --k=2048 \
      --port="${OBS_PORT}" >/dev/null 2>&1 || true
  "${CLIENT_BIN}" advise --model=pythia-70m \
      --port="${OBS_PORT}" >/dev/null 2>&1 || true
  # Records land in the ring just after their responses are written; retry
  # until the injected fault shows up in the error tail.
  for i in $(seq 1 20); do
    "${CLIENT_BIN}" tail --filter=errors --port="${OBS_PORT}" \
        >"${tail_out}" 2>/dev/null || true
    if grep -q "injected fault" "${tail_out}"; then break; fi
    sleep 0.1
  done
  for i in $(seq 1 20); do
    "${CLIENT_BIN}" stats --format=prom --port="${OBS_PORT}" \
        >"${prom_out}" 2>/dev/null || true
    if grep -q "codesign_serve_request_us" "${prom_out}"; then break; fi
    sleep 0.1
  done
  kill -INT "${pid}"
  local rc=0
  wait "${pid}" || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "FAIL: serve-obs server exited ${rc} after SIGINT, want 0"
    cat "${log}"; exit 1
  fi
}
run_obs_pass "${TSAN_DIR}/obs_prom_1.txt" "${TSAN_DIR}/obs_tail_1.txt" \
    "${TSAN_DIR}/serve_obs_1.log"
run_obs_pass "${TSAN_DIR}/obs_prom_2.txt" "${TSAN_DIR}/obs_tail_2.txt" \
    "${TSAN_DIR}/serve_obs_2.log"

# Deterministic-tagged series must not drift between identical runs; the
# wall-clock (best_effort) series are allowed to.
grep 'stability="deterministic"' "${TSAN_DIR}/obs_prom_1.txt" \
    >"${TSAN_DIR}/obs_det_1.txt" || true
grep 'stability="deterministic"' "${TSAN_DIR}/obs_prom_2.txt" \
    >"${TSAN_DIR}/obs_det_2.txt" || true
diff -u "${TSAN_DIR}/obs_det_1.txt" "${TSAN_DIR}/obs_det_2.txt" || {
  echo "FAIL: deterministic-tagged prom series drifted between two" \
       "identical serve runs"
  exit 1
}
grep -q "codesign_serve_request_us" "${TSAN_DIR}/obs_prom_1.txt" || {
  echo "FAIL: prom scrape is missing the serve.request_us summary"
  cat "${TSAN_DIR}/obs_prom_1.txt"; exit 1
}
grep -q "injected fault" "${TSAN_DIR}/obs_tail_1.txt" || {
  echo "FAIL: tail --filter=errors never surfaced the injected fault"
  cat "${TSAN_DIR}/obs_tail_1.txt"; exit 1
}
grep -q '"error_phase":"execute"' "${TSAN_DIR}/obs_tail_1.txt" || {
  echo "FAIL: the injected fault was not attributed to the execute phase"
  cat "${TSAN_DIR}/obs_tail_1.txt"; exit 1
}
grep -q "latency: p50" "${TSAN_DIR}/serve_obs_1.log" || {
  echo "FAIL: serve-obs drain summary printed no latency line"
  cat "${TSAN_DIR}/serve_obs_1.log"; exit 1
}
grep -q "SLO p99 <= 5000.00 ms: met" "${TSAN_DIR}/serve_obs_1.log" || {
  echo "FAIL: serve-obs drain summary printed no SLO verdict"
  cat "${TSAN_DIR}/serve_obs_1.log"; exit 1
}

echo "== attribution: analyze + search --attribution determinism under tsan =="
# The attribution report must be byte-identical at any search thread count
# (the sensitivity probe is sequential by design), and `codesign analyze`
# must produce the exact bytes a sensitivity-enabled search attaches.
"${SERVE_BIN}" analyze gpt3-2.7b --out="${TSAN_DIR}/attr_analyze.json" \
    >/dev/null
"${SERVE_BIN}" search gpt3-2.7b --mode=joint --threads=1 \
    --attribution="${TSAN_DIR}/attr_t1.json" >/dev/null
"${SERVE_BIN}" search gpt3-2.7b --mode=joint --threads=8 \
    --attribution="${TSAN_DIR}/attr_t8.json" >/dev/null
diff -u "${TSAN_DIR}/attr_t1.json" "${TSAN_DIR}/attr_t8.json" || {
  echo "FAIL: search --attribution report drifted across thread counts"
  exit 1
}
diff -u "${TSAN_DIR}/attr_analyze.json" "${TSAN_DIR}/attr_t1.json" || {
  echo "FAIL: analyze report differs from the search attribution report"
  exit 1
}
grep -q '"report": "codesign.attribution"' "${TSAN_DIR}/attr_analyze.json" || {
  echo "FAIL: attribution report is missing its schema header"
  exit 1
}

echo "== chaos-fleet: 3 replicas, 5% network faults, zero visible errors =="
CHAOS_FAULTS='serve.net.read_stall=prob:0.05:11,serve.net.write_drop=prob:0.05:12'
CHAOS_FAULTS+=',serve.net.conn_close=prob:0.05:13,serve.dispatch=prob:0.05:7'
CHAOS_PORTS=($((SERVE_PORT + 2)) $((SERVE_PORT + 3)) $((SERVE_PORT + 4)))
CHAOS_PIDS=()
CHAOS_LOGS=()
for port in "${CHAOS_PORTS[@]}"; do
  log="${TSAN_DIR}/chaos_${port}.log"
  CODESIGN_FAILPOINTS="${CHAOS_FAULTS}" \
      "${SERVE_BIN}" serve --port="${port}" --threads=2 >"${log}" 2>&1 &
  CHAOS_PIDS+=($!)
  CHAOS_LOGS+=("${log}")
done
for port in "${CHAOS_PORTS[@]}"; do
  for i in $(seq 1 100); do
    # Readiness pings run fault-free: the drills under test belong to the
    # fleet mix below, not to the startup probe.
    if "${CLIENT_BIN}" ping --port="${port}" >/dev/null 2>&1; then break; fi
    if [ "${i}" -eq 100 ]; then
      echo "FAIL: chaos-fleet server :${port} never became ready"
      cat "${TSAN_DIR}/chaos_${port}.log"; exit 1
    fi
    sleep 0.1
  done
done

# Expected payloads straight from the one-shot CLI (the byte-identity
# oracle for every fleet response).
"${SERVE_BIN}" gemm --m=1024 --n=2048 --k=768 >"${TSAN_DIR}/chaos_est_a.txt"
"${SERVE_BIN}" gemm --m=4096 --n=4096 --k=4096 >"${TSAN_DIR}/chaos_est_b.txt"
"${SERVE_BIN}" gemm --m=512 --n=1536 --k=896 --batch=4 \
    >"${TSAN_DIR}/chaos_est_c.txt"
"${SERVE_BIN}" advise pythia-70m >"${TSAN_DIR}/chaos_adv_a.txt"
"${SERVE_BIN}" advise gpt3-2.7b >"${TSAN_DIR}/chaos_adv_b.txt"

ENDPOINTS="127.0.0.1:${CHAOS_PORTS[0]},127.0.0.1:${CHAOS_PORTS[1]}"
ENDPOINTS+=",127.0.0.1:${CHAOS_PORTS[2]}"
chaos_call() {  # chaos_call <expected-file> <seed> <op> [flags...]
  # One shot, no shell-side retries: the FleetClient must absorb every
  # injected fault (client- and server-side) and exit 0 with the exact
  # one-shot CLI bytes.
  local expect="$1" seed="$2"; shift 2
  local got="${TSAN_DIR}/chaos_got.txt"
  if ! CODESIGN_FAILPOINTS="${CHAOS_FAULTS}" \
      "${CLIENT_BIN}" "$@" --endpoints="${ENDPOINTS}" --seed="${seed}" \
      >"${got}" 2>"${TSAN_DIR}/chaos_err.txt"; then
    echo "FAIL: chaos-fleet request surfaced an error: $*"
    cat "${TSAN_DIR}/chaos_err.txt"; exit 1
  fi
  diff -u "${expect}" "${got}" || {
    echo "FAIL: chaos-fleet payload differs from the one-shot CLI: $*"
    exit 1
  }
}
for i in $(seq 1 4); do
  chaos_call "${TSAN_DIR}/chaos_est_a.txt" "$((i * 5 + 1))" \
      estimate --m=1024 --n=2048 --k=768
  chaos_call "${TSAN_DIR}/chaos_est_b.txt" "$((i * 5 + 2))" \
      estimate --m=4096 --n=4096 --k=4096
  chaos_call "${TSAN_DIR}/chaos_est_c.txt" "$((i * 5 + 3))" \
      estimate --m=512 --n=1536 --k=896 --batch=4
  chaos_call "${TSAN_DIR}/chaos_adv_a.txt" "$((i * 5 + 4))" \
      advise --model=pythia-70m
  chaos_call "${TSAN_DIR}/chaos_adv_b.txt" "$((i * 5 + 5))" \
      advise --model=gpt3-2.7b
done

# health must answer on every replica even with the drills armed.
for port in "${CHAOS_PORTS[@]}"; do
  HEALTH_OUT="$(CODESIGN_FAILPOINTS="${CHAOS_FAULTS}" "${CLIENT_BIN}" health \
      --endpoints="127.0.0.1:${port}")" || {
    echo "FAIL: chaos-fleet health probe failed on :${port}"; exit 1
  }
  echo "${HEALTH_OUT}" | grep -q '"status":"ok"' || {
    echo "FAIL: chaos-fleet replica :${port} reported unhealthy:"
    echo "${HEALTH_OUT}"; exit 1
  }
done

for pid in "${CHAOS_PIDS[@]}"; do kill -INT "${pid}"; done
for idx in "${!CHAOS_PIDS[@]}"; do
  rc=0
  wait "${CHAOS_PIDS[$idx]}" || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "FAIL: chaos-fleet server exited ${rc} after SIGINT, want 0"
    cat "${CHAOS_LOGS[$idx]}"; exit 1
  fi
  grep -q "drained:" "${CHAOS_LOGS[$idx]}" || {
    echo "FAIL: chaos-fleet server printed no drain summary"
    cat "${CHAOS_LOGS[$idx]}"; exit 1
  }
done

echo "== sweep: matrix determinism + resume drill under tsan =="
# The codesign.sweep report must be byte-identical at any thread count, and
# a run interrupted at the "sweep.cell" failpoint must resume from its
# checkpoint into the exact bytes of an uninterrupted run (docs/SWEEP.md).
SWEEP_CONF="${SRC_DIR}/examples/sweeps/full_matrix.conf"
"${SERVE_BIN}" sweep --config="${SWEEP_CONF}" --threads=1 --cache \
    --out="${TSAN_DIR}/sweep_t1.json" >/dev/null
"${SERVE_BIN}" sweep --config="${SWEEP_CONF}" --threads=8 --cache \
    --out="${TSAN_DIR}/sweep_t8.json" >/dev/null
diff -u "${TSAN_DIR}/sweep_t1.json" "${TSAN_DIR}/sweep_t8.json" || {
  echo "FAIL: sweep report drifted across thread counts"
  exit 1
}
grep -q '"report": "codesign.sweep"' "${TSAN_DIR}/sweep_t1.json" || {
  echo "FAIL: sweep report is missing its schema header"
  exit 1
}
SWEEP_CP="${TSAN_DIR}/sweep_resume_cp.txt"
rm -f "${SWEEP_CP}"
# Interrupt at the 6th cell: cells 1-5 land in the checkpoint, the rest
# must be re-planned and evaluated by the resumed run.
if CODESIGN_FAILPOINTS='sweep.cell=once:6:fatal' \
    "${SERVE_BIN}" sweep --config="${SWEEP_CONF}" --threads=2 \
    --checkpoint="${SWEEP_CP}" >/dev/null 2>&1; then
  echo "FAIL: armed sweep.cell failpoint did not abort the sweep"
  exit 1
fi
[ -s "${SWEEP_CP}" ] || {
  echo "FAIL: interrupted sweep left no checkpoint"
  exit 1
}
"${SERVE_BIN}" sweep --config="${SWEEP_CONF}" --threads=2 \
    --checkpoint="${SWEEP_CP}" --resume \
    --out="${TSAN_DIR}/sweep_resumed.json" \
    | grep -q "from checkpoint" || {
  echo "FAIL: resumed sweep reported no checkpointed variants"
  exit 1
}
diff -u "${TSAN_DIR}/sweep_resumed.json" "${TSAN_DIR}/sweep_t1.json" || {
  echo "FAIL: resumed sweep report differs from the uninterrupted run"
  exit 1
}

echo "== perf: bench smoke suite vs committed baseline =="
PERF_MIN_FRAC="${CODESIGN_PERF_MIN_FRAC:-0.75}"
PERF_BASELINE="${SRC_DIR}/bench/baselines/BENCH_smoke_baseline.json"
"${BUILD_DIR}/tools/codesign-bench" run --suite=smoke --repeats=5 \
    --out="${BUILD_DIR}/BENCH_smoke.json"
"${BUILD_DIR}/tools/codesign-bench" compare "${PERF_BASELINE}" \
    "${BUILD_DIR}/BENCH_smoke.json" --min-frac="${PERF_MIN_FRAC}"

echo "== check OK =="
