#!/usr/bin/env bash
# check.sh — the full local gate:
#   tier 1  build + full ctest suite
#   tier 2  ThreadSanitizer build of the concurrency-sensitive tests
#           (thread pool, estimate cache, observability, failpoints, the
#           fault-injected search)
#   tier 3  ASan+UBSan build of the same set (every report fatal)
#   smoke   a fault-injected CLI sweep: 5% of candidates fail, the run
#           must still exit 0 and print the skipped-candidate report
#   perf    codesign-bench smoke suite gated against the committed
#           baseline (bench/baselines/). Thresholds are deliberately
#           loose (CODESIGN_PERF_MIN_FRAC, default 0.75 = fail only on a
#           >75% slowdown) because the baseline was produced on a
#           different machine; checksum mismatches fail at any speed.
#
# Usage: tools/check.sh [source-dir]
# Also wired as `cmake --build <build> --target check`.
set -euo pipefail

SRC_DIR="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD_DIR="${CODESIGN_CHECK_BUILD_DIR:-${SRC_DIR}/build}"
TSAN_DIR="${CODESIGN_CHECK_TSAN_DIR:-${SRC_DIR}/build-tsan}"
ASAN_DIR="${CODESIGN_CHECK_ASAN_DIR:-${SRC_DIR}/build-asan}"
JOBS="${CODESIGN_CHECK_JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== tier 1: build + ctest (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S "${SRC_DIR}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

SAN_TESTS=(test_thread_pool test_estimate_cache test_obs test_logging
           test_failpoint test_search_faults)

echo "== tier 2: ThreadSanitizer (${TSAN_DIR}) =="
cmake -B "${TSAN_DIR}" -S "${SRC_DIR}" -DCODESIGN_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target "${SAN_TESTS[@]}"
for t in "${SAN_TESTS[@]}"; do
  echo "-- tsan: ${t}"
  "${TSAN_DIR}/tests/${t}"
done

echo "== tier 3: ASan+UBSan (${ASAN_DIR}) =="
cmake -B "${ASAN_DIR}" -S "${SRC_DIR}" -DCODESIGN_SANITIZE=address+undefined
cmake --build "${ASAN_DIR}" -j "${JOBS}" --target "${SAN_TESTS[@]}"
for t in "${SAN_TESTS[@]}"; do
  echo "-- asan+ubsan: ${t}"
  "${ASAN_DIR}/tests/${t}"
done

echo "== smoke: fault-injected search degrades gracefully =="
SMOKE_OUT="$("${BUILD_DIR}/tools/codesign" search gpt3-2.7b --mode=joint \
    --threads=8 --cache \
    --failpoints='gemmsim.cache.lookup=prob:0.05:7,advisor.search.evaluate=prob:0.05:42')"
echo "${SMOKE_OUT}" | grep -q "skipped .* candidate" || {
  echo "FAIL: fault-injected search printed no skipped-candidate report"
  exit 1
}

echo "== perf: bench smoke suite vs committed baseline =="
PERF_MIN_FRAC="${CODESIGN_PERF_MIN_FRAC:-0.75}"
PERF_BASELINE="${SRC_DIR}/bench/baselines/BENCH_smoke_baseline.json"
"${BUILD_DIR}/tools/codesign-bench" run --suite=smoke --repeats=5 \
    --out="${BUILD_DIR}/BENCH_smoke.json"
"${BUILD_DIR}/tools/codesign-bench" compare "${PERF_BASELINE}" \
    "${BUILD_DIR}/BENCH_smoke.json" --min-frac="${PERF_MIN_FRAC}"

echo "== check OK =="
