// quickstart — the 60-second tour of the library:
//   1. pick a GPU and a model architecture,
//   2. map the model to its GEMMs (paper Table II),
//   3. predict single-layer and full-model performance,
//   4. run the shape advisor and get the paper's sizing rules + fixes.
//
// Usage: quickstart [--model=gpt3-2.7b] [--gpu=a100]
#include <iostream>

#include "advisor/report.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/flops.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"

int main(int argc, char** argv) {
  using namespace codesign;
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    const std::string model = args.get_string("model", "gpt3-2.7b");
    const std::string gpu = args.get_string("gpu", "a100");

    // 1. A simulator bound to a GPU from the spec registry.
    const gemm::GemmSimulator sim = gemm::GemmSimulator::for_gpu(gpu);

    // 2. A model architecture from the zoo (or build a TransformerConfig
    //    by hand — see examples/shape_explorer.cpp).
    const tfm::TransformerConfig cfg = tfm::model_by_name(model);
    std::cout << "Model: " << cfg.to_string() << "\n";
    std::cout << "Parameters: "
              << human_count(static_cast<double>(tfm::exact_param_count(cfg)))
              << "  (formula 12h^2L+13hL+(v+s)h gives "
              << human_count(tfm::formula_param_count(cfg)) << ")\n";
    std::cout << "Forward FLOPs/layer: "
              << human_flops(tfm::layer_forward_flops(cfg)) << "\n\n";

    // 3. The GEMM decomposition and its predicted performance.
    std::cout << "Table II decomposition (one layer):\n";
    for (const auto& p : tfm::layer_gemms(cfg)) {
      const auto est = sim.estimate(p);
      std::cout << "  " << p.to_string() << " -> "
                << str_format("%7.1f TFLOP/s, %s-bound, tile %s",
                              est.tflops(), gemm::bound_name(est.bound),
                              est.tile.name().c_str())
                << "\n";
    }
    const auto layer = tfm::analyze_layer(cfg, sim);
    const auto whole = tfm::analyze_model(cfg, sim);
    std::cout << str_format(
        "\nSingle layer: %s (%.1f TFLOP/s useful, %.0f%% in GEMMs)\n",
        human_time(layer.total_time).c_str(), layer.throughput_tflops,
        100.0 * layer.gemm_fraction);
    std::cout << str_format("Full forward pass: %s (%.0f tokens/s)\n\n",
                            human_time(whole.total_time).c_str(),
                            whole.tokens_per_second);

    // 4. The advisor: the paper's §VI-B rules plus ranked re-shapes.
    std::cout << advisor::advise(cfg, sim);
    return 0;
  } catch (const codesign::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
