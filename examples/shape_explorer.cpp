// shape_explorer — design a custom architecture from scratch and explore
// its shape space: the workflow of a practitioner sizing a new model
// before burning GPU-hours (the paper's intended use).
//
// Usage: shape_explorer --h=2560 --a=32 --layers=32 [--b=4] [--s=2048]
//                       [--v=50257] [--t=1] [--gpu=a100] [--swiglu]
#include <iostream>

#include "advisor/cluster.hpp"
#include "advisor/report.hpp"
#include "advisor/search.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/layer_model.hpp"

int main(int argc, char** argv) {
  using namespace codesign;
  try {
    const CliArgs args = CliArgs::parse(argc, argv);

    tfm::TransformerConfig cfg;
    cfg.name = "custom";
    cfg.hidden_size = args.get_int("h", 2560);
    cfg.num_heads = args.get_int("a", 32);
    cfg.num_layers = args.get_int("layers", 32);
    cfg.microbatch = args.get_int("b", 4);
    cfg.seq_len = args.get_int("s", 2048);
    cfg.vocab_size = args.get_int("v", 50257);
    cfg.tensor_parallel = args.get_int("t", 1);
    if (args.get_bool("swiglu", false)) {
      cfg.activation = tfm::Activation::kSwiGlu;
      cfg.mlp_intermediate = args.get_int("dff", 0);
    }
    cfg.validate();

    const gemm::GemmSimulator sim =
        gemm::GemmSimulator::for_gpu(args.get_string("gpu", "a100"));

    // Full advisor report: breakdown, rules, ranked alternatives.
    std::cout << advisor::advise(cfg, sim);

    // Head-count search in detail: predicted speedup for every legal a.
    std::cout << "\nFull head-count landscape (same h, same params):\n";
    TableWriter t({"a", "h/a", "layer time", "TFLOP/s", "speedup", "rules"});
    for (const auto& c : advisor::search_heads(cfg, sim)) {
      t.new_row()
          .cell(c.config.num_heads)
          .cell(c.config.head_dim())
          .cell(human_time(c.layer_time))
          .cell(c.layer_tflops, 1)
          .cell(str_format("%.3fx", c.speedup_vs_base))
          .cell(c.rules_pass ? "PASS" : "FAIL");
    }
    t.write(std::cout);

    // Where could this shape deploy?
    std::cout << "\nTensor-parallel deployment matrix:\n";
    TableWriter td({"node GPUs", "feasible", "per-GPU TFLOP/s", "reason"});
    for (const auto& cell : advisor::deployment_matrix(cfg, sim)) {
      td.new_row()
          .cell(cell.node_gpus)
          .cell(cell.option.feasibility.feasible ? "yes" : "NO")
          .cell(cell.option.feasibility.feasible
                    ? str_format("%.1f", cell.option.layer_tflops)
                    : "-")
          .cell(cell.option.feasibility.reason);
    }
    td.write(std::cout);
    return 0;
  } catch (const codesign::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
