// cluster_planner — plan a training run on one of the paper's Table-III
// systems: pick the tensor-parallel degree with communication charged,
// check memory feasibility (with checkpointing/ZeRO fallbacks), pick a
// pipeline stage count from the divisors of L, and flag shape conflicts
// with the node size (the §VII-A trap).
//
// Usage: cluster_planner [--model=gpt3-2.7b] [--cluster=aws-p4d]
//                        [--microbatches=32] [--dp=8]
#include <iostream>

#include "advisor/cluster.hpp"
#include "comm/collectives.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/pipeline.hpp"
#include "transformer/training.hpp"

int main(int argc, char** argv) {
  using namespace codesign;
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    const auto& cluster =
        comm::cluster_by_name(args.get_string("cluster", "aws-p4d"));
    tfm::TransformerConfig model =
        tfm::model_by_name(args.get_string("model", "gpt3-2.7b"));
    if (model.vocab_size % 64 != 0) {
      model = model.with_vocab(((model.vocab_size + 63) / 64) * 64);
    }
    const std::int64_t microbatches = args.get_int("microbatches", 32);
    const std::int64_t dp = args.get_int("dp", 8);

    std::cout << "Planning " << model.to_string() << "\non "
              << cluster.description << "\n\n";
    const gemm::GemmSimulator sim(cluster.gpu());

    // --- tensor parallelism with communication charged -----------------
    std::cout << "Tensor parallelism (2 all-reduces/layer over "
              << human_bytes(static_cast<double>(model.tokens()) *
                             model.hidden_size * 2)
              << " activations):\n";
    TableWriter tt({"t", "feasible", "compute/layer", "comm/layer",
                    "total/layer", "max b", "note"});
    for (std::int64_t t = 1; t <= cluster.gpus_per_node; t *= 2) {
      const auto feas = advisor::tp_feasibility(model, t);
      if (!feas.feasible) {
        tt.new_row().cell(t).cell("NO").cell("-").cell("-").cell("-").cell(
            "-").cell(feas.reason);
        continue;
      }
      const auto cfg = model.with_tensor_parallel(t);
      const auto r = comm::tp_total_layer_time(cfg, cluster);
      tfm::MemoryOptions ckpt;
      ckpt.activation_checkpointing = true;
      const std::int64_t maxb =
          tfm::max_microbatch(cfg, cluster.gpu(), 256, ckpt);
      tt.new_row()
          .cell(t)
          .cell("yes")
          .cell(human_time(r.compute_time))
          .cell(human_time(r.comm_time))
          .cell(human_time(r.total_time))
          .cell(maxb)
          .cell(maxb == 0 ? "needs ZeRO/more TP" : "");
    }
    // The node size itself, when it is not a power of two (Summit's 6).
    if ((cluster.gpus_per_node & (cluster.gpus_per_node - 1)) != 0) {
      const auto feas =
          advisor::tp_feasibility(model, cluster.gpus_per_node);
      tt.new_row()
          .cell(static_cast<std::int64_t>(cluster.gpus_per_node))
          .cell(feas.feasible ? "yes" : "NO")
          .cell("-")
          .cell("-")
          .cell("-")
          .cell("-")
          .cell(feas.feasible ? "full-node TP" : feas.reason);
    }
    tt.write(std::cout);

    // --- pipeline stages -------------------------------------------------
    std::cout << "\nPipeline stage choices (m = " << microbatches
              << " microbatches in flight):\n";
    TableWriter tp({"p", "balanced", "bubble", "efficiency"});
    for (const std::int64_t p :
         tfm::balanced_stage_counts(model, 16)) {
      tfm::PipelineSchedule s;
      s.stages = p;
      s.microbatches = microbatches;
      const auto r = tfm::analyze_pipeline(model, sim, s);
      tp.new_row()
          .cell(p)
          .cell("yes")
          .cell(str_format("%.1f%%", 100.0 * r.bubble_fraction))
          .cell(str_format("%.1f%%", 100.0 * r.efficiency));
    }
    tp.write(std::cout);

    // --- ZeRO fallback if nothing fits -----------------------------------
    tfm::MemoryOptions zero;
    zero.activation_checkpointing = true;
    zero.zero_stage = 1;
    zero.data_parallel = dp;
    std::cout << "\nWith ZeRO-1 over " << dp
              << " data-parallel ranks + checkpointing, max b at t=1: "
              << tfm::max_microbatch(model, cluster.gpu(), 256, zero) << "\n";
    return 0;
  } catch (const codesign::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
