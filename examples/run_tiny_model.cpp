// run_tiny_model — actually execute a transformer on the CPU substrate:
// build a small randomly-initialized decoder, run a forward pass, measure
// the next-token loss (≈ ln v for random weights), and cross-check the
// executed shapes against the analytic Table-II mapping. This is the
// "the mapping is real, not just arithmetic" demo.
//
// Usage: run_tiny_model [--h=64] [--a=8] [--layers=2] [--s=32] [--v=256]
//                       [--swiglu] [--parallel] [--rotary]
#include <chrono>
#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "transformer/flops.hpp"
#include "transformer/forward.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/params.hpp"

int main(int argc, char** argv) {
  using namespace codesign;
  try {
    const CliArgs args = CliArgs::parse(argc, argv);

    tfm::TransformerConfig cfg;
    cfg.name = "tiny";
    cfg.hidden_size = args.get_int("h", 64);
    cfg.num_heads = args.get_int("a", 8);
    cfg.num_layers = args.get_int("layers", 2);
    cfg.seq_len = args.get_int("s", 32);
    cfg.microbatch = 1;
    cfg.vocab_size = args.get_int("v", 256);
    if (args.get_bool("swiglu", false)) cfg.activation = tfm::Activation::kSwiGlu;
    if (args.get_bool("parallel", false)) cfg.parallel_layers = true;
    if (args.get_bool("rotary", false)) cfg.pos_embedding = tfm::PosEmbedding::kRotary;
    cfg.validate();

    std::cout << "Building " << cfg.to_string() << " ("
              << human_count(static_cast<double>(tfm::exact_param_count(cfg)))
              << " parameters, randomly initialized)\n";
    const auto model = tfm::TransformerModel::random_init(cfg, 2024);

    // A deterministic pseudo-text.
    Rng rng(7);
    std::vector<std::int64_t> ids;
    for (std::int64_t i = 0; i < cfg.seq_len; ++i) {
      ids.push_back(rng.uniform_int(0, cfg.vocab_size - 1));
    }

    const auto t0 = std::chrono::steady_clock::now();
    const kern::Tensor logits = model.forward(ids);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(t1 - t0).count();

    std::cout << "Forward pass over " << ids.size() << " tokens: "
              << human_time(wall) << " on the CPU substrate\n";
    std::cout << "Logits shape: (" << logits.dim(0) << ", " << logits.dim(1)
              << ")  — analytic logit GEMM says n = "
              << tfm::logit_gemm(cfg).n << "\n";

    const double loss = model.next_token_loss(ids);
    std::cout << str_format(
        "Next-token loss: %.4f   (ln v = %.4f — a random model is ~uniform)\n",
        loss, std::log(static_cast<double>(cfg.vocab_size)));

    std::cout << "\nExecuted GEMMs per layer (Table II):\n";
    for (const auto& p : tfm::layer_gemms(cfg)) {
      std::cout << "  " << p.to_string() << "\n";
    }
    std::cout << "Layer forward FLOPs: "
              << human_flops(tfm::layer_forward_flops(cfg))
              << " (formula: "
              << human_flops(tfm::layer_forward_flops_formula(cfg)) << ")\n";
    return 0;
  } catch (const codesign::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
