// swiglu_sizing — the §VII-B workflow as a tool: you picked a good h for a
// SwiGLU model; now pick d_ff. The 8h/3 parameter-preserving suggestion is
// only a suggestion — brute-force the range and take an aligned value
// (that is how Llama-2-7B ended up at 11008 for h = 4096).
//
// Usage: swiglu_sizing --h=4096 [--radius=512] [--gpu=a100] [--top=12]
#include <cmath>
#include <iostream>

#include "advisor/search.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/params.hpp"

int main(int argc, char** argv) {
  using namespace codesign;
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    const std::int64_t h = args.get_int("h", 4096);
    const std::int64_t radius = args.get_int("radius", 512);
    const int top = static_cast<int>(args.get_int("top", 12));

    tfm::TransformerConfig cfg;
    cfg.name = "swiglu-design";
    cfg.hidden_size = h;
    cfg.num_heads = h / 128;  // a reasonable aligned default head dim
    cfg.num_layers = 32;
    cfg.activation = tfm::Activation::kSwiGlu;
    cfg.vocab_size = 32000;
    cfg.seq_len = 4096;
    cfg.validate();

    const gemm::GemmSimulator sim =
        gemm::GemmSimulator::for_gpu(args.get_string("gpu", "a100"));

    const auto suggested =
        static_cast<std::int64_t>(std::llround(8.0 * h / 3.0));
    std::cout << "h = " << h << "; parameter-preserving suggestion d_ff = "
              << "round(8h/3) = " << suggested << " (pow2 granule "
              << largest_pow2_dividing(static_cast<std::uint64_t>(suggested))
              << ")\n";

    const auto scan = advisor::search_mlp_intermediate(
        cfg, sim, suggested - radius, suggested + radius);

    std::cout << "\nBest d_ff candidates within +/-" << radius << ":\n";
    TableWriter t({"d_ff", "coeff", "pow2", "MLP TFLOP/s",
                   "MLP params/layer"});
    int listed = 0;
    for (const auto& c : scan) {
      if (listed++ >= top) break;
      cfg.mlp_intermediate = c.d_ff;
      // 3 SwiGLU matrices: up, gate (h x d_ff each) and down (d_ff x h).
      const double mlp_params = 3.0 * static_cast<double>(h) * c.d_ff;
      t.new_row()
          .cell(c.d_ff)
          .cell(c.coefficient, 4)
          .cell(static_cast<std::int64_t>(
              largest_pow2_dividing(static_cast<std::uint64_t>(c.d_ff))))
          .cell(c.mlp_tflops, 1)
          .cell(human_count(mlp_params));
    }
    t.write(std::cout);

    std::cout << "\nThe suggestion itself ranks at percentile "
              << str_format("%.2f",
                            advisor::mlp_candidate_percentile(scan, suggested))
              << " (0 = best) — pick an aligned neighbour instead.\n";
    return 0;
  } catch (const codesign::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
