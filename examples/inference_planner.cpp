// inference_planner — compare serving latency/throughput of candidate
// checkpoints on a target GPU (the §VII-C story): which model should I
// deploy, and does its training-time shape efficiency carry over?
//
// Usage: inference_planner [--models=pythia-410m,pythia-1b,...]
//                          [--gpu=a100] [--prompt=128] [--gen=256]
//                          [--batch=1]
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/inference.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"

int main(int argc, char** argv) {
  using namespace codesign;
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    const std::string list = args.get_string(
        "models", "pythia-160m,pythia-410m,pythia-1b,pythia-1.4b,pythia-2.8b");
    tfm::InferenceWorkload w;
    w.prompt_len = args.get_int("prompt", 128);
    w.generate_tokens = args.get_int("gen", 256);
    w.batch = args.get_int("batch", 1);

    const gemm::GemmSimulator sim =
        gemm::GemmSimulator::for_gpu(args.get_string("gpu", "a100"));

    std::cout << "Serving plan: prompt " << w.prompt_len << ", generate "
              << w.generate_tokens << ", batch " << w.batch << " on "
              << sim.gpu().marketing_name << "\n\n";

    TableWriter t({"model", "params", "prefill", "per token", "tokens/s",
                   "request latency", "launches/step"});
    for (const std::string& name : split(list, ',')) {
      const auto& cfg = tfm::model_by_name(std::string(trim(name)));
      const auto e = tfm::estimate_inference(cfg, sim, w);
      t.new_row()
          .cell(cfg.name)
          .cell(human_count(static_cast<double>(tfm::exact_param_count(cfg))))
          .cell(human_time(e.prefill_time))
          .cell(human_time(e.per_token_time))
          .cell(e.tokens_per_second, 0)
          .cell(human_time(e.total_time))
          .cell(e.launches_per_step, 0);
    }
    t.write(std::cout);

    std::cout << "\n(Notice pythia-1b vs pythia-410m: 2.5x the parameters "
                 "but far less than 2.5x the latency — fewer, wider layers "
                 "amortize per-kernel overheads, the paper's Fig-13 "
                 "observation.)\n";
    return 0;
  } catch (const codesign::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
