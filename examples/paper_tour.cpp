// paper_tour — the paper's five headline results, reproduced in sequence
// by one small program. Run it after building to sanity-check the whole
// stack (the same claims are enforced as bands in tests/test_calibration).
//
// Usage: paper_tour [--gpu=a100]
#include <iostream>

#include "advisor/search.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "gemmsim/explain.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

int main(int argc, char** argv) {
  using namespace codesign;
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    const auto sim =
        gemm::GemmSimulator::for_gpu(args.get_string("gpu", "a100"));
    std::cout << "== The paper's headline results, on " << sim.gpu().id
              << " ==\n\n";

    // 1. Fig 1 / §VI-B: the GPT-3 2.7B re-shape.
    const auto base = tfm::analyze_layer(tfm::model_by_name("gpt3-2.7b"), sim);
    const auto c2 = tfm::analyze_layer(tfm::model_by_name("gpt3-2.7b-c2"), sim);
    std::cout << str_format(
        "1. Re-shaping GPT-3 2.7B (a: 32 -> 40, same parameters) speeds a "
        "layer up %.3fx\n   (paper: ~1.18x). h/a goes 80 -> 64: a full "
        "tensor-core granule.\n\n",
        base.total_time / c2.total_time);

    // 2. Fig 2: GEMMs dominate, increasingly with size.
    const auto big = tfm::analyze_layer(tfm::model_by_name("gpt3-175b"), sim);
    std::cout << str_format(
        "2. GEMMs are %.0f%% of a 2.7B layer's latency and %.0f%% of a "
        "175B layer's\n   (paper: 68.3%% and 94.9%%) — shape the GEMMs, "
        "shape the model.\n\n",
        100.0 * base.gemm_fraction, 100.0 * big.gemm_fraction);

    // 3. Fig 20 / the vocab rule.
    const double odd =
        sim.throughput_tflops(gemm::GemmProblem::gemm(8192, 50257, 2560));
    const double pad =
        sim.throughput_tflops(gemm::GemmProblem::gemm(8192, 50304, 2560));
    std::cout << str_format(
        "3. Padding the vocabulary 50257 -> 50304 (a multiple of 64) makes "
        "the logit GEMM %.1fx faster\n   (the famous nanoGPT trick).\n\n",
        pad / odd);

    // 4. §VII-B: the SwiGLU 8h/3 trap.
    const auto llama = tfm::model_by_name("llama2-7b");
    const auto scan =
        advisor::search_mlp_intermediate(llama, sim, 10752, 11264);
    std::cout << str_format(
        "4. SwiGLU's suggested d_ff = 8h/3 = 10923 ranks at percentile "
        "%.2f of its range;\n   Llama-2-7B's actual 11008 ranks at %.3f "
        "(paper: 'one of the best in its range').\n\n",
        advisor::mlp_candidate_percentile(scan, 10923),
        advisor::mlp_candidate_percentile(scan, 11008));

    // 5. Wave quantization, the least-known effect.
    const auto b = gemm::explain_gemm(
        gemm::GemmProblem::gemm(1920, 1920, 1920), sim.gpu());
    std::cout << "5. Why is a 1920^3 GEMM slow? Factor it:\n"
              << b.to_string()
              << "   (the wave_quantization factor is the saw-tooth of "
                 "Fig 5b: 120 tiles on 108 SMs).\n";
    return 0;
  } catch (const codesign::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
