// Fig 13 — inference latency of the Pythia suite (DeepSpeed-MII-style
// serving): latency follows a power-law trend in parameter count, with
// Pythia-410M above the trend and Pythia-1B below it — the paper's
// demonstration that train-efficient shapes are also infer-efficient.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "transformer/inference.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig13_inference",
    "Fig 13: Pythia-suite inference latency vs parameters",
    {"prompt", "gen", "batch"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 13", "Pythia-suite inference latency vs parameters");

  tfm::InferenceWorkload w;
  w.prompt_len = ctx.args().get_int("prompt", 128);
  w.generate_tokens = ctx.args().get_int("gen", 128);
  w.batch = ctx.args().get_int("batch", 1);

  const auto suite = tfm::pythia_suite();
  std::vector<double> params, latencies;
  std::vector<tfm::InferenceEstimate> ests;
  for (const auto& cfg : suite) {
    const auto e = tfm::estimate_inference(cfg, ctx.sim(), w);
    params.push_back(static_cast<double>(tfm::exact_param_count(cfg)));
    latencies.push_back(e.per_token_time);
    ests.push_back(e);
  }
  const PowerLawFit fit = power_law_fit(params, latencies);

  TableWriter t({"model", "params", "L", "h", "a", "per-token", "tokens/s",
                 "prefill", "vs trend"});
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const double dev = latencies[i] / fit.predict(params[i]);
    t.new_row()
        .cell(suite[i].name)
        .cell(human_count(params[i]))
        .cell(suite[i].num_layers)
        .cell(suite[i].hidden_size)
        .cell(suite[i].num_heads)
        .cell(human_time(ests[i].per_token_time))
        .cell(ests[i].tokens_per_second, 0)
        .cell(human_time(ests[i].prefill_time))
        .cell(str_format("%+.1f%%", 100.0 * (dev - 1.0)));
  }
  ctx.emit(t);
  std::cout << str_format(
      "trend: latency = %.3g * params^%.3f (log-log R^2 = %.3f)\n",
      fit.coefficient, fit.exponent, fit.r2);
  std::cout << "(paper: 410M sits ABOVE the trend — 24 thin layers of "
               "h=1024 — while 1B sits below it with 16 wide layers)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig13_inference) {
  using namespace codesign;
  reg.add({"fig13.pythia_inference", "bench_fig13_inference",
           "inference estimates + power-law fit over the Pythia suite",
           {benchlib::kSuiteFig, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             tfm::InferenceWorkload w;
             w.prompt_len = 128;
             w.generate_tokens = 128;
             w.batch = 1;
             std::vector<double> params, latencies;
             for (const auto& cfg : tfm::pythia_suite()) {
               const auto e = tfm::estimate_inference(cfg, c.sim(), w);
               params.push_back(
                   static_cast<double>(tfm::exact_param_count(cfg)));
               latencies.push_back(e.per_token_time);
               c.consume(e.per_token_time);
               c.consume(e.prefill_time);
             }
             const PowerLawFit fit = power_law_fit(params, latencies);
             c.consume(fit.coefficient);
             c.consume(fit.exponent);
             c.consume(fit.r2);
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
