// Figs 17/18 (appendix) — attention key-query score (KQᵀ) and
// score-times-values GEMMs swept over hidden size at the appendix's
// a = 128, showing throughput growth with h and the h/a power-of-two
// dependence.
#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig17_18_attention_appendix",
    "Figs 17/18: KQ^T and score-times-values GEMMs vs h at a = 128",
    {"a", "b", "s"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Figures 17/18",
             "KQ^T and score-times-values GEMMs vs h at a = 128");

  const std::int64_t a = ctx.args().get_int("a", 128);
  const std::int64_t b = ctx.args().get_int("b", 4);
  const std::int64_t s = ctx.args().get_int("s", 2048);

  TableWriter t({"h", "h/a", "pow2(h/a)", "KQ^T TFLOP/s",
                 "score*V TFLOP/s"});
  for (std::int64_t h = a * 8; h <= a * 104; h += a * 8) {
    tfm::TransformerConfig cfg;
    cfg.name = "sweep";
    cfg.hidden_size = h;
    cfg.num_heads = a;
    cfg.num_layers = 1;
    cfg.seq_len = s;
    cfg.microbatch = b;
    cfg.vocab_size = 50304;
    const auto score = ctx.sim().estimate(tfm::attention_score_bmm(cfg));
    const auto aov = ctx.sim().estimate(tfm::attention_over_value_bmm(cfg));
    t.new_row()
        .cell(h)
        .cell(cfg.head_dim())
        .cell(static_cast<std::int64_t>(largest_pow2_dividing(
            static_cast<std::uint64_t>(cfg.head_dim()))))
        .cell(score.tflops(), 1)
        .cell(aov.tflops(), 1);
  }
  ctx.emit(t);
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig17_18_attention_appendix) {
  using namespace codesign;
  reg.add({"fig17_18.appendix_attention", "bench_fig17_18_attention_appendix",
           "score + AOV BMM estimates vs h at a = 128",
           {benchlib::kSuiteFig},
           [](benchlib::CaseContext& c) {
             for (std::int64_t h = 128 * 8; h <= 128 * 104; h += 128 * 8) {
               tfm::TransformerConfig cfg;
               cfg.name = "sweep";
               cfg.hidden_size = h;
               cfg.num_heads = 128;
               cfg.num_layers = 1;
               cfg.seq_len = 2048;
               cfg.microbatch = 4;
               cfg.vocab_size = 50304;
               c.consume(
                   c.sim().estimate(tfm::attention_score_bmm(cfg)).tflops());
               c.consume(c.sim()
                             .estimate(tfm::attention_over_value_bmm(cfg))
                             .tflops());
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
