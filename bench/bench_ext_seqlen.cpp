// Extension — sequence-length scaling: the paper's FLOP accounting
// 24bsh²(1 + s/6h) says attention's share of layer math is s/(6h + s),
// crossing 50% at s = 6h. This bench sweeps s for a fixed shape and shows
// (i) the analytic FLOP share, (ii) the modelled *time* share (larger,
// because the attention BMMs and softmax run far below the linear GEMMs'
// efficiency), and (iii) how FlashAttention moves the crossover.
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "transformer/flops.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_ext_seqlen",
    "Extension: attention share of layer FLOPs and time vs s",
    {"model"}};

double attention_time_share(const tfm::LayerLatencyReport& r) {
  double t = 0.0;
  for (const auto& o : r.ops) {
    switch (o.op) {
      case tfm::LayerOp::kAttentionScore:
      case tfm::LayerOp::kAttentionOverValue:
      case tfm::LayerOp::kSoftmax:
      case tfm::LayerOp::kFlashAttention:
        t += o.time;
        break;
      default:
        break;
    }
  }
  return t / r.total_time;
}

int body(bench::BenchContext& ctx) {
  ctx.banner("Extension: sequence-length scaling",
             "attention share of layer FLOPs and time vs s");

  const std::string model = ctx.args().get_string("model", "gpt3-2.7b");
  const tfm::TransformerConfig base = tfm::model_by_name(model);
  const double h = static_cast<double>(base.hidden_size);

  TableWriter t({"s", "attn FLOP share (s/(6h+s))", "attn time share (BMM)",
                 "attn time share (flash)", "layer TFLOP/s (BMM)",
                 "layer TFLOP/s (flash)"});
  for (std::int64_t s = 512; s <= 32768; s *= 2) {
    tfm::TransformerConfig bmm_cfg = base.with_seq_len(s);
    tfm::TransformerConfig flash_cfg = bmm_cfg;
    flash_cfg.attention = tfm::AttentionImpl::kFlash;
    const auto rb = tfm::analyze_layer(bmm_cfg, ctx.sim());
    const auto rf = tfm::analyze_layer(flash_cfg, ctx.sim());
    const double flop_share =
        static_cast<double>(s) / (6.0 * h + static_cast<double>(s));
    t.new_row()
        .cell(s)
        .cell(str_format("%5.1f%%", 100.0 * flop_share))
        .cell(str_format("%5.1f%%", 100.0 * attention_time_share(rb)))
        .cell(str_format("%5.1f%%", 100.0 * attention_time_share(rf)))
        .cell(rb.throughput_tflops, 1)
        .cell(rf.throughput_tflops, 1);
  }
  ctx.emit(t);
  std::cout << str_format(
      "(FLOP crossover at s = 6h = %lld; the *time* crossover arrives much "
      "earlier on the unfused path because attention runs memory-bound, "
      "and much later with FlashAttention — the paper's §VI-C3 advice)\n",
      static_cast<long long>(6 * base.hidden_size));
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(ext_seqlen) {
  using namespace codesign;
  reg.add({"ext.seqlen_scaling", "bench_ext_seqlen",
           "layer analysis over s with BMM and flash attention",
           {benchlib::kSuiteExt},
           [](benchlib::CaseContext& c) {
             const auto base = tfm::model_by_name("gpt3-2.7b");
             for (std::int64_t s = 512; s <= 32768; s *= 2) {
               tfm::TransformerConfig bmm_cfg = base.with_seq_len(s);
               tfm::TransformerConfig flash_cfg = bmm_cfg;
               flash_cfg.attention = tfm::AttentionImpl::kFlash;
               const auto rb = tfm::analyze_layer(bmm_cfg, c.sim());
               const auto rf = tfm::analyze_layer(flash_cfg, c.sim());
               c.consume(attention_time_share(rb));
               c.consume(attention_time_share(rf));
               c.consume(rb.throughput_tflops);
               c.consume(rf.throughput_tflops);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
