// bench_common.hpp — shared harness for the per-figure bench binaries.
//
// Every binary in bench/ regenerates the rows/series of one figure or
// table from the paper. Conventions:
//   * stdout carries the data (ASCII tables by default, --format=csv for
//     machine-readable output); stderr carries logs.
//   * --gpu=<id> selects the simulated device (default a100; the registry
//     ids/aliases of gpuarch are accepted).
//   * --policy=auto|fixed selects the tile-selection policy.
//   * Each binary prints a header naming the paper figure it reproduces.
#pragma once

#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "gemmsim/simulator.hpp"
#include "gpuarch/gpu_spec.hpp"

namespace codesign::bench {

class BenchContext {
 public:
  static BenchContext from_args(int argc, const char* const* argv,
                                const std::string& default_gpu = "a100");

  const CliArgs& args() const { return args_; }
  const gpu::GpuSpec& gpu() const { return *gpu_; }
  const gemm::GemmSimulator& sim() const { return sim_; }
  TableFormat format() const { return format_; }

  /// Print the figure banner: which figure, which GPU, which policy.
  void banner(const std::string& figure, const std::string& description) const;

  /// Print a section heading (suppressed in CSV mode where a "# section"
  /// comment line is used instead).
  void section(const std::string& title) const;

  /// Render a table to stdout in the selected format.
  void emit(const TableWriter& table) const;

 private:
  BenchContext(CliArgs args, const gpu::GpuSpec& g, gemm::TilePolicy policy,
               TableFormat format)
      : args_(std::move(args)), gpu_(&g), sim_(g, policy), format_(format) {}

  CliArgs args_;
  const gpu::GpuSpec* gpu_;
  gemm::GemmSimulator sim_;
  TableFormat format_;
};

/// Standard main() wrapper: parses flags, catches codesign::Error with a
/// clean message and non-zero exit.
int run_bench(int argc, const char* const* argv,
              int (*body)(BenchContext&), const std::string& default_gpu = "a100");

}  // namespace codesign::bench
