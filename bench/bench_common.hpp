// bench_common.hpp — shared harness for the per-figure bench binaries.
//
// Every binary in bench/ regenerates the rows/series of one figure or
// table from the paper. Conventions:
//   * stdout carries the data (ASCII tables by default, --format=csv for
//     machine-readable output); stderr carries logs.
//   * --gpu=<id> selects the simulated device (default a100; the registry
//     ids/aliases of gpuarch are accepted).
//   * --policy=auto|fixed selects the tile-selection policy.
//   * Unknown flags are rejected with the documented usage exit code 2
//     (common/error.hpp); each binary declares its extra flags in a
//     BenchSpec so typos fail loudly instead of silently running the
//     defaults.
//   * Each binary prints a header naming the paper figure it reproduces.
//
// Beyond the standalone figure output, every bench registers named timing
// cases with the benchlib registry (CODESIGN_BENCH_CASES below); the
// `codesign-bench` runner lists/filters/times those cases and writes the
// machine-readable perf trajectory (docs/BENCHMARKS.md).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "benchlib/registry.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "gemmsim/simulator.hpp"
#include "gpuarch/gpu_spec.hpp"

namespace codesign::bench {

/// Identity + command-line contract of one bench binary. `flags` lists
/// the extra --name flags the body reads beyond the standard
/// gpu/policy/format trio; anything else on the command line is a
/// UsageError (exit 2).
struct BenchSpec {
  std::string name;                 ///< binary name, e.g. "fig05_gemm_sweep"
  std::string summary;              ///< one line for the usage message
  std::vector<std::string> flags;   ///< extra accepted flag names
  std::string default_gpu = "a100";
};

class BenchContext {
 public:
  static BenchContext from_args(int argc, const char* const* argv,
                                const BenchSpec& spec = {});

  const CliArgs& args() const { return args_; }
  const gpu::GpuSpec& gpu() const { return *gpu_; }
  const gemm::GemmSimulator& sim() const { return sim_; }
  TableFormat format() const { return format_; }

  /// Print the figure banner: which figure, which GPU, which policy.
  void banner(const std::string& figure, const std::string& description) const;

  /// Print a section heading (suppressed in CSV mode where a "# section"
  /// comment line is used instead).
  void section(const std::string& title) const;

  /// Render a table to stdout in the selected format.
  void emit(const TableWriter& table) const;

 private:
  BenchContext(CliArgs args, const gpu::GpuSpec& g, gemm::TilePolicy policy,
               TableFormat format)
      : args_(std::move(args)), gpu_(&g), sim_(g, policy), format_(format) {}

  CliArgs args_;
  const gpu::GpuSpec* gpu_;
  gemm::GemmSimulator sim_;
  TableFormat format_;
};

/// Standard main() wrapper: parses flags, catches codesign::Error with a
/// clean message, and exits with the documented taxonomy of
/// common/error.hpp (unknown flag -> 2, unknown GPU -> 5, ...).
int run_bench(int argc, const char* const* argv,
              int (*body)(BenchContext&), const BenchSpec& spec = {});

}  // namespace codesign::bench

/// Defines this binary's registration hook: a uniquely named extern
/// function the codesign-bench runner collects via
/// bench/bench_cases.{hpp,cpp}. Use at namespace scope:
///   CODESIGN_BENCH_CASES(fig05_gemm_sweep) { reg.add({...}); }
#define CODESIGN_BENCH_CASES(id) \
  void codesign_bench_register_##id(::codesign::benchlib::BenchRegistry& reg)

/// Expands to the standalone main() — elided when the same source file is
/// compiled into the codesign_bench_cases library for the runner.
#if defined(CODESIGN_BENCH_NO_MAIN)
// Keep spec/body referenced so the cases build stays warning-clean.
#define CODESIGN_BENCH_MAIN(spec, body)                              \
  [[maybe_unused]] static int codesign_bench_standalone_(            \
      int argc, char** argv) {                                       \
    return ::codesign::bench::run_bench(argc, argv, (body), (spec)); \
  }
#else
#define CODESIGN_BENCH_MAIN(spec, body)                          \
  int main(int argc, char** argv) {                              \
    return ::codesign::bench::run_bench(argc, argv, (body), (spec)); \
  }
#endif
