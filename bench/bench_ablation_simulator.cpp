// Ablation — switch off each mechanism of the performance model and show
// what it contributes (the design choices DESIGN.md §5 calls out):
//   * alignment ladder   (tensor-core efficiency vs a flat 1.0)
//   * wave quantization  (ceil vs fractional waves)
//   * tile selection     (auto catalogue vs fixed 256x128)
//   * DES vs closed form (scheduling arithmetic cross-check)
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "gemmsim/kernel_model.hpp"
#include "gemmsim/sm_scheduler.hpp"
#include "gpuarch/tensor_core.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

using gemm::GemmProblem;

const bench::BenchSpec kSpec{
    "bench_ablation_simulator",
    "Ablation: what each modelled mechanism contributes",
    {}};

/// A GPU spec with the alignment ladder flattened to 1.0 everywhere.
gpu::GpuSpec no_alignment(const gpu::GpuSpec& base) {
  gpu::GpuSpec g = base;
  g.id = base.id + "-noalign";
  g.alignment_ladder = {{base.tc_full_alignment_bytes, 1.0}};
  g.tc_min_alignment_bytes = 1;
  // Keep the ladder structurally valid: single full-efficiency step means
  // every dimension is treated as perfectly aligned.
  g.tc_full_alignment_bytes = 1;
  g.alignment_ladder = {{1, 1.0}};
  return g;
}

int body(bench::BenchContext& ctx) {
  ctx.banner("Ablation", "what each modelled mechanism contributes");

  ctx.section("alignment ladder: GPT-3 2.7B trio with and without it");
  const gpu::GpuSpec flat = no_alignment(ctx.gpu());
  const gemm::GemmSimulator sim_flat(flat);
  TableWriter ta({"model", "h/a", "TFLOP/s (full model)",
                  "TFLOP/s (no alignment)", "alignment cost"});
  for (const char* name : {"gpt3-2.7b", "gpt3-2.7b-c1", "gpt3-2.7b-c2"}) {
    const auto cfg = tfm::model_by_name(name);
    const auto full = tfm::analyze_layer(cfg, ctx.sim());
    const auto ablated = tfm::analyze_layer(cfg, sim_flat);
    ta.new_row()
        .cell(name)
        .cell(cfg.head_dim())
        .cell(full.throughput_tflops, 1)
        .cell(ablated.throughput_tflops, 1)
        .cell(str_format("%.3fx", ablated.throughput_tflops /
                                      full.throughput_tflops));
  }
  ctx.emit(ta);
  std::cout << "(without the ladder the Fig-1 shape family collapses to "
               "near-identical throughput — the entire effect the paper "
               "measures comes from alignment)\n";

  ctx.section("wave quantization: saw-tooth amplitude at fixed tile");
  TableWriter tw({"n", "waves", "wave efficiency", "TFLOP/s",
                  "TFLOP/s if fractional waves"});
  for (std::int64_t n : {1792, 1920, 2048, 2304, 2432}) {
    const auto est = gemm::estimate_with_tile(GemmProblem::gemm(n, n, n),
                                              gpu::largest_tile(), ctx.gpu());
    // Fractional-wave counterfactual: scale compute time by efficiency.
    const double frac_time =
        std::max(est.compute_time * est.wave_q.efficiency, est.memory_time) +
        est.launch_overhead;
    tw.new_row()
        .cell(n)
        .cell(est.wave_q.waves)
        .cell(est.wave_q.efficiency, 3)
        .cell(est.tflops(), 1)
        .cell(est.problem.flops() / frac_time / 1e12, 1);
  }
  ctx.emit(tw);

  ctx.section("tile selection: worst-case gain of the auto heuristic");
  TableWriter tt({"problem", "fixed 256x128 TFLOP/s", "auto TFLOP/s",
                  "auto tile", "gain"});
  for (const GemmProblem& p :
       {GemmProblem::bmm(128, 2048, 64, 2048), GemmProblem::gemm(320, 320, 4096),
        GemmProblem::gemm(1920, 1920, 1920),
        GemmProblem::gemm(8192, 8192, 8192)}) {
    const auto fixed =
        gemm::estimate_with_tile(p, gpu::largest_tile(), ctx.gpu());
    const auto autosel = gemm::select_kernel(p, ctx.gpu());
    tt.new_row()
        .cell(p.to_string())
        .cell(fixed.tflops(), 1)
        .cell(autosel.tflops(), 1)
        .cell(autosel.tile.name())
        .cell(str_format("%.2fx", autosel.tflops() / fixed.tflops()));
  }
  ctx.emit(tt);

  ctx.section("DES cross-check: event-driven scheduler vs closed form");
  TableWriter td({"problem", "analytical body", "DES makespan", "rel err",
                  "DES busy fraction"});
  for (const GemmProblem& p :
       {GemmProblem::gemm(4096, 4096, 4096), GemmProblem::gemm(1920, 1920, 1920),
        GemmProblem::bmm(128, 2048, 2048, 64)}) {
    const auto est = gemm::select_kernel(p, ctx.gpu());
    const auto des = gemm::simulate_kernel(p, est.tile, ctx.gpu());
    const double body = est.time - est.launch_overhead;
    td.new_row()
        .cell(p.to_string())
        .cell(human_time(body))
        .cell(human_time(des.makespan))
        .cell(str_format("%.2e", std::abs(des.makespan - body) / body))
        .cell(des.busy_fraction, 3);
  }
  ctx.emit(td);
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(ablation_simulator) {
  using namespace codesign;
  reg.add({"ablation.mechanisms", "bench_ablation_simulator",
           "alignment/wave/tile ablations plus the DES cross-check",
           {benchlib::kSuiteExt},
           [](benchlib::CaseContext& c) {
             const gpu::GpuSpec flat = no_alignment(c.gpu());
             const gemm::GemmSimulator sim_flat(flat);
             for (const char* name :
                  {"gpt3-2.7b", "gpt3-2.7b-c1", "gpt3-2.7b-c2"}) {
               const auto cfg = tfm::model_by_name(name);
               c.consume(tfm::analyze_layer(cfg, c.sim()).throughput_tflops);
               c.consume(tfm::analyze_layer(cfg, sim_flat).throughput_tflops);
             }
             for (std::int64_t n : {1792, 1920, 2048, 2304, 2432}) {
               c.consume(gemm::estimate_with_tile(GemmProblem::gemm(n, n, n),
                                                  gpu::largest_tile(), c.gpu())
                             .tflops());
             }
             for (const GemmProblem& p :
                  {GemmProblem::gemm(4096, 4096, 4096),
                   GemmProblem::gemm(1920, 1920, 1920),
                   GemmProblem::bmm(128, 2048, 2048, 64)}) {
               const auto est = gemm::select_kernel(p, c.gpu());
               c.consume(est.tflops());
               c.consume(gemm::simulate_kernel(p, est.tile, c.gpu()).makespan);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
