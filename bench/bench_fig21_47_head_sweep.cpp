// Figs 21–33 (attention key-query score) and Figs 35–47 (attention over
// value) — per-head-count hidden-size sweeps, one figure per
// a ∈ {8, 12, 16, 20, 24, 32, 40, 64, 80, 96, 128, 256, 512}, each split
// into power-of-two series like the appendix legends.
//
// Flags: --op=score|aov|both, --heads=<list> to restrict the grid.
#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig21_47_head_sweep",
    "Figs 21-33/35-47: attention GEMM throughput per head count",
    {"b", "s", "op", "heads"}};

void sweep(const bench::BenchContext& ctx, std::int64_t a, bool aov,
           std::int64_t b, std::int64_t s) {
  TableWriter t({"h", "h/a", "pow2(h/a)", "TFLOP/s", "bound", "tile"});
  // Step h by a·8 so h/a walks the 8..128 range like the appendix plots.
  for (std::int64_t head_dim = 8; head_dim <= 128; head_dim += 8) {
    tfm::TransformerConfig cfg;
    cfg.name = "sweep";
    cfg.hidden_size = head_dim * a;
    cfg.num_heads = a;
    cfg.num_layers = 1;
    cfg.seq_len = s;
    cfg.microbatch = b;
    cfg.vocab_size = 50304;
    const auto problem = aov ? tfm::attention_over_value_bmm(cfg)
                             : tfm::attention_score_bmm(cfg);
    const auto est = ctx.sim().estimate(problem);
    t.new_row()
        .cell(cfg.hidden_size)
        .cell(head_dim)
        .cell(static_cast<std::int64_t>(std::min<std::uint64_t>(
            largest_pow2_dividing(static_cast<std::uint64_t>(head_dim)), 64)))
        .cell(est.tflops(), 1)
        .cell(gemm::bound_name(est.bound))
        .cell(est.tile.name());
  }
  ctx.emit(t);
}

int body(bench::BenchContext& ctx) {
  ctx.banner("Figures 21-33 / 35-47",
             "attention GEMM throughput per head count");

  const std::string op = ctx.args().get_string("op", "both");
  const std::int64_t b = ctx.args().get_int("b", 4);
  const std::int64_t s = ctx.args().get_int("s", 2048);
  const auto heads = ctx.args().get_int_list(
      "heads", {8, 12, 16, 20, 24, 32, 40, 64, 80, 96, 128, 256, 512});

  const bool want_score = op == "score" || op == "both";
  const bool want_aov = op == "aov" || op == "both";

  // Figure numbering: score figures start at 21, AOV figures at 35, in the
  // head-count order of the appendix.
  int fig_score = 21;
  int fig_aov = 35;
  for (const std::int64_t a : heads) {
    if (want_score) {
      ctx.section(str_format("Fig %d — key-query score, a = %lld", fig_score,
                             static_cast<long long>(a)));
      sweep(ctx, a, /*aov=*/false, b, s);
    }
    if (want_aov) {
      ctx.section(str_format("Fig %d — attention over value, a = %lld",
                             fig_aov, static_cast<long long>(a)));
      sweep(ctx, a, /*aov=*/true, b, s);
    }
    ++fig_score;
    ++fig_aov;
  }
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig21_47_head_sweep) {
  using namespace codesign;
  reg.add({"fig21_47.head_sweep", "bench_fig21_47_head_sweep",
           "the full per-head-count appendix grid (both attention BMMs)",
           {benchlib::kSuiteFig},
           [](benchlib::CaseContext& c) {
             for (const std::int64_t a :
                  {8, 12, 16, 20, 24, 32, 40, 64, 80, 96, 128, 256, 512}) {
               for (const bool aov : {false, true}) {
                 for (std::int64_t hd = 8; hd <= 128; hd += 8) {
                   tfm::TransformerConfig cfg;
                   cfg.name = "sweep";
                   cfg.hidden_size = hd * a;
                   cfg.num_heads = a;
                   cfg.num_layers = 1;
                   cfg.seq_len = 2048;
                   cfg.microbatch = 4;
                   cfg.vocab_size = 50304;
                   const auto problem =
                       aov ? tfm::attention_over_value_bmm(cfg)
                           : tfm::attention_score_bmm(cfg);
                   c.consume(c.sim().estimate(problem).tflops());
                 }
               }
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
