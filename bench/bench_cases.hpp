// bench_cases.hpp — the roster of per-binary case registration hooks.
//
// Every bench_*.cpp defines one CODESIGN_BENCH_CASES(id) function; this
// header declares them all and register_all_cases() calls each exactly
// once. The roster is explicit (no static-initializer registration) so
// the case set is deterministic, link-order independent, and survives
// static-library dead-stripping. Adding a bench = one CODESIGN_BENCH_CASES
// block there plus one line in each list here.
#pragma once

#include "benchlib/registry.hpp"

namespace codesign::bench {

/// Populate `reg` with every case of every bench binary. Throws
/// codesign::Error on duplicate case names (i.e. a roster bug).
void register_all_cases(benchlib::BenchRegistry& reg);

}  // namespace codesign::bench
