// Extension — grouped-query attention shape analysis: how the KV head
// count changes the QKV GEMM shape, parameters, and decode KV traffic
// (the Llama-2-70B design point), and how the §VI-B alignment rules apply
// to the shrunken QKV output width.
#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/inference.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_ext_gqa",
    "Extension: GQA KV-head sweep on the Llama-2-70B shape",
    {}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Extension: grouped-query attention",
             "KV head sweep on the Llama-2-70B shape");

  const auto base = tfm::model_by_name("llama2-70b");  // a = 64, kv = 8

  TableWriter t({"kv heads", "QKV n = (h+2·kv·d)/t", "pow2(n)",
                 "QKV TFLOP/s", "params", "KV cache/step", "decode tok/s"});
  for (const std::int64_t kv : {64, 32, 16, 8, 4, 2, 1}) {
    tfm::TransformerConfig cfg = base;
    cfg.num_kv_heads = kv;
    cfg.validate();
    const auto qkv = tfm::qkv_gemm(cfg);
    const auto est = ctx.sim().estimate(qkv);
    const auto inf = tfm::estimate_inference(cfg, ctx.sim());
    t.new_row()
        .cell(kv)
        .cell(qkv.n)
        .cell(static_cast<std::int64_t>(
            largest_pow2_dividing(static_cast<std::uint64_t>(qkv.n))))
        .cell(est.tflops(), 1)
        .cell(human_count(static_cast<double>(tfm::exact_param_count(cfg))))
        .cell(human_bytes(inf.kv_bytes_avg))
        .cell(inf.tokens_per_second, 0);
  }
  ctx.emit(t);
  std::cout << "(KV heads shrink parameters and decode KV traffic without "
               "touching the score/AOV GEMM shapes; with d = 128 every kv "
               "count keeps the QKV width 64-aligned, so Llama-2-70B's "
               "kv = 8 is a free win under the paper's rules)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(ext_gqa) {
  using namespace codesign;
  reg.add({"ext.gqa_kv_sweep", "bench_ext_gqa",
           "QKV shape + inference estimates across KV head counts",
           {benchlib::kSuiteExt},
           [](benchlib::CaseContext& c) {
             const auto base = tfm::model_by_name("llama2-70b");
             for (const std::int64_t kv : {64, 32, 16, 8, 4, 2, 1}) {
               tfm::TransformerConfig cfg = base;
               cfg.num_kv_heads = kv;
               cfg.validate();
               c.consume(c.sim().estimate(tfm::qkv_gemm(cfg)).tflops());
               const auto inf = tfm::estimate_inference(cfg, c.sim());
               c.consume(inf.kv_bytes_avg);
               c.consume(inf.tokens_per_second);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
