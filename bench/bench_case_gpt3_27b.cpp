// Case study (§VI-B / Fig 1) — re-shaping GPT-3 2.7B: the full advisor
// workflow on the paper's headline example, end to end: diagnose the
// default shape, search alternatives, report the predicted training-step
// and inference impact of the C2 re-shape, and show the clones that
// inherited the inefficiency.
#include "advisor/report.hpp"
#include "advisor/search.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "transformer/inference.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_case_gpt3_27b",
    "Case study: the GPT-3 2.7B re-shape (a: 32 -> 40)",
    {}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Case study: GPT-3 2.7B re-shape",
             "the ~1.18x fix the paper derives (a: 32 -> 40)");

  const auto& base = tfm::model_by_name("gpt3-2.7b");
  const auto& c2 = tfm::model_by_name("gpt3-2.7b-c2");

  ctx.section("advisor report for the default shape");
  advisor::ReportOptions opt;
  opt.suggestions_per_search = 6;
  std::cout << advisor::advise(base, ctx.sim(), opt);

  ctx.section("end-to-end impact of the C2 re-shape");
  const auto mb = tfm::analyze_model(base, ctx.sim());
  const auto mc = tfm::analyze_model(c2, ctx.sim());
  TableWriter t({"metric", "default (a=32)", "C2 (a=40)", "ratio"});
  t.new_row()
      .cell("fwd step time")
      .cell(human_time(mb.total_time))
      .cell(human_time(mc.total_time))
      .cell(str_format("%.3fx", mb.total_time / mc.total_time));
  t.new_row()
      .cell("fwd tokens/s")
      .cell(mb.tokens_per_second, 0)
      .cell(mc.tokens_per_second, 0)
      .cell(str_format("%.3fx", mc.tokens_per_second / mb.tokens_per_second));
  const auto ib = tfm::estimate_inference(base, ctx.sim());
  const auto ic = tfm::estimate_inference(c2, ctx.sim());
  t.new_row()
      .cell("inference prefill")
      .cell(human_time(ib.prefill_time))
      .cell(human_time(ic.prefill_time))
      .cell(str_format("%.3fx", ib.prefill_time / ic.prefill_time));
  ctx.emit(t);

  ctx.section("architectures that copied the inefficient shape (§VI-B)");
  TableWriter tc({"model", "h/a", "layer TFLOP/s", "if reshaped to h/a=64"});
  for (const char* name :
       {"gpt3-2.7b", "gpt-neo-2.7b", "opt-2.7b", "redpajama-incite-3b",
        "pythia-2.8b"}) {
    const auto cfg = tfm::model_by_name(name);
    const auto r = tfm::analyze_layer(cfg, ctx.sim());
    const auto fixed = tfm::analyze_layer(cfg.with_heads(40), ctx.sim());
    tc.new_row()
        .cell(name)
        .cell(cfg.head_dim())
        .cell(r.throughput_tflops, 1)
        .cell(str_format("%.1f (%.3fx)", fixed.throughput_tflops,
                         r.total_time / fixed.total_time));
  }
  ctx.emit(tc);
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(case_gpt3_27b) {
  using namespace codesign;
  reg.add({"case.gpt3_27b_reshape", "bench_case_gpt3_27b",
           "full-model + inference impact of the C2 re-shape and its clones",
           {benchlib::kSuiteExt},
           [](benchlib::CaseContext& c) {
             const auto& base = tfm::model_by_name("gpt3-2.7b");
             const auto& c2 = tfm::model_by_name("gpt3-2.7b-c2");
             c.consume(tfm::analyze_model(base, c.sim()).total_time);
             c.consume(tfm::analyze_model(c2, c.sim()).total_time);
             c.consume(tfm::estimate_inference(base, c.sim()).prefill_time);
             c.consume(tfm::estimate_inference(c2, c.sim()).prefill_time);
             for (const char* name :
                  {"gpt3-2.7b", "gpt-neo-2.7b", "opt-2.7b",
                   "redpajama-incite-3b", "pythia-2.8b"}) {
               const auto cfg = tfm::model_by_name(name);
               c.consume(tfm::analyze_layer(cfg, c.sim()).total_time);
               c.consume(
                   tfm::analyze_layer(cfg.with_heads(40), c.sim()).total_time);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
