// Extension — 3D-parallel plan ranking on the paper's Table-III systems:
// every (tensor, pipeline, data) factorization of a GPU budget, scored
// with compute + TP all-reduces + pipeline p2p + DP gradient all-reduce
// and checked against per-GPU memory. Quantifies the paper's "whether
// pipeline parallelism is optimal depends on internode speed" note.
#include "bench_common.hpp"
#include "comm/parallelism.hpp"
#include "common/strings.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_ext_3d_parallel",
    "Extension: (t, p, d) factorizations ranked with communication",
    {"model", "gpus", "microbatches"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Extension: 3D-parallel planning",
             "(t, p, d) factorizations ranked with communication charged");

  const std::string model_name = ctx.args().get_string("model", "gpt3-2.7b");
  const std::int64_t gpus = ctx.args().get_int("gpus", 32);
  const std::int64_t m = ctx.args().get_int("microbatches", 32);
  tfm::TransformerConfig model = tfm::model_by_name(model_name);
  if (model.vocab_size % 64 != 0) {
    model = model.with_vocab(((model.vocab_size + 63) / 64) * 64);
  }

  for (const char* cluster_id : {"aws-p4d", "ornl-summit"}) {
    const comm::ClusterSpec& cluster = comm::cluster_by_name(cluster_id);
    ctx.section(str_format("%s — %lld GPUs, m = %lld",
                           cluster.description.c_str(),
                           static_cast<long long>(gpus),
                           static_cast<long long>(m)));
    TableWriter t({"t", "p", "d", "ok", "step", "tokens/s", "cluster MFU",
                   "comm share", "mem/GPU", "note"});
    int listed = 0;
    for (const auto& r : comm::rank_plans(model, cluster, gpus, m)) {
      if (listed++ >= 10) break;
      const double comm =
          r.tp_comm_time + r.pp_comm_time + r.dp_comm_time;
      t.new_row()
          .cell(r.plan.tensor)
          .cell(r.plan.pipeline)
          .cell(r.plan.data)
          .cell(r.feasible ? (r.fits_memory ? "yes" : "OOM") : "NO")
          .cell(r.feasible ? human_time(r.step_time) : "-")
          .cell(r.feasible ? str_format("%.0f", r.tokens_per_second) : "-")
          .cell(r.feasible ? str_format("%.1f%%", 100.0 * r.cluster_mfu)
                           : "-")
          .cell(r.feasible
                    ? str_format("%.1f%%", 100.0 * comm / r.step_time)
                    : "-")
          .cell(r.feasible ? human_bytes(r.memory_per_gpu) : "-")
          .cell(r.infeasible_reason);
    }
    ctx.emit(t);
  }
  std::cout << "(on Summit's slower inter-node links the ranking shifts "
               "away from deep pipelines toward more data parallelism — "
               "the paper's internode-speed caveat, quantified)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(ext_3d_parallel) {
  using namespace codesign;
  reg.add({"ext.plan_ranking", "bench_ext_3d_parallel",
           "3D-parallel plan ranking on both Table-III clusters",
           {benchlib::kSuiteExt},
           [](benchlib::CaseContext& c) {
             tfm::TransformerConfig model = tfm::model_by_name("gpt3-2.7b");
             if (model.vocab_size % 64 != 0) {
               model = model.with_vocab(((model.vocab_size + 63) / 64) * 64);
             }
             for (const char* cluster_id : {"aws-p4d", "ornl-summit"}) {
               const comm::ClusterSpec& cluster =
                   comm::cluster_by_name(cluster_id);
               for (const auto& r :
                    comm::rank_plans(model, cluster, 32, 32)) {
                 c.consume(static_cast<std::int64_t>(r.feasible));
                 if (r.feasible) c.consume(r.step_time);
               }
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
