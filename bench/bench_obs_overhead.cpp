// bench_obs_overhead — cost of the observability layer on the hot path.
//
// Times GemmSimulator::estimate() in three instrumentation states:
//   off       — metrics disabled, no recorder (the default); the guard is
//               one relaxed atomic load, so this must match the seed's cost
//   metrics   — MetricsRegistry enabled (counters on every estimate)
//   recorder  — metrics + an installed EventRecorder (selection trail
//               events on every kernel selection)
// The "off" row is the zero-overhead contract of docs/OBSERVABILITY.md.
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace codesign {
namespace {

using Clock = std::chrono::steady_clock;

double ns_per_estimate(const gemm::GemmSimulator& sim,
                       const std::vector<gemm::GemmProblem>& problems,
                       int iters) {
  // One untimed pass to warm whatever needs warming.
  double sink = 0.0;
  for (const auto& p : problems) sink += sim.estimate(p).time;
  const auto start = Clock::now();
  for (int it = 0; it < iters; ++it) {
    for (const auto& p : problems) sink += sim.estimate(p).time;
  }
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  // Keep the estimates observable so the loop cannot be elided.
  if (sink < 0.0) std::cerr << sink;
  return ns / (static_cast<double>(iters) * problems.size());
}

int body(bench::BenchContext& ctx) {
  ctx.banner("obs overhead",
             "estimate() latency with instrumentation off / metrics / "
             "metrics+recorder");

  std::vector<gemm::GemmProblem> problems;
  for (const std::int64_t n : {2560, 5120, 7680, 12288, 50304}) {
    gemm::GemmProblem p;
    p.m = 8192;
    p.n = n;
    p.k = 2560;
    problems.push_back(p);
  }
  const int iters = static_cast<int>(ctx.args().get_int("iters", 200));

  obs::MetricsRegistry::set_enabled(false);
  const double off_ns = ns_per_estimate(ctx.sim(), problems, iters);

  obs::MetricsRegistry::set_enabled(true);
  const double metrics_ns = ns_per_estimate(ctx.sim(), problems, iters);

  double recorder_ns = 0.0;
  {
    obs::ScopedRecorder scoped;
    recorder_ns = ns_per_estimate(ctx.sim(), problems, iters);
  }
  obs::MetricsRegistry::set_enabled(false);
  obs::MetricsRegistry::global().reset_values();

  TableWriter t({"state", "ns/estimate", "overhead"});
  const auto row = [&](const char* state, double ns) {
    t.new_row()
        .cell(state)
        .cell(ns, 0)
        .cell(str_format("%.2fx", ns / off_ns));
  };
  row("off", off_ns);
  row("metrics", metrics_ns);
  row("metrics+recorder", recorder_ns);
  ctx.emit(t);
  return 0;
}

}  // namespace
}  // namespace codesign

int main(int argc, char** argv) {
  return codesign::bench::run_bench(argc, argv, codesign::body);
}
