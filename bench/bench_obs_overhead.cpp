// bench_obs_overhead — cost of the observability layer on the hot path.
//
// Times GemmSimulator::estimate() in three instrumentation states:
//   off       — metrics disabled, no recorder (the default); the guard is
//               one relaxed atomic load, so this must match the seed's cost
//   metrics   — MetricsRegistry enabled (counters on every estimate)
//   recorder  — metrics + an installed EventRecorder (selection trail
//               events on every kernel selection)
// plus the attribution state:
//   breakdown — gemm::bound_breakdown() computed after every estimate (the
//               `codesign analyze` hot path); contract: <= 1.1x "off".
//               When attribution is not requested the breakdown is simply
//               never called, so the disabled cost IS the "off" row.
// The "off" row is the zero-overhead contract of docs/OBSERVABILITY.md.
// Writes the measurements as a schema-versioned BenchReport
// (--out=BENCH_obs.json) so the overhead trajectory is machine-readable.
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "benchlib/bench_report.hpp"
#include "benchlib/runner.hpp"
#include "common/strings.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_obs_overhead",
    "obs overhead: estimate() latency off / metrics / metrics+recorder",
    {"iters", "out"}};

using Clock = std::chrono::steady_clock;

std::vector<gemm::GemmProblem> hot_problems() {
  std::vector<gemm::GemmProblem> problems;
  for (const std::int64_t n : {2560, 5120, 7680, 12288, 50304}) {
    gemm::GemmProblem p;
    p.m = 8192;
    p.n = n;
    p.k = 2560;
    problems.push_back(p);
  }
  return problems;
}

double ns_per_estimate(const gemm::GemmSimulator& sim,
                       const std::vector<gemm::GemmProblem>& problems,
                       int iters) {
  // One untimed pass to warm whatever needs warming.
  double sink = 0.0;
  for (const auto& p : problems) sink += sim.estimate(p).time;
  const auto start = Clock::now();
  for (int it = 0; it < iters; ++it) {
    for (const auto& p : problems) sink += sim.estimate(p).time;
  }
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  // Keep the estimates observable so the loop cannot be elided.
  if (sink < 0.0) std::cerr << sink;
  return ns / (static_cast<double>(iters) * problems.size());
}

/// The attribution hot loop: estimate, then decompose. The breakdown is a
/// handful of divisions over fields the estimate already carries, so this
/// must stay within 1.1x of the bare loop.
double ns_per_estimate_with_breakdown(
    const gemm::GemmSimulator& sim,
    const std::vector<gemm::GemmProblem>& problems, int iters) {
  double sink = 0.0;
  for (const auto& p : problems) sink += sim.estimate(p).time;
  const auto start = Clock::now();
  for (int it = 0; it < iters; ++it) {
    for (const auto& p : problems) {
      const gemm::KernelEstimate e = sim.estimate(p);
      const gemm::BoundBreakdown b = gemm::bound_breakdown(e);
      sink += e.time + b.compute + b.tile_waste;
    }
  }
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  if (sink < 0.0) std::cerr << sink;
  return ns / (static_cast<double>(iters) * problems.size());
}

int body(bench::BenchContext& ctx) {
  ctx.banner("obs overhead",
             "estimate() latency with instrumentation off / metrics / "
             "metrics+recorder");

  const std::vector<gemm::GemmProblem> problems = hot_problems();
  const int iters = static_cast<int>(ctx.args().get_int("iters", 200));
  const std::string out_path = ctx.args().get_string("out", "BENCH_obs.json");

  obs::MetricsRegistry::set_enabled(false);
  const double off_ns = ns_per_estimate(ctx.sim(), problems, iters);
  const double breakdown_ns =
      ns_per_estimate_with_breakdown(ctx.sim(), problems, iters);

  obs::MetricsRegistry::set_enabled(true);
  const double metrics_ns = ns_per_estimate(ctx.sim(), problems, iters);

  double recorder_ns = 0.0;
  {
    obs::ScopedRecorder scoped;
    recorder_ns = ns_per_estimate(ctx.sim(), problems, iters);
  }
  obs::MetricsRegistry::set_enabled(false);
  obs::MetricsRegistry::global().reset_values();

  TableWriter t({"state", "ns/estimate", "overhead"});
  const auto row = [&](const char* state, double ns) {
    t.new_row()
        .cell(state)
        .cell(ns, 0)
        .cell(str_format("%.2fx", ns / off_ns));
  };
  row("off", off_ns);
  row("off+breakdown", breakdown_ns);
  row("metrics", metrics_ns);
  row("metrics+recorder", recorder_ns);
  ctx.emit(t);

  // Machine-readable trajectory record (schema: codesign.bench_report).
  // The estimate results themselves are the data checksum: identical in
  // every instrumentation state or the states are not comparable.
  std::uint64_t checksum = benchlib::kChecksumSeed;
  for (const auto& p : problems) {
    checksum = benchlib::checksum_fold(checksum, ctx.sim().estimate(p).time);
  }

  benchlib::BenchReport report;
  report.run.suite = "trajectory";
  report.run.filter = "obs_overhead";
  report.run.gpu = ctx.gpu().id;
  report.run.policy = benchlib::tile_policy_name(ctx.sim().policy());
  report.run.warmup = 1;
  report.run.repeats = iters;
  report.run.threads = 1;
  report.host = benchlib::HostFingerprint::current();
  report.context["bench"] = "obs_overhead";
  report.context["overhead_metrics_vs_off"] =
      str_format("%.3f", metrics_ns / off_ns);
  report.context["overhead_recorder_vs_off"] =
      str_format("%.3f", recorder_ns / off_ns);
  report.context["overhead_breakdown_vs_off"] =
      str_format("%.3f", breakdown_ns / off_ns);
  const auto add_case = [&](const std::string& name, double ns) {
    benchlib::CaseStats s;
    s.name = name;
    s.bench = "bench_obs_overhead";
    s.suites = {benchlib::kSuitePerf};
    s.samples_ms = {ns * 1e-6};
    s.checksum = checksum;
    benchlib::summarize(s);
    report.cases.push_back(std::move(s));
  };
  add_case("obs.estimate_off", off_ns);
  add_case("obs.estimate_breakdown", breakdown_ns);
  add_case("obs.estimate_metrics", metrics_ns);
  add_case("obs.estimate_metrics_recorder", recorder_ns);
  report.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(obs_overhead) {
  using namespace codesign;
  reg.add({"obs.estimate_hot_loop", "bench_obs_overhead",
           "GemmSimulator::estimate() hot loop on the logit-shaped set",
           {benchlib::kSuitePerf, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             const auto problems = hot_problems();
             double sink = 0.0;
             for (int it = 0; it < 40; ++it) {
               for (const auto& p : problems) sink += c.sim().estimate(p).time;
             }
             c.consume(sink);
           },
           /*threshold_frac=*/0.30});
  reg.add({"obs.estimate_breakdown_loop", "bench_obs_overhead",
           "estimate() + bound_breakdown() attribution hot loop",
           {benchlib::kSuitePerf, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             const auto problems = hot_problems();
             double sink = 0.0;
             for (int it = 0; it < 40; ++it) {
               for (const auto& p : problems) {
                 const gemm::KernelEstimate e = c.sim().estimate(p);
                 sink += gemm::bound_breakdown(e).compute + e.time;
               }
             }
             c.consume(sink);
           },
           /*threshold_frac=*/0.30});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
