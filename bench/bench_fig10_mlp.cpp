// Fig 10 — MLP GEMM throughput as a function of hidden dimension (a = 128
// in the paper's sweep): (a) the h → 4h expansion, (b) the 4h → h
// reduction. Shows the saturation point the paper recommends pushing h
// toward, plus alignment cliffs at non-64-multiple h.
#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig10_mlp",
    "Fig 10: MLP h->4h and 4h->h GEMM throughput vs h",
    {"b", "s", "lo", "hi", "step"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 10", "MLP h->4h and 4h->h GEMM throughput vs h");

  const std::int64_t b = ctx.args().get_int("b", 4);
  const std::int64_t s = ctx.args().get_int("s", 2048);
  const std::int64_t lo = ctx.args().get_int("lo", 1024);
  const std::int64_t hi = ctx.args().get_int("hi", 12288);
  const std::int64_t step = ctx.args().get_int("step", 512);

  TableWriter t({"h", "pow2(h)", "h->4h TFLOP/s", "4h->h TFLOP/s",
                 "h->4h bound", "waves up"});
  for (std::int64_t h = lo; h <= hi; h += step) {
    tfm::TransformerConfig cfg;
    cfg.name = "sweep";
    cfg.hidden_size = h;
    cfg.num_heads = 1;  // MLP GEMMs do not depend on a
    cfg.num_layers = 1;
    cfg.seq_len = s;
    cfg.microbatch = b;
    cfg.vocab_size = 50304;
    const auto up = ctx.sim().estimate(tfm::mlp_up_gemm(cfg));
    const auto down = ctx.sim().estimate(tfm::mlp_down_gemm(cfg));
    t.new_row()
        .cell(h)
        .cell(static_cast<std::int64_t>(
            largest_pow2_dividing(static_cast<std::uint64_t>(h))))
        .cell(up.tflops(), 1)
        .cell(down.tflops(), 1)
        .cell(gemm::bound_name(up.bound))
        .cell(up.wave_q.waves);
  }
  ctx.emit(t);

  ctx.section("alignment cliff: off-granule hidden sizes");
  TableWriter t2({"h", "pow2(h)", "h->4h TFLOP/s"});
  for (std::int64_t h : {4096, 4100, 4104, 4112, 4128, 4160}) {
    tfm::TransformerConfig cfg;
    cfg.name = "cliff";
    cfg.hidden_size = h;
    cfg.num_heads = 1;
    cfg.num_layers = 1;
    cfg.seq_len = s;
    cfg.microbatch = b;
    cfg.vocab_size = 50304;
    const auto up = ctx.sim().estimate(tfm::mlp_up_gemm(cfg));
    t2.new_row()
        .cell(h)
        .cell(static_cast<std::int64_t>(
            largest_pow2_dividing(static_cast<std::uint64_t>(h))))
        .cell(up.tflops(), 1);
  }
  ctx.emit(t2);
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig10_mlp) {
  using namespace codesign;
  reg.add({"fig10.mlp_sweep", "bench_fig10_mlp",
           "MLP up/down GEMM estimates over the hidden-size sweep",
           {benchlib::kSuiteFig, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             for (std::int64_t h = 1024; h <= 12288; h += 512) {
               tfm::TransformerConfig cfg;
               cfg.name = "sweep";
               cfg.hidden_size = h;
               cfg.num_heads = 1;
               cfg.num_layers = 1;
               cfg.seq_len = 2048;
               cfg.microbatch = 4;
               cfg.vocab_size = 50304;
               c.consume(c.sim().estimate(tfm::mlp_up_gemm(cfg)).tflops());
               c.consume(c.sim().estimate(tfm::mlp_down_gemm(cfg)).tflops());
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
