// Extension — pipeline-parallel stage-count sweep: quantifies the paper's
// closing §VI-B rule ("the number of layers should be divisible by the
// number of pipeline parallel stages") with the 1F1B bubble + imbalance
// model. The paper leaves full pipeline shape analysis to future work;
// this bench covers exactly the rule it does state.
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/pipeline.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_ext_pipeline",
    "Extension: pipeline bubble + imbalance across stage counts",
    {"model", "microbatches"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Extension: pipeline stages",
             "bubble + imbalance across stage counts (L % p rule)");

  const std::string model = ctx.args().get_string("model", "gpt3-2.7b");
  const std::int64_t m = ctx.args().get_int("microbatches", 32);
  const auto cfg = tfm::model_by_name(model);

  ctx.section(str_format("stage sweep for %s (L = %lld, m = %lld)",
                         cfg.name.c_str(),
                         static_cast<long long>(cfg.num_layers),
                         static_cast<long long>(m)));
  TableWriter t({"p", "L % p", "layers/stage", "bubble", "imbalance",
                 "efficiency", "step time", "tokens/s"});
  for (std::int64_t p = 1; p <= 16; ++p) {
    tfm::PipelineSchedule s;
    s.stages = p;
    s.microbatches = m;
    const auto r = tfm::analyze_pipeline(cfg, ctx.sim(), s);
    t.new_row()
        .cell(p)
        .cell(cfg.num_layers % p)
        .cell(str_format("%lld..%lld",
                         static_cast<long long>(r.layers_per_stage_min),
                         static_cast<long long>(r.layers_per_stage_max)))
        .cell(str_format("%.1f%%", 100.0 * r.bubble_fraction))
        .cell(r.imbalance_factor, 3)
        .cell(str_format("%.1f%%", 100.0 * r.efficiency))
        .cell(human_time(r.step_time))
        .cell(r.tokens_per_second, 0);
  }
  ctx.emit(t);

  ctx.section("balanced stage counts (the rule's good choices)");
  std::string good;
  for (const std::int64_t p : tfm::balanced_stage_counts(cfg, 32)) {
    if (!good.empty()) good += ", ";
    good += std::to_string(p);
  }
  std::cout << "L = " << cfg.num_layers << " divides evenly into p = {"
            << good << "}\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(ext_pipeline) {
  using namespace codesign;
  reg.add({"ext.pipeline_stages", "bench_ext_pipeline",
           "1F1B analysis over p = 1..16 for gpt3-2.7b",
           {benchlib::kSuiteExt, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             const auto cfg = tfm::model_by_name("gpt3-2.7b");
             for (std::int64_t p = 1; p <= 16; ++p) {
               tfm::PipelineSchedule s;
               s.stages = p;
               s.microbatches = 32;
               const auto r = tfm::analyze_pipeline(cfg, c.sim(), s);
               c.consume(r.step_time);
               c.consume(r.bubble_fraction);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
