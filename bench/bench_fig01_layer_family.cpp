// Fig 1 — transformer single-layer throughput of the 2.7B-parameter shape
// family: the GPT-3 default (h=2560, a=32, h/a=80), the paper's C1
// (a=64, h/a=40) and C2 (a=40, h/a=64), further same-h head counts, and
// the h=4096 (6.7B) comparison point the paper discusses.
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig01_layer_family",
    "Fig 1: single-layer throughput of the 2.7B-parameter shape family",
    {"b", "s"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 1",
             "single-layer throughput of 2.7B-parameter shape variants");

  const std::int64_t b = ctx.args().get_int("b", 4);
  const std::int64_t s = ctx.args().get_int("s", 2048);

  std::vector<tfm::TransformerConfig> family = tfm::gpt3_27b_family();
  // The paper's alternative fix: raise h to 4096 (doubles parameters).
  family.push_back(tfm::model_by_name("gpt3-6.7b"));

  const tfm::TransformerConfig base =
      tfm::model_by_name("gpt3-2.7b").with_microbatch(b).with_seq_len(s);
  const double base_time = tfm::analyze_layer(base, ctx.sim()).total_time;

  TableWriter t({"model", "h", "a", "h/a", "params", "layer time",
                 "TFLOP/s", "vs default"});
  for (tfm::TransformerConfig cfg : family) {
    cfg = cfg.with_microbatch(b).with_seq_len(s);
    const auto r = tfm::analyze_layer(cfg, ctx.sim());
    t.new_row()
        .cell(cfg.name)
        .cell(cfg.hidden_size)
        .cell(cfg.num_heads)
        .cell(cfg.head_dim())
        .cell(human_count(static_cast<double>(tfm::exact_param_count(cfg))))
        .cell(human_time(r.total_time))
        .cell(r.throughput_tflops, 1)
        .cell(str_format("%.3fx", base_time / r.total_time));
  }
  ctx.emit(t);

  ctx.section("headline");
  const auto c2 = tfm::analyze_layer(
      tfm::model_by_name("gpt3-2.7b-c2").with_microbatch(b).with_seq_len(s),
      ctx.sim());
  std::cout << "C2 (a=40, h/a=64) vs GPT-3 2.7B default (a=32, h/a=80): "
            << str_format("%.3fx", base_time / c2.total_time)
            << " (paper: ~1.18x)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig01_layer_family) {
  using namespace codesign;
  reg.add({"fig01.layer_family", "bench_fig01_layer_family",
           "analyze_layer over the 2.7B shape family + the 6.7B point",
           {benchlib::kSuiteFig, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             std::vector<tfm::TransformerConfig> family =
                 tfm::gpt3_27b_family();
             family.push_back(tfm::model_by_name("gpt3-6.7b"));
             for (tfm::TransformerConfig cfg : family) {
               cfg = cfg.with_microbatch(4).with_seq_len(2048);
               const auto r = tfm::analyze_layer(cfg, c.sim());
               c.consume(r.total_time);
               c.consume(r.throughput_tflops);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
