// Fig 5 — GEMM throughput (TFLOP/s) vs matrix size:
//   (a) broad square sweep on V100 and A100: memory-bound rise then
//       compute-bound saturation;
//   (b) fine-grained sweep with the FIXED 256x128 tile: the wave-
//       quantization saw-tooth;
//   (c) the same fine sweep with tile auto-selection: quantization effects
//       lessened (the paper's observation about PyTorch/cuBLAS heuristics).
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "gemmsim/kernel_model.hpp"

namespace codesign {
namespace {

using gemm::GemmProblem;

const bench::BenchSpec kSpec{
    "bench_fig05_gemm_sweep",
    "Fig 5: GEMM throughput vs matrix size (broad + fine sweeps)",
    {"lo", "hi", "step"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 5", "GEMM throughput vs matrix size");

  // (a) broad sweep across devices.
  ctx.section("Fig 5a — square GEMM sweep (auto tile)");
  TableWriter ta({"n (m=n=k)", "V100 TFLOP/s", "A100 TFLOP/s",
                  "A100 bound", "A100 waves"});
  const gemm::GemmSimulator v100 = gemm::GemmSimulator::for_gpu("v100");
  const gemm::GemmSimulator a100 = gemm::GemmSimulator::for_gpu("a100");
  for (std::int64_t n = 256; n <= 16384; n *= 2) {
    const GemmProblem p = GemmProblem::gemm(n, n, n);
    const auto ev = v100.estimate(p);
    const auto ea = a100.estimate(p);
    ta.new_row()
        .cell(n)
        .cell(ev.tflops(), 1)
        .cell(ea.tflops(), 1)
        .cell(gemm::bound_name(ea.bound))
        .cell(ea.wave_q.waves);
  }
  ctx.emit(ta);

  // (b)/(c) fine sweep on the target GPU.
  const std::int64_t lo = ctx.args().get_int("lo", 1280);
  const std::int64_t hi = ctx.args().get_int("hi", 4096);
  const std::int64_t step = ctx.args().get_int("step", 128);

  ctx.section(str_format(
      "Fig 5b/5c — fine sweep n in [%lld, %lld] step %lld on %s",
      static_cast<long long>(lo), static_cast<long long>(hi),
      static_cast<long long>(step), ctx.gpu().id.c_str()));
  TableWriter tb({"n", "fixed-256x128 TFLOP/s", "fixed waves",
                  "auto TFLOP/s", "auto tile", "auto waves"});
  for (std::int64_t n = lo; n <= hi; n += step) {
    const GemmProblem p = GemmProblem::gemm(n, n, n);
    const auto fixed = gemm::estimate_with_tile(p, gpu::largest_tile(),
                                                ctx.gpu());
    const auto chosen = gemm::select_kernel(p, ctx.gpu());
    tb.new_row()
        .cell(n)
        .cell(fixed.tflops(), 1)
        .cell(fixed.wave_q.waves)
        .cell(chosen.tflops(), 1)
        .cell(chosen.tile.name())
        .cell(chosen.wave_q.waves);
  }
  ctx.emit(tb);
  std::cout << "(saw-tooth: fixed-tile throughput drops each time the wave "
               "count increments; the auto column recovers part of each dip)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig05_gemm_sweep) {
  using namespace codesign;
  reg.add({"fig05.square_sweep", "bench_fig05_gemm_sweep",
           "broad square GEMM sweep on V100 and A100",
           {benchlib::kSuiteFig, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             const auto v100 = gemm::GemmSimulator::for_gpu("v100");
             for (std::int64_t n = 256; n <= 16384; n *= 2) {
               const auto p = GemmProblem::gemm(n, n, n);
               c.consume(v100.estimate(p).tflops());
               c.consume(c.sim().estimate(p).tflops());
             }
           }});
  reg.add({"fig05.fine_sweep", "bench_fig05_gemm_sweep",
           "fine-grained fixed-tile vs auto-tile sweep (wave quantization)",
           {benchlib::kSuiteFig},
           [](benchlib::CaseContext& c) {
             for (std::int64_t n = 1280; n <= 4096; n += 128) {
               const auto p = GemmProblem::gemm(n, n, n);
               c.consume(gemm::estimate_with_tile(p, gpu::largest_tile(),
                                                  c.gpu())
                             .tflops());
               c.consume(gemm::select_kernel(p, c.gpu()).tflops());
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
