// Case study (§VIII) — BERT as the procurement benchmark: the paper notes
// MLCommons BERT results track kernel-level throughput (~3:1 H100:A100)
// and that its conclusions extend to encoder-only models. This bench runs
// the encoder serving model across every GPU, shows the cross-device
// ratios, and reproduces BERT's own shape flaw (v = 30522).
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/inference.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_case_bert",
    "Case study: BERT/MLPerf encoder serving across devices",
    {"batch"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Case study: BERT / MLPerf",
             "encoder serving throughput across devices");

  const std::int64_t batch = ctx.args().get_int("batch", 32);
  const auto& bert = tfm::model_by_name("bert-large");

  ctx.section(str_format("bert-large serving (s = 512, batch = %lld)",
                         static_cast<long long>(batch)));
  TableWriter t({"gpu", "batch latency", "sequences/s", "vs a100"});
  double a100_sps = 0.0;
  std::vector<std::pair<std::string, double>> results;
  for (const std::string& id :
       {std::string("v100-16gb"), std::string("a100-40gb"),
        std::string("h100-sxm"), std::string("mi250x-gcd")}) {
    const auto sim = gemm::GemmSimulator::for_gpu(id);
    const auto e = tfm::estimate_encoder_serving(bert, sim, batch);
    if (id == "a100-40gb") a100_sps = e.sequences_per_second;
    results.emplace_back(id, e.sequences_per_second);
    t.new_row()
        .cell(id)
        .cell(human_time(e.batch_latency))
        .cell(e.sequences_per_second, 0)
        .cell("");
  }
  // Fill the ratio column now that the A100 baseline is known.
  TableWriter t2({"gpu", "sequences/s", "vs a100-40gb"});
  for (const auto& [id, sps] : results) {
    t2.new_row().cell(id).cell(sps, 0).cell(
        str_format("%.2fx", sps / a100_sps));
  }
  ctx.emit(t2);
  std::cout << "(paper §VIII: MLCommons BERT shows ~3:1 H100:A100 — the "
               "encoder model's ratio lands in the same band because the "
               "same kernels dominate)\n";

  ctx.section("BERT's own vocabulary flaw (30522 -> 30528)");
  const auto sim = ctx.sim();
  const double odd = sim.throughput_tflops(tfm::logit_gemm(
      bert.with_microbatch(batch)));
  const double pad = sim.throughput_tflops(tfm::logit_gemm(
      bert.with_microbatch(batch).with_vocab(30528)));
  std::cout << str_format(
      "MLM head GEMM: v=30522: %.1f TFLOP/s; v=30528: %.1f TFLOP/s "
      "(%.2fx — the padding MLPerf submissions apply)\n",
      odd, pad, pad / odd);
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(case_bert) {
  using namespace codesign;
  reg.add({"case.bert_serving", "bench_case_bert",
           "encoder serving estimates on four devices + the vocab flaw",
           {benchlib::kSuiteExt, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             const auto& bert = tfm::model_by_name("bert-large");
             for (const char* id :
                  {"v100-16gb", "a100-40gb", "h100-sxm", "mi250x-gcd"}) {
               const auto sim = gemm::GemmSimulator::for_gpu(id);
               c.consume(tfm::estimate_encoder_serving(bert, sim, 32)
                             .sequences_per_second);
             }
             c.consume(c.sim().throughput_tflops(
                 tfm::logit_gemm(bert.with_microbatch(32))));
             c.consume(c.sim().throughput_tflops(
                 tfm::logit_gemm(bert.with_microbatch(32).with_vocab(30528))));
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
