// Case study (§VII-B) — SwiGLU and the 8h/3 MLP: the suggested coefficient
// breaks the alignments a well-chosen h set up; brute-force the d_ff range
// around (8/3)h and show Llama-2-7B's 11008 is among the best in range,
// while the literal round(8h/3) = 10923 is terrible.
#include <cmath>

#include "advisor/search.hpp"
#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_case_swiglu",
    "Case study: SwiGLU 8h/3 MLP sizing for Llama-2-7B",
    {"lo", "hi"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Case study: SwiGLU 8h/3 MLP sizing",
             "brute-force d_ff search around (8/3)h for Llama-2-7B");

  const auto base = tfm::model_by_name("llama2-7b");
  const auto suggested = static_cast<std::int64_t>(
      std::llround(8.0 * base.hidden_size / 3.0));  // 10923, odd!
  const std::int64_t lo = ctx.args().get_int("lo", suggested - 256);
  const std::int64_t hi = ctx.args().get_int("hi", suggested + 512);

  const auto scan = advisor::search_mlp_intermediate(base, ctx.sim(), lo, hi);

  ctx.section(str_format("top candidates in [%lld, %lld]",
                         static_cast<long long>(lo),
                         static_cast<long long>(hi)));
  TableWriter t({"d_ff", "coeff (d_ff/h)", "pow2(d_ff)", "MLP time",
                 "MLP TFLOP/s", "percentile"});
  std::size_t listed = 0;
  for (const auto& c : scan) {
    if (listed++ >= 10) break;
    t.new_row()
        .cell(c.d_ff)
        .cell(c.coefficient, 4)
        .cell(static_cast<std::int64_t>(
            largest_pow2_dividing(static_cast<std::uint64_t>(c.d_ff))))
        .cell(human_time(c.mlp_time))
        .cell(c.mlp_tflops, 1)
        .cell(c.rank_in_range, 3);
  }
  ctx.emit(t);

  ctx.section("the named candidates");
  TableWriter tn({"d_ff", "who uses it", "percentile in range", "MLP TFLOP/s"});
  auto add = [&](std::int64_t ff, const char* who) {
    for (const auto& c : scan) {
      if (c.d_ff == ff) {
        tn.new_row()
            .cell(ff)
            .cell(who)
            .cell(c.rank_in_range, 3)
            .cell(c.mlp_tflops, 1);
        return;
      }
    }
  };
  add(suggested, "literal round(8h/3) — the Shazeer suggestion");
  add(11008, "Llama-2-7B (coeff 2.6875)");
  add(round_up<std::int64_t>(suggested, 64),
      "nearest multiple of 64 above 8h/3");
  ctx.emit(tn);

  std::cout << "(paper: the 8/3 coefficient is only a suggestion; Llama-2-"
               "7B's 11008 is one of the best performing sizes in its "
               "range)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(case_swiglu) {
  using namespace codesign;
  reg.add({"case.swiglu_dff", "bench_case_swiglu",
           "brute-force d_ff scan around (8/3)h on Llama-2-7B",
           {benchlib::kSuiteExt},
           [](benchlib::CaseContext& c) {
             const auto base = tfm::model_by_name("llama2-7b");
             const auto suggested = static_cast<std::int64_t>(
                 std::llround(8.0 * base.hidden_size / 3.0));
             const auto scan = advisor::search_mlp_intermediate(
                 base, c.sim(), suggested - 256, suggested + 512);
             c.consume(static_cast<std::int64_t>(scan.size()));
             std::size_t listed = 0;
             for (const auto& cand : scan) {
               if (listed++ >= 10) break;
               c.consume(cand.d_ff);
               c.consume(cand.mlp_time);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
