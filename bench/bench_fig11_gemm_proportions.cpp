// Fig 11 — the proportion of GEMM latency per GEMM module in a transformer
// layer, across model sizes: the paper's evidence that QKV + MLP dominate
// large models and attention-over-value is the smallest GEMM.
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig11_gemm_proportions",
    "Fig 11: share of GEMM latency per GEMM module",
    {}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 11", "share of GEMM latency per GEMM module");

  TableWriter t({"model", "h", "qkv", "score", "aov", "proj", "mlp h->4h",
                 "mlp 4h->h"});
  for (const char* name : {"gpt3-125m", "gpt3-760m", "gpt3-2.7b", "gpt3-6.7b",
                           "gpt3-13b", "gpt3-175b"}) {
    const auto r = tfm::analyze_layer(tfm::model_by_name(name), ctx.sim());
    auto pct = [&r](tfm::LayerOp op) {
      return str_format("%5.1f%%", 100.0 * r.gemm_share_of(op));
    };
    t.new_row()
        .cell(name)
        .cell(r.config.hidden_size)
        .cell(pct(tfm::LayerOp::kQkvTransform))
        .cell(pct(tfm::LayerOp::kAttentionScore))
        .cell(pct(tfm::LayerOp::kAttentionOverValue))
        .cell(pct(tfm::LayerOp::kPostAttnProjection))
        .cell(pct(tfm::LayerOp::kMlpUp))
        .cell(pct(tfm::LayerOp::kMlpDown));
  }
  ctx.emit(t);
  std::cout << "(paper: as models grow, QKV and the MLP pair dominate; "
               "attention-over-value is the smallest GEMM)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig11_gemm_proportions) {
  using namespace codesign;
  reg.add({"fig11.gemm_proportions", "bench_fig11_gemm_proportions",
           "per-GEMM-module latency share across model sizes",
           {benchlib::kSuiteFig},
           [](benchlib::CaseContext& c) {
             for (const char* name :
                  {"gpt3-125m", "gpt3-760m", "gpt3-2.7b", "gpt3-6.7b",
                   "gpt3-13b", "gpt3-175b"}) {
               const auto r =
                   tfm::analyze_layer(tfm::model_by_name(name), c.sim());
               for (const auto op :
                    {tfm::LayerOp::kQkvTransform, tfm::LayerOp::kAttentionScore,
                     tfm::LayerOp::kAttentionOverValue,
                     tfm::LayerOp::kPostAttnProjection, tfm::LayerOp::kMlpUp,
                     tfm::LayerOp::kMlpDown}) {
                 c.consume(r.gemm_share_of(op));
               }
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
