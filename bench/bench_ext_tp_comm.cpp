// Extension — tensor parallelism with communication, on the paper's
// Table-III systems: per-GPU compute shrinks with t while the two
// per-layer all-reduces grow, so the best t depends on the fabric — the
// quantitative backing for "t should be as small as possible" and for the
// paper's note that parallelism choices depend on interconnect speed.
#include "bench_common.hpp"
#include "comm/collectives.hpp"
#include "common/strings.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_ext_tp_comm",
    "Extension: layer time vs t on the paper's Table-III systems",
    {"model"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Extension: TP + communication",
             "layer time vs t on the paper's Table-III systems");

  const std::string model = ctx.args().get_string("model", "gpt3-2.7b");
  const tfm::TransformerConfig base =
      tfm::model_by_name(model).with_vocab(50304);

  for (const std::string& cluster_id : comm::known_clusters()) {
    const comm::ClusterSpec& cluster = comm::cluster_by_name(cluster_id);
    ctx.section(cluster.description);
    TableWriter t({"t", "compute/layer", "comm/layer", "total/layer",
                   "comm share", "speedup vs t=1"});
    double t1_time = 0.0;
    for (std::int64_t tp = 1; tp <= cluster.gpus_per_node; tp *= 2) {
      if (base.num_heads % tp != 0 || base.hidden_size % tp != 0 ||
          base.vocab_size % tp != 0) {
        continue;
      }
      const auto r = comm::tp_total_layer_time(
          base.with_tensor_parallel(tp), cluster);
      if (tp == 1) t1_time = r.total_time;
      t.new_row()
          .cell(tp)
          .cell(human_time(r.compute_time))
          .cell(human_time(r.comm_time))
          .cell(human_time(r.total_time))
          .cell(str_format("%.1f%%", 100.0 * r.comm_fraction))
          .cell(str_format("%.2fx", t1_time / r.total_time));
    }
    ctx.emit(t);
  }
  std::cout << "(the marginal return of each doubling of t decays fastest "
               "on the slowest NVLink — Summit — which is also the system "
               "where t = 6 breaks the h/t alignment, the paper's "
               "double-bind for 6-GPU nodes)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(ext_tp_comm) {
  using namespace codesign;
  reg.add({"ext.tp_comm", "bench_ext_tp_comm",
           "TP compute + all-reduce time across clusters and degrees",
           {benchlib::kSuiteExt},
           [](benchlib::CaseContext& c) {
             const auto base =
                 tfm::model_by_name("gpt3-2.7b").with_vocab(50304);
             for (const std::string& cluster_id : comm::known_clusters()) {
               const comm::ClusterSpec& cluster =
                   comm::cluster_by_name(cluster_id);
               for (std::int64_t tp = 1; tp <= cluster.gpus_per_node;
                    tp *= 2) {
                 if (base.num_heads % tp != 0 || base.hidden_size % tp != 0 ||
                     base.vocab_size % tp != 0) {
                   continue;
                 }
                 const auto r = comm::tp_total_layer_time(
                     base.with_tensor_parallel(tp), cluster);
                 c.consume(r.compute_time);
                 c.consume(r.comm_time);
               }
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
