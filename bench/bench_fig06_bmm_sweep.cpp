// Fig 6 — batched matrix multiplication (BMM) throughput for the attention
// shapes: score (s, h/a) x (h/a, s) and attention-over-value (s, s) x
// (s, h/a), swept over hidden size and head count.
#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig06_bmm_sweep",
    "Fig 6: BMM throughput for attention-shaped batches",
    {"b", "s", "heads"}};

tfm::TransformerConfig bmm_cfg(std::int64_t h, std::int64_t a) {
  tfm::TransformerConfig cfg;
  cfg.name = "sweep";
  cfg.hidden_size = h;
  cfg.num_heads = a;
  cfg.num_layers = 1;
  cfg.seq_len = 2048;
  cfg.microbatch = 4;
  cfg.vocab_size = 50304;
  return cfg;
}

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 6", "BMM throughput for attention-shaped batches");

  const std::int64_t b = ctx.args().get_int("b", 4);
  const std::int64_t s = ctx.args().get_int("s", 2048);
  const auto heads = ctx.args().get_int_list("heads", {16, 32, 64});

  for (const std::int64_t a : heads) {
    ctx.section(str_format("a = %lld heads (batch = b*a = %lld)",
                           static_cast<long long>(a),
                           static_cast<long long>(b * a)));
    TableWriter t({"h", "h/a", "pow2(h/a)", "score TFLOP/s", "score bound",
                   "AOV TFLOP/s", "AOV bound"});
    for (std::int64_t h = a * 16; h <= a * 192; h += a * 16) {
      tfm::TransformerConfig cfg;
      cfg.name = "sweep";
      cfg.hidden_size = h;
      cfg.num_heads = a;
      cfg.num_layers = 1;
      cfg.seq_len = s;
      cfg.microbatch = b;
      cfg.vocab_size = 50304;
      const auto score = ctx.sim().estimate(tfm::attention_score_bmm(cfg));
      const auto aov =
          ctx.sim().estimate(tfm::attention_over_value_bmm(cfg));
      t.new_row()
          .cell(h)
          .cell(cfg.head_dim())
          .cell(static_cast<std::int64_t>(largest_pow2_dividing(
              static_cast<std::uint64_t>(cfg.head_dim()))))
          .cell(score.tflops(), 1)
          .cell(gemm::bound_name(score.bound))
          .cell(aov.tflops(), 1)
          .cell(gemm::bound_name(aov.bound));
    }
    ctx.emit(t);
  }
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig06_bmm_sweep) {
  using namespace codesign;
  reg.add({"fig06.bmm_sweep", "bench_fig06_bmm_sweep",
           "score and attention-over-value BMMs over h for a in {16,32,64}",
           {benchlib::kSuiteFig},
           [](benchlib::CaseContext& c) {
             for (const std::int64_t a : {16, 32, 64}) {
               for (std::int64_t h = a * 16; h <= a * 192; h += a * 16) {
                 const auto cfg = bmm_cfg(h, a);
                 c.consume(
                     c.sim().estimate(tfm::attention_score_bmm(cfg)).tflops());
                 c.consume(c.sim()
                               .estimate(tfm::attention_over_value_bmm(cfg))
                               .tflops());
               }
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
