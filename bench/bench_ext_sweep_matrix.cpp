// Extension — the scenario matrix engine (docs/SWEEP.md): a small
// workload x hardware sweep run end-to-end through the SweepDriver, both
// as a standalone cross-hardware ranking table and as the timed
// `sweep.matrix_small` case guarding the matrix-planning + grid-search
// hot path in the smoke/perf suites.
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "gemmsim/estimate_cache.hpp"
#include "sweep/driver.hpp"
#include "sweep/plan.hpp"

#include <memory>

namespace codesign {
namespace {

// Two families x two parts (one HBM, one bandwidth-starved edge part),
// two variants per workload: 4 cells / 8 variants — big enough to walk
// every driver stage, small enough for a smoke-suite sample.
constexpr const char* kMatrixConfig =
    "[sweep]\n"
    "name = bench-matrix\n"
    "gpus = a100, npu-edge\n"
    "[workload]\n"
    "family = gqa\n"
    "name = gqa-125m\n"
    "model = gpt3-125m\n"
    "kv_ratios = 1, 4\n"
    "[workload]\n"
    "family = prefill\n"
    "name = prefill-125m\n"
    "model = gpt3-125m\n"
    "seq_lens = 512, 2048\n";

const bench::BenchSpec kSpec{
    "bench_ext_sweep_matrix",
    "Extension: workload x hardware scenario matrix (codesign sweep)",
    {}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Extension: scenario matrix",
             "2 workload families x {a100, npu-edge} through the SweepDriver");

  const sweep::SweepPlan plan =
      sweep::parse_sweep_config(kMatrixConfig, "bench-matrix");
  sweep::SweepOptions options;
  options.threads = 1;
  options.cache = std::make_shared<gemm::EstimateCache>();
  const sweep::SweepResult result = sweep::run_sweep(plan, options);

  TableWriter t({"workload", "gpu", "winner", "time/token", "TFLOP/s"});
  for (const sweep::SweepCell& c : result.cells) {
    const sweep::SweepVariantResult& win = c.variants.front();
    t.new_row()
        .cell(c.workload)
        .cell(c.gpu)
        .cell(win.label)
        .cell(human_time(win.time_per_token))
        .cell(win.layer_tflops, 1);
  }
  ctx.emit(t);
  std::cout << "(the full matrix — 5 families x 4 parts with checkpointed "
               "resume — runs via `codesign sweep "
               "--config=examples/sweeps/full_matrix.conf`)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(ext_sweep_matrix) {
  using namespace codesign;
  reg.add({"sweep.matrix_small", "bench_ext_sweep_matrix",
           "4-cell scenario matrix end-to-end through the SweepDriver",
           {benchlib::kSuitePerf, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             const sweep::SweepPlan plan =
                 sweep::parse_sweep_config(kMatrixConfig, "bench-matrix");
             sweep::SweepOptions options;
             options.threads = 1;
             options.cache = std::make_shared<gemm::EstimateCache>();
             const sweep::SweepResult result = sweep::run_sweep(plan, options);
             for (const sweep::SweepCell& cell : result.cells) {
               for (const sweep::SweepVariantResult& v : cell.variants) {
                 c.consume(v.time_per_token);
                 c.consume(v.layer_tflops);
               }
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
