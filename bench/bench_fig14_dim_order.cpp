// Fig 14 (appendix) — GEMMs with different orderings of the batched
// dimension: (2048, 4, n) x (n, 3n), (4, 2048, n) x (n, 3n), and the flat
// (8192, n) x (n, 3n). The paper shows all three perform identically, so
// 3-D x 2-D contractions can be modelled as 2-D GEMMs — which is exactly
// the folding rule GemmProblem::folded_3d implements. This bench both
// demonstrates the modelled equality and validates it numerically with the
// CPU substrate.
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "kernels/gemm_cpu.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig14_dim_order",
    "Fig 14: batched-dimension ordering does not matter",
    {}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 14", "batched-dimension ordering does not matter");

  ctx.section("modelled throughput of the three orderings");
  TableWriter t({"n", "(2048,4,n)x(n,3n)", "(4,2048,n)x(n,3n)",
                 "(8192,n)x(n,3n)"});
  for (std::int64_t n = 512; n <= 8192; n *= 2) {
    const auto a = gemm::GemmProblem::folded_3d(2048, 4, n, 3 * n);
    const auto b = gemm::GemmProblem::folded_3d(4, 2048, n, 3 * n);
    const auto c = gemm::GemmProblem::gemm(8192, 3 * n, n);
    t.new_row()
        .cell(n)
        .cell(ctx.sim().throughput_tflops(a), 1)
        .cell(ctx.sim().throughput_tflops(b), 1)
        .cell(ctx.sim().throughput_tflops(c), 1);
  }
  ctx.emit(t);

  ctx.section("numerical check on the CPU substrate (small shapes)");
  Rng rng(7);
  const std::int64_t n = 64;
  const kern::Tensor x3a = kern::Tensor::randn({16, 4, n}, rng);
  const kern::Tensor w = kern::Tensor::randn({3 * n, n}, rng);
  const kern::Tensor y_a = kern::linear(x3a, w);
  const kern::Tensor y_flat = kern::linear(x3a.reshape({64, n}), w);
  const float diff =
      kern::max_abs_diff(y_a.reshape({64, 3 * n}), y_flat);
  std::cout << "max |3-D result - folded 2-D result| = "
            << str_format("%.2e", static_cast<double>(diff))
            << (diff == 0.0f ? " (bit-identical)" : "") << "\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig14_dim_order) {
  using namespace codesign;
  reg.add({"fig14.dim_order", "bench_fig14_dim_order",
           "3-D vs folded 2-D GEMM estimates plus the CPU-substrate check",
           {benchlib::kSuiteFig},
           [](benchlib::CaseContext& c) {
             for (std::int64_t n = 512; n <= 8192; n *= 2) {
               c.consume(c.sim().throughput_tflops(
                   gemm::GemmProblem::folded_3d(2048, 4, n, 3 * n)));
               c.consume(c.sim().throughput_tflops(
                   gemm::GemmProblem::folded_3d(4, 2048, n, 3 * n)));
               c.consume(c.sim().throughput_tflops(
                   gemm::GemmProblem::gemm(8192, 3 * n, n)));
             }
             Rng rng(7);
             const std::int64_t n = 64;
             const kern::Tensor x3a = kern::Tensor::randn({16, 4, n}, rng);
             const kern::Tensor w = kern::Tensor::randn({3 * n, n}, rng);
             const kern::Tensor y_a = kern::linear(x3a, w);
             const kern::Tensor y_flat = kern::linear(x3a.reshape({64, n}), w);
             c.consume(static_cast<double>(
                 kern::max_abs_diff(y_a.reshape({64, 3 * n}), y_flat)));
           },
           /*threshold_frac=*/0.25});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
