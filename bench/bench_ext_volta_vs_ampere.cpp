// Extension — the same shape family on Volta vs Ampere: the §III-B
// alignment granule is 16 B on V100 and 128 B on A100, so the re-shape
// that wins ~14% on A100 (h/a: 80 → 64) does nothing — slightly worse,
// even — on V100. One model, two GPUs, two different optimal shapes: the
// paper's co-design thesis in one table.
#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_ext_volta_vs_ampere",
    "Extension: the 2.7B shape trio on both alignment regimes",
    {}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Extension: Volta vs Ampere",
             "the 2.7B shape trio on both alignment regimes");

  const gemm::GemmSimulator v100 = gemm::GemmSimulator::for_gpu("v100");
  const gemm::GemmSimulator a100 = gemm::GemmSimulator::for_gpu("a100");

  const double base_v =
      tfm::analyze_layer(tfm::model_by_name("gpt3-2.7b"), v100).total_time;
  const double base_a =
      tfm::analyze_layer(tfm::model_by_name("gpt3-2.7b"), a100).total_time;

  TableWriter t({"model", "h/a", "pow2(h/a)", "V100 TFLOP/s",
                 "V100 vs default", "A100 TFLOP/s", "A100 vs default"});
  for (const char* name : {"gpt3-2.7b", "gpt3-2.7b-c1", "gpt3-2.7b-c2"}) {
    const auto& cfg = tfm::model_by_name(name);
    const auto rv = tfm::analyze_layer(cfg, v100);
    const auto ra = tfm::analyze_layer(cfg, a100);
    t.new_row()
        .cell(name)
        .cell(cfg.head_dim())
        .cell(static_cast<std::int64_t>(largest_pow2_dividing(
            static_cast<std::uint64_t>(cfg.head_dim()))))
        .cell(rv.throughput_tflops, 1)
        .cell(str_format("%.3fx", base_v / rv.total_time))
        .cell(ra.throughput_tflops, 1)
        .cell(str_format("%.3fx", base_a / ra.total_time));
  }
  ctx.emit(t);
  std::cout
      << "(V100's 16-byte granule means h/a = 80 is already fully aligned "
         "there: the A100 fix is a V100 no-op (slightly negative — more "
         "heads cost more softmax traffic). The right shape depends on "
         "the silicon — co-design, not folklore.)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(ext_volta_vs_ampere) {
  using namespace codesign;
  reg.add({"ext.volta_vs_ampere", "bench_ext_volta_vs_ampere",
           "the 2.7B trio analyzed on V100 and A100",
           {benchlib::kSuiteExt},
           [](benchlib::CaseContext& c) {
             const gemm::GemmSimulator v100 =
                 gemm::GemmSimulator::for_gpu("v100");
             const gemm::GemmSimulator a100 =
                 gemm::GemmSimulator::for_gpu("a100");
             for (const char* name :
                  {"gpt3-2.7b", "gpt3-2.7b-c1", "gpt3-2.7b-c2"}) {
               const auto& cfg = tfm::model_by_name(name);
               c.consume(tfm::analyze_layer(cfg, v100).throughput_tflops);
               c.consume(tfm::analyze_layer(cfg, a100).throughput_tflops);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
