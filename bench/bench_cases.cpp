#include "bench_cases.hpp"

// The registration hooks live in the bench_*.cpp files, compiled into the
// codesign_bench_cases library with CODESIGN_BENCH_NO_MAIN. Their names
// follow the CODESIGN_BENCH_CASES macro (bench/bench_common.hpp).
#define CODESIGN_DECLARE_BENCH(id) \
  void codesign_bench_register_##id(::codesign::benchlib::BenchRegistry&)

CODESIGN_DECLARE_BENCH(ablation_simulator);
CODESIGN_DECLARE_BENCH(case_6gpu_nodes);
CODESIGN_DECLARE_BENCH(case_bert);
CODESIGN_DECLARE_BENCH(case_gpt3_27b);
CODESIGN_DECLARE_BENCH(case_hw_ratio);
CODESIGN_DECLARE_BENCH(case_swiglu);
CODESIGN_DECLARE_BENCH(ext_3d_parallel);
CODESIGN_DECLARE_BENCH(ext_gqa);
CODESIGN_DECLARE_BENCH(ext_pipeline);
CODESIGN_DECLARE_BENCH(ext_seqlen);
CODESIGN_DECLARE_BENCH(ext_sweep_matrix);
CODESIGN_DECLARE_BENCH(ext_tp_comm);
CODESIGN_DECLARE_BENCH(ext_training_step);
CODESIGN_DECLARE_BENCH(ext_volta_vs_ampere);
CODESIGN_DECLARE_BENCH(fig01_layer_family);
CODESIGN_DECLARE_BENCH(fig02_latency_breakdown);
CODESIGN_DECLARE_BENCH(fig05_gemm_sweep);
CODESIGN_DECLARE_BENCH(fig06_bmm_sweep);
CODESIGN_DECLARE_BENCH(fig07_attention_alignment);
CODESIGN_DECLARE_BENCH(fig08_09_fixed_ratio);
CODESIGN_DECLARE_BENCH(fig10_mlp);
CODESIGN_DECLARE_BENCH(fig11_gemm_proportions);
CODESIGN_DECLARE_BENCH(fig12_flashattention);
CODESIGN_DECLARE_BENCH(fig13_inference);
CODESIGN_DECLARE_BENCH(fig14_dim_order);
CODESIGN_DECLARE_BENCH(fig15_16_qkv);
CODESIGN_DECLARE_BENCH(fig17_18_attention_appendix);
CODESIGN_DECLARE_BENCH(fig19_projection);
CODESIGN_DECLARE_BENCH(fig20_vocab);
CODESIGN_DECLARE_BENCH(fig21_47_head_sweep);
CODESIGN_DECLARE_BENCH(obs_overhead);
CODESIGN_DECLARE_BENCH(search_parallel);
CODESIGN_DECLARE_BENCH(serve_throughput);

namespace codesign::bench {

void register_all_cases(benchlib::BenchRegistry& reg) {
#define CODESIGN_CALL_BENCH(id) codesign_bench_register_##id(reg)
  CODESIGN_CALL_BENCH(ablation_simulator);
  CODESIGN_CALL_BENCH(case_6gpu_nodes);
  CODESIGN_CALL_BENCH(case_bert);
  CODESIGN_CALL_BENCH(case_gpt3_27b);
  CODESIGN_CALL_BENCH(case_hw_ratio);
  CODESIGN_CALL_BENCH(case_swiglu);
  CODESIGN_CALL_BENCH(ext_3d_parallel);
  CODESIGN_CALL_BENCH(ext_gqa);
  CODESIGN_CALL_BENCH(ext_pipeline);
  CODESIGN_CALL_BENCH(ext_seqlen);
  CODESIGN_CALL_BENCH(ext_sweep_matrix);
  CODESIGN_CALL_BENCH(ext_tp_comm);
  CODESIGN_CALL_BENCH(ext_training_step);
  CODESIGN_CALL_BENCH(ext_volta_vs_ampere);
  CODESIGN_CALL_BENCH(fig01_layer_family);
  CODESIGN_CALL_BENCH(fig02_latency_breakdown);
  CODESIGN_CALL_BENCH(fig05_gemm_sweep);
  CODESIGN_CALL_BENCH(fig06_bmm_sweep);
  CODESIGN_CALL_BENCH(fig07_attention_alignment);
  CODESIGN_CALL_BENCH(fig08_09_fixed_ratio);
  CODESIGN_CALL_BENCH(fig10_mlp);
  CODESIGN_CALL_BENCH(fig11_gemm_proportions);
  CODESIGN_CALL_BENCH(fig12_flashattention);
  CODESIGN_CALL_BENCH(fig13_inference);
  CODESIGN_CALL_BENCH(fig14_dim_order);
  CODESIGN_CALL_BENCH(fig15_16_qkv);
  CODESIGN_CALL_BENCH(fig17_18_attention_appendix);
  CODESIGN_CALL_BENCH(fig19_projection);
  CODESIGN_CALL_BENCH(fig20_vocab);
  CODESIGN_CALL_BENCH(fig21_47_head_sweep);
  CODESIGN_CALL_BENCH(obs_overhead);
  CODESIGN_CALL_BENCH(search_parallel);
  CODESIGN_CALL_BENCH(serve_throughput);
#undef CODESIGN_CALL_BENCH
}

}  // namespace codesign::bench
