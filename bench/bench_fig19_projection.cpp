// Fig 19 (appendix) — the post-attention linear projection
// (b·s, h/t) x (h/t, h) swept over hidden size and tensor-parallel degree.
#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig19_projection",
    "Fig 19: post-attention linear projection vs h",
    {"b", "s", "tp"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 19", "post-attention linear projection vs h");

  const std::int64_t b = ctx.args().get_int("b", 4);
  const std::int64_t s = ctx.args().get_int("s", 2048);
  const auto tp = ctx.args().get_int_list("tp", {1, 2, 4, 8});

  TableWriter t({"h", "t", "k = h/t", "pow2(h/t)", "TFLOP/s", "bound"});
  for (std::int64_t h = 1024; h <= 12288; h += 1024) {
    for (const std::int64_t tdeg : tp) {
      if (h % tdeg != 0) continue;
      tfm::TransformerConfig cfg;
      cfg.name = "sweep";
      cfg.hidden_size = h;
      cfg.num_heads = tdeg;
      cfg.num_layers = 1;
      cfg.seq_len = s;
      cfg.microbatch = b;
      cfg.vocab_size = 150912;  // divisible by all listed t
      cfg.tensor_parallel = tdeg;
      const auto est =
          ctx.sim().estimate(tfm::post_attn_projection_gemm(cfg));
      t.new_row()
          .cell(h)
          .cell(tdeg)
          .cell(h / tdeg)
          .cell(static_cast<std::int64_t>(
              largest_pow2_dividing(static_cast<std::uint64_t>(h / tdeg))))
          .cell(est.tflops(), 1)
          .cell(gemm::bound_name(est.bound));
    }
  }
  ctx.emit(t);
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig19_projection) {
  using namespace codesign;
  reg.add({"fig19.projection", "bench_fig19_projection",
           "post-attention projection GEMM estimates vs h and t",
           {benchlib::kSuiteFig},
           [](benchlib::CaseContext& c) {
             for (std::int64_t h = 1024; h <= 12288; h += 1024) {
               for (const std::int64_t t : {1, 2, 4, 8}) {
                 if (h % t != 0) continue;
                 tfm::TransformerConfig cfg;
                 cfg.name = "sweep";
                 cfg.hidden_size = h;
                 cfg.num_heads = t;
                 cfg.num_layers = 1;
                 cfg.seq_len = 2048;
                 cfg.microbatch = 4;
                 cfg.vocab_size = 150912;
                 cfg.tensor_parallel = t;
                 c.consume(
                     c.sim()
                         .estimate(tfm::post_attn_projection_gemm(cfg))
                         .tflops());
               }
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
