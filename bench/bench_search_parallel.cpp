// bench_search_parallel — design-space search throughput: cold vs. warm
// estimate cache, 1 vs. N evaluation threads, seed path vs. pipeline.
//
// The paper's workflow (Figs 5-10, 21-47) sweeps thousands of transformer
// shapes through the GEMM model; this bench tracks how fast this repo can
// do that. It measures the joint heads × hidden grid search three ways:
//   * seed      — the pre-pipeline code path: one thread, no cache, the
//                 baseline layer re-analyzed for every candidate, and the
//                 reporting-weight evaluation (full analyze_layer report,
//                 per-tensor weight enumeration, formatted rule messages)
//                 the searches used before the lean twins existed.
//   * pipeline  — the shared search pipeline at 1..N threads, cache off.
//   * cached    — the pipeline with the estimate cache, cold then warm.
// It also asserts the determinism contract (identical ranking at every
// thread count / cache setting) and writes BENCH_search.json so future PRs
// can track the trajectory.
//
// Flags: --model= --radius= --threads= --repeat= --out= --smoke (tiny,
// fast configuration for ctest), plus the standard --gpu/--policy/--format.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "advisor/rules.hpp"
#include "advisor/search.hpp"
#include "bench_common.hpp"
#include "benchlib/bench_report.hpp"
#include "benchlib/runner.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/params.hpp"

namespace codesign::bench {
namespace {

using advisor::SearchOptions;
using advisor::ShapeCandidate;

const BenchSpec kSpec{
    "bench_search_parallel",
    "search throughput: seed path vs parallel pipeline with estimate cache",
    {"model", "radius", "threads", "repeat", "out", "smoke"}};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best wall-clock of `repeat` runs of fn() (returns candidate count).
struct Timing {
  double seconds = 0.0;
  std::size_t candidates = 0;
};

template <typename F>
Timing best_of(int repeat, F&& fn) {
  Timing best;
  best.seconds = 1e30;
  for (int r = 0; r < repeat; ++r) {
    const double t0 = now_seconds();
    const std::size_t n = fn();
    const double dt = now_seconds() - t0;
    if (dt < best.seconds) best = Timing{dt, n};
  }
  return best;
}

/// One candidate evaluation exactly as the seed advisor did it: a full
/// analyze_layer report for the baseline AND the candidate (the baseline
/// was re-derived per call), parameter counts by enumerating every named
/// weight tensor, and the rules verdict by folding over check_rules with
/// all its formatted diagnostics. The optimized pipeline replaces each of
/// these with a lean twin; this keeps the seed cost profile measurable.
ShapeCandidate seed_evaluate(const tfm::TransformerConfig& config,
                             const tfm::TransformerConfig& base,
                             const gemm::GemmSimulator& sim) {
  const auto enumerated_params = [](const tfm::TransformerConfig& c) {
    std::int64_t total = 0;
    for (const tfm::WeightInfo& w : tfm::enumerate_weights(c)) {
      total += w.count;
    }
    return static_cast<double>(total);
  };
  const double base_time = tfm::analyze_layer(base, sim).total_time;
  const double base_params = enumerated_params(base);
  const tfm::LayerLatencyReport report = tfm::analyze_layer(config, sim);
  ShapeCandidate c;
  c.config = config;
  c.layer_time = report.total_time;
  c.layer_tflops = report.throughput_tflops;
  c.speedup_vs_base = base_time / report.total_time;
  c.param_count = enumerated_params(config);
  c.param_delta_frac = (c.param_count - base_params) / base_params;
  advisor::RuleContext ctx;
  ctx.gpu = &sim.gpu();
  c.rules_pass = true;
  for (const advisor::RuleResult& r : advisor::check_rules(config, ctx)) {
    if (!r.passed && r.severity != advisor::RuleSeverity::kAdvisory) {
      c.rules_pass = false;
    }
  }
  return c;
}

/// The seed evaluation path: enumerate the same joint grid inline and
/// evaluate every candidate through seed_evaluate, single-threaded, with
/// no cache. The param-delta filter matches the pipeline's `keep` (it ran
/// after evaluation in the seed too, so every grid point pays full cost).
std::size_t run_seed_path(const tfm::TransformerConfig& base,
                          const gemm::GemmSimulator& sim, double radius,
                          double max_param_delta_frac) {
  const std::int64_t step = 64 * base.tensor_parallel;
  const auto r = static_cast<std::int64_t>(
      radius * static_cast<double>(base.hidden_size));
  std::vector<ShapeCandidate> cands;
  for (std::int64_t h = ((std::max(step, base.hidden_size - r) + step - 1) /
                         step) * step;
       h <= base.hidden_size + r; h += step) {
    for (std::int64_t a = 1; a <= h; ++a) {
      if (h % a != 0 || a % base.tensor_parallel != 0) continue;
      const std::int64_t head_dim = h / a;
      if (head_dim < 32 || head_dim > 256) continue;
      tfm::TransformerConfig cfg = base.with_hidden(h).with_heads(a);
      ShapeCandidate c = seed_evaluate(cfg, base, sim);
      if (h == base.hidden_size ||
          std::fabs(c.param_delta_frac) <= max_param_delta_frac) {
        cands.push_back(std::move(c));
      }
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const ShapeCandidate& x, const ShapeCandidate& y) {
              return x.layer_time < y.layer_time;
            });
  return cands.size();
}

bool same_ranking(const std::vector<ShapeCandidate>& a,
                  const std::vector<ShapeCandidate>& b) {
  return a == b;  // field-exact, including every double, bit pattern aside
}

/// The >=`target`-candidate grid for the batched raw-throughput path
/// (run_grid_search): every legal (h, a) joint point in [256, 4096],
/// crossed with microbatch / sequence / depth / vocab variants until the
/// target count is reached. Depth and vocab do not change the layer time,
/// so the warm estimate cache sees realistic hit rates while the candidate
/// count scales far past what the neighbourhood searches generate. Names
/// are unique, so the (layer_time, name) ranking stays a total order.
std::vector<tfm::TransformerConfig> batched_grid(
    const tfm::TransformerConfig& base, std::size_t target) {
  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;  // (h, a)
  for (std::int64_t h = 256; h <= 4096; h += 64) {
    for (std::int64_t a = 1; a <= h; ++a) {
      if (h % a != 0) continue;
      const std::int64_t head_dim = h / a;
      if (head_dim < 32 || head_dim > 256) continue;
      pairs.emplace_back(h, a);
    }
  }
  const std::int64_t mbs[] = {1, 2, 4, 8, 16, 32, 64, 128};
  const std::int64_t seqs[] = {512, 1024, 2048, 4096};
  const std::int64_t depths[] = {8, 12, 16, 24};
  const std::int64_t vocabs[] = {50304, 51264};
  std::vector<tfm::TransformerConfig> grid;
  grid.reserve(target + pairs.size());
  for (std::size_t combo = 0; combo < 8 * 4 * 4 * 2 && grid.size() < target;
       ++combo) {
    const std::int64_t b = mbs[combo % 8];
    const std::int64_t s = seqs[(combo / 8) % 4];
    const std::int64_t l = depths[(combo / 32) % 4];
    const std::int64_t v = vocabs[(combo / 128) % 2];
    for (const auto& [h, a] : pairs) {
      tfm::TransformerConfig cfg = base.with_hidden(h)
                                       .with_heads(a)
                                       .with_microbatch(b)
                                       .with_seq_len(s)
                                       .with_layers(l)
                                       .with_vocab(v);
      cfg.name = str_format("g_h%lld_a%lld_b%lld_s%lld_L%lld_v%lld",
                            static_cast<long long>(h),
                            static_cast<long long>(a),
                            static_cast<long long>(b),
                            static_cast<long long>(s),
                            static_cast<long long>(l),
                            static_cast<long long>(v));
      grid.push_back(std::move(cfg));
    }
  }
  return grid;
}

int body(BenchContext& ctx) {
  const bool smoke = ctx.args().get_bool("smoke", false);
  const std::string model_name =
      ctx.args().get_string("model", smoke ? "pythia-160m" : "gpt3-2.7b");
  const double radius =
      ctx.args().get_double("radius", smoke ? 0.05 : 0.15);
  const auto threads =
      static_cast<std::size_t>(ctx.args().get_int("threads", 8));
  const int repeat = static_cast<int>(
      ctx.args().get_int("repeat", smoke ? 1 : 3));
  const std::string out_path =
      ctx.args().get_string("out", "BENCH_search.json");

  const tfm::TransformerConfig base = tfm::model_by_name(model_name);
  SearchOptions options;
  options.max_candidates = 1 << 20;  // rank everything; no trim noise

  ctx.banner("search throughput",
             "joint heads x hidden design-space search: seed path vs. "
             "parallel pipeline with memoized GEMM estimates");

  // Candidate ranking ground truth: 1 thread, no cache.
  const std::vector<ShapeCandidate> reference =
      advisor::search_joint(base, ctx.sim(), radius, 0, options);
  CODESIGN_CHECK(!reference.empty(), "joint grid produced no candidates");

  // --- determinism: every thread count / cache setting, same ranking ----
  bool deterministic = true;
  for (std::size_t t : {std::size_t{2}, threads}) {
    SearchOptions opt = options;
    opt.threads = t;
    gemm::GemmSimulator cached = ctx.sim();
    cached.enable_cache();
    deterministic =
        deterministic &&
        same_ranking(reference,
                     advisor::search_joint(base, ctx.sim(), radius, 0, opt)) &&
        same_ranking(reference,
                     advisor::search_joint(base, cached, radius, 0, opt)) &&
        same_ranking(reference,
                     advisor::search_joint(base, cached, radius, 0, opt));
  }

  // --- timings ----------------------------------------------------------
  const Timing seed = best_of(repeat, [&] {
    return run_seed_path(base, ctx.sim(), radius,
                         options.max_param_delta_frac);
  });

  const auto run_pipeline = [&](std::size_t nthreads,
                                gemm::GemmSimulator& sim) {
    SearchOptions opt = options;
    opt.threads = nthreads;
    return advisor::search_joint(base, sim, radius, 0, opt).size();
  };

  gemm::GemmSimulator plain = ctx.sim();
  const Timing pipe1 = best_of(repeat, [&] { return run_pipeline(1, plain); });
  const Timing pipeN =
      best_of(repeat, [&] { return run_pipeline(threads, plain); });

  gemm::GemmSimulator cached = ctx.sim();
  cached.enable_cache();
  const Timing cold = best_of(1, [&] { return run_pipeline(1, cached); });
  const Timing warm1 =
      best_of(repeat, [&] { return run_pipeline(1, cached); });
  const Timing warmN =
      best_of(repeat, [&] { return run_pipeline(threads, cached); });
  const gemm::CacheStats cache_stats = cached.cache()->stats();

  const double speedup_warmN = seed.seconds / warmN.seconds;
  const double speedup_warm1 = seed.seconds / warm1.seconds;

  // --- batched grid: run_grid_search raw throughput ---------------------
  // The joint sweep above has a few hundred candidates; the batched
  // estimation engine is sized for sweeps two orders of magnitude larger.
  // This phase pushes a >=1e5-candidate grid (2e3 under --smoke) through
  // run_grid_search with a warm cache and checks the ranking is identical
  // at 1 and N threads.
  const std::size_t grid_target = smoke ? 2000 : 100000;
  const std::vector<tfm::TransformerConfig> grid =
      batched_grid(base, grid_target);
  SearchOptions grid_opt;
  grid_opt.max_candidates = 64;  // rank everything, keep the head
  gemm::GemmSimulator grid_sim = ctx.sim();
  grid_sim.enable_cache();
  const auto run_grid = [&](std::size_t nthreads) {
    SearchOptions o = grid_opt;
    o.threads = nthreads;
    return advisor::run_grid_search(grid, base, grid_sim, o);
  };
  const advisor::SearchOutcome grid_ref = run_grid(1);  // also warms cache
  CODESIGN_CHECK(grid_ref.evaluated == grid.size(),
                 "batched grid evaluation skipped candidates");
  const bool grid_deterministic =
      same_ranking(grid_ref.ranked, run_grid(threads).ranked);
  const Timing grid1 =
      best_of(repeat, [&] { return run_grid(1).evaluated; });
  const Timing gridN =
      best_of(repeat, [&] { return run_grid(threads).evaluated; });

  TableWriter t({"configuration", "threads", "cache", "time", "candidates",
                 "evals/s", "speedup vs seed"});
  const auto row = [&](const std::string& name, std::size_t nthreads,
                       const std::string& cache_state, const Timing& timing) {
    t.new_row()
        .cell(name)
        .cell(static_cast<std::int64_t>(nthreads))
        .cell(cache_state)
        .cell(human_time(timing.seconds))
        .cell(static_cast<std::int64_t>(timing.candidates))
        .cell(static_cast<double>(timing.candidates) / timing.seconds, 0)
        .cell(str_format("%.2fx", seed.seconds / timing.seconds));
  };
  row("seed (per-candidate baseline)", 1, "off", seed);
  row("pipeline", 1, "off", pipe1);
  row("pipeline", threads, "off", pipeN);
  row("pipeline", 1, "cold", cold);
  row("pipeline", 1, "warm", warm1);
  row("pipeline", threads, "warm", warmN);
  ctx.emit(t);

  ctx.section("batched grid (run_grid_search)");
  TableWriter tg({"configuration", "threads", "cache", "time", "candidates",
                  "evals/s"});
  const auto grid_row = [&](std::size_t nthreads, const Timing& timing) {
    tg.new_row()
        .cell("grid (batched)")
        .cell(static_cast<std::int64_t>(nthreads))
        .cell("warm")
        .cell(human_time(timing.seconds))
        .cell(static_cast<std::int64_t>(timing.candidates))
        .cell(static_cast<double>(timing.candidates) / timing.seconds, 0);
  };
  grid_row(1, grid1);
  grid_row(threads, gridN);
  ctx.emit(tg);

  std::cout << str_format(
      "deterministic ranking: %s (joint) / %s (grid) | cache: %llu hits / "
      "%llu misses (%.1f%% hit rate)\n",
      deterministic ? "yes" : "NO", grid_deterministic ? "yes" : "NO",
      static_cast<unsigned long long>(cache_stats.hits),
      static_cast<unsigned long long>(cache_stats.misses),
      100.0 * cache_stats.hit_rate());

  // --- JSON trajectory record (schema: codesign.bench_report) -----------
  // The reference ranking is the data checksum: every configuration must
  // reproduce it bit-for-bit, so all cases share one checksum and
  // checksum_stable mirrors the determinism assertion above.
  std::uint64_t ranking_checksum = benchlib::kChecksumSeed;
  ranking_checksum = benchlib::checksum_fold(
      ranking_checksum, static_cast<double>(reference.size()));
  for (const ShapeCandidate& cand : reference) {
    ranking_checksum = benchlib::checksum_fold(ranking_checksum,
                                               cand.layer_time);
  }

  benchlib::BenchReport report;
  report.run.suite = "trajectory";
  report.run.filter = "search_parallel";
  report.run.gpu = ctx.gpu().id;
  report.run.policy = benchlib::tile_policy_name(ctx.sim().policy());
  report.run.warmup = 0;
  report.run.repeats = repeat;
  report.run.threads = threads;
  report.host = benchlib::HostFingerprint::current();
  report.context["bench"] = "search_parallel";
  report.context["model"] = model_name;
  report.context["radius_frac"] = str_format("%g", radius);
  report.context["candidates"] = std::to_string(reference.size());
  report.context["deterministic"] = deterministic ? "true" : "false";
  report.context["speedup_warm_1t_vs_seed"] =
      str_format("%.3f", speedup_warm1);
  report.context["speedup_warm_Nt_vs_seed"] =
      str_format("%.3f", speedup_warmN);
  report.context["cache_hits"] = std::to_string(cache_stats.hits);
  report.context["cache_misses"] = std::to_string(cache_stats.misses);
  report.context["cache_hit_rate"] = str_format("%.4f",
                                                cache_stats.hit_rate());
  report.context["cache_entries"] = std::to_string(cache_stats.entries);
  report.context["cache_evictions"] = std::to_string(cache_stats.evictions);
  report.context["grid_candidates"] = std::to_string(grid.size());
  report.context["grid_deterministic"] = grid_deterministic ? "true" : "false";
  report.context["grid_evals_per_sec_1t"] =
      str_format("%.0f", static_cast<double>(grid1.candidates) / grid1.seconds);
  report.context["grid_evals_per_sec_Nt"] =
      str_format("%.0f", static_cast<double>(gridN.candidates) / gridN.seconds);
  const auto add_case = [&](const std::string& name, const Timing& timing) {
    benchlib::CaseStats s;
    s.name = name;
    s.bench = "bench_search_parallel";
    s.suites = {benchlib::kSuitePerf};
    s.samples_ms = {timing.seconds * 1e3};
    s.checksum = ranking_checksum;
    s.checksum_stable = deterministic;
    benchlib::summarize(s);
    report.cases.push_back(std::move(s));
  };
  add_case("search.seed_1t_nocache", seed);
  add_case("search.pipeline_1t_nocache", pipe1);
  add_case("search.pipeline_Nt_nocache", pipeN);
  add_case("search.pipeline_1t_coldcache", cold);
  add_case("search.pipeline_1t_warmcache", warm1);
  add_case("search.pipeline_Nt_warmcache", warmN);

  // The batched grid ranks a different candidate set, so it carries its
  // own checksum (folded over the kept head of the ranking).
  std::uint64_t grid_checksum = benchlib::kChecksumSeed;
  grid_checksum = benchlib::checksum_fold(
      grid_checksum, static_cast<double>(grid_ref.evaluated));
  for (const ShapeCandidate& cand : grid_ref.ranked) {
    grid_checksum = benchlib::checksum_fold(grid_checksum, cand.layer_time);
  }
  benchlib::CaseStats gs;
  gs.name = "search.pipeline_batched";
  gs.bench = "bench_search_parallel";
  gs.suites = {benchlib::kSuitePerf, benchlib::kSuiteSmoke};
  gs.samples_ms = {gridN.seconds * 1e3};
  gs.checksum = grid_checksum;
  gs.checksum_stable = grid_deterministic;
  benchlib::summarize(gs);
  report.cases.push_back(std::move(gs));

  report.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  if (!deterministic || !grid_deterministic) {
    std::cerr << "FAIL: ranking depends on thread count or cache state\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace codesign::bench

CODESIGN_BENCH_CASES(search_parallel) {
  using namespace codesign;
  reg.add({"search.joint_pipeline", "bench_search_parallel",
           "joint heads x hidden search on pythia-160m, cold + warm cache",
           {benchlib::kSuitePerf, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             const auto base = tfm::model_by_name("pythia-160m");
             advisor::SearchOptions options;
             options.max_candidates = 1 << 20;
             gemm::GemmSimulator cached = c.sim();
             cached.enable_cache();
             for (int round = 0; round < 2; ++round) {  // cold, then warm
               const auto cands =
                   advisor::search_joint(base, cached, 0.05, 0, options);
               c.consume(static_cast<std::int64_t>(cands.size()));
               for (const auto& cand : cands) c.consume(cand.layer_time);
             }
           }});
  reg.add({"search.pipeline_batched", "bench_search_parallel",
           "run_grid_search over a 1e5-candidate grid, warm cache, 4 threads",
           {benchlib::kSuitePerf, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             const auto base = tfm::model_by_name("pythia-160m");
             const auto grid = bench::batched_grid(base, 100000);
             advisor::SearchOptions options;
             options.threads = 4;
             options.max_candidates = 64;
             gemm::GemmSimulator cached = c.sim();
             cached.enable_cache();
             const advisor::SearchOutcome outcome =
                 advisor::run_grid_search(grid, base, cached, options);
             c.consume(static_cast<std::int64_t>(grid.size()));
             c.consume(static_cast<std::int64_t>(outcome.evaluated));
             for (const auto& cand : outcome.ranked) {
               c.consume(cand.layer_time);
             }
           }});
  reg.add({"estimate.many_warm", "bench_search_parallel",
           "estimate_times over a 512-problem batch, 256 warm passes",
           {benchlib::kSuitePerf, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             gemm::GemmSimulator sim = c.sim();
             sim.enable_cache();
             std::vector<gemm::GemmProblem> batch;
             batch.reserve(512);
             for (int i = 0; i < 512; ++i) {
               batch.push_back(gemm::GemmProblem::gemm(
                   256 + 64 * (i % 32), 512 + 128 * (i % 17),
                   768 + 64 * (i % 23)));
             }
             gemm::GemmSimulator::BatchWorkspace ws;
             std::vector<double> times(batch.size());
             for (int round = 0; round < 256; ++round) {  // round 0 = cold
               sim.estimate_times(batch, times, ws);
               double sum = 0.0;
               for (const double t : times) sum += t;
               c.consume(sum);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::bench::kSpec, codesign::bench::body);
