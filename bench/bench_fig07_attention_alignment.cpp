// Fig 7 — attention score (7a) and attention-over-value (7b) GEMM
// throughput for 32 attention heads on A100, with the h sweep split into
// series by the largest power of two dividing h/a: the paper's
// demonstration that "more powers of two leads to better performance up
// to h/a = 64".
#include <map>

#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig07_attention_alignment",
    "Fig 7: attention GEMM throughput split by pow2(h/a)",
    {"a", "b", "s"}};

tfm::TransformerConfig sweep_cfg(std::int64_t h, std::int64_t a,
                                 std::int64_t b, std::int64_t s) {
  tfm::TransformerConfig cfg;
  cfg.name = "sweep";
  cfg.hidden_size = h;
  cfg.num_heads = a;
  cfg.num_layers = 1;
  cfg.seq_len = s;
  cfg.microbatch = b;
  cfg.vocab_size = 50304;
  return cfg;
}

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 7",
             "attention GEMM throughput at a = 32, split by pow2(h/a)");

  const std::int64_t a = ctx.args().get_int("a", 32);
  const std::int64_t b = ctx.args().get_int("b", 4);
  const std::int64_t s = ctx.args().get_int("s", 2048);

  for (const bool aov : {false, true}) {
    ctx.section(aov ? "Fig 7b — attention over value (s, s) x (s, h/a)"
                    : "Fig 7a — attention score (s, h/a) x (h/a, s)");
    // Group rows by the power-of-two series like the paper's legend.
    std::map<std::int64_t, TableWriter> series;
    for (std::int64_t head_dim = 8; head_dim <= 160; head_dim += 8) {
      const std::int64_t h = head_dim * a;
      const auto cfg = sweep_cfg(h, a, b, s);
      const auto problem = aov ? tfm::attention_over_value_bmm(cfg)
                               : tfm::attention_score_bmm(cfg);
      const auto est = ctx.sim().estimate(problem);
      const auto key = static_cast<std::int64_t>(std::min<std::uint64_t>(
          largest_pow2_dividing(static_cast<std::uint64_t>(head_dim)), 64));
      auto [it, inserted] = series.try_emplace(
          key, TableWriter({"h", "h/a", "TFLOP/s", "bound", "tile"}));
      it->second.new_row()
          .cell(h)
          .cell(head_dim)
          .cell(est.tflops(), 1)
          .cell(gemm::bound_name(est.bound))
          .cell(est.tile.name());
    }
    for (auto& [pow2, table] : series) {
      std::cout << "series pow2(h/a) = " << pow2
                << (pow2 >= 64 ? " (full tensor-core alignment)" : "") << "\n";
      ctx.emit(table);
    }
  }
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig07_attention_alignment) {
  using namespace codesign;
  reg.add({"fig07.alignment", "bench_fig07_attention_alignment",
           "score + AOV BMM estimates across head_dim at a = 32",
           {benchlib::kSuiteFig},
           [](benchlib::CaseContext& c) {
             for (const bool aov : {false, true}) {
               for (std::int64_t hd = 8; hd <= 160; hd += 8) {
                 const auto cfg = sweep_cfg(hd * 32, 32, 4, 2048);
                 const auto problem = aov ? tfm::attention_over_value_bmm(cfg)
                                          : tfm::attention_score_bmm(cfg);
                 c.consume(c.sim().estimate(problem).tflops());
               }
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
