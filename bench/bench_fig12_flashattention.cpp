// Fig 12 — FlashAttention-2 throughput swept over the hidden dimension at
// a = 128: the fused kernel follows a clean roofline in h, which reduces
// the attention sizing takeaway to "make h as large as possible".
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "gemmsim/flash_attention.hpp"
#include "transformer/gemm_mapping.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig12_flashattention",
    "Fig 12: FlashAttention-2 sweep over hidden dimension",
    {"a", "b", "s"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 12", "FlashAttention-2 sweep over hidden dimension");

  const std::int64_t a = ctx.args().get_int("a", 128);
  const std::int64_t b = ctx.args().get_int("b", 4);
  const std::int64_t s = ctx.args().get_int("s", 2048);

  TableWriter t({"h", "h/a", "flash TFLOP/s", "flash bound",
                 "unfused attn TFLOP/s", "flash speedup"});
  for (std::int64_t head_dim = 8; head_dim <= 128; head_dim += 8) {
    const std::int64_t h = head_dim * a;
    tfm::TransformerConfig cfg;
    cfg.name = "sweep";
    cfg.hidden_size = h;
    cfg.num_heads = a;
    cfg.num_layers = 1;
    cfg.seq_len = s;
    cfg.microbatch = b;
    cfg.vocab_size = 50304;
    cfg.attention = tfm::AttentionImpl::kFlash;

    gemm::FlashAttentionProblem fp = tfm::flash_attention_problem(cfg);
    fp.causal = false;  // match the unfused BMM comparison
    const auto flash = ctx.sim().estimate_flash(fp);

    // Unfused path: score BMM + softmax traffic + AOV BMM.
    const auto score = ctx.sim().estimate(tfm::attention_score_bmm(cfg));
    const auto aov = ctx.sim().estimate(tfm::attention_over_value_bmm(cfg));
    const double softmax_bytes = 2.0 * static_cast<double>(b) * a *
                                 static_cast<double>(s) * s * 2.0;
    const double unfused_time =
        score.time + aov.time +
        softmax_bytes / ctx.gpu().achievable_bandwidth() +
        ctx.gpu().kernel_launch_overhead;
    const double unfused_tflops = fp.flops() / unfused_time / 1e12;

    t.new_row()
        .cell(h)
        .cell(head_dim)
        .cell(flash.tflops(), 1)
        .cell(gemm::bound_name(flash.bound))
        .cell(unfused_tflops, 1)
        .cell(str_format("%.2fx", unfused_time / flash.time));
  }
  ctx.emit(t);
  std::cout << "(roofline: flash throughput rises with h and saturates near "
            << str_format("%.0f", ctx.gpu().achievable_tensor_flops(
                                      gpu::DType::kFP16) *
                                      gemm::kFlashAttention2Efficiency / 1e12)
            << " TFLOP/s on this device)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig12_flashattention) {
  using namespace codesign;
  reg.add({"fig12.flash_sweep", "bench_fig12_flashattention",
           "fused flash vs unfused attention estimates over head_dim",
           {benchlib::kSuiteFig},
           [](benchlib::CaseContext& c) {
             for (std::int64_t hd = 8; hd <= 128; hd += 8) {
               tfm::TransformerConfig cfg;
               cfg.name = "sweep";
               cfg.hidden_size = hd * 128;
               cfg.num_heads = 128;
               cfg.num_layers = 1;
               cfg.seq_len = 2048;
               cfg.microbatch = 4;
               cfg.vocab_size = 50304;
               cfg.attention = tfm::AttentionImpl::kFlash;
               gemm::FlashAttentionProblem fp =
                   tfm::flash_attention_problem(cfg);
               fp.causal = false;
               c.consume(c.sim().estimate_flash(fp).tflops());
               c.consume(
                   c.sim().estimate(tfm::attention_score_bmm(cfg)).time);
               c.consume(
                   c.sim().estimate(tfm::attention_over_value_bmm(cfg)).time);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
