// Fig 20 (appendix) — the vocabulary/logit GEMM (b·s, h) x (h, v):
//   (a) coarse sweep over v and over h;
//   (b) the zoomed sweep over v in [14275, 14336] showing the multiple-of-
//       64 padding rule, plus the famous GPT-2 vocab example
//       (50257 vs 50304 — the "nanoGPT 25% speedup" tweet).
#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig20_vocab",
    "Fig 20: vocabulary embedding transformation GEMM",
    {"b", "s"}};

gemm::GemmProblem logit(std::int64_t bs, std::int64_t v, std::int64_t h) {
  return gemm::GemmProblem::gemm(bs, v, h);
}

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 20", "vocabulary embedding transformation GEMM");

  const std::int64_t b = ctx.args().get_int("b", 4);
  const std::int64_t s = ctx.args().get_int("s", 2048);
  const std::int64_t bs = b * s;

  ctx.section("Fig 20a — sweep over vocabulary size (h = 2560)");
  TableWriter ta({"v", "pow2(v)", "TFLOP/s"});
  for (std::int64_t v = 8192; v <= 65536; v += 8192) {
    ta.new_row()
        .cell(v)
        .cell(static_cast<std::int64_t>(
            largest_pow2_dividing(static_cast<std::uint64_t>(v))))
        .cell(ctx.sim().throughput_tflops(logit(bs, v, 2560)), 1);
  }
  ctx.emit(ta);

  ctx.section("Fig 20a — sweep over hidden size (v = 50304)");
  TableWriter th({"h", "pow2(h)", "TFLOP/s"});
  for (std::int64_t h = 768; h <= 12288; h += 768) {
    th.new_row()
        .cell(h)
        .cell(static_cast<std::int64_t>(
            largest_pow2_dividing(static_cast<std::uint64_t>(h))))
        .cell(ctx.sim().throughput_tflops(logit(bs, 50304, h)), 1);
  }
  ctx.emit(th);

  ctx.section("Fig 20b — zoomed sweep over v in [14275, 14336]");
  TableWriter tz({"v", "pow2(v)", "TFLOP/s", "note"});
  for (std::int64_t v = 14275; v <= 14336; ++v) {
    const auto p2 = static_cast<std::int64_t>(
        largest_pow2_dividing(static_cast<std::uint64_t>(v)));
    if (v % 4 != 0 && v != 14275 && v % 16 != 3) continue;  // thin the rows
    tz.new_row()
        .cell(v)
        .cell(p2)
        .cell(ctx.sim().throughput_tflops(logit(bs, v, 2560)), 1)
        .cell(v % 64 == 0 ? "multiple of 64" : "");
  }
  ctx.emit(tz);

  ctx.section("the GPT-2 vocabulary example");
  const double odd = ctx.sim().throughput_tflops(logit(bs, 50257, 2560));
  const double pad = ctx.sim().throughput_tflops(logit(bs, 50304, 2560));
  std::cout << str_format(
      "v = 50257 (odd): %.1f TFLOP/s;  v = 50304 (64-aligned): %.1f "
      "TFLOP/s;  padding speedup %.2fx on the logit GEMM\n",
      odd, pad, pad / odd);
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig20_vocab) {
  using namespace codesign;
  reg.add({"fig20.vocab", "bench_fig20_vocab",
           "logit GEMM estimates over vocab and hidden sweeps",
           {benchlib::kSuiteFig, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             const std::int64_t bs = 4 * 2048;
             for (std::int64_t v = 8192; v <= 65536; v += 8192) {
               c.consume(c.sim().throughput_tflops(logit(bs, v, 2560)));
             }
             for (std::int64_t h = 768; h <= 12288; h += 768) {
               c.consume(c.sim().throughput_tflops(logit(bs, 50304, h)));
             }
             c.consume(c.sim().throughput_tflops(logit(bs, 50257, 2560)));
             c.consume(c.sim().throughput_tflops(logit(bs, 50304, 2560)));
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
