// google-benchmark microbenchmarks for the CPU execution substrate: GEMM
// algorithm variants, BMM, and the non-GEMM transformer operators. These
// measure the *real* kernels (kernels/), not the GPU model — they exist so
// changes to the substrate are performance-regression-tested.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "kernels/gemm_cpu.hpp"
#include "kernels/ops.hpp"

namespace codesign::kern {
namespace {

Tensor random2d(std::int64_t m, std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn({m, n}, rng, 1.0f);
}

void BM_GemmNaive(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = random2d(n, n, 1);
  const Tensor b = random2d(n, n, 2);
  Tensor c({n, n});
  GemmOptions opt;
  opt.algo = GemmAlgo::kNaive;
  for (auto _ : state) {
    gemm(a, b, c, opt);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlocked(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = random2d(n, n, 1);
  const Tensor b = random2d(n, n, 2);
  Tensor c({n, n});
  GemmOptions opt;
  opt.algo = GemmAlgo::kBlocked;
  for (auto _ : state) {
    gemm(a, b, c, opt);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmParallel(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = random2d(n, n, 1);
  const Tensor b = random2d(n, n, 2);
  Tensor c({n, n});
  GemmOptions opt;
  opt.algo = GemmAlgo::kParallel;
  for (auto _ : state) {
    gemm(a, b, c, opt);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmParallel)->Arg(256)->Arg(512);

void BM_GemmMisalignedShape(benchmark::State& state) {
  // The CPU analogue of the paper's shape sensitivity: an 80-wide inner
  // dimension vs a 64-wide one (cache-line effects are the CPU cousin of
  // the tensor-core granule).
  const std::int64_t k = state.range(0);
  const Tensor a = random2d(512, k, 3);
  const Tensor b = random2d(k, 512, 4);
  Tensor c({512, 512});
  GemmOptions opt;
  for (auto _ : state) {
    gemm(a, b, c, opt);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 512 * 512 * k);
}
BENCHMARK(BM_GemmMisalignedShape)->Arg(64)->Arg(80)->Arg(63);

void BM_Bmm(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  Rng rng(5);
  const Tensor a = Tensor::randn({batch, 128, 64}, rng);
  const Tensor b = Tensor::randn({batch, 64, 128}, rng);
  Tensor c({batch, 128, 128});
  for (auto _ : state) {
    bmm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * 2 * 128 * 128 * 64);
}
BENCHMARK(BM_Bmm)->Arg(8)->Arg(32);

void BM_Fp16EmulatedGemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = random2d(n, n, 6);
  const Tensor b = random2d(n, n, 7);
  Tensor c({n, n});
  GemmOptions opt;
  opt.fp16_inputs = true;
  opt.fp16_output = true;
  for (auto _ : state) {
    gemm(a, b, c, opt);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_Fp16EmulatedGemm)->Arg(128)->Arg(256);

void BM_Softmax(benchmark::State& state) {
  Rng rng(8);
  const Tensor x = Tensor::randn({32, 512, 512}, rng);
  for (auto _ : state) {
    Tensor y = softmax_lastdim(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_Softmax);

void BM_CausalSoftmax(benchmark::State& state) {
  Rng rng(9);
  const Tensor x = Tensor::randn({16, 256, 256}, rng);
  for (auto _ : state) {
    Tensor y = causal_softmax(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_CausalSoftmax);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(10);
  const std::int64_t h = state.range(0);
  const Tensor x = Tensor::randn({1024, h}, rng);
  const Tensor gamma = Tensor::full({h}, 1.0f);
  const Tensor beta = Tensor::zeros({h});
  for (auto _ : state) {
    Tensor y = layernorm_lastdim(x, gamma, beta);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_LayerNorm)->Arg(1024)->Arg(4096);

void BM_Gelu(benchmark::State& state) {
  Rng rng(11);
  const Tensor x = Tensor::randn({1 << 20}, rng);
  for (auto _ : state) {
    Tensor y = gelu(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_Gelu);

void BM_SwigluCombine(benchmark::State& state) {
  Rng rng(12);
  const Tensor gate = Tensor::randn({1 << 20}, rng);
  const Tensor up = Tensor::randn({1 << 20}, rng);
  for (auto _ : state) {
    Tensor y = swiglu_combine(gate, up);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * gate.numel());
}
BENCHMARK(BM_SwigluCombine);

}  // namespace
}  // namespace codesign::kern

BENCHMARK_MAIN();
