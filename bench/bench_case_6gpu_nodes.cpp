// Case study (§VII-A) — 6-GPU nodes (ORNL Summit): tensor-parallel degree
// equal to the node size is the common layout, but t = 6 conflicts with
// power-of-two-aligned hidden sizes. Reproduces the paper's three points:
//   1. 8-GPU-node architectures may be impossible on 6-GPU nodes;
//   2. even when possible they may be inefficient (h/t loses its pow2);
//   3. concessions for 6-GPU pretraining can break 2/4/8-GPU deployment.
#include "advisor/cluster.hpp"
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_case_6gpu_nodes",
    "Case study: TP feasibility/efficiency across node sizes (Summit)",
    {}};

void tp_table(const bench::BenchContext& ctx,
              const tfm::TransformerConfig& cfg,
              const std::vector<std::int64_t>& degrees) {
  TableWriter t({"t", "feasible", "h/t", "pow2(h/t)", "layer TFLOP/s",
                 "rules", "why not"});
  for (const auto& o : advisor::analyze_tp_options(cfg, ctx.sim(), degrees)) {
    t.new_row()
        .cell(o.t)
        .cell(o.feasibility.feasible ? "yes" : "NO")
        .cell(o.feasibility.feasible ? std::to_string(cfg.hidden_size / o.t)
                                     : std::string("-"))
        .cell(o.feasibility.feasible ? std::to_string(o.hidden_per_tp_pow2)
                                     : std::string("-"))
        .cell(o.feasibility.feasible ? str_format("%.1f", o.layer_tflops)
                                     : std::string("-"))
        .cell(o.feasibility.feasible ? (o.rules_pass ? "PASS" : "FAIL")
                                     : std::string("-"))
        .cell(o.feasibility.reason);
  }
  ctx.emit(t);
}

int body(bench::BenchContext& ctx) {
  ctx.banner("Case study: 6-GPU nodes (Summit)",
             "tensor-parallel feasibility and efficiency across node sizes");

  const std::vector<std::int64_t> degrees = {1, 2, 4, 6, 8};

  ctx.section("point 1 — GPT-3 2.7B (8-GPU-node shape) on a 6-GPU node");
  tp_table(ctx, tfm::model_by_name("gpt3-2.7b").with_vocab(50304), degrees);

  ctx.section("point 2 — a Summit-feasible 20B shape: h=6144, a=48, v pads "
              "to a multiple of 6·64");
  tfm::TransformerConfig summit =
      tfm::model_by_name("gpt-neox-20b").with_heads(48).with_vocab(50688);
  summit.name = "neox-20b-summit";
  tp_table(ctx, summit, degrees);

  ctx.section("point 3 — a shape tuned ONLY for t=6 breaks 4- and 8-GPU "
              "deployment (a = 42)");
  tfm::TransformerConfig sixonly =
      summit.with_heads(42).with_hidden(5376).with_vocab(50688);
  sixonly.name = "six-only-20b";
  tp_table(ctx, sixonly, degrees);

  ctx.section("portable hidden sizes near h = 6144 (efficient for all of "
              "t in {2,4,6,8})");
  TableWriter tp({"h", "h%192", "nearest to 6144"});
  for (const std::int64_t h :
       advisor::portable_hidden_sizes(summit, {2, 4, 6, 8}, 4)) {
    tp.new_row().cell(h).cell(h % 192).cell(
        h == 6144 ? "exact" : str_format("%+lld", static_cast<long long>(h - 6144)));
  }
  ctx.emit(tp);
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(case_6gpu_nodes) {
  using namespace codesign;
  reg.add({"case.six_gpu_nodes", "bench_case_6gpu_nodes",
           "TP option analysis for the three §VII-A configurations",
           {benchlib::kSuiteExt},
           [](benchlib::CaseContext& c) {
             const std::vector<std::int64_t> degrees = {1, 2, 4, 6, 8};
             tfm::TransformerConfig summit = tfm::model_by_name("gpt-neox-20b")
                                                 .with_heads(48)
                                                 .with_vocab(50688);
             summit.name = "neox-20b-summit";
             tfm::TransformerConfig sixonly =
                 summit.with_heads(42).with_hidden(5376).with_vocab(50688);
             sixonly.name = "six-only-20b";
             for (const auto& cfg :
                  {tfm::model_by_name("gpt3-2.7b").with_vocab(50304), summit,
                   sixonly}) {
               for (const auto& o :
                    advisor::analyze_tp_options(cfg, c.sim(), degrees)) {
                 c.consume(static_cast<std::int64_t>(o.feasibility.feasible));
                 if (o.feasibility.feasible) c.consume(o.layer_tflops);
               }
             }
             for (const std::int64_t h :
                  advisor::portable_hidden_sizes(summit, {2, 4, 6, 8}, 4)) {
               c.consume(h);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
