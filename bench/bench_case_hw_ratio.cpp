// Case study (§VIII) — GEMM kernels as a hardware-procurement proxy: the
// paper observes MLCommons BERT results show a consistent ~3:1 H100:A100
// ratio that matches kernel-level throughput. Runs a representative
// transformer kernel set across every GPU in the registry and reports the
// cross-device ratios.
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_case_hw_ratio",
    "Case study: kernel-level hardware comparison (§VIII)",
    {}};

std::vector<gemm::GemmProblem> representative_kernels() {
  std::vector<gemm::GemmProblem> kernels;
  tfm::TransformerConfig bert;
  bert.name = "bert-large";
  bert.hidden_size = 1024;
  bert.num_heads = 16;
  bert.num_layers = 24;
  bert.seq_len = 512;
  bert.microbatch = 32;
  bert.vocab_size = 30528;
  for (const auto& g : tfm::layer_gemms(bert)) kernels.push_back(g);
  for (const auto& g : tfm::layer_gemms(tfm::model_by_name("gpt3-2.7b-c2"))) {
    kernels.push_back(g);
  }
  return kernels;
}

int body(bench::BenchContext& ctx) {
  ctx.banner("Case study: kernel-level hardware comparison",
             "representative transformer GEMMs across devices (§VIII)");

  // Representative kernel set: the Table-II GEMMs of a BERT-large-scale
  // and a GPT-3-2.7B-scale layer.
  const std::vector<gemm::GemmProblem> kernels = representative_kernels();

  const std::vector<std::string> gpus = {"v100-16gb", "a100-40gb",
                                         "a100-80gb", "h100-sxm",
                                         "mi250x-gcd"};
  ctx.section("geometric-mean kernel throughput per device");
  TableWriter t({"gpu", "geomean TFLOP/s", "vs a100-40gb"});
  double a100_geo = 0.0;
  std::vector<double> geos;
  for (const auto& id : gpus) {
    const gemm::GemmSimulator sim = gemm::GemmSimulator::for_gpu(id);
    std::vector<double> tfs;
    for (const auto& k : kernels) tfs.push_back(sim.throughput_tflops(k));
    const double geo = geomean(tfs);
    geos.push_back(geo);
    if (id == "a100-40gb") a100_geo = geo;
  }
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    t.new_row()
        .cell(gpus[i])
        .cell(geos[i], 1)
        .cell(str_format("%.2fx", geos[i] / a100_geo));
  }
  ctx.emit(t);

  ctx.section("per-kernel H100 : A100 ratio");
  const gemm::GemmSimulator h100 = gemm::GemmSimulator::for_gpu("h100");
  const gemm::GemmSimulator a100 = gemm::GemmSimulator::for_gpu("a100");
  TableWriter tk({"kernel", "A100 TFLOP/s", "H100 TFLOP/s", "ratio"});
  for (const auto& k : kernels) {
    const double ta = a100.throughput_tflops(k);
    const double th = h100.throughput_tflops(k);
    tk.new_row()
        .cell(k.to_string())
        .cell(ta, 1)
        .cell(th, 1)
        .cell(str_format("%.2fx", th / ta));
  }
  ctx.emit(tk);
  std::cout << "(paper §VIII: MLCommons BERT shows a consistent ~3:1 "
               "H100:A100 ratio, matching kernel-level throughput — "
               "compute-bound kernels above land near 3.2x, memory-bound "
               "ones near the 2.2x bandwidth ratio)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(case_hw_ratio) {
  using namespace codesign;
  reg.add({"case.hw_ratio", "bench_case_hw_ratio",
           "geomean kernel throughput of the representative set per device",
           {benchlib::kSuiteExt, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             const auto kernels = representative_kernels();
             for (const char* id : {"v100-16gb", "a100-40gb", "a100-80gb",
                                    "h100-sxm", "mi250x-gcd"}) {
               const gemm::GemmSimulator sim = gemm::GemmSimulator::for_gpu(id);
               std::vector<double> tfs;
               for (const auto& k : kernels) {
                 tfs.push_back(sim.throughput_tflops(k));
               }
               c.consume(geomean(tfs));
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
