// Figs 8, 9, 34 — attention score and attention-over-value GEMM throughput
// at a FIXED ratio h/a = 64 (the efficient head dimension), sweeping h by
// varying the head count a. Shows (i) throughput decreasing with head
// count at fixed h, and (ii) the wave-quantization peaks and valleys whose
// period differs per series because each line steps by 64·a.
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig08_09_fixed_ratio",
    "Figs 8/9/34: attention GEMMs at fixed h/a = 64",
    {"b", "s", "head_dim", "heads"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Figures 8/9/34",
             "attention GEMMs at fixed h/a = 64, one series per head count");

  const std::int64_t head_dim = ctx.args().get_int("head_dim", 64);
  const std::int64_t b = ctx.args().get_int("b", 4);
  const std::int64_t s = ctx.args().get_int("s", 2048);
  const auto head_counts =
      ctx.args().get_int_list("heads", {8, 16, 32, 64, 128, 256, 512});

  for (const bool aov : {false, true}) {
    ctx.section(aov ? "Fig 9 — attention over value, h/a = 64"
                    : "Fig 8 — attention key-query score, h/a = 64");
    TableWriter t({"a", "h = 64a", "batch", "TFLOP/s", "waves", "bound"});
    for (const std::int64_t a : head_counts) {
      tfm::TransformerConfig cfg;
      cfg.name = "sweep";
      cfg.hidden_size = head_dim * a;
      cfg.num_heads = a;
      cfg.num_layers = 1;
      cfg.seq_len = s;
      cfg.microbatch = b;
      cfg.vocab_size = 50304;
      const auto problem = aov ? tfm::attention_over_value_bmm(cfg)
                               : tfm::attention_score_bmm(cfg);
      const auto est = ctx.sim().estimate(problem);
      t.new_row()
          .cell(a)
          .cell(cfg.hidden_size)
          .cell(problem.batch)
          .cell(est.tflops(), 1)
          .cell(est.wave_q.waves)
          .cell(gemm::bound_name(est.bound));
    }
    ctx.emit(t);
  }
  std::cout << "(at exactly h/a = 64 every series sits on the memory roof, "
               "so head counts converge; the decreasing-in-a ordering shows "
               "up in the per-a sweeps of bench_fig21_47_head_sweep where "
               "h/a varies)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig08_09_fixed_ratio) {
  using namespace codesign;
  reg.add({"fig08_09.fixed_ratio", "bench_fig08_09_fixed_ratio",
           "score + AOV BMMs at h/a = 64 across head counts",
           {benchlib::kSuiteFig, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             for (const bool aov : {false, true}) {
               for (const std::int64_t a : {8, 16, 32, 64, 128, 256, 512}) {
                 tfm::TransformerConfig cfg;
                 cfg.name = "sweep";
                 cfg.hidden_size = 64 * a;
                 cfg.num_heads = a;
                 cfg.num_layers = 1;
                 cfg.seq_len = 2048;
                 cfg.microbatch = 4;
                 cfg.vocab_size = 50304;
                 const auto problem = aov ? tfm::attention_over_value_bmm(cfg)
                                          : tfm::attention_score_bmm(cfg);
                 c.consume(c.sim().estimate(problem).tflops());
               }
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
