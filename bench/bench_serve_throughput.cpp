// bench_serve_throughput — closed-loop load generator for `codesign serve`.
//
// Starts an in-process Server on an ephemeral port, then drives it with K
// concurrent blocking clients (src/serve/client.hpp), each walking the
// same deterministic request mix: mostly GEMM estimates over a fixed shape
// grid (the shared EstimateCache path), plus explain and advise requests.
// Two timed phases over the identical mix:
//   * cold — fresh server, empty process-wide cache;
//   * warm — same requests again, estimates now all cache hits.
// Reported per phase: throughput (requests/s), client-observed
// p50/p95/p99 latency, and the fraction of requests missing the --slo-ms
// budget. The per-client FNV checksum over response payload bytes is the
// determinism control: every client must observe byte-identical payloads
// (the serving contract — the same bytes the one-shot CLI prints), so all
// client checksums must agree across phases, repeats, and thread counts.
// A final interleaved best-of pass runs the warm mix against a dark
// (tracing-off) server and asserts the request-trace ring costs under 5%.
//
// Flags: --clients= --shapes= --threads= --repeat= --slo-ms= --out=
// --smoke, plus the standard --gpu/--policy/--format (the simulated GPU is
// the request field; server-side simulators are built per request).
#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "benchlib/bench_report.hpp"
#include "benchlib/runner.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "serve/client.hpp"
#include "serve/fleet_client.hpp"
#include "serve/server.hpp"

namespace codesign::bench {
namespace {

const BenchSpec kSpec{
    "bench_serve_throughput",
    "codesign serve under closed-loop load: cold vs warm shared cache",
    {"clients", "shapes", "threads", "repeat", "slo-ms", "endpoints", "out",
     "smoke"}};

/// FNV-1a over the raw payload bytes (the byte-identity control).
std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// The deterministic request mix: one line per index, same for every
/// client. Estimates dominate (the cache-heavy path); every 8th slot is
/// an explain, every 16th an advise.
std::vector<std::string> build_mix(std::size_t shapes,
                                   const std::string& gpu) {
  std::vector<std::string> mix;
  mix.reserve(shapes);
  for (std::size_t i = 0; i < shapes; ++i) {
    // A fixed tile of tensor-core-relevant shapes: mixed alignment, a few
    // skinny and a few square problems, cycled deterministically.
    const long long m = 256 + 128 * static_cast<long long>(i % 7);
    const long long n = 512 + 256 * static_cast<long long>(i % 5);
    const long long k = 768 + 64 * static_cast<long long>(i % 11);
    if (i % 16 == 15) {
      mix.push_back(str_format(
          "{\"op\":\"advise\",\"model\":\"pythia-70m\",\"gpu\":\"%s\"}",
          gpu.c_str()));
    } else if (i % 8 == 7) {
      mix.push_back(str_format(
          "{\"op\":\"explain\",\"m\":%lld,\"n\":%lld,\"k\":%lld,"
          "\"gpu\":\"%s\"}",
          m, n, k, gpu.c_str()));
    } else {
      mix.push_back(str_format(
          "{\"op\":\"estimate\",\"m\":%lld,\"n\":%lld,\"k\":%lld,"
          "\"gpu\":\"%s\"}",
          m, n, k, gpu.c_str()));
    }
  }
  return mix;
}

struct ClientResult {
  std::vector<double> latencies_ms;  ///< one per request, issue order
  std::uint64_t checksum = benchlib::kChecksumSeed;
  std::string error;  ///< non-empty on any non-ok response
};

struct PhaseResult {
  double seconds = 0.0;
  std::size_t requests = 0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::vector<double> sorted_ms;  ///< all client latencies, ascending
  std::uint64_t checksum = 0;  ///< every client's (they must agree)
  bool checksums_agree = true;

  /// Fraction of requests slower than `slo_ms` (0 when no SLO).
  double slo_miss_fraction(double slo_ms) const {
    if (slo_ms <= 0.0 || sorted_ms.empty()) return 0.0;
    const auto first_miss =
        std::upper_bound(sorted_ms.begin(), sorted_ms.end(), slo_ms);
    return static_cast<double>(sorted_ms.end() - first_miss) /
           static_cast<double>(sorted_ms.size());
  }
};

/// Fold per-client results into the phase summary (percentiles + the
/// byte-identity cross-check). Shared by the single-endpoint and fleet
/// phase runners.
PhaseResult collect_phase(const std::vector<ClientResult>& results,
                          std::chrono::steady_clock::time_point t0) {
  PhaseResult phase;
  phase.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::vector<double> all;
  for (const ClientResult& r : results) {
    CODESIGN_CHECK(r.error.empty(), "serve bench client failed: " + r.error);
    all.insert(all.end(), r.latencies_ms.begin(), r.latencies_ms.end());
  }
  phase.requests = all.size();
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    phase.p50_ms = all[all.size() / 2];
    phase.p95_ms = all[(all.size() * 95) / 100];
    phase.p99_ms = all[(all.size() * 99) / 100];
  }
  phase.sorted_ms = std::move(all);
  phase.checksum = results.front().checksum;
  for (const ClientResult& r : results) {
    phase.checksums_agree =
        phase.checksums_agree && r.checksum == phase.checksum;
  }
  return phase;
}

/// One client's walk over the mix (rotated by client index so the wire
/// order differs while the request set does not), blocking on each
/// response before the next. Checksums fold in mix order so every
/// client's accumulator matches. `call` is the transport: a ServeClient
/// or FleetClient bound outside.
template <typename CallFn>
void walk_mix(const std::vector<std::string>& mix, std::size_t c,
              CallFn&& call, ClientResult& out) {
  std::vector<std::uint64_t> folds(mix.size(), benchlib::kChecksumSeed);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const std::size_t slot = (i + c) % mix.size();
    const auto r0 = std::chrono::steady_clock::now();
    const serve::Response r = call(mix[slot]);
    out.latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - r0)
                                   .count());
    if (!r.ok() || r.code != 0) {
      out.error = str_format("slot %zu: status code %d", slot, r.code);
      return;
    }
    folds[slot] = fnv1a(benchlib::kChecksumSeed, r.payload);
  }
  for (const std::uint64_t f : folds) out.checksum ^= f;
}

/// One closed-loop phase: `clients` threads, each sending the full mix,
/// blocking on each response before sending the next.
PhaseResult run_phase(int port, std::size_t clients,
                      const std::vector<std::string>& mix) {
  std::vector<ClientResult> results(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientResult& out = results[c];
      try {
        serve::ServeClient client("127.0.0.1", port);
        walk_mix(mix, c, [&](const std::string& line) {
          return client.call(line);
        }, out);
      } catch (const std::exception& e) {
        out.error = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return collect_phase(results, t0);
}

/// The fleet flavour of run_phase: each client thread drives its own
/// FleetClient over every replica in `ports` (seeded by client index, so
/// retry schedules are reproducible run to run). Resilience counters are
/// summed across clients.
struct FleetPhase {
  PhaseResult phase;
  serve::FleetStats stats;
};

FleetPhase run_fleet_phase(const std::vector<int>& ports,
                           std::size_t clients,
                           const std::vector<std::string>& mix) {
  std::vector<ClientResult> results(clients);
  std::vector<serve::FleetStats> stats(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientResult& out = results[c];
      try {
        serve::FleetOptions fo;
        for (const int port : ports) fo.endpoints.push_back({"127.0.0.1", port});
        fo.backoff_base_ms = 1;
        fo.backoff_max_ms = 50;
        fo.seed = 1 + static_cast<std::uint64_t>(c);
        serve::FleetClient client(std::move(fo));
        walk_mix(mix, c, [&](const std::string& line) {
          return client.call(line);
        }, out);
        stats[c] = client.stats();
      } catch (const std::exception& e) {
        out.error = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  FleetPhase fleet;
  fleet.phase = collect_phase(results, t0);
  for (const serve::FleetStats& s : stats) {
    fleet.stats.calls += s.calls;
    fleet.stats.attempts += s.attempts;
    fleet.stats.retries += s.retries;
    fleet.stats.failovers += s.failovers;
    fleet.stats.io_errors += s.io_errors;
    fleet.stats.overloaded_seen += s.overloaded_seen;
    fleet.stats.breaker_trips += s.breaker_trips;
    fleet.stats.reconnects += s.reconnects;
  }
  return fleet;
}

/// The batched-advisory phase: one advise_many request carrying `tuples`
/// (model, gpu) pairs cycled over a small model set, timed against the
/// same tuples sent as scalar advise calls. The response array element i
/// must be byte-identical to scalar payload i; the checksum folds each
/// element under an index-salted seed so duplicate models cannot XOR-cancel
/// each other out of the accumulator.
struct AdviseManyResult {
  double batched_s = 0.0;        ///< one advise_many round trip
  double scalar_s = 0.0;         ///< `tuples` scalar advise round trips
  std::size_t tuples = 0;
  std::uint64_t checksum = benchlib::kChecksumSeed;
  bool elements_match_scalar = true;
};

AdviseManyResult run_advise_many_phase(int port, std::size_t tuples,
                                       const std::string& gpu) {
  static const char* kModels[] = {"pythia-70m", "pythia-160m", "gpt3-125m",
                                  "gpt3-350m"};
  constexpr std::size_t kNumModels = sizeof(kModels) / sizeof(kModels[0]);

  std::string items = "\"items\":[";
  for (std::size_t i = 0; i < tuples; ++i) {
    if (i != 0) items += ',';
    items += str_format("{\"model\":\"%s\",\"gpu\":\"%s\"}",
                        kModels[i % kNumModels], gpu.c_str());
  }
  items += ']';

  AdviseManyResult out;
  out.tuples = tuples;
  serve::ServeClient client("127.0.0.1", port);

  const auto b0 = std::chrono::steady_clock::now();
  const serve::Response many = client.call_op("advise_many", items);
  out.batched_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - b0)
                      .count();
  CODESIGN_CHECK(many.ok() && many.code == 0,
                 "advise_many request failed: " + many.error);

  const json::Value doc = json::Value::parse(many.payload);
  CODESIGN_CHECK(doc.is_array(), "advise_many payload is not a JSON array");
  const auto& elems = doc.as_array();
  CODESIGN_CHECK(elems.size() == tuples,
                 "advise_many returned the wrong number of elements");

  const auto s0 = std::chrono::steady_clock::now();
  std::vector<std::string> scalar(tuples);
  for (std::size_t i = 0; i < tuples; ++i) {
    const serve::Response one = client.call_op(
        "advise", str_format("\"model\":\"%s\",\"gpu\":\"%s\"",
                             kModels[i % kNumModels], gpu.c_str()));
    CODESIGN_CHECK(one.ok() && one.code == 0,
                   "scalar advise request failed: " + one.error);
    scalar[i] = one.payload;
  }
  out.scalar_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - s0)
                     .count();

  for (std::size_t i = 0; i < tuples; ++i) {
    const std::string& e = elems[i].as_string();
    out.elements_match_scalar = out.elements_match_scalar && e == scalar[i];
    out.checksum ^=
        fnv1a(benchlib::kChecksumSeed ^ static_cast<std::uint64_t>(i), e);
  }
  client.close();
  return out;
}

int body(BenchContext& ctx) {
  const bool smoke = ctx.args().get_bool("smoke", false);
  const auto clients = static_cast<std::size_t>(
      ctx.args().get_int("clients", smoke ? 2 : 8));
  const auto shapes = static_cast<std::size_t>(
      ctx.args().get_int("shapes", smoke ? 16 : 64));
  const auto threads = static_cast<std::size_t>(
      ctx.args().get_int("threads", smoke ? 2 : 4));
  const int repeat =
      static_cast<int>(ctx.args().get_int("repeat", smoke ? 1 : 3));
  const double slo_ms = ctx.args().get_double("slo-ms", 25.0);
  const std::string out_path =
      ctx.args().get_string("out", "BENCH_serve.json");

  ctx.banner("serve throughput",
             "closed-loop clients against an in-process codesign serve: "
             "admission-controlled worker pool + shared estimate cache");

  const std::vector<std::string> mix = build_mix(shapes, ctx.gpu().id);

  serve::ServerOptions options;
  options.port = 0;  // ephemeral
  options.threads = threads;
  options.queue_capacity = clients * 2;  // closed-loop: never overloads
  serve::Server server(options);
  server.start();

  // Phase 1 (cold): empty process-wide cache. Phase 2 (warm): the same
  // mix again — every estimate is now a shared-cache hit. Extra repeats
  // re-run the warm phase; the best wall time is reported.
  const PhaseResult cold = run_phase(server.port(), clients, mix);
  PhaseResult warm = run_phase(server.port(), clients, mix);
  for (int r = 1; r < repeat; ++r) {
    const PhaseResult again = run_phase(server.port(), clients, mix);
    warm.checksums_agree =
        warm.checksums_agree && again.checksums_agree &&
        again.checksum == warm.checksum;
    if (again.seconds < warm.seconds) {
      const bool agree = warm.checksums_agree;
      warm = again;
      warm.checksums_agree = agree;
    }
  }
  // Batched advisory: one advise_many carrying 64 (model, gpu) tuples vs
  // the same tuples as scalar advise calls. Estimates inside are warm
  // shared-cache hits by now for the repeated models; repeats keep the
  // best batched time and every repeat must reproduce the same checksum.
  const std::size_t advise_tuples = 64;
  AdviseManyResult amany =
      run_advise_many_phase(server.port(), advise_tuples, ctx.gpu().id);
  bool amany_stable = amany.elements_match_scalar;
  for (int r = 1; r < repeat; ++r) {
    const AdviseManyResult again =
        run_advise_many_phase(server.port(), advise_tuples, ctx.gpu().id);
    amany_stable = amany_stable && again.elements_match_scalar &&
                   again.checksum == amany.checksum;
    if (again.batched_s < amany.batched_s) {
      const std::uint64_t cs = amany.checksum;
      amany = again;
      amany.checksum = cs;
    }
  }

  // Ring overhead: the identical warm mix against a dark server (tracing
  // off) vs the traced server above, interleaved best-of so machine drift
  // hits both sides equally. The request ring + phase spans must cost
  // under 5% of warm round-trip throughput.
  serve::ServerOptions dark_options = options;
  dark_options.port = 0;
  dark_options.trace.enabled = false;
  serve::Server dark(dark_options);
  dark.start();
  (void)run_phase(dark.port(), clients, mix);  // warm the dark cache
  double off_best_s = 0.0, on_best_s = 0.0;
  std::uint64_t traced_checksum = 0, dark_checksum = 0;
  for (int r = 0; r < std::max(repeat, 2); ++r) {
    const PhaseResult off = run_phase(dark.port(), clients, mix);
    const PhaseResult on = run_phase(server.port(), clients, mix);
    if (r == 0 || off.seconds < off_best_s) off_best_s = off.seconds;
    if (r == 0 || on.seconds < on_best_s) on_best_s = on.seconds;
    dark_checksum = off.checksum;
    traced_checksum = on.checksum;
  }
  dark.request_drain();
  dark.join();
  const double tail_overhead_pct = 100.0 * (on_best_s / off_best_s - 1.0);
  const bool tracing_byte_identical = traced_checksum == dark_checksum;
  // Sub-2ms absolute deltas are measurement noise on short runs, not ring
  // cost; only flag a relative regression that is also a real slowdown.
  const bool tail_overhead_ok =
      tail_overhead_pct < 5.0 || (on_best_s - off_best_s) * 1e3 < 2.0;
  std::cout << str_format(
      "tracing ring overhead (warm, best-of-%d): %+.2f%% | payloads "
      "byte-identical tracing on vs off: %s\n",
      std::max(repeat, 2), tail_overhead_pct,
      tracing_byte_identical ? "yes" : "NO");

  // Fleet path: the identical warm mix through the resilient FleetClient
  // over --endpoints replicas with no faults injected. The resilience
  // layer must be free on the happy path, so the fleet pass is gated
  // against the single-endpoint ServeClient baseline with the same
  // interleaved best-of noise gate the tracing ring uses.
  const auto n_endpoints = static_cast<std::size_t>(
      ctx.args().get_int("endpoints", smoke ? 2 : 3));
  CODESIGN_CHECK(n_endpoints >= 1, "--endpoints must be at least 1");
  std::vector<std::unique_ptr<serve::Server>> replicas;
  std::vector<int> fleet_ports{server.port()};  // replica 0: the warm server
  for (std::size_t i = 1; i < n_endpoints; ++i) {
    serve::ServerOptions ro = options;
    ro.port = 0;
    replicas.push_back(std::make_unique<serve::Server>(ro));
    replicas.back()->start();
    fleet_ports.push_back(replicas.back()->port());
  }
  (void)run_fleet_phase(fleet_ports, clients, mix);  // warm the new replicas
  double fleet_best_s = 0.0, single_best_s = 0.0;
  FleetPhase fleet_best;
  serve::FleetStats fleet_totals;
  bool fleet_byte_identical = true;
  for (int r = 0; r < std::max(repeat, 2); ++r) {
    const PhaseResult single = run_phase(server.port(), clients, mix);
    const FleetPhase pass = run_fleet_phase(fleet_ports, clients, mix);
    if (r == 0 || single.seconds < single_best_s) single_best_s = single.seconds;
    if (r == 0 || pass.phase.seconds < fleet_best_s) {
      fleet_best_s = pass.phase.seconds;
      fleet_best = pass;
    }
    fleet_totals.calls += pass.stats.calls;
    fleet_totals.attempts += pass.stats.attempts;
    fleet_totals.retries += pass.stats.retries;
    fleet_totals.failovers += pass.stats.failovers;
    fleet_totals.breaker_trips += pass.stats.breaker_trips;
    fleet_byte_identical = fleet_byte_identical && single.checksums_agree &&
                           pass.phase.checksums_agree &&
                           pass.phase.checksum == warm.checksum;
  }
  for (auto& replica : replicas) {
    replica->request_drain();
    replica->join();
  }
  const double fleet_overhead_pct =
      100.0 * (fleet_best_s / single_best_s - 1.0);
  const bool fleet_overhead_ok =
      fleet_overhead_pct < 5.0 || (fleet_best_s - single_best_s) * 1e3 < 2.0;

  TableWriter tf({"fleet path (warm, no faults)", "replicas", "requests",
                  "time", "req/s", "p99", "retries", "failovers",
                  "breaker trips"});
  tf.new_row()
      .cell(str_format("FleetClient x%zu clients", clients))
      .cell(static_cast<std::int64_t>(n_endpoints))
      .cell(static_cast<std::int64_t>(fleet_best.phase.requests))
      .cell(human_time(fleet_best_s))
      .cell(static_cast<double>(fleet_best.phase.requests) / fleet_best_s, 0)
      .cell(human_time(fleet_best.phase.p99_ms / 1e3))
      .cell(static_cast<std::int64_t>(fleet_totals.retries))
      .cell(static_cast<std::int64_t>(fleet_totals.failovers))
      .cell(static_cast<std::int64_t>(fleet_totals.breaker_trips));
  ctx.emit(tf);
  std::cout << str_format(
      "fleet vs single-endpoint overhead (warm, best-of-%d): %+.2f%% | "
      "payloads byte-identical fleet vs single: %s\n",
      std::max(repeat, 2), fleet_overhead_pct,
      fleet_byte_identical ? "yes" : "NO");

  const gemm::CacheStats cache_stats = server.cache()->stats();

  const bool deterministic =
      cold.checksums_agree && warm.checksums_agree &&
      cold.checksum == warm.checksum && amany_stable;
  const double cold_rps = static_cast<double>(cold.requests) / cold.seconds;
  const double warm_rps = static_cast<double>(warm.requests) / warm.seconds;

  TableWriter t({"phase", "clients", "requests", "time", "req/s", "p50",
                 "p95", "p99", "slo miss"});
  const auto row = [&](const std::string& name, const PhaseResult& p) {
    t.new_row()
        .cell(name)
        .cell(static_cast<std::int64_t>(clients))
        .cell(static_cast<std::int64_t>(p.requests))
        .cell(human_time(p.seconds))
        .cell(static_cast<double>(p.requests) / p.seconds, 0)
        .cell(human_time(p.p50_ms / 1e3))
        .cell(human_time(p.p95_ms / 1e3))
        .cell(human_time(p.p99_ms / 1e3))
        .cell(str_format("%.1f%%", 100.0 * p.slo_miss_fraction(slo_ms)));
  };
  row("cold cache", cold);
  row("warm cache", warm);
  ctx.emit(t);
  std::cout << str_format("slo miss = fraction of requests over %.1f ms "
                          "(--slo-ms)\n",
                          slo_ms);

  TableWriter ta({"advisory path", "tuples", "time", "advises/s"});
  ta.new_row()
      .cell("advise_many (1 request)")
      .cell(static_cast<std::int64_t>(amany.tuples))
      .cell(human_time(amany.batched_s))
      .cell(static_cast<double>(amany.tuples) / amany.batched_s, 0);
  ta.new_row()
      .cell("scalar advise x64")
      .cell(static_cast<std::int64_t>(amany.tuples))
      .cell(human_time(amany.scalar_s))
      .cell(static_cast<double>(amany.tuples) / amany.scalar_s, 0);
  ctx.emit(ta);
  std::cout << str_format(
      "advise_many elements byte-identical to scalar advise: %s | batched "
      "vs scalar %.2fx\n",
      amany_stable ? "yes" : "NO", amany.scalar_s / amany.batched_s);

  std::cout << str_format(
      "payloads byte-identical across clients/phases: %s | warm/cold "
      "throughput %.2fx | cache: %llu hits / %llu misses (%.1f%% hit "
      "rate)\n",
      deterministic ? "yes" : "NO", warm_rps / cold_rps,
      static_cast<unsigned long long>(cache_stats.hits),
      static_cast<unsigned long long>(cache_stats.misses),
      100.0 * cache_stats.hit_rate());

  // JSON trajectory record (schema: codesign.bench_report).
  benchlib::BenchReport report;
  report.run.suite = "trajectory";
  report.run.filter = "serve_throughput";
  report.run.gpu = ctx.gpu().id;
  report.run.policy = benchlib::tile_policy_name(ctx.sim().policy());
  report.run.warmup = 0;
  report.run.repeats = repeat;
  report.run.threads = threads;
  report.host = benchlib::HostFingerprint::current();
  report.context["bench"] = "serve_throughput";
  report.context["clients"] = std::to_string(clients);
  report.context["requests_per_client"] = std::to_string(shapes);
  report.context["server_threads"] = std::to_string(threads);
  report.context["deterministic"] = deterministic ? "true" : "false";
  report.context["cold_rps"] = str_format("%.1f", cold_rps);
  report.context["warm_rps"] = str_format("%.1f", warm_rps);
  report.context["warm_vs_cold_speedup"] =
      str_format("%.3f", warm_rps / cold_rps);
  report.context["cold_p95_ms"] = str_format("%.3f", cold.p95_ms);
  report.context["warm_p95_ms"] = str_format("%.3f", warm.p95_ms);
  report.context["cold_p99_ms"] = str_format("%.3f", cold.p99_ms);
  report.context["warm_p99_ms"] = str_format("%.3f", warm.p99_ms);
  report.context["slo_ms"] = str_format("%.3f", slo_ms);
  report.context["cold_slo_miss_fraction"] =
      str_format("%.4f", cold.slo_miss_fraction(slo_ms));
  report.context["warm_slo_miss_fraction"] =
      str_format("%.4f", warm.slo_miss_fraction(slo_ms));
  report.context["tail_overhead_pct"] =
      str_format("%.2f", tail_overhead_pct);
  report.context["tracing_byte_identical"] =
      tracing_byte_identical ? "true" : "false";
  report.context["fleet_endpoints"] = std::to_string(n_endpoints);
  report.context["fleet_overhead_pct"] =
      str_format("%.2f", fleet_overhead_pct);
  report.context["fleet_byte_identical"] =
      fleet_byte_identical ? "true" : "false";
  report.context["fleet_p99_ms"] =
      str_format("%.3f", fleet_best.phase.p99_ms);
  report.context["fleet_retries"] = std::to_string(fleet_totals.retries);
  report.context["fleet_failovers"] = std::to_string(fleet_totals.failovers);
  report.context["fleet_breaker_trips"] =
      std::to_string(fleet_totals.breaker_trips);
  report.context["cache_hits"] = std::to_string(cache_stats.hits);
  report.context["cache_misses"] = std::to_string(cache_stats.misses);
  report.context["cache_hit_rate"] =
      str_format("%.4f", cache_stats.hit_rate());
  const auto add_case = [&](const std::string& name, const PhaseResult& p) {
    benchlib::CaseStats s;
    s.name = name;
    s.bench = "bench_serve_throughput";
    s.suites = {benchlib::kSuitePerf};
    s.samples_ms = {p.seconds * 1e3};
    s.checksum = p.checksum;
    s.checksum_stable = deterministic;
    benchlib::summarize(s);
    report.cases.push_back(std::move(s));
  };
  add_case("serve.coldcache_burst", cold);
  add_case("serve.warmcache_burst", warm);
  report.context["advise_many_tuples"] = std::to_string(amany.tuples);
  report.context["advise_many_vs_scalar_speedup"] =
      str_format("%.3f", amany.scalar_s / amany.batched_s);
  report.context["advise_many_matches_scalar"] =
      amany_stable ? "true" : "false";
  {
    benchlib::CaseStats s;
    s.name = "serve.advise_many_batch";
    s.bench = "bench_serve_throughput";
    s.suites = {benchlib::kSuitePerf};
    s.samples_ms = {amany.batched_s * 1e3};
    s.checksum = amany.checksum;
    s.checksum_stable = amany_stable;
    benchlib::summarize(s);
    report.cases.push_back(std::move(s));
  }
  {
    benchlib::CaseStats s;
    s.name = "serve.tail_overhead";
    s.bench = "bench_serve_throughput";
    s.suites = {benchlib::kSuitePerf};
    s.samples_ms = {on_best_s * 1e3};
    s.checksum = traced_checksum;
    s.checksum_stable = tracing_byte_identical;
    benchlib::summarize(s);
    report.cases.push_back(std::move(s));
  }
  report.write_file(out_path);
  std::cout << "wrote " << out_path << "\n";

  server.request_drain();
  server.join();

  if (!deterministic || !tracing_byte_identical || !fleet_byte_identical) {
    std::cerr << "FAIL: response payloads differ across clients/phases\n";
    return 1;
  }
  if (!tail_overhead_ok) {
    std::cerr << str_format(
        "FAIL: tracing ring overhead %.2f%% exceeds the 5%% budget "
        "(tracing on %.3f s vs off %.3f s, warm best-of runs)\n",
        tail_overhead_pct, on_best_s, off_best_s);
    return 1;
  }
  if (!fleet_overhead_ok) {
    std::cerr << str_format(
        "FAIL: FleetClient no-fault overhead %.2f%% exceeds the 5%% budget "
        "(fleet %.3f s vs single endpoint %.3f s, warm best-of runs)\n",
        fleet_overhead_pct, fleet_best_s, single_best_s);
    return 1;
  }
  if (warm_rps < cold_rps) {
    // Not fatal for the figure output, but worth a loud line: the shared
    // cache should make the second pass at least as fast as the first.
    std::cerr << "WARNING: warm throughput below cold ("
              << str_format("%.1f < %.1f req/s", warm_rps, cold_rps)
              << ")\n";
  }
  return 0;
}

}  // namespace
}  // namespace codesign::bench

CODESIGN_BENCH_CASES(serve_throughput) {
  using namespace codesign;
  reg.add({"serve.request_roundtrip", "bench_serve_throughput",
           "in-process serve: 2 clients x estimate/explain mix, cold + warm "
           "shared cache",
           {benchlib::kSuitePerf},
           [](benchlib::CaseContext& c) {
             serve::ServerOptions options;
             options.port = 0;
             options.threads = 2;
             options.queue_capacity = 8;
             serve::Server server(options);
             server.start();
             const std::vector<std::string> mix =
                 bench::build_mix(12, c.gpu().id);
             for (int round = 0; round < 2; ++round) {  // cold, then warm
               const bench::PhaseResult p =
                   bench::run_phase(server.port(), 2, mix);
               c.consume(static_cast<double>(p.checksum));
               c.consume(static_cast<std::int64_t>(p.requests));
             }
             server.request_drain();
             server.join();
           }});
  reg.add({"serve.tail_overhead", "bench_serve_throughput",
           "warm request mix with the tracing ring live, tail round trip; "
           "payload checksums must match a dark (tracing-off) server",
           {benchlib::kSuitePerf},
           [](benchlib::CaseContext& c) {
             const std::vector<std::string> mix =
                 bench::build_mix(12, c.gpu().id);
             const auto run_config = [&](bool tracing) {
               serve::ServerOptions options;
               options.port = 0;
               options.threads = 2;
               options.queue_capacity = 8;
               options.trace.enabled = tracing;
               serve::Server server(options);
               server.start();
               (void)bench::run_phase(server.port(), 2, mix);  // warm
               const bench::PhaseResult p =
                   bench::run_phase(server.port(), 2, mix);
               std::uint64_t tail_records = 0;
               if (tracing) {
                 serve::ServeClient client("127.0.0.1", server.port());
                 const serve::Response t =
                     client.call_op("tail", "\"n\":8,\"filter\":\"slow\"");
                 CODESIGN_CHECK(t.ok(), "tail failed: " + t.error);
                 std::string doc = t.payload;
                 while (!doc.empty() && doc.back() == '\n') doc.pop_back();
                 tail_records = json::Value::parse(doc).as_array().size();
                 client.close();
               }
               server.request_drain();
               server.join();
               // Only payload checksums and deterministic counts feed the
               // case accumulator — never wall-clock values.
               c.consume(static_cast<double>(p.checksum));
               c.consume(static_cast<std::int64_t>(p.requests));
               c.consume(static_cast<std::int64_t>(tail_records));
               return p.checksum;
             };
             const std::uint64_t dark = run_config(false);
             const std::uint64_t lit = run_config(true);
             CODESIGN_CHECK(dark == lit,
                            "payloads diverged with tracing enabled");
           }});
  reg.add({"serve.fleet_failover", "bench_serve_throughput",
           "3-replica fleet, one replica drained between passes: the "
           "FleetClient mix must stay green via failover with "
           "byte-identical payloads (p99 under a downed replica)",
           {benchlib::kSuitePerf},
           [](benchlib::CaseContext& c) {
             const std::vector<std::string> mix =
                 bench::build_mix(12, c.gpu().id);
             serve::ServerOptions options;
             options.port = 0;
             options.threads = 2;
             options.queue_capacity = 8;
             std::vector<std::unique_ptr<serve::Server>> servers;
             std::vector<int> ports;
             for (int i = 0; i < 3; ++i) {
               servers.push_back(std::make_unique<serve::Server>(options));
               servers.back()->start();
               ports.push_back(servers.back()->port());
             }
             const bench::FleetPhase up =
                 bench::run_fleet_phase(ports, 2, mix);
             // Down the middle replica; every refused connect must fail
             // over to a live sibling without surfacing an error.
             servers[1]->request_drain();
             servers[1]->join();
             const bench::FleetPhase down =
                 bench::run_fleet_phase(ports, 2, mix);
             CODESIGN_CHECK(up.phase.checksums_agree &&
                                down.phase.checksums_agree &&
                                up.phase.checksum == down.phase.checksum,
                            "fleet payloads diverged with a downed replica");
             CODESIGN_CHECK(down.stats.failovers >= 1,
                            "downed replica never triggered a failover");
             c.consume(static_cast<double>(up.phase.checksum));
             c.consume(static_cast<double>(down.phase.checksum));
             c.consume(static_cast<std::int64_t>(down.phase.requests));
             servers[0]->request_drain();
             servers[0]->join();
             servers[2]->request_drain();
             servers[2]->join();
           }});
  reg.add({"serve.advise_many_batch", "bench_serve_throughput",
           "one advise_many request with 64 (model, gpu) tuples, "
           "byte-checked against 64 scalar advises",
           {benchlib::kSuitePerf},
           [](benchlib::CaseContext& c) {
             serve::ServerOptions options;
             options.port = 0;
             options.threads = 2;
             options.queue_capacity = 8;
             serve::Server server(options);
             server.start();
             const bench::AdviseManyResult r =
                 bench::run_advise_many_phase(server.port(), 64, c.gpu().id);
             CODESIGN_CHECK(r.elements_match_scalar,
                            "advise_many payload diverged from scalar advise");
             c.consume(static_cast<double>(r.checksum));
             c.consume(static_cast<std::int64_t>(r.tuples));
             server.request_drain();
             server.join();
           }});
}

CODESIGN_BENCH_MAIN(codesign::bench::kSpec, codesign::bench::body);
