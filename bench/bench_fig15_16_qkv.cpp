// Figs 15/16 (appendix) — the attention QKV transform (b·s, h) x (h, 3h/t)
// swept over the hidden size (Fig 15) and across tensor-parallel degrees
// (Fig 16).
#include "bench_common.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig15_16_qkv",
    "Figs 15/16: QKV transform GEMM vs h, across TP degrees",
    {"b", "s", "tp"}};

tfm::TransformerConfig cfg_for(std::int64_t h, std::int64_t t, std::int64_t b,
                               std::int64_t s) {
  tfm::TransformerConfig cfg;
  cfg.name = "sweep";
  cfg.hidden_size = h;
  cfg.num_heads = std::max<std::int64_t>(t, 1);  // a is irrelevant to QKV
  cfg.num_layers = 1;
  cfg.seq_len = s;
  cfg.microbatch = b;
  cfg.vocab_size = 50304 * 3;  // divisible by t in {1,2,4,6,8} when even
  cfg.tensor_parallel = t;
  return cfg;
}

int body(bench::BenchContext& ctx) {
  ctx.banner("Figures 15/16", "QKV transform GEMM vs h, across TP degrees");

  const std::int64_t b = ctx.args().get_int("b", 4);
  const std::int64_t s = ctx.args().get_int("s", 2048);
  const auto tp = ctx.args().get_int_list("tp", {1, 2, 4, 8});

  ctx.section("Fig 15 — QKV transform vs hidden size (t = 1)");
  TableWriter t15({"h", "pow2(h)", "TFLOP/s", "bound", "waves"});
  for (std::int64_t h = 1024; h <= 12288; h += 512) {
    const auto est = ctx.sim().estimate(tfm::qkv_gemm(cfg_for(h, 1, b, s)));
    t15.new_row()
        .cell(h)
        .cell(static_cast<std::int64_t>(
            largest_pow2_dividing(static_cast<std::uint64_t>(h))))
        .cell(est.tflops(), 1)
        .cell(gemm::bound_name(est.bound))
        .cell(est.wave_q.waves);
  }
  ctx.emit(t15);

  ctx.section("Fig 16 — QKV transform with tensor parallelism (h sweep)");
  TableWriter t16({"h", "t", "h/t", "pow2(h/t)", "n = 3h/t", "TFLOP/s"});
  for (std::int64_t h = 2048; h <= 8192; h += 2048) {
    for (const std::int64_t t : tp) {
      if (h % t != 0) continue;
      const auto cfg = cfg_for(h, t, b, s);
      const auto est = ctx.sim().estimate(tfm::qkv_gemm(cfg));
      t16.new_row()
          .cell(h)
          .cell(t)
          .cell(h / t)
          .cell(static_cast<std::int64_t>(
              largest_pow2_dividing(static_cast<std::uint64_t>(h / t))))
          .cell(3 * h / t)
          .cell(est.tflops(), 1);
    }
  }
  ctx.emit(t16);
  std::cout << "(larger t shrinks the per-GPU GEMM and its efficiency — the "
               "paper's \"t as small as possible\" rule)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig15_16_qkv) {
  using namespace codesign;
  reg.add({"fig15_16.qkv", "bench_fig15_16_qkv",
           "QKV GEMM estimates vs h and tensor-parallel degree",
           {benchlib::kSuiteFig},
           [](benchlib::CaseContext& c) {
             for (std::int64_t h = 1024; h <= 12288; h += 512) {
               c.consume(
                   c.sim().estimate(tfm::qkv_gemm(cfg_for(h, 1, 4, 2048)))
                       .tflops());
             }
             for (std::int64_t h = 2048; h <= 8192; h += 2048) {
               for (const std::int64_t t : {1, 2, 4, 8}) {
                 if (h % t != 0) continue;
                 c.consume(
                     c.sim().estimate(tfm::qkv_gemm(cfg_for(h, t, 4, 2048)))
                         .tflops());
               }
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
