#include "bench_common.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"

namespace codesign::bench {

namespace {

// Flags every bench binary accepts, independent of its BenchSpec.
const char* const kStandardFlags[] = {"gpu", "policy", "format", "help"};

std::string usage_text(const BenchSpec& spec) {
  std::string name = spec.name.empty() ? "bench" : spec.name;
  std::string out = "usage: " + name + " [--gpu=<id>] [--policy=auto|fixed]"
                    " [--format=ascii|csv|markdown]";
  for (const auto& f : spec.flags) out += " [--" + f + "=<v>]";
  if (!spec.summary.empty()) out += "\n  " + spec.summary;
  return out;
}

void reject_unknown_flags(const CliArgs& args, const BenchSpec& spec) {
  std::vector<std::string> unknown;
  for (const auto& name : args.flag_names()) {
    const bool standard =
        std::find(std::begin(kStandardFlags), std::end(kStandardFlags), name) !=
        std::end(kStandardFlags);
    const bool declared =
        std::find(spec.flags.begin(), spec.flags.end(), name) !=
        spec.flags.end();
    if (!standard && !declared) unknown.push_back(name);
  }
  if (unknown.empty()) return;
  throw UsageError("unknown flag" + std::string(unknown.size() > 1 ? "s" : "") +
                   " --" + join(unknown, ", --") + "\n" + usage_text(spec));
}

}  // namespace

BenchContext BenchContext::from_args(int argc, const char* const* argv,
                                     const BenchSpec& spec) {
  CliArgs args = CliArgs::parse(argc, argv);
  reject_unknown_flags(args, spec);
  if (args.get_bool("help", false)) throw UsageError(usage_text(spec));

  const gpu::GpuSpec& g =
      gpu::gpu_by_name(args.get_string("gpu", spec.default_gpu.empty()
                                                  ? "a100"
                                                  : spec.default_gpu));

  const std::string policy_name = to_lower(args.get_string("policy", "auto"));
  gemm::TilePolicy policy;
  if (policy_name == "auto") {
    policy = gemm::TilePolicy::kAuto;
  } else if (policy_name == "fixed") {
    policy = gemm::TilePolicy::kFixedLargest;
  } else {
    throw UsageError("--policy must be 'auto' or 'fixed', got '" +
                     policy_name + "'");
  }

  const TableFormat format =
      parse_table_format(args.get_string("format", "ascii"));

  return BenchContext(std::move(args), g, policy, format);
}

void BenchContext::banner(const std::string& figure,
                          const std::string& description) const {
  const char* prefix = format_ == TableFormat::kCsv ? "# " : "";
  std::cout << prefix << "=== " << figure << " — " << description << " ===\n";
  std::cout << prefix << "GPU: " << gpu_->marketing_name << " ("
            << gpu_->sm_count << " SMs, "
            << str_format("%.0f TFLOP/s fp16 tensor, %.0f GB/s HBM",
                          gpu_->tensor_flops_fp16 / 1e12,
                          gpu_->hbm_bandwidth / 1e9)
            << "), tile policy: "
            << (sim_.policy() == gemm::TilePolicy::kAuto ? "auto" : "fixed 256x128")
            << "\n";
}

void BenchContext::section(const std::string& title) const {
  const char* prefix = format_ == TableFormat::kCsv ? "# " : "";
  std::cout << '\n' << prefix << "--- " << title << " ---\n";
}

void BenchContext::emit(const TableWriter& table) const {
  table.write(std::cout, format_);
}

int run_bench(int argc, const char* const* argv, int (*body)(BenchContext&),
              const BenchSpec& spec) {
  try {
    BenchContext ctx = BenchContext::from_args(argc, argv, spec);
    return body(ctx);
  } catch (const Error& e) {
    std::cerr << "bench error: " << e.what() << '\n';
    return exit_code_for_current_exception();
  }
}

}  // namespace codesign::bench
