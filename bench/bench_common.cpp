#include "bench_common.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"

namespace codesign::bench {

BenchContext BenchContext::from_args(int argc, const char* const* argv,
                                     const std::string& default_gpu) {
  CliArgs args = CliArgs::parse(argc, argv);
  const gpu::GpuSpec& g = gpu::gpu_by_name(args.get_string("gpu", default_gpu));

  const std::string policy_name = to_lower(args.get_string("policy", "auto"));
  gemm::TilePolicy policy;
  if (policy_name == "auto") {
    policy = gemm::TilePolicy::kAuto;
  } else if (policy_name == "fixed") {
    policy = gemm::TilePolicy::kFixedLargest;
  } else {
    throw Error("--policy must be 'auto' or 'fixed', got '" + policy_name + "'");
  }

  const std::string fmt = to_lower(args.get_string("format", "ascii"));
  TableFormat format;
  if (fmt == "ascii") {
    format = TableFormat::kAscii;
  } else if (fmt == "csv") {
    format = TableFormat::kCsv;
  } else if (fmt == "markdown" || fmt == "md") {
    format = TableFormat::kMarkdown;
  } else {
    throw Error("--format must be ascii, csv, or markdown; got '" + fmt + "'");
  }

  return BenchContext(std::move(args), g, policy, format);
}

void BenchContext::banner(const std::string& figure,
                          const std::string& description) const {
  const char* prefix = format_ == TableFormat::kCsv ? "# " : "";
  std::cout << prefix << "=== " << figure << " — " << description << " ===\n";
  std::cout << prefix << "GPU: " << gpu_->marketing_name << " ("
            << gpu_->sm_count << " SMs, "
            << str_format("%.0f TFLOP/s fp16 tensor, %.0f GB/s HBM",
                          gpu_->tensor_flops_fp16 / 1e12,
                          gpu_->hbm_bandwidth / 1e9)
            << "), tile policy: "
            << (sim_.policy() == gemm::TilePolicy::kAuto ? "auto" : "fixed 256x128")
            << "\n";
}

void BenchContext::section(const std::string& title) const {
  const char* prefix = format_ == TableFormat::kCsv ? "# " : "";
  std::cout << '\n' << prefix << "--- " << title << " ---\n";
}

void BenchContext::emit(const TableWriter& table) const {
  table.write(std::cout, format_);
}

int run_bench(int argc, const char* const* argv, int (*body)(BenchContext&),
              const std::string& default_gpu) {
  try {
    BenchContext ctx = BenchContext::from_args(argc, argv, default_gpu);
    return body(ctx);
  } catch (const Error& e) {
    std::cerr << "bench error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace codesign::bench
