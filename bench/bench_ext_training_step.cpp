// Extension — full training-step analysis (forward + backward + optimizer).
// The paper measures training throughput; this bench extends its forward
// GEMM analysis to the backward pass, where each forward GEMM spawns a
// dgrad and a wgrad with *rotated* shapes (b·s moves to the inner
// dimension of wgrad), so the §VI-B alignment rules apply twice more.
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "transformer/model_zoo.hpp"
#include "transformer/training.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_ext_training_step",
    "Extension: forward + backward + optimizer training step",
    {}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Extension: training step",
             "forward + backward + optimizer, with backward GEMM shapes");

  ctx.section("backward GEMMs of one GPT-3 2.7B layer (note the rotations)");
  const auto cfg = tfm::model_by_name("gpt3-2.7b");
  TableWriter tb({"backward GEMM", "TFLOP/s", "bound", "accumulates"});
  for (const auto& p : tfm::layer_backward_gemms(cfg)) {
    const auto est = ctx.sim().estimate(p);
    tb.new_row()
        .cell(p.to_string())
        .cell(est.tflops(), 1)
        .cell(gemm::bound_name(est.bound))
        .cell(p.accumulate_into_c ? "yes (wgrad)" : "no");
  }
  ctx.emit(tb);

  ctx.section("training-step comparison across the Fig-1 trio");
  TableWriter t({"model", "fwd", "bwd", "optimizer", "step", "model TFLOP/s",
                 "MFU", "vs default"});
  const auto base = tfm::analyze_training_step(cfg, ctx.sim());
  for (const char* name : {"gpt3-2.7b", "gpt3-2.7b-c1", "gpt3-2.7b-c2"}) {
    const auto r =
        tfm::analyze_training_step(tfm::model_by_name(name), ctx.sim());
    t.new_row()
        .cell(name)
        .cell(human_time(r.forward_time))
        .cell(human_time(r.backward_time))
        .cell(human_time(r.optimizer_time))
        .cell(human_time(r.total_time))
        .cell(r.model_tflops, 1)
        .cell(str_format("%.1f%%", 100.0 * r.mfu))
        .cell(str_format("%.3fx", base.total_time / r.total_time));
  }
  ctx.emit(t);

  ctx.section("memory footprint and the paper's \"b as large as possible\"");
  TableWriter tm({"model", "gpu", "static (16P/t)", "act/microbatch",
                  "max b"});
  for (const char* name : {"gpt3-125m", "gpt3-760m", "gpt3-2.7b"}) {
    for (const char* gname : {"a100-40gb", "a100-80gb"}) {
      const auto& g = gpu::gpu_by_name(gname);
      const auto m =
          tfm::training_memory(tfm::model_by_name(name).with_microbatch(1));
      tm.new_row()
          .cell(name)
          .cell(gname)
          .cell(human_bytes(m.weight_bytes + m.gradient_bytes +
                            m.optimizer_bytes))
          .cell(human_bytes(m.activation_bytes))
          .cell(tfm::max_microbatch(tfm::model_by_name(name), g));
    }
  }
  ctx.emit(tm);
  std::cout << "(b = 0 means even one microbatch does not fit: the model "
               "needs tensor parallelism, ZeRO sharding, or activation "
               "checkpointing — all outside the paper's single-GPU scope)\n";
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(ext_training_step) {
  using namespace codesign;
  reg.add({"ext.training_step", "bench_ext_training_step",
           "backward GEMMs + training-step analysis of the Fig-1 trio",
           {benchlib::kSuiteExt, benchlib::kSuiteSmoke},
           [](benchlib::CaseContext& c) {
             const auto cfg = tfm::model_by_name("gpt3-2.7b");
             for (const auto& p : tfm::layer_backward_gemms(cfg)) {
               c.consume(c.sim().estimate(p).tflops());
             }
             for (const char* name :
                  {"gpt3-2.7b", "gpt3-2.7b-c1", "gpt3-2.7b-c2"}) {
               const auto r = tfm::analyze_training_step(
                   tfm::model_by_name(name), c.sim());
               c.consume(r.total_time);
               c.consume(r.mfu);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
