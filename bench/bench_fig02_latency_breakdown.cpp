// Fig 2 — proportion of single-layer latency per transformer component for
// a medium-sized model, plus the Table-II operator→GEMM map and the GEMM
// share across model sizes (the paper's 68.3% medium / 94.9% large claim).
#include "bench_common.hpp"
#include "common/strings.hpp"
#include "transformer/gemm_mapping.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/model_zoo.hpp"

namespace codesign {
namespace {

const bench::BenchSpec kSpec{
    "bench_fig02_latency_breakdown",
    "Fig 2: latency share per transformer component",
    {"model"}};

int body(bench::BenchContext& ctx) {
  ctx.banner("Figure 2", "latency share per transformer component");

  const std::string model = ctx.args().get_string("model", "gpt3-2.7b");
  const tfm::TransformerConfig cfg = tfm::model_by_name(model);

  ctx.section("Table II — operator to GEMM map for " + cfg.to_string());
  TableWriter t2({"module", "GEMM size (m x n x k, batch)"});
  for (const tfm::MappedOp& op : tfm::layer_ops(cfg)) {
    t2.new_row().cell(tfm::op_name(op.op)).cell(
        op.gemm.has_value() ? op.gemm->to_string()
        : op.flash.has_value()
            ? "fused flash-attention kernel"
            : human_bytes(op.elementwise_bytes) + " elementwise");
  }
  t2.new_row().cell("logit_projection").cell(tfm::logit_gemm(cfg).to_string());
  ctx.emit(t2);

  ctx.section("per-component latency share (one layer)");
  const auto r = tfm::analyze_layer(cfg, ctx.sim());
  TableWriter t({"component", "time", "share", "TFLOP/s", "kind"});
  for (const auto& o : r.ops) {
    t.new_row()
        .cell(o.name)
        .cell(human_time(o.time))
        .cell(str_format("%5.2f%%", 100.0 * o.time / r.total_time))
        .cell(o.tflops, 1)
        .cell(o.is_gemm ? "GEMM" : "non-GEMM");
  }
  ctx.emit(t);
  std::cout << "layer total: " << human_time(r.total_time) << ", GEMM share "
            << str_format("%.1f%%", 100.0 * r.gemm_fraction) << "\n";

  ctx.section("GEMM share of layer latency across model sizes (paper: "
              "68.3% medium, 94.9% large)");
  TableWriter tg({"model", "h", "GEMM share"});
  for (const char* name :
       {"gpt3-125m", "gpt3-760m", "gpt3-2.7b", "gpt3-6.7b", "gpt3-13b",
        "gpt3-175b"}) {
    const auto rr = tfm::analyze_layer(tfm::model_by_name(name), ctx.sim());
    tg.new_row()
        .cell(name)
        .cell(rr.config.hidden_size)
        .cell(str_format("%.1f%%", 100.0 * rr.gemm_fraction));
  }
  ctx.emit(tg);
  return 0;
}

}  // namespace
}  // namespace codesign

CODESIGN_BENCH_CASES(fig02_latency_breakdown) {
  using namespace codesign;
  reg.add({"fig02.gemm_share", "bench_fig02_latency_breakdown",
           "per-component latency and GEMM share across model sizes",
           {benchlib::kSuiteFig},
           [](benchlib::CaseContext& c) {
             for (const char* name :
                  {"gpt3-125m", "gpt3-760m", "gpt3-2.7b", "gpt3-6.7b",
                   "gpt3-13b", "gpt3-175b"}) {
               const auto r =
                   tfm::analyze_layer(tfm::model_by_name(name), c.sim());
               c.consume(r.total_time);
               c.consume(r.gemm_fraction);
               for (const auto& o : r.ops) c.consume(o.time);
             }
           }});
}

CODESIGN_BENCH_MAIN(codesign::kSpec, codesign::body);
