// math_util.hpp — small integer/floating math helpers used throughout the
// GEMM simulator and the transformer analytics.
//
// The power-of-two helpers are load-bearing: the paper's central empirical
// observation is that GEMM throughput on tensor-core GPUs is governed by
// the largest power of two dividing each matrix dimension (in bytes).
#pragma once

#include <cstdint>
#include <type_traits>

#include "common/error.hpp"

namespace codesign {

/// Ceiling division for non-negative integers: ceil(a / b).
template <typename T>
constexpr T ceil_div(T a, T b) {
  static_assert(std::is_integral_v<T>);
  return (a + b - 1) / b;
}

/// Round `a` up to the next multiple of `multiple`.
template <typename T>
constexpr T round_up(T a, T multiple) {
  static_assert(std::is_integral_v<T>);
  return ceil_div(a, multiple) * multiple;
}

/// Round `a` down to the previous multiple of `multiple`.
template <typename T>
constexpr T round_down(T a, T multiple) {
  static_assert(std::is_integral_v<T>);
  return (a / multiple) * multiple;
}

/// True iff `x` is a (positive) power of two.
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Largest power of two that divides `x` (x > 0). E.g. 80 -> 16, 64 -> 64,
/// 50257 -> 1. This is 2^(count of trailing zero bits).
constexpr std::uint64_t largest_pow2_dividing(std::uint64_t x) {
  return x == 0 ? 0 : (x & (~x + 1));  // isolate lowest set bit
}

/// log2 of a power of two (exact). Returns the trailing-zero count.
constexpr int log2_exact(std::uint64_t x) {
  int n = 0;
  while (x > 1) {
    x >>= 1;
    ++n;
  }
  return n;
}

/// Largest power of two <= x (x > 0).
constexpr std::uint64_t floor_pow2(std::uint64_t x) {
  std::uint64_t p = 1;
  while (p * 2 <= x) p *= 2;
  return p;
}

/// Greatest common divisor.
constexpr std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Clamp helper (std::clamp needs <algorithm>; this stays header-light).
template <typename T>
constexpr T clamp_val(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Linear interpolation between a and b with t in [0, 1].
constexpr double lerp_val(double a, double b, double t) {
  return a + (b - a) * t;
}

}  // namespace codesign
