#include "common/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "common/error.hpp"

namespace codesign {

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    throw Error("str_format: formatting failed");
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {
std::string with_suffix(double v, double divisor, const char* suffix) {
  return str_format("%.2f %s", v / divisor, suffix);
}
}  // namespace

std::string human_bytes(double bytes) {
  const double abs = std::fabs(bytes);
  if (abs >= 1024.0 * 1024.0 * 1024.0) return with_suffix(bytes, 1024.0 * 1024.0 * 1024.0, "GiB");
  if (abs >= 1024.0 * 1024.0) return with_suffix(bytes, 1024.0 * 1024.0, "MiB");
  if (abs >= 1024.0) return with_suffix(bytes, 1024.0, "KiB");
  return str_format("%.0f B", bytes);
}

std::string human_flops(double flops) {
  const double abs = std::fabs(flops);
  if (abs >= 1e15) return with_suffix(flops, 1e15, "PFLOP");
  if (abs >= 1e12) return with_suffix(flops, 1e12, "TFLOP");
  if (abs >= 1e9) return with_suffix(flops, 1e9, "GFLOP");
  if (abs >= 1e6) return with_suffix(flops, 1e6, "MFLOP");
  return str_format("%.0f FLOP", flops);
}

std::string human_time(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) return str_format("%.3f s", seconds);
  if (abs >= 1e-3) return str_format("%.3f ms", seconds * 1e3);
  if (abs >= 1e-6) return str_format("%.1f us", seconds * 1e6);
  return str_format("%.0f ns", seconds * 1e9);
}

std::string human_count(double count) {
  const double abs = std::fabs(count);
  if (abs >= 1e9) return str_format("%.2fB", count / 1e9);
  if (abs >= 1e6) return str_format("%.0fM", count / 1e6);
  if (abs >= 1e3) return str_format("%.0fK", count / 1e3);
  return str_format("%.0f", count);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::int64_t parse_int(std::string_view s) {
  const std::string str{trim(s)};
  if (str.empty()) throw Error("parse_int: empty string");
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(str.c_str(), &end, 10);
  if (end != str.c_str() + str.size()) {
    throw Error("parse_int: not an integer: '" + str + "'");
  }
  if (errno == ERANGE) {
    throw Error("parse_int: out of range for int64: '" + str + "'");
  }
  return static_cast<std::int64_t>(v);
}

double parse_double(std::string_view s) {
  const std::string str{trim(s)};
  if (str.empty()) throw Error("parse_double: empty string");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(str.c_str(), &end);
  if (end != str.c_str() + str.size()) {
    throw Error("parse_double: not a number: '" + str + "'");
  }
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    throw Error("parse_double: out of range: '" + str + "'");
  }
  if (!std::isfinite(v)) {
    throw Error("parse_double: non-finite value: '" + str + "'");
  }
  return v;
}

}  // namespace codesign
