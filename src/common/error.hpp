// error.hpp — error handling primitives for the codesign library.
//
// The library is exception-based (per the C++ Core Guidelines: report
// errors that cannot be handled locally by throwing). All exceptions
// thrown by this project derive from codesign::Error so callers can
// catch one type at the API boundary.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace codesign {

/// Root exception type for every error raised by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Raised when a user-supplied configuration is structurally invalid
/// (e.g. hidden size not divisible by the number of attention heads).
class ConfigError : public Error {
 public:
  explicit ConfigError(std::string what) : Error(std::move(what)) {}
};

/// Raised when a shape/dimension argument is out of range or inconsistent.
class ShapeError : public Error {
 public:
  explicit ShapeError(std::string what) : Error(std::move(what)) {}
};

/// Raised when a lookup (GPU name, model name, figure id) fails.
class LookupError : public Error {
 public:
  explicit LookupError(std::string what) : Error(std::move(what)) {}
};

/// Raised for a malformed command line (unknown flag, bad subcommand).
/// Maps to kExitUsage so scripts can distinguish "you called it wrong"
/// from a failing run.
class UsageError : public Error {
 public:
  explicit UsageError(std::string what) : Error(std::move(what)) {}
};

/// Raised when a cooperative cancellation (SIGINT, --deadline-ms) stops an
/// operation before it completed. Carries no partial results — pipelines
/// that can return partial work report it in their outcome type instead of
/// throwing this.
class CancelledError : public Error {
 public:
  explicit CancelledError(std::string what) : Error(std::move(what)) {}
};

/// Raised for network/OS I/O failures: socket bind/listen/connect (port in
/// use, connection refused), reads/writes on a live connection. Distinct
/// from ConfigError — the request was well-formed; the environment failed.
/// Maps to kExitIo.
class IoError : public Error {
 public:
  explicit IoError(std::string what) : Error(std::move(what)) {}
};

/// The CLI's documented exit-code taxonomy (docs/ROBUSTNESS.md). Scripts
/// and CI match on these instead of parsing stderr.
enum ExitCode : int {
  kExitOk = 0,        ///< success
  kExitError = 1,     ///< generic codesign::Error
  kExitUsage = 2,     ///< bad command line (also what usage() returns)
  kExitConfig = 3,    ///< ConfigError: invalid user-supplied configuration
  kExitShape = 4,     ///< ShapeError: dimension out of range / inconsistent
  kExitLookup = 5,    ///< LookupError: unknown GPU / model / figure id
  kExitCancelled = 6, ///< CancelledError: SIGINT or deadline
  kExitIo = 7,        ///< IoError: socket/file I/O failure (bind, connect…)
  kExitInternal = 70, ///< non-codesign exception (EX_SOFTWARE)
  /// Not exception-mapped: a serve admission-control rejection (server
  /// overloaded or draining). Chosen to match sysexits EX_TEMPFAIL —
  /// "temporary failure; the caller is invited to retry".
  kExitUnavailable = 75,
};

/// Map an in-flight exception to its ExitCode. Call from a catch block;
/// returns kExitInternal for unknown exception types (or when no exception
/// is active).
int exit_code_for_current_exception() noexcept;

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

/// CODESIGN_CHECK(cond, msg): precondition check that throws codesign::Error
/// (never aborts) so library misuse is recoverable and testable.
#define CODESIGN_CHECK(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::codesign::detail::throw_check_failure(#cond, __FILE__, __LINE__,   \
                                              (msg));                      \
    }                                                                      \
  } while (false)

}  // namespace codesign
