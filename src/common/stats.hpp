// stats.hpp — summary statistics and simple regression.
//
// Used by the bench harness (mean/median/geomean of repeated timings) and
// by the Fig-13 reproduction, which fits a power-law latency-vs-parameters
// trend over the Pythia suite and reports each model's deviation from it.
#pragma once

#include <cstddef>
#include <vector>

namespace codesign {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);   // population variance
double stddev(const std::vector<double>& xs);
double geomean(const std::vector<double>& xs);    // requires all xs > 0
double median(std::vector<double> xs);            // by-value: sorts a copy
double percentile(std::vector<double> xs, double p);  // p in [0,100]
/// Median absolute deviation: median(|x - median(xs)|). A robust noise
/// scale for benchmark timings (the bench harness gates regressions on
/// MAD-scaled thresholds so one outlier repeat cannot fail or pass a run).
double median_abs_deviation(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Result of an ordinary least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination

  double predict(double x) const { return slope * x + intercept; }
};

/// OLS fit over paired samples; throws if sizes differ or n < 2.
LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

/// Power-law fit y = c * x^e via OLS in log-log space. Requires x, y > 0.
struct PowerLawFit {
  double coefficient = 0.0;  // c
  double exponent = 0.0;     // e
  double r2 = 0.0;           // of the log-log fit

  double predict(double x) const;
};

PowerLawFit power_law_fit(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Pearson correlation coefficient.
double pearson(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace codesign
