// logging.hpp — a minimal leveled logger.
//
// Benches and examples use this for progress/diagnostic output on stderr so
// stdout stays clean for the CSV/table data the harness captures.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace codesign {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo,
/// overridable via the CODESIGN_LOG environment variable
/// (debug|info|warn|error) read on first use. An unrecognized CODESIGN_LOG
/// value falls back to kInfo with a one-time warning naming the bad value.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse a level name ("debug"/"info"/"warn"/"warning"/"error", any case);
/// nullopt if unrecognized.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Test hook: drop the cached level so the next log_level() re-reads
/// CODESIGN_LOG (and can re-emit the bad-value warning).
void reset_log_level_for_testing();

/// Emit one log line to stderr: "[LEVEL] message".
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define CODESIGN_LOG(level) ::codesign::detail::LogLine(level)
#define LOG_DEBUG CODESIGN_LOG(::codesign::LogLevel::kDebug)
#define LOG_INFO CODESIGN_LOG(::codesign::LogLevel::kInfo)
#define LOG_WARN CODESIGN_LOG(::codesign::LogLevel::kWarn)
#define LOG_ERROR CODESIGN_LOG(::codesign::LogLevel::kError)

}  // namespace codesign
