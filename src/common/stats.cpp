#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace codesign {

double mean(const std::vector<double>& xs) {
  CODESIGN_CHECK(!xs.empty(), "mean of empty vector");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  CODESIGN_CHECK(!xs.empty(), "variance of empty vector");
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double geomean(const std::vector<double>& xs) {
  CODESIGN_CHECK(!xs.empty(), "geomean of empty vector");
  double s = 0.0;
  for (double x : xs) {
    CODESIGN_CHECK(x > 0.0, "geomean requires positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double median_abs_deviation(const std::vector<double>& xs) {
  const double m = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (const double x : xs) dev.push_back(std::fabs(x - m));
  return median(std::move(dev));
}

double percentile(std::vector<double> xs, double p) {
  CODESIGN_CHECK(!xs.empty(), "percentile of empty vector");
  CODESIGN_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double min_of(const std::vector<double>& xs) {
  CODESIGN_CHECK(!xs.empty(), "min of empty vector");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  CODESIGN_CHECK(!xs.empty(), "max of empty vector");
  return *std::max_element(xs.begin(), xs.end());
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  CODESIGN_CHECK(x.size() == y.size(), "linear_fit: size mismatch");
  CODESIGN_CHECK(x.size() >= 2, "linear_fit: need at least 2 points");
  const double n = static_cast<double>(x.size());
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  CODESIGN_CHECK(sxx > 0.0, "linear_fit: x values are all identical");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - fit.predict(x[i]);
      ss_res += e * e;
    }
    fit.r2 = 1.0 - ss_res / syy;
  } else {
    fit.r2 = 1.0;  // y constant and perfectly predicted by slope 0
  }
  (void)n;
  return fit;
}

double PowerLawFit::predict(double x) const {
  return coefficient * std::pow(x, exponent);
}

PowerLawFit power_law_fit(const std::vector<double>& x,
                          const std::vector<double>& y) {
  CODESIGN_CHECK(x.size() == y.size(), "power_law_fit: size mismatch");
  std::vector<double> lx(x.size());
  std::vector<double> ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    CODESIGN_CHECK(x[i] > 0.0 && y[i] > 0.0,
                   "power_law_fit requires positive samples");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  const LinearFit fit = linear_fit(lx, ly);
  PowerLawFit out;
  out.exponent = fit.slope;
  out.coefficient = std::exp(fit.intercept);
  out.r2 = fit.r2;
  return out;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  CODESIGN_CHECK(x.size() == y.size() && x.size() >= 2, "pearson: bad input");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  CODESIGN_CHECK(sxx > 0.0 && syy > 0.0, "pearson: zero variance");
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace codesign
