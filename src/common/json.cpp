#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace codesign::json {

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

namespace {

const char* kind_name(Value::Kind k) {
  switch (k) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return "bool";
    case Value::Kind::kNumber: return "number";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(const char* want, Value::Kind got) {
  throw Error(str_format("json: expected %s, value is %s", want,
                         kind_name(got)));
}

/// Recursive-descent parser over a string_view with line/column tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw Error(str_format("json parse error at line %zu col %zu: %s", line,
                           col, msg.c_str()));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(str_format("expected '%c'", c));
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      expect(':');
      v.set(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The project only emits ASCII; decode the BMP code point as
          // UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      fail("malformed number '" + token + "'");
    }
    return Value::number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_;
}

const Value* Value::get(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = get(key);
  if (v == nullptr) {
    throw Error("json: missing required key '" + std::string(key) + "'");
  }
  return *v;
}

double Value::number_or(std::string_view key, double def) const {
  const Value* v = get(key);
  return v == nullptr ? def : v->as_number();
}

std::string Value::string_or(std::string_view key, std::string def) const {
  const Value* v = get(key);
  return v == nullptr ? def : v->as_string();
}

bool Value::bool_or(std::string_view key, bool def) const {
  const Value* v = get(key);
  return v == nullptr ? def : v->as_bool();
}

void Value::push_back(Value v) {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  array_.push_back(std::move(v));
}

void Value::set(std::string key, Value v) {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  object_.emplace_back(std::move(key), std::move(v));
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += str_format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void Writer::indent(std::size_t depth) {
  os_ << '\n';
  for (std::size_t i = 0; i < depth; ++i) os_ << "  ";
}

void Writer::before_value() {
  if (stack_.empty()) {
    CODESIGN_CHECK(!done_, "json::Writer: document is already complete");
    done_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.is_object) {
    CODESIGN_CHECK(have_key_, "json::Writer: object member written without key()");
    have_key_ = false;
    return;  // separator was emitted by key()
  }
  if (top.count > 0) os_ << ',';
  if (top.pretty) indent(stack_.size());
  ++top.count;
}

Writer& Writer::key(std::string_view k) {
  CODESIGN_CHECK(!stack_.empty() && stack_.back().is_object,
                 "json::Writer: key() outside an object");
  CODESIGN_CHECK(!have_key_, "json::Writer: key() twice without a value");
  Frame& top = stack_.back();
  if (top.count > 0) os_ << ',';
  if (top.pretty) indent(stack_.size());
  os_ << '"' << escape(k) << "\":";
  if (top.pretty) os_ << ' ';
  ++top.count;
  have_key_ = true;
  return *this;
}

Writer& Writer::begin_object(Style style) {
  before_value();
  stack_.push_back(Frame{true, style == Style::kPretty});
  os_ << '{';
  return *this;
}

Writer& Writer::end_object() {
  CODESIGN_CHECK(!stack_.empty() && stack_.back().is_object,
                 "json::Writer: end_object() without begin_object()");
  CODESIGN_CHECK(!have_key_, "json::Writer: end_object() with a dangling key");
  const Frame top = stack_.back();
  stack_.pop_back();
  if (top.pretty && top.count > 0) indent(stack_.size());
  os_ << '}';
  return *this;
}

Writer& Writer::begin_array(Style style) {
  before_value();
  stack_.push_back(Frame{false, style == Style::kPretty});
  os_ << '[';
  return *this;
}

Writer& Writer::end_array() {
  CODESIGN_CHECK(!stack_.empty() && !stack_.back().is_object,
                 "json::Writer: end_array() without begin_array()");
  const Frame top = stack_.back();
  stack_.pop_back();
  if (top.pretty && top.count > 0) indent(stack_.size());
  os_ << ']';
  return *this;
}

Writer& Writer::value(std::string_view s) {
  before_value();
  os_ << '"' << escape(s) << '"';
  return *this;
}

Writer& Writer::value(double v) {
  CODESIGN_CHECK(std::isfinite(v),
                 "json::Writer: JSON cannot represent a non-finite number");
  before_value();
  os_ << format_double(v);
  return *this;
}

Writer& Writer::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
  return *this;
}

Writer& Writer::value(long long v) {
  before_value();
  os_ << v;
  return *this;
}

Writer& Writer::value(unsigned long long v) {
  before_value();
  os_ << v;
  return *this;
}

Writer& Writer::null() {
  before_value();
  os_ << "null";
  return *this;
}

Writer& Writer::raw(std::string_view text) {
  before_value();
  os_ << text;
  return *this;
}

namespace {

void dump_value(Writer& w, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNull: w.null(); return;
    case Value::Kind::kBool: w.value(v.as_bool()); return;
    case Value::Kind::kNumber: w.value(v.as_number()); return;
    case Value::Kind::kString: w.value(v.as_string()); return;
    case Value::Kind::kArray:
      w.begin_array();
      for (const Value& e : v.as_array()) dump_value(w, e);
      w.end_array();
      return;
    case Value::Kind::kObject:
      w.begin_object();
      for (const auto& [k, e] : v.as_object()) {
        w.key(k);
        dump_value(w, e);
      }
      w.end_object();
      return;
  }
}

}  // namespace

std::string dump(const Value& v) {
  std::ostringstream os;
  Writer w(os);
  dump_value(w, v);
  return os.str();
}

}  // namespace codesign::json
