// failpoint.hpp — deterministic fault injection for robustness testing.
//
// A failpoint is a named site in the code (the estimate cache, kernel
// selection, the DES, the search evaluate path) that can be armed at run
// time — via the CODESIGN_FAILPOINTS environment variable or the CLI's
// --failpoints flag — to throw an InjectedFault under a configured trigger.
// Armed failpoints let the test suite and tools/check.sh drive the sweep
// pipeline through every degraded path (skip, retry, strict rethrow)
// without depending on real hardware flakiness.
//
// Contract (see docs/ROBUSTNESS.md):
//   * Zero cost when disarmed. CODESIGN_FAILPOINT compiles to one relaxed
//     atomic load of a global armed-count; no lock, no allocation, no
//     branch into the registry until at least one failpoint is armed.
//   * Deterministic. Probability triggers at token-carrying sites decide
//     from hash(seed, token), independent of thread interleaving — the set
//     of failing candidates in a sweep is byte-identical at any --threads
//     value. Counter triggers (once:N, every:N) count hits in program
//     order and are deterministic whenever the site is hit sequentially.
//   * TSan-clean. The armed flag and hit/fire counters are atomics; the
//     spec table is written only by configure()/clear() under a mutex and
//     read under the same mutex.
//
// Spec syntax (comma-separated list):
//   <site>=<trigger>[:<args>][:transient|:fatal]
//     off             disarm the site
//     always          throw on every hit
//     once:N          throw exactly on the Nth hit (1-based)
//     every:N         throw on every Nth hit
//     prob:P[:seed]   throw with probability P in [0,1] (default seed 1)
// Faults default to transient (eligible for the search layer's bounded
// retry); append ":fatal" for a permanent fault that is never retried.
//
// Example:
//   CODESIGN_FAILPOINTS='advisor.search.evaluate=prob:0.05:42'
//       codesign search gpt3-2.7b --mode=joint --threads=8
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace codesign::fail {

/// The exception an armed failpoint throws. `transient()` tells the search
/// layer whether bounded retry may recover the operation.
class InjectedFault : public Error {
 public:
  InjectedFault(std::string what, bool transient)
      : Error(std::move(what)), transient_(transient) {}
  bool transient() const { return transient_; }

 private:
  bool transient_;
};

namespace detail {
extern std::atomic<int> g_armed_count;
}  // namespace detail

/// True when at least one failpoint is armed — the one-load fast path.
inline bool any_armed() {
  return detail::g_armed_count.load(std::memory_order_relaxed) > 0;
}

/// Arm failpoints from a spec string (see file comment for syntax).
/// Specs accumulate: configuring "a=always" then "b=always" leaves both
/// armed; "a=off" disarms one site. Throws ConfigError on syntax errors or
/// unknown site names (see known_sites()).
void configure(const std::string& spec);

/// configure() from the CODESIGN_FAILPOINTS environment variable, if set.
void configure_from_env();

/// Disarm every failpoint and zero all hit/fire counters.
void clear();

/// Sites compiled into the library (plus any registered by register_site).
std::vector<std::string> known_sites();

/// Declare an additional valid site name (test suites use this to exercise
/// the subsystem without depending on library internals).
void register_site(const std::string& name);

/// Hit/fire counters for one site (zeros if never hit or unknown).
struct SiteStats {
  std::uint64_t hits = 0;   ///< times the site was evaluated while armed
  std::uint64_t fires = 0;  ///< times it threw
};
SiteStats stats(const std::string& name);

/// Evaluate the named site: count the hit and throw InjectedFault when the
/// armed trigger fires. The token-carrying overload makes probability
/// triggers independent of hit order (pass a stable per-operation token
/// such as a key hash); the token-less overload uses the hit counter.
/// Both are no-ops for sites that are not armed.
void hit(std::string_view site);
void hit(std::string_view site, std::uint64_t token);

/// Stable 64-bit token for string identities (FNV-1a; identical across
/// builds and platforms, unlike std::hash).
std::uint64_t token(std::string_view s);

}  // namespace codesign::fail

/// Plant a failpoint. One relaxed load when nothing is armed.
#define CODESIGN_FAILPOINT(site)                          \
  do {                                                    \
    if (::codesign::fail::any_armed()) {                  \
      ::codesign::fail::hit(site);                        \
    }                                                     \
  } while (false)

/// Plant a failpoint with a stable per-operation token (deterministic
/// probability triggers at any thread count).
#define CODESIGN_FAILPOINT_T(site, tok)                   \
  do {                                                    \
    if (::codesign::fail::any_armed()) {                  \
      ::codesign::fail::hit(site, (tok));                 \
    }                                                     \
  } while (false)
