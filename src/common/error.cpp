#include "common/error.hpp"

#include <exception>
#include <sstream>

namespace codesign {

int exit_code_for_current_exception() noexcept {
  if (!std::current_exception()) return kExitInternal;
  // Ordered most-derived first — every class here derives from Error.
  try {
    throw;
  } catch (const UsageError&) {
    return kExitUsage;
  } catch (const ConfigError&) {
    return kExitConfig;
  } catch (const ShapeError&) {
    return kExitShape;
  } catch (const LookupError&) {
    return kExitLookup;
  } catch (const CancelledError&) {
    return kExitCancelled;
  } catch (const IoError&) {
    return kExitIo;
  } catch (const Error&) {
    return kExitError;
  } catch (...) {
    return kExitInternal;
  }
}

}  // namespace codesign

namespace codesign::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}

}  // namespace codesign::detail
