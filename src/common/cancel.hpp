// cancel.hpp — cooperative cancellation for long-running sweeps.
//
// A CancelToken is a flag the search pipeline polls between candidate
// evaluations: when it trips, workers stop picking up new work and the
// sweep returns partial results with an explicit truncation marker (the
// pipeline never silently caps — see docs/ROBUSTNESS.md). Two trip
// sources:
//   * an explicit deadline (set_deadline / deadline_after), checked
//     lazily on cancelled() so the token itself never spawns a timer, and
//   * SIGINT, via SigintGuard: the signal handler only stores into a
//     lock-free atomic (async-signal-safe); tokens linked to it observe
//     the interrupt on their next poll.
//
// Cancellation is cooperative and check-point based, so *which* candidates
// complete before the stop is wall-clock dependent — but everything the
// pipeline emits about the truncation (the banner, counts, checkpoint
// contents) is explicit, and a checkpointed sweep can be resumed to the
// full, byte-identical result (tested in tests/test_search_faults.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace codesign {

enum class CancelReason : int { kNone = 0, kUser = 1, kDeadline = 2 };

const char* cancel_reason_name(CancelReason r);

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip the token. First reason wins; later calls are no-ops.
  void cancel(CancelReason reason = CancelReason::kUser);

  /// Arm a deadline; cancelled() trips the token once it passes.
  void set_deadline(std::chrono::steady_clock::time_point deadline);
  void deadline_after(std::chrono::milliseconds budget);

  /// Observe SIGINT delivered to a SigintGuard on every cancelled() poll.
  void link_to_sigint() { linked_to_sigint_ = true; }

  /// Poll: true once tripped (directly, by deadline, or by linked SIGINT).
  bool cancelled() const;

  CancelReason reason() const {
    return static_cast<CancelReason>(
        reason_.load(std::memory_order_acquire));
  }

 private:
  std::atomic<int> reason_{static_cast<int>(CancelReason::kNone)};
  std::atomic<bool> deadline_armed_{false};
  std::chrono::steady_clock::time_point deadline_{};
  bool linked_to_sigint_ = false;
};

/// RAII SIGINT trap: installs a handler that records the interrupt in a
/// process-wide atomic flag and restores the previous handler on
/// destruction. Tokens that called link_to_sigint() trip on their next
/// poll. A second SIGINT while the guard is active re-raises the default
/// disposition, so a stuck sweep can still be killed interactively.
class SigintGuard {
 public:
  SigintGuard();
  ~SigintGuard();
  SigintGuard(const SigintGuard&) = delete;
  SigintGuard& operator=(const SigintGuard&) = delete;

  /// True once SIGINT was seen while any guard was active.
  static bool interrupted();
  /// Reset the flag (tests; and the CLI between subcommands).
  static void reset();
};

}  // namespace codesign
