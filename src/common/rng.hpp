// rng.hpp — deterministic pseudo-random number generation.
//
// All randomized tests and the CPU-kernel substrate use this xoshiro256**
// generator with explicit seeds so every run of the test/bench suite is
// reproducible bit-for-bit (std::mt19937 distributions are not guaranteed
// identical across standard libraries; we implement our own sampling).
#pragma once

#include <cstdint>

namespace codesign {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    auto next_seed = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = next_seed();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] inclusive (lo <= hi). Uses rejection
  /// sampling to avoid modulo bias.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    std::uint64_t v;
    do {
      v = next_u64();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % range);
  }

  /// Standard normal via Box–Muller (one value per call; simple & stateless).
  double normal() {
    double u1;
    do {
      u1 = next_double();
    } while (u1 <= 0.0);
    const double u2 = next_double();
    // sqrt/log/cos from <cmath> pulled in by the caller translation unit.
    return box_muller(u1, u2);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double box_muller(double u1, double u2);

  std::uint64_t state_[4];
};

}  // namespace codesign
