// table.hpp — tabular output for bench harnesses and reports.
//
// Every bench binary in bench/ prints the rows/series of one paper figure
// or table. TableWriter renders the same data either as an aligned ASCII
// table (human-facing, default) or as CSV (machine-facing, --format=csv),
// so figure data can be replotted directly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace codesign {

enum class TableFormat { kAscii, kCsv, kMarkdown };

/// Parse "ascii" / "csv" / "markdown" (alias "md"); throws codesign::Error
/// naming the bad value. Shared by the bench harness and codesign-bench.
TableFormat parse_table_format(const std::string& name);

/// A simple row/column table with typed cell helpers. Column count is fixed
/// by the header; add_row enforces it.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Start a new (empty) row.
  TableWriter& new_row();
  /// Append cells to the current row.
  TableWriter& cell(std::string value);
  TableWriter& cell(std::int64_t value);
  TableWriter& cell(double value, int precision = 3);

  /// Append a fully formed row (must match header width).
  void add_row(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Render to a string in the requested format.
  std::string render(TableFormat format = TableFormat::kAscii) const;

  /// Render to a stream.
  void write(std::ostream& os, TableFormat format = TableFormat::kAscii) const;

 private:
  void finish_pending_row();

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
  bool pending_open_ = false;
};

/// Escape one CSV field (quotes fields containing comma/quote/newline).
std::string csv_escape(const std::string& field);

}  // namespace codesign
