#include "common/cancel.hpp"

#include <csignal>

namespace codesign {

namespace {

std::atomic<bool> g_sigint{false};
std::atomic<int> g_guard_depth{0};

void (*g_previous_handler)(int) = SIG_DFL;

void sigint_handler(int signum) {
  // Async-signal-safe: one lock-free atomic store. A second SIGINT restores
  // the default disposition and re-raises so the user can always kill a
  // sweep that stopped polling.
  if (g_sigint.exchange(true, std::memory_order_relaxed)) {
    std::signal(signum, SIG_DFL);
    std::raise(signum);
  }
}

}  // namespace

const char* cancel_reason_name(CancelReason r) {
  switch (r) {
    case CancelReason::kNone: return "none";
    case CancelReason::kUser: return "interrupt";
    case CancelReason::kDeadline: return "deadline";
  }
  return "unknown";
}

void CancelToken::cancel(CancelReason reason) {
  int expected = static_cast<int>(CancelReason::kNone);
  reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                  std::memory_order_acq_rel);
}

void CancelToken::set_deadline(std::chrono::steady_clock::time_point deadline) {
  deadline_ = deadline;
  deadline_armed_.store(true, std::memory_order_release);
}

void CancelToken::deadline_after(std::chrono::milliseconds budget) {
  set_deadline(std::chrono::steady_clock::now() + budget);
}

bool CancelToken::cancelled() const {
  if (reason_.load(std::memory_order_acquire) !=
      static_cast<int>(CancelReason::kNone)) {
    return true;
  }
  if (linked_to_sigint_ && g_sigint.load(std::memory_order_relaxed)) {
    const_cast<CancelToken*>(this)->cancel(CancelReason::kUser);
    return true;
  }
  if (deadline_armed_.load(std::memory_order_acquire) &&
      std::chrono::steady_clock::now() >= deadline_) {
    const_cast<CancelToken*>(this)->cancel(CancelReason::kDeadline);
    return true;
  }
  return false;
}

SigintGuard::SigintGuard() {
  if (g_guard_depth.fetch_add(1, std::memory_order_relaxed) == 0) {
    g_previous_handler = std::signal(SIGINT, sigint_handler);
  }
}

SigintGuard::~SigintGuard() {
  if (g_guard_depth.fetch_sub(1, std::memory_order_relaxed) == 1) {
    std::signal(SIGINT, g_previous_handler);
  }
}

bool SigintGuard::interrupted() {
  return g_sigint.load(std::memory_order_relaxed);
}

void SigintGuard::reset() { g_sigint.store(false, std::memory_order_relaxed); }

}  // namespace codesign
