// units.hpp — physical unit helpers.
//
// Conventions used across the library:
//   * time       : double seconds
//   * rates      : double FLOP/s (math) and bytes/s (memory)
//   * capacities : double bytes
//   * FLOP counts: double (a 175B-parameter forward pass overflows int64
//                  microbenchmark accumulations quickly; doubles carry
//                  53 bits of mantissa which is exact past 10^15 FLOPs)
#pragma once

namespace codesign {

// --- capacity -------------------------------------------------------------
constexpr double KiB = 1024.0;
constexpr double MiB = 1024.0 * KiB;
constexpr double GiB = 1024.0 * MiB;

constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;

// --- rates ----------------------------------------------------------------
constexpr double GFLOPS = 1e9;
constexpr double TFLOPS = 1e12;
constexpr double GBps = 1e9;   // bandwidth: gigabytes per second
constexpr double TBps = 1e12;  // bandwidth: terabytes per second

// --- time -----------------------------------------------------------------
constexpr double SECONDS = 1.0;
constexpr double MILLISECONDS = 1e-3;
constexpr double MICROSECONDS = 1e-6;
constexpr double NANOSECONDS = 1e-9;

/// Convert seconds to microseconds (for human-facing output).
constexpr double to_us(double seconds) { return seconds / MICROSECONDS; }
/// Convert seconds to milliseconds.
constexpr double to_ms(double seconds) { return seconds / MILLISECONDS; }
/// Convert FLOP/s to teraFLOP/s (the unit every figure in the paper uses).
constexpr double to_tflops(double flops_per_s) { return flops_per_s / TFLOPS; }

}  // namespace codesign
