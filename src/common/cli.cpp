#include "common/cli.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace codesign {

CliArgs CliArgs::parse(int argc, const char* const* argv) {
  CliArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      out.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    CODESIGN_CHECK(!body.empty(), "bare '--' is not a valid flag");
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      const std::string value = body.substr(eq + 1);
      CODESIGN_CHECK(!name.empty(), "flag '" + arg + "' has empty name");
      CODESIGN_CHECK(!value.empty(), "flag '" + arg + "' has empty value");
      out.flags_[name] = value;
      continue;
    }
    // "--name value" when the next token is not itself a flag; otherwise
    // treat as a boolean switch.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      out.flags_[body] = argv[i + 1];
      ++i;
    } else {
      out.flags_[body] = "true";
    }
  }
  return out;
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name, std::string def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : parse_int(it->second);
}

double CliArgs::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : parse_double(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string v = to_lower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("flag --" + name + " expects a boolean, got '" + it->second + "'");
}

std::vector<std::int64_t> CliArgs::get_int_list(
    const std::string& name, std::vector<std::int64_t> def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  std::vector<std::int64_t> out;
  for (const std::string& part : split(it->second, ',')) {
    if (trim(part).empty()) continue;
    out.push_back(parse_int(part));
  }
  CODESIGN_CHECK(!out.empty(), "flag --" + name + " has an empty list value");
  return out;
}

std::vector<std::string> CliArgs::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [k, _] : flags_) names.push_back(k);
  return names;
}

}  // namespace codesign
