// cli.hpp — a small --key=value flag parser shared by the bench binaries
// and examples (google-benchmark owns argv in bench_kernels_cpu; everything
// else uses this directly).
//
// Supported syntax: --name=value, --name value, --flag (boolean true),
// and bare positional arguments. Unknown flags raise unless allow_unknown.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace codesign {

class CliArgs {
 public:
  /// Parse argv (argv[0] is skipped). Throws codesign::Error on malformed
  /// input such as a value-less "--name=" .
  static CliArgs parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// Typed getters with defaults. Throw on unparsable values.
  std::string get_string(const std::string& name, std::string def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Comma-separated integer list, e.g. --heads=8,16,32.
  std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names seen on the command line (for diagnostics / unknown-flag checks).
  std::vector<std::string> flag_names() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace codesign
