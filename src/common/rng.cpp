#include "common/rng.hpp"

#include <cmath>

namespace codesign {

double Rng::box_muller(double u1, double u2) {
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace codesign
