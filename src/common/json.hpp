// json.hpp — a minimal JSON document model and recursive-descent parser.
//
// The bench harness writes machine-readable perf reports (BENCH_*.json)
// and `codesign-bench compare` must read them back; this is the reading
// half. It supports exactly the JSON the project emits: objects, arrays,
// strings, finite numbers, booleans and null — no comments, no trailing
// commas. Parse errors throw codesign::Error with a line/column prefix.
//
// The writing half is json::Writer: a streaming emitter with automatic
// comma/key management, per-container compact/pretty styles, and the same
// escaping + shortest-round-trip number rules the parser accepts — bench
// reports and serve responses share it so "emits JSON" means one code
// path. json::escape and json::format_double remain exposed for callers
// that splice fragments by hand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace codesign::json {

/// One JSON value. Objects preserve insertion order; lookup is linear
/// (documents here are small and determinism matters more than speed).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  static Value boolean(bool b);
  static Value number(double v);
  static Value string(std::string s);
  static Value array();
  static Value object();

  /// Parse a complete document; trailing non-whitespace is an error.
  static Value parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Checked accessors; throw codesign::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::vector<std::pair<std::string, Value>>& as_object() const;

  /// Object member lookup: get() returns nullptr when absent, at() throws.
  const Value* get(std::string_view key) const;
  const Value& at(std::string_view key) const;
  bool has(std::string_view key) const { return get(key) != nullptr; }

  /// Convenience typed member reads with defaults (absent => default;
  /// present with the wrong kind => throw).
  double number_or(std::string_view key, double def) const;
  std::string string_or(std::string_view key, std::string def) const;
  bool bool_or(std::string_view key, bool def) const;

  /// Mutators for building documents programmatically (tests).
  void push_back(Value v);                       // array only
  void set(std::string key, Value v);            // object only

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Escape a string for embedding inside JSON double quotes.
std::string escape(std::string_view s);

/// Shortest decimal form of `v` that round-trips to the same double
/// (%.15g when exact, %.17g otherwise). Deterministic for equal values.
std::string format_double(double v);

/// Streaming JSON emitter with automatic separator management. Misuse
/// (value without key inside an object, mismatched end_*, writing past a
/// complete document) throws codesign::Error via CODESIGN_CHECK rather
/// than emitting malformed output.
///
/// Every container picks its own style at begin_*:
///   * kCompact: no whitespace at all — `{"a":1,"b":[2,3]}`
///   * kPretty:  each member/element on its own line, two-space indent per
///               depth, `": "` after pretty object keys
/// so a document can mix a pretty spine with compact leaves (the bench
/// report layout). Doubles go through format_double and must be finite
/// (JSON has no Inf/NaN); strings through escape.
class Writer {
 public:
  enum class Style { kCompact, kPretty };

  explicit Writer(std::ostream& os) : os_(os) {}
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Writer& begin_object(Style style = Style::kCompact);
  Writer& end_object();
  Writer& begin_array(Style style = Style::kCompact);
  Writer& end_array();

  /// Member key (objects only; exactly one value must follow).
  Writer& key(std::string_view k);

  Writer& value(std::string_view s);
  Writer& value(const char* s) { return value(std::string_view(s)); }
  Writer& value(const std::string& s) { return value(std::string_view(s)); }
  Writer& value(double v);
  Writer& value(bool b);
  Writer& value(int v) { return value(static_cast<long long>(v)); }
  Writer& value(long v) { return value(static_cast<long long>(v)); }
  Writer& value(long long v);
  Writer& value(unsigned v) {
    return value(static_cast<unsigned long long>(v));
  }
  Writer& value(unsigned long v) {
    return value(static_cast<unsigned long long>(v));
  }
  Writer& value(unsigned long long v);
  Writer& null();

  /// Splice pre-rendered JSON (e.g. a nested document produced elsewhere)
  /// as one value. The text is emitted verbatim — caller guarantees it is
  /// well-formed.
  Writer& raw(std::string_view text);

  /// key(k) + value(v) in one call.
  template <typename T>
  Writer& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// True once a single complete top-level value has been written and
  /// every container is closed.
  bool complete() const { return done_ && stack_.empty(); }

 private:
  struct Frame {
    bool is_object;
    bool pretty;
    std::size_t count = 0;  ///< members (objects) / elements (arrays) so far
  };

  void before_value();  ///< separator bookkeeping shared by all value forms
  void indent(std::size_t depth);

  std::ostream& os_;
  std::vector<Frame> stack_;
  bool have_key_ = false;  ///< key() written, its value still pending
  bool done_ = false;      ///< a top-level value has been started
};

/// Serialize a parsed Value back to text (compact style, object members in
/// insertion order). parse(dump(v)) reproduces v — the round-trip the
/// escaping tests pin down.
std::string dump(const Value& v);

}  // namespace codesign::json
