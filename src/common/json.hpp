// json.hpp — a minimal JSON document model and recursive-descent parser.
//
// The bench harness writes machine-readable perf reports (BENCH_*.json)
// and `codesign-bench compare` must read them back; this is the reading
// half. It supports exactly the JSON the project emits: objects, arrays,
// strings, finite numbers, booleans and null — no comments, no trailing
// commas. Parse errors throw codesign::Error with a line/column prefix.
//
// Writers in this codebase emit JSON by hand (deterministic field order,
// shortest-round-trip doubles); json::escape and json::format_double are
// the shared helpers for that path.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace codesign::json {

/// One JSON value. Objects preserve insertion order; lookup is linear
/// (documents here are small and determinism matters more than speed).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  static Value boolean(bool b);
  static Value number(double v);
  static Value string(std::string s);
  static Value array();
  static Value object();

  /// Parse a complete document; trailing non-whitespace is an error.
  static Value parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Checked accessors; throw codesign::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::vector<std::pair<std::string, Value>>& as_object() const;

  /// Object member lookup: get() returns nullptr when absent, at() throws.
  const Value* get(std::string_view key) const;
  const Value& at(std::string_view key) const;
  bool has(std::string_view key) const { return get(key) != nullptr; }

  /// Convenience typed member reads with defaults (absent => default;
  /// present with the wrong kind => throw).
  double number_or(std::string_view key, double def) const;
  std::string string_or(std::string_view key, std::string def) const;
  bool bool_or(std::string_view key, bool def) const;

  /// Mutators for building documents programmatically (tests).
  void push_back(Value v);                       // array only
  void set(std::string key, Value v);            // object only

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Escape a string for embedding inside JSON double quotes.
std::string escape(std::string_view s);

/// Shortest decimal form of `v` that round-trips to the same double
/// (%.15g when exact, %.17g otherwise). Deterministic for equal values.
std::string format_double(double v);

}  // namespace codesign::json
