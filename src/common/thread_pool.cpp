#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace codesign {

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // chunk bodies catch their own exceptions
  }
}

void ThreadPool::submit(std::function<void()> task) {
  CODESIGN_CHECK(task != nullptr, "submit of an empty task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    CODESIGN_CHECK(!stop_, "submit on a stopped thread pool");
    queue_.emplace_back([t = std::move(task)] {
      try {
        t();
      } catch (const std::exception& e) {
        // worker_loop requires non-throwing tasks; contain the escape so
        // the worker thread (and every task queued behind it) survives.
        LOG_ERROR << "thread pool task threw: " << e.what();
        if (obs::MetricsRegistry::enabled()) {
          obs::MetricsRegistry::global()
              .counter("threadpool.task_errors", {},
                       obs::Stability::kBestEffort)
              .add();
        }
      } catch (...) {
        LOG_ERROR << "thread pool task threw a non-std exception";
        if (obs::MetricsRegistry::enabled()) {
          obs::MetricsRegistry::global()
              .counter("threadpool.task_errors", {},
                       obs::Stability::kBestEffort)
              .add();
        }
      }
    });
    if (obs::MetricsRegistry::enabled()) {
      obs::MetricsRegistry::global()
          .gauge("threadpool.queue_depth.max", {}, obs::Stability::kBestEffort)
          .update_max(static_cast<double>(queue_.size()));
    }
  }
  work_cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_ranges(
      n,
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      grain);
}

void ThreadPool::parallel_for_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) {
    grain = std::max<std::size_t>(1, n / (size() * 4));
  }
  const std::size_t chunks = (n + grain - 1) / grain;

  // Per-call completion state, shared with the enqueued chunk closures.
  struct Batch {
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::exception_ptr first_error;
    /// Fast-fail: set (relaxed) the moment any chunk throws; chunks that
    /// have not started yet observe it and skip their bodies, so a failing
    /// strict-mode sweep does not burn the remaining candidate budget.
    std::atomic<bool> failed{false};
    explicit Batch(std::size_t r) : remaining(r) {}
  };
  auto batch = std::make_shared<Batch>(chunks);

  {
    std::lock_guard<std::mutex> lock(mu_);
    CODESIGN_CHECK(!stop_, "parallel_for on a stopped thread pool");
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * grain;
      const std::size_t end = std::min(n, begin + grain);
      queue_.emplace_back([batch, begin, end, &fn] {
        // Task-latency instrumentation: wall clock, so kBestEffort — the
        // deterministic metrics export never includes it. Checked per task
        // so the disabled path costs one relaxed load.
        const bool timed = obs::MetricsRegistry::enabled();
        const auto t0 = timed ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
        std::exception_ptr error;
        if (!batch->failed.load(std::memory_order_relaxed)) {
          try {
            fn(begin, end);
          } catch (...) {
            error = std::current_exception();
            batch->failed.store(true, std::memory_order_relaxed);
          }
        }
        if (timed) {
          obs::MetricsRegistry::global()
              .histogram("threadpool.task_us", {},
                         obs::Stability::kBestEffort)
              .record(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
        }
        std::lock_guard<std::mutex> batch_lock(batch->mu);
        if (error && !batch->first_error) batch->first_error = error;
        if (--batch->remaining == 0) batch->done_cv.notify_all();
      });
    }
    if (obs::MetricsRegistry::enabled()) {
      auto& reg = obs::MetricsRegistry::global();
      reg.counter("threadpool.parallel_for.calls", {},
                  obs::Stability::kBestEffort)
          .add();
      reg.counter("threadpool.chunks", {}, obs::Stability::kBestEffort)
          .add(chunks);
      reg.gauge("threadpool.queue_depth.max", {}, obs::Stability::kBestEffort)
          .update_max(static_cast<double>(queue_.size()));
    }
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&batch] { return batch->remaining == 0; });
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

}  // namespace codesign
