// strings.hpp — string formatting and parsing helpers shared by the CLI,
// the table writers, and the report generators.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace codesign {

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Lower-case ASCII copy.
std::string to_lower(std::string s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Render a byte count with a binary suffix, e.g. "1.50 GiB".
std::string human_bytes(double bytes);

/// Render a FLOP count with an SI suffix, e.g. "2.35 TFLOP".
std::string human_flops(double flops);

/// Render a duration (seconds) with an adaptive unit, e.g. "132.4 us".
std::string human_time(double seconds);

/// Render a parameter count, e.g. "2.65B", "410M".
std::string human_count(double count);

/// Join a vector of strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse a base-10 integer; throws codesign::Error on malformed input or
/// int64 overflow.
std::int64_t parse_int(std::string_view s);

/// Parse a finite double; throws codesign::Error on malformed input,
/// overflow, or non-finite values (nan/inf are rejected).
double parse_double(std::string_view s);

}  // namespace codesign
