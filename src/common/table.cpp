#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace codesign {

TableFormat parse_table_format(const std::string& name) {
  const std::string fmt = to_lower(name);
  if (fmt == "ascii") return TableFormat::kAscii;
  if (fmt == "csv") return TableFormat::kCsv;
  if (fmt == "markdown" || fmt == "md") return TableFormat::kMarkdown;
  throw Error("--format must be ascii, csv, or markdown; got '" + fmt + "'");
}

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CODESIGN_CHECK(!header_.empty(), "table must have at least one column");
}

TableWriter& TableWriter::new_row() {
  finish_pending_row();
  pending_open_ = true;
  pending_.clear();
  return *this;
}

TableWriter& TableWriter::cell(std::string value) {
  CODESIGN_CHECK(pending_open_, "cell() called before new_row()");
  pending_.push_back(std::move(value));
  return *this;
}

TableWriter& TableWriter::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

TableWriter& TableWriter::cell(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return cell(os.str());
}

void TableWriter::add_row(std::vector<std::string> row) {
  finish_pending_row();
  CODESIGN_CHECK(row.size() == header_.size(),
                 "row width does not match header width");
  rows_.push_back(std::move(row));
}

void TableWriter::finish_pending_row() {
  if (!pending_open_) return;
  pending_open_ = false;
  std::vector<std::string> row = std::move(pending_);
  pending_.clear();
  CODESIGN_CHECK(row.size() == header_.size(),
                 "row width does not match header width");
  rows_.push_back(std::move(row));
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string TableWriter::render(TableFormat format) const {
  // Renders a snapshot; flush the row under construction first.
  const_cast<TableWriter*>(this)->finish_pending_row();
  std::ostringstream os;
  write(os, format);
  return os.str();
}

void TableWriter::write(std::ostream& os, TableFormat format) const {
  const_cast<TableWriter*>(this)->finish_pending_row();
  if (format == TableFormat::kCsv) {
    auto emit = [&os](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i != 0) os << ',';
        os << csv_escape(row[i]);
      }
      os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
    return;
  }

  // Column widths for aligned output.
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto pad = [](const std::string& s, std::size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };

  if (format == TableFormat::kMarkdown) {
    os << '|';
    for (std::size_t i = 0; i < header_.size(); ++i) {
      os << ' ' << pad(header_[i], widths[i]) << " |";
    }
    os << "\n|";
    for (std::size_t i = 0; i < header_.size(); ++i) {
      os << std::string(widths[i] + 2, '-') << '|';
    }
    os << '\n';
    for (const auto& row : rows_) {
      os << '|';
      for (std::size_t i = 0; i < row.size(); ++i) {
        os << ' ' << pad(row[i], widths[i]) << " |";
      }
      os << '\n';
    }
    return;
  }

  // ASCII
  auto rule = [&] {
    for (std::size_t i = 0; i < header_.size(); ++i) {
      os << '+' << std::string(widths[i] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << "| " << pad(row[i], widths[i]) << ' ';
    }
    os << "|\n";
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

}  // namespace codesign
