#include "common/failpoint.hpp"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "common/strings.hpp"

namespace codesign::fail {

namespace detail {
std::atomic<int> g_armed_count{0};
}  // namespace detail

namespace {

enum class Mode { kAlways, kOnce, kEvery, kProb };

/// One armed site. The spec fields are immutable after configure(); only
/// the counters mutate on the hit path, and they are atomics.
struct Site {
  Mode mode = Mode::kAlways;
  std::uint64_t n = 1;          ///< once:N / every:N argument
  double probability = 0.0;     ///< prob:P argument
  std::uint64_t seed = 1;       ///< prob seed
  bool transient = true;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fires{0};
};

struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Site>, std::less<>> armed;
  std::set<std::string, std::less<>> extra_sites;
  /// Counters survive disarming so tests can assert on a finished run.
  std::map<std::string, SiteStats, std::less<>> retired;
  /// Disarmed Site objects are kept alive for the process lifetime — a
  /// concurrent hit() may still hold a pointer. Parking them here (rather
  /// than release()) keeps them reachable, so LeakSanitizer stays quiet.
  std::vector<std::unique_ptr<Site>> graveyard;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

constexpr const char* kBuiltinSites[] = {
    "gemmsim.cache.lookup",
    "gemmsim.select_kernel",
    "gemmsim.des.simulate",
    "advisor.search.evaluate",
    "sweep.cell",
    "serve.accept",
    "serve.parse",
    "serve.dispatch",
    "serve.net.read_stall",
    "serve.net.write_drop",
    "serve.net.conn_close",
};

bool is_known_site_locked(Registry& r, std::string_view name) {
  for (const char* s : kBuiltinSites) {
    if (name == s) return true;
  }
  return r.extra_sites.count(name) > 0;
}

/// SplitMix64 finalizer — the per-(seed, token) fire decision for prob
/// triggers. Stateless, so the decision is a pure function of the token and
/// cannot depend on hit order or thread interleaving.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

bool prob_fires(const Site& site, std::uint64_t token) {
  const std::uint64_t h = mix64(site.seed * 0x632BE59BD9B4E019ULL + token);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  return u < site.probability;
}

[[noreturn]] void fire(std::string_view name, Site& site) {
  site.fires.fetch_add(1, std::memory_order_relaxed);
  throw InjectedFault(
      str_format("injected fault at failpoint '%.*s' (%s)",
                 static_cast<int>(name.size()), name.data(),
                 site.transient ? "transient" : "fatal"),
      site.transient);
}

void evaluate_hit(std::string_view name, bool has_token,
                  std::uint64_t token) {
  Site* site = nullptr;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.armed.find(name);
    if (it == r.armed.end()) return;
    site = it->second.get();
  }
  // The Site object is never destroyed (configure/clear fold its counters
  // into `retired` and park the allocation in the graveyard), so using it
  // outside the lock is safe.
  const std::uint64_t hit_index =
      site->hits.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
  switch (site->mode) {
    case Mode::kAlways:
      fire(name, *site);
    case Mode::kOnce:
      if (hit_index == site->n) fire(name, *site);
      return;
    case Mode::kEvery:
      if (hit_index % site->n == 0) fire(name, *site);
      return;
    case Mode::kProb:
      if (prob_fires(*site, has_token ? token : hit_index)) fire(name, *site);
      return;
  }
}

/// Parse one "<site>=<trigger>[:args][:transient|:fatal]" entry.
void configure_one(const std::string& entry) {
  const auto eq = entry.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
    throw ConfigError("failpoint spec '" + entry +
                      "' is malformed (want site=trigger[:args])");
  }
  const std::string name{trim(entry.substr(0, eq))};
  std::vector<std::string> tokens = split(entry.substr(eq + 1), ':');
  for (std::string& t : tokens) t = std::string(trim(t));

  auto site = std::make_unique<Site>();
  // Trailing transient/fatal classifier (default transient).
  if (!tokens.empty() &&
      (iequals(tokens.back(), "transient") || iequals(tokens.back(), "fatal"))) {
    site->transient = iequals(tokens.back(), "transient");
    tokens.pop_back();
  }
  if (tokens.empty() || tokens[0].empty()) {
    throw ConfigError("failpoint '" + name + "' has an empty trigger");
  }
  const std::string& mode = tokens[0];
  const std::size_t args = tokens.size() - 1;

  bool disarm = false;
  if (iequals(mode, "off")) {
    if (args != 0) {
      throw ConfigError("failpoint '" + name + "': off takes no arguments");
    }
    disarm = true;
  } else if (iequals(mode, "always")) {
    if (args != 0) {
      throw ConfigError("failpoint '" + name + "': always takes no arguments");
    }
    site->mode = Mode::kAlways;
  } else if (iequals(mode, "once") || iequals(mode, "every")) {
    if (args != 1) {
      throw ConfigError("failpoint '" + name + "': " + mode +
                        " takes exactly one argument (N)");
    }
    const std::int64_t n = parse_int(tokens[1]);
    if (n <= 0) {
      throw ConfigError("failpoint '" + name + "': N must be >= 1, got " +
                        tokens[1]);
    }
    site->mode = iequals(mode, "once") ? Mode::kOnce : Mode::kEvery;
    site->n = static_cast<std::uint64_t>(n);
  } else if (iequals(mode, "prob")) {
    if (args < 1 || args > 2) {
      throw ConfigError("failpoint '" + name +
                        "': prob takes P and an optional seed");
    }
    site->mode = Mode::kProb;
    site->probability = parse_double(tokens[1]);
    if (!(site->probability >= 0.0 && site->probability <= 1.0)) {
      throw ConfigError("failpoint '" + name + "': P must be in [0, 1], got " +
                        tokens[1]);
    }
    if (args == 2) {
      site->seed = static_cast<std::uint64_t>(parse_int(tokens[2]));
    }
  } else {
    throw ConfigError("failpoint '" + name + "': unknown trigger '" + mode +
                      "' (off|always|once:N|every:N|prob:P[:seed])");
  }

  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (!is_known_site_locked(r, name)) {
    throw ConfigError("unknown failpoint site '" + name +
                      "' (run with a name from fail::known_sites())");
  }
  auto it = r.armed.find(name);
  if (it != r.armed.end()) {
    // Re-arming (or disarming) an armed site: fold its counters into the
    // retired totals, then park the old Site in the graveyard — a
    // concurrent hit() may still hold a pointer to it.
    SiteStats& t = r.retired[std::string(name)];
    t.hits += it->second->hits.load(std::memory_order_relaxed);
    t.fires += it->second->fires.load(std::memory_order_relaxed);
    r.graveyard.push_back(std::move(it->second));
    r.armed.erase(it);
    detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  if (!disarm) {
    r.armed.emplace(name, std::move(site));
    detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void configure(const std::string& spec) {
  for (const std::string& part : split(spec, ',')) {
    const std::string entry{trim(part)};
    if (entry.empty()) continue;
    configure_one(entry);
  }
}

void configure_from_env() {
  const char* spec = std::getenv("CODESIGN_FAILPOINTS");
  if (spec != nullptr && *spec != '\0') configure(spec);
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, site] : r.armed) {
    (void)name;
    r.graveyard.push_back(std::move(site));  // keep alive, see configure_one
    detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  r.armed.clear();
  r.retired.clear();
}

std::vector<std::string> known_sites() {
  std::vector<std::string> out(std::begin(kBuiltinSites),
                               std::end(kBuiltinSites));
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  out.insert(out.end(), r.extra_sites.begin(), r.extra_sites.end());
  return out;
}

void register_site(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.extra_sites.insert(name);
}

SiteStats stats(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  SiteStats s;
  auto retired = r.retired.find(name);
  if (retired != r.retired.end()) s = retired->second;
  auto it = r.armed.find(name);
  if (it != r.armed.end()) {
    s.hits += it->second->hits.load(std::memory_order_relaxed);
    s.fires += it->second->fires.load(std::memory_order_relaxed);
  }
  return s;
}

void hit(std::string_view site) { evaluate_hit(site, false, 0); }

void hit(std::string_view site, std::uint64_t token) {
  evaluate_hit(site, true, token);
}

std::uint64_t token(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64-bit
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace codesign::fail
