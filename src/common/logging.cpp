#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/strings.hpp"

namespace codesign {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized
std::mutex g_io_mutex;

LogLevel level_from_env() {
  const char* env = std::getenv("CODESIGN_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  const std::string v = to_lower(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() {
  int v = g_level.load();
  if (v < 0) {
    const LogLevel env = level_from_env();
    g_level.store(static_cast<int>(env));
    return env;
  }
  return static_cast<LogLevel>(v);
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace codesign
