#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/strings.hpp"

namespace codesign {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  const std::string v = to_lower(std::string(trim(name)));
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn" || v == "warning") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return std::nullopt;
}

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() {
  int v = g_level.load();
  if (v < 0) {
    const char* env = std::getenv("CODESIGN_LOG");
    LogLevel resolved = LogLevel::kInfo;
    bool unknown = false;
    if (env != nullptr) {
      if (const auto parsed = parse_log_level(env)) {
        resolved = *parsed;
      } else {
        unknown = true;
      }
    }
    // First caller wins the initialization race and owns the (one-time)
    // bad-value warning; everyone else adopts the stored level.
    int expected = -1;
    if (g_level.compare_exchange_strong(expected,
                                        static_cast<int>(resolved))) {
      if (unknown) {
        const std::lock_guard<std::mutex> lock(g_io_mutex);
        std::fprintf(stderr,
                     "[WARN] unknown CODESIGN_LOG value '%s' "
                     "(expected debug|info|warn|error); using info\n",
                     env);
      }
      return resolved;
    }
    return static_cast<LogLevel>(g_level.load());
  }
  return static_cast<LogLevel>(v);
}

void reset_log_level_for_testing() { g_level.store(-1); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  const std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace codesign
