// thread_pool.hpp — a small fixed-size worker pool with a chunked
// parallel_for, used to fan design-space searches out across cores.
//
// Design constraints (see docs/search_pipeline.md):
//   * deterministic results: parallel_for hands out index ranges, callers
//     write into pre-sized slots, so the output never depends on worker
//     interleaving — only wall-clock does.
//   * exception safety: the first exception thrown by any chunk is captured
//     and rethrown on the calling thread once every worker has drained; the
//     pool stays usable afterwards.
//   * a pool of size 1 still routes work through its worker thread, so the
//     single-threaded path exercises the same code under TSan as N threads.
#pragma once

#include <cstddef>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace codesign {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 resolves to hardware_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Invoke fn(i) for every i in [0, n), partitioned into contiguous chunks
  /// of ~grain indices spread across the workers. Blocks until all chunks
  /// drained. If any invocation throws, the first exception (in completion
  /// order) is rethrown here; chunks that have not started when the failure
  /// is recorded observe a fast-fail flag and skip their bodies, so a
  /// failing call does not execute the full remaining index range.
  /// grain == 0 picks a chunk size targeting ~4 chunks per worker.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Chunk-level variant of parallel_for: fn(begin, end) is invoked once
  /// per contiguous chunk instead of once per index, so the body can set up
  /// per-chunk state (a reusable workspace, a batch buffer) and amortize it
  /// across the chunk's indices. Same chunking, blocking, fast-fail, and
  /// first-exception-rethrow semantics as parallel_for — which is itself
  /// implemented on top of this.
  void parallel_for_ranges(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 0);

  /// Enqueue one independent task and return immediately (the serve worker
  /// pool's entry point, vs parallel_for's blocking fan-out). Tasks are
  /// expected to handle their own errors; an exception that does escape is
  /// swallowed — logged and counted in threadpool.task_errors — so one bad
  /// task cannot take down the pool's worker thread. The destructor drains
  /// every queued task before joining, so submitted work always runs.
  void submit(std::function<void()> task);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// Chunked map: out[i] = fn(in[i]) for every element, evaluated on the pool.
/// Output order always matches input order regardless of thread count.
template <typename T, typename F>
auto parallel_map(ThreadPool& pool, const std::vector<T>& in, F&& fn)
    -> std::vector<decltype(fn(in.front()))> {
  std::vector<decltype(fn(in.front()))> out(in.size());
  pool.parallel_for(in.size(),
                    [&](std::size_t i) { out[i] = fn(in[i]); });
  return out;
}

}  // namespace codesign
