// tile_config.hpp — the CUTLASS-style thread-block tile catalogue.
//
// A GEMM kernel partitions the output matrix into tm × tn tiles, one per
// thread block (paper Fig 3). The library of available tiles and their
// intrinsic efficiencies is what makes tile quantization and kernel
// selection observable: a fixed large tile wastes compute on partial tiles
// (Fig 5b), while a selection heuristic over the catalogue can trade tile
// efficiency against quantization (Fig 5c).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpuarch/gpu_spec.hpp"

namespace codesign::gpu {

struct TileConfig {
  std::int64_t tm = 0;  ///< output tile rows
  std::int64_t tn = 0;  ///< output tile columns
  std::int64_t tk = 32; ///< k-slice depth per mainloop iteration

  /// Fraction of the (alignment-adjusted) tensor-core rate a thread block
  /// of this shape achieves when compute-bound. Larger tiles amortize
  /// operand loads over more math and run closer to peak.
  double intrinsic_efficiency = 0.0;

  /// How many such blocks an SM can host concurrently (bounded by shared
  /// memory and register footprint).
  int blocks_per_sm = 1;

  std::string name() const;

  /// Number of output tiles for an m×n problem (per batch entry):
  /// ceil(m/tm) * ceil(n/tn). This is the tile-quantization ceil.
  std::int64_t tiles_for(std::int64_t m, std::int64_t n) const;
};

/// The default catalogue, largest to smallest. Intrinsic efficiencies are
/// calibrated against the shape (not absolute values) of the paper's Fig 5:
/// large square-ish tiles approach ~88% of achievable math rate, small tiles
/// fall off steeply.
const std::vector<TileConfig>& default_tile_catalogue();

/// The single most efficient tile (256×128), used when modelling a fixed-
/// tile kernel as in Fig 5b.
const TileConfig& largest_tile();

/// Find a catalogue entry by "256x128"-style name; throws LookupError.
const TileConfig& tile_by_name(const std::string& name);

}  // namespace codesign::gpu
