// dtype.hpp — element types understood by the performance model.
//
// The paper's experiments are fp16 (the alignment thresholds are stated in
// bytes: 16 B on V100 and 128 B on A100, i.e. 8 and 64 fp16 elements). The
// model works in bytes so other dtypes fall out naturally.
#pragma once

#include <cstddef>
#include <string>

namespace codesign::gpu {

enum class DType { kFP16, kBF16, kFP32, kTF32, kFP64, kINT8 };

/// Size of one element in bytes.
constexpr std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::kFP16:
    case DType::kBF16:
      return 2;
    case DType::kFP32:
    case DType::kTF32:
      return 4;
    case DType::kFP64:
      return 8;
    case DType::kINT8:
      return 1;
  }
  return 0;  // unreachable
}

std::string dtype_name(DType t);

/// Parse "fp16"/"bf16"/"fp32"/"tf32"/"fp64"/"int8"; throws LookupError.
DType dtype_from_name(const std::string& name);

}  // namespace codesign::gpu
