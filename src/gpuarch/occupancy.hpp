// occupancy.hpp — shared-memory occupancy model for the tile catalogue.
//
// A GEMM thread block stages tiles of A (tm×tk) and B (tk×tn) through
// shared memory with multi-stage software pipelining, so its footprint is
//   smem = stages · (tm + tn) · tk · element_size
// and the number of blocks an SM can host concurrently is
//   blocks = min(max_blocks_per_sm, smem_per_sm / smem_per_block).
//
// The catalogue's hard-coded blocks_per_sm values are exactly this formula
// evaluated for Ampere (164 KiB of shared memory, 4 stages, fp16) — a
// consistency the tests assert — while this module lets callers evaluate
// occupancy for other architectures (e.g. Volta's 96 KiB halves the
// occupancy of the mid-sized tiles) and dtypes.
#pragma once

#include <cstdint>

#include "gpuarch/dtype.hpp"
#include "gpuarch/gpu_spec.hpp"
#include "gpuarch/tile_config.hpp"

namespace codesign::gpu {

/// Pipeline stages assumed by the catalogue's occupancy numbers.
constexpr int kDefaultPipelineStages = 4;

struct OccupancyInfo {
  std::int64_t smem_bytes_per_block = 0;
  int blocks_by_smem = 0;     ///< smem_per_sm / smem_per_block (>= 0)
  int blocks_cap = 0;         ///< the GpuSpec residency cap
  int blocks_per_sm = 0;      ///< min of the two, at least 1 when feasible
  bool feasible = true;       ///< false if one block exceeds shared memory
  /// Fraction of shared memory used at the resulting residency.
  double smem_utilization = 0.0;
};

/// Evaluate the occupancy of one tile configuration on a GPU.
OccupancyInfo tile_occupancy(const TileConfig& tile, const GpuSpec& gpu,
                             DType dtype = DType::kFP16,
                             int stages = kDefaultPipelineStages);

/// The largest catalogue tile that still fits `min_blocks` blocks per SM
/// on this GPU (used to reason about why older parts prefer smaller
/// tiles). Throws LookupError if nothing fits.
const TileConfig& largest_feasible_tile(const GpuSpec& gpu,
                                        DType dtype = DType::kFP16,
                                        int min_blocks = 1,
                                        int stages = kDefaultPipelineStages);

}  // namespace codesign::gpu
