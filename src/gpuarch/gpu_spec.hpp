// gpu_spec.hpp — datasheet-level description of a GPU.
//
// These are the architectural constants the paper's analysis hinges on:
//   * sm_count            — drives wave quantization (80 / 108 / 132 / 110)
//   * tensor-core peak    — the math roof of the roofline
//   * HBM bandwidth       — the memory roof
//   * tc alignment bytes  — the 16 B (V100) / 128 B (A100,H100) full-
//                           efficiency granule of Section III-B
//
// All rates are *dense* peaks from public datasheets; the model separately
// applies an "achievable fraction" because no real kernel reaches peak.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpuarch/dtype.hpp"

namespace codesign::gpu {

/// One step of the alignment-efficiency ladder: dimensions whose byte size
/// is divisible by `granule_bytes` (but not the next larger step) run at
/// `efficiency` of the full tensor-core rate. See tensor_core.hpp.
struct AlignmentStep {
  std::int64_t granule_bytes;
  double efficiency;
};

struct GpuSpec {
  std::string id;              ///< registry key, e.g. "a100-40gb"
  std::string marketing_name;  ///< e.g. "NVIDIA A100-SXM4-40GB"
  std::string vendor;          ///< "NVIDIA" or "AMD"

  int sm_count = 0;            ///< SMs (NVIDIA) / CUs (AMD, one GCD)
  double boost_clock_ghz = 0;

  // Peak dense math rates, FLOP/s.
  double tensor_flops_fp16 = 0;  ///< tensor-core / matrix-core fp16
  double tensor_flops_bf16 = 0;
  double tensor_flops_tf32 = 0;  ///< tensor-core tf32 (fp32 inputs routed to TC)
  double vector_flops_fp32 = 0;  ///< CUDA-core fp32 (non-TC fallback path)
  double vector_flops_fp16 = 0;  ///< CUDA-core fp16
  double vector_flops_fp64 = 0;

  // Memory system.
  double hbm_bandwidth = 0;    ///< bytes/s
  double hbm_capacity = 0;     ///< bytes
  double l2_bytes = 0;
  double smem_per_sm_bytes = 0;

  // Execution-model parameters.
  int max_blocks_per_sm = 4;           ///< residency cap used by the scheduler
  double kernel_launch_overhead = 4e-6;  ///< seconds; floor for any kernel
  double achievable_math_fraction = 0.85;  ///< best-kernel fraction of peak
  double achievable_mem_fraction = 0.85;   ///< best-kernel fraction of BW

  /// Full tensor-core efficiency requires every GEMM dimension, in bytes,
  /// to be a multiple of this (paper §III-B: 16 B on V100, 128 B on A100).
  std::int64_t tc_full_alignment_bytes = 128;
  /// Below this granule the tensor-core path is unusable and math falls
  /// back to the vector (CUDA-core) units.
  std::int64_t tc_min_alignment_bytes = 16;

  /// Descending ladder of (granule_bytes, efficiency); the first step whose
  /// granule divides the dimension's byte size applies. Must start at
  /// tc_full_alignment_bytes with efficiency 1.0.
  std::vector<AlignmentStep> alignment_ladder;

  /// Peak tensor math rate for a dtype (0 if the GPU has no TC path for it).
  double tensor_flops(DType t) const;
  /// Vector (fallback) math rate for a dtype.
  double vector_flops(DType t) const;
  /// Achievable (not peak) rates: peak × achievable fraction.
  double achievable_tensor_flops(DType t) const {
    return tensor_flops(t) * achievable_math_fraction;
  }
  double achievable_bandwidth() const {
    return hbm_bandwidth * achievable_mem_fraction;
  }
  /// Per-SM share of the tensor math rate.
  double tensor_flops_per_sm(DType t) const {
    return tensor_flops(t) / static_cast<double>(sm_count);
  }

  /// Sanity checks (positive rates, ladder well-formed); throws ConfigError.
  void validate() const;
};

/// Registry ------------------------------------------------------------

/// Look up a GPU by id (case-insensitive; common aliases accepted:
/// "a100" -> "a100-40gb", "v100" -> "v100-16gb", "h100" -> "h100-sxm",
/// "b200" -> "b200-sxm", "mi250x" -> "mi250x-gcd", "npu" -> "npu-edge").
/// Throws LookupError for unknown names.
const GpuSpec& gpu_by_name(const std::string& name);

/// All registry ids, sorted.
std::vector<std::string> known_gpus();

}  // namespace codesign::gpu
