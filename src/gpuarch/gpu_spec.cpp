#include "gpuarch/gpu_spec.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"

namespace codesign::gpu {

double GpuSpec::tensor_flops(DType t) const {
  switch (t) {
    case DType::kFP16: return tensor_flops_fp16;
    case DType::kBF16: return tensor_flops_bf16;
    case DType::kFP32:  // fp32 GEMMs route through TF32 tensor cores when
    case DType::kTF32:  // available (Ampere+); 0 on Volta means no TC path.
      return tensor_flops_tf32;
    case DType::kFP64: return 0.0;
    case DType::kINT8: return 2.0 * tensor_flops_fp16;  // typical 2x fp16
  }
  return 0.0;
}

double GpuSpec::vector_flops(DType t) const {
  switch (t) {
    case DType::kFP16:
    case DType::kBF16:
      return vector_flops_fp16;
    case DType::kFP32:
    case DType::kTF32:
      return vector_flops_fp32;
    case DType::kFP64: return vector_flops_fp64;
    case DType::kINT8: return vector_flops_fp32;
  }
  return 0.0;
}

void GpuSpec::validate() const {
  auto fail = [this](const std::string& what) {
    throw ConfigError("GpuSpec '" + id + "': " + what);
  };
  if (sm_count <= 0) fail("sm_count must be positive");
  if (tensor_flops_fp16 <= 0) fail("tensor_flops_fp16 must be positive");
  if (vector_flops_fp32 <= 0) fail("vector_flops_fp32 must be positive");
  if (hbm_bandwidth <= 0) fail("hbm_bandwidth must be positive");
  if (hbm_capacity <= 0) fail("hbm_capacity must be positive");
  if (l2_bytes <= 0) fail("l2_bytes must be positive");
  if (max_blocks_per_sm <= 0) fail("max_blocks_per_sm must be positive");
  if (kernel_launch_overhead < 0) fail("kernel_launch_overhead negative");
  if (achievable_math_fraction <= 0 || achievable_math_fraction > 1.0)
    fail("achievable_math_fraction out of (0, 1]");
  if (achievable_mem_fraction <= 0 || achievable_mem_fraction > 1.0)
    fail("achievable_mem_fraction out of (0, 1]");
  if (tc_min_alignment_bytes <= 0 ||
      tc_full_alignment_bytes < tc_min_alignment_bytes)
    fail("alignment byte thresholds inconsistent");
  if (alignment_ladder.empty()) fail("alignment ladder empty");
  if (alignment_ladder.front().granule_bytes != tc_full_alignment_bytes ||
      alignment_ladder.front().efficiency != 1.0)
    fail("ladder must start at full alignment with efficiency 1.0");
  for (std::size_t i = 1; i < alignment_ladder.size(); ++i) {
    if (alignment_ladder[i].granule_bytes >=
        alignment_ladder[i - 1].granule_bytes)
      fail("ladder granules must be strictly decreasing");
    if (alignment_ladder[i].efficiency >= alignment_ladder[i - 1].efficiency)
      fail("ladder efficiencies must be strictly decreasing");
    if (alignment_ladder[i].efficiency <= 0)
      fail("ladder efficiencies must be positive");
  }
}

namespace {

// Alignment-efficiency ladders. Step values are calibrated so the model
// reproduces the paper's *relative* effects (see tests/test_calibration.cpp):
// the Fig-7/8/9 power-of-two series spread (~5x between odd and 64-element
// aligned h/a on A100), the ~1.18x GPT-3 2.7B reshape, and the Fig-20
// vocab-padding cliff. They are not datasheet numbers; they stand in for
// the empirical cuBLAS kernel behaviour the paper measures.
std::vector<AlignmentStep> ampere_ladder() {
  return {
      {128, 1.00},  // 64 fp16 elements — full tensor-core efficiency
      {64, 0.62},   // 32 elements
      {32, 0.45},   // 16 elements (GPT-3 2.7B's h/a = 80 lands here)
      {16, 0.38},   // 8 elements — minimum tensor-core granule
      {8, 0.32},    // padded tensor-core path
      {4, 0.28},
      {2, 0.25},    // even but barely
      {1, 0.22},    // odd element counts (e.g. v = 50257)
  };
}

std::vector<AlignmentStep> volta_ladder() {
  return {
      {16, 1.00},  // 8 fp16 elements — Volta's full-efficiency granule
      {8, 0.60},
      {4, 0.38},
      {2, 0.25},
      {1, 0.20},
  };
}

std::vector<AlignmentStep> cdna2_ladder() {
  return {
      {64, 1.00},  // 32 fp16 elements (MFMA 32x32x8 granule)
      {32, 0.72},
      {16, 0.52},
      {8, 0.38},
      {4, 0.28},
      {2, 0.20},
      {1, 0.16},
  };
}

GpuSpec make_v100(std::string id, double capacity_bytes) {
  GpuSpec g;
  g.id = std::move(id);
  g.marketing_name = "NVIDIA V100-SXM2";
  g.vendor = "NVIDIA";
  g.sm_count = 80;
  g.boost_clock_ghz = 1.53;
  g.tensor_flops_fp16 = 125 * TFLOPS;
  g.tensor_flops_bf16 = 0;  // Volta has no bf16 tensor cores
  g.tensor_flops_tf32 = 0;  // no TF32 path; fp32 falls back to CUDA cores
  g.vector_flops_fp32 = 15.7 * TFLOPS;
  g.vector_flops_fp16 = 31.4 * TFLOPS;
  g.vector_flops_fp64 = 7.8 * TFLOPS;
  g.hbm_bandwidth = 900 * GBps;
  g.hbm_capacity = capacity_bytes;
  g.l2_bytes = 6 * MiB;
  g.smem_per_sm_bytes = 96 * KiB;
  g.tc_full_alignment_bytes = 16;  // paper §III-B: 16 B on V100
  g.tc_min_alignment_bytes = 16;
  g.alignment_ladder = volta_ladder();
  return g;
}

GpuSpec make_a100(std::string id, double capacity_bytes, double bandwidth) {
  GpuSpec g;
  g.id = std::move(id);
  g.marketing_name = "NVIDIA A100-SXM4";
  g.vendor = "NVIDIA";
  g.sm_count = 108;
  g.boost_clock_ghz = 1.41;
  g.tensor_flops_fp16 = 312 * TFLOPS;
  g.tensor_flops_bf16 = 312 * TFLOPS;
  g.tensor_flops_tf32 = 156 * TFLOPS;
  g.vector_flops_fp32 = 19.5 * TFLOPS;
  g.vector_flops_fp16 = 78 * TFLOPS;
  g.vector_flops_fp64 = 9.7 * TFLOPS;
  g.hbm_bandwidth = bandwidth;
  g.hbm_capacity = capacity_bytes;
  g.l2_bytes = 40 * MiB;
  g.smem_per_sm_bytes = 164 * KiB;
  g.tc_full_alignment_bytes = 128;  // paper §III-B: 128 B on A100
  g.tc_min_alignment_bytes = 16;
  g.alignment_ladder = ampere_ladder();
  return g;
}

GpuSpec make_h100() {
  GpuSpec g;
  g.id = "h100-sxm";
  g.marketing_name = "NVIDIA H100-SXM5";
  g.vendor = "NVIDIA";
  g.sm_count = 132;
  g.boost_clock_ghz = 1.83;
  g.tensor_flops_fp16 = 989 * TFLOPS;  // dense (no sparsity)
  g.tensor_flops_bf16 = 989 * TFLOPS;
  g.tensor_flops_tf32 = 494 * TFLOPS;
  g.vector_flops_fp32 = 67 * TFLOPS;
  g.vector_flops_fp16 = 134 * TFLOPS;
  g.vector_flops_fp64 = 34 * TFLOPS;
  g.hbm_bandwidth = 3350 * GBps;
  g.hbm_capacity = 80 * GiB;
  g.l2_bytes = 50 * MiB;
  g.smem_per_sm_bytes = 228 * KiB;
  g.tc_full_alignment_bytes = 128;
  g.tc_min_alignment_bytes = 16;
  g.alignment_ladder = ampere_ladder();  // Hopper keeps the 128 B granule
  return g;
}

std::vector<AlignmentStep> cdna3_ladder() {
  return {
      {64, 1.00},  // 32 fp16 elements — MFMA granule carried over from CDNA2
      {32, 0.75},  // CDNA3 narrows the misalignment cliff slightly
      {16, 0.55},
      {8, 0.40},
      {4, 0.30},
      {2, 0.22},
      {1, 0.18},
  };
}

std::vector<AlignmentStep> npu_ladder() {
  // Edge NPUs run fixed-shape systolic/MAC arrays with little of the kernel
  // variety a datacenter GPU ships, so off-granule shapes pay a steeper
  // penalty than any of the GPU ladders above.
  return {
      {64, 1.00},
      {32, 0.55},
      {16, 0.40},
      {8, 0.30},
      {4, 0.22},
      {2, 0.18},
      {1, 0.15},
  };
}

GpuSpec make_mi250x_gcd() {
  // The MI250X is two GCDs on one package; software sees each GCD as a
  // device, so we model one GCD (matching how GPT-NeoX/Megatron ran on
  // Frontier-class systems).
  GpuSpec g;
  g.id = "mi250x-gcd";
  g.marketing_name = "AMD Instinct MI250X (one GCD)";
  g.vendor = "AMD";
  g.sm_count = 110;  // compute units per GCD
  g.boost_clock_ghz = 1.7;
  g.tensor_flops_fp16 = 191.5 * TFLOPS;  // matrix-core fp16, per GCD
  g.tensor_flops_bf16 = 191.5 * TFLOPS;
  g.tensor_flops_tf32 = 47.9 * TFLOPS;   // fp32 matrix rate
  g.vector_flops_fp32 = 23.9 * TFLOPS;
  g.vector_flops_fp16 = 47.9 * TFLOPS;
  g.vector_flops_fp64 = 23.9 * TFLOPS;
  g.hbm_bandwidth = 1638 * GBps;  // half of the package's 3.2 TB/s
  g.hbm_capacity = 64 * GiB;
  g.l2_bytes = 8 * MiB;
  g.smem_per_sm_bytes = 64 * KiB;
  g.tc_full_alignment_bytes = 64;
  g.tc_min_alignment_bytes = 8;
  g.alignment_ladder = cdna2_ladder();
  return g;
}

GpuSpec make_b200() {
  // Blackwell-class datacenter part. Class-representative numbers (dense,
  // no sparsity), standing in for a B200-SXM: the point of this entry is a
  // hardware axis sample with ~2.3x H100 math and ~2.4x H100 bandwidth,
  // not a datasheet reproduction.
  GpuSpec g;
  g.id = "b200-sxm";
  g.marketing_name = "NVIDIA B200-SXM (Blackwell class)";
  g.vendor = "NVIDIA";
  g.sm_count = 148;
  g.boost_clock_ghz = 1.96;
  g.tensor_flops_fp16 = 2250 * TFLOPS;  // dense (no sparsity)
  g.tensor_flops_bf16 = 2250 * TFLOPS;
  g.tensor_flops_tf32 = 1125 * TFLOPS;
  g.vector_flops_fp32 = 75 * TFLOPS;
  g.vector_flops_fp16 = 150 * TFLOPS;
  g.vector_flops_fp64 = 37 * TFLOPS;
  g.hbm_bandwidth = 8000 * GBps;  // HBM3e
  g.hbm_capacity = 192 * GiB;
  g.l2_bytes = 126 * MiB;
  g.smem_per_sm_bytes = 228 * KiB;
  g.tc_full_alignment_bytes = 128;
  g.tc_min_alignment_bytes = 16;
  g.alignment_ladder = ampere_ladder();  // Blackwell keeps the 128 B granule
  return g;
}

GpuSpec make_mi300x() {
  // CDNA3 flagship: one logical device (no GCD split like the MI250X).
  GpuSpec g;
  g.id = "mi300x";
  g.marketing_name = "AMD Instinct MI300X";
  g.vendor = "AMD";
  g.sm_count = 304;  // compute units across all XCDs
  g.boost_clock_ghz = 2.1;
  g.tensor_flops_fp16 = 1307 * TFLOPS;  // matrix-core fp16, dense
  g.tensor_flops_bf16 = 1307 * TFLOPS;
  g.tensor_flops_tf32 = 163.4 * TFLOPS;  // fp32 matrix rate
  g.vector_flops_fp32 = 81.7 * TFLOPS;
  g.vector_flops_fp16 = 163.4 * TFLOPS;
  g.vector_flops_fp64 = 81.7 * TFLOPS;
  g.hbm_bandwidth = 5300 * GBps;
  g.hbm_capacity = 192 * GiB;
  g.l2_bytes = 32 * MiB;  // 4 MiB per XCD; Infinity Cache modelled via HBM BW
  g.smem_per_sm_bytes = 64 * KiB;
  g.tc_full_alignment_bytes = 64;
  g.tc_min_alignment_bytes = 8;
  g.alignment_ladder = cdna3_ladder();
  return g;
}

GpuSpec make_npu_edge() {
  // On-device/NPU-class point for the scenario matrix (ROADMAP: "one
  // on-device/NPU-class point"). Class-representative of a premium
  // phone/laptop NPU tile: tens of TFLOPS of dense fp16 MAC-array math
  // behind a shared LPDDR bus — two orders of magnitude less bandwidth
  // than an HBM part, so the compute/memory balance point sits at a far
  // higher arithmetic intensity and small decode batches go memory-bound
  // almost immediately.
  GpuSpec g;
  g.id = "npu-edge";
  g.marketing_name = "On-device NPU (edge class)";
  g.vendor = "generic";
  g.sm_count = 8;  // MAC-array tiles
  g.boost_clock_ghz = 1.0;
  g.tensor_flops_fp16 = 20 * TFLOPS;
  g.tensor_flops_bf16 = 20 * TFLOPS;
  g.tensor_flops_tf32 = 0;  // no tf32 path; fp32 falls back to vector ALUs
  g.vector_flops_fp32 = 2 * TFLOPS;
  g.vector_flops_fp16 = 4 * TFLOPS;
  g.vector_flops_fp64 = 0.1 * TFLOPS;
  g.hbm_bandwidth = 120 * GBps;  // shared LPDDR5X bus
  g.hbm_capacity = 16 * GiB;    // unified memory visible to the NPU
  g.l2_bytes = 8 * MiB;         // on-chip SRAM scratch
  g.smem_per_sm_bytes = 128 * KiB;
  g.kernel_launch_overhead = 20e-6;  // driver/DSP round-trip per dispatch
  g.achievable_math_fraction = 0.70;  // thinner kernel library than cuBLAS
  g.achievable_mem_fraction = 0.70;   // contended shared LPDDR bus
  g.tc_full_alignment_bytes = 64;
  g.tc_min_alignment_bytes = 16;
  g.alignment_ladder = npu_ladder();
  return g;
}

const std::map<std::string, GpuSpec>& registry() {
  static const std::map<std::string, GpuSpec> reg = [] {
    std::map<std::string, GpuSpec> m;
    auto add = [&m](GpuSpec g) {
      g.validate();
      m.emplace(g.id, std::move(g));
    };
    add(make_v100("v100-16gb", 16 * GiB));
    add(make_v100("v100-32gb", 32 * GiB));
    add(make_a100("a100-40gb", 40 * GiB, 1555 * GBps));
    add(make_a100("a100-80gb", 80 * GiB, 2039 * GBps));
    add(make_h100());
    add(make_b200());
    add(make_mi250x_gcd());
    add(make_mi300x());
    add(make_npu_edge());
    return m;
  }();
  return reg;
}

std::string canonical_name(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "a100") return "a100-40gb";
  if (n == "v100") return "v100-16gb";
  if (n == "h100") return "h100-sxm";
  if (n == "b200") return "b200-sxm";
  if (n == "mi250x") return "mi250x-gcd";
  if (n == "npu") return "npu-edge";
  return n;
}

}  // namespace

const GpuSpec& gpu_by_name(const std::string& name) {
  const auto& reg = registry();
  const auto it = reg.find(canonical_name(name));
  if (it == reg.end()) {
    throw LookupError("unknown GPU '" + name + "'; known: " +
                      join(known_gpus(), ", "));
  }
  return it->second;
}

std::vector<std::string> known_gpus() {
  std::vector<std::string> out;
  for (const auto& [id, _] : registry()) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace codesign::gpu
