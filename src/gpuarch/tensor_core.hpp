// tensor_core.hpp — the alignment-efficiency model (paper §III-B, §VI-B).
//
// Tensor cores run at full rate only when every GEMM dimension, measured in
// bytes, is a multiple of the architecture's alignment requirement (16 B on
// V100, 128 B on A100/H100). Smaller power-of-two granules run at a reduced
// rate; below the minimum granule the math falls back to the vector (CUDA
// core) pipeline entirely. This module turns a (m, n, k, dtype, gpu) tuple
// into the efficiency factors the GEMM latency model consumes, and is the
// mechanism behind the paper's Figures 7–9, 20, and 21–47.
#pragma once

#include <cstdint>

#include "gpuarch/dtype.hpp"
#include "gpuarch/gpu_spec.hpp"

namespace codesign::gpu {

/// Efficiency of a single dimension: the ladder step selected by the largest
/// power of two dividing (dim * element_size) bytes, saturating at the
/// architecture's full-alignment granule. Returns a value in (0, 1].
double dim_alignment_efficiency(std::int64_t dim, DType dtype,
                                const GpuSpec& gpu);

/// True iff the dimension meets the minimum tensor-core granule (e.g. 8
/// fp16 elements on NVIDIA): dimensions below it force the fallback path.
bool dim_tensor_core_eligible(std::int64_t dim, DType dtype,
                              const GpuSpec& gpu);

/// Combined result for a full GEMM.
struct AlignmentEfficiency {
  double m = 1.0;
  double n = 1.0;
  double k = 1.0;
  /// Combined factor applied to the math rate. The worst-aligned dimension
  /// gates the MMA pipeline; a second misaligned dimension compounds it
  /// (softened): combined = min * sqrt(second_min).
  double combined = 1.0;
  /// False when any dimension is below the minimum tensor-core granule (or
  /// the GPU lacks a tensor path for the dtype), in which case the GEMM
  /// executes on the vector pipeline.
  bool tensor_cores = true;

  /// Largest power of two (in elements) dividing each dim — the quantity
  /// the paper's appendix figures use as the series key.
  std::int64_t pow2_m = 1;
  std::int64_t pow2_n = 1;
  std::int64_t pow2_k = 1;
};

/// Evaluate the alignment model for GEMM C(m×n) = A(m×k) · B(k×n).
AlignmentEfficiency alignment_efficiency(std::int64_t m, std::int64_t n,
                                         std::int64_t k, DType dtype,
                                         const GpuSpec& gpu);

/// The effective math rate (FLOP/s) for a GEMM with this alignment: the
/// tensor path scaled by `combined`, or the vector path when tensor cores
/// are unusable, never exceeding the achievable (not peak) rate.
double effective_math_rate(const AlignmentEfficiency& eff, DType dtype,
                           const GpuSpec& gpu);

/// Misaligned leading dimensions also break 128-byte coalesced memory
/// transactions, degrading the *memory* path. The paper's BMM data (Figs
/// 7–9) shows memory-bound attention GEMMs losing throughput with poor
/// h/a alignment, so the bandwidth penalty tracks the math penalty.
double effective_bandwidth(const AlignmentEfficiency& eff, const GpuSpec& gpu);

}  // namespace codesign::gpu
