#include "gpuarch/tensor_core.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace codesign::gpu {

namespace {

/// Largest power-of-two granule (bytes) dividing the dimension's byte size,
/// capped at the full-alignment requirement (larger alignment brings no
/// further benefit — the paper's "no further benefit beyond 64 elements").
std::int64_t byte_granule(std::int64_t dim, DType dtype, const GpuSpec& gpu) {
  CODESIGN_CHECK(dim > 0, "GEMM dimension must be positive");
  const auto bytes =
      static_cast<std::uint64_t>(dim) * static_cast<std::uint64_t>(dtype_size(dtype));
  const auto g = static_cast<std::int64_t>(largest_pow2_dividing(bytes));
  return std::min<std::int64_t>(g, gpu.tc_full_alignment_bytes);
}

double ladder_efficiency(std::int64_t granule_bytes, const GpuSpec& gpu) {
  for (const AlignmentStep& step : gpu.alignment_ladder) {
    if (granule_bytes >= step.granule_bytes) return step.efficiency;
  }
  // The ladder always terminates at granule 1 or 2; falling through means a
  // granule below the last step, which cannot happen for positive dims.
  return gpu.alignment_ladder.back().efficiency;
}

}  // namespace

double dim_alignment_efficiency(std::int64_t dim, DType dtype,
                                const GpuSpec& gpu) {
  return ladder_efficiency(byte_granule(dim, dtype, gpu), gpu);
}

bool dim_tensor_core_eligible(std::int64_t dim, DType dtype,
                              const GpuSpec& gpu) {
  return byte_granule(dim, dtype, gpu) >= gpu.tc_min_alignment_bytes;
}

AlignmentEfficiency alignment_efficiency(std::int64_t m, std::int64_t n,
                                         std::int64_t k, DType dtype,
                                         const GpuSpec& gpu) {
  AlignmentEfficiency out;
  out.m = dim_alignment_efficiency(m, dtype, gpu);
  out.n = dim_alignment_efficiency(n, dtype, gpu);
  out.k = dim_alignment_efficiency(k, dtype, gpu);
  out.pow2_m = static_cast<std::int64_t>(largest_pow2_dividing(m));
  out.pow2_n = static_cast<std::int64_t>(largest_pow2_dividing(n));
  out.pow2_k = static_cast<std::int64_t>(largest_pow2_dividing(k));

  double f[3] = {out.m, out.n, out.k};
  std::sort(f, f + 3);
  out.combined = f[0] * std::sqrt(f[1]);

  out.tensor_cores = gpu.tensor_flops(dtype) > 0 &&
                     dim_tensor_core_eligible(m, dtype, gpu) &&
                     dim_tensor_core_eligible(n, dtype, gpu) &&
                     dim_tensor_core_eligible(k, dtype, gpu);
  return out;
}

double effective_math_rate(const AlignmentEfficiency& eff, DType dtype,
                           const GpuSpec& gpu) {
  if (eff.tensor_cores) {
    return gpu.achievable_tensor_flops(dtype) * eff.combined;
  }
  // Fallback: vector pipeline, still degraded by alignment (uncoalesced
  // loads), but never slower than a fully-misaligned tensor attempt.
  const double vec =
      gpu.vector_flops(dtype) * gpu.achievable_math_fraction * eff.combined;
  const double tc_floor =
      gpu.achievable_tensor_flops(dtype) * eff.combined * 0.5;
  return std::max(vec, tc_floor);
}

double effective_bandwidth(const AlignmentEfficiency& eff, const GpuSpec& gpu) {
  // The memory path is gated by the worst-aligned dimension: misaligned
  // leading dimensions break 128-byte transactions, and the paper's BMM
  // measurements (Figs 7–9) show memory-bound attention GEMMs losing the
  // same multiple as the ladder step.
  const double worst = std::min({eff.m, eff.n, eff.k});
  return gpu.achievable_bandwidth() * worst;
}

}  // namespace codesign::gpu
