#include "gpuarch/occupancy.hpp"

#include "common/error.hpp"

namespace codesign::gpu {

OccupancyInfo tile_occupancy(const TileConfig& tile, const GpuSpec& gpu,
                             DType dtype, int stages) {
  CODESIGN_CHECK(stages >= 1, "pipeline stages must be >= 1");
  CODESIGN_CHECK(tile.tm > 0 && tile.tn > 0 && tile.tk > 0,
                 "tile dimensions must be positive");
  OccupancyInfo o;
  o.smem_bytes_per_block =
      static_cast<std::int64_t>(stages) * (tile.tm + tile.tn) * tile.tk *
      static_cast<std::int64_t>(dtype_size(dtype));
  o.blocks_cap = gpu.max_blocks_per_sm;
  const auto smem = static_cast<std::int64_t>(gpu.smem_per_sm_bytes);
  o.blocks_by_smem = static_cast<int>(smem / o.smem_bytes_per_block);
  if (o.blocks_by_smem < 1) {
    o.feasible = false;
    o.blocks_per_sm = 0;
    o.smem_utilization = 0.0;
    return o;
  }
  o.blocks_per_sm = std::min(o.blocks_by_smem, o.blocks_cap);
  o.smem_utilization =
      static_cast<double>(o.blocks_per_sm * o.smem_bytes_per_block) /
      gpu.smem_per_sm_bytes;
  return o;
}

const TileConfig& largest_feasible_tile(const GpuSpec& gpu, DType dtype,
                                        int min_blocks, int stages) {
  CODESIGN_CHECK(min_blocks >= 1, "min_blocks must be >= 1");
  // The catalogue is ordered largest to smallest by design.
  for (const TileConfig& tile : default_tile_catalogue()) {
    const OccupancyInfo o = tile_occupancy(tile, gpu, dtype, stages);
    if (o.feasible && o.blocks_per_sm >= min_blocks) return tile;
  }
  throw LookupError("no catalogue tile fits " + std::to_string(min_blocks) +
                    " block(s) in " + gpu.id + "'s shared memory");
}

}  // namespace codesign::gpu
