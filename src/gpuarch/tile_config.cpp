#include "gpuarch/tile_config.hpp"

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"

namespace codesign::gpu {

std::string TileConfig::name() const {
  return std::to_string(tm) + "x" + std::to_string(tn);
}

std::int64_t TileConfig::tiles_for(std::int64_t m, std::int64_t n) const {
  CODESIGN_CHECK(m > 0 && n > 0, "tile count needs positive dimensions");
  return ceil_div(m, tm) * ceil_div(n, tn);
}

const std::vector<TileConfig>& default_tile_catalogue() {
  // {tm, tn, tk, intrinsic_efficiency, blocks_per_sm}
  // Efficiency grows with tile area (operand reuse); occupancy shrinks with
  // the shared-memory footprint. The 256x128 / 128x256 pair mirrors the
  // cuBLAS "most efficient tile" the paper's analysis assumes.
  static const std::vector<TileConfig> catalogue = {
      {256, 128, 32, 0.88, 1},
      {128, 256, 32, 0.88, 1},
      {128, 128, 32, 0.80, 2},
      {256, 64, 32, 0.74, 2},
      {64, 256, 32, 0.74, 2},
      {128, 64, 32, 0.65, 3},
      {64, 128, 32, 0.65, 3},
      {64, 64, 32, 0.52, 4},
      {64, 32, 32, 0.40, 4},
      {32, 64, 32, 0.40, 4},
      {32, 32, 32, 0.28, 4},
  };
  return catalogue;
}

const TileConfig& largest_tile() { return default_tile_catalogue().front(); }

const TileConfig& tile_by_name(const std::string& name) {
  for (const TileConfig& t : default_tile_catalogue()) {
    if (iequals(t.name(), name)) return t;
  }
  throw LookupError("unknown tile config '" + name + "'");
}

}  // namespace codesign::gpu
