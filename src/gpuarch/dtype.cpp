#include "gpuarch/dtype.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace codesign::gpu {

std::string dtype_name(DType t) {
  switch (t) {
    case DType::kFP16: return "fp16";
    case DType::kBF16: return "bf16";
    case DType::kFP32: return "fp32";
    case DType::kTF32: return "tf32";
    case DType::kFP64: return "fp64";
    case DType::kINT8: return "int8";
  }
  return "?";
}

DType dtype_from_name(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "fp16" || n == "half") return DType::kFP16;
  if (n == "bf16" || n == "bfloat16") return DType::kBF16;
  if (n == "fp32" || n == "float") return DType::kFP32;
  if (n == "tf32") return DType::kTF32;
  if (n == "fp64" || n == "double") return DType::kFP64;
  if (n == "int8") return DType::kINT8;
  throw LookupError("unknown dtype: '" + name + "'");
}

}  // namespace codesign::gpu
