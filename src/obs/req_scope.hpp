// req_scope.hpp — request-scoped work attribution.
//
// The serve stack wants to know *where a request's time went*: how many
// GEMM estimates an advise rendered, how many candidates a search
// evaluated. The simulator and the search pipeline cannot depend on
// src/serve (layering), so the request context is inverted: the serve
// dispatcher binds a RequestScopeCounters to the executing thread, and the
// low-level hot paths increment through RequestScope::current() — one
// thread-local load and a null check when no request is bound, which is
// every non-serve caller.
//
// Determinism contract: these counters are *read-only observers* of work
// the simulator already did. Binding a scope never changes simulation
// results or payload bytes (byte-diff gated in tests/test_serve_trace.cpp).
//
// Threading: the bound counters are visible only to the binding thread.
// Serve executes each request on one worker thread with single-threaded
// search options, so per-request attribution is exact there; a caller that
// fans work out to a pool only attributes the work done on the binding
// thread (documented, not trapped).
#pragma once

#include <cstdint>

namespace codesign::obs {

/// Work done on behalf of the currently-bound request.
struct RequestScopeCounters {
  std::uint64_t estimates = 0;          ///< GEMM estimates (cache hit or miss)
  std::uint64_t search_candidates = 0;  ///< search candidates fully evaluated
};

class RequestScope {
 public:
  /// The counters bound to this thread, or nullptr (the common case).
  static RequestScopeCounters* current() { return tls_; }

  /// RAII bind/restore. Nestable; the previous binding is restored on
  /// scope exit. Defined out of line: GCC 12's UBSan emits a spurious
  /// "store to null pointer" for the inlined thread_local access when the
  /// enclosing frame is complex enough (the address check fires even
  /// though a load of the same variable two instructions earlier is
  /// clean); in the defining TU the TLS access is direct and the check is
  /// sound. Bind sits on the per-request dispatch path, not the per-GEMM
  /// hot path, so the call is free in practice.
  class Bind {
   public:
    explicit Bind(RequestScopeCounters* counters);
    ~Bind();

    Bind(const Bind&) = delete;
    Bind& operator=(const Bind&) = delete;

   private:
    RequestScopeCounters* prev_;
  };

 private:
  static thread_local RequestScopeCounters* tls_;
};

}  // namespace codesign::obs
