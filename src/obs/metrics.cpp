#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/stats.hpp"

namespace codesign::obs {

std::atomic<bool> MetricsRegistry::g_enabled{false};

const char* stability_name(Stability s) {
  return s == Stability::kDeterministic ? "deterministic" : "best_effort";
}

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

void Gauge::update_max(double v) {
  double cur = value_.load(std::memory_order_relaxed);
  while (v > cur &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;
  const int exp = static_cast<int>(std::floor(std::log2(v)));
  if (exp < -32) return 0;
  if (exp > kMajorBuckets - 1 - 32) return kBuckets - 1;
  // Linear sub-bucket within the octave [2^exp, 2^(exp+1)); the division
  // keeps the index exact even when log2's rounding lands v on an octave
  // boundary.
  const double lo = std::ldexp(1.0, exp);
  const int sub = std::clamp(
      static_cast<int>((v - lo) / lo * static_cast<double>(kSubBuckets)), 0,
      kSubBuckets - 1);
  return (exp + 32) * kSubBuckets + sub;
}

double Histogram::bucket_lower_bound(int index) {
  if (index <= 0) return 0.0;
  const int major = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(
      1.0 + static_cast<double>(sub) / static_cast<double>(kSubBuckets),
      major - 32);
}

void Histogram::record(double v) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (data_.count == 0) {
    data_.min = v;
    data_.max = v;
  } else {
    data_.min = std::min(data_.min, v);
    data_.max = std::max(data_.max, v);
  }
  ++data_.count;
  data_.sum += v;
  ++data_.buckets[static_cast<std::size_t>(bucket_index(v))];
  if (data_.samples.size() < kMaxSamples) data_.samples.push_back(v);
}

double Histogram::Data::percentile(double p) const {
  if (count == 0) return 0.0;
  if (count <= samples.size()) {
    return codesign::percentile(samples, p);
  }
  // Sample cap exceeded: walk the log-linear buckets to the one holding
  // the rank and interpolate linearly inside it, clamped into [min, max].
  // Bounded error at fixed memory: a bucket spans 1/16th of an octave, so
  // the reported tail is within ~6% of the true order statistic no matter
  // how long the run is.
  const double target = p / 100.0 * static_cast<double>(count - 1);
  std::uint64_t before = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(before + in_bucket) > target) {
      const double lower = bucket_lower_bound(b);
      const double upper =
          b + 1 < kBuckets ? bucket_lower_bound(b + 1) : max;
      const double frac = (target - static_cast<double>(before)) /
                          static_cast<double>(in_bucket);
      return std::clamp(lower + frac * (upper - lower), min, max);
    }
    before += in_bucket;
  }
  return max;
}

Histogram::Data Histogram::data() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  data_ = Data{};
}

namespace {

void sort_series(std::vector<MetricsSnapshot::Series>& series) {
  std::sort(series.begin(), series.end(),
            [](const MetricsSnapshot::Series& a,
               const MetricsSnapshot::Series& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.labels != b.labels) return a.labels < b.labels;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
}

}  // namespace

template <typename T>
T& MetricsRegistry::find_or_create(SeriesMap<T>& map, std::string_view name,
                                   std::string_view labels,
                                   Stability stability) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(std::string(name), std::string(labels));
  auto it = map.find(key);
  if (it == map.end()) {
    auto entry = std::make_unique<Entry<T>>();
    entry->stability = stability;
    it = map.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second->metric;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels,
                                  Stability stability) {
  return find_or_create(counters_, name, labels, stability);
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view labels,
                              Stability stability) {
  return find_or_create(gauges_, name, labels, stability);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view labels,
                                      Stability stability) {
  return find_or_create(histograms_, name, labels, stability);
}

MetricsSnapshot MetricsRegistry::snapshot(
    const SnapshotOptions& options) const {
  MetricsSnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, entry] : counters_) {
      if (!options.include_best_effort &&
          entry->stability == Stability::kBestEffort) {
        continue;
      }
      MetricsSnapshot::Series s;
      s.name = key.first;
      s.labels = key.second;
      s.kind = MetricKind::kCounter;
      s.stability = entry->stability;
      s.count = entry->metric.value();
      snap.series.push_back(std::move(s));
    }
    for (const auto& [key, entry] : gauges_) {
      if (!options.include_best_effort &&
          entry->stability == Stability::kBestEffort) {
        continue;
      }
      MetricsSnapshot::Series s;
      s.name = key.first;
      s.labels = key.second;
      s.kind = MetricKind::kGauge;
      s.stability = entry->stability;
      s.value = entry->metric.value();
      snap.series.push_back(std::move(s));
    }
    for (const auto& [key, entry] : histograms_) {
      if (!options.include_best_effort &&
          entry->stability == Stability::kBestEffort) {
        continue;
      }
      const Histogram::Data d = entry->metric.data();
      MetricsSnapshot::Series s;
      s.name = key.first;
      s.labels = key.second;
      s.kind = MetricKind::kHistogram;
      s.stability = entry->stability;
      s.count = d.count;
      s.sum = d.sum;
      s.min = d.min;
      s.max = d.max;
      s.p50 = d.percentile(50.0);
      s.p95 = d.percentile(95.0);
      s.p99 = d.percentile(99.0);
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        const std::uint64_t n = d.buckets[static_cast<std::size_t>(b)];
        if (n > 0) s.buckets.emplace_back(Histogram::bucket_lower_bound(b), n);
      }
      snap.series.push_back(std::move(s));
    }
  }
  sort_series(snap.series);
  return snap;
}

void MetricsSnapshot::add_series(Series series_to_add) {
  series.push_back(std::move(series_to_add));
  sort_series(series);
}

void MetricsRegistry::reset_values() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : counters_) entry->metric.reset();
  for (auto& [key, entry] : gauges_) entry->metric.reset();
  for (auto& [key, entry] : histograms_) entry->metric.reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Shortest round-trip double formatting (%.17g is exact but noisy; try
/// %.15g first). Deterministic for identical values.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const Series& s : series) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(s.name) << "\",\"labels\":\""
       << json_escape(s.labels) << "\",\"kind\":\"" << metric_kind_name(s.kind)
       << "\",\"stability\":\"" << stability_name(s.stability) << "\"";
    switch (s.kind) {
      case MetricKind::kCounter:
        os << ",\"value\":" << s.count;
        break;
      case MetricKind::kGauge:
        os << ",\"value\":" << format_double(s.value);
        break;
      case MetricKind::kHistogram:
        os << ",\"count\":" << s.count << ",\"sum\":" << format_double(s.sum)
           << ",\"min\":" << format_double(s.min)
           << ",\"max\":" << format_double(s.max)
           << ",\"p50\":" << format_double(s.p50)
           << ",\"p95\":" << format_double(s.p95)
           << ",\"p99\":" << format_double(s.p99) << ",\"buckets\":[";
        for (std::size_t b = 0; b < s.buckets.size(); ++b) {
          if (b > 0) os << ",";
          os << "[" << format_double(s.buckets[b].first) << ","
             << s.buckets[b].second << "]";
        }
        os << "]";
        break;
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  os << "name,labels,kind,stability,value,count,sum,min,max,p50,p95,p99\n";
  for (const Series& s : series) {
    os << s.name << "," << s.labels << "," << metric_kind_name(s.kind) << ","
       << stability_name(s.stability) << ",";
    switch (s.kind) {
      case MetricKind::kCounter:
        os << s.count << "," << s.count << ",,,,,,";
        break;
      case MetricKind::kGauge:
        os << format_double(s.value) << ",,,,,,,";
        break;
      case MetricKind::kHistogram:
        os << "," << s.count << "," << format_double(s.sum) << ","
           << format_double(s.min) << "," << format_double(s.max) << ","
           << format_double(s.p50) << "," << format_double(s.p95) << ","
           << format_double(s.p99);
        break;
    }
    os << "\n";
  }
  return os.str();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes
/// '_' ("serve.request_us" -> "codesign_serve_request_us").
std::string prom_name(const std::string& name) {
  std::string out = "codesign_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prom_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

/// Render the canonical "k=v,k2=v2" label string plus the stability tag as
/// a Prometheus label set; `extra` ("quantile=0.99") is appended verbatim
/// key/value when non-empty.
std::string prom_labels(const MetricsSnapshot::Series& s,
                        const std::string& extra_key = {},
                        const std::string& extra_value = {}) {
  std::string out = "{";
  std::size_t start = 0;
  while (start < s.labels.size()) {
    std::size_t end = s.labels.find(',', start);
    if (end == std::string::npos) end = s.labels.size();
    const std::string part = s.labels.substr(start, end - start);
    const std::size_t eq = part.find('=');
    if (eq != std::string::npos) {
      out += part.substr(0, eq) + "=\"" + prom_escape(part.substr(eq + 1)) +
             "\",";
    }
    start = end + 1;
  }
  out += std::string("stability=\"") + stability_name(s.stability) + "\"";
  if (!extra_key.empty()) {
    out += "," + extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string MetricsSnapshot::to_prom() const {
  std::ostringstream os;
  std::string last_name;
  for (const Series& s : series) {
    const std::string name = prom_name(s.name);
    if (name != last_name) {
      const char* type = s.kind == MetricKind::kCounter ? "counter"
                         : s.kind == MetricKind::kGauge ? "gauge"
                                                        : "summary";
      os << "# TYPE " << name << " " << type << "\n";
      last_name = name;
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        os << name << prom_labels(s) << " " << s.count << "\n";
        break;
      case MetricKind::kGauge:
        os << name << prom_labels(s) << " " << format_double(s.value) << "\n";
        break;
      case MetricKind::kHistogram: {
        os << name << prom_labels(s, "quantile", "0.5") << " "
           << format_double(s.p50) << "\n"
           << name << prom_labels(s, "quantile", "0.95") << " "
           << format_double(s.p95) << "\n"
           << name << prom_labels(s, "quantile", "0.99") << " "
           << format_double(s.p99) << "\n";
        // Cumulative histogram exposition: one `_bucket` line per occupied
        // log-linear bucket, `le` being the bucket's exclusive upper bound
        // (the next bucket's lower bound), plus the mandatory le="+Inf"
        // line whose count equals `_count`. Snapshot buckets carry lower
        // bounds; bucket_index inverts them exactly (the bounds are
        // 2^e * (1 + k/16), representable and round-trippable).
        std::uint64_t cumulative = 0;
        for (const auto& [lower, in_bucket] : s.buckets) {
          cumulative += in_bucket;
          const int index = Histogram::bucket_index(lower);
          if (index + 1 >= Histogram::kBuckets) continue;  // +Inf covers it
          os << name << "_bucket"
             << prom_labels(s, "le",
                            format_double(
                                Histogram::bucket_lower_bound(index + 1)))
             << " " << cumulative << "\n";
        }
        os << name << "_bucket" << prom_labels(s, "le", "+Inf") << " "
           << s.count << "\n"
           << name << "_sum" << prom_labels(s) << " " << format_double(s.sum)
           << "\n"
           << name << "_count" << prom_labels(s) << " " << s.count << "\n"
           << name << "_min" << prom_labels(s) << " " << format_double(s.min)
           << "\n"
           << name << "_max" << prom_labels(s) << " " << format_double(s.max)
           << "\n";
        break;
      }
    }
  }
  return os.str();
}

ScopedTimer::ScopedTimer(Histogram* hist) : hist_(hist) {
  if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
}

ScopedTimer::ScopedTimer(std::string_view name, std::string_view labels) {
  if (!MetricsRegistry::enabled()) return;
  hist_ = &MetricsRegistry::global().histogram(name, labels,
                                               Stability::kBestEffort);
  start_ = std::chrono::steady_clock::now();
}

double ScopedTimer::elapsed_us() const {
  if (hist_ == nullptr) return 0.0;
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

ScopedTimer::~ScopedTimer() {
  if (hist_ != nullptr) hist_->record(elapsed_us());
}

}  // namespace codesign::obs
