// events.hpp — structured event recording and chrome-trace export.
//
// The EventRecorder captures the simulator's decision trail — which tiles a
// kernel selection considered and why they lost, when each DES thread block
// dispatched and retired per SM, which operators the layer schedule ran —
// as typed events that export to Chrome Trace Event JSON (open in
// chrome://tracing or https://ui.perfetto.dev).
//
// Clock discipline (the determinism contract, docs/OBSERVABILITY.md):
//   * Simulator events are stamped with *simulated* time (EventClock::
//     kSimulated), so a trace of the same workload is byte-deterministic at
//     any thread count and on any machine.
//   * Wall-clock events (EventClock::kWall) exist only for self-profiling
//     the search pipeline; the exporter can exclude them
//     (ChromeTraceOptions::include_wall_clock = false) to keep a trace
//     comparable across runs.
//
// Zero overhead when disabled: EventRecorder::active() is one relaxed
// atomic load; while no recorder is installed, instrumentation sites take
// no locks and build no event objects.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace codesign::obs {

/// Which clock an event's timestamp belongs to. Mixed-clock traces export
/// as two chrome-trace "processes" so the timelines never interleave.
enum class EventClock { kSimulated, kWall };

/// Fixed track (tid) assignments inside the simulated-clock process.
inline constexpr std::int32_t kTidGemmOps = 1;     ///< GEMM operators
inline constexpr std::int32_t kTidOtherOps = 2;    ///< non-GEMM operators
inline constexpr std::int32_t kTidSelection = 3;   ///< kernel-selection trail
inline constexpr std::int32_t kTidDesBase = 100;   ///< per-SM DES tracks: 100+sm

struct TraceEvent {
  std::string name;
  std::string category;  ///< "op" | "select" | "des" | "search"
  char phase = 'X';      ///< 'X' = complete span, 'i' = instant
  std::int32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  EventClock clock = EventClock::kSimulated;
  std::vector<std::pair<std::string, std::string>> args;
};

struct ChromeTraceOptions {
  bool include_wall_clock = true;
  /// Extra "otherData" metadata, e.g. {{"model", ...}, {"gpu", ...}}.
  std::vector<std::pair<std::string, std::string>> other_data;
};

class EventRecorder {
 public:
  EventRecorder();

  void record(TraceEvent event);

  std::size_t size() const;
  /// Number of recorded events in one category.
  std::size_t count(std::string_view category) const;
  std::vector<TraceEvent> events() const;
  void clear();

  /// Microseconds of wall time since this recorder was constructed (the
  /// epoch of every kWall event it holds).
  double wall_now_us() const;

  /// Chrome Trace Event JSON. Events are sorted on a total key
  /// (clock, ts, tid, category, name, dur, args) so the document is
  /// byte-deterministic for a given event set regardless of the order
  /// threads recorded them in.
  std::string chrome_trace_json(const ChromeTraceOptions& options = {}) const;

  /// The installed recorder, or nullptr when event recording is off. One
  /// relaxed-ish (acquire) atomic load — the disabled fast path.
  static EventRecorder* active() {
    return g_active.load(std::memory_order_acquire);
  }
  /// Install `recorder` process-wide (nullptr uninstalls). Install before
  /// spawning workers that record; not designed for nesting.
  static void install(EventRecorder* recorder) {
    g_active.store(recorder, std::memory_order_release);
  }

  /// Simulated-time origin (µs) for events recorded by code with no
  /// schedule context of its own (kernel selection, the DES). Thread-local:
  /// the profiler sets it to the current op's start time before invoking
  /// the simulator. Defaults to 0.
  static void set_time_origin_us(double us);
  static double time_origin_us();

 private:
  static std::atomic<EventRecorder*> g_active;

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII: construct a recorder and install it for the current scope.
class ScopedRecorder {
 public:
  ScopedRecorder() { EventRecorder::install(&recorder_); }
  ~ScopedRecorder() { EventRecorder::install(nullptr); }

  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

  EventRecorder& recorder() { return recorder_; }

 private:
  EventRecorder recorder_;
};

/// RAII wall-clock span for self-profiling (category "search" etc.).
/// Inert — no clock read, no allocation — when no recorder is installed at
/// construction.
class ScopedEvent {
 public:
  ScopedEvent(std::string_view category, std::string_view name,
              std::int32_t tid = 0);
  ~ScopedEvent();

  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

 private:
  EventRecorder* recorder_ = nullptr;
  TraceEvent event_;
};

}  // namespace codesign::obs
