#include "obs/req_scope.hpp"

namespace codesign::obs {

thread_local RequestScopeCounters* RequestScope::tls_ = nullptr;

RequestScope::Bind::Bind(RequestScopeCounters* counters) : prev_(tls_) {
  tls_ = counters;
}

RequestScope::Bind::~Bind() { tls_ = prev_; }

}  // namespace codesign::obs
