#include "obs/req_scope.hpp"

namespace codesign::obs {

thread_local RequestScopeCounters* RequestScope::tls_ = nullptr;

}  // namespace codesign::obs
