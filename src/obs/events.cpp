#include "obs/events.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace codesign::obs {

std::atomic<EventRecorder*> EventRecorder::g_active{nullptr};

namespace {

thread_local double t_time_origin_us = 0.0;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string format_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

/// Total order over events so the exported document cannot depend on the
/// interleaving of recording threads.
bool event_less(const TraceEvent& a, const TraceEvent& b) {
  if (a.clock != b.clock) return a.clock < b.clock;
  if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
  if (a.tid != b.tid) return a.tid < b.tid;
  if (a.category != b.category) return a.category < b.category;
  if (a.name != b.name) return a.name < b.name;
  if (a.dur_us != b.dur_us) return a.dur_us < b.dur_us;
  return a.args < b.args;
}

int pid_for(EventClock clock) {
  return clock == EventClock::kSimulated ? 0 : 1;
}

std::string track_name(EventClock clock, std::int32_t tid) {
  if (clock == EventClock::kWall) return "pipeline (wall clock)";
  if (tid == kTidGemmOps) return "gemm ops";
  if (tid == kTidOtherOps) return "non-gemm ops";
  if (tid == kTidSelection) return "kernel selection";
  if (tid >= kTidDesBase) return "sm" + std::to_string(tid - kTidDesBase);
  return "track" + std::to_string(tid);
}

}  // namespace

void EventRecorder::set_time_origin_us(double us) { t_time_origin_us = us; }
double EventRecorder::time_origin_us() { return t_time_origin_us; }

EventRecorder::EventRecorder() : epoch_(std::chrono::steady_clock::now()) {}

void EventRecorder::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::size_t EventRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t EventRecorder::count(std::string_view category) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.category == category) ++n;
  }
  return n;
}

std::vector<TraceEvent> EventRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void EventRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

double EventRecorder::wall_now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::string EventRecorder::chrome_trace_json(
    const ChromeTraceOptions& options) const {
  std::vector<TraceEvent> sorted = events();
  if (!options.include_wall_clock) {
    sorted.erase(std::remove_if(sorted.begin(), sorted.end(),
                                [](const TraceEvent& e) {
                                  return e.clock == EventClock::kWall;
                                }),
                 sorted.end());
  }
  std::stable_sort(sorted.begin(), sorted.end(), event_less);

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit_comma = [&] {
    if (!first) os << ",";
    first = false;
  };

  // Process/thread metadata so Perfetto shows named tracks. Collected from
  // the (sorted) events, so the metadata order is deterministic too.
  std::set<std::pair<int, std::int32_t>> tracks;
  for (const TraceEvent& e : sorted) {
    tracks.emplace(pid_for(e.clock), e.tid);
  }
  std::set<int> pids;
  for (const auto& [pid, tid] : tracks) pids.insert(pid);
  for (int pid : pids) {
    emit_comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"name\":\""
       << (pid == 0 ? "simulated time" : "wall clock") << "\"}}";
  }
  for (const auto& [pid, tid] : tracks) {
    emit_comma();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
       << json_escape(track_name(
              pid == 0 ? EventClock::kSimulated : EventClock::kWall, tid))
       << "\"}}";
  }

  for (const TraceEvent& e : sorted) {
    emit_comma();
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.category) << "\",\"ph\":\"" << e.phase
       << "\",\"pid\":" << pid_for(e.clock) << ",\"tid\":" << e.tid
       << ",\"ts\":" << format_us(e.ts_us);
    if (e.phase == 'X') os << ",\"dur\":" << format_us(e.dur_us);
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    os << ",\"args\":{";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << json_escape(e.args[i].first) << "\":\""
         << json_escape(e.args[i].second) << "\"";
    }
    os << "}}";
  }

  os << "],\"otherData\":{";
  for (std::size_t i = 0; i < options.other_data.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(options.other_data[i].first) << "\":\""
       << json_escape(options.other_data[i].second) << "\"";
  }
  os << "}}";
  return os.str();
}

ScopedEvent::ScopedEvent(std::string_view category, std::string_view name,
                         std::int32_t tid)
    : recorder_(EventRecorder::active()) {
  if (recorder_ == nullptr) return;
  event_.name = std::string(name);
  event_.category = std::string(category);
  event_.tid = tid;
  event_.clock = EventClock::kWall;
  event_.ts_us = recorder_->wall_now_us();
}

ScopedEvent::~ScopedEvent() {
  if (recorder_ == nullptr) return;
  event_.dur_us = recorder_->wall_now_us() - event_.ts_us;
  recorder_->record(std::move(event_));
}

}  // namespace codesign::obs
