// metrics.hpp — a lightweight, deterministic metrics registry.
//
// The observability layer's contract (see docs/OBSERVABILITY.md):
//   * Zero overhead when disabled. Every instrumentation site guards on
//     MetricsRegistry::enabled() — a single relaxed atomic load — and takes
//     no locks and allocates nothing until metrics are switched on.
//   * Never changes results. Instrumentation only *reads* the quantities the
//     simulator computed; a metrics-on run produces bit-identical estimates
//     to a metrics-off run (lockstep-tested in tests/test_obs.cpp).
//   * Deterministic export. Series are tagged with a Stability: counters of
//     simulated quantities (kDeterministic) are byte-stable across thread
//     counts; wall-clock timers and race-sensitive counts (kBestEffort) are
//     not, and the deterministic snapshot excludes them. This is what lets
//     `codesign search --metrics` emit byte-identical files at any
//     --threads value (PR 1's determinism contract).
//
// Series are identified by (name, labels) where labels is a canonical
// "k=v,k2=v2" string. References returned by the registry stay valid for
// the registry's lifetime; reset_values() zeroes values without
// invalidating them.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace codesign::obs {

/// Whether a series is reproducible across thread counts and cache states.
enum class Stability { kDeterministic, kBestEffort };

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* stability_name(Stability s);
const char* metric_kind_name(MetricKind k);

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins (or running-max) double value. Lock-free.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if larger (CAS loop).
  void update_max(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Count/sum/min/max plus log-linear buckets. Mutex-protected: histograms
/// are recorded per task / per pipeline stage, not per GEMM estimate, so a
/// short critical section is fine.
///
/// The first kMaxSamples recorded values are retained verbatim so
/// snapshots can report exact p50/p95/p99 tail latencies (via
/// common/stats percentile). Past the cap, percentiles come from the
/// log-linear buckets — 64 power-of-two octaves × 16 linear sub-buckets,
/// interpolated within the bucket that holds the rank — so long runs keep
/// honest tails (≤ ~1/16 relative error) at fixed memory instead of the
/// pre-PR-7 behaviour of collapsing to a power-of-two lower bound.
class Histogram {
 public:
  static constexpr int kMajorBuckets = 64;  ///< power-of-two octaves
  static constexpr int kSubBuckets = 16;    ///< linear slices per octave
  static constexpr int kBuckets = kMajorBuckets * kSubBuckets;
  static constexpr std::size_t kMaxSamples = 4096;

  struct Data {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};
    /// Up to the first kMaxSamples recorded values (for exact percentiles).
    std::vector<double> samples;

    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }

    /// p in [0, 100]. Exact (sorted-sample interpolation) while count <=
    /// kMaxSamples; afterwards interpolated inside the log-linear bucket
    /// whose cumulative count crosses the rank, clamped into [min, max].
    /// Returns 0 for an empty histogram.
    double percentile(double p) const;
  };

  void record(double v);
  Data data() const;
  void reset();

  /// Bucket index for `v`: octave floor(log2 v) (clamped to ±32) × 16
  /// linear sub-buckets within the octave. Values <= 0 land in bucket 0.
  static int bucket_index(double v);
  /// Inclusive lower bound of bucket `index`:
  /// 2^(major-32) * (1 + sub/16) where index = major*16 + sub.
  static double bucket_lower_bound(int index);

 private:
  mutable std::mutex mu_;
  Data data_;
};

/// Point-in-time copy of every registered series, sorted by (name, labels)
/// so exports are byte-deterministic given identical values.
struct MetricsSnapshot {
  struct Series {
    std::string name;
    std::string labels;
    MetricKind kind = MetricKind::kCounter;
    Stability stability = Stability::kDeterministic;
    std::uint64_t count = 0;  ///< counter value or histogram count
    double value = 0.0;       ///< gauge value
    double sum = 0.0, min = 0.0, max = 0.0;  ///< histogram aggregates
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;  ///< histogram tail latencies
    /// Non-empty histogram buckets as (lower bound, count).
    std::vector<std::pair<double, std::uint64_t>> buckets;
  };
  std::vector<Series> series;

  std::string to_json() const;
  std::string to_csv() const;
  /// Prometheus text exposition (v0.0.4). Counters and gauges export
  /// verbatim; histograms export both summary-style quantile samples and
  /// true cumulative `_bucket` lines (`le` = the log-linear bucket's upper
  /// bound, closing with le="+Inf" == `_count`), plus
  /// _count/_sum/_min/_max. Series names are sanitized ('.' -> '_') and
  /// prefixed "codesign_"; every sample carries a stability="..." label so
  /// scrapers (and check.sh's serve-obs drill) can split deterministic
  /// series from wall-clock ones. Ordering follows the snapshot's sorted
  /// series, so the document is byte-deterministic for identical values.
  std::string to_prom() const;

  /// Append a synthesized series (used by callers that merge non-registry
  /// values — e.g. the serve stats op folding cache counters into a
  /// snapshot without mutating the global registry) and restore the
  /// (name, labels, kind) sort order.
  void add_series(Series series_to_add);
};

struct SnapshotOptions {
  /// Include kBestEffort series (wall-clock timers, cache counters).
  /// Pass false for the byte-deterministic export.
  bool include_best_effort = true;
};

class MetricsRegistry {
 public:
  /// Find or create a series. The Stability is fixed at creation; later
  /// calls with a different value keep the original. References stay valid
  /// for the registry's lifetime.
  Counter& counter(std::string_view name, std::string_view labels = {},
                   Stability stability = Stability::kDeterministic);
  Gauge& gauge(std::string_view name, std::string_view labels = {},
               Stability stability = Stability::kBestEffort);
  Histogram& histogram(std::string_view name, std::string_view labels = {},
                       Stability stability = Stability::kBestEffort);

  MetricsSnapshot snapshot(const SnapshotOptions& options = {}) const;

  /// Zero every value; registered series (and references to them) survive.
  void reset_values();

  /// The process-wide registry all instrumentation records into.
  static MetricsRegistry& global();

  /// The master switch. Off by default; instrumentation sites check this
  /// with one relaxed load and do nothing else when it is off.
  static bool enabled() {
    return g_enabled.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    g_enabled.store(on, std::memory_order_relaxed);
  }

 private:
  template <typename T>
  struct Entry {
    Stability stability;
    T metric;
  };
  template <typename T>
  using SeriesMap =
      std::map<std::pair<std::string, std::string>, std::unique_ptr<Entry<T>>>;

  template <typename T>
  T& find_or_create(SeriesMap<T>& map, std::string_view name,
                    std::string_view labels, Stability stability);

  static std::atomic<bool> g_enabled;

  mutable std::mutex mu_;
  SeriesMap<Counter> counters_;
  SeriesMap<Gauge> gauges_;
  SeriesMap<Histogram> histograms_;
};

/// RAII wall-clock timer recording elapsed microseconds into a histogram at
/// scope exit. The (name, labels) constructor resolves against the global
/// registry only when metrics are enabled at construction — otherwise the
/// timer is inert and never reads the clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist);
  explicit ScopedTimer(std::string_view name, std::string_view labels = {});
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  bool active() const { return hist_ != nullptr; }
  double elapsed_us() const;

 private:
  Histogram* hist_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace codesign::obs
