// cluster_spec.hpp — the multi-GPU systems of paper Table III.
//
// | system      | GPUs/node        | inter-node          | intra-node      |
// | AWS p4d     | 8× A100 40GB     | EFA 400 Gb/s        | NVLink 600 GB/s |
// | ORNL Summit | 6× V100 16GB     | IB EDR 200 Gb/s     | NVLink 100 GB/s |
// | SDSC Expanse| 4× V100 32GB     | IB HDR 200 Gb/s     | NVLink 100 GB/s |
//
// The paper keeps communication out of its single-GPU analysis but leans
// on it for two rules ("t as small as possible", "whether pipeline
// parallelism pays depends on internode speed"); this module carries the
// numbers those rules need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpuarch/gpu_spec.hpp"

namespace codesign::comm {

struct ClusterSpec {
  std::string id;             ///< registry key, e.g. "aws-p4d"
  std::string description;
  std::string gpu_id;         ///< gpuarch registry id of the node's GPUs
  int gpus_per_node = 0;

  /// Per-GPU intra-node fabric bandwidth (bytes/s, one direction) — the
  /// NVLink numbers of Table III.
  double intra_node_bandwidth = 0.0;
  /// Per-node inter-node link bandwidth (bytes/s) — EFA/InfiniBand.
  double inter_node_bandwidth = 0.0;
  /// Per-message latency of a fabric hop (seconds).
  double link_latency = 5e-6;

  const gpu::GpuSpec& gpu() const;

  void validate() const;
};

/// Look up a system by id: "aws-p4d", "ornl-summit", "sdsc-expanse"
/// (case-insensitive). Throws LookupError otherwise.
const ClusterSpec& cluster_by_name(const std::string& name);

std::vector<std::string> known_clusters();

}  // namespace codesign::comm
