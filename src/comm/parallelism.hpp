// parallelism.hpp — composite 3D-parallel (tensor × pipeline × data) step
// model on a concrete cluster.
//
// The paper defers distributed shape analysis to Narayanan et al. [23]
// but states the two facts this module quantifies:
//   * "whether it is optimal to train using pipeline parallelism depends
//     on ... the speed and bandwidth of internode connections";
//   * "t should be as small as possible" (yet t must be large enough to
//     fit memory).
//
// Model (deliberately first-order, like everything else here):
//   * tensor parallelism: within a node; 2 all-reduces per layer forward
//     and 2 backward over the intra-node fabric (collectives.hpp);
//   * pipeline parallelism: 1F1B bubble + stage imbalance
//     (transformer/pipeline.hpp) with per-microbatch activation
//     point-to-point transfers over the inter-node link;
//   * data parallelism: one ring all-reduce of the fp16 gradients per
//     step over the inter-node link (overlap is not modelled — this is
//     the pessimistic bound).
#pragma once

#include <cstdint>
#include <vector>

#include "comm/cluster_spec.hpp"
#include "transformer/config.hpp"
#include "transformer/pipeline.hpp"

namespace codesign::comm {

struct ParallelPlan {
  std::int64_t tensor = 1;    ///< t (within a node)
  std::int64_t pipeline = 1;  ///< p (stages, across nodes)
  std::int64_t data = 1;      ///< d (replicas)
  std::int64_t microbatches = 32;  ///< m in flight per step

  std::int64_t total_gpus() const { return tensor * pipeline * data; }
};

struct ParallelStepReport {
  ParallelPlan plan;
  bool feasible = true;
  std::string infeasible_reason;

  double compute_time = 0.0;      ///< per step, slowest stage, all µbatches
  double tp_comm_time = 0.0;      ///< TP all-reduces over the step
  double pp_comm_time = 0.0;      ///< inter-stage activation p2p
  double dp_comm_time = 0.0;      ///< gradient all-reduce
  double step_time = 0.0;
  double tokens_per_second = 0.0;  ///< global: d·m·b·s / step
  /// Useful FLOP/s per GPU divided by the device peak — the cluster-level
  /// MFU this plan achieves.
  double cluster_mfu = 0.0;
  /// Per-GPU training memory (weights at this t; activations at this
  /// microbatch count are held per in-flight microbatch on stage 0 —
  /// approximated by p in-flight microbatches).
  double memory_per_gpu = 0.0;
  bool fits_memory = true;
};

/// Evaluate one plan for `config` on `cluster`. The config's own
/// tensor_parallel field is overridden by the plan's.
ParallelStepReport evaluate_plan(const tfm::TransformerConfig& config,
                                 const ClusterSpec& cluster,
                                 const ParallelPlan& plan);

/// Enumerate every (t, p, d) factorization of `total_gpus` with t a
/// divisor of the node size, score the feasible ones, and return them
/// sorted by tokens/second (best first). Infeasible plans are included at
/// the tail with their reasons so the caller can show *why* a layout is
/// impossible (the §VII-A failure mode).
std::vector<ParallelStepReport> rank_plans(
    const tfm::TransformerConfig& config, const ClusterSpec& cluster,
    std::int64_t total_gpus, std::int64_t microbatches = 32);

}  // namespace codesign::comm
