#include "comm/collectives.hpp"

#include "common/error.hpp"
#include "transformer/layer_model.hpp"

namespace codesign::comm {

const char* collective_name(Collective c) {
  switch (c) {
    case Collective::kAllReduce: return "all_reduce";
    case Collective::kAllGather: return "all_gather";
    case Collective::kReduceScatter: return "reduce_scatter";
  }
  return "?";
}

double collective_time(Collective op, double bytes, int ranks,
                       double link_bandwidth, double latency) {
  CODESIGN_CHECK(ranks >= 1, "collective needs at least one rank");
  CODESIGN_CHECK(bytes >= 0.0, "negative payload");
  CODESIGN_CHECK(link_bandwidth > 0.0, "link bandwidth must be positive");
  CODESIGN_CHECK(latency >= 0.0, "latency must be non-negative");
  if (ranks == 1) return 0.0;

  const double frac = static_cast<double>(ranks - 1) / ranks;
  switch (op) {
    case Collective::kAllReduce:
      return 2.0 * frac * bytes / link_bandwidth +
             2.0 * (ranks - 1) * latency;
    case Collective::kAllGather:
    case Collective::kReduceScatter:
      return frac * bytes / link_bandwidth + (ranks - 1) * latency;
  }
  return 0.0;
}

double intra_node_collective_time(Collective op, double bytes, int ranks,
                                  const ClusterSpec& cluster) {
  CODESIGN_CHECK(ranks <= cluster.gpus_per_node,
                 "collective spans more ranks than the node has GPUs");
  return collective_time(op, bytes, ranks, cluster.intra_node_bandwidth,
                         cluster.link_latency);
}

double tp_layer_comm_time(const tfm::TransformerConfig& config,
                          const ClusterSpec& cluster) {
  config.validate();
  const auto ranks = static_cast<int>(config.tensor_parallel);
  const double activation_bytes =
      static_cast<double>(config.tokens()) *
      static_cast<double>(config.hidden_size) *
      static_cast<double>(gpu::dtype_size(config.dtype));
  // Two all-reduces per layer forward (post-attention, post-MLP).
  return 2.0 * intra_node_collective_time(Collective::kAllReduce,
                                          activation_bytes, ranks, cluster);
}

TpLayerTime tp_total_layer_time(const tfm::TransformerConfig& config,
                                const ClusterSpec& cluster) {
  config.validate();
  CODESIGN_CHECK(config.tensor_parallel <= cluster.gpus_per_node,
                 "tensor-parallel degree exceeds the node size");
  const gemm::GemmSimulator sim(cluster.gpu());
  TpLayerTime r;
  r.t = config.tensor_parallel;
  r.compute_time = tfm::analyze_layer(config, sim).total_time;
  r.comm_time = tp_layer_comm_time(config, cluster);
  r.total_time = r.compute_time + r.comm_time;
  r.comm_fraction = r.total_time > 0.0 ? r.comm_time / r.total_time : 0.0;
  return r;
}

}  // namespace codesign::comm
