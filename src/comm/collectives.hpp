// collectives.hpp — cost model for the collectives tensor parallelism uses.
//
// Ring algorithms (the NCCL default at these scales):
//   all-reduce :  2·(t−1)/t · bytes / link_bw  + 2·(t−1)·latency
//   all-gather :     (t−1)/t · bytes / link_bw +    (t−1)·latency
//   reduce-scatter:  (t−1)/t · bytes / link_bw +    (t−1)·latency
//
// Megatron-style tensor parallelism inserts 2 all-reduces of the (b·s, h)
// activation per layer in the forward pass (after the attention
// projection and after the MLP) and 2 more in the backward pass. This is
// the cost the paper's "t as small as possible" rule trades against the
// per-GPU GEMM speedup, and what tp_total_layer_time() exposes.
#pragma once

#include <cstdint>

#include "comm/cluster_spec.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/config.hpp"

namespace codesign::comm {

enum class Collective { kAllReduce, kAllGather, kReduceScatter };

const char* collective_name(Collective c);

/// Time for one collective over `bytes` payload among `ranks` peers
/// connected at `link_bandwidth` with `latency` per hop. ranks == 1 is
/// free. Throws on non-positive ranks/bandwidth or negative bytes.
double collective_time(Collective op, double bytes, int ranks,
                       double link_bandwidth, double latency);

/// Convenience: the collective runs inside one node of `cluster` over
/// `ranks` of its GPUs (ranks <= gpus_per_node).
double intra_node_collective_time(Collective op, double bytes, int ranks,
                                  const ClusterSpec& cluster);

/// Tensor-parallel communication per *layer* per forward pass: 2
/// all-reduces of the s·b·h activation (fp16). Backward doubles it.
double tp_layer_comm_time(const tfm::TransformerConfig& config,
                          const ClusterSpec& cluster);

/// One layer's forward time with t-way tensor parallelism on this
/// cluster: per-GPU compute (from the GEMM simulator, h/t shapes) plus
/// the TP all-reduces. This is the quantity whose minimum over t answers
/// "how much parallelism should I use" — and why the answer is "as little
/// as fits" on slow fabrics.
struct TpLayerTime {
  std::int64_t t = 1;
  double compute_time = 0.0;
  double comm_time = 0.0;
  double total_time = 0.0;
  double comm_fraction = 0.0;
};

TpLayerTime tp_total_layer_time(const tfm::TransformerConfig& config,
                                const ClusterSpec& cluster);

}  // namespace codesign::comm
