#include "comm/parallelism.hpp"

#include <algorithm>

#include "advisor/cluster.hpp"
#include "comm/collectives.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/strings.hpp"
#include "gemmsim/simulator.hpp"
#include "transformer/flops.hpp"
#include "transformer/layer_model.hpp"
#include "transformer/params.hpp"
#include "transformer/training.hpp"

namespace codesign::comm {

ParallelStepReport evaluate_plan(const tfm::TransformerConfig& config,
                                 const ClusterSpec& cluster,
                                 const ParallelPlan& plan) {
  CODESIGN_CHECK(plan.tensor >= 1 && plan.pipeline >= 1 && plan.data >= 1 &&
                     plan.microbatches >= 1,
                 "parallel plan degrees must be >= 1");
  ParallelStepReport r;
  r.plan = plan;

  auto reject = [&r](std::string why) {
    r.feasible = false;
    if (!r.infeasible_reason.empty()) r.infeasible_reason += "; ";
    r.infeasible_reason += std::move(why);
  };

  if (plan.tensor > cluster.gpus_per_node) {
    reject(str_format("t=%lld exceeds the %d-GPU node",
                      static_cast<long long>(plan.tensor),
                      cluster.gpus_per_node));
  }
  const advisor::TpFeasibility tp = advisor::tp_feasibility(config, plan.tensor);
  if (!tp.feasible) reject(tp.reason);
  if (plan.pipeline > config.num_layers) {
    reject(str_format("p=%lld exceeds L=%lld",
                      static_cast<long long>(plan.pipeline),
                      static_cast<long long>(config.num_layers)));
  }
  if (plan.microbatches < plan.pipeline) {
    reject("fewer microbatches in flight than pipeline stages");
  }
  if (!r.feasible) return r;

  const tfm::TransformerConfig cfg =
      config.with_tensor_parallel(plan.tensor);
  const gemm::GemmSimulator sim(cluster.gpu());

  // Per-microbatch, per-layer compute (fwd + bwd) on one TP rank.
  const double layer_fwd = tfm::analyze_layer(cfg, sim).total_time;
  const double layer_bwd = tfm::layer_backward_time(cfg, sim);
  const std::int64_t stage_layers = ceil_div(cfg.num_layers, plan.pipeline);
  const double stage_compute =
      static_cast<double>(stage_layers) * (layer_fwd + layer_bwd);

  // TP collectives: 2 all-reduces fwd + 2 bwd per layer of the stage.
  const double tp_per_layer = 2.0 * tp_layer_comm_time(cfg, cluster);
  const double stage_tp = static_cast<double>(stage_layers) * tp_per_layer;

  // Pipeline p2p: ship the (b·s, h) activation forward and its gradient
  // back across the inter-node link once per microbatch per stage
  // boundary.
  const double act_bytes = static_cast<double>(cfg.tokens()) *
                           static_cast<double>(cfg.hidden_size) *
                           static_cast<double>(gpu::dtype_size(cfg.dtype));
  const double p2p_per_microbatch =
      plan.pipeline > 1
          ? 2.0 * act_bytes / cluster.inter_node_bandwidth +
                2.0 * cluster.link_latency
          : 0.0;

  const auto rounds = static_cast<double>(plan.microbatches + plan.pipeline - 1);
  r.compute_time = rounds * stage_compute;
  r.tp_comm_time = rounds * stage_tp;
  r.pp_comm_time = rounds * p2p_per_microbatch;

  // Data parallelism: ring all-reduce of the fp16 gradients per step.
  const double grad_bytes =
      2.0 * static_cast<double>(tfm::exact_param_count(cfg)) /
      static_cast<double>(plan.tensor) / static_cast<double>(plan.pipeline);
  r.dp_comm_time = collective_time(Collective::kAllReduce, grad_bytes,
                                   static_cast<int>(plan.data),
                                   cluster.inter_node_bandwidth,
                                   cluster.link_latency);

  r.step_time =
      r.compute_time + r.tp_comm_time + r.pp_comm_time + r.dp_comm_time;
  r.tokens_per_second = static_cast<double>(plan.data) *
                        static_cast<double>(plan.microbatches) *
                        static_cast<double>(cfg.tokens()) / r.step_time;

  // Cluster MFU: useful training math per step over the whole machine.
  const double useful_flops = static_cast<double>(plan.data) *
                              static_cast<double>(plan.microbatches) *
                              tfm::model_training_flops(config);
  const double peak = cluster.gpu().tensor_flops(cfg.dtype) *
                      static_cast<double>(plan.total_gpus());
  r.cluster_mfu = useful_flops / (r.step_time * peak);

  // Memory: static state for this rank's layer shard + p in-flight
  // microbatches of its activations (the 1F1B stage-0 bound).
  const tfm::MemoryFootprint mem = tfm::training_memory(cfg);
  const double static_bytes =
      (mem.weight_bytes + mem.gradient_bytes + mem.optimizer_bytes) /
      static_cast<double>(plan.pipeline);
  const double act_per_microbatch =
      tfm::activation_bytes_per_layer(cfg) * static_cast<double>(stage_layers);
  r.memory_per_gpu =
      static_bytes +
      act_per_microbatch * static_cast<double>(
                               std::min<std::int64_t>(plan.pipeline,
                                                      plan.microbatches));
  r.fits_memory =
      r.memory_per_gpu <= cluster.gpu().hbm_capacity * 0.9;
  return r;
}

std::vector<ParallelStepReport> rank_plans(
    const tfm::TransformerConfig& config, const ClusterSpec& cluster,
    std::int64_t total_gpus, std::int64_t microbatches) {
  CODESIGN_CHECK(total_gpus >= 1, "total_gpus must be >= 1");
  std::vector<ParallelStepReport> out;
  for (std::int64_t t = 1; t <= cluster.gpus_per_node; ++t) {
    if (cluster.gpus_per_node % static_cast<int>(t) != 0) continue;
    if (total_gpus % t != 0) continue;
    const std::int64_t rest = total_gpus / t;
    for (std::int64_t p = 1; p <= rest; ++p) {
      if (rest % p != 0) continue;
      ParallelPlan plan;
      plan.tensor = t;
      plan.pipeline = p;
      plan.data = rest / p;
      plan.microbatches = microbatches;
      out.push_back(evaluate_plan(config, cluster, plan));
    }
  }
  CODESIGN_CHECK(!out.empty(), "no (t, p, d) factorization of total_gpus");
  std::sort(out.begin(), out.end(),
            [](const ParallelStepReport& a, const ParallelStepReport& b) {
              // Feasible + fitting first, then by throughput.
              const int ka = (a.feasible ? 0 : 2) + (a.fits_memory ? 0 : 1);
              const int kb = (b.feasible ? 0 : 2) + (b.fits_memory ? 0 : 1);
              if (ka != kb) return ka < kb;
              return a.tokens_per_second > b.tokens_per_second;
            });
  return out;
}

}  // namespace codesign::comm
