#include "comm/cluster_spec.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/units.hpp"

namespace codesign::comm {

const gpu::GpuSpec& ClusterSpec::gpu() const {
  return gpu::gpu_by_name(gpu_id);
}

void ClusterSpec::validate() const {
  auto fail = [this](const std::string& what) {
    throw ConfigError("ClusterSpec '" + id + "': " + what);
  };
  if (gpus_per_node <= 0) fail("gpus_per_node must be positive");
  if (intra_node_bandwidth <= 0) fail("intra_node_bandwidth must be positive");
  if (inter_node_bandwidth <= 0) fail("inter_node_bandwidth must be positive");
  if (link_latency < 0) fail("link_latency must be non-negative");
  (void)gpu();  // throws LookupError if the GPU id is unknown
}

namespace {

const std::map<std::string, ClusterSpec>& registry() {
  static const std::map<std::string, ClusterSpec> reg = [] {
    std::map<std::string, ClusterSpec> m;
    auto add = [&m](ClusterSpec c) {
      c.validate();
      m.emplace(c.id, std::move(c));
    };
    {
      ClusterSpec c;
      c.id = "aws-p4d";
      c.description = "AWS p4d: 8x A100-40GB, EFA 400 Gb/s, NVLink 600 GB/s";
      c.gpu_id = "a100-40gb";
      c.gpus_per_node = 8;
      c.intra_node_bandwidth = 600 * GBps;
      c.inter_node_bandwidth = 400.0 / 8.0 * GBps;  // 400 Gb/s = 50 GB/s
      add(c);
    }
    {
      ClusterSpec c;
      c.id = "ornl-summit";
      c.description =
          "ORNL Summit: 6x V100-16GB, IB EDR 200 Gb/s, NVLink 100 GB/s";
      c.gpu_id = "v100-16gb";
      c.gpus_per_node = 6;
      c.intra_node_bandwidth = 100 * GBps;
      c.inter_node_bandwidth = 200.0 / 8.0 * GBps;
      add(c);
    }
    {
      ClusterSpec c;
      c.id = "sdsc-expanse";
      c.description =
          "SDSC Expanse: 4x V100-32GB, IB HDR 200 Gb/s, NVLink 100 GB/s";
      c.gpu_id = "v100-32gb";
      c.gpus_per_node = 4;
      c.intra_node_bandwidth = 100 * GBps;
      c.inter_node_bandwidth = 200.0 / 8.0 * GBps;
      add(c);
    }
    return m;
  }();
  return reg;
}

}  // namespace

const ClusterSpec& cluster_by_name(const std::string& name) {
  const auto& reg = registry();
  const auto it = reg.find(to_lower(name));
  if (it == reg.end()) {
    throw LookupError("unknown cluster '" + name + "'; known: " +
                      join(known_clusters(), ", "));
  }
  return it->second;
}

std::vector<std::string> known_clusters() {
  std::vector<std::string> out;
  for (const auto& [id, _] : registry()) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace codesign::comm
