#include "kernels/attention_cpu.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "kernels/gemm_cpu.hpp"
#include "kernels/ops.hpp"

namespace codesign::kern {

namespace {

void check_qkv(const Tensor& q, const Tensor& k, const Tensor& v) {
  CODESIGN_CHECK(q.rank() == 3 && k.rank() == 3 && v.rank() == 3,
                 "attention expects (heads, len, d) tensors");
  CODESIGN_CHECK(q.same_shape(k) && q.same_shape(v),
                 "attention q/k/v shapes must match");
}

}  // namespace

Tensor attention_reference(const Tensor& q, const Tensor& k, const Tensor& v,
                           bool causal) {
  check_qkv(q, k, v);
  const std::int64_t heads = q.dim(0);
  const std::int64_t len = q.dim(1);
  const std::int64_t d = q.dim(2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  // scores = (Q · Kᵀ) * scale, per head.
  Tensor kt({heads, d, len});
  for (std::int64_t h = 0; h < heads; ++h) {
    for (std::int64_t i = 0; i < len; ++i) {
      for (std::int64_t j = 0; j < d; ++j) {
        kt.at(h, j, i) = k.at(h, i, j);
      }
    }
  }
  Tensor scores = batched_matmul(q, kt);
  scores = kern::scale(scores, scale);
  const Tensor probs = causal ? causal_softmax(scores)
                              : softmax_lastdim(scores);
  return batched_matmul(probs, v);
}

Tensor attention_streaming(const Tensor& q, const Tensor& k, const Tensor& v,
                           bool causal, std::int64_t block_size) {
  check_qkv(q, k, v);
  CODESIGN_CHECK(block_size > 0, "block_size must be positive");
  const std::int64_t heads = q.dim(0);
  const std::int64_t len = q.dim(1);
  const std::int64_t d = q.dim(2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  Tensor out({heads, len, d});
  // Per-query online-softmax state: running max m, running normalizer l,
  // and the unnormalized accumulator rows (kept in `out`, rescaled as the
  // max updates — exactly the FlashAttention recurrence).
  std::vector<double> row_max(static_cast<std::size_t>(len));
  std::vector<double> row_sum(static_cast<std::size_t>(len));
  std::vector<double> scores(static_cast<std::size_t>(block_size));

  for (std::int64_t h = 0; h < heads; ++h) {
    for (auto& m : row_max) m = -std::numeric_limits<double>::infinity();
    for (auto& l : row_sum) l = 0.0;

    for (std::int64_t kb = 0; kb < len; kb += block_size) {
      const std::int64_t kb_hi = std::min(kb + block_size, len);
      for (std::int64_t qi = 0; qi < len; ++qi) {
        const std::int64_t visible_hi = causal ? std::min(kb_hi, qi + 1) : kb_hi;
        if (visible_hi <= kb) continue;  // fully masked block

        // Scores of this query against the visible keys of the block.
        double block_max = -std::numeric_limits<double>::infinity();
        for (std::int64_t kj = kb; kj < visible_hi; ++kj) {
          double s = 0.0;
          for (std::int64_t x = 0; x < d; ++x) {
            s += static_cast<double>(q.at(h, qi, x)) * k.at(h, kj, x);
          }
          s *= scale;
          scores[static_cast<std::size_t>(kj - kb)] = s;
          block_max = std::max(block_max, s);
        }

        // Online-softmax rescale.
        const double new_max =
            std::max(row_max[static_cast<std::size_t>(qi)], block_max);
        const double correction =
            std::exp(row_max[static_cast<std::size_t>(qi)] - new_max);
        if (correction != 1.0) {
          for (std::int64_t x = 0; x < d; ++x) {
            out.at(h, qi, x) *= static_cast<float>(correction);
          }
        }
        row_sum[static_cast<std::size_t>(qi)] *= correction;

        for (std::int64_t kj = kb; kj < visible_hi; ++kj) {
          const double p =
              std::exp(scores[static_cast<std::size_t>(kj - kb)] - new_max);
          row_sum[static_cast<std::size_t>(qi)] += p;
          for (std::int64_t x = 0; x < d; ++x) {
            out.at(h, qi, x) += static_cast<float>(p) * v.at(h, kj, x);
          }
        }
        row_max[static_cast<std::size_t>(qi)] = new_max;
      }
    }

    // Final normalization by the softmax denominator.
    for (std::int64_t qi = 0; qi < len; ++qi) {
      const double l = row_sum[static_cast<std::size_t>(qi)];
      CODESIGN_CHECK(l > 0.0, "attention row fully masked");
      const float inv = static_cast<float>(1.0 / l);
      for (std::int64_t x = 0; x < d; ++x) {
        out.at(h, qi, x) *= inv;
      }
    }
  }
  return out;
}

}  // namespace codesign::kern
