// tensor.hpp — a dense row-major float tensor.
//
// This is the execution substrate's data type: storage is always fp32 (the
// accumulate precision of tensor cores); fp16 *storage* semantics are
// emulated by quantize_fp16(), which rounds every element through binary16.
// The class is deliberately small — shape, strides, checked element access,
// reshape views-by-copy — because the substrate exists to validate the
// transformer→GEMM mapping, not to be a general autograd framework.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace codesign::kern {

using Shape = std::vector<std::int64_t>;

std::string shape_to_string(const Shape& shape);
std::int64_t shape_numel(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  /// Construct zero-filled with the given shape (all extents positive).
  explicit Tensor(Shape shape);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  /// i.i.d. N(0, stddev²) entries from a deterministic generator.
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  /// Uniform [lo, hi) entries.
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);
  /// 1-D tensor from a list.
  static Tensor from_values(std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const;
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Checked element access for rank 1–3 tensors.
  float& at(std::int64_t i);
  float at(std::int64_t i) const;
  float& at(std::int64_t i, std::int64_t j);
  float at(std::int64_t i, std::int64_t j) const;
  float& at(std::int64_t i, std::int64_t j, std::int64_t k);
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const;

  /// Reshape to a new shape with the same element count (copies metadata
  /// only; data is shared via the returned tensor's own buffer copy).
  Tensor reshape(Shape new_shape) const;

  /// 2-D transpose (rank must be 2).
  Tensor transposed_2d() const;

  /// Round every element through fp16 (see half.hpp).
  void quantize_fp16();

  /// Elementwise helpers used by tests.
  float max_abs() const;
  float sum() const;
  bool all_finite() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::int64_t flat_index(std::int64_t i, std::int64_t j) const;
  std::int64_t flat_index(std::int64_t i, std::int64_t j, std::int64_t k) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Largest absolute elementwise difference; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// Relative Frobenius-norm error ||a-b|| / max(||b||, eps).
float relative_error(const Tensor& a, const Tensor& b);

}  // namespace codesign::kern
