#include "kernels/ops.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace codesign::kern {

namespace {

/// Apply a stable softmax to `row[0..n)` in place.
void softmax_row(float* row, std::int64_t n) {
  float mx = -std::numeric_limits<float>::infinity();
  for (std::int64_t i = 0; i < n; ++i) mx = std::max(mx, row[i]);
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    sum += row[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::int64_t i = 0; i < n; ++i) row[i] *= inv;
}

}  // namespace

Tensor softmax_lastdim(const Tensor& x) {
  CODESIGN_CHECK(x.rank() == 2 || x.rank() == 3,
                 "softmax_lastdim expects rank 2 or 3");
  Tensor y = x;
  const std::int64_t n = y.shape().back();
  const std::int64_t rows = y.numel() / n;
  for (std::int64_t r = 0; r < rows; ++r) {
    softmax_row(y.data() + r * n, n);
  }
  return y;
}

Tensor causal_softmax(const Tensor& scores) {
  CODESIGN_CHECK(scores.rank() == 3, "causal_softmax expects (bh, s, s)");
  CODESIGN_CHECK(scores.dim(1) == scores.dim(2),
                 "causal_softmax expects square score matrices");
  Tensor y = scores;
  const std::int64_t bh = y.dim(0);
  const std::int64_t s = y.dim(1);
  const float neg_inf = -std::numeric_limits<float>::infinity();
  for (std::int64_t b = 0; b < bh; ++b) {
    for (std::int64_t q = 0; q < s; ++q) {
      float* row = y.data() + (b * s + q) * s;
      for (std::int64_t kidx = q + 1; kidx < s; ++kidx) row[kidx] = neg_inf;
      softmax_row(row, s);
    }
  }
  return y;
}

Tensor layernorm_lastdim(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, float eps) {
  const std::int64_t h = x.shape().back();
  CODESIGN_CHECK(gamma.rank() == 1 && gamma.dim(0) == h,
                 "layernorm: gamma shape mismatch");
  CODESIGN_CHECK(beta.rank() == 1 && beta.dim(0) == h,
                 "layernorm: beta shape mismatch");
  Tensor y = x;
  const std::int64_t rows = y.numel() / h;
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = y.data() + r * h;
    double mean = 0.0;
    for (std::int64_t i = 0; i < h; ++i) mean += row[i];
    mean /= static_cast<double>(h);
    double var = 0.0;
    for (std::int64_t i = 0; i < h; ++i) {
      const double d = row[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(h);
    const float inv = static_cast<float>(1.0 / std::sqrt(var + eps));
    for (std::int64_t i = 0; i < h; ++i) {
      row[i] = (row[i] - static_cast<float>(mean)) * inv * gamma.at(i) +
               beta.at(i);
    }
  }
  return y;
}

Tensor gelu(const Tensor& x) {
  Tensor y = x;
  constexpr float kInvSqrt2 = 0.70710678118654752440f;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    const float v = y.data()[i];
    y.data()[i] = 0.5f * v * (1.0f + std::erf(v * kInvSqrt2));
  }
  return y;
}

Tensor silu(const Tensor& x) {
  Tensor y = x;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    const float v = y.data()[i];
    y.data()[i] = v / (1.0f + std::exp(-v));
  }
  return y;
}

Tensor swiglu_combine(const Tensor& gate, const Tensor& up) {
  CODESIGN_CHECK(gate.same_shape(up), "swiglu: gate/up shape mismatch");
  Tensor y = silu(gate);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    y.data()[i] *= up.data()[i];
  }
  return y;
}

Tensor add(const Tensor& a, const Tensor& b) {
  CODESIGN_CHECK(a.same_shape(b), "add: shape mismatch");
  Tensor y = a;
  for (std::int64_t i = 0; i < y.numel(); ++i) y.data()[i] += b.data()[i];
  return y;
}

Tensor dropout(const Tensor& x, float p, Rng& rng) {
  CODESIGN_CHECK(p >= 0.0f && p < 1.0f, "dropout p must be in [0, 1)");
  if (p == 0.0f) return x;
  Tensor y = x;
  const float keep = 1.0f - p;
  const float inv_keep = 1.0f / keep;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    y.data()[i] = rng.next_double() < p ? 0.0f : y.data()[i] * inv_keep;
  }
  return y;
}

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  const std::int64_t n = x.shape().back();
  CODESIGN_CHECK(bias.rank() == 1 && bias.dim(0) == n,
                 "add_bias: bias must match the last dimension");
  Tensor y = x;
  const std::int64_t rows = y.numel() / n;
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = y.data() + r * n;
    for (std::int64_t i = 0; i < n; ++i) row[i] += bias.at(i);
  }
  return y;
}

Tensor scale(const Tensor& x, float factor) {
  Tensor y = x;
  for (std::int64_t i = 0; i < y.numel(); ++i) y.data()[i] *= factor;
  return y;
}

Tensor embedding_lookup(const Tensor& table,
                        const std::vector<std::int64_t>& ids) {
  CODESIGN_CHECK(table.rank() == 2, "embedding table must be rank 2");
  CODESIGN_CHECK(!ids.empty(), "embedding lookup with no ids");
  const std::int64_t vocab = table.dim(0);
  const std::int64_t h = table.dim(1);
  Tensor out({static_cast<std::int64_t>(ids.size()), h});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::int64_t id = ids[i];
    CODESIGN_CHECK(id >= 0 && id < vocab, "embedding id out of range");
    for (std::int64_t j = 0; j < h; ++j) {
      out.at(static_cast<std::int64_t>(i), j) = table.at(id, j);
    }
  }
  return out;
}

double cross_entropy_mean(const Tensor& logits,
                          const std::vector<std::int64_t>& targets) {
  CODESIGN_CHECK(logits.rank() == 2, "cross_entropy expects (rows, vocab)");
  CODESIGN_CHECK(static_cast<std::int64_t>(targets.size()) == logits.dim(0),
                 "cross_entropy: target count mismatch");
  const std::int64_t vocab = logits.dim(1);
  double total = 0.0;
  for (std::int64_t r = 0; r < logits.dim(0); ++r) {
    const float* row = logits.data() + r * vocab;
    const std::int64_t t = targets[static_cast<std::size_t>(r)];
    CODESIGN_CHECK(t >= 0 && t < vocab, "cross_entropy: target out of range");
    float mx = row[0];
    for (std::int64_t i = 1; i < vocab; ++i) mx = std::max(mx, row[i]);
    double sumexp = 0.0;
    for (std::int64_t i = 0; i < vocab; ++i) sumexp += std::exp(row[i] - mx);
    total += -(row[t] - mx - std::log(sumexp));
  }
  return total / static_cast<double>(logits.dim(0));
}

}  // namespace codesign::kern
