// attention_cpu.hpp — scaled dot-product attention on the CPU substrate.
//
// Two functionally identical implementations:
//   * attention_reference — materializes the full (len × len) score matrix
//     (the BMM + softmax + BMM path of paper Table II rows 2–3);
//   * attention_streaming — a FlashAttention-style single pass over key
//     blocks with an *online softmax* (running row max + rescaled partial
//     sums) that never materializes the score matrix.
//
// The streaming kernel is the algorithmic core the Fig-12 performance
// model represents; tests assert the two agree to floating-point noise,
// which is the IO-complexity claim ("exact attention") validated in code.
#pragma once

#include <cstdint>

#include "kernels/tensor.hpp"

namespace codesign::kern {

/// q, k, v: (heads, len, d). Returns (heads, len, d). Scores are scaled by
/// 1/sqrt(d); `causal` masks key positions beyond the query position.
Tensor attention_reference(const Tensor& q, const Tensor& k, const Tensor& v,
                           bool causal);

/// Same contract, computed blockwise over keys with an online softmax.
/// `block_size` is the key-block length (any positive value; it only
/// affects the summation order, not the result).
Tensor attention_streaming(const Tensor& q, const Tensor& k, const Tensor& v,
                           bool causal, std::int64_t block_size = 64);

}  // namespace codesign::kern
