#include "kernels/gemm_cpu.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "kernels/half.hpp"

namespace codesign::kern {

namespace {

// Cache-blocking factors for the blocked kernel: row panel × column panel
// sized for L1/L2 residency of the B panel.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;

void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t n, std::int64_t k, float alpha, float beta) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
  }
}

/// Blocked kernel over a row range [m0, m1): beta is applied to the range
/// first, then panels of A·B are accumulated with a k-inner loop that keeps
/// the C row in registers/L1.
void gemm_blocked_rows(const float* a, const float* b, float* c,
                       std::int64_t m0, std::int64_t m1, std::int64_t n,
                       std::int64_t k, float alpha, float beta) {
  for (std::int64_t i = m0; i < m1; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
    const std::int64_t k_hi = std::min(kk + kBlockK, k);
    for (std::int64_t jj = 0; jj < n; jj += kBlockN) {
      const std::int64_t j_hi = std::min(jj + kBlockN, n);
      for (std::int64_t ii = m0; ii < m1; ii += kBlockM) {
        const std::int64_t i_hi = std::min(ii + kBlockM, m1);
        for (std::int64_t i = ii; i < i_hi; ++i) {
          const float* arow = a + i * k;
          float* crow = c + i * n;
          for (std::int64_t p = kk; p < k_hi; ++p) {
            const float av = alpha * arow[p];
            const float* brow = b + p * n;
            for (std::int64_t j = jj; j < j_hi; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace

void gemm_raw(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t n, std::int64_t k, float alpha, float beta,
              GemmAlgo algo, int num_threads) {
  CODESIGN_CHECK(m > 0 && n > 0 && k > 0, "gemm dimensions must be positive");
  switch (algo) {
    case GemmAlgo::kNaive:
      gemm_naive(a, b, c, m, n, k, alpha, beta);
      return;
    case GemmAlgo::kBlocked:
      gemm_blocked_rows(a, b, c, 0, m, n, k, alpha, beta);
      return;
    case GemmAlgo::kParallel: {
      const int threads = std::min<std::int64_t>(resolve_threads(num_threads), m);
      if (threads <= 1) {
        gemm_blocked_rows(a, b, c, 0, m, n, k, alpha, beta);
        return;
      }
      // Disjoint row panels — no synchronization needed beyond join.
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads));
      const std::int64_t rows_per = ceil_div<std::int64_t>(m, threads);
      for (int t = 0; t < threads; ++t) {
        const std::int64_t m0 = t * rows_per;
        const std::int64_t m1 = std::min(m0 + rows_per, m);
        if (m0 >= m1) break;
        pool.emplace_back([=] {
          gemm_blocked_rows(a, b, c, m0, m1, n, k, alpha, beta);
        });
      }
      for (std::thread& th : pool) th.join();
      return;
    }
  }
}

namespace {

/// Apply fp16 input emulation: returns a quantized copy when enabled.
const Tensor* maybe_quantize(const Tensor& t, bool enabled, Tensor& storage) {
  if (!enabled) return &t;
  storage = t;
  storage.quantize_fp16();
  return &storage;
}

}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& c,
          const GemmOptions& options) {
  CODESIGN_CHECK(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
                 "gemm expects rank-2 tensors");
  const std::int64_t m = a.dim(0);
  const std::int64_t k = a.dim(1);
  const std::int64_t n = b.dim(1);
  CODESIGN_CHECK(b.dim(0) == k,
                 "gemm inner dimensions disagree: " +
                     shape_to_string(a.shape()) + " x " +
                     shape_to_string(b.shape()));
  CODESIGN_CHECK(c.dim(0) == m && c.dim(1) == n, "gemm output shape mismatch");

  Tensor aq, bq;
  const Tensor* ap = maybe_quantize(a, options.fp16_inputs, aq);
  const Tensor* bp = maybe_quantize(b, options.fp16_inputs, bq);

  gemm_raw(ap->data(), bp->data(), c.data(), m, n, k, options.alpha,
           options.beta, options.algo, options.num_threads);
  if (options.fp16_output) c.quantize_fp16();
}

Tensor matmul(const Tensor& a, const Tensor& b, const GemmOptions& options) {
  CODESIGN_CHECK(a.rank() == 2 && b.rank() == 2, "matmul expects rank 2");
  Tensor c({a.dim(0), b.dim(1)});
  GemmOptions opt = options;
  opt.beta = 0.0f;
  gemm(a, b, c, opt);
  return c;
}

void bmm(const Tensor& a, const Tensor& b, Tensor& c,
         const GemmOptions& options) {
  CODESIGN_CHECK(a.rank() == 3 && b.rank() == 3 && c.rank() == 3,
                 "bmm expects rank-3 tensors");
  const std::int64_t batch = a.dim(0);
  CODESIGN_CHECK(b.dim(0) == batch && c.dim(0) == batch,
                 "bmm batch sizes disagree");
  const std::int64_t m = a.dim(1);
  const std::int64_t k = a.dim(2);
  const std::int64_t n = b.dim(2);
  CODESIGN_CHECK(b.dim(1) == k, "bmm inner dimensions disagree");
  CODESIGN_CHECK(c.dim(1) == m && c.dim(2) == n, "bmm output shape mismatch");

  Tensor aq, bq;
  const Tensor* ap = maybe_quantize(a, options.fp16_inputs, aq);
  const Tensor* bp = maybe_quantize(b, options.fp16_inputs, bq);

  for (std::int64_t i = 0; i < batch; ++i) {
    gemm_raw(ap->data() + i * m * k, bp->data() + i * k * n,
             c.data() + i * m * n, m, n, k, options.alpha, options.beta,
             options.algo == GemmAlgo::kParallel ? GemmAlgo::kBlocked
                                                 : options.algo,
             options.num_threads);
  }
  if (options.fp16_output) c.quantize_fp16();
}

Tensor batched_matmul(const Tensor& a, const Tensor& b,
                      const GemmOptions& options) {
  CODESIGN_CHECK(a.rank() == 3 && b.rank() == 3, "batched_matmul expects rank 3");
  Tensor c({a.dim(0), a.dim(1), b.dim(2)});
  GemmOptions opt = options;
  opt.beta = 0.0f;
  bmm(a, b, c, opt);
  return c;
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor* bias,
              const GemmOptions& options) {
  CODESIGN_CHECK(w.rank() == 2, "linear weight must be rank 2 (out, in)");
  const std::int64_t out_features = w.dim(0);
  const std::int64_t in_features = w.dim(1);

  // Fold rank-3 inputs to 2-D (paper appendix Fig 14: ordering of the
  // folded dimensions does not matter).
  Tensor x2d;
  Shape out_shape;
  if (x.rank() == 3) {
    out_shape = {x.dim(0), x.dim(1), out_features};
    x2d = x.reshape({x.dim(0) * x.dim(1), x.dim(2)});
  } else {
    CODESIGN_CHECK(x.rank() == 2, "linear input must be rank 2 or 3");
    out_shape = {x.dim(0), out_features};
    x2d = x;
  }
  CODESIGN_CHECK(x2d.dim(1) == in_features,
                 "linear: input feature size mismatch");

  const Tensor wt = w.transposed_2d();
  Tensor y = matmul(x2d, wt, options);
  if (bias != nullptr) {
    CODESIGN_CHECK(bias->rank() == 1 && bias->dim(0) == out_features,
                   "linear: bias shape mismatch");
    for (std::int64_t i = 0; i < y.dim(0); ++i) {
      for (std::int64_t j = 0; j < out_features; ++j) {
        y.at(i, j) += bias->at(j);
      }
    }
    if (options.fp16_output) y.quantize_fp16();
  }
  return y.reshape(out_shape);
}

}  // namespace codesign::kern
