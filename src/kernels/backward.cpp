#include "kernels/backward.hpp"

#include <cmath>

#include "common/error.hpp"
#include "kernels/gemm_cpu.hpp"
#include "kernels/ops.hpp"

namespace codesign::kern {

LinearGrads linear_backward(const Tensor& dy, const Tensor& x,
                            const Tensor& w) {
  CODESIGN_CHECK(dy.rank() == 2 && x.rank() == 2 && w.rank() == 2,
                 "linear_backward expects rank-2 tensors");
  const std::int64_t rows = x.dim(0);
  const std::int64_t in = x.dim(1);
  const std::int64_t out = w.dim(0);
  CODESIGN_CHECK(w.dim(1) == in, "linear_backward: W/X feature mismatch");
  CODESIGN_CHECK(dy.dim(0) == rows && dy.dim(1) == out,
                 "linear_backward: dY shape mismatch");

  LinearGrads g;
  // dX = dY · W : (rows, out) x (out, in) — the dgrad GEMM.
  g.dx = matmul(dy, w);
  // dW = dYᵀ · X : (out, rows) x (rows, in) — the wgrad GEMM with the
  // row (b·s) dimension on the inside, exactly as training.hpp maps it.
  g.dw = matmul(dy.transposed_2d(), x);
  g.db = Tensor({out});
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t o = 0; o < out; ++o) {
      g.db.at(o) += dy.at(r, o);
    }
  }
  return g;
}

Tensor softmax_backward(const Tensor& probs, const Tensor& dprobs) {
  CODESIGN_CHECK(probs.same_shape(dprobs), "softmax_backward shape mismatch");
  Tensor ds = probs;  // reuse shape
  const std::int64_t n = probs.shape().back();
  const std::int64_t rows = probs.numel() / n;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* p = probs.data() + r * n;
    const float* dp = dprobs.data() + r * n;
    double dot = 0.0;
    for (std::int64_t i = 0; i < n; ++i) dot += static_cast<double>(p[i]) * dp[i];
    float* out = ds.data() + r * n;
    for (std::int64_t i = 0; i < n; ++i) {
      out[i] = p[i] * (dp[i] - static_cast<float>(dot));
    }
  }
  return ds;
}

LayerNormGrads layernorm_backward(const Tensor& dy, const Tensor& x,
                                  const Tensor& gamma, float eps) {
  CODESIGN_CHECK(dy.same_shape(x), "layernorm_backward shape mismatch");
  const std::int64_t h = x.shape().back();
  CODESIGN_CHECK(gamma.rank() == 1 && gamma.dim(0) == h,
                 "layernorm_backward: gamma mismatch");
  LayerNormGrads g;
  g.dx = x;  // shape only
  g.dgamma = Tensor({h});
  g.dbeta = Tensor({h});
  const std::int64_t rows = x.numel() / h;
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data() + r * h;
    const float* dyr = dy.data() + r * h;
    double mean = 0.0;
    for (std::int64_t i = 0; i < h; ++i) mean += xr[i];
    mean /= static_cast<double>(h);
    double var = 0.0;
    for (std::int64_t i = 0; i < h; ++i) {
      var += (xr[i] - mean) * (xr[i] - mean);
    }
    var /= static_cast<double>(h);
    const double inv_std = 1.0 / std::sqrt(var + eps);

    // xhat_i = (x_i - mean) * inv_std;  y_i = gamma_i xhat_i + beta_i.
    // dxhat_i = dy_i * gamma_i
    // dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat ⊙ xhat))
    double sum_dxhat = 0.0;
    double sum_dxhat_xhat = 0.0;
    for (std::int64_t i = 0; i < h; ++i) {
      const double xhat = (xr[i] - mean) * inv_std;
      const double dxhat = static_cast<double>(dyr[i]) * gamma.at(i);
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xhat;
      g.dgamma.at(i) += static_cast<float>(dyr[i] * xhat);
      g.dbeta.at(i) += dyr[i];
    }
    const double inv_h = 1.0 / static_cast<double>(h);
    float* dxr = g.dx.data() + r * h;
    for (std::int64_t i = 0; i < h; ++i) {
      const double xhat = (xr[i] - mean) * inv_std;
      const double dxhat = static_cast<double>(dyr[i]) * gamma.at(i);
      dxr[i] = static_cast<float>(
          inv_std * (dxhat - sum_dxhat * inv_h - xhat * sum_dxhat_xhat * inv_h));
    }
  }
  return g;
}

Tensor gelu_backward(const Tensor& dy, const Tensor& x) {
  CODESIGN_CHECK(dy.same_shape(x), "gelu_backward shape mismatch");
  Tensor dx = x;
  constexpr double kInvSqrt2 = 0.70710678118654752440;
  constexpr double kInvSqrt2Pi = 0.39894228040143267794;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const double v = x.data()[i];
    const double cdf = 0.5 * (1.0 + std::erf(v * kInvSqrt2));
    const double pdf = kInvSqrt2Pi * std::exp(-0.5 * v * v);
    dx.data()[i] = static_cast<float>(dy.data()[i] * (cdf + v * pdf));
  }
  return dx;
}

Tensor silu_backward(const Tensor& dy, const Tensor& x) {
  CODESIGN_CHECK(dy.same_shape(x), "silu_backward shape mismatch");
  Tensor dx = x;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const double v = x.data()[i];
    const double s = 1.0 / (1.0 + std::exp(-v));
    dx.data()[i] = static_cast<float>(dy.data()[i] * s * (1.0 + v * (1.0 - s)));
  }
  return dx;
}

AttentionGrads attention_backward(const Tensor& q, const Tensor& k,
                                  const Tensor& v, const Tensor& dout,
                                  bool causal) {
  CODESIGN_CHECK(q.rank() == 3 && q.same_shape(k) && q.same_shape(v) &&
                     q.same_shape(dout),
                 "attention_backward expects matching (heads, len, d)");
  const std::int64_t heads = q.dim(0);
  const std::int64_t len = q.dim(1);
  const std::int64_t d = q.dim(2);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  AttentionGrads g;
  g.dq = Tensor({heads, len, d});
  g.dk = Tensor({heads, len, d});
  g.dv = Tensor({heads, len, d});

  // Recompute the forward probabilities (per head, materialized — this is
  // the reference path the BMM mapping describes).
  for (std::int64_t hd = 0; hd < heads; ++hd) {
    Tensor scores({len, len});
    for (std::int64_t i = 0; i < len; ++i) {
      for (std::int64_t j = 0; j < len; ++j) {
        if (causal && j > i) {
          scores.at(i, j) = -std::numeric_limits<float>::infinity();
          continue;
        }
        double s = 0.0;
        for (std::int64_t x = 0; x < d; ++x) {
          s += static_cast<double>(q.at(hd, i, x)) * k.at(hd, j, x);
        }
        scores.at(i, j) = static_cast<float>(s) * scale;
      }
    }
    const Tensor probs = softmax_lastdim(scores);

    // dP = dOut · Vᵀ.
    Tensor dprobs({len, len});
    for (std::int64_t i = 0; i < len; ++i) {
      for (std::int64_t j = 0; j < len; ++j) {
        double dp = 0.0;
        for (std::int64_t x = 0; x < d; ++x) {
          dp += static_cast<double>(dout.at(hd, i, x)) * v.at(hd, j, x);
        }
        dprobs.at(i, j) = static_cast<float>(dp);
      }
    }
    // dV = Pᵀ · dOut.
    for (std::int64_t j = 0; j < len; ++j) {
      for (std::int64_t x = 0; x < d; ++x) {
        double acc = 0.0;
        for (std::int64_t i = 0; i < len; ++i) {
          acc += static_cast<double>(probs.at(i, j)) * dout.at(hd, i, x);
        }
        g.dv.at(hd, j, x) = static_cast<float>(acc);
      }
    }

    // Mask the upstream gradient where the forward was masked (P = 0
    // there, so softmax_backward already zeroes it, but -inf * 0 hygiene
    // matters for the scores path).
    const Tensor dscores = softmax_backward(probs, dprobs);

    // dQ = dS · K * scale ;  dK = dSᵀ · Q * scale.
    for (std::int64_t i = 0; i < len; ++i) {
      for (std::int64_t x = 0; x < d; ++x) {
        double dq_acc = 0.0;
        for (std::int64_t j = 0; j < len; ++j) {
          dq_acc += static_cast<double>(dscores.at(i, j)) * k.at(hd, j, x);
        }
        g.dq.at(hd, i, x) = static_cast<float>(dq_acc) * scale;
      }
    }
    for (std::int64_t j = 0; j < len; ++j) {
      for (std::int64_t x = 0; x < d; ++x) {
        double dk_acc = 0.0;
        for (std::int64_t i = 0; i < len; ++i) {
          dk_acc += static_cast<double>(dscores.at(i, j)) * q.at(hd, i, x);
        }
        g.dk.at(hd, j, x) = static_cast<float>(dk_acc) * scale;
      }
    }
  }
  return g;
}

}  // namespace codesign::kern
