#include "kernels/tensor.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "kernels/half.hpp"

namespace codesign::kern {

std::string shape_to_string(const Shape& shape) {
  std::vector<std::string> parts;
  parts.reserve(shape.size());
  for (std::int64_t d : shape) parts.push_back(std::to_string(d));
  return "(" + join(parts, ", ") + ")";
}

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    CODESIGN_CHECK(d > 0, "tensor extents must be positive, got " +
                              shape_to_string(shape));
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  CODESIGN_CHECK(!shape_.empty(), "tensor rank must be >= 1");
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0f);
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = value;
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = stddev * static_cast<float>(rng.normal());
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::from_values(std::initializer_list<float> values) {
  CODESIGN_CHECK(values.size() > 0, "from_values needs at least one value");
  Tensor t({static_cast<std::int64_t>(values.size())});
  std::size_t i = 0;
  for (float v : values) t.data_[i++] = v;
  return t;
}

std::int64_t Tensor::dim(std::size_t i) const {
  CODESIGN_CHECK(i < shape_.size(), "dim index out of range");
  return shape_[i];
}

float& Tensor::at(std::int64_t i) {
  CODESIGN_CHECK(rank() == 1, "at(i) requires rank 1, have " +
                                  shape_to_string(shape_));
  CODESIGN_CHECK(i >= 0 && i < shape_[0], "index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
  return const_cast<Tensor*>(this)->at(i);
}

std::int64_t Tensor::flat_index(std::int64_t i, std::int64_t j) const {
  CODESIGN_CHECK(rank() == 2, "at(i,j) requires rank 2, have " +
                                  shape_to_string(shape_));
  CODESIGN_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
                 "index out of range");
  return i * shape_[1] + j;
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  return data_[static_cast<std::size_t>(flat_index(i, j))];
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
  return data_[static_cast<std::size_t>(flat_index(i, j))];
}

std::int64_t Tensor::flat_index(std::int64_t i, std::int64_t j,
                                std::int64_t k) const {
  CODESIGN_CHECK(rank() == 3, "at(i,j,k) requires rank 3, have " +
                                  shape_to_string(shape_));
  CODESIGN_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] &&
                     k >= 0 && k < shape_[2],
                 "index out of range");
  return (i * shape_[1] + j) * shape_[2] + k;
}

float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) {
  return data_[static_cast<std::size_t>(flat_index(i, j, k))];
}

float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) const {
  return data_[static_cast<std::size_t>(flat_index(i, j, k))];
}

Tensor Tensor::reshape(Shape new_shape) const {
  CODESIGN_CHECK(shape_numel(new_shape) == numel(),
                 "reshape must preserve element count: " +
                     shape_to_string(shape_) + " -> " +
                     shape_to_string(new_shape));
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

Tensor Tensor::transposed_2d() const {
  CODESIGN_CHECK(rank() == 2, "transposed_2d requires rank 2");
  Tensor out({shape_[1], shape_[0]});
  for (std::int64_t i = 0; i < shape_[0]; ++i) {
    for (std::int64_t j = 0; j < shape_[1]; ++j) {
      out.at(j, i) = at(i, j);
    }
  }
  return out;
}

void Tensor::quantize_fp16() {
  for (float& v : data_) v = round_to_half(v);
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

bool Tensor::all_finite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  CODESIGN_CHECK(a.same_shape(b), "max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

float relative_error(const Tensor& a, const Tensor& b) {
  CODESIGN_CHECK(a.same_shape(b), "relative_error: shape mismatch");
  double num = 0.0;
  double den = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - b.data()[i];
    num += d * d;
    den += static_cast<double>(b.data()[i]) * b.data()[i];
  }
  const double eps = 1e-12;
  return static_cast<float>(std::sqrt(num) / std::max(std::sqrt(den), eps));
}

}  // namespace codesign::kern
