// ops.hpp — the non-GEMM operators of the transformer layer.
//
// These are the memory-bound pointwise/reduction kernels (LayerNorm,
// softmax, activations, residual adds, embedding lookup) that the paper's
// Fig 2 accounts for as the non-GEMM share of layer latency. The CPU
// implementations here are used by the executable forward pass to validate
// the operator mapping end to end.
#pragma once

#include <cstdint>

#include "kernels/tensor.hpp"

namespace codesign::kern {

/// Row-wise softmax over the last dimension of a rank-2 or rank-3 tensor,
/// numerically stabilized with the row max.
Tensor softmax_lastdim(const Tensor& x);

/// Causal (lower-triangular) softmax for attention scores shaped
/// (batch·heads, s, s): entries with key index > query index are masked to
/// -inf before the softmax.
Tensor causal_softmax(const Tensor& scores);

/// LayerNorm over the last dimension: y = (x - mean) / sqrt(var + eps) *
/// gamma + beta. gamma/beta are rank-1 of the normalized size.
Tensor layernorm_lastdim(const Tensor& x, const Tensor& gamma,
                         const Tensor& beta, float eps = 1e-5f);

/// Exact GELU: x * 0.5 * (1 + erf(x / sqrt(2))).
Tensor gelu(const Tensor& x);

/// SiLU/Swish: x * sigmoid(x).
Tensor silu(const Tensor& x);

/// SwiGLU combine (paper §VI-C4): silu(gate) ⊙ up, elementwise over two
/// equally-shaped tensors — the extra learned matrix is what pushes the MLP
/// width from 4h to (8/3)h.
Tensor swiglu_combine(const Tensor& gate, const Tensor& up);

/// Elementwise sum of two equally-shaped tensors (residual connection).
Tensor add(const Tensor& a, const Tensor& b);

/// Inverted dropout with a deterministic generator: keeps each element
/// with probability 1-p and scales survivors by 1/(1-p) so the expected
/// value is preserved (training mode; p = 0 is the identity).
Tensor dropout(const Tensor& x, float p, Rng& rng);

/// Broadcast-add a rank-1 bias over the last dimension.
Tensor add_bias(const Tensor& x, const Tensor& bias);

/// Scale every element by a constant (e.g. attention's 1/sqrt(d) factor).
Tensor scale(const Tensor& x, float factor);

/// Embedding lookup: table (vocab, h), ids rank-1 of indices in [0, vocab)
/// -> (len, h).
Tensor embedding_lookup(const Tensor& table, const std::vector<std::int64_t>& ids);

/// Mean cross-entropy of row-wise logits (rows, vocab) against target ids.
/// Computed with a log-sum-exp for stability; used by the integration test
/// that trains nothing but checks the loss of a random model ≈ ln(vocab).
double cross_entropy_mean(const Tensor& logits,
                          const std::vector<std::int64_t>& targets);

}  // namespace codesign::kern
