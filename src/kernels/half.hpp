// half.hpp — IEEE 754 binary16 emulation.
//
// The paper's experiments run in fp16; this type lets the CPU execution
// substrate reproduce fp16 storage semantics (rounding, overflow to inf,
// subnormals) without hardware half support. Arithmetic is performed in
// float and rounded back on store, matching how tensor cores accumulate in
// higher precision and write fp16 results.
#pragma once

#include <cstdint>

namespace codesign::kern {

/// Convert a float to the nearest binary16 bit pattern (round-to-nearest-
/// even, correct handling of NaN/inf/subnormals/overflow).
std::uint16_t float_to_half_bits(float f);

/// Convert a binary16 bit pattern to float (exact).
float half_bits_to_float(std::uint16_t h);

/// Value type wrapping the bit pattern.
class half_t {
 public:
  half_t() = default;
  explicit half_t(float f) : bits_(float_to_half_bits(f)) {}

  static half_t from_bits(std::uint16_t bits) {
    half_t h;
    h.bits_ = bits;
    return h;
  }

  float to_float() const { return half_bits_to_float(bits_); }
  explicit operator float() const { return to_float(); }
  std::uint16_t bits() const { return bits_; }

  bool operator==(const half_t& o) const { return bits_ == o.bits_; }

 private:
  std::uint16_t bits_ = 0;
};

/// Round a float through fp16 precision (the "store to half, load back"
/// operation used to emulate fp16 tensors).
inline float round_to_half(float f) {
  return half_bits_to_float(float_to_half_bits(f));
}

}  // namespace codesign::kern
