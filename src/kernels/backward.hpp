// backward.hpp — analytic backward passes for the CPU substrate.
//
// These implement, in executable form, exactly the gradient formulas the
// training-step model (transformer/training.hpp) prices:
//   linear:   dX = dY·W,  dW = dYᵀ·X,  db = Σrows dY
//   softmax:  dS = P ⊙ (dP − rowsum(dP ⊙ P))
//   layernorm, GELU, SiLU/SwiGLU: the usual chain rules
//   attention: composition of the above (reference implementation)
// Every routine is verified against central finite differences in
// tests/test_backward.cpp, so the dgrad/wgrad GEMM shapes used by the
// performance model correspond to real, correct math.
#pragma once

#include "kernels/tensor.hpp"

namespace codesign::kern {

/// Gradients of Y = X·Wᵀ + b (torch-linear convention, W: (out, in)).
/// dy: (rows, out), x: (rows, in), w: (out, in).
struct LinearGrads {
  Tensor dx;  ///< (rows, in)
  Tensor dw;  ///< (out, in)
  Tensor db;  ///< (out)
};

LinearGrads linear_backward(const Tensor& dy, const Tensor& x,
                            const Tensor& w);

/// Backward of row-wise softmax over the last dim: given the softmax
/// output P and upstream dP, return dS (same shape).
Tensor softmax_backward(const Tensor& probs, const Tensor& dprobs);

/// Backward of LayerNorm over the last dim.
struct LayerNormGrads {
  Tensor dx;
  Tensor dgamma;
  Tensor dbeta;
};

LayerNormGrads layernorm_backward(const Tensor& dy, const Tensor& x,
                                  const Tensor& gamma, float eps = 1e-5f);

/// Elementwise backward of exact GELU: dx = dy ⊙ gelu'(x).
Tensor gelu_backward(const Tensor& dy, const Tensor& x);

/// Elementwise backward of SiLU: dx = dy ⊙ (sigmoid(x)(1 + x(1-sigmoid)))
Tensor silu_backward(const Tensor& dy, const Tensor& x);

/// Backward of scaled-dot-product attention (reference path, non-fused):
/// q/k/v: (heads, len, d); dout: same shape. Returns dq, dk, dv.
struct AttentionGrads {
  Tensor dq;
  Tensor dk;
  Tensor dv;
};

AttentionGrads attention_backward(const Tensor& q, const Tensor& k,
                                  const Tensor& v, const Tensor& dout,
                                  bool causal);

}  // namespace codesign::kern
