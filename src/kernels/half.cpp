#include "kernels/half.hpp"

#include <cstring>

namespace codesign::kern {

std::uint16_t float_to_half_bits(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, sizeof(x));

  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::int32_t exponent =
      static_cast<std::int32_t>((x >> 23) & 0xFFu) - 127 + 15;
  std::uint32_t mantissa = x & 0x7FFFFFu;

  if (((x >> 23) & 0xFFu) == 0xFFu) {
    // Inf or NaN. Preserve NaN-ness (quiet bit set), inf maps to inf.
    if (mantissa != 0) return static_cast<std::uint16_t>(sign | 0x7E00u);
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (exponent >= 0x1F) {
    // Overflow -> infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (exponent <= 0) {
    // Subnormal or underflow to zero.
    if (exponent < -10) return static_cast<std::uint16_t>(sign);
    // Add the implicit leading 1 and shift into subnormal position.
    mantissa |= 0x800000u;
    const int shift = 14 - exponent;  // in [14, 24]
    std::uint32_t sub = mantissa >> shift;
    // Round to nearest even on the bits shifted out.
    const std::uint32_t round_bit = 1u << (shift - 1);
    const std::uint32_t remainder = mantissa & ((round_bit << 1) - 1);
    if (remainder > round_bit || (remainder == round_bit && (sub & 1u))) {
      ++sub;
    }
    return static_cast<std::uint16_t>(sign | sub);
  }

  // Normal number: round the 23-bit mantissa to 10 bits, nearest-even.
  std::uint32_t half_mant = mantissa >> 13;
  const std::uint32_t remainder = mantissa & 0x1FFFu;
  if (remainder > 0x1000u || (remainder == 0x1000u && (half_mant & 1u))) {
    ++half_mant;
    if (half_mant == 0x400u) {  // mantissa overflowed into the exponent
      half_mant = 0;
      if (exponent + 1 >= 0x1F) {
        return static_cast<std::uint16_t>(sign | 0x7C00u);
      }
      return static_cast<std::uint16_t>(
          sign | (static_cast<std::uint32_t>(exponent + 1) << 10));
    }
  }
  return static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(exponent) << 10) | half_mant);
}

float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exponent = (h >> 10) & 0x1Fu;
  std::uint32_t mantissa = h & 0x3FFu;

  std::uint32_t x;
  if (exponent == 0) {
    if (mantissa == 0) {
      x = sign;  // signed zero
    } else {
      // Subnormal half: normalize into a float exponent.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      mantissa = m & 0x3FFu;
      const std::uint32_t fexp = static_cast<std::uint32_t>(127 - 15 - e);
      x = sign | (fexp << 23) | (mantissa << 13);
    }
  } else if (exponent == 0x1F) {
    x = sign | 0x7F800000u | (mantissa << 13);  // inf / NaN
  } else {
    const std::uint32_t fexp = exponent - 15 + 127;
    x = sign | (fexp << 23) | (mantissa << 13);
  }

  float f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

}  // namespace codesign::kern
