// gemm_cpu.hpp — CPU GEMM / BMM kernels.
//
// C = alpha * A·B + beta * C with A: (m,k), B: (k,n), C: (m,n), row-major.
// Three implementations:
//   * kNaive    — triple loop, the correctness oracle
//   * kBlocked  — cache-blocked with a k-inner micro-kernel
//   * kParallel — kBlocked with row-panel parallelism over std::thread
// plus batched variants operating on rank-3 tensors.
//
// An optional fp16 emulation mode rounds A and B elements through binary16
// before the multiply and the final C through binary16 after accumulation,
// mirroring tensor-core numerics (fp16 operands, fp32 accumulate).
#pragma once

#include <cstdint>

#include "kernels/tensor.hpp"

namespace codesign::kern {

enum class GemmAlgo { kNaive, kBlocked, kParallel };

struct GemmOptions {
  GemmAlgo algo = GemmAlgo::kBlocked;
  float alpha = 1.0f;
  float beta = 0.0f;
  /// Emulate fp16 operand storage / fp16 output with fp32 accumulation.
  bool fp16_inputs = false;
  bool fp16_output = false;
  /// Thread count for kParallel (<=0 means hardware_concurrency).
  int num_threads = 0;
};

/// C(m,n) = alpha * A(m,k) · B(k,n) + beta * C. Shapes are validated; C must
/// be pre-allocated with the right shape.
void gemm(const Tensor& a, const Tensor& b, Tensor& c,
          const GemmOptions& options = {});

/// Convenience: allocate and return C with beta = 0.
Tensor matmul(const Tensor& a, const Tensor& b, const GemmOptions& options = {});

/// Batched: A(batch,m,k) · B(batch,k,n) -> C(batch,m,n).
void bmm(const Tensor& a, const Tensor& b, Tensor& c,
         const GemmOptions& options = {});

Tensor batched_matmul(const Tensor& a, const Tensor& b,
                      const GemmOptions& options = {});

/// torch.nn.functional.linear semantics: Y = X · Wᵀ (+ bias), with
/// X: (rows, in), W: (out, in), bias: (out) optional, Y: (rows, out).
/// Accepts rank-2 or rank-3 X (rank-3 is folded to 2-D — the Fig-14 rule).
Tensor linear(const Tensor& x, const Tensor& w, const Tensor* bias = nullptr,
              const GemmOptions& options = {});

/// Raw row-major kernel used by all tensor entry points (exposed for the
/// microbenchmarks): c[m×n] = alpha * a[m×k]·b[k×n] + beta * c.
void gemm_raw(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t n, std::int64_t k, float alpha, float beta,
              GemmAlgo algo, int num_threads);

}  // namespace codesign::kern
