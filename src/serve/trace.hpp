// trace.hpp — request-scoped tracing and SLO telemetry for codesign serve.
//
// Every request the server touches gets a RequestTrace carried from the
// reader thread through admission, dispatch, execute_op, and response
// writing. The trace records one span per phase:
//
//   parse       parse_request on the reader thread
//   queue_wait  admission -> a worker picks the request up
//   execute     execute_op (advisory rendering, search, ...)
//   render      building the response envelope line
//   write       send()ing the line back to the client
//
// plus request-scoped work attribution (obs::RequestScope: GEMM estimates
// and search candidates the request consumed). Completed traces flow into
// the RequestTraceLog:
//
//   * a fixed-size, lock-striped ring of recent RequestRecords powering
//     the `tail` serve op (last-N slow or errored requests with their
//     phase breakdowns);
//   * per-op latency histograms (serve.request_us{op=...}) and per-phase
//     histograms (serve.phase_us{phase=...}) in the global
//     MetricsRegistry — all kBestEffort: wall-clock series are never part
//     of the deterministic export;
//   * SLO accounting: deadline misses, truncations (code 6), errors, and
//     a p99-vs---slo-p99-ms verdict surfaced in the drain summary;
//   * chrome-trace export: when an EventRecorder is installed, each
//     request emits its phase spans on a per-request track
//     (kTidServeBase + seq) keyed by the echoed request id.
//
// Determinism contract (docs/OBSERVABILITY.md): tracing observes, never
// steers. Payload bytes with tracing enabled are byte-identical to tracing
// disabled (gated by tests/test_serve_trace.cpp), and every series recorded
// here is tagged kBestEffort.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/req_scope.hpp"

namespace codesign::serve {

/// Chrome-trace track base for per-request serve spans (the obs tid
/// constants below 100+N are taken by the simulator's DES tracks).
inline constexpr std::int32_t kTidServeBase = 10000;

enum class Phase : int {
  kParse = 0,
  kQueueWait = 1,
  kExecute = 2,
  kRender = 3,
  kWrite = 4,
};
inline constexpr std::size_t kNumPhases = 5;

/// Canonical lowercase phase name ("parse", "queue_wait", ...).
const char* phase_name(Phase p);

/// One completed request, as kept in the ring and serialized by the
/// `tail` op.
struct RequestRecord {
  std::uint64_t seq = 0;     ///< server-wide admission order
  std::string id;            ///< echoed request id ("" when absent)
  std::string op;            ///< "estimate", "advise", ... ("?" on parse fail)
  std::string status;        ///< "ok" | "error" | "overloaded"
  int code = 0;              ///< response code (CLI exit taxonomy)
  double start_us = 0.0;     ///< wall µs since the trace log was created
  double total_us = 0.0;     ///< request wall latency (parse -> write done)
  std::array<double, kNumPhases> phase_us{};  ///< span per phase
  std::uint64_t estimates = 0;          ///< GEMM estimates attributed
  std::uint64_t search_candidates = 0;  ///< search candidates attributed
  bool deadline_missed = false;  ///< the request's deadline tripped
  std::string error;             ///< error message (truncated), "" when ok
  std::string error_phase;       ///< phase active when the error surfaced

  double phase_sum_us() const;
};

/// Serve-side tracing knobs (ServerOptions::trace, CLI --tail/--slo-p99-ms).
struct TraceOptions {
  /// Master switch. Off: no per-request spans, no ring, `tail` errors.
  bool enabled = true;
  /// Ring capacity: completed requests retained for `tail`.
  std::size_t ring_capacity = 256;
  /// Independent mutex-striped ring segments (min 1).
  std::size_t ring_stripes = 8;
  /// Declarative SLO: drain reports VIOLATED when the request p99 exceeds
  /// this. 0 = no SLO.
  double slo_p99_ms = 0.0;
};

/// A live request being traced. Null-safe by convention: the server passes
/// nullptr when tracing is disabled and every helper tolerates it.
class RequestTrace {
 public:
  RequestTrace(std::uint64_t seq, double start_us);

  /// Accumulate `us` into one phase span (phases may be entered more than
  /// once; spans add up).
  void add_phase(Phase p, double us) {
    record_.phase_us[static_cast<std::size_t>(p)] += us;
  }

  RequestRecord& record() { return record_; }

 private:
  RequestRecord record_;
};

/// RAII phase span: accumulates elapsed wall µs into `trace` at scope
/// exit. Inert when `trace` is nullptr (tracing disabled).
class ScopedPhase {
 public:
  ScopedPhase(RequestTrace* trace, Phase phase) : trace_(trace), phase_(phase) {
    if (trace_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (trace_ != nullptr) {
      trace_->add_phase(phase_,
                        std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  RequestTrace* trace_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

/// Aggregate SLO view for the drain summary and tests.
struct SloSummary {
  std::uint64_t requests = 0;         ///< completed (traced) requests
  std::uint64_t deadline_misses = 0;  ///< requests whose deadline tripped
  std::uint64_t truncated = 0;        ///< code-6 partial results
  std::uint64_t errors = 0;           ///< status "error" responses
  std::uint64_t overloaded = 0;       ///< typed admission rejections
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double slo_p99_ms = 0.0;  ///< 0 = no SLO configured
  bool violated() const { return slo_p99_ms > 0.0 && p99_ms > slo_p99_ms; }
};

/// The completed-request sink: lock-striped ring + SLO accounting +
/// metric/chrome-trace fan-out. One per Server; thread-safe.
class RequestTraceLog {
 public:
  explicit RequestTraceLog(const TraceOptions& options);

  const TraceOptions& options() const { return opt_; }

  /// Allocate the next request sequence number.
  std::uint64_t next_seq() {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Wall µs since this log was created (the epoch of every start_us).
  double now_us() const;

  /// Start tracing one request (nullptr is never returned; the caller
  /// decides whether tracing is on before calling).
  std::unique_ptr<RequestTrace> begin_request() {
    return std::make_unique<RequestTrace>(next_seq(), now_us());
  }

  /// Finalize: fold the bound RequestScope counters into the record, stamp
  /// totals, push into the ring, record histograms/SLO counters, and emit
  /// chrome-trace spans when a recorder is installed.
  void finish(RequestTrace& trace);

  /// The most recent `n` records, newest first. Filters:
  ///   "all"    every completed request
  ///   "slow"   ordered by total_us descending instead of recency
  ///   "errors" only status != "ok" or code != 0
  std::vector<RequestRecord> tail(std::size_t n, std::string_view filter) const;

  SloSummary slo_summary() const;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<RequestRecord> ring;  ///< ring of capacity/stripes slots
    std::size_t next = 0;             ///< next slot to overwrite
    std::uint64_t stored = 0;         ///< total records ever stored
  };

  TraceOptions opt_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t stripe_capacity_ = 0;
  std::atomic<std::uint64_t> seq_{0};
  std::chrono::steady_clock::time_point epoch_;

  /// SLO accounting over *all* completed requests (not just ring
  /// survivors). The latency histogram is owned here so the drain summary
  /// works even when the global MetricsRegistry is disabled.
  obs::Histogram latency_ms_;
  std::atomic<std::uint64_t> n_requests_{0};
  std::atomic<std::uint64_t> n_deadline_miss_{0};
  std::atomic<std::uint64_t> n_truncated_{0};
  std::atomic<std::uint64_t> n_errors_{0};
  std::atomic<std::uint64_t> n_overloaded_{0};
};

/// Serialize `records` as the `tail` payload: a JSON array (newest first)
/// of per-request objects with phase breakdowns, one line. Rendered through
/// json::Writer (the shared emitter), so the wire format is stable and
/// documented in docs/SERVING.md.
std::string render_tail(const std::vector<RequestRecord>& records);

}  // namespace codesign::serve
